// End-to-end: synthesize video frames, run the real MPEG-style encoder,
// recover the picture-size trace from the coded bit stream alone (as a
// transport protocol would), and smooth it.
//
//   $ ./codec_roundtrip
//
// The point: the smoothing layer needs nothing from the codec except the
// start-code structure of the bit stream — picture boundaries, types, sizes.
#include <cstdio>

#include "core/metrics.h"
#include "core/smoother.h"
#include "core/theorem.h"
#include "mpeg/decoder.h"
#include "mpeg/encoder.h"
#include "mpeg/parser.h"
#include "mpeg/videogen.h"
#include "trace/stats.h"

int main() {
  // 1. Synthetic camera feed: two scenes with a cut, moderate motion.
  lsm::mpeg::VideoConfig video_config;
  video_config.width = 192;
  video_config.height = 112;
  video_config.scenes = {lsm::mpeg::VideoScene{45, 1.1, 0.55},
                         lsm::mpeg::VideoScene{45, 0.9, 0.25}};
  video_config.seed = 2026;
  const std::vector<lsm::mpeg::Frame> video =
      lsm::mpeg::generate_video(video_config);
  std::printf("generated %zu frames at %dx%d\n", video.size(),
              video_config.width, video_config.height);

  // 2. Encode with the paper's quantizer scales (I/P/B = 4/6/15).
  lsm::mpeg::EncoderConfig encoder_config;
  encoder_config.pattern = lsm::trace::GopPattern(9, 3);
  encoder_config.i_quant = 4;
  encoder_config.p_quant = 6;
  encoder_config.b_quant = 15;
  const lsm::mpeg::EncodeResult encoded =
      lsm::mpeg::Encoder(encoder_config).encode(video);
  std::printf("coded stream: %zu bytes, %zu pictures\n",
              encoded.stream.size(), encoded.pictures.size());

  // 3. Verify the stream decodes, and report quality.
  const lsm::mpeg::DecodeResult decoded =
      lsm::mpeg::decode_stream(encoded.stream);
  double worst_psnr = 1e9;
  for (const lsm::mpeg::DecodedPicture& picture : decoded.pictures) {
    const double psnr = lsm::mpeg::psnr_y(
        video[static_cast<std::size_t>(picture.display_index)],
        picture.frame);
    if (psnr < worst_psnr) worst_psnr = psnr;
  }
  std::printf("decoded %zu pictures, worst luma PSNR %.1f dB\n",
              decoded.pictures.size(), worst_psnr);

  // 4. Recover the trace FROM THE BITS: start-code walk only.
  const lsm::mpeg::ParseResult parsed =
      lsm::mpeg::parse_stream(encoded.stream);
  const lsm::trace::Trace trace = parsed.display_trace("codec-roundtrip");
  std::printf("%s\n",
              lsm::trace::to_string(lsm::trace::compute_stats(trace)).c_str());

  // 5. Smooth the recovered trace and check Theorem 1.
  lsm::core::SmootherParams params;
  params.K = 1;
  params.H = trace.pattern().N();
  params.D = 0.2;
  params.tau = trace.tau();
  const lsm::core::SmoothingResult result =
      lsm::core::smooth_basic(trace, params);
  const lsm::core::TheoremReport report =
      lsm::core::check_theorem1(result, trace);
  const lsm::core::SmoothnessMetrics metrics =
      lsm::core::evaluate(result, trace);
  std::printf("smoothing: delay bound %s (max %.4f s), %d rate changes, "
              "max rate %.3f Mbps, area diff %.4f\n",
              report.delay_bound_ok ? "OK" : "VIOLATED", report.max_delay,
              metrics.rate_changes, metrics.max_rate / 1e6,
              metrics.area_difference);
  return 0;
}
