// trace_tool: command-line utility over the library.
//
//   trace_tool list
//       List the built-in paper sequences.
//   trace_tool export <sequence> <file>
//       Write a built-in sequence to a trace file.
//   trace_tool stats <file>
//       Print statistics of a trace file.
//   trace_tool smooth <file> [D [K [H]]]
//       Smooth a trace file (defaults D=0.2, K=1, H=N) and print the
//       schedule summary plus the paper's four measures.
//   trace_tool delays <file> [D [K [H]]]
//       Print the per-picture delay series (for plotting).
//   trace_tool model <file> <pictures> <seed> <outfile>
//       Fit the statistical model to a trace and generate a synthetic trace
//       of the given length from it.
//   trace_tool optimal <file> [D]
//       Compare the basic algorithm against the offline-optimal (taut
//       string) schedule at delay bound D.
//
// Runs with no arguments as a self-demo: exports Driving1 to a temporary
// file, then runs stats and smooth on it.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/metrics.h"
#include "core/optimal.h"
#include "core/smoother.h"
#include "core/theorem.h"
#include "trace/io.h"
#include "trace/model.h"
#include "trace/sequences.h"
#include "trace/stats.h"

namespace {

lsm::trace::Trace builtin(const std::string& name) {
  if (name == "driving1") return lsm::trace::driving1();
  if (name == "driving2") return lsm::trace::driving2();
  if (name == "tennis") return lsm::trace::tennis();
  if (name == "backyard") return lsm::trace::backyard();
  std::fprintf(stderr, "unknown sequence '%s' (driving1, driving2, tennis, "
                       "backyard)\n",
               name.c_str());
  std::exit(2);
}

lsm::core::SmootherParams params_from_args(const lsm::trace::Trace& trace,
                                           int argc, char** argv, int from) {
  lsm::core::SmootherParams params;
  params.tau = trace.tau();
  params.H = trace.pattern().N();
  params.D = argc > from ? std::atof(argv[from]) : 0.2;
  params.K = argc > from + 1 ? std::atoi(argv[from + 1]) : 1;
  if (argc > from + 2) params.H = std::atoi(argv[from + 2]);
  return params;
}

int cmd_stats(const lsm::trace::Trace& trace) {
  std::printf("name     : %s\n", trace.name().c_str());
  std::printf("pattern  : %s (N=%d, M=%d)\n",
              trace.pattern().to_string().c_str(), trace.pattern().N(),
              trace.pattern().M());
  std::printf("pictures : %d (%.2f s at %.1f pictures/s)\n",
              trace.picture_count(), trace.duration(), 1.0 / trace.tau());
  std::printf("%s", lsm::trace::to_string(
                        lsm::trace::compute_stats(trace)).c_str());
  return 0;
}

int cmd_smooth(const lsm::trace::Trace& trace,
               const lsm::core::SmootherParams& params) {
  params.validate();
  const lsm::core::SmoothingResult result =
      lsm::core::smooth_basic(trace, params);
  const lsm::core::TheoremReport report =
      lsm::core::check_theorem1(result, trace);
  const lsm::core::SmoothnessMetrics metrics =
      lsm::core::evaluate(result, trace);
  std::printf("D=%.4f K=%d H=%d  (theorem regime: %s)\n", params.D, params.K,
              params.H, params.guarantees_delay_bound() ? "yes" : "NO");
  std::printf("delay bound      : %s (max delay %.4f s, %d violations)\n",
              report.delay_bound_ok ? "satisfied" : "VIOLATED",
              report.max_delay, report.delay_violations);
  std::printf("continuous serve : %s\n",
              report.continuous_service_ok ? "satisfied" : "VIOLATED");
  std::printf("area difference  : %.4f\n", metrics.area_difference);
  std::printf("rate changes     : %d\n", metrics.rate_changes);
  std::printf("max rate         : %.4f Mbps\n", metrics.max_rate / 1e6);
  std::printf("rate stddev      : %.4f Mbps\n", metrics.rate_stddev / 1e6);
  return report.all_ok() ? 0 : 1;
}

int cmd_delays(const lsm::trace::Trace& trace,
               const lsm::core::SmootherParams& params) {
  const lsm::core::SmoothingResult result =
      lsm::core::smooth_basic(trace, params);
  std::printf("# picture delay_seconds rate_bps\n");
  for (const lsm::core::PictureSend& send : result.sends) {
    std::printf("%d %.6f %.1f\n", send.index, send.delay, send.rate);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    // Self-demo.
    const std::string path = "/tmp/lsm_driving1.trace";
    lsm::trace::save_trace_file(lsm::trace::driving1(), path);
    std::printf("(demo) exported driving1 to %s\n\n", path.c_str());
    const lsm::trace::Trace trace = lsm::trace::load_trace_file(path);
    cmd_stats(trace);
    std::printf("\n");
    lsm::core::SmootherParams params;
    params.tau = trace.tau();
    params.H = trace.pattern().N();
    return cmd_smooth(trace, params);
  }

  const std::string command = argv[1];
  if (command == "list") {
    for (const char* name : {"driving1", "driving2", "tennis", "backyard"}) {
      std::printf("%s\n", name);
    }
    return 0;
  }
  if (command == "export" && argc >= 4) {
    lsm::trace::save_trace_file(builtin(argv[2]), argv[3]);
    std::printf("wrote %s\n", argv[3]);
    return 0;
  }
  if (command == "stats" && argc >= 3) {
    return cmd_stats(lsm::trace::load_trace_file(argv[2]));
  }
  if (command == "smooth" && argc >= 3) {
    const lsm::trace::Trace trace = lsm::trace::load_trace_file(argv[2]);
    return cmd_smooth(trace, params_from_args(trace, argc, argv, 3));
  }
  if (command == "delays" && argc >= 3) {
    const lsm::trace::Trace trace = lsm::trace::load_trace_file(argv[2]);
    return cmd_delays(trace, params_from_args(trace, argc, argv, 3));
  }
  if (command == "model" && argc >= 6) {
    const lsm::trace::Trace source = lsm::trace::load_trace_file(argv[2]);
    const lsm::trace::TraceModel model = lsm::trace::TraceModel::fit(source);
    const lsm::trace::Trace generated = model.generate(
        std::atoi(argv[3]), static_cast<std::uint64_t>(std::atoll(argv[4])));
    lsm::trace::save_trace_file(generated, argv[5]);
    std::printf("fitted %s (%d phases) and wrote %d pictures to %s\n",
                source.name().c_str(), model.pattern().N(),
                generated.picture_count(), argv[5]);
    return 0;
  }
  if (command == "optimal" && argc >= 3) {
    const lsm::trace::Trace trace = lsm::trace::load_trace_file(argv[2]);
    const double bound = argc > 3 ? std::atof(argv[3]) : 0.2;
    lsm::core::SmootherParams params;
    params.tau = trace.tau();
    params.H = trace.pattern().N();
    params.D = bound;
    const lsm::core::SmoothingResult basic =
        lsm::core::smooth_basic(trace, params);
    const lsm::core::OptimalResult optimal =
        lsm::core::smooth_offline_optimal(trace, bound);
    const double basic_peak = basic.schedule().max_rate();
    std::printf("D=%.4f s\n", bound);
    std::printf("basic (causal, K=1)   peak: %.4f Mbps\n", basic_peak / 1e6);
    std::printf("offline optimal       peak: %.4f Mbps\n",
                optimal.peak_rate / 1e6);
    std::printf("causality premium: %.1f%%\n",
                100.0 * (basic_peak / optimal.peak_rate - 1.0));
    return 0;
  }
  std::fprintf(stderr,
               "usage: trace_tool [list | export <seq> <file> | stats <file> "
               "| smooth <file> [D [K [H]]] | delays <file> [D [K [H]]] | "
               "model <file> <pictures> <seed> <out> | optimal <file> [D]]\n");
  return 2;
}
