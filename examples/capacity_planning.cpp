// Capacity planning: "how many of these video streams fit on this link?"
// — the question the smoothing layer ultimately serves. Walks one link
// through three service models:
//
//   1. CBR per stream (startup delay d): reserve min_cbr_rate each;
//   2. smoothed VBR with deterministic (sigma, rho) admission — worst-case
//      guaranteed, and therefore no better than CBR (both are corridor
//      extreme points; see doc/THEORY.md);
//   3. smoothed VBR with STATISTICAL overbooking near the mean rate —
//      where multiplexing actually pays; the example simulates the
//      overbooked aggregate to show the loss stays negligible.
//
//   $ ./capacity_planning [link_Mbps [buffer_kbit]]
#include <cstdio>
#include <cstdlib>

#include "core/cbr.h"
#include "core/smoother.h"
#include "net/admission.h"
#include "net/mux.h"
#include "net/renegotiation.h"
#include "trace/sequences.h"

int main(int argc, char** argv) {
  const double link_bps = (argc > 1 ? std::atof(argv[1]) : 45.0) * 1e6;
  const double buffer_bits = (argc > 2 ? std::atof(argv[2]) : 600.0) * 1e3;
  const double delay = 0.2;

  std::printf("link %.1f Mbps, switch buffer %.0f kbit, delay budget %.1f s\n",
              link_bps / 1e6, buffer_bits / 1e3, delay);

  const std::vector<lsm::trace::Trace> catalog =
      lsm::trace::paper_sequences();

  // Per-title provisioning numbers.
  std::printf("\n%-10s %10s %12s %12s %14s\n", "title", "mean", "CBR@0.2s",
              "smoothedPk", "renegs/10s");
  struct Plan {
    double cbr_rate;
    double rho;
    double sigma;
  };
  std::vector<Plan> plans;
  for (const lsm::trace::Trace& t : catalog) {
    lsm::core::SmootherParams params;
    params.tau = t.tau();
    params.D = delay;
    params.H = t.pattern().N();
    const lsm::core::SmoothingResult smoothed =
        lsm::core::smooth_basic(t, params);
    const lsm::core::RateSchedule schedule = smoothed.schedule();

    const double cbr = lsm::core::min_cbr_rate(t, delay);
    const double rho = schedule.max_rate();  // reserve the smoothed peak
    const double sigma = lsm::net::min_bucket_depth(schedule, rho);
    const lsm::net::ReservationResult reneg = lsm::net::plan_reservation(
        schedule, lsm::net::RenegotiationPolicy{});
    plans.push_back(Plan{cbr, rho, sigma});
    std::printf("%-10s %9.2fM %11.2fM %11.2fM %14d\n", t.name().c_str(),
                t.mean_rate() / 1e6, cbr / 1e6, rho / 1e6,
                reneg.renegotiations);
  }

  // Admission sweeps: round-robin through the catalog until the link fills.
  auto admit_cbr = [&]() {
    double committed = 0.0;
    int count = 0;
    while (true) {
      const Plan& plan = plans[static_cast<std::size_t>(count) % plans.size()];
      if (committed + plan.cbr_rate > link_bps) break;
      committed += plan.cbr_rate;
      ++count;
    }
    return count;
  };
  auto admit_smoothed = [&]() {
    lsm::net::AdmissionController controller(link_bps, buffer_bits);
    int count = 0;
    while (controller.try_admit(lsm::net::StreamDescriptor{
        plans[static_cast<std::size_t>(count) % plans.size()].sigma,
        plans[static_cast<std::size_t>(count) % plans.size()].rho})) {
      ++count;
      if (count > 1000) break;
    }
    return count;
  };

  const int cbr_streams = admit_cbr();
  const int smoothed_streams = admit_smoothed();

  std::printf("\nstreams admitted on this link:\n");
  std::printf("  CBR reservations @ d=0.2s          : %d\n", cbr_streams);
  std::printf("  smoothed VBR, deterministic (s,r)  : %d\n",
              smoothed_streams);

  // Statistical overbooking frontier: book streams at factor x their MEAN
  // and simulate the admitted aggregate through a fluid multiplexer.
  std::printf("\nstatistical overbooking frontier (smoothed streams):\n");
  std::printf("%14s %10s %14s\n", "booking", "streams", "sim. loss");
  for (const double factor : {1.05, 1.10, 1.20, 1.30}) {
    std::vector<lsm::core::RateSchedule> schedules;
    double committed = 0.0;
    int count = 0;
    while (true) {
      const lsm::trace::Trace& t =
          catalog[static_cast<std::size_t>(count) % catalog.size()];
      if (committed + factor * t.mean_rate() > link_bps) break;
      committed += factor * t.mean_rate();
      lsm::core::SmootherParams params;
      params.tau = t.tau();
      params.D = delay;
      params.H = t.pattern().N();
      schedules.push_back(
          lsm::core::smooth_basic(t, params).schedule().shifted_left(
              -0.0531 * count));
      ++count;
    }
    lsm::net::FluidMuxConfig mux_config;
    mux_config.service_rate_bps = link_bps;
    mux_config.buffer_bits = buffer_bits;
    const double loss =
        lsm::net::simulate_fluid_mux(schedules, mux_config).loss_ratio;
    std::printf("%11.2fx mean %7d %14.2e\n", factor, count, loss);
  }

  std::printf("\nDeterministic admission cannot beat CBR (both reserve the "
              "worst case); the multiplexing gain comes from statistical "
              "overbooking of SMOOTHED streams, whose picture-scale bursts "
              "are gone. The residual loss here overstates reality: this "
              "catalog cycles the same four titles, so scene-level peaks "
              "are perfectly correlated across copies — independent content "
              "multiplexes better (see statmux_gain).\n");
  return 0;
}
