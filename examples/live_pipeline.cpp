// Live transport pipeline: the paper's Figure 1 system model as an
// event-driven simulation — encoder queue, smoother, paced sender, network,
// and a receiver playback buffer.
//
//   $ ./live_pipeline
//
// Demonstrates the deployable contract of Theorem 1: if the receiver delays
// playout by D + network latency, the decoder never underflows; shave that
// offset and late pictures appear.
#include <cstdio>

#include "net/transport.h"
#include "obs/metrics.h"
#include "trace/sequences.h"

int main() {
  const lsm::trace::Trace trace = lsm::trace::tennis();

  lsm::net::PipelineConfig config;
  config.params.K = 1;
  config.params.H = trace.pattern().N();
  config.params.D = 0.2;
  config.params.tau = trace.tau();
  config.network_latency = 0.015;

  std::printf(
      "Live pipeline over %s (%d pictures), D=%.2f s, latency=%.0f ms\n",
      trace.name().c_str(), trace.picture_count(), config.params.D,
      config.network_latency * 1e3);

  // Safe playout offset: D + latency, chosen automatically.
  const lsm::net::PipelineReport safe =
      lsm::net::run_live_pipeline(trace, config);
  std::printf("\nplayout offset %.3f s (= D + latency):\n",
              safe.playout_offset);
  std::printf("  underflows: %d / %zu pictures\n", safe.underflows,
              safe.deliveries.size());
  std::printf("  max sender delay: %.4f s (bound %.2f s)\n",
              safe.max_sender_delay, config.params.D);

  // Sweep the playout offset downward to find where lateness begins.
  std::printf("\nplayout offset sweep:\n");
  std::printf("%10s %12s\n", "offset(s)", "underflows");
  for (double offset = 0.22; offset >= 0.049; offset -= 0.02) {
    lsm::net::PipelineConfig swept = config;
    swept.playout_offset = offset;
    const lsm::net::PipelineReport report =
        lsm::net::run_live_pipeline(trace, swept);
    std::printf("%10.3f %12d\n", offset, report.underflows);
  }

  // Show the first few deliveries in detail.
  std::printf("\nfirst deliveries (t_i, d_i, received, deadline):\n");
  for (std::size_t k = 0; k < 6 && k < safe.deliveries.size(); ++k) {
    const lsm::net::PictureDelivery& d = safe.deliveries[k];
    std::printf("  picture %2d: %.4f  %.4f  %.4f  %.4f%s\n", d.index,
                d.sender_start, d.sender_done, d.received, d.deadline,
                d.late ? "  LATE" : "");
  }

  // The unified metrics snapshot — the line a deployment (or the CI
  // metrics-schema gate) scrapes; see tools/metrics_schema.json.
  lsm::obs::Registry registry;
  registry.counter("live.pictures").add(safe.deliveries.size());
  registry.counter("live.underflows")
      .add(static_cast<std::uint64_t>(safe.underflows));
  registry.gauge("live.max_sender_delay_s").set(safe.max_sender_delay);
  registry.gauge("live.worst_delay_excess_s").set(safe.worst_delay_excess);
  registry.gauge("live.playout_offset_s").set(safe.playout_offset);
  // Health plane (DESIGN.md §3.10): the pipeline's per-picture delay and
  // slack sketches, plus an epoch-aligned series of sender delays (one
  // "epoch" per picture, windows of one GOP).
  registry.sketch("live.delay_seconds").assign(safe.delay_sketch);
  registry.sketch("live.delay_slack_seconds").assign(safe.slack_sketch);
  lsm::obs::TimeSeriesOptions series_options;
  series_options.window_count = 16;
  series_options.epochs_per_window = trace.pattern().N();
  series_options.sum_scale = 1e9;  // nanosecond-exact delay sums
  series_options.with_sketch = true;
  lsm::obs::TimeSeriesMetric& delay_series =
      registry.timeseries("live.series.delay_seconds", series_options);
  for (const lsm::net::PictureDelivery& d : safe.deliveries) {
    delay_series.record(d.index - 1,
                        d.sender_done - (d.index - 1) * config.params.tau);
  }
  registry.set_time(static_cast<double>(safe.deliveries.size()) *
                    config.params.tau);
  std::printf("\n# metrics: %s\n", registry.to_json().c_str());
  return 0;
}
