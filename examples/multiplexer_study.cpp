// Statistical-multiplexing study: many VBR video sources share one
// finite-buffer ATM-style link. Reproduces the motivating observation of the
// paper (refs [10, 11]) — smoothing the sources raises the utilization a
// link can run at for a given cell-loss bound. The sources are smoothed in
// parallel by the batch runtime, which also demonstrates the perf-counter
// report a production deployment would scrape.
//
//   $ ./multiplexer_study
#include <cstdio>
#include <vector>

#include "core/smoother.h"
#include "net/mux.h"
#include "net/packetize.h"
#include "obs/metrics.h"
#include "runtime/batch.h"
#include "trace/sequences.h"

namespace {

/// Builds one mux input set from the four paper sequences, phase-shifted,
/// each either raw (per-picture peak rate) or using its smoothed schedule.
std::vector<std::vector<lsm::net::Cell>> build_sources(
    const std::vector<lsm::trace::Trace>& traces,
    const std::vector<lsm::core::SmoothingResult>* smoothed,
    double& total_mean) {
  std::vector<std::vector<lsm::net::Cell>> sources;
  total_mean = 0.0;
  for (std::size_t index = 0; index < traces.size(); ++index) {
    std::vector<lsm::net::Cell> cells =
        smoothed != nullptr
            ? lsm::net::packetize((*smoothed)[index],
                                  static_cast<int>(index))
            : lsm::net::packetize_unsmoothed(traces[index],
                                             static_cast<int>(index));
    // Desynchronize the sources' GOP phases.
    lsm::net::shift_cells(cells, 0.073 * static_cast<double>(index));
    sources.push_back(std::move(cells));
    total_mean += traces[index].mean_rate();
  }
  return sources;
}

}  // namespace

int main() {
  const std::vector<lsm::trace::Trace> traces = lsm::trace::paper_sequences();

  // Smooth all four sources in one parallel batch (paper parameters:
  // K = 1, H = N, D = 0.2).
  lsm::runtime::BatchSmoother batch;
  const std::vector<lsm::core::SmoothingResult> smoothed =
      batch.run(lsm::runtime::make_jobs(traces, [](const lsm::trace::Trace& t) {
        lsm::core::SmootherParams params;
        params.K = 1;
        params.H = t.pattern().N();
        params.D = 0.2;
        params.tau = t.tau();
        return params;
      }));

  double total_mean = 0.0;
  const auto raw = build_sources(traces, nullptr, total_mean);
  const auto smooth = build_sources(traces, &smoothed, total_mean);

  std::printf("4 sources (Driving1, Driving2, Tennis, Backyard), "
              "aggregate mean %.2f Mbps\n\n",
              total_mean / 1e6);

  std::printf("cell-loss ratio vs utilization (buffer = 200 cells):\n");
  std::printf("%12s %14s %14s\n", "utilization", "raw", "smoothed");
  for (const double utilization : {0.55, 0.65, 0.75, 0.85, 0.95}) {
    const lsm::net::MuxConfig config{total_mean / utilization, 200};
    const lsm::net::MuxResult raw_result =
        lsm::net::simulate_cell_mux(raw, config);
    const lsm::net::MuxResult smooth_result =
        lsm::net::simulate_cell_mux(smooth, config);
    std::printf("%12.2f %14.6f %14.6f\n", utilization, raw_result.loss_ratio,
                smooth_result.loss_ratio);
  }

  std::printf("\ncell-loss ratio vs buffer size (utilization = 0.80):\n");
  std::printf("%12s %14s %14s\n", "buffer", "raw", "smoothed");
  for (const int buffer : {25, 50, 100, 200, 400, 800}) {
    const lsm::net::MuxConfig config{total_mean / 0.80, buffer};
    const lsm::net::MuxResult raw_result =
        lsm::net::simulate_cell_mux(raw, config);
    const lsm::net::MuxResult smooth_result =
        lsm::net::simulate_cell_mux(smooth, config);
    std::printf("%12d %14.6f %14.6f\n", buffer, raw_result.loss_ratio,
                smooth_result.loss_ratio);
  }

  // Batch runtime counters through the unified metrics snapshot (the same
  // shape every emitter produces; tools/metrics_schema.json validates it).
  lsm::obs::Registry registry;
  batch.counters().export_metrics(registry, "batch");
  registry.gauge("batch.workers")
      .set(static_cast<double>(batch.thread_count()));
  std::printf("\nsmoothing runtime counters (%d workers):\n",
              batch.thread_count());
  std::printf("# metrics: %s\n", registry.to_json().c_str());
  return 0;
}
