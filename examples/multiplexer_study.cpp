// Statistical-multiplexing study: many VBR video sources share one
// finite-buffer ATM-style link. Reproduces the motivating observation of the
// paper (refs [10, 11]) — smoothing the sources raises the utilization a
// link can run at for a given cell-loss bound.
//
//   $ ./multiplexer_study
#include <cstdio>
#include <vector>

#include "core/smoother.h"
#include "net/mux.h"
#include "net/packetize.h"
#include "trace/sequences.h"

namespace {

/// Builds one mux input set: the four paper sequences, phase-shifted, each
/// either raw (per-picture peak rate) or smoothed.
std::vector<std::vector<lsm::net::Cell>> build_sources(bool smoothed,
                                                       double& total_mean) {
  std::vector<std::vector<lsm::net::Cell>> sources;
  total_mean = 0.0;
  int index = 0;
  for (const lsm::trace::Trace& trace : lsm::trace::paper_sequences()) {
    std::vector<lsm::net::Cell> cells;
    if (smoothed) {
      lsm::core::SmootherParams params;
      params.K = 1;
      params.H = trace.pattern().N();
      params.D = 0.2;
      params.tau = trace.tau();
      cells = lsm::net::packetize(lsm::core::smooth_basic(trace, params),
                                  index);
    } else {
      cells = lsm::net::packetize_unsmoothed(trace, index);
    }
    // Desynchronize the sources' GOP phases.
    lsm::net::shift_cells(cells, 0.073 * index);
    sources.push_back(std::move(cells));
    total_mean += trace.mean_rate();
    ++index;
  }
  return sources;
}

}  // namespace

int main() {
  double total_mean = 0.0;
  const auto raw = build_sources(false, total_mean);
  const auto smooth = build_sources(true, total_mean);

  std::printf("4 sources (Driving1, Driving2, Tennis, Backyard), "
              "aggregate mean %.2f Mbps\n\n",
              total_mean / 1e6);

  std::printf("cell-loss ratio vs utilization (buffer = 200 cells):\n");
  std::printf("%12s %14s %14s\n", "utilization", "raw", "smoothed");
  for (const double utilization : {0.55, 0.65, 0.75, 0.85, 0.95}) {
    const lsm::net::MuxConfig config{total_mean / utilization, 200};
    const lsm::net::MuxResult raw_result =
        lsm::net::simulate_cell_mux(raw, config);
    const lsm::net::MuxResult smooth_result =
        lsm::net::simulate_cell_mux(smooth, config);
    std::printf("%12.2f %14.6f %14.6f\n", utilization, raw_result.loss_ratio,
                smooth_result.loss_ratio);
  }

  std::printf("\ncell-loss ratio vs buffer size (utilization = 0.80):\n");
  std::printf("%12s %14s %14s\n", "buffer", "raw", "smoothed");
  for (const int buffer : {25, 50, 100, 200, 400, 800}) {
    const lsm::net::MuxConfig config{total_mean / 0.80, buffer};
    const lsm::net::MuxResult raw_result =
        lsm::net::simulate_cell_mux(raw, config);
    const lsm::net::MuxResult smooth_result =
        lsm::net::simulate_cell_mux(smooth, config);
    std::printf("%12d %14.6f %14.6f\n", buffer, raw_result.loss_ratio,
                smooth_result.loss_ratio);
  }
  return 0;
}
