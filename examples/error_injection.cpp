// Error injection: corrupt a coded bit stream and watch the decoder
// resynchronize at slice start codes (paper, Section 2: a slice is the
// smallest unit available to a decoder for resynchronization; the authors'
// companion technical report studied exactly this by hand-flipping bits).
//
//   $ ./error_injection
#include <cstdio>

#include "mpeg/decoder.h"
#include "mpeg/encoder.h"
#include "mpeg/parser.h"
#include "mpeg/videogen.h"
#include "sim/rng.h"

int main() {
  // Encode a short clip.
  lsm::mpeg::VideoConfig video_config;
  video_config.width = 128;
  video_config.height = 96;
  video_config.scenes = {lsm::mpeg::VideoScene{27, 1.0, 0.4}};
  video_config.seed = 5;
  const std::vector<lsm::mpeg::Frame> video =
      lsm::mpeg::generate_video(video_config);
  lsm::mpeg::EncoderConfig config;
  config.pattern = lsm::trace::GopPattern(9, 3);
  const lsm::mpeg::EncodeResult encoded =
      lsm::mpeg::Encoder(config).encode(video);
  const lsm::mpeg::DecodeResult clean =
      lsm::mpeg::decode_stream(encoded.stream);
  std::printf("clean stream: %zu bytes, %zu pictures, %zu units\n",
              encoded.stream.size(), encoded.pictures.size(),
              lsm::mpeg::scan_units(encoded.stream).size());

  // Flip increasing numbers of random bits (sparing the sequence header)
  // and decode resiliently.
  std::printf("\n%10s %16s %14s %12s %12s\n", "bit flips", "damaged slices",
              "skipped units", "pictures", "worst PSNR");
  lsm::sim::Rng rng(123);
  for (const int flips : {1, 4, 16, 64, 256}) {
    std::vector<std::uint8_t> corrupted = encoded.stream;
    for (int f = 0; f < flips; ++f) {
      const auto at = static_cast<std::size_t>(rng.uniform_int(
          16, static_cast<std::int64_t>(corrupted.size()) - 1));
      corrupted[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    }
    const lsm::mpeg::ResilientDecodeResult resilient =
        lsm::mpeg::decode_stream_resilient(corrupted);
    // Compare what survived against the clean decode.
    double worst = 1e99;
    for (std::size_t k = 0; k < resilient.result.pictures.size() &&
                            k < clean.pictures.size();
         ++k) {
      worst = std::min(worst,
                       lsm::mpeg::psnr_y(resilient.result.pictures[k].frame,
                                         clean.pictures[k].frame));
    }
    std::printf("%10d %16d %14d %12zu %11.1fdB\n", flips,
                resilient.damaged_slices, resilient.skipped_units,
                resilient.result.pictures.size(),
                resilient.result.pictures.empty() ? 0.0 : worst);
  }

  std::printf("\nEach damaged slice is concealed from the reference picture; "
              "decoding always resumes at the next start code.\n");
  return 0;
}
