// Quickstart: smooth one MPEG picture-size trace with the paper's
// recommended parameters (K = 1, H = N, D = 0.2 s) and print what happened.
//
//   $ ./quickstart
//
// This is the five-minute tour of the library: build a trace, run the basic
// algorithm, verify Theorem 1, and compare against ideal smoothing.
#include <cstdio>

#include "core/ideal.h"
#include "core/metrics.h"
#include "core/smoother.h"
#include "core/theorem.h"
#include "trace/sequences.h"
#include "trace/stats.h"

int main() {
  // 1. A picture-size trace: the paper's Driving1 sequence (N = 9, M = 3,
  //    640x480, 30 pictures/s). Use lsm::trace::load_trace_file() for your
  //    own measured traces.
  const lsm::trace::Trace trace = lsm::trace::driving1();
  const lsm::trace::TraceStats stats = lsm::trace::compute_stats(trace);
  std::printf("Sequence %s: %d pictures, pattern %s\n", trace.name().c_str(),
              trace.picture_count(), trace.pattern().to_string().c_str());
  std::printf("%s\n", lsm::trace::to_string(stats).c_str());

  // 2. Parameters. The paper's conclusion: K = 1 (minimal delay), H = N,
  //    D = 0.2 s is an excellent operating point.
  lsm::core::SmootherParams params;
  params.K = 1;
  params.H = trace.pattern().N();
  params.D = 0.2;
  params.tau = trace.tau();

  // 3. Run the basic algorithm (Figure 2 of the paper).
  const lsm::core::SmoothingResult result =
      lsm::core::smooth_basic(trace, params);

  // 4. Verify the Theorem 1 properties on the concrete run.
  const lsm::core::TheoremReport report =
      lsm::core::check_theorem1(result, trace);
  std::printf("Theorem 1: delay bound %s, continuous service %s, "
              "max delay %.4f s (bound %.4f s)\n",
              report.delay_bound_ok ? "OK" : "VIOLATED",
              report.continuous_service_ok ? "OK" : "VIOLATED",
              report.max_delay, params.D);

  // 5. Smoothness measures, including the area difference against ideal
  //    smoothing (Eq. 16).
  const lsm::core::SmoothnessMetrics metrics =
      lsm::core::evaluate(result, trace);
  std::printf("rate changes : %d (of %d pictures)\n", metrics.rate_changes,
              trace.picture_count());
  std::printf("max rate     : %.3f Mbps (unsmoothed peak %.3f Mbps)\n",
              metrics.max_rate / 1e6, stats.unsmoothed_peak_bps / 1e6);
  std::printf("rate stddev  : %.3f Mbps around mean %.3f Mbps\n",
              metrics.rate_stddev / 1e6, metrics.rate_mean / 1e6);
  std::printf("area diff    : %.4f vs ideal smoothing\n",
              metrics.area_difference);

  // 6. For contrast: ideal smoothing is smoother but delays are unbounded.
  const lsm::core::SmoothingResult ideal = lsm::core::smooth_ideal(trace);
  std::printf("ideal smoothing max delay: %.4f s (no bound parameter)\n",
              ideal.max_delay());
  return 0;
}
