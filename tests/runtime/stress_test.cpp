// Runtime stress: heavy, irregular load with multiple client threads
// hammering one BatchSmoother and pools being created and torn down while
// full. Primarily a ThreadSanitizer target (CI runs this binary with
// -DLSM_SANITIZE=thread); the assertions also pin determinism under load.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/smoother.h"
#include "runtime/batch.h"
#include "runtime/pool.h"
#include "trace/pattern.h"
#include "trace/trace.h"

namespace lsm::runtime {
namespace {

using lsm::core::SmoothingResult;
using lsm::core::SmootherParams;
using lsm::trace::Trace;

// Small deterministic synthetic trace; size varies with `seed` so different
// jobs do different amounts of work.
Trace tiny_trace(int seed) {
  const int pictures = 30 + (seed % 5) * 9;
  std::vector<lsm::trace::Bits> sizes;
  sizes.reserve(static_cast<std::size_t>(pictures));
  for (int i = 0; i < pictures; ++i) {
    const int in_gop = i % 9;
    const lsm::trace::Bits base =
        in_gop == 0 ? 200000 : (in_gop % 3 == 0 ? 90000 : 20000);
    sizes.push_back(base + (seed * 131 + i * 17) % 5000);
  }
  return Trace("tiny" + std::to_string(seed), lsm::trace::GopPattern(9, 3),
               std::move(sizes));
}

SmootherParams tiny_params(const Trace& trace) {
  SmootherParams params;
  params.K = 1;
  params.H = trace.pattern().N();
  params.D = 0.2;
  params.tau = trace.tau();
  return params;
}

TEST(RuntimeStress, ManyClientsShareOneBatchSmoother) {
  constexpr int kClients = 4;
  constexpr int kBatchesPerClient = 8;
  constexpr int kJobsPerBatch = 16;

  std::vector<Trace> traces;
  for (int seed = 0; seed < kJobsPerBatch; ++seed) {
    traces.push_back(tiny_trace(seed));
  }
  std::vector<BatchJob> jobs;
  for (const Trace& trace : traces) {
    jobs.push_back(BatchJob{&trace, tiny_params(trace),
                            lsm::core::Variant::kBasic});
  }
  std::vector<SmoothingResult> expected;
  for (const Trace& trace : traces) {
    expected.push_back(lsm::core::smooth_basic(trace, tiny_params(trace)));
  }

  BatchSmoother batch(4);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&batch, &jobs, &expected, &mismatches] {
      for (int round = 0; round < kBatchesPerClient; ++round) {
        const std::vector<SmoothingResult> results = batch.run(jobs);
        for (std::size_t i = 0; i < results.size(); ++i) {
          if (results[i].sends.size() != expected[i].sends.size() ||
              results[i].sends.back().rate != expected[i].sends.back().rate) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);
  const PerfCounters total = batch.counters().total();
  EXPECT_EQ(total.streams, static_cast<std::uint64_t>(kClients) *
                               kBatchesPerClient * kJobsPerBatch);
}

TEST(RuntimeStress, PoolTearDownWhileFull) {
  std::atomic<int> ran{0};
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(3);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // destructor must drain all 64 without losing or double-running any
  }
  EXPECT_EQ(ran.load(), 20 * 64);
}

TEST(RuntimeStress, InterleavedSubmitAndWaitIdle) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int wave = 0; wave < 50; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    ASSERT_EQ(ran.load(), (wave + 1) * 20);
  }
}

}  // namespace
}  // namespace lsm::runtime
