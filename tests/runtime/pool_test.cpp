// ThreadPool correctness: every submitted task runs exactly once, from any
// number of submitting threads, including tasks that fan out recursively;
// wait_idle() observes all of their effects; the destructor drains what is
// left. These tests run under ThreadSanitizer in the CI matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "runtime/pool.h"

namespace lsm::runtime {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int> ran{0};
  constexpr int kTasks = 1000;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1);
}

TEST(ThreadPool, ContendedSubmissionFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  constexpr int kClients = 4;
  constexpr int kPerClient = 250;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&pool, &sum, c] {
      for (int i = 0; i < kPerClient; ++i) {
        pool.submit([&sum, c, i] {
          sum.fetch_add(c * kPerClient + i, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& client : clients) client.join();
  pool.wait_idle();
  const long n = kClients * kPerClient;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPool, RecursiveFanOutIsStolenAndCompleted) {
  ThreadPool pool(4);
  std::atomic<int> leaves{0};
  // Each root task spawns children from inside the pool; children land on
  // the submitting worker's own queue and must be stolen or run locally.
  constexpr int kRoots = 8;
  constexpr int kChildren = 64;
  for (int r = 0; r < kRoots; ++r) {
    pool.submit([&pool, &leaves] {
      for (int c = 0; c < kChildren; ++c) {
        pool.submit(
            [&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(leaves.load(), kRoots * kChildren);
}

TEST(ThreadPool, WorkerIndexIsInRangeInsideAndMinusOneOutside) {
  EXPECT_EQ(ThreadPool::worker_index(), -1);
  ThreadPool pool(3);
  EXPECT_EQ(pool.index_of_current_thread(), -1);
  std::mutex mutex;
  std::set<int> seen;
  for (int i = 0; i < 64; ++i) {
    pool.submit([&pool, &mutex, &seen] {
      const int index = pool.index_of_current_thread();
      std::lock_guard<std::mutex> lock(mutex);
      seen.insert(index);
    });
  }
  pool.wait_idle();
  for (const int index : seen) {
    EXPECT_GE(index, 0);
    EXPECT_LT(index, pool.thread_count());
  }
  // worker_index() agrees with index_of_current_thread() on pool threads.
  pool.submit([] { EXPECT_EQ(ThreadPool::worker_index() >= 0, true); });
  pool.wait_idle();
}

TEST(ThreadPool, DestructorDrainsRemainingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // no wait_idle: the destructor must finish the queue before joining
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr int kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  parallel_for(pool, kN,
               [&hits](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, WaitIdleOrdersWorkerWritesBeforeCaller) {
  // Non-atomic per-slot writes, read after wait_idle: the pattern
  // PerfCounters relies on. TSan validates the happens-before claim.
  ThreadPool pool(4);
  std::vector<long> slots(256, 0);
  for (int i = 0; i < 256; ++i) {
    pool.submit([&slots, i] { slots[static_cast<std::size_t>(i)] = i + 1; });
  }
  pool.wait_idle();
  long sum = 0;
  for (const long v : slots) sum += v;
  EXPECT_EQ(sum, 256L * 257 / 2);
}

}  // namespace
}  // namespace lsm::runtime
