// MpscRing correctness: bounded capacity with explicit full/empty
// signalling, FIFO per producer, and no lost or duplicated values under
// many concurrent producers. The contended tests run under ThreadSanitizer
// in the CI matrix — the ring is the statmux admission mailbox and must be
// race-free by construction.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "runtime/mpsc_ring.h"

namespace lsm::runtime {
namespace {

TEST(MpscRing, PushPopRoundTripsInFifoOrder) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(i));
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  MpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  MpscRing<int> tiny(1);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(MpscRing, FullRingRejectsPushWithoutBlocking) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  // Popping one slot frees exactly one push.
  EXPECT_TRUE(ring.try_push(99));
  EXPECT_FALSE(ring.try_push(100));
}

TEST(MpscRing, EmptyReflectsConsumerView) {
  MpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  ASSERT_TRUE(ring.try_push(7));
  EXPECT_FALSE(ring.empty());
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, WrapsAroundManyLaps) {
  MpscRing<int> ring(4);
  int out = -1;
  for (int lap = 0; lap < 1000; ++lap) {
    ASSERT_TRUE(ring.try_push(lap));
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, lap);
  }
}

TEST(MpscRing, ConcurrentProducersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscRing<std::uint32_t> ring(256);
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint32_t value =
            (static_cast<std::uint32_t>(p) << 16) |
            static_cast<std::uint32_t>(i);
        while (!ring.try_push(value)) std::this_thread::yield();
      }
    });
  }

  std::set<std::uint32_t> seen;
  std::vector<int> last_per_producer(kProducers, -1);
  std::thread consumer([&] {
    std::uint32_t value = 0;
    while (seen.size() <
           static_cast<std::size_t>(kProducers) * kPerProducer) {
      if (!ring.try_pop(value)) {
        if (done.load(std::memory_order_relaxed) && ring.empty()) break;
        std::this_thread::yield();
        continue;
      }
      EXPECT_TRUE(seen.insert(value).second) << "duplicate " << value;
      // Values from one producer must arrive in that producer's order.
      const int p = static_cast<int>(value >> 16);
      const int i = static_cast<int>(value & 0xffffu);
      EXPECT_GT(i, last_per_producer[p]);
      last_per_producer[p] = i;
    }
  });

  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_relaxed);
  consumer.join();
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kProducers) * kPerProducer);
}

TEST(MpscRing, ContendedFullRingStaysConsistent) {
  // Tiny ring, many producers: exercises the full-detection path under
  // contention. Everything eventually gets through; nothing is duplicated.
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 1000;
  MpscRing<int> ring(2);
  std::vector<std::thread> producers;
  std::atomic<long> pushed{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!ring.try_push(1)) std::this_thread::yield();
        pushed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  long popped = 0;
  int out = 0;
  while (popped < static_cast<long>(kProducers) * kPerProducer) {
    if (ring.try_pop(out)) {
      ++popped;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(popped, pushed.load());
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRing, DrainIntoAppendsEveryPublishedValueInFifoOrder) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(ring.try_push(i));
  std::vector<int> out{-1};  // drain appends, it must not clobber
  EXPECT_EQ(ring.drain_into(out), 6u);
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[0], -1);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i + 1)], i);
  // The ring is empty and fully reusable afterwards.
  EXPECT_EQ(ring.drain_into(out), 0u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  out.clear();
  EXPECT_EQ(ring.drain_into(out), 8u);
}

TEST(MpscRing, DrainIntoLosesNothingUnderConcurrentProducers) {
  // Producers race a draining consumer through a deliberately tiny ring.
  // drain_into is bounded by its head snapshot and stops at a
  // claimed-but-unpublished slot, so values may arrive across several
  // drains — but every value arrives exactly once.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  MpscRing<int> ring(4);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!ring.try_push(p * kPerProducer + i)) {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<int> drained;
  while (drained.size() <
         static_cast<std::size_t>(kProducers) * kPerProducer) {
    if (ring.drain_into(drained) == 0) std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ring.drain_into(drained), 0u);

  std::set<int> unique(drained.begin(), drained.end());
  EXPECT_EQ(unique.size(), drained.size()) << "duplicated values";
  EXPECT_EQ(drained.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  // Per-producer FIFO survives the multi-drain consumption.
  std::vector<int> last(kProducers, -1);
  for (int value : drained) {
    const int p = value / kPerProducer;
    EXPECT_GT(value % kPerProducer, last[static_cast<std::size_t>(p)]);
    last[static_cast<std::size_t>(p)] = value % kPerProducer;
  }
}

}  // namespace
}  // namespace lsm::runtime
