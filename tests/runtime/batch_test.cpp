// BatchSmoother: sharded execution must be observationally identical to
// serial smooth() — bitwise-equal results in job order for all four shipped
// paper traces — and the per-worker counters must aggregate to exactly what
// the results contain.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/smoother.h"
#include "runtime/batch.h"
#include "trace/io.h"

namespace lsm::runtime {
namespace {

using lsm::core::SmoothingResult;
using lsm::core::SmootherParams;
using lsm::trace::Trace;

std::string data_dir() {
  const char* dir = std::getenv("LSM_SOURCE_DIR");
  return dir != nullptr ? std::string(dir) + "/data" : "../data";
}

std::vector<Trace> shipped_traces() {
  std::vector<Trace> traces;
  for (const char* name : {"driving1", "driving2", "tennis", "backyard"}) {
    traces.push_back(
        lsm::trace::load_trace_file(data_dir() + "/" + name + ".trace"));
  }
  return traces;
}

SmootherParams params_for(const Trace& trace) {
  SmootherParams params;
  params.K = 1;
  params.H = trace.pattern().N();
  params.D = 0.2;
  params.tau = trace.tau();
  return params;
}

// Bitwise equality, not approximate: the batch path must run the exact
// same arithmetic as the serial path.
void expect_bitwise_equal(const SmoothingResult& a, const SmoothingResult& b) {
  ASSERT_EQ(a.sends.size(), b.sends.size());
  for (std::size_t i = 0; i < a.sends.size(); ++i) {
    EXPECT_EQ(a.sends[i].index, b.sends[i].index);
    EXPECT_EQ(std::memcmp(&a.sends[i].start, &b.sends[i].start,
                          sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a.sends[i].depart, &b.sends[i].depart,
                          sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a.sends[i].rate, &b.sends[i].rate,
                          sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a.sends[i].delay, &b.sends[i].delay,
                          sizeof(double)), 0);
    EXPECT_EQ(a.sends[i].bits, b.sends[i].bits);
  }
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size());
  for (std::size_t i = 0; i < a.diagnostics.size(); ++i) {
    EXPECT_EQ(a.diagnostics[i].lookahead_used, b.diagnostics[i].lookahead_used);
    EXPECT_EQ(a.diagnostics[i].early_exit, b.diagnostics[i].early_exit);
    EXPECT_EQ(a.diagnostics[i].rate_changed, b.diagnostics[i].rate_changed);
  }
  EXPECT_EQ(a.estimator_name, b.estimator_name);
  EXPECT_EQ(a.variant, b.variant);
}

TEST(BatchSmoother, MatchesSerialBitwiseOnAllShippedTraces) {
  const std::vector<Trace> traces = shipped_traces();
  const std::vector<BatchJob> jobs = make_jobs(traces, params_for);
  BatchSmoother batch(4);
  const std::vector<SmoothingResult> parallel = batch.run(jobs);
  ASSERT_EQ(parallel.size(), traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const SmoothingResult serial =
        lsm::core::smooth_basic(traces[i], params_for(traces[i]));
    expect_bitwise_equal(parallel[i], serial);
  }
}

TEST(BatchSmoother, ResultOrderFollowsJobOrderNotCompletionOrder) {
  const std::vector<Trace> traces = shipped_traces();
  // Mix long and short jobs so completion order differs from job order.
  std::vector<BatchJob> jobs;
  for (int repeat = 0; repeat < 4; ++repeat) {
    for (const Trace& trace : traces) {
      jobs.push_back(BatchJob{&trace, params_for(trace),
                              lsm::core::Variant::kBasic});
    }
  }
  BatchSmoother batch(4);
  const std::vector<SmoothingResult> results = batch.run(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(results[i].sends.size(),
              static_cast<std::size_t>(jobs[i].trace->picture_count()))
        << "slot " << i;
  }
}

TEST(BatchSmoother, VariantIsHonoredPerJob) {
  const std::vector<Trace> traces = shipped_traces();
  const Trace& trace = traces[0];
  std::vector<BatchJob> jobs = {
      BatchJob{&trace, params_for(trace), lsm::core::Variant::kBasic},
      BatchJob{&trace, params_for(trace), lsm::core::Variant::kMovingAverage},
  };
  BatchSmoother batch(2);
  const std::vector<SmoothingResult> results = batch.run(jobs);
  expect_bitwise_equal(results[0],
                       lsm::core::smooth_basic(trace, params_for(trace)));
  expect_bitwise_equal(results[1],
                       lsm::core::smooth_modified(trace, params_for(trace)));
}

TEST(BatchSmoother, CountersAggregateToResultContents) {
  const std::vector<Trace> traces = shipped_traces();
  const std::vector<BatchJob> jobs = make_jobs(traces, params_for);
  BatchSmoother batch(3);
  const std::vector<SmoothingResult> results = batch.run(jobs);
  const PerfCounters total = batch.counters().total();
  std::uint64_t pictures = 0, changes = 0, exits = 0;
  for (const SmoothingResult& result : results) {
    pictures += result.sends.size();
    for (const auto& d : result.diagnostics) {
      changes += d.rate_changed ? 1 : 0;
      exits += d.early_exit ? 1 : 0;
    }
  }
  EXPECT_EQ(total.streams, jobs.size());
  EXPECT_EQ(total.pictures, pictures);
  EXPECT_EQ(total.rate_changes, changes);
  EXPECT_EQ(total.early_exits, exits);
  EXPECT_GT(total.wall_ns, 0u);
  // Counters accumulate across runs until reset.
  batch.run(jobs);
  EXPECT_EQ(batch.counters().total().streams, 2 * jobs.size());
  batch.counters().reset();
  EXPECT_EQ(batch.counters().total().streams, 0u);
}

TEST(BatchSmoother, RunIntoReusesResultSlots) {
  const std::vector<Trace> traces = shipped_traces();
  const std::vector<BatchJob> jobs = make_jobs(traces, params_for);
  BatchSmoother batch(2);
  std::vector<SmoothingResult> results;
  batch.run_into(jobs, results);
  ASSERT_EQ(results.size(), jobs.size());
  const void* first_buffer = results[0].sends.data();
  const std::size_t first_capacity = results[0].sends.capacity();
  batch.run_into(jobs, results);  // same shapes: no reallocation expected
  EXPECT_EQ(results[0].sends.data(), first_buffer);
  EXPECT_EQ(results[0].sends.capacity(), first_capacity);
  expect_bitwise_equal(
      results[0], lsm::core::smooth_basic(traces[0], params_for(traces[0])));
}

TEST(BatchSmoother, NullTraceIsRejected) {
  BatchSmoother batch(1);
  std::vector<BatchJob> jobs(1);  // trace left null
  EXPECT_THROW(batch.run(jobs), std::invalid_argument);
}

TEST(BatchSmoother, EmptyBatchYieldsEmptyResults) {
  BatchSmoother batch(2);
  EXPECT_TRUE(batch.run({}).empty());
}

}  // namespace
}  // namespace lsm::runtime
