// TimingWheel correctness: entries fire exactly at their due tick across
// level-0 slots, level-1/2 cascades, and the beyond-horizon overflow
// list; same-tick entries keep insertion order (the statmux shard's
// canonical sort depends on getting the complete due set, the wheel
// guarantees the set and a deterministic order). SlotAllocator: LIFO slot
// recycling against a monotone high-water mark.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/slab_arena.h"
#include "runtime/timing_wheel.h"

namespace lsm::runtime {
namespace {

struct Entry {
  std::int64_t due = 0;
  int id = 0;
};

using Wheel = TimingWheel<Entry>;

/// Collects ticks [from, to) and returns every fired entry tagged with
/// the tick it fired on (encoded into the id's sign-free upper range is
/// not needed — the due field is the expected fire tick already).
std::vector<std::pair<std::int64_t, Entry>> drive(Wheel& wheel,
                                                  std::int64_t from,
                                                  std::int64_t to) {
  std::vector<std::pair<std::int64_t, Entry>> fired;
  std::vector<Entry> batch;
  for (std::int64_t t = from; t < to; ++t) {
    batch.clear();
    wheel.collect(t, batch);
    for (const Entry& e : batch) fired.emplace_back(t, e);
  }
  return fired;
}

TEST(TimingWheel, FiresLevelZeroEntriesAtTheirDueTick) {
  Wheel wheel(0);
  wheel.schedule(3, {3, 1});
  wheel.schedule(7, {7, 2});
  wheel.schedule(3, {3, 3});  // same tick, later insertion
  EXPECT_EQ(wheel.size(), 3);

  const auto fired = drive(wheel, 0, 10);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0].first, 3);
  EXPECT_EQ(fired[0].second.id, 1);  // insertion order within the tick
  EXPECT_EQ(fired[1].first, 3);
  EXPECT_EQ(fired[1].second.id, 3);
  EXPECT_EQ(fired[2].first, 7);
  EXPECT_EQ(fired[2].second.id, 2);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, PastDueClampsToTheNextCollect) {
  Wheel wheel(0);
  std::vector<Entry> batch;
  wheel.collect(0, batch);
  wheel.collect(1, batch);
  ASSERT_TRUE(batch.empty());
  wheel.schedule(0, {0, 42});  // already in the past: fires at tick 2
  const auto fired = drive(wheel, 2, 4);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, 2);
  EXPECT_EQ(fired[0].second.id, 42);
}

TEST(TimingWheel, CascadesLevelOneEntriesToTheExactTick) {
  Wheel wheel(0);
  // Past the level-0 span (256 ticks): filed at level 1, cascaded down
  // when the cursor crosses the 256-tick boundary.
  for (int k = 0; k < 8; ++k) {
    const std::int64_t due = 300 + 17 * k;
    wheel.schedule(due, {due, k});
  }
  const auto fired = drive(wheel, 0, 600);
  ASSERT_EQ(fired.size(), 8u);
  for (const auto& [tick, entry] : fired) {
    EXPECT_EQ(tick, entry.due);
  }
  EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, CascadesLevelTwoEntriesToTheExactTick) {
  Wheel wheel(0);
  // Past the level-1 span (65536 ticks): two cascades before firing.
  const std::int64_t due = 70000 + 3;
  wheel.schedule(due, {due, 9});
  const auto fired = drive(wheel, 0, due + 2);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, due);
  EXPECT_EQ(fired[0].second.id, 9);
}

TEST(TimingWheel, OverflowEntriesRefileAtTheHorizonLap) {
  // Start the cursor just below a horizon boundary so the overflow
  // re-examination (once per top-level lap) happens a few ticks in.
  const std::int64_t start = Wheel::kHorizon - 4;
  Wheel wheel(start);
  const std::int64_t due = start + Wheel::kHorizon + 11;  // beyond horizon
  wheel.schedule(due, {due, 7});
  EXPECT_EQ(wheel.size(), 1);

  std::vector<Entry> batch;
  for (std::int64_t t = start; t < due; ++t) {
    batch.clear();
    wheel.collect(t, batch);
    ASSERT_TRUE(batch.empty()) << "fired early at tick " << t;
  }
  batch.clear();
  wheel.collect(due, batch);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 7);
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.next_tick(), due + 1);
}

TEST(TimingWheel, SizeCountsResidentsAcrossLevels) {
  Wheel wheel(0);
  wheel.schedule(1, {1, 0});
  wheel.schedule(1000, {1000, 1});
  wheel.schedule(100000, {100000, 2});
  EXPECT_EQ(wheel.size(), 3);
  std::vector<Entry> batch;
  wheel.collect(0, batch);
  wheel.collect(1, batch);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(wheel.size(), 2);  // cascade bookkeeping must not double-count
}

TEST(SlotAllocator, GrowsAHighWaterThenRecyclesLifo) {
  SlotAllocator slots(4);
  EXPECT_EQ(slots.acquire(), 0u);
  EXPECT_EQ(slots.acquire(), 1u);
  EXPECT_EQ(slots.acquire(), 2u);
  EXPECT_EQ(slots.live(), 3u);
  EXPECT_EQ(slots.high_water(), 3u);

  slots.release(1);
  slots.release(0);
  EXPECT_EQ(slots.live(), 1u);
  // LIFO: the most recently released slot is the hottest in cache.
  EXPECT_EQ(slots.acquire(), 0u);
  EXPECT_EQ(slots.acquire(), 1u);
  EXPECT_EQ(slots.high_water(), 3u);  // reuse never moves the high water
  EXPECT_EQ(slots.acquire(), 3u);     // exhausted free list grows again
  EXPECT_EQ(slots.high_water(), 4u);
  EXPECT_EQ(slots.live(), 4u);
}

}  // namespace
}  // namespace lsm::runtime
