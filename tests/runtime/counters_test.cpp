// PerfCounters / PerfRegistry: aggregation arithmetic, slot routing, reset,
// and the JSON report shape consumed by the CI bench artifacts.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "runtime/counters.h"

namespace lsm::runtime {
namespace {

PerfCounters make(std::uint64_t base) {
  PerfCounters c;
  c.streams = base;
  c.pictures = base * 10;
  c.rate_changes = base * 2;
  c.early_exits = base + 1;
  c.wall_ns = base * 100;
  c.cpu_ns = base * 90;
  return c;
}

TEST(PerfCounters, PlusEqualsSumsEveryField) {
  PerfCounters a = make(3);
  a += make(4);
  EXPECT_EQ(a.streams, 7u);
  EXPECT_EQ(a.pictures, 70u);
  EXPECT_EQ(a.rate_changes, 14u);
  EXPECT_EQ(a.early_exits, 9u);
  EXPECT_EQ(a.wall_ns, 700u);
  EXPECT_EQ(a.cpu_ns, 630u);
}

TEST(PerfCounters, WallNsPerStream) {
  EXPECT_EQ(PerfCounters{}.wall_ns_per_stream(), 0.0);
  PerfCounters c;
  c.streams = 4;
  c.wall_ns = 1000;
  EXPECT_DOUBLE_EQ(c.wall_ns_per_stream(), 250.0);
}

TEST(PerfRegistry, TotalSumsWorkerAndExternalSlots) {
  PerfRegistry registry(3);
  EXPECT_EQ(registry.worker_count(), 3);
  registry.slot(0) = make(1);
  registry.slot(2) = make(2);
  registry.slot(-1) = make(5);  // external slot
  const PerfCounters total = registry.total();
  EXPECT_EQ(total.streams, 8u);
  EXPECT_EQ(total.pictures, 80u);
}

TEST(PerfRegistry, OutOfRangeIndexRoutesToExternalSlot) {
  PerfRegistry registry(2);
  registry.slot(7).streams = 9;  // beyond worker range -> external
  EXPECT_EQ(registry.slot(-1).streams, 9u);
}

TEST(PerfRegistry, ResetZeroesAllSlots) {
  PerfRegistry registry(2);
  registry.slot(0) = make(6);
  registry.slot(-1) = make(6);
  registry.reset();
  EXPECT_EQ(registry.total().streams, 0u);
  EXPECT_EQ(registry.total().wall_ns, 0u);
}

TEST(PerfRegistry, JsonReportHasTotalsWorkersAndDerivedCost) {
  PerfRegistry registry(2);
  registry.slot(0).streams = 2;
  registry.slot(0).wall_ns = 500;
  registry.slot(1).pictures = 33;
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"total\""), std::string::npos);
  EXPECT_NE(json.find("\"streams\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"pictures\": 33"), std::string::npos);
  EXPECT_NE(json.find("\"wall_ns_per_stream\": 250"), std::string::npos);
  EXPECT_NE(json.find("\"workers\": ["), std::string::npos);
  EXPECT_NE(json.find("\"external\""), std::string::npos);
}

TEST(LatencyHistogram, BucketsByPowerOfTwoMilliseconds) {
  LatencyHistogram histogram;
  histogram.add(0.0005);  // < 1 ms -> bucket 0
  histogram.add(0.0015);  // < 2 ms -> bucket 1
  histogram.add(0.1);     // < 128 ms -> bucket 7
  histogram.add(100.0);   // overflow -> last bucket
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.bucket(0), 1u);
  EXPECT_EQ(histogram.bucket(1), 1u);
  EXPECT_EQ(histogram.bucket(7), 1u);
  EXPECT_EQ(histogram.bucket(LatencyHistogram::kBuckets - 1), 1u);
  EXPECT_DOUBLE_EQ(histogram.max_seconds(), 100.0);
}

TEST(LatencyHistogram, ClampsNegativeAndMergesExactly) {
  LatencyHistogram a;
  a.add(-1.0);  // clamped to 0 -> bucket 0, counted
  a.add(0.01);
  LatencyHistogram b;
  b.add(0.01);
  b.add(3.0);
  a += b;
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.bucket(0), 1u);
  EXPECT_EQ(a.clamped(), 1u);
  EXPECT_DOUBLE_EQ(a.max_seconds(), 3.0);
}

TEST(LatencyHistogram, ClampsNanAndInfinityAndCountsThem) {
  LatencyHistogram histogram;
  histogram.add(std::numeric_limits<double>::quiet_NaN());
  histogram.add(std::numeric_limits<double>::infinity());
  histogram.add(-std::numeric_limits<double>::infinity());
  histogram.add(-0.5);
  histogram.add(0.25);  // the one genuine sample
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.clamped(), 4u);
  EXPECT_EQ(histogram.bucket(0), 4u);  // every clamp lands in bucket 0
  EXPECT_DOUBLE_EQ(histogram.max_seconds(), 0.25);
}

TEST(LatencyHistogram, MergePreservesClampedCounts) {
  LatencyHistogram a;
  a.add(std::numeric_limits<double>::quiet_NaN());
  a.add(0.001);
  LatencyHistogram b;
  b.add(std::numeric_limits<double>::infinity());
  b.add(-2.0);
  a += b;
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.clamped(), 3u);
  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"clamped\": 3"), std::string::npos);
}

TEST(LatencyHistogram, ZeroIsAValidSampleNotAClamp) {
  LatencyHistogram histogram;
  histogram.add(0.0);
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_EQ(histogram.clamped(), 0u);
  EXPECT_EQ(histogram.bucket(0), 1u);
}

TEST(LatencyHistogram, JsonShape) {
  LatencyHistogram histogram;
  histogram.add(0.002);
  const std::string json = histogram.to_json();
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"clamped\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"max_s\": 0.002"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": ["), std::string::npos);
}

TEST(DegradationCounters, StartEmptyAndDetectAnyFault) {
  DegradationCounters counters;
  EXPECT_FALSE(counters.any_fault());
  counters.denials = 1;
  EXPECT_TRUE(counters.any_fault());
  counters = DegradationCounters{};
  counters.worst_delay_excess = 0.01;
  EXPECT_TRUE(counters.any_fault());
  counters = DegradationCounters{};
  counters.recovery_latency.add(0.05);
  EXPECT_TRUE(counters.any_fault());
}

TEST(DegradationCounters, AggregationSumsCountsAndMaxesExcess) {
  DegradationCounters a;
  a.fades_injected = 2;
  a.late_pictures = 3;
  a.retransmitted_bits = 1000.0;
  a.worst_delay_excess = 0.02;
  a.recovery_latency.add(0.01);
  DegradationCounters b;
  b.fades_injected = 1;
  b.giveups = 4;
  b.worst_delay_excess = 0.05;
  b.recovery_latency.add(0.02);
  a += b;
  EXPECT_EQ(a.fades_injected, 3u);
  EXPECT_EQ(a.late_pictures, 3u);
  EXPECT_EQ(a.giveups, 4u);
  EXPECT_DOUBLE_EQ(a.retransmitted_bits, 1000.0);
  EXPECT_DOUBLE_EQ(a.worst_delay_excess, 0.05);  // max, not sum
  EXPECT_EQ(a.recovery_latency.count(), 2u);
}

TEST(DegradationCounters, JsonCarriesEveryFaultClassAndHistogram) {
  DegradationCounters counters;
  counters.fades_injected = 1;
  counters.losses_injected = 2;
  counters.stalls_injected = 3;
  counters.denial_windows_injected = 4;
  counters.late_pictures = 5;
  counters.recovery_latency.add(0.1);
  const std::string json = counters.to_json();
  EXPECT_NE(json.find("\"fades_injected\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"losses_injected\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"stalls_injected\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"denial_windows_injected\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"late_pictures\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"recovery_latency\": {"), std::string::npos);
  EXPECT_NE(json.find("\"worst_delay_excess\": 0"), std::string::npos);
}

TEST(ExportMetrics, RegistrySnapshotCarriesCountersAndHistogram) {
  PerfRegistry perf(2);
  perf.slot(0).streams = 3;
  perf.slot(0).pictures = 90;
  DegradationCounters degradation;
  degradation.denials = 2;
  degradation.worst_delay_excess = 0.125;
  degradation.recovery_latency.add(0.01);
  degradation.recovery_latency.add(
      std::numeric_limits<double>::quiet_NaN());

  obs::Registry registry;
  perf.export_metrics(registry, "batch");
  degradation.export_metrics(registry, "faults");
  const obs::MetricsSnapshot snapshot = registry.snapshot();

  const std::string json = snapshot.to_json();
  EXPECT_NE(json.find("\"batch.streams\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"batch.pictures\": 90"), std::string::npos);
  EXPECT_NE(json.find("\"faults.denials\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"faults.worst_delay_excess\": 0.125"),
            std::string::npos);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].name, "faults.recovery_latency_seconds");
  EXPECT_EQ(snapshot.histograms[0].data.count, 2u);
  EXPECT_EQ(snapshot.histograms[0].data.clamped, 1u);
}

TEST(Clocks, MonotoneAndNonNegative) {
  const std::uint64_t a = wall_clock_ns();
  const std::uint64_t b = wall_clock_ns();
  EXPECT_GE(b, a);
  // thread_cpu_ns is 0 on platforms without a thread CPU clock; where it
  // exists it must also be monotone.
  const std::uint64_t c = thread_cpu_ns();
  const std::uint64_t d = thread_cpu_ns();
  EXPECT_GE(d, c);
}

}  // namespace
}  // namespace lsm::runtime
