// Mid-stream coding-pattern changes (paper, Section 4.4: "An MPEG encoder
// may change the values of M and N adaptively as the scene ... changes.
// Note that the basic algorithm does not depend on M, and it uses N only in
// picture size estimation.") We concatenate a Driving1-style segment
// (N=9, M=3) with a Driving2-style one (N=6, M=2) and verify:
//   * Theorem 1 properties hold across the switch for every estimator
//     (estimates may be wrong; guarantees may not);
//   * type-aware estimators (last-same-type) degrade more gracefully than
//     the fixed-N pattern walk right after the switch.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/metrics.h"
#include "core/smoother.h"
#include "core/theorem.h"
#include "trace/sequences.h"

namespace lsm::core {
namespace {

using lsm::trace::GopPattern;
using lsm::trace::Trace;

Trace switched_trace() {
  // First half of the Driving video coded as N=9/M=3, second half as
  // N=6/M=2 — a plausible adaptive-encoder behaviour at the scene change.
  const Trace d1 = lsm::trace::driving1().slice(1, 153);  // 17 patterns
  const Trace d2 = lsm::trace::driving2().slice(155, 300);
  // Make the second segment begin at an I picture: driving2 has N=6, so
  // pictures 151, 157, ... are I; 155 is not. Use 157.
  const Trace d2_aligned = lsm::trace::driving2().slice(157, 300);
  (void)d2;
  return lsm::trace::concat(d1, d2_aligned);
}

TEST(PatternSwitch, ConcatKeepsBothTypeSequences) {
  const Trace t = switched_trace();
  EXPECT_EQ(t.picture_count(), 153 + (300 - 157 + 1));
  // Picture 154 is the first of the second segment: an I picture.
  EXPECT_EQ(t.type_of(154), lsm::trace::PictureType::I);
  // Pattern of the second segment is IBPBPB: picture 155 is B, 156 is P.
  EXPECT_EQ(t.type_of(155), lsm::trace::PictureType::B);
  EXPECT_EQ(t.type_of(156), lsm::trace::PictureType::P);
}

TEST(PatternSwitch, TheoremHoldsAcrossTheSwitchForEveryEstimator) {
  const Trace t = switched_trace();
  SmootherParams params;
  params.tau = t.tau();
  params.D = 0.2;
  params.H = 9;

  const PatternEstimator pattern(t);
  const OracleEstimator oracle(t);
  const LastSameTypeEstimator last(t);
  const TypeMeanEstimator mean(t);
  const PhaseEwmaEstimator ewma(t);
  for (const SizeEstimator* estimator :
       {static_cast<const SizeEstimator*>(&pattern),
        static_cast<const SizeEstimator*>(&oracle),
        static_cast<const SizeEstimator*>(&last),
        static_cast<const SizeEstimator*>(&mean),
        static_cast<const SizeEstimator*>(&ewma)}) {
    const SmoothingResult result = smooth(t, params, *estimator);
    const TheoremReport report = check_theorem1(result, t);
    EXPECT_TRUE(report.delay_bound_ok)
        << estimator->name() << " max delay " << report.max_delay;
    EXPECT_TRUE(report.continuous_service_ok) << estimator->name();
  }
}

TEST(PatternSwitch, SmoothingQualityRemainsReasonable) {
  // Even with the misleading fixed-N estimator the schedule must stay far
  // smoother than the unsmoothed stream.
  const Trace t = switched_trace();
  SmootherParams params;
  params.tau = t.tau();
  params.D = 0.2;
  params.H = 9;
  const SmoothingResult result = smooth_basic(t, params);
  const RateSchedule schedule = result.schedule();
  double unsmoothed_peak = 0.0;
  for (int i = 1; i <= t.picture_count(); ++i) {
    unsmoothed_peak = std::max(
        unsmoothed_peak, static_cast<double>(t.size_of(i)) / t.tau());
  }
  EXPECT_LT(schedule.max_rate(), 0.55 * unsmoothed_peak);
}

TEST(PatternSwitch, OracleBeatsFixedPatternWalkAfterSwitch) {
  // The fixed-N pattern estimator misreads phases after the switch; the
  // oracle does not. Compare rate changes in the post-switch region.
  const Trace t = switched_trace();
  SmootherParams params;
  params.tau = t.tau();
  params.D = 0.2;
  params.H = 9;
  const PatternEstimator pattern(t);
  const OracleEstimator oracle(t);
  const SmoothingResult with_pattern = smooth(t, params, pattern);
  const SmoothingResult with_oracle = smooth(t, params, oracle);
  auto changes_after = [](const SmoothingResult& result, int from) {
    int count = 0;
    for (std::size_t k = static_cast<std::size_t>(from);
         k < result.diagnostics.size(); ++k) {
      count += result.diagnostics[k].rate_changed ? 1 : 0;
    }
    return count;
  };
  EXPECT_LE(changes_after(with_oracle, 153), changes_after(with_pattern, 153));
}

TEST(PatternSwitch, ScaledTraceScalesRatesExactly) {
  // Every quantity in the algorithm is homogeneous of degree one in the
  // picture sizes — PROVIDED the warm-up default estimates are scaled too
  // (they are absolute constants from the paper, so smooth_basic alone is
  // not scale-invariant during the first pattern).
  const Trace t = lsm::trace::backyard();
  const Trace doubled = t.scaled(2.0);
  EXPECT_NEAR(doubled.mean_rate(), 2.0 * t.mean_rate(),
              0.001 * t.mean_rate());
  SmootherParams params;
  params.tau = t.tau();
  params.H = 12;
  const DefaultSizes base_defaults;
  const DefaultSizes doubled_defaults{2 * base_defaults.i_bits,
                                      2 * base_defaults.p_bits,
                                      2 * base_defaults.b_bits};
  const PatternEstimator base_estimator(t, base_defaults);
  const PatternEstimator doubled_estimator(doubled, doubled_defaults);
  const SmoothingResult base = smooth(t, params, base_estimator);
  const SmoothingResult scaled = smooth(doubled, params, doubled_estimator);
  ASSERT_EQ(base.sends.size(), scaled.sends.size());
  for (std::size_t k = 0; k < base.sends.size(); ++k) {
    ASSERT_NEAR(scaled.sends[k].rate, 2.0 * base.sends[k].rate,
                1e-6 * scaled.sends[k].rate)
        << "picture " << k + 1;
  }
}

TEST(PatternSwitch, ConcatRejectsMismatchedPeriods) {
  const Trace a("a", GopPattern(3, 3), {10, 20, 30}, 0.1);
  const Trace b("b", GopPattern(3, 3), {10, 20, 30}, 0.2);
  EXPECT_THROW(lsm::trace::concat(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace lsm::core
