// Guard for the LSM_SIMD_LEVEL environment override: ctest runs this
// binary (and only this binary) with LSM_SIMD_LEVEL=scalar in its
// environment (see tests/CMakeLists.txt), so the first
// active_simd_level() call in the process must fold the override in and
// land on the scalar tier — the path the in-process
// set_active_simd_level() differentials cannot cover. When the variable
// is absent (someone running the binary by hand) the test skips rather
// than asserting a level it has no reason to expect.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "core/simd_dispatch.h"
#include "core/smoother.h"
#include "trace/trace.h"

namespace {

using namespace lsm;

TEST(ScalarGuard, EnvOverridePinsTheScalarTier) {
  const char* env = std::getenv("LSM_SIMD_LEVEL");
  if (env == nullptr || std::string(env) != "scalar") {
    GTEST_SKIP() << "LSM_SIMD_LEVEL=scalar not set; this is the "
                    "ctest-driven env-override guard";
  }
  // First (and only) read of the active level in this process: the env
  // override must have taken effect without any set_active call.
  EXPECT_EQ(simd::active_simd_level(), simd::SimdLevel::kScalar);

  // And the forced-scalar fast path must still match the virtual
  // reference bitwise — the same identity the per-level differentials
  // pin, but reached through the environment instead of the API.
  std::mt19937 rng(3u);
  std::uniform_int_distribution<trace::Bits> size(1'000, 900'000);
  std::vector<trace::Bits> sizes;
  for (int i = 0; i < 120; ++i) sizes.push_back(size(rng));
  const trace::Trace t("scalar-guard", trace::GopPattern(9, 3),
                       std::move(sizes), 1.0 / 24.0);
  const core::PatternEstimator estimator(t);
  core::SmootherParams params;
  params.tau = t.tau();
  params.H = 18;
  params.D = 0.2;
  const core::SmoothingResult fast =
      core::smooth(t, params, estimator, core::Variant::kBasic,
                   core::ExecutionPath::kAuto);
  const core::SmoothingResult reference =
      core::smooth(t, params, estimator, core::Variant::kBasic,
                   core::ExecutionPath::kReference);
  ASSERT_EQ(fast.sends.size(), reference.sends.size());
  for (std::size_t k = 0; k < fast.sends.size(); ++k) {
    EXPECT_EQ(fast.sends[k].start, reference.sends[k].start) << "k=" << k;
    EXPECT_EQ(fast.sends[k].rate, reference.sends[k].rate) << "k=" << k;
    EXPECT_EQ(fast.sends[k].depart, reference.sends[k].depart) << "k=" << k;
  }
}

}  // namespace
