// Buffer-constrained offline-optimal smoothing: the taut string through the
// corridor narrowed by a finite receiver buffer (see optimal.h).
#include "core/optimal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "trace/sequences.h"

namespace lsm::core {
namespace {

using lsm::trace::Trace;

constexpr double kHuge = 1e15;

TEST(BufferedOptimal, HugeBufferReducesToUnconstrained) {
  const Trace t = lsm::trace::driving1();
  const double D = 0.2;
  const OptimalResult plain = smooth_offline_optimal(t, D);
  // playout_offset = D makes the playout deadlines coincide with the delay
  // deadlines, so nothing tightens.
  const OptimalResult buffered =
      smooth_offline_optimal_buffered(t, D, kHuge, D);
  EXPECT_NEAR(buffered.peak_rate, plain.peak_rate, 1e-6 * plain.peak_rate);
  for (std::size_t k = 0; k < plain.departures.size(); ++k) {
    ASSERT_NEAR(buffered.departures[k], plain.departures[k], 1e-6);
  }
}

TEST(BufferedOptimal, RespectsTheBufferAtEveryPlayout) {
  const Trace t = lsm::trace::tennis();
  const double D = 0.2;
  const double buffer = 400e3;  // 400 kbit
  const OptimalResult result =
      smooth_offline_optimal_buffered(t, D, buffer, D);
  double played = 0.0;
  for (int i = 1; i <= t.picture_count(); ++i) {
    const double playout = D + (i - 1) * t.tau();
    const double delivered = result.schedule.integral(0.0, playout);
    // Pre-removal occupancy (picture i leaves AT the instant).
    ASSERT_LE(delivered - played, buffer + 1.0) << "picture " << i;
    // Playout feasibility: picture i fully delivered by its playout.
    played += static_cast<double>(t.size_of(i));
    ASSERT_GE(delivered, played - 1.0) << "picture " << i;
  }
}

TEST(BufferedOptimal, StillMeetsTheDelayBound) {
  const Trace t = lsm::trace::driving1();
  const OptimalResult result =
      smooth_offline_optimal_buffered(t, 0.2, 500e3, 0.2);
  EXPECT_LE(result.max_delay(), 0.2 + 1e-6);
}

TEST(BufferedOptimal, TighterBufferRaisesThePeak) {
  const Trace t = lsm::trace::driving1();
  const double D = 0.3;
  double previous = 0.0;
  for (const double buffer : {kHuge, 2000e3, 800e3, 400e3}) {
    const OptimalResult result =
        smooth_offline_optimal_buffered(t, D, buffer, D);
    EXPECT_GE(result.peak_rate, previous - 1e-6)
        << "buffer " << buffer;
    previous = result.peak_rate;
  }
}

TEST(BufferedOptimal, BufferBelowLargestPictureThrows) {
  const Trace t = lsm::trace::driving1();
  double largest = 0.0;
  for (int i = 1; i <= t.picture_count(); ++i) {
    largest = std::max(largest, static_cast<double>(t.size_of(i)));
  }
  EXPECT_THROW(
      smooth_offline_optimal_buffered(t, 0.2, largest * 0.9, 0.2),
      std::invalid_argument);
  EXPECT_NO_THROW(
      smooth_offline_optimal_buffered(t, 0.2, largest * 1.5, 0.2));
}

TEST(BufferedOptimal, RejectsTooEarlyPlayout) {
  const Trace t = lsm::trace::backyard();
  EXPECT_THROW(smooth_offline_optimal_buffered(t, 0.2, kHuge, 0.01),
               std::invalid_argument);
}

TEST(BufferedOptimal, LargerPlayoutOffsetNeverHurtsThePeak) {
  // More playout slack relaxes the playout deadlines (the delay bound still
  // applies), so the peak cannot increase.
  const Trace t = lsm::trace::tennis();
  const double buffer = 1500e3;
  const OptimalResult tight =
      smooth_offline_optimal_buffered(t, 0.3, buffer, 0.1);
  const OptimalResult loose =
      smooth_offline_optimal_buffered(t, 0.3, buffer, 0.3);
  EXPECT_LE(loose.peak_rate, tight.peak_rate + 1e-6);
}

TEST(BufferedOptimal, ConservesAllBits) {
  const Trace t = lsm::trace::backyard();
  const OptimalResult result =
      smooth_offline_optimal_buffered(t, 0.2, 300e3, 0.2);
  const double sent = result.schedule.integral(
      0.0, result.schedule.end_time() + 1.0);
  EXPECT_NEAR(sent, static_cast<double>(t.total_bits()),
              1e-6 * static_cast<double>(t.total_bits()));
}

}  // namespace
}  // namespace lsm::core
