// Unit coverage for the runtime SIMD dispatch layer (core/simd_dispatch.h):
// name/parse round-trips, the clamp-to-detected contract of
// set_active_simd_level, and the metrics publication into a private
// obs::Registry. The cross-tier bitwise differentials live in
// simd_dispatch_identity_test.cpp; this file only pins the plumbing.
#include "core/simd_dispatch.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace lsm::simd {
namespace {

/// Restores the active level on scope exit so these tests cannot poison
/// the tier another test in the same binary runs under.
class ActiveLevelGuard {
 public:
  ActiveLevelGuard() : saved_(active_simd_level()) {}
  ~ActiveLevelGuard() { set_active_simd_level(saved_); }

 private:
  SimdLevel saved_;
};

TEST(SimdDispatch, NamesRoundTripThroughParse) {
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse2, SimdLevel::kAvx2,
        SimdLevel::kAvx512}) {
    const char* name = simd_level_name(level);
    const auto parsed = parse_simd_level(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, level) << name;
  }
}

TEST(SimdDispatch, ParseRejectsUnknownNames) {
  EXPECT_FALSE(parse_simd_level("").has_value());
  EXPECT_FALSE(parse_simd_level("AVX2").has_value());  // canonical is lower
  EXPECT_FALSE(parse_simd_level("avx").has_value());
  EXPECT_FALSE(parse_simd_level("sse4.2").has_value());
  EXPECT_FALSE(parse_simd_level("avx512vl").has_value());
}

TEST(SimdDispatch, DetectedLevelIsStable) {
  // The probe is cached; two calls must agree (and x86-64 guarantees at
  // least SSE2, but non-x86 builds legitimately report scalar, so only
  // the lower bound every platform satisfies is asserted).
  EXPECT_EQ(detected_simd_level(), detected_simd_level());
  EXPECT_GE(detected_simd_level(), SimdLevel::kScalar);
#if defined(__x86_64__) || defined(_M_X64)
  EXPECT_GE(detected_simd_level(), SimdLevel::kSse2);
#endif
}

TEST(SimdDispatch, SetActiveClampsToDetected) {
  const ActiveLevelGuard guard;
  // Requesting more capability than the hardware has must degrade to the
  // detected level, never install an unexecutable tier.
  const SimdLevel installed = set_active_simd_level(SimdLevel::kAvx512);
  EXPECT_LE(installed, detected_simd_level());
  EXPECT_EQ(installed, active_simd_level());
  // Every level at or below detected installs exactly.
  for (int raw = 0; raw <= static_cast<int>(detected_simd_level()); ++raw) {
    const SimdLevel level = static_cast<SimdLevel>(raw);
    EXPECT_EQ(set_active_simd_level(level), level);
    EXPECT_EQ(active_simd_level(), level);
  }
}

TEST(SimdDispatch, PublishRecordsLevelsAsGauges) {
  const ActiveLevelGuard guard;
  set_active_simd_level(SimdLevel::kScalar);
  obs::Registry registry;
  publish_simd_level(registry);
  EXPECT_EQ(registry.gauge("runtime.simd_level").value(), 0.0);
  EXPECT_EQ(registry.gauge("runtime.simd_level_detected").value(),
            static_cast<double>(detected_simd_level()));
  // Moving the level and republishing overwrites the gauge (last write
  // wins, matching the metrics contract).
  if (detected_simd_level() >= SimdLevel::kSse2) {
    set_active_simd_level(SimdLevel::kSse2);
    publish_simd_level(registry);
    EXPECT_EQ(registry.gauge("runtime.simd_level").value(), 1.0);
  }
}

TEST(SimdDispatch, PublishSteadyAllocsGaugeName) {
  obs::Registry registry;
  obs::publish_steady_allocs(registry, "encode", 3);
  EXPECT_EQ(registry.gauge("encode.allocs_steady").value(), 3.0);
  obs::publish_steady_allocs(registry, "encode", 0);
  EXPECT_EQ(registry.gauge("encode.allocs_steady").value(), 0.0);
}

}  // namespace
}  // namespace lsm::simd
