// Differential identity suite for the devirtualized fast path: for every
// concrete estimator kind, both algorithm variants, and a grid of K/H/D
// parameters (including the K=0 no-guarantee regime and lookahead windows
// longer than the trace, which exercise end-of-sequence truncation), the
// sealed-kernel path (ExecutionPath::kAuto) must reproduce the virtual
// reference path (kReference) bit for bit — every PictureSend and every
// StepDiagnostics field compared with exact equality, never a tolerance.
// Seeded random traces keep the cases reproducible.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/smoother.h"
#include "core/streaming.h"
#include "trace/trace.h"

namespace {

using namespace lsm;
using core::ExecutionPath;
using core::SmootherParams;
using core::Variant;

trace::Trace random_trace(unsigned seed, int pictures, int pattern_n,
                          int pattern_m) {
  std::mt19937 rng(seed);
  // Sizes spanning three orders of magnitude, always >= 1 bit.
  std::uniform_int_distribution<trace::Bits> size(1'000, 900'000);
  std::vector<trace::Bits> sizes;
  sizes.reserve(static_cast<std::size_t>(pictures));
  for (int i = 0; i < pictures; ++i) sizes.push_back(size(rng));
  return trace::Trace("fastpath-identity", trace::GopPattern(pattern_n,
                                                             pattern_m),
                      std::move(sizes), 1.0 / 24.0);
}

std::vector<std::unique_ptr<core::SizeEstimator>> all_estimators(
    const trace::Trace& t) {
  std::vector<std::unique_ptr<core::SizeEstimator>> estimators;
  estimators.push_back(std::make_unique<core::PatternEstimator>(t));
  estimators.push_back(std::make_unique<core::OracleEstimator>(t));
  estimators.push_back(std::make_unique<core::LastSameTypeEstimator>(t));
  estimators.push_back(std::make_unique<core::PhaseEwmaEstimator>(t, 0.5));
  estimators.push_back(std::make_unique<core::TypeMeanEstimator>(t));
  return estimators;
}

std::string case_label(const std::string& estimator, Variant variant,
                       const SmootherParams& params) {
  std::ostringstream label;
  label << estimator
        << (variant == Variant::kBasic ? " basic" : " moving-average")
        << " K=" << params.K << " H=" << params.H << " D=" << params.D;
  return label.str();
}

/// Exact, field-by-field comparison — EXPECT_EQ on doubles is deliberate:
/// the fast path promises bitwise-identical schedules, not close ones.
void expect_identical(const core::SmoothingResult& fast,
                      const core::SmoothingResult& reference,
                      const std::string& label) {
  ASSERT_EQ(fast.sends.size(), reference.sends.size()) << label;
  ASSERT_EQ(fast.diagnostics.size(), reference.diagnostics.size()) << label;
  for (std::size_t k = 0; k < fast.sends.size(); ++k) {
    const core::PictureSend& a = fast.sends[k];
    const core::PictureSend& b = reference.sends[k];
    ASSERT_EQ(a.index, b.index) << label;
    ASSERT_EQ(a.bits, b.bits) << label << " picture " << a.index;
    ASSERT_EQ(a.start, b.start) << label << " picture " << a.index;
    ASSERT_EQ(a.rate, b.rate) << label << " picture " << a.index;
    ASSERT_EQ(a.depart, b.depart) << label << " picture " << a.index;
    ASSERT_EQ(a.delay, b.delay) << label << " picture " << a.index;
    const core::StepDiagnostics& da = fast.diagnostics[k];
    const core::StepDiagnostics& db = reference.diagnostics[k];
    ASSERT_EQ(da.lookahead_used, db.lookahead_used)
        << label << " picture " << a.index;
    ASSERT_EQ(da.early_exit, db.early_exit) << label << " picture "
                                            << a.index;
    ASSERT_EQ(da.lower, db.lower) << label << " picture " << a.index;
    ASSERT_EQ(da.upper, db.upper) << label << " picture " << a.index;
    ASSERT_EQ(da.rate_changed, db.rate_changed)
        << label << " picture " << a.index;
  }
}

/// The parameter grid: K spans the violated (0) and guaranteed regimes, H
/// spans no-lookahead, sub-pattern, whole-pattern, and
/// longer-than-two-patterns windows, D spans tight and loose delay bounds.
std::vector<SmootherParams> parameter_grid(const trace::Trace& t) {
  std::vector<SmootherParams> grid;
  const int N = t.pattern().N();
  for (const int K : {0, 1, 2}) {
    for (const int H : {1, 3, N, 2 * N + 1}) {
      for (const double D : {0.1, 0.25}) {
        SmootherParams params;
        params.tau = t.tau();
        params.K = K;
        params.H = H;
        params.D = D;
        grid.push_back(params);
      }
    }
  }
  return grid;
}

void run_identity_grid(const trace::Trace& t) {
  const std::vector<std::unique_ptr<core::SizeEstimator>> estimators =
      all_estimators(t);
  for (const std::unique_ptr<core::SizeEstimator>& estimator : estimators) {
    for (const Variant variant : {Variant::kBasic, Variant::kMovingAverage}) {
      for (const SmootherParams& params : parameter_grid(t)) {
        const std::string label =
            case_label(estimator->name(), variant, params);
        const core::SmoothingResult fast =
            core::smooth(t, params, *estimator, variant,
                         ExecutionPath::kAuto);
        const core::SmoothingResult reference =
            core::smooth(t, params, *estimator, variant,
                         ExecutionPath::kReference);
        expect_identical(fast, reference, label);
      }
    }
  }
}

TEST(FastPathIdentity, KnownEstimatorsResolveToKernels) {
  const trace::Trace t = random_trace(7u, 60, 9, 3);
  SmootherParams params;
  params.tau = t.tau();
  for (const std::unique_ptr<core::SizeEstimator>& estimator :
       all_estimators(t)) {
    core::SmootherEngine fast(t, params, *estimator, Variant::kBasic,
                              ExecutionPath::kAuto);
    EXPECT_TRUE(fast.using_fast_path()) << estimator->name();
    core::SmootherEngine reference(t, params, *estimator, Variant::kBasic,
                                   ExecutionPath::kReference);
    EXPECT_FALSE(reference.using_fast_path()) << estimator->name();
  }
}

// An estimator bound to a different trace must fall back to the reference
// path (its kernel tables would describe the wrong sizes).
TEST(FastPathIdentity, ForeignTraceEstimatorFallsBack) {
  const trace::Trace t = random_trace(11u, 60, 9, 3);
  const trace::Trace other = random_trace(13u, 60, 9, 3);
  const core::PatternEstimator foreign(other);
  SmootherParams params;
  params.tau = t.tau();
  core::SmootherEngine engine(t, params, foreign, Variant::kBasic,
                              ExecutionPath::kAuto);
  EXPECT_FALSE(engine.using_fast_path());
}

TEST(FastPathIdentity, GridOverRandomTrace) {
  run_identity_grid(random_trace(1u, 240, 9, 3));
}

// Picture count chosen not to divide the pattern length, so the final GOP
// is truncated and every lookahead window near the end is shortened.
TEST(FastPathIdentity, GridOverTruncatedEndTrace) {
  run_identity_grid(random_trace(2u, 97, 9, 3));
}

// Pattern without B pictures (M = 1): phase and type tables degenerate
// differently than in the default 9/3 pattern.
TEST(FastPathIdentity, GridOverIOnlyPattern) {
  run_identity_grid(random_trace(3u, 120, 6, 1));
}

// step()-at-a-time must agree with run_into() — both entry points share
// step_on, but this pins the contract from the public API.
TEST(FastPathIdentity, StepwiseMatchesRunInto) {
  const trace::Trace t = random_trace(5u, 80, 9, 3);
  const core::PatternEstimator estimator(t);
  SmootherParams params;
  params.tau = t.tau();
  params.H = 18;
  core::SmootherEngine stepper(t, params, estimator);
  core::SmootherEngine runner(t, params, estimator);
  std::vector<core::PictureSend> sends;
  std::vector<core::StepDiagnostics> diags;
  runner.run_into(sends, diags);
  for (std::size_t k = 0; !stepper.done(); ++k) {
    const core::PictureSend send = stepper.step();
    ASSERT_LT(k, sends.size());
    EXPECT_EQ(send.start, sends[k].start);
    EXPECT_EQ(send.rate, sends[k].rate);
    EXPECT_EQ(send.depart, sends[k].depart);
    EXPECT_EQ(stepper.last_diagnostics().lower, diags[k].lower);
    EXPECT_EQ(stepper.last_diagnostics().upper, diags[k].upper);
  }
  EXPECT_EQ(sends.size(), static_cast<std::size_t>(t.picture_count()));
}

// Streaming: pushes interleaved with drains, both execution paths, exact
// send-for-send agreement including the post-finish() tail.
TEST(FastPathIdentity, StreamingPathsAgree) {
  const trace::Trace t = random_trace(4u, 150, 9, 3);
  for (const int K : {0, 1, 2}) {
    SmootherParams params;
    params.tau = t.tau();
    params.K = K;
    params.H = 18;
    core::StreamingSmoother fast(t.pattern(), params, core::DefaultSizes{},
                                 ExecutionPath::kAuto);
    core::StreamingSmoother reference(t.pattern(), params,
                                      core::DefaultSizes{},
                                      ExecutionPath::kReference);
    std::vector<core::PictureSend> fast_sends;
    std::vector<core::PictureSend> reference_sends;
    for (int i = 1; i <= t.picture_count(); ++i) {
      fast.push(t.size_of(i));
      reference.push(t.size_of(i));
      for (const core::PictureSend& send : fast.drain()) {
        fast_sends.push_back(send);
      }
      for (const core::PictureSend& send : reference.drain()) {
        reference_sends.push_back(send);
      }
    }
    fast.finish();
    reference.finish();
    for (const core::PictureSend& send : fast.drain()) {
      fast_sends.push_back(send);
    }
    for (const core::PictureSend& send : reference.drain()) {
      reference_sends.push_back(send);
    }
    ASSERT_EQ(fast_sends.size(),
              static_cast<std::size_t>(t.picture_count()));
    ASSERT_EQ(fast_sends.size(), reference_sends.size());
    for (std::size_t k = 0; k < fast_sends.size(); ++k) {
      EXPECT_EQ(fast_sends[k].index, reference_sends[k].index) << "K=" << K;
      EXPECT_EQ(fast_sends[k].start, reference_sends[k].start) << "K=" << K;
      EXPECT_EQ(fast_sends[k].rate, reference_sends[k].rate) << "K=" << K;
      EXPECT_EQ(fast_sends[k].depart, reference_sends[k].depart)
          << "K=" << K;
      EXPECT_EQ(fast_sends[k].delay, reference_sends[k].delay) << "K=" << K;
    }
  }
}

// Rate quantization happens after the bounds are settled; the snapping
// arithmetic must not diverge between paths either.
TEST(FastPathIdentity, QuantizedRatesAgree) {
  const trace::Trace t = random_trace(6u, 120, 9, 3);
  const core::PatternEstimator estimator(t);
  SmootherParams params;
  params.tau = t.tau();
  params.H = 18;
  params.rate_quantum = 64'000.0;
  const core::SmoothingResult fast =
      core::smooth(t, params, estimator, Variant::kBasic,
                   ExecutionPath::kAuto);
  const core::SmoothingResult reference =
      core::smooth(t, params, estimator, Variant::kBasic,
                   ExecutionPath::kReference);
  expect_identical(fast, reference, "quantized");
}

}  // namespace
