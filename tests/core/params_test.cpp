#include "core/params.h"

#include <gtest/gtest.h>

namespace lsm::core {
namespace {

TEST(SmootherParams, DefaultsAreValidAndGuaranteeTheBound) {
  const SmootherParams params;
  EXPECT_NO_THROW(params.validate());
  // D = 0.2, K = 1, tau = 1/30: 0.2 >= 2/30.
  EXPECT_TRUE(params.guarantees_delay_bound());
}

TEST(SmootherParams, ValidateRejectsStructuralErrors) {
  SmootherParams params;
  params.D = 0.0;
  EXPECT_THROW(params.validate(), InvalidParams);
  params = SmootherParams{};
  params.K = -1;
  EXPECT_THROW(params.validate(), InvalidParams);
  params = SmootherParams{};
  params.H = 0;
  EXPECT_THROW(params.validate(), InvalidParams);
  params = SmootherParams{};
  params.tau = -0.1;
  EXPECT_THROW(params.validate(), InvalidParams);
}

TEST(SmootherParams, KZeroIsValidButUnguaranteed) {
  SmootherParams params;
  params.K = 0;
  EXPECT_NO_THROW(params.validate());
  EXPECT_FALSE(params.guarantees_delay_bound());
}

TEST(SmootherParams, EqualityBoundaryOfEquationOne) {
  SmootherParams params;
  params.tau = 1.0 / 30.0;
  params.K = 1;
  params.D = 2.0 / 30.0;  // exactly (K+1) tau
  EXPECT_TRUE(params.guarantees_delay_bound());
  params.D = 2.0 / 30.0 - 1e-6;
  EXPECT_FALSE(params.guarantees_delay_bound());
}

TEST(SmootherParams, PaperFigureEightParameterization) {
  // D = 0.1333 + (K+1)/30 with H = N: always inside the theorem regime.
  for (int k = 1; k <= 12; ++k) {
    SmootherParams params;
    params.K = k;
    params.D = 0.1333 + (k + 1) / 30.0;
    EXPECT_TRUE(params.guarantees_delay_bound()) << "K=" << k;
  }
}

}  // namespace
}  // namespace lsm::core
