// Property tests for Theorem 1: across traces (paper sequences, randomized
// synthetic ones, and adversarial hand-built ones) and a sweep of (D, K, H)
// inside the theorem regime, every run must satisfy
//
//   (7) delay_i <= D,   (8) t_{i+1} <= i tau + D,   (9) t_{i+1} = d_i,
//
// with finite positive rates. Estimate quality must be irrelevant.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/smoother.h"
#include "core/theorem.h"
#include "sim/rng.h"
#include "trace/sequences.h"
#include "trace/synthetic.h"

namespace lsm::core {
namespace {

using lsm::trace::GopPattern;
using lsm::trace::Trace;

/// Trace generators indexed by name, covering benign and hostile shapes.
Trace make_trace(const std::string& id) {
  if (id == "driving1") return lsm::trace::driving1();
  if (id == "driving2") return lsm::trace::driving2();
  if (id == "tennis") return lsm::trace::tennis();
  if (id == "backyard") return lsm::trace::backyard();
  if (id == "random") {
    // Uniformly random sizes: the pattern estimator is useless here, which
    // is exactly the point — Theorem 1 must not care.
    lsm::sim::Rng rng(2024);
    std::vector<lsm::trace::Bits> sizes;
    for (int i = 0; i < 200; ++i) sizes.push_back(rng.uniform_int(500, 500000));
    return Trace("random", GopPattern(9, 3), std::move(sizes));
  }
  if (id == "spiky") {
    // One enormous picture in an otherwise small sequence.
    std::vector<lsm::trace::Bits> sizes(120, 5000);
    sizes[60] = 5000000;
    return Trace("spiky", GopPattern(6, 2), std::move(sizes));
  }
  if (id == "alternating") {
    std::vector<lsm::trace::Bits> sizes;
    for (int i = 0; i < 150; ++i) sizes.push_back(i % 2 == 0 ? 300000 : 1000);
    return Trace("alternating", GopPattern(3, 3), std::move(sizes));
  }
  if (id == "tiny") {
    return Trace("tiny", GopPattern(3, 3), {1000, 200, 300});
  }
  if (id == "growing") {
    std::vector<lsm::trace::Bits> sizes;
    for (int i = 1; i <= 90; ++i) sizes.push_back(1000 * i);
    return Trace("growing", GopPattern(9, 3), std::move(sizes));
  }
  throw std::logic_error("unknown trace id " + id);
}

struct Case {
  std::string trace_id;
  double slack;  // D = (K+1) tau + slack
  int K;
  int H;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string slack_tag = std::to_string(static_cast<int>(c.slack * 1000));
  return c.trace_id + "_s" + slack_tag + "_K" + std::to_string(c.K) + "_H" +
         std::to_string(c.H);
}

class TheoremProperty : public testing::TestWithParam<Case> {};

TEST_P(TheoremProperty, AllThreePropertiesHold) {
  const Case& c = GetParam();
  const Trace t = make_trace(c.trace_id);
  SmootherParams p;
  p.tau = t.tau();
  p.K = c.K;
  p.H = c.H;
  p.D = (c.K + 1) * p.tau + c.slack;
  ASSERT_TRUE(p.guarantees_delay_bound());

  for (const Variant variant : {Variant::kBasic, Variant::kMovingAverage}) {
    const PatternEstimator est(t);
    const SmoothingResult result = smooth(t, p, est, variant);
    ASSERT_EQ(result.sends.size(),
              static_cast<std::size_t>(t.picture_count()));

    const TheoremReport report = check_theorem1(result, t);
    EXPECT_TRUE(report.delay_bound_ok)
        << "max delay " << report.max_delay << " vs D " << p.D << " ("
        << report.delay_violations << " violations)";
    EXPECT_TRUE(report.start_bound_ok);
    EXPECT_TRUE(report.continuous_service_ok);

    for (const PictureSend& send : result.sends) {
      ASSERT_TRUE(std::isfinite(send.rate));
      ASSERT_GT(send.rate, 0.0);
      ASSERT_GE(send.delay, 0.0);
    }
  }
}

TEST_P(TheoremProperty, EstimatorChoiceCannotBreakTheTheorem) {
  const Case& c = GetParam();
  const Trace t = make_trace(c.trace_id);
  SmootherParams p;
  p.tau = t.tau();
  p.K = c.K;
  p.H = c.H;
  p.D = (c.K + 1) * p.tau + c.slack;

  const PatternEstimator pattern(t);
  const OracleEstimator oracle(t);
  const LastSameTypeEstimator last(t);
  const TypeMeanEstimator mean(t);
  for (const SizeEstimator* est :
       {static_cast<const SizeEstimator*>(&pattern),
        static_cast<const SizeEstimator*>(&oracle),
        static_cast<const SizeEstimator*>(&last),
        static_cast<const SizeEstimator*>(&mean)}) {
    const SmoothingResult result = smooth(t, p, *est);
    const TheoremReport report = check_theorem1(result, t);
    EXPECT_TRUE(report.all_ok()) << est->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TheoremProperty,
    testing::Values(
        // Paper sequences at the paper's parameter points.
        Case{"driving1", 0.1333, 1, 9}, Case{"driving1", 0.0333, 1, 9},
        Case{"driving1", 0.1333, 9, 9}, Case{"driving1", 0.2, 1, 1},
        Case{"driving2", 0.1333, 1, 6}, Case{"driving2", 0.0, 1, 6},
        Case{"tennis", 0.1333, 1, 9}, Case{"tennis", 0.1, 3, 9},
        Case{"backyard", 0.1333, 1, 12}, Case{"backyard", 0.05, 2, 12},
        // Exact boundary of Eq. 1: D = (K+1) tau.
        Case{"driving1", 0.0, 1, 9}, Case{"tennis", 0.0, 2, 9},
        Case{"backyard", 0.0, 1, 1},
        // Lookahead beyond one pattern.
        Case{"driving1", 0.1333, 1, 18}, Case{"backyard", 0.1333, 1, 24},
        // Hostile shapes.
        Case{"random", 0.1, 1, 9}, Case{"random", 0.0, 1, 1},
        Case{"spiky", 0.1, 1, 6}, Case{"spiky", 0.0, 2, 6},
        Case{"alternating", 0.05, 1, 3}, Case{"alternating", 0.0, 1, 1},
        Case{"tiny", 0.1, 1, 3}, Case{"tiny", 0.0, 2, 3},
        Case{"growing", 0.1, 1, 9}, Case{"growing", 0.0, 3, 9}),
    case_name);

/// Randomized mini-fuzz: many random traces and parameter combinations.
TEST(TheoremFuzz, RandomTracesAndParameters) {
  lsm::sim::Rng rng(7777);
  for (int round = 0; round < 60; ++round) {
    const int n_pattern = static_cast<int>(rng.uniform_int(1, 4)) * 3;
    const GopPattern pattern(n_pattern, 3);
    const int count = static_cast<int>(rng.uniform_int(20, 120));
    std::vector<lsm::trace::Bits> sizes;
    sizes.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      sizes.push_back(rng.uniform_int(100, 1000000));
    }
    const Trace t("fuzz", pattern, std::move(sizes));

    SmootherParams p;
    p.tau = t.tau();
    p.K = static_cast<int>(rng.uniform_int(1, 4));
    p.H = static_cast<int>(rng.uniform_int(1, 2 * n_pattern));
    p.D = (p.K + 1) * p.tau + rng.uniform(0.0, 0.3);

    const SmoothingResult result = smooth_basic(t, p);
    const TheoremReport report = check_theorem1(result, t);
    ASSERT_TRUE(report.all_ok())
        << "round " << round << " K=" << p.K << " H=" << p.H << " D=" << p.D
        << " worst excess " << report.worst_excess;
  }
}

}  // namespace
}  // namespace lsm::core
