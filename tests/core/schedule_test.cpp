#include "core/schedule.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lsm::core {
namespace {

RateSchedule two_step() {
  return RateSchedule({RateSegment{0.0, 1.0, 10.0},
                       RateSegment{1.0, 3.0, 5.0}});
}

TEST(RateSchedule, RateAtQueriesSegments) {
  const RateSchedule s = two_step();
  EXPECT_DOUBLE_EQ(s.rate_at(0.5), 10.0);
  EXPECT_DOUBLE_EQ(s.rate_at(2.0), 5.0);
  EXPECT_DOUBLE_EQ(s.rate_at(1.0), 5.0);  // right-continuous at breakpoint
  EXPECT_DOUBLE_EQ(s.rate_at(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(s.rate_at(3.5), 0.0);
}

TEST(RateSchedule, GapsReadAsZero) {
  const RateSchedule s({RateSegment{0.0, 1.0, 4.0},
                        RateSegment{2.0, 3.0, 6.0}});
  EXPECT_DOUBLE_EQ(s.rate_at(1.5), 0.0);
  EXPECT_DOUBLE_EQ(s.integral(0.0, 3.0), 10.0);
}

TEST(RateSchedule, IntegralPartialOverlap) {
  const RateSchedule s = two_step();
  EXPECT_DOUBLE_EQ(s.integral(0.5, 2.0), 0.5 * 10 + 1.0 * 5);
  EXPECT_DOUBLE_EQ(s.integral(-1.0, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.integral(2.5, 10.0), 2.5);
  EXPECT_DOUBLE_EQ(s.integral(5.0, 6.0), 0.0);
  EXPECT_THROW(s.integral(2.0, 1.0), std::invalid_argument);
}

TEST(RateSchedule, MaxRateAndTimes) {
  const RateSchedule s = two_step();
  EXPECT_DOUBLE_EQ(s.max_rate(), 10.0);
  EXPECT_DOUBLE_EQ(s.start_time(), 0.0);
  EXPECT_DOUBLE_EQ(s.end_time(), 3.0);
  const RateSchedule empty;
  EXPECT_DOUBLE_EQ(empty.max_rate(), 0.0);
  EXPECT_TRUE(empty.empty());
}

TEST(RateSchedule, BreakpointsAreSortedUnique) {
  const RateSchedule s = two_step();
  const std::vector<Seconds> points = s.breakpoints();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0], 0.0);
  EXPECT_DOUBLE_EQ(points[1], 1.0);
  EXPECT_DOUBLE_EQ(points[2], 3.0);
}

TEST(RateSchedule, ShiftedLeftMovesGraph) {
  const RateSchedule s = two_step();
  const RateSchedule shifted = s.shifted_left(1.0);
  // shifted(t) == s(t + 1): s at 0.5 equals shifted at -0.5.
  EXPECT_DOUBLE_EQ(shifted.rate_at(-0.5), 10.0);
  EXPECT_DOUBLE_EQ(shifted.rate_at(1.5), 5.0);
  EXPECT_DOUBLE_EQ(shifted.rate_at(2.5), 0.0);
}

TEST(RateSchedule, RejectsInvalidSegments) {
  EXPECT_THROW(RateSchedule({RateSegment{1.0, 1.0, 5.0}}),
               std::invalid_argument);
  EXPECT_THROW(RateSchedule({RateSegment{2.0, 1.0, 5.0}}),
               std::invalid_argument);
  EXPECT_THROW(RateSchedule({RateSegment{0.0, 1.0, -5.0}}),
               std::invalid_argument);
  EXPECT_THROW(RateSchedule({RateSegment{0.0, 2.0, 5.0},
                             RateSegment{1.0, 3.0, 5.0}}),
               std::invalid_argument);
}

TEST(RateSchedule, FromSendsBuildsContiguousSegments) {
  std::vector<PictureSend> sends(2);
  sends[0] = PictureSend{1, 0.0, 1.0, 100.0, 1.0, 100};
  sends[1] = PictureSend{2, 1.0, 1.5, 200.0, 0.6, 100};
  const RateSchedule s = RateSchedule::from_sends(sends);
  ASSERT_EQ(s.segments().size(), 2u);
  EXPECT_DOUBLE_EQ(s.rate_at(0.5), 100.0);
  EXPECT_DOUBLE_EQ(s.rate_at(1.2), 200.0);
}

TEST(RateSchedule, FromSendsSkipsZeroDurationSends) {
  std::vector<PictureSend> sends(2);
  sends[0] = PictureSend{1, 0.0, 1.0, 100.0, 1.0, 100};
  sends[1] = PictureSend{2, 1.0, 1.0, 1e12, 0.0, 0};
  const RateSchedule s = RateSchedule::from_sends(sends);
  EXPECT_EQ(s.segments().size(), 1u);
}

}  // namespace
}  // namespace lsm::core
