#include "core/cbr.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/optimal.h"
#include "core/smoother.h"
#include "trace/sequences.h"

namespace lsm::core {
namespace {

using lsm::trace::GopPattern;
using lsm::trace::Trace;

TEST(Cbr, ConstantTraceHandComputed) {
  // 1000-bit pictures every 0.1 s at R = 20000 b/s: each picture needs
  // 0.05 s after its arrival, so delivery_i = i*0.1 + 0.05 and the startup
  // delay is 0.15 s.
  const Trace t("const", GopPattern(1, 1),
                std::vector<lsm::trace::Bits>(20, 1000), 0.1);
  EXPECT_NEAR(min_startup_delay(t, 20000.0), 0.15, 1e-9);
  // At exactly the drain rate (10000 b/s) every picture takes a full
  // period: startup delay 0.2 s (one arrival period + one service period).
  EXPECT_NEAR(min_startup_delay(t, 10000.0), 0.2, 1e-9);
}

TEST(Cbr, DelayDecreasesWithRate) {
  const Trace t = lsm::trace::driving1();
  double previous = 1e18;
  for (double factor = 1.0; factor <= 3.01; factor += 0.25) {
    const Seconds d = min_startup_delay(t, t.mean_rate() * factor);
    EXPECT_LE(d, previous + 1e-9) << "factor " << factor;
    previous = d;
  }
}

TEST(Cbr, InverseFunctionsAgree) {
  const Trace t = lsm::trace::tennis();
  for (const double d : {0.2, 0.5, 1.0, 2.0}) {
    const Rate rate = min_cbr_rate(t, d);
    // That rate must achieve a startup delay of (at most) d ...
    EXPECT_LE(min_startup_delay(t, rate), d + 1e-6) << "d=" << d;
    // ... and be tight: a slightly smaller rate must miss it.
    EXPECT_GT(min_startup_delay(t, rate * 0.98), d - 1e-6) << "d=" << d;
  }
}

TEST(Cbr, RateDecreasesWithDelayDownToTheStretchLimit) {
  const Trace t = lsm::trace::backyard();
  Rate previous = 1e18;
  for (const double d : {0.2, 0.5, 1.0, 3.0, t.duration()}) {
    const Rate rate = min_cbr_rate(t, d);
    EXPECT_LE(rate, previous + 1e-9) << "d=" << d;
    // Never below the whole-trace stretch bound: all bits within
    // (duration - tau) + d of the first arrival.
    EXPECT_GE(rate, static_cast<double>(t.total_bits()) /
                        (t.duration() - t.tau() + d) - 1e-6)
        << "d=" << d;
    previous = rate;
  }
  // A startup delay as long as the clip lets CBR run well BELOW the mean
  // rate (twice the time to deliver) — the degenerate download regime.
  EXPECT_LT(min_cbr_rate(t, t.duration()), 0.75 * t.mean_rate());
}

TEST(Cbr, TightDelayNeedsNearPeakRate) {
  const Trace t = lsm::trace::driving1();
  // With barely more than one period of startup, the rate must carry the
  // largest picture within roughly (d - tau) of its arrival.
  const double d = 2.5 * t.tau();
  const Rate rate = min_cbr_rate(t, d);
  lsm::trace::Bits largest = 0;
  for (int i = 1; i <= t.picture_count(); ++i) {
    largest = std::max(largest, t.size_of(i));
  }
  EXPECT_GE(rate, static_cast<double>(largest) / (d - t.tau()) * 0.99);
}

TEST(Cbr, SimulationConfirmsTheDelay) {
  // Work-conserving CBR server simulation at the computed (R, d): every
  // picture must be delivered by its playout instant.
  const Trace t = lsm::trace::driving2();
  const Rate rate = t.mean_rate() * 1.4;
  const Seconds d = min_startup_delay(t, rate);

  double backlog = 0.0;
  double now = 0.0;
  for (int i = 1; i <= t.picture_count(); ++i) {
    // Serve until picture i arrives at i*tau.
    const double arrival = i * t.tau();
    backlog = std::max(0.0, backlog - rate * (arrival - now));
    now = arrival;
    backlog += static_cast<double>(t.size_of(i));
    // Delivery of everything queued so far:
    const double delivery = now + backlog / rate;
    ASSERT_LE(delivery, (i - 1) * t.tau() + d + 1e-6) << "picture " << i;
  }
}

TEST(Cbr, MinCbrRateEqualsOfflineOptimalPeak) {
  // Theory cross-check: a work-conserving CBR server at rate R delivers no
  // later than any schedule whose rate never exceeds R, so the minimal
  // feasible CBR rate for startup delay d equals the minimal peak over ALL
  // schedules for delay bound d — i.e. the taut string's peak. Two
  // independently implemented computations must agree.
  for (const Trace& t : lsm::trace::paper_sequences()) {
    for (const double d : {0.1, 0.2, 0.3}) {
      const Rate cbr = min_cbr_rate(t, d);
      const Rate optimal = minimal_feasible_peak(t, d);
      EXPECT_NEAR(cbr, optimal, 0.01 * optimal)
          << t.name() << " d=" << d;
    }
  }
}

TEST(Cbr, CbrReservationWastesCapacityThatSmoothedVbrDoesNot) {
  // CBR reserves min_cbr_rate for the whole session; the stream only uses
  // its mean. The gap is the capacity a VBR service with smoothing (and
  // statistical multiplexing) can recover — the service-model argument for
  // smoothing rather than padding to CBR.
  const Trace t = lsm::trace::driving1();
  const Rate cbr = min_cbr_rate(t, 0.2);
  EXPECT_GT(cbr, 1.1 * t.mean_rate());
}

TEST(Cbr, RejectsBadArguments) {
  const Trace t = lsm::trace::backyard();
  EXPECT_THROW(min_startup_delay(t, 0.0), std::invalid_argument);
  EXPECT_THROW(min_cbr_rate(t, t.tau()), std::invalid_argument);
}

}  // namespace
}  // namespace lsm::core
