#include "core/estimator.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lsm::core {
namespace {

using lsm::trace::GopPattern;
using lsm::trace::PictureType;
using lsm::trace::Trace;

// Two patterns of IBB at tau = 0.1: pictures 1..6.
Trace small_trace() {
  return Trace("t", GopPattern(3, 3), {100, 20, 30, 90, 25, 35}, 0.1);
}

TEST(PatternEstimator, ActualSizeWhenArrived) {
  const Trace t = small_trace();
  const PatternEstimator est(t);
  // Picture 4 arrives at 0.4.
  EXPECT_EQ(est.size_at(4, 0.4), 90);
  EXPECT_EQ(est.size_at(4, 0.5), 90);
}

TEST(PatternEstimator, ArrivalBoundaryIsInclusive) {
  // At exactly j*tau the picture has completely arrived (system model), so
  // the actual size must be used — Theorem 1 depends on this when K = 1.
  const Trace t = small_trace();
  const PatternEstimator est(t);
  EXPECT_EQ(est.size_at(4, 0.4), 90);
  EXPECT_EQ(est.size_at(4, 0.4 - 1e-6), 100);  // falls back to S_{4-3}
}

TEST(PatternEstimator, UsesOnePatternBack) {
  const Trace t = small_trace();
  const PatternEstimator est(t);
  // At t = 0.35 pictures 1..3 have arrived; sizes of 4..6 are estimated by
  // pictures 1..3 respectively.
  EXPECT_EQ(est.size_at(4, 0.35), 100);
  EXPECT_EQ(est.size_at(5, 0.35), 20);
  EXPECT_EQ(est.size_at(6, 0.35), 30);
}

TEST(PatternEstimator, WalksBackMultiplePatternsWhenNeeded) {
  // With lookahead H > N the estimate S_{j-N} may itself be unarrived; the
  // estimator must chain back to the newest arrived same-phase picture.
  const Trace t("t", GopPattern(3, 3), {100, 20, 30, 90, 25, 35, 80, 22, 33},
                0.1);
  const PatternEstimator est(t);
  // At t = 0.3 only pictures 1..3 have arrived; picture 7 estimates via
  // 7 -> 4 (unarrived) -> 1.
  EXPECT_EQ(est.size_at(7, 0.3), 100);
}

TEST(PatternEstimator, InitialDefaultsPerType) {
  const Trace t = small_trace();
  const DefaultSizes defaults;  // paper values
  const PatternEstimator est(t);
  // At t = 0 nothing has arrived; picture 1 is I, 2 is B.
  EXPECT_EQ(est.size_at(1, 0.0), defaults.i_bits);
  EXPECT_EQ(est.size_at(2, 0.0), defaults.b_bits);
}

TEST(PatternEstimator, DefaultsForPType) {
  const Trace t("t", GopPattern(3, 1), {100, 50, 40}, 0.1);
  const PatternEstimator est(t);
  EXPECT_EQ(est.size_at(2, 0.0), DefaultSizes{}.p_bits);
}

TEST(PatternEstimator, CustomDefaults) {
  const Trace t = small_trace();
  const PatternEstimator est(t, DefaultSizes{111, 222, 333});
  EXPECT_EQ(est.size_at(1, 0.0), 111);
  EXPECT_EQ(est.size_at(2, 0.0), 333);
}

TEST(PatternEstimator, RejectsOutOfRangeIndex) {
  const Trace t = small_trace();
  const PatternEstimator est(t);
  EXPECT_THROW(est.size_at(0, 0.0), std::out_of_range);
  EXPECT_THROW(est.size_at(7, 0.0), std::out_of_range);
}

TEST(OracleEstimator, AlwaysKnowsEverything) {
  const Trace t = small_trace();
  const OracleEstimator est(t);
  EXPECT_EQ(est.size_at(6, 0.0), 35);
  EXPECT_EQ(est.size_at(1, -5.0), 100);
}

TEST(LastSameTypeEstimator, PicksMostRecentArrivedOfType) {
  const Trace t = small_trace();
  const LastSameTypeEstimator est(t);
  // At t = 0.35, pictures 1..3 arrived. Picture 5 is B; most recent B is 3.
  EXPECT_EQ(est.size_at(5, 0.35), 30);
  // Picture 4 is I; most recent I is 1.
  EXPECT_EQ(est.size_at(4, 0.35), 100);
  // Arrived pictures are exact.
  EXPECT_EQ(est.size_at(2, 0.35), 20);
}

TEST(LastSameTypeEstimator, FallsBackToDefaults) {
  const Trace t = small_trace();
  const LastSameTypeEstimator est(t);
  EXPECT_EQ(est.size_at(1, 0.0), DefaultSizes{}.i_bits);
}

TEST(TypeMeanEstimator, AveragesArrivedOfType) {
  const Trace t = small_trace();
  const TypeMeanEstimator est(t);
  // At t = 0.5 pictures 1..5 arrived. Picture 6 is B; arrived Bs: 20, 30, 25.
  EXPECT_EQ(est.size_at(6, 0.5), 25);
}

TEST(TypeMeanEstimator, ExactForArrivedAndDefaultBeforeAnyArrival) {
  const Trace t = small_trace();
  const TypeMeanEstimator est(t);
  EXPECT_EQ(est.size_at(3, 0.5), 30);
  EXPECT_EQ(est.size_at(2, 0.0), DefaultSizes{}.b_bits);
}

TEST(PhaseEwmaEstimator, AlphaOneReducesToPatternEstimatorInSteadyState) {
  const Trace t("t", GopPattern(3, 3), {100, 20, 30, 90, 25, 35, 80, 22, 33},
                0.1);
  const PhaseEwmaEstimator ewma(t, 1.0);
  const PatternEstimator pattern(t);
  // At t = 0.65, pictures 1..6 arrived; estimates for 7..9 must agree.
  for (int j = 7; j <= 9; ++j) {
    EXPECT_EQ(ewma.size_at(j, 0.65), pattern.size_at(j, 0.65)) << j;
  }
}

TEST(PhaseEwmaEstimator, AveragesSamePhaseHistory) {
  const Trace t("t", GopPattern(3, 3), {100, 20, 30, 200, 25, 35, 80, 22, 33},
                0.1);
  const PhaseEwmaEstimator ewma(t, 0.5);
  // At t = 0.65 pictures 1..6 arrived. Phase-0 history: 100, then
  // 0.5*200 + 0.5*100 = 150. Estimate for picture 7 (phase 0) = 150.
  EXPECT_EQ(ewma.size_at(7, 0.65), 150);
  // Phase-1 history: 20, then 0.5*25 + 0.5*20 = 22.5 -> 23 (rounded).
  EXPECT_EQ(ewma.size_at(8, 0.65), 23);
}

TEST(PhaseEwmaEstimator, ArrivedPicturesAreExact) {
  const Trace t = small_trace();
  const PhaseEwmaEstimator ewma(t, 0.3);
  EXPECT_EQ(ewma.size_at(4, 0.4), 90);
}

TEST(PhaseEwmaEstimator, DefaultsBeforeAnyHistory) {
  const Trace t = small_trace();
  const PhaseEwmaEstimator ewma(t);
  EXPECT_EQ(ewma.size_at(1, 0.0), DefaultSizes{}.i_bits);
  EXPECT_EQ(ewma.size_at(2, 0.0), DefaultSizes{}.b_bits);
}

TEST(PhaseEwmaEstimator, RejectsBadAlpha) {
  const Trace t = small_trace();
  EXPECT_THROW(PhaseEwmaEstimator(t, 0.0), std::invalid_argument);
  EXPECT_THROW(PhaseEwmaEstimator(t, 1.5), std::invalid_argument);
}

TEST(Estimators, NamesAreDistinct) {
  const Trace t = small_trace();
  EXPECT_EQ(PatternEstimator(t).name(), "pattern");
  EXPECT_EQ(OracleEstimator(t).name(), "oracle");
  EXPECT_EQ(LastSameTypeEstimator(t).name(), "last-same-type");
  EXPECT_EQ(TypeMeanEstimator(t).name(), "type-mean");
}

}  // namespace
}  // namespace lsm::core
