#include "core/buffer.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/smoother.h"
#include "trace/sequences.h"

namespace lsm::core {
namespace {

using lsm::trace::GopPattern;
using lsm::trace::Trace;

SmootherParams params_for(const Trace& trace, double D = 0.2) {
  SmootherParams params;
  params.tau = trace.tau();
  params.H = trace.pattern().N();
  params.D = D;
  return params;
}

TEST(BufferAnalysis, SenderOccupancyNeverNegative) {
  const Trace t = lsm::trace::driving1();
  const SmoothingResult result = smooth_basic(t, params_for(t));
  const BufferAnalysis analysis = analyze_buffers(t, result, 0.01, 0.21);
  for (const OccupancySample& sample : analysis.sender) {
    ASSERT_GE(sample.bits, 0.0) << "t=" << sample.time;
  }
  EXPECT_GT(analysis.max_sender_bits, 0.0);
  EXPECT_GT(analysis.mean_sender_bits, 0.0);
  EXPECT_GE(analysis.max_sender_bits, analysis.mean_sender_bits);
}

TEST(BufferAnalysis, SenderBoundedByDelayBoundWorthOfBits) {
  // Every bit leaves within D of its picture's arrival start, so the queue
  // can never hold more than the bits arriving in any D-long window.
  const Trace t = lsm::trace::driving1();
  const SmootherParams params = params_for(t);
  const SmoothingResult result = smooth_basic(t, params);
  const BufferAnalysis analysis = analyze_buffers(t, result, 0.0, params.D);
  // Crude upper bound: max bits in ceil(D/tau)+1 consecutive pictures.
  const int window = static_cast<int>(params.D / t.tau()) + 2;
  double worst_window = 0.0;
  for (int i = 1; i + window - 1 <= t.picture_count(); ++i) {
    double sum = 0.0;
    for (int j = i; j < i + window; ++j) {
      sum += static_cast<double>(t.size_of(j));
    }
    worst_window = std::max(worst_window, sum);
  }
  EXPECT_LE(analysis.max_sender_bits, worst_window);
}

TEST(BufferAnalysis, LargerDNeedsMoreSenderBuffer) {
  const Trace t = lsm::trace::tennis();
  const BufferAnalysis tight = analyze_buffers(
      t, smooth_basic(t, params_for(t, 0.0834)), 0.0, 0.0834);
  const BufferAnalysis loose = analyze_buffers(
      t, smooth_basic(t, params_for(t, 0.3)), 0.0, 0.3);
  EXPECT_GT(loose.max_sender_bits, tight.max_sender_bits);
}

TEST(BufferAnalysis, ReceiverNeverUnderflowsAtSafeOffset) {
  for (const Trace& t : lsm::trace::paper_sequences()) {
    const SmootherParams params = params_for(t);
    const SmoothingResult result = smooth_basic(t, params);
    const double latency = 0.02;
    const BufferAnalysis analysis =
        analyze_buffers(t, result, latency, params.D + latency);
    EXPECT_EQ(analysis.underflows, 0) << t.name();
    EXPECT_GE(analysis.min_receiver_bits, -1e-6) << t.name();
  }
}

TEST(BufferAnalysis, TightOffsetUnderflows) {
  const Trace t = lsm::trace::driving1();
  const SmootherParams params = params_for(t);
  const SmoothingResult result = smooth_basic(t, params);
  const BufferAnalysis analysis = analyze_buffers(t, result, 0.02, 0.08);
  EXPECT_GT(analysis.underflows, 0);
  EXPECT_LT(analysis.min_receiver_bits, 0.0);
}

TEST(BufferAnalysis, ReceiverOccupancyScalesWithOffset) {
  // Waiting longer before playout means more bits are buffered.
  const Trace t = lsm::trace::backyard();
  const SmoothingResult result = smooth_basic(t, params_for(t));
  const BufferAnalysis small = analyze_buffers(t, result, 0.0, 0.21);
  const BufferAnalysis large = analyze_buffers(t, result, 0.0, 0.5);
  EXPECT_GT(large.max_receiver_bits, small.max_receiver_bits);
}

TEST(BufferAnalysis, HandComputedTinyCase) {
  // One picture of 3000 bits, tau = 0.1, K = 1, D = 0.3. The engine starts
  // at t_1 = 0.1; rate = (lower+upper)/2 with defaults-free exact size:
  // lower = 3000/(0.3 - 0.1) = 15000, upper = 3000/(0.2 - 0.1) = 30000,
  // rate = 22500, depart = 0.2333..
  const Trace t("tiny", GopPattern(1, 1), {3000}, 0.1);
  SmootherParams params;
  params.tau = 0.1;
  params.H = 1;
  params.D = 0.3;
  const SmoothingResult result = smooth_basic(t, params);
  ASSERT_EQ(result.sends.size(), 1u);
  const BufferAnalysis analysis = analyze_buffers(t, result, 0.0, 0.4);
  // Sender peak: at t = 0.1 the whole picture (3000 bits) has arrived and
  // nothing has left yet.
  EXPECT_NEAR(analysis.max_sender_bits, 3000.0, 1e-6);
  // Receiver: everything (3000 bits) is in the buffer before playout at 0.4.
  EXPECT_NEAR(analysis.max_receiver_bits, 3000.0, 1e-6);
  EXPECT_EQ(analysis.underflows, 0);
}

TEST(BufferAnalysis, RejectsBadInputs) {
  const Trace t = lsm::trace::backyard();
  const SmoothingResult result = smooth_basic(t, params_for(t));
  EXPECT_THROW(analyze_buffers(t, result, -0.1, 0.2), std::invalid_argument);
  const Trace other = lsm::trace::driving1();
  EXPECT_THROW(analyze_buffers(other, result, 0.0, 0.2),
               std::invalid_argument);
}

}  // namespace
}  // namespace lsm::core
