#include "core/streaming.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/smoother.h"
#include "core/theorem.h"
#include "trace/sequences.h"

namespace lsm::core {
namespace {

using lsm::trace::GopPattern;
using lsm::trace::Trace;

SmootherParams params_for(const Trace& trace, double D = 0.2) {
  SmootherParams params;
  params.tau = trace.tau();
  params.H = trace.pattern().N();
  params.D = D;
  return params;
}

TEST(StreamingSmoother, PushAllThenFinishMatchesBatchExactly) {
  for (const Trace& t : lsm::trace::paper_sequences()) {
    const SmootherParams params = params_for(t);
    const SmoothingResult batch = smooth_basic(t, params);

    StreamingSmoother streaming(t.pattern(), params);
    for (int i = 1; i <= t.picture_count(); ++i) {
      streaming.push(t.size_of(i));
    }
    streaming.finish();
    const std::vector<PictureSend> sends = streaming.drain();

    ASSERT_EQ(sends.size(), batch.sends.size()) << t.name();
    for (std::size_t k = 0; k < sends.size(); ++k) {
      ASSERT_DOUBLE_EQ(sends[k].rate, batch.sends[k].rate)
          << t.name() << " picture " << k + 1;
      ASSERT_DOUBLE_EQ(sends[k].start, batch.sends[k].start);
      ASSERT_DOUBLE_EQ(sends[k].depart, batch.sends[k].depart);
    }
  }
}

TEST(StreamingSmoother, EagerDrainMatchesBatchAwayFromTheTail) {
  // Interleave push/drain; decisions for pictures whose lookahead never
  // crosses the (unknown) sequence end must equal the batch engine's.
  const Trace t = lsm::trace::driving1();
  const SmootherParams params = params_for(t);
  const SmoothingResult batch = smooth_basic(t, params);

  StreamingSmoother streaming(t.pattern(), params);
  std::vector<PictureSend> sends;
  for (int i = 1; i <= t.picture_count(); ++i) {
    streaming.push(t.size_of(i));
    for (const PictureSend& send : streaming.drain()) {
      sends.push_back(send);
    }
  }
  streaming.finish();
  for (const PictureSend& send : streaming.drain()) sends.push_back(send);

  ASSERT_EQ(sends.size(), batch.sends.size());
  const std::size_t safe = sends.size() - static_cast<std::size_t>(params.H);
  for (std::size_t k = 0; k < safe; ++k) {
    ASSERT_DOUBLE_EQ(sends[k].rate, batch.sends[k].rate) << "picture " << k + 1;
  }
}

TEST(StreamingSmoother, DecisionsAreCausal) {
  // Nothing can be drained before the K-th picture is pushed; afterwards,
  // each drained decision's t_i lies within pushed time.
  const Trace t = lsm::trace::tennis();
  SmootherParams params = params_for(t);
  params.K = 2;
  StreamingSmoother streaming(t.pattern(), params);
  EXPECT_TRUE(streaming.drain().empty());
  streaming.push(t.size_of(1));
  EXPECT_TRUE(streaming.drain().empty());  // K = 2: picture 2 not yet pushed
  streaming.push(t.size_of(2));
  int drained = 0;
  for (int i = 3; i <= t.picture_count(); ++i) {
    for (const PictureSend& send : streaming.drain()) {
      ASSERT_LE(send.start,
                streaming.pushed_count() * params.tau + 1e-9);
      ++drained;
    }
    streaming.push(t.size_of(i));
  }
  streaming.finish();
  drained += static_cast<int>(streaming.drain().size());
  EXPECT_EQ(drained, t.picture_count());
}

TEST(StreamingSmoother, TheoremHoldsOnStreamedSchedule) {
  const Trace t = lsm::trace::backyard();
  const SmootherParams params = params_for(t);
  StreamingSmoother streaming(t.pattern(), params);
  std::vector<PictureSend> sends;
  for (int i = 1; i <= t.picture_count(); ++i) {
    streaming.push(t.size_of(i));
    for (const PictureSend& send : streaming.drain()) sends.push_back(send);
  }
  streaming.finish();
  for (const PictureSend& send : streaming.drain()) sends.push_back(send);

  SmoothingResult result;
  result.sends = sends;
  result.params = params;
  const TheoremReport report = check_theorem1(result, t);
  EXPECT_TRUE(report.delay_bound_ok) << "max delay " << report.max_delay;
  EXPECT_TRUE(report.continuous_service_ok);
}

TEST(StreamingSmoother, UnboundedRunStaysBoundedInMemoryUse) {
  // Simulate a long live session (10,000 pictures) with eager draining; the
  // smoother must keep deciding and never stall.
  const GopPattern pattern(9, 3);
  SmootherParams params;
  params.H = 9;
  StreamingSmoother streaming(pattern, params);
  int decided = 0;
  for (int i = 1; i <= 10000; ++i) {
    const Bits size = pattern.type_of(i) == lsm::trace::PictureType::I
                          ? 180000
                      : pattern.type_of(i) == lsm::trace::PictureType::P
                          ? 80000
                          : 22000;
    streaming.push(size + (i % 7) * 1000);
    decided += static_cast<int>(streaming.drain().size());
  }
  // All but a bounded tail must be decided long before finish.
  EXPECT_GE(decided, 10000 - 2 * params.H - params.K);
  streaming.finish();
  decided += static_cast<int>(streaming.drain().size());
  EXPECT_EQ(decided, 10000);
}

TEST(StreamingSmoother, RejectsMisuse) {
  StreamingSmoother streaming(GopPattern(9, 3), SmootherParams{});
  EXPECT_THROW(streaming.push(0), std::invalid_argument);
  streaming.push(1000);
  streaming.finish();
  EXPECT_THROW(streaming.push(1000), std::logic_error);
  SmootherParams bad;
  bad.H = 0;
  EXPECT_THROW(StreamingSmoother(GopPattern(9, 3), bad), InvalidParams);
}

TEST(StreamingSmoother, FinishIsIdempotent) {
  StreamingSmoother streaming(GopPattern(3, 3), SmootherParams{});
  streaming.push(5000);
  streaming.finish();
  streaming.finish();
  EXPECT_EQ(streaming.drain().size(), 1u);
  EXPECT_TRUE(streaming.drain().empty());
}

/// Deterministic synthetic size for the long-stream trimming tests: a
/// per-type base with a wobble, always positive.
lsm::trace::Bits wobble_size(int i, const GopPattern& pattern) {
  const lsm::trace::Bits base =
      DefaultSizes{}.of(pattern.type_of(i));
  return base / 2 + (base / 4) * ((i * 2654435761u >> 8) % 3);
}

TEST(StreamingSmoother, BoundedTrimmingKeepsScheduleBitwiseIdentical) {
  // Per-push draining trims the retained prefix thousands of times over a
  // 3000-picture stream; the schedule must stay bitwise equal to the
  // drain-once-at-the-end run (whose window only trims at the very end)
  // on both execution paths.
  const GopPattern pattern(9, 3);
  SmootherParams params;
  params.H = pattern.N();
  constexpr int kPictures = 3000;

  for (const ExecutionPath path :
       {ExecutionPath::kAuto, ExecutionPath::kReference}) {
    StreamingSmoother incremental(pattern, params, DefaultSizes{}, path);
    std::vector<PictureSend> trimmed;
    for (int i = 1; i <= kPictures; ++i) {
      incremental.push(wobble_size(i, pattern));
      incremental.drain_into(trimmed);
    }
    incremental.finish();
    incremental.drain_into(trimmed);
    // Trimming actually happened: only a bounded window is retained.
    EXPECT_GT(incremental.first_retained(),
              kPictures - 2 * pattern.N() - 128);

    StreamingSmoother oneshot(pattern, params, DefaultSizes{}, path);
    for (int i = 1; i <= kPictures; ++i) {
      oneshot.push(wobble_size(i, pattern));
    }
    oneshot.finish();
    const std::vector<PictureSend> full = oneshot.drain();

    ASSERT_EQ(trimmed.size(), full.size());
    for (std::size_t k = 0; k < full.size(); ++k) {
      ASSERT_EQ(trimmed[k].bits, full[k].bits) << "picture " << k + 1;
      ASSERT_EQ(trimmed[k].rate, full[k].rate) << "picture " << k + 1;
      ASSERT_EQ(trimmed[k].start, full[k].start);
      ASSERT_EQ(trimmed[k].depart, full[k].depart);
      ASSERT_EQ(trimmed[k].delay, full[k].delay);
    }
  }
}

TEST(StreamingSmoother, DirtyFlagTracksFrontierMovement) {
  StreamingSmoother streaming(GopPattern(3, 3), SmootherParams{});
  EXPECT_FALSE(streaming.dirty());
  streaming.push(5000);
  EXPECT_TRUE(streaming.dirty());
  std::vector<PictureSend> out;
  streaming.drain_into(out);
  EXPECT_FALSE(streaming.dirty());  // drained clean
  streaming.finish();
  EXPECT_TRUE(streaming.dirty());
  streaming.drain_into(out);
  EXPECT_FALSE(streaming.dirty());
  EXPECT_TRUE(streaming.done());
  EXPECT_EQ(out.size(), 1u);
}

TEST(StreamingSmoother, DrainIntoReusesCapacityAndCounts) {
  const GopPattern pattern(3, 3);
  SmootherParams params;
  params.H = pattern.N();
  StreamingSmoother streaming(pattern, params);
  std::vector<PictureSend> out;
  int total = 0;
  for (int i = 1; i <= 50; ++i) {
    streaming.push(10000 + 100 * (i % 7));
    total += streaming.drain_into(out);
  }
  streaming.finish();
  total += streaming.drain_into(out);
  EXPECT_EQ(total, 50);
  EXPECT_EQ(out.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(out[i].index, i + 1);
}

}  // namespace
}  // namespace lsm::core
