// Discrete-rate channels (p x 64 kb/s classes): rates snap to the grid
// whenever a multiple fits inside the Theorem 1 interval, and the
// guarantees are untouched either way.
#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.h"
#include "core/smoother.h"
#include "core/theorem.h"
#include "trace/sequences.h"

namespace lsm::core {
namespace {

using lsm::trace::Trace;

constexpr double kQuantum = 64000.0;  // the classic 64 kb/s granule

SmootherParams params_for(const Trace& trace) {
  SmootherParams params;
  params.tau = trace.tau();
  params.D = 0.2;
  params.H = trace.pattern().N();
  params.rate_quantum = kQuantum;
  return params;
}

bool is_multiple(double rate) {
  const double periods = rate / kQuantum;
  return std::abs(periods - std::round(periods)) < 1e-6;
}

TEST(RateQuantum, RatesLandOnTheGridWheneverAMultipleFits) {
  // Early exits pin the rate to an interval endpoint of an EMPTY interval
  // (lower > upper), where no multiple can fit; every other picture whose
  // interval spans at least one grid point must be on the grid.
  for (const Trace& t : lsm::trace::paper_sequences()) {
    const SmoothingResult result = smooth_basic(t, params_for(t));
    int on_grid = 0;
    int grid_possible = 0;
    for (std::size_t k = 0; k < result.sends.size(); ++k) {
      const StepDiagnostics& diag = result.diagnostics[k];
      const double lower = diag.lower;
      const double upper = diag.upper;
      const bool fits = !diag.early_exit &&
                        std::floor(upper / kQuantum) * kQuantum >= lower &&
                        std::floor(upper / kQuantum) > 0.0;
      if (!fits) continue;
      ++grid_possible;
      if (is_multiple(result.sends[k].rate)) ++on_grid;
    }
    EXPECT_GT(grid_possible, t.picture_count() / 2) << t.name();
    EXPECT_EQ(on_grid, grid_possible) << t.name();
  }
}

TEST(RateQuantum, TheoremStillHolds) {
  for (const Trace& t : lsm::trace::paper_sequences()) {
    const SmoothingResult result = smooth_basic(t, params_for(t));
    const TheoremReport report = check_theorem1(result, t);
    EXPECT_TRUE(report.all_ok()) << t.name() << " max delay "
                                 << report.max_delay;
  }
}

TEST(RateQuantum, SnappingReducesRateChanges) {
  // Distinct near-equal rates collapse onto the same grid point.
  const Trace t = lsm::trace::driving1();
  SmootherParams continuous = params_for(t);
  continuous.rate_quantum = 0.0;
  const int with_grid =
      smooth_basic(t, params_for(t)).rate_change_count();
  const int without_grid =
      smooth_basic(t, continuous).rate_change_count();
  EXPECT_LE(with_grid, without_grid);
}

TEST(RateQuantum, CoarseGridFallsBackToExactRatesWhenNothingFits) {
  // A grid coarser than the feasible interval: the algorithm must still
  // produce a valid schedule (exact rates) rather than fail.
  const Trace t = lsm::trace::backyard();
  SmootherParams params = params_for(t);
  params.rate_quantum = 50e6;  // 50 Mbps granule: no multiple ever fits
  const SmoothingResult result = smooth_basic(t, params);
  const TheoremReport report = check_theorem1(result, t);
  EXPECT_TRUE(report.all_ok());
  for (const PictureSend& send : result.sends) {
    ASSERT_GT(send.rate, 0.0);
    ASSERT_LT(send.rate, 50e6);
  }
}

TEST(RateQuantum, ZeroQuantumMatchesContinuousExactly) {
  const Trace t = lsm::trace::tennis();
  SmootherParams a = params_for(t);
  a.rate_quantum = 0.0;
  SmootherParams b = params_for(t);
  b.rate_quantum = 0.0;
  const SmoothingResult ra = smooth_basic(t, a);
  const SmoothingResult rb = smooth_basic(t, b);
  for (std::size_t k = 0; k < ra.sends.size(); ++k) {
    ASSERT_DOUBLE_EQ(ra.sends[k].rate, rb.sends[k].rate);
  }
}

TEST(RateQuantum, NegativeQuantumRejected) {
  const Trace t = lsm::trace::backyard();
  SmootherParams params = params_for(t);
  params.rate_quantum = -1.0;
  EXPECT_THROW(smooth_basic(t, params), InvalidParams);
}

}  // namespace
}  // namespace lsm::core
