#include "core/ideal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/sequences.h"

namespace lsm::core {
namespace {

using lsm::trace::GopPattern;
using lsm::trace::Trace;

TEST(IdealSmoother, EveryPictureOfAPatternSharesOneRate) {
  const Trace t = lsm::trace::driving1();
  const SmoothingResult result = smooth_ideal(t);
  const int n_pattern = t.pattern().N();
  for (std::size_t k = 0; k < result.sends.size(); ++k) {
    const std::size_t group_first = (k / n_pattern) * n_pattern;
    EXPECT_DOUBLE_EQ(result.sends[k].rate, result.sends[group_first].rate);
  }
}

TEST(IdealSmoother, PatternRateIsTheAverage) {
  const Trace t("t", GopPattern(3, 3), {100, 20, 30, 90, 25, 35}, 0.1);
  const SmoothingResult result = smooth_ideal(t);
  EXPECT_NEAR(result.sends[0].rate, 150.0 / 0.3, 1e-9);
  EXPECT_NEAR(result.sends[3].rate, 150.0 / 0.3, 1e-9);
}

TEST(IdealSmoother, FirstPictureWaitsForWholePattern) {
  const Trace t("t", GopPattern(3, 3), {100, 20, 30, 90, 25, 35}, 0.1);
  const SmoothingResult result = smooth_ideal(t);
  // Pattern 1 = pictures 1..3, all arrived at 0.3.
  EXPECT_NEAR(result.sends[0].start, 0.3, 1e-12);
  // Each pattern takes exactly N tau to send, so the server is continuously
  // busy from 0.3 onwards.
  EXPECT_NEAR(result.sends[3].start, 0.6, 1e-9);
}

TEST(IdealSmoother, DelaysAreLargeComparedToBasicAlgorithm) {
  // Figure 5: ideal smoothing delays dwarf the basic algorithm's D = 0.1.
  const Trace t = lsm::trace::driving1();
  const SmoothingResult ideal = smooth_ideal(t);
  double min_delay = 1e9;
  for (const PictureSend& send : ideal.sends) {
    min_delay = std::min(min_delay, send.delay);
  }
  // Every picture waits at least for its own pattern to finish arriving.
  EXPECT_GT(min_delay, 0.1);
  EXPECT_GT(ideal.max_delay(), 0.3);
}

TEST(IdealSmoother, ServerKeepsUpOnAverage) {
  // Sending each pattern at its average rate takes exactly N tau, so the
  // departure of the last picture trails the arrival of the last picture by
  // at most one pattern duration plus start offset.
  const Trace t = lsm::trace::tennis();
  const SmoothingResult result = smooth_ideal(t);
  const PictureSend& last = result.sends.back();
  const double n_tau = t.pattern().N() * t.tau();
  EXPECT_LE(last.depart, t.duration() + n_tau + 1e-9);
}

TEST(IdealSmoother, TrailingPartialPatternAveragedOverItsOwnLength) {
  // 4 pictures with pattern length 3: the trailing group is picture 4 alone.
  const Trace t("t", GopPattern(3, 3), {100, 20, 30, 90}, 0.1);
  const SmoothingResult result = smooth_ideal(t);
  EXPECT_NEAR(result.sends[3].rate, 90.0 / 0.1, 1e-9);
  // The lone picture 4 arrives at 0.4 and may start then (or when the
  // previous pattern departs, whichever is later).
  EXPECT_GE(result.sends[3].start, 0.4 - 1e-12);
}

TEST(IdealSmoother, RateChangesAtMostOncePerPattern) {
  const Trace t = lsm::trace::backyard();
  const SmoothingResult result = smooth_ideal(t);
  const int groups =
      (t.picture_count() + t.pattern().N() - 1) / t.pattern().N();
  EXPECT_LE(result.rate_change_count(), groups);
}

}  // namespace
}  // namespace lsm::core
