// Long-duration and adversarial stress: the algorithm must stay correct and
// fast far beyond the paper's 10-second clips (a transport protocol runs
// for hours). Uses the fitted statistical model to generate long traces.
#include <gtest/gtest.h>

#include <chrono>

#include "core/smoother.h"
#include "core/streaming.h"
#include "core/theorem.h"
#include "trace/model.h"
#include "trace/sequences.h"

namespace lsm::core {
namespace {

using lsm::trace::Trace;
using lsm::trace::TraceModel;

TEST(Stress, TenMinutesOfVideoSmoothsCorrectly) {
  const TraceModel model = TraceModel::fit(lsm::trace::driving1());
  const Trace long_trace = model.generate(18000, 41);  // 10 minutes
  SmootherParams params;
  params.tau = long_trace.tau();
  params.D = 0.2;
  params.H = 9;
  const SmoothingResult result = smooth_basic(long_trace, params);
  const TheoremReport report = check_theorem1(result, long_trace);
  EXPECT_TRUE(report.all_ok()) << "max delay " << report.max_delay;
}

TEST(Stress, SmoothingIsFastEnoughForRealTimeByOrdersOfMagnitude) {
  const TraceModel model = TraceModel::fit(lsm::trace::tennis());
  const Trace long_trace = model.generate(18000, 42);
  SmootherParams params;
  params.tau = long_trace.tau();
  params.D = 0.2;
  params.H = 9;
  const auto begin = std::chrono::steady_clock::now();
  const SmoothingResult result = smooth_basic(long_trace, params);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - begin)
                           .count();
  EXPECT_EQ(result.sends.size(), 18000u);
  // 10 minutes of video must smooth in well under one second of CPU.
  EXPECT_LT(elapsed, 1.0);
}

TEST(Stress, StreamingSmootherHandlesAnHourLiveSession) {
  const TraceModel model = TraceModel::fit(lsm::trace::backyard());
  const Trace hour = model.generate(108000, 43);  // 60 minutes
  SmootherParams params;
  params.tau = hour.tau();
  params.D = 0.2;
  params.H = 12;
  StreamingSmoother streaming(hour.pattern(), params);
  Seconds worst_delay = 0.0;
  std::int64_t decided = 0;
  Seconds previous_depart = -1.0;
  for (int i = 1; i <= hour.picture_count(); ++i) {
    streaming.push(hour.size_of(i));
    for (const PictureSend& send : streaming.drain()) {
      worst_delay = std::max(worst_delay, send.delay);
      if (previous_depart >= 0.0) {
        ASSERT_GE(send.start, previous_depart - 1e-9);
      }
      previous_depart = send.depart;
      ++decided;
    }
  }
  streaming.finish();
  for (const PictureSend& send : streaming.drain()) {
    worst_delay = std::max(worst_delay, send.delay);
    ++decided;
  }
  EXPECT_EQ(decided, hour.picture_count());
  EXPECT_LE(worst_delay, params.D + 1e-9);
}

TEST(Stress, WorstCaseAlternatingSizesAtTheEquationOneBoundary) {
  // D exactly (K+1) tau with violently alternating sizes: the tightest
  // legal regime. Theorem 1 must still hold.
  std::vector<lsm::trace::Bits> sizes;
  for (int i = 0; i < 3000; ++i) {
    sizes.push_back(i % 2 == 0 ? 1000000 : 100);
  }
  const Trace t("nasty", lsm::trace::GopPattern(3, 3), std::move(sizes));
  SmootherParams params;
  params.tau = t.tau();
  params.K = 1;
  params.D = 2.0 * params.tau;
  params.H = 3;
  const SmoothingResult result = smooth_basic(t, params);
  const TheoremReport report = check_theorem1(result, t);
  EXPECT_TRUE(report.all_ok()) << "worst excess " << report.worst_excess;
}

TEST(Stress, HugePictureAmongTinyOnes) {
  std::vector<lsm::trace::Bits> sizes(600, 500);
  sizes[299] = 50000000;  // a 50-megabit outlier
  const Trace t("outlier", lsm::trace::GopPattern(6, 3), std::move(sizes));
  SmootherParams params;
  params.tau = t.tau();
  params.D = 0.1;
  params.H = 6;
  const SmoothingResult result = smooth_basic(t, params);
  const TheoremReport report = check_theorem1(result, t);
  EXPECT_TRUE(report.all_ok());
  // The outlier dominates the peak: it must be sent in under D plus its own
  // arrival period, i.e. at >= size/D rate.
  const RateSchedule schedule = result.schedule();
  EXPECT_GE(schedule.max_rate(), 50000000.0 / params.D * 0.9);
}

}  // namespace
}  // namespace lsm::core
