#include "core/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/bounds.h"
#include "core/smoother.h"
#include "trace/sequences.h"

namespace lsm::core {
namespace {

using lsm::trace::GopPattern;
using lsm::trace::Trace;

SmootherParams params(double D, int K, int H, double tau) {
  SmootherParams p;
  p.D = D;
  p.K = K;
  p.H = H;
  p.tau = tau;
  return p;
}

TEST(SmootherEngine, HandComputedConstantTrace) {
  // All-I pattern, constant 100-bit pictures, tau = 0.1, D = 0.3, K = H = 1.
  // Worked through Figure 2 by hand:
  //   i=1: t=0.1, lower=500, upper=1000, first-picture rate = 750.
  //   i=2: t=0.2333.., bounds [600, 1500], rate stays 750.
  //   i=3: t=0.3666.., bounds [750, 3000], rate stays 750, delay hits D.
  const Trace t("const", GopPattern(1, 1), {100, 100, 100}, 0.1);
  const PatternEstimator est(t);
  SmootherEngine engine(t, params(0.3, 1, 1, 0.1), est);

  const PictureSend s1 = engine.step();
  EXPECT_NEAR(s1.start, 0.1, 1e-12);
  EXPECT_NEAR(s1.rate, 750.0, 1e-9);
  EXPECT_NEAR(s1.depart, 0.1 + 100.0 / 750.0, 1e-12);
  EXPECT_NEAR(s1.delay, s1.depart, 1e-12);
  EXPECT_TRUE(engine.last_diagnostics().rate_changed);

  const PictureSend s2 = engine.step();
  EXPECT_NEAR(s2.start, s1.depart, 1e-12);
  EXPECT_NEAR(s2.rate, 750.0, 1e-9);
  EXPECT_FALSE(engine.last_diagnostics().rate_changed);

  const PictureSend s3 = engine.step();
  EXPECT_NEAR(s3.rate, 750.0, 1e-9);
  EXPECT_NEAR(s3.delay, 0.3, 1e-9);  // exactly the bound, not beyond
  EXPECT_TRUE(engine.done());
}

TEST(SmootherEngine, StepAfterDoneThrows) {
  const Trace t("one", GopPattern(1, 1), {100}, 0.1);
  const PatternEstimator est(t);
  SmootherEngine engine(t, params(0.3, 1, 1, 0.1), est);
  engine.step();
  EXPECT_TRUE(engine.done());
  EXPECT_THROW(engine.step(), std::logic_error);
}

TEST(SmootherEngine, RatesStayInsideTheoremBounds) {
  // The hypothesis of Theorem 1: r_i in [r^L(0), r^U(0)] computed with the
  // ACTUAL S_i at the actual t_i. This must hold for every picture whenever
  // K >= 1, regardless of estimate quality.
  const Trace t = lsm::trace::driving1();
  for (const int h : {1, 3, 9, 18}) {
    const SmootherParams p = params(0.2, 1, h, t.tau());
    const SmoothingResult result = smooth_basic(t, p);
    for (const PictureSend& send : result.sends) {
      const Rate lower = theorem_lower_bound(send.bits, send.index,
                                             send.start, p);
      const Rate upper = theorem_upper_bound(send.bits, send.index,
                                             send.start, p);
      ASSERT_GE(send.rate, lower - 1e-6 * lower)
          << "picture " << send.index << " H=" << h;
      if (std::isfinite(upper)) {
        ASSERT_LE(send.rate, upper + 1e-6 * upper)
            << "picture " << send.index << " H=" << h;
      }
    }
  }
}

TEST(SmootherEngine, FirstPictureStartsAtKTau) {
  const Trace t = lsm::trace::driving1();
  for (const int k : {1, 2, 5, 9}) {
    const SmootherParams p = params(0.1333 + (k + 1) / 30.0, k, 9, t.tau());
    const PatternEstimator est(t);
    SmootherEngine engine(t, p, est);
    const PictureSend s1 = engine.step();
    EXPECT_NEAR(s1.start, k * t.tau(), 1e-12) << "K=" << k;
  }
}

TEST(SmootherEngine, KZeroWithTightSlackViolatesDelayBound) {
  // Paper, Section 5.2: "For K = 0 ... we did observe some delay bound
  // violations when the slack in the delay bound was deliberately made very
  // small." Reproduce: the default I estimate (200,000 bits) is far below
  // the actual first picture (400,000), the chosen rate is too small, and
  // the bound is missed.
  const Trace t("surprise", GopPattern(1, 1),
                {400000, 400000, 400000, 400000}, 1.0 / 30.0);
  const PatternEstimator est(t);
  SmootherEngine engine(t, params(0.05, 0, 1, 1.0 / 30.0), est);
  const PictureSend s1 = engine.step();
  EXPECT_GT(s1.delay, 0.05);
}

TEST(SmootherEngine, MovingAverageVariantTracksPatternAverage) {
  // Perfectly periodic trace: the Eq. 15 rate is the pattern average.
  std::vector<Bits> sizes;
  for (int g = 0; g < 12; ++g) {
    sizes.insert(sizes.end(), {90000, 20000, 20000, 50000, 20000, 20000,
                               50000, 20000, 20000});
  }
  const Trace t("periodic", GopPattern(9, 3), sizes, 1.0 / 30.0);
  const PatternEstimator est(t);
  SmootherEngine engine(t, params(0.3, 1, 9, 1.0 / 30.0), est,
                        Variant::kMovingAverage);
  const std::vector<PictureSend> sends = engine.run();
  const double pattern_rate = 310000.0 / (9.0 / 30.0);
  // Skip the warm-up (defaults in play) and the tail (truncated lookahead).
  for (std::size_t k = 30; k < sends.size() - 9; ++k) {
    EXPECT_NEAR(sends[k].rate, pattern_rate, 0.02 * pattern_rate)
        << "picture " << sends[k].index;
  }
}

TEST(SmootherEngine, CausalityPrefixDeterminesPrefix) {
  // Two traces identical in pictures 1..9, wildly different afterwards:
  // the first five sends must be bit-identical (the engine never peeks).
  std::vector<Bits> a_sizes, b_sizes;
  for (int i = 0; i < 18; ++i) {
    a_sizes.push_back(10000 + 100 * i);
    b_sizes.push_back(i < 9 ? 10000 + 100 * i : 900000);
  }
  const Trace a("a", GopPattern(3, 3), a_sizes, 0.1);
  const Trace b("b", GopPattern(3, 3), b_sizes, 0.1);
  const PatternEstimator est_a(a);
  const PatternEstimator est_b(b);
  const SmootherParams p = params(0.3, 1, 3, 0.1);
  SmootherEngine engine_a(a, p, est_a);
  SmootherEngine engine_b(b, p, est_b);
  for (int step = 0; step < 5; ++step) {
    const PictureSend sa = engine_a.step();
    const PictureSend sb = engine_b.step();
    ASSERT_DOUBLE_EQ(sa.rate, sb.rate) << "step " << step;
    ASSERT_DOUBLE_EQ(sa.depart, sb.depart) << "step " << step;
  }
}

TEST(SmootherEngine, LookaheadNeverExceedsHOrSequenceEnd) {
  const Trace t = lsm::trace::backyard();
  const SmootherParams p = params(0.2, 1, 12, t.tau());
  const PatternEstimator est(t);
  SmootherEngine engine(t, p, est);
  int index = 0;
  while (!engine.done()) {
    ++index;
    engine.step();
    const StepDiagnostics& diag = engine.last_diagnostics();
    EXPECT_LE(diag.lookahead_used, p.H);
    EXPECT_LE(index + diag.lookahead_used - 1, t.picture_count());
  }
}

TEST(SmootherEngine, HigherHReducesRateChangesOnSmoothTrace) {
  // Lookahead exists to reduce the number of rate changes (Section 4.3).
  std::vector<Bits> sizes;
  for (int g = 0; g < 20; ++g) {
    sizes.insert(sizes.end(), {90000, 20000, 20000, 50000, 20000, 20000,
                               50000, 20000, 20000});
  }
  const Trace t("periodic", GopPattern(9, 3), sizes, 1.0 / 30.0);
  const SmoothingResult h1 = smooth_basic(t, params(0.3, 1, 1, t.tau()));
  const SmoothingResult h9 = smooth_basic(t, params(0.3, 1, 9, t.tau()));
  EXPECT_LT(h9.rate_change_count(), h1.rate_change_count());
}

TEST(SmootherEngine, InvalidParamsRejectedAtConstruction) {
  const Trace t("one", GopPattern(1, 1), {100}, 0.1);
  const PatternEstimator est(t);
  SmootherParams p = params(0.3, 1, 1, 0.1);
  p.H = 0;
  EXPECT_THROW(SmootherEngine(t, p, est), InvalidParams);
}

}  // namespace
}  // namespace lsm::core
