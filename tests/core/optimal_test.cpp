#include "core/optimal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/metrics.h"
#include "core/smoother.h"
#include "trace/sequences.h"

namespace lsm::core {
namespace {

using lsm::trace::GopPattern;
using lsm::trace::Trace;

TEST(OfflineOptimal, ConstantTraceReducesToOneWorkingRate) {
  // 20 pictures x 1000 bits, tau = 0.1, D = 0.3. Worked by hand: nothing is
  // available before 0.1, after which the taut string runs straight to the
  // terminus (2.2 s, 20000 bits) at 20000/2.1 bits/s.
  const Trace t("const", GopPattern(1, 1), std::vector<Bits>(20, 1000), 0.1);
  const OptimalResult result = smooth_offline_optimal(t, 0.3);
  EXPECT_NEAR(result.peak_rate, 20000.0 / 2.1, 1e-6);
  // All positive-rate segments share that one rate.
  for (const RateSegment& s : result.schedule.segments()) {
    if (s.rate > 0.0) {
      EXPECT_NEAR(s.rate, 20000.0 / 2.1, 1e-6);
    }
  }
}

TEST(OfflineOptimal, MeetsEveryDeadline) {
  const Trace t = lsm::trace::driving1();
  for (const double D : {0.1, 0.2, 0.4}) {
    const OptimalResult result = smooth_offline_optimal(t, D);
    EXPECT_LE(result.max_delay(), D + 1e-6) << "D=" << D;
    for (std::size_t i = 1; i < result.departures.size(); ++i) {
      ASSERT_LE(result.departures[i - 1], result.departures[i] + 1e-9);
    }
  }
}

TEST(OfflineOptimal, NeverSendsUnarrivedBits) {
  const Trace t = lsm::trace::tennis();
  const OptimalResult result = smooth_offline_optimal(t, 0.2);
  double cum = 0.0;
  for (int i = 1; i <= t.picture_count(); ++i) {
    // Just before picture i's arrival completes, at most cum_{i-1} bits may
    // have left.
    const double sent =
        result.schedule.integral(0.0, i * t.tau() - 1e-7);
    ASSERT_LE(sent, cum + 1.0) << "picture " << i;
    cum += static_cast<double>(t.size_of(i));
  }
}

TEST(OfflineOptimal, ConservesAllBits) {
  const Trace t = lsm::trace::backyard();
  const OptimalResult result = smooth_offline_optimal(t, 0.25);
  const double sent = result.schedule.integral(
      0.0, result.schedule.end_time() + 1.0);
  EXPECT_NEAR(sent, static_cast<double>(t.total_bits()),
              1e-6 * static_cast<double>(t.total_bits()));
}

TEST(OfflineOptimal, PeakAttainsTheLowerBound) {
  // The taut string is peak-minimal: its peak equals the largest average
  // slope forced by any (availability, deadline) pair.
  for (const Trace& t : lsm::trace::paper_sequences()) {
    for (const double D : {0.1, 0.2}) {
      const OptimalResult result = smooth_offline_optimal(t, D);
      const Rate bound = minimal_feasible_peak(t, D);
      EXPECT_NEAR(result.peak_rate, bound, 1e-6 * bound)
          << t.name() << " D=" << D;
    }
  }
}

TEST(OfflineOptimal, NeverWorseThanBasicAlgorithmPeak) {
  // The basic algorithm with K = 1 produces a schedule feasible for the same
  // corridor, so the optimal peak is a lower bound on its max rate.
  const Trace t = lsm::trace::driving1();
  for (const double D : {0.1, 0.2, 0.3}) {
    SmootherParams p;
    p.D = D;
    p.K = 1;
    p.H = t.pattern().N();
    p.tau = t.tau();
    const SmoothingResult basic = smooth_basic(t, p);
    const OptimalResult optimal = smooth_offline_optimal(t, D);
    EXPECT_LE(optimal.peak_rate,
              basic.schedule().max_rate() * (1.0 + 1e-9))
        << "D=" << D;
  }
}

TEST(OfflineOptimal, SmallerDelayBoundRaisesPeak) {
  const Trace t = lsm::trace::driving1();
  const Rate tight = smooth_offline_optimal(t, 0.08).peak_rate;
  const Rate loose = smooth_offline_optimal(t, 0.5).peak_rate;
  EXPECT_GE(tight, loose);
}

TEST(OfflineOptimal, InfeasibleDelayBoundThrows) {
  const Trace t("x", GopPattern(1, 1), {100, 100}, 0.1);
  EXPECT_THROW(smooth_offline_optimal(t, 0.1), std::invalid_argument);
  EXPECT_THROW(smooth_offline_optimal(t, 0.05), std::invalid_argument);
  EXPECT_NO_THROW(smooth_offline_optimal(t, 0.11));
}

TEST(OfflineOptimal, DepartureInterpolationIsExact) {
  // Constant-rate region: departures must be evenly spaced.
  const Trace t("const", GopPattern(1, 1), std::vector<Bits>(20, 1000), 0.1);
  const OptimalResult result = smooth_offline_optimal(t, 0.3);
  const double rate = 20000.0 / 2.1;
  for (int i = 1; i <= 20; ++i) {
    EXPECT_NEAR(result.departures[static_cast<std::size_t>(i - 1)],
                0.1 + i * 1000.0 / rate, 1e-6);
  }
}

}  // namespace
}  // namespace lsm::core
