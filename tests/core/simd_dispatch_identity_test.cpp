// Cross-tier differential for the runtime-dispatched bounds fold
// (core/bounds_fold.h): for every SIMD level the host can execute, the
// smoothing schedules — every PictureSend field and every diagnostic —
// must be bitwise identical to the scalar tier's, which in turn must be
// bitwise identical to the virtual reference path. Levels the host lacks
// skip with a message instead of silently passing, so a CI matrix over
// LSM_SIMD_LEVEL shows exactly which tiers each leg exercised.
//
// EXPECT_EQ on doubles is deliberate throughout: the dispatch layer
// promises identical bits, not close ones (see the fold-order argument in
// bounds_fold.h).
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/simd_dispatch.h"
#include "core/smoother.h"
#include "core/streaming.h"
#include "trace/trace.h"

namespace {

using namespace lsm;
using core::ExecutionPath;
using core::SmootherParams;
using core::Variant;
using simd::SimdLevel;

/// Restores the active level on scope exit.
class ActiveLevelGuard {
 public:
  ActiveLevelGuard() : saved_(simd::active_simd_level()) {}
  ~ActiveLevelGuard() { simd::set_active_simd_level(saved_); }

 private:
  SimdLevel saved_;
};

trace::Trace random_trace(unsigned seed, int pictures) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<trace::Bits> size(1'000, 900'000);
  std::vector<trace::Bits> sizes;
  sizes.reserve(static_cast<std::size_t>(pictures));
  for (int i = 0; i < pictures; ++i) sizes.push_back(size(rng));
  return trace::Trace("simd-identity", trace::GopPattern(9, 3),
                      std::move(sizes), 1.0 / 24.0);
}

void expect_identical(const core::SmoothingResult& a,
                      const core::SmoothingResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.sends.size(), b.sends.size()) << label;
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size()) << label;
  for (std::size_t k = 0; k < a.sends.size(); ++k) {
    ASSERT_EQ(a.sends[k].index, b.sends[k].index) << label;
    ASSERT_EQ(a.sends[k].bits, b.sends[k].bits) << label << " k=" << k;
    ASSERT_EQ(a.sends[k].start, b.sends[k].start) << label << " k=" << k;
    ASSERT_EQ(a.sends[k].rate, b.sends[k].rate) << label << " k=" << k;
    ASSERT_EQ(a.sends[k].depart, b.sends[k].depart) << label << " k=" << k;
    ASSERT_EQ(a.sends[k].delay, b.sends[k].delay) << label << " k=" << k;
    ASSERT_EQ(a.diagnostics[k].lower, b.diagnostics[k].lower)
        << label << " k=" << k;
    ASSERT_EQ(a.diagnostics[k].upper, b.diagnostics[k].upper)
        << label << " k=" << k;
    ASSERT_EQ(a.diagnostics[k].early_exit, b.diagnostics[k].early_exit)
        << label << " k=" << k;
    ASSERT_EQ(a.diagnostics[k].lookahead_used, b.diagnostics[k].lookahead_used)
        << label << " k=" << k;
  }
}

/// The case grid: lookahead windows spanning fold depths below, at, and
/// above each tier's vector width (1 step for scalar, 2 per AVX2 vector,
/// 4 per AVX-512 vector), both variants, and the K=0 regime where
/// crossings occur and the fold's post-hoc replay must agree too.
std::vector<SmootherParams> parameter_grid(const trace::Trace& t) {
  std::vector<SmootherParams> grid;
  for (const int K : {0, 2}) {
    for (const int H : {1, 2, 3, 4, 5, 7, 9, 16, 19}) {
      SmootherParams params;
      params.tau = t.tau();
      params.K = K;
      params.H = H;
      params.D = 0.2;
      grid.push_back(params);
    }
  }
  return grid;
}

core::SmoothingResult run_batch(const trace::Trace& t,
                                const SmootherParams& params,
                                Variant variant) {
  const core::PatternEstimator estimator(t);
  return core::smooth(t, params, estimator, variant, ExecutionPath::kAuto);
}

std::vector<core::PictureSend> run_streaming(const trace::Trace& t,
                                             const SmootherParams& params) {
  core::StreamingSmoother streaming(t.pattern(), params);
  std::vector<core::PictureSend> sends;
  for (int i = 1; i <= t.picture_count(); ++i) {
    streaming.push(t.size_of(i));
    for (const core::PictureSend& send : streaming.drain()) {
      sends.push_back(send);
    }
  }
  streaming.finish();
  for (const core::PictureSend& send : streaming.drain()) {
    sends.push_back(send);
  }
  return sends;
}

/// Runs the whole grid at `level` and compares bitwise against the same
/// grid at kScalar — and anchors the scalar tier itself against the
/// virtual reference path so "all tiers agree" can never mean "all tiers
/// drifted together".
void run_level_identity(SimdLevel level) {
  const ActiveLevelGuard guard;
  const trace::Trace t = random_trace(21u, 160);
  for (const Variant variant : {Variant::kBasic, Variant::kMovingAverage}) {
    for (const SmootherParams& params : parameter_grid(t)) {
      const std::string label =
          std::string(simd::simd_level_name(level)) + " H=" +
          std::to_string(params.H) + " K=" + std::to_string(params.K) +
          (variant == Variant::kBasic ? " basic" : " moving-average");
      simd::set_active_simd_level(SimdLevel::kScalar);
      const core::SmoothingResult scalar = run_batch(t, params, variant);
      const core::PatternEstimator estimator(t);
      const core::SmoothingResult reference = core::smooth(
          t, params, estimator, variant, ExecutionPath::kReference);
      expect_identical(scalar, reference, label + " (scalar vs reference)");
      const std::vector<core::PictureSend> scalar_stream =
          run_streaming(t, params);

      simd::set_active_simd_level(level);
      const core::SmoothingResult wide = run_batch(t, params, variant);
      expect_identical(wide, scalar, label);
      const std::vector<core::PictureSend> wide_stream =
          run_streaming(t, params);
      ASSERT_EQ(wide_stream.size(), scalar_stream.size()) << label;
      for (std::size_t k = 0; k < wide_stream.size(); ++k) {
        ASSERT_EQ(wide_stream[k].start, scalar_stream[k].start)
            << label << " k=" << k;
        ASSERT_EQ(wide_stream[k].rate, scalar_stream[k].rate)
            << label << " k=" << k;
        ASSERT_EQ(wide_stream[k].depart, scalar_stream[k].depart)
            << label << " k=" << k;
      }
    }
  }
}

#define LSM_REQUIRE_LEVEL(level)                                        \
  if (simd::detected_simd_level() < (level)) {                          \
    GTEST_SKIP() << "host supports only "                               \
                 << simd::simd_level_name(simd::detected_simd_level()); \
  }

TEST(SimdDispatchIdentity, Sse2MatchesScalar) {
  LSM_REQUIRE_LEVEL(SimdLevel::kSse2);
  run_level_identity(SimdLevel::kSse2);
}

TEST(SimdDispatchIdentity, Avx2MatchesScalar) {
  LSM_REQUIRE_LEVEL(SimdLevel::kAvx2);
  run_level_identity(SimdLevel::kAvx2);
}

TEST(SimdDispatchIdentity, Avx512MatchesScalar) {
  LSM_REQUIRE_LEVEL(SimdLevel::kAvx512);
  run_level_identity(SimdLevel::kAvx512);
}

// The dispatch decision is made per fold call, so a level change between
// two engine runs must take effect without rebuilding anything.
TEST(SimdDispatchIdentity, LevelChangeTakesEffectBetweenRuns) {
  const ActiveLevelGuard guard;
  const trace::Trace t = random_trace(5u, 80);
  SmootherParams params;
  params.tau = t.tau();
  params.H = 18;
  simd::set_active_simd_level(SimdLevel::kScalar);
  const core::SmoothingResult before = run_batch(t, params, Variant::kBasic);
  simd::set_active_simd_level(simd::detected_simd_level());
  const core::SmoothingResult after = run_batch(t, params, Variant::kBasic);
  expect_identical(before, after, "level change mid-process");
}

}  // namespace
