// Property sweep over the full (sequence x D x K x H x variant x quantum)
// grid: structural sanity of every smoothing run and its measures. These
// complement the hand-computed metric tests with breadth.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/metrics.h"
#include "core/smoother.h"
#include "core/theorem.h"
#include "trace/sequences.h"

namespace lsm::core {
namespace {

using lsm::trace::Trace;

struct GridCase {
  const char* sequence;
  double D;
  int K;
  int H;
  Variant variant;
  double quantum;
};

Trace sequence_by_name(const std::string& name) {
  if (name == "driving1") return lsm::trace::driving1();
  if (name == "driving2") return lsm::trace::driving2();
  if (name == "tennis") return lsm::trace::tennis();
  return lsm::trace::backyard();
}

std::string grid_name(const testing::TestParamInfo<GridCase>& info) {
  const GridCase& c = info.param;
  return std::string(c.sequence) + "_D" +
         std::to_string(static_cast<int>(c.D * 1000)) + "_K" +
         std::to_string(c.K) + "_H" + std::to_string(c.H) +
         (c.variant == Variant::kMovingAverage ? "_mod" : "_basic") +
         (c.quantum > 0 ? "_q64" : "");
}

class MeasureGrid : public testing::TestWithParam<GridCase> {};

TEST_P(MeasureGrid, StructuralInvariantsHold) {
  const GridCase& c = GetParam();
  const Trace t = sequence_by_name(c.sequence);
  SmootherParams params;
  params.tau = t.tau();
  params.D = c.D;
  params.K = c.K;
  params.H = c.H;
  params.rate_quantum = c.quantum;

  const PatternEstimator estimator(t);
  const SmoothingResult result = smooth(t, params, estimator, c.variant);
  const SmoothnessMetrics metrics = evaluate(result, t);
  const TheoremReport report = check_theorem1(result, t);

  // Theorem regime => all guarantees.
  ASSERT_TRUE(params.guarantees_delay_bound());
  EXPECT_TRUE(report.all_ok());

  // Measures are structurally sane.
  EXPECT_GE(metrics.area_difference, 0.0);
  EXPECT_LT(metrics.area_difference, 1.0);
  EXPECT_GE(metrics.rate_changes, 1);
  EXPECT_LE(metrics.rate_changes, t.picture_count());
  EXPECT_GT(metrics.max_rate, 0.0);
  EXPECT_GE(metrics.max_rate, metrics.rate_mean);
  EXPECT_GE(metrics.rate_stddev, 0.0);
  EXPECT_LE(metrics.rate_stddev, metrics.max_rate);

  // The schedule moves exactly the trace's bits.
  const RateSchedule schedule = result.schedule();
  const double sent =
      schedule.integral(0.0, schedule.end_time() + 1.0);
  EXPECT_NEAR(sent, static_cast<double>(t.total_bits()),
              1e-6 * static_cast<double>(t.total_bits()));

  // The mean smoothed rate cannot beat the arithmetic it is made of:
  // total bits over the sending span.
  const double span = schedule.end_time() - schedule.start_time();
  EXPECT_NEAR(metrics.rate_mean * schedule.end_time(), sent,
              0.05 * sent + 1.0);
  EXPECT_GT(span, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MeasureGrid,
    testing::Values(
        GridCase{"driving1", 0.1, 1, 9, Variant::kBasic, 0.0},
        GridCase{"driving1", 0.2, 1, 9, Variant::kBasic, 0.0},
        GridCase{"driving1", 0.2, 1, 9, Variant::kMovingAverage, 0.0},
        GridCase{"driving1", 0.2, 1, 9, Variant::kBasic, 64000.0},
        GridCase{"driving1", 0.3, 2, 18, Variant::kBasic, 0.0},
        GridCase{"driving2", 0.1333, 1, 6, Variant::kBasic, 0.0},
        GridCase{"driving2", 0.2, 1, 6, Variant::kMovingAverage, 0.0},
        GridCase{"driving2", 0.2, 3, 12, Variant::kBasic, 64000.0},
        GridCase{"tennis", 0.1, 1, 9, Variant::kBasic, 0.0},
        GridCase{"tennis", 0.2, 1, 1, Variant::kBasic, 0.0},
        GridCase{"tennis", 0.3, 1, 9, Variant::kMovingAverage, 64000.0},
        GridCase{"backyard", 0.1, 1, 12, Variant::kBasic, 0.0},
        GridCase{"backyard", 0.2, 1, 12, Variant::kMovingAverage, 0.0},
        GridCase{"backyard", 0.2, 2, 24, Variant::kBasic, 0.0},
        GridCase{"backyard", 0.3, 1, 12, Variant::kBasic, 64000.0}),
    grid_name);

}  // namespace
}  // namespace lsm::core
