#include "core/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lsm::core {
namespace {

SmootherParams params(double D, int K, double tau = 0.1) {
  SmootherParams p;
  p.D = D;
  p.K = K;
  p.tau = tau;
  p.H = 1;
  return p;
}

TEST(Bounds, TheoremLowerBoundMatchesEquationFive) {
  // r^L = S_i / (D + (i-1) tau - t_i).
  const SmootherParams p = params(0.5, 1);
  // i = 3, t_i = 0.3 ((i-1+K) tau): denominator = 0.5 + 0.2 - 0.3 = 0.4.
  EXPECT_NEAR(theorem_lower_bound(200, 3, 0.3, p), 200 / 0.4, 1e-9);
}

TEST(Bounds, TheoremUpperBoundMatchesEquationSix) {
  // r^U = S_i / ((i+K) tau - t_i) when t_i < (i+K) tau.
  const SmootherParams p = params(0.5, 1);
  // i = 3: (3+1)*0.1 = 0.4; t_i = 0.3 -> denominator 0.1.
  EXPECT_NEAR(theorem_upper_bound(200, 3, 0.3, p), 2000.0, 1e-9);
}

TEST(Bounds, UpperBoundInfiniteWhenServerIsLate) {
  const SmootherParams p = params(0.5, 1);
  // t_i at or past (i+K) tau: no upper constraint.
  EXPECT_TRUE(std::isinf(theorem_upper_bound(200, 3, 0.4, p)));
  EXPECT_TRUE(std::isinf(theorem_upper_bound(200, 3, 0.7, p)));
}

TEST(Bounds, LowerBoundInfiniteWhenDeadlineUnreachable) {
  // Denominator D + (i-1) tau - t_i <= 0: no finite rate meets the bound.
  const SmootherParams p = params(0.05, 1);
  EXPECT_TRUE(std::isinf(theorem_lower_bound(200, 1, 0.05, p)));
  EXPECT_TRUE(std::isinf(theorem_lower_bound(200, 1, 0.2, p)));
}

TEST(Bounds, LookaheadZeroEqualsTheoremBounds) {
  const SmootherParams p = params(0.5, 2);
  for (int i = 1; i <= 5; ++i) {
    const double t_i = (i - 1 + p.K) * p.tau;
    EXPECT_NEAR(lookahead_lower_bound(300.0, i, 0, t_i, p),
                theorem_lower_bound(300, i, t_i, p), 1e-9);
    EXPECT_NEAR(lookahead_upper_bound(300.0, i, 0, t_i, p),
                theorem_upper_bound(300, i, t_i, p), 1e-9);
  }
}

TEST(Bounds, CorollaryOneLowerNotAboveUpper) {
  // Corollary 1: with D >= (K+1) tau and t_i in the legal window
  // [(i-1+K) tau, (i-1) tau + D], r^L <= r^U for the same sum.
  const double tau = 1.0 / 30.0;
  for (int K = 1; K <= 4; ++K) {
    const SmootherParams p = params((K + 1) * tau + 0.05, K, tau);
    for (int i = 1; i <= 20; ++i) {
      for (double frac : {0.0, 0.3, 0.7, 1.0}) {
        const double lo_t = (i - 1 + K) * tau;
        const double hi_t = (i - 1) * tau + p.D;
        const double t_i = lo_t + frac * (hi_t - lo_t);
        const Rate lower = theorem_lower_bound(1000, i, t_i, p);
        const Rate upper = theorem_upper_bound(1000, i, t_i, p);
        if (std::isfinite(lower)) {
          EXPECT_LE(lower, upper + 1e-6)
              << "K=" << K << " i=" << i << " frac=" << frac;
        }
      }
    }
  }
}

TEST(Bounds, LookaheadLowerGrowsWithSum) {
  const SmootherParams p = params(0.5, 1);
  const double t_i = 0.1;
  EXPECT_LT(lookahead_lower_bound(100.0, 1, 2, t_i, p),
            lookahead_lower_bound(200.0, 1, 2, t_i, p));
}

TEST(Bounds, LookaheadDenominatorsShiftWithH) {
  const SmootherParams p = params(0.5, 1);
  const double t_i = 0.1;
  // lower(h) denominator grows by tau per h; with equal sums the bound drops.
  EXPECT_GT(lookahead_lower_bound(100.0, 1, 0, t_i, p),
            lookahead_lower_bound(100.0, 1, 1, t_i, p));
  // upper(h) deadline also moves out by tau per h.
  EXPECT_GT(lookahead_upper_bound(100.0, 1, 0, t_i, p),
            lookahead_upper_bound(100.0, 1, 1, t_i, p));
}

}  // namespace
}  // namespace lsm::core
