#include "core/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "trace/sequences.h"

namespace lsm::core {
namespace {

using lsm::trace::GopPattern;
using lsm::trace::Trace;

TEST(RateMoments, HandComputedStep) {
  // 10 for one second, 4 for one second: mean 7, variance 9.
  const RateSchedule s({RateSegment{0.0, 1.0, 10.0},
                        RateSegment{1.0, 2.0, 4.0}});
  const RateMoments m = rate_moments(s, 0.0, 2.0);
  EXPECT_NEAR(m.mean, 7.0, 1e-12);
  EXPECT_NEAR(m.stddev, 3.0, 1e-12);
}

TEST(RateMoments, GapsCountAsZeroRate) {
  const RateSchedule s({RateSegment{0.0, 1.0, 6.0}});
  const RateMoments m = rate_moments(s, 0.0, 3.0);
  EXPECT_NEAR(m.mean, 2.0, 1e-12);
  // E[r^2] = 12, var = 12 - 4 = 8.
  EXPECT_NEAR(m.stddev, std::sqrt(8.0), 1e-12);
}

TEST(RateMoments, ConstantRateHasZeroDeviation) {
  const RateSchedule s({RateSegment{0.0, 5.0, 42.0}});
  const RateMoments m = rate_moments(s, 0.0, 5.0);
  EXPECT_NEAR(m.mean, 42.0, 1e-12);
  EXPECT_NEAR(m.stddev, 0.0, 1e-9);
}

TEST(RateMoments, EmptyIntervalThrows) {
  const RateSchedule s({RateSegment{0.0, 1.0, 1.0}});
  EXPECT_THROW(rate_moments(s, 1.0, 1.0), std::invalid_argument);
}

TEST(AreaDifference, IdenticalSchedulesGiveZero) {
  const RateSchedule s({RateSegment{0.0, 2.0, 10.0}});
  EXPECT_NEAR(area_difference(s, s, 0.0, 2.0), 0.0, 1e-12);
}

TEST(AreaDifference, HandComputedExcess) {
  // r = 10 on [0,2]; R = 8 on [0,2]: excess = 2*2 = 4, reference area 16.
  const RateSchedule r({RateSegment{0.0, 2.0, 10.0}});
  const RateSchedule ref({RateSegment{0.0, 2.0, 8.0}});
  EXPECT_NEAR(area_difference(r, ref, 0.0, 2.0), 4.0 / 16.0, 1e-12);
}

TEST(AreaDifference, OnlyPositivePartCounts) {
  // r below R everywhere: zero.
  const RateSchedule r({RateSegment{0.0, 2.0, 5.0}});
  const RateSchedule ref({RateSegment{0.0, 2.0, 8.0}});
  EXPECT_NEAR(area_difference(r, ref, 0.0, 2.0), 0.0, 1e-12);
}

TEST(AreaDifference, ShiftMovesTheReference) {
  // R = 10 on [1, 2]. Shift 1 -> reference appears on [0, 1].
  const RateSchedule r({RateSegment{0.0, 1.0, 10.0}});
  const RateSchedule ref({RateSegment{1.0, 2.0, 10.0}});
  EXPECT_NEAR(area_difference(r, ref, 1.0, 1.0), 0.0, 1e-12);
}

TEST(AreaDifference, CrossingSchedules) {
  // r: 10 on [0,1], 2 on [1,2]; R: 6 on [0,2].
  // Excess = (10-6)*1 = 4; reference area = 12.
  const RateSchedule r({RateSegment{0.0, 1.0, 10.0},
                        RateSegment{1.0, 2.0, 2.0}});
  const RateSchedule ref({RateSegment{0.0, 2.0, 6.0}});
  EXPECT_NEAR(area_difference(r, ref, 0.0, 2.0), 4.0 / 12.0, 1e-12);
}

TEST(AreaDifference, InvalidInputsThrow) {
  const RateSchedule r({RateSegment{0.0, 1.0, 1.0}});
  const RateSchedule zero;
  EXPECT_THROW(area_difference(r, r, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(area_difference(r, zero, 0.0, 1.0), std::invalid_argument);
}

TEST(Evaluate, BasicRunProducesSaneMeasures) {
  const Trace t = lsm::trace::driving1();
  SmootherParams p;
  p.D = 0.2;
  p.K = 1;
  p.H = 9;
  p.tau = t.tau();
  const SmoothingResult result = smooth_basic(t, p);
  const SmoothnessMetrics metrics = evaluate(result, t);

  EXPECT_GT(metrics.rate_changes, 0);
  EXPECT_LE(metrics.rate_changes, t.picture_count());
  EXPECT_GT(metrics.max_rate, metrics.rate_mean);
  EXPECT_GT(metrics.rate_stddev, 0.0);
  EXPECT_GE(metrics.area_difference, 0.0);
  EXPECT_LT(metrics.area_difference, 1.0);
  EXPECT_LE(metrics.max_delay, p.D + 1e-9);
}

TEST(MinDelayForPeak, InvertsTheDesignTradeoff) {
  const Trace t = lsm::trace::driving1();
  SmootherParams base;
  base.tau = t.tau();
  base.H = 9;
  // Ask for the peak the D=0.2 schedule achieves: the answer must be <= 0.2
  // and actually meet the target.
  SmootherParams probe = base;
  probe.D = 0.2;
  const double target = smooth_basic(t, probe).schedule().max_rate();
  const Seconds d = min_delay_for_peak(t, base, target);
  ASSERT_GT(d, 0.0);
  // peak(D) is not strictly monotone (estimates shift with D), so the
  // bisection may land a few ms above 0.2 — but close, and valid.
  EXPECT_LE(d, 0.22);
  probe.D = d;
  EXPECT_LE(smooth_basic(t, probe).schedule().max_rate(), target * 1.0001);
}

TEST(MinDelayForPeak, UnreachableTargetReportsFailure) {
  const Trace t = lsm::trace::driving1();
  SmootherParams base;
  base.tau = t.tau();
  base.H = 9;
  // No delay bound can push the peak below the long-run mean rate.
  EXPECT_LT(min_delay_for_peak(t, base, 0.5 * t.mean_rate()), 0.0);
}

TEST(MinDelayForPeak, GenerousTargetNeedsOnlyTheMinimumDelay) {
  const Trace t = lsm::trace::backyard();
  SmootherParams base;
  base.tau = t.tau();
  base.H = 12;
  // A target above the unsmoothed peak is met at the smallest legal D.
  const Seconds d = min_delay_for_peak(t, base, 1e9);
  EXPECT_NEAR(d, (base.K + 1) * base.tau, 1e-9);
}

TEST(Evaluate, IdealRunHasZeroAreaDifferenceAgainstItself) {
  // Evaluating the ideal smoother's own result: r(t) IS R(t) shifted by
  // (N - K) tau with K = N, i.e. shift 0 -> area difference 0.
  const Trace t = lsm::trace::backyard();
  const SmoothingResult ideal = smooth_ideal(t);
  const SmoothnessMetrics metrics = evaluate(ideal, t);
  EXPECT_NEAR(metrics.area_difference, 0.0, 1e-9);
}

TEST(RateChangeProfile, HandComputedJumps) {
  SmoothingResult result;
  result.sends = {
      PictureSend{1, 0.0, 1.0, 100.0, 1.0, 100},
      PictureSend{2, 1.0, 2.0, 100.0, 1.0, 100},  // no change
      PictureSend{3, 2.0, 3.0, 150.0, 1.0, 150},  // +50
      PictureSend{4, 3.0, 4.0, 140.0, 1.0, 140},  // -10
  };
  const RateChangeProfile profile = rate_change_profile(result);
  EXPECT_EQ(profile.changes, 2);
  EXPECT_NEAR(profile.mean_magnitude, 30.0, 1e-9);
  EXPECT_NEAR(profile.max_magnitude, 50.0, 1e-9);
  // Time-average rate = total bits / span = 490 / 4.
  EXPECT_NEAR(profile.mean_relative, 30.0 / (490.0 / 4.0), 1e-9);
}

TEST(RateChangeProfile, EmptyAndConstantCases) {
  SmoothingResult empty;
  EXPECT_EQ(rate_change_profile(empty).changes, 0);
  SmoothingResult constant;
  constant.sends = {PictureSend{1, 0.0, 1.0, 5.0, 1.0, 5},
                    PictureSend{2, 1.0, 2.0, 5.0, 1.0, 5}};
  const RateChangeProfile profile = rate_change_profile(constant);
  EXPECT_EQ(profile.changes, 0);
  EXPECT_DOUBLE_EQ(profile.mean_magnitude, 0.0);
}

TEST(RateChangeProfile, ModifiedAlgorithmMakesSmallerChanges) {
  // Section 4.4: "numerous small rate changes" — more changes, each much
  // smaller than the basic algorithm's jumps.
  const Trace t = lsm::trace::driving1();
  SmootherParams params;
  params.tau = t.tau();
  params.D = 0.2;
  params.H = 9;
  const RateChangeProfile basic =
      rate_change_profile(smooth_basic(t, params));
  const RateChangeProfile modified =
      rate_change_profile(smooth_modified(t, params));
  EXPECT_GT(modified.changes, basic.changes);
  EXPECT_LT(modified.mean_relative, 0.5 * basic.mean_relative);
}

TEST(Evaluate, RelaxingDImprovesEveryMeasure) {
  // Figure 6's qualitative content on one sequence.
  const Trace t = lsm::trace::driving1();
  SmootherParams tight;
  tight.D = 0.0834;  // > (K+1) tau = 0.0667
  tight.K = 1;
  tight.H = 9;
  tight.tau = t.tau();
  SmootherParams loose = tight;
  loose.D = 0.3;

  const SmoothnessMetrics a = evaluate(smooth_basic(t, tight), t);
  const SmoothnessMetrics b = evaluate(smooth_basic(t, loose), t);
  EXPECT_GT(a.max_rate, b.max_rate);
  EXPECT_GT(a.rate_stddev, b.rate_stddev);
  EXPECT_GT(a.area_difference, b.area_difference);
}

}  // namespace
}  // namespace lsm::core
