// Tracer / StreamTracer / StreamScope: disabled no-op, per-thread buffers,
// multi-thread drain, ambient stream attribution, and drop accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "obs/trace_io.h"
#include "obs/tracer.h"

namespace lsm::obs {
namespace {

TEST(Tracer, DisabledEmitRecordsNothing) {
  Tracer tracer;
  StreamTracer handle(&tracer, 3);
  EXPECT_FALSE(handle.on());
  handle.emit(EventKind::kPictureScheduled, 1, 0.1);
  EXPECT_TRUE(tracer.drain().empty());
}

TEST(Tracer, EmitDrainRoundTrip) {
  Tracer tracer;
  tracer.set_enabled(true);
  StreamTracer handle(&tracer, 7);
  handle.emit(EventKind::kPictureScheduled, 1, 0.1, 100.0, 0.2, 0.3);
  handle.emit(EventKind::kRateChange, 2, 0.2, 200.0, 100.0);
  const std::vector<TraceEvent> events = tracer.drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].stream, 7u);
  EXPECT_EQ(events[0].picture, 1u);
  EXPECT_EQ(events[0].kind,
            static_cast<std::uint16_t>(EventKind::kPictureScheduled));
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);  // per-stream emission order
  EXPECT_DOUBLE_EQ(events[1].a, 200.0);
  EXPECT_TRUE(tracer.drain().empty());  // drain removes
}

TEST(Tracer, DrainGathersEventsFromEveryThread) {
  Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr std::uint32_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      StreamTracer handle(&tracer, static_cast<std::uint32_t>(t));
      for (std::uint32_t i = 1; i <= kPerThread; ++i) {
        handle.emit(EventKind::kPictureScheduled, i, i * 0.01);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::vector<TraceEvent> events = tracer.drain();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  canonical_sort(events);
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint32_t i = 0; i < kPerThread; ++i) {
      const TraceEvent& event =
          events[static_cast<std::size_t>(t) * kPerThread + i];
      EXPECT_EQ(event.stream, static_cast<std::uint32_t>(t));
      EXPECT_EQ(event.picture, i + 1);
      EXPECT_EQ(event.seq, i);
    }
  }
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, FullBuffersCountDrops) {
  Tracer tracer;
  tracer.set_buffer_capacity(64);
  tracer.set_enabled(true);
  StreamTracer handle(&tracer, 0);
  for (std::uint32_t i = 0; i < 100; ++i) {
    handle.emit(EventKind::kPictureScheduled, i, 0.0);
  }
  EXPECT_EQ(tracer.drain().size(), 64u);
  EXPECT_EQ(tracer.dropped(), 36u);
}

TEST(Tracer, ClearDiscardsBufferedEvents) {
  Tracer tracer;
  tracer.set_enabled(true);
  StreamTracer handle(&tracer, 0);
  handle.emit(EventKind::kRateChange, 1, 0.0);
  tracer.clear();
  EXPECT_TRUE(tracer.drain().empty());
}

TEST(StreamScope, SetsAndRestoresAmbientStream) {
  EXPECT_EQ(current_stream(), 0u);
  {
    const StreamScope outer(5);
    EXPECT_EQ(current_stream(), 5u);
    EXPECT_EQ(StreamTracer().stream(), 5u);  // default ctor picks it up
    {
      const StreamScope inner(9);
      EXPECT_EQ(current_stream(), 9u);
    }
    EXPECT_EQ(current_stream(), 5u);
  }
  EXPECT_EQ(current_stream(), 0u);
}

TEST(Tracer, EventKindNamesAreStable) {
  EXPECT_STREQ(event_kind_name(EventKind::kPictureScheduled),
               "picture_scheduled");
  EXPECT_STREQ(event_kind_name(EventKind::kRateChange), "rate_change");
  EXPECT_STREQ(event_kind_name(EventKind::kBoundCrossing),
               "bound_crossing");
  EXPECT_STREQ(event_kind_name(EventKind::kRenegGiveUp), "reneg_giveup");
  EXPECT_STREQ(event_kind_name(EventKind::kShardStart), "shard_start");
}

}  // namespace
}  // namespace lsm::obs
