// SloTracker: burn-rate arithmetic, the two-window AND gate, and the
// breach side effects (kSloBreach trace event + FlightRecorder dump).
// Everything runs against hermetic Tracer/FlightRecorder instances so the
// process-wide observability state is untouched.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/event.h"
#include "obs/flight_recorder.h"
#include "obs/slo.h"
#include "obs/tracer.h"

namespace lsm::obs {
namespace {

SloSpec spec(double objective, std::int64_t fast, std::int64_t slow,
             double threshold = 1.0) {
  SloSpec s;
  s.name = "test.slo";
  s.objective = objective;
  s.fast_window_epochs = fast;
  s.slow_window_epochs = slow;
  s.burn_threshold = threshold;
  return s;
}

TEST(SloSpec, ValidatesFields) {
  EXPECT_THROW(spec(0.0, 1, 4).validate(), std::invalid_argument);
  EXPECT_THROW(spec(1.0, 1, 4).validate(), std::invalid_argument);
  EXPECT_THROW(spec(0.9, 0, 4).validate(), std::invalid_argument);
  EXPECT_THROW(spec(0.9, 8, 4).validate(), std::invalid_argument);
  EXPECT_THROW(spec(0.9, 1, 4, 0.0).validate(), std::invalid_argument);
  EXPECT_NO_THROW(spec(0.9, 1, 4).validate());
}

TEST(SloTracker, BurnRateIsBadFractionOverBudget) {
  Tracer tracer;
  FlightRecorder recorder;
  // objective 0.75 -> budget 0.25 (dyadic, so the arithmetic is exact);
  // 75/100 good burns the budget exactly at rate 1.0.
  SloTracker slo(spec(0.75, 4, 4), &tracer, &recorder);
  const SloState& state = slo.record_epoch(0, 75, 100);
  EXPECT_EQ(state.fast_good, 75u);
  EXPECT_EQ(state.fast_total, 100u);
  EXPECT_EQ(state.fast_burn, 1.0);
  EXPECT_EQ(state.slow_burn, 1.0);
}

TEST(SloTracker, RecordingTheSameEpochAccumulates) {
  Tracer tracer;
  FlightRecorder recorder;
  SloTracker slo(spec(0.9, 4, 4), &tracer, &recorder);
  slo.record_epoch(3, 40, 50);
  const SloState& state = slo.record_epoch(3, 50, 50);
  EXPECT_EQ(state.fast_good, 90u);
  EXPECT_EQ(state.fast_total, 100u);
}

TEST(SloTracker, BreachNeedsBothWindowsBurning) {
  Tracer tracer;
  FlightRecorder recorder;
  // objective 0.5 -> budget 0.5; fast window 1 epoch, slow window 4.
  SloTracker slo(spec(0.5, 1, 4), &tracer, &recorder);
  for (std::int64_t epoch = 0; epoch < 3; ++epoch) {
    EXPECT_FALSE(slo.record_epoch(epoch, 100, 100).breaching);
  }
  // Epoch 3 all-bad: fast burn 2.0 but slow = 100 bad / 400 total ->
  // burn 0.5 < 1.0. One bad epoch must not page.
  const SloState& fast_only = slo.record_epoch(3, 0, 100);
  EXPECT_EQ(fast_only.fast_burn, 2.0);
  EXPECT_EQ(fast_only.slow_burn, 0.5);
  EXPECT_FALSE(fast_only.breaching);
  EXPECT_EQ(fast_only.breaches, 0u);
  // Epoch 4 all-bad: slow window is now epochs 1..4 = 200/400 bad ->
  // burn 1.0. Both windows at threshold: breach.
  const SloState& breached = slo.record_epoch(4, 0, 100);
  EXPECT_EQ(breached.slow_burn, 1.0);
  EXPECT_TRUE(breached.breaching);
  EXPECT_EQ(breached.breaches, 1u);
}

TEST(SloTracker, BreachesCountTransitionsNotEpochs) {
  Tracer tracer;
  FlightRecorder recorder;
  SloTracker slo(spec(0.5, 1, 2), &tracer, &recorder);
  slo.record_epoch(0, 0, 100);
  EXPECT_EQ(slo.state().breaches, 1u);
  // Staying in breach does not re-count.
  slo.record_epoch(1, 0, 100);
  EXPECT_TRUE(slo.state().breaching);
  EXPECT_EQ(slo.state().breaches, 1u);
  // Recover (fast window all good), then breach again: second transition.
  slo.record_epoch(2, 100, 100);
  slo.record_epoch(3, 100, 100);
  EXPECT_FALSE(slo.state().breaching);
  slo.record_epoch(4, 0, 100);
  EXPECT_EQ(slo.state().breaches, 2u);
}

TEST(SloTracker, OldEpochsAgeOutOfTheSlowWindow) {
  Tracer tracer;
  FlightRecorder recorder;
  SloTracker slo(spec(0.9, 2, 4), &tracer, &recorder);
  slo.record_epoch(0, 0, 100);  // all bad
  for (std::int64_t epoch = 1; epoch <= 4; ++epoch) {
    slo.record_epoch(epoch, 100, 100);
  }
  // Epoch 0 is 4 epochs old at epoch 4: outside the slow window entirely.
  const SloState& state = slo.state();
  EXPECT_EQ(state.slow_total, 400u);
  EXPECT_EQ(state.slow_good, 400u);
  EXPECT_EQ(state.slow_burn, 0.0);
}

TEST(SloTracker, BreachEmitsTraceEventAndTriggersFlightRecorder) {
  Tracer tracer;
  FlightRecorder recorder;
  recorder.set_dump_path(::testing::TempDir() + "slo_breach_dump.txt");
  recorder.arm(/*per_stream=*/64, &tracer);  // also enables the tracer
  ASSERT_TRUE(tracer.enabled());

  SloTracker slo(spec(0.5, 1, 1), &tracer, &recorder);
  slo.record_epoch(7, 0, 10);
  EXPECT_TRUE(slo.state().breaching);
  EXPECT_EQ(recorder.dump_count(), 1u);

  // trigger() capture()s the tracer into the retention rings, so the
  // breach event is read back from the recorder, not a fresh drain.
  const std::vector<TraceEvent> events = recorder.retained(0);
  const TraceEvent* breach = nullptr;
  for (const TraceEvent& event : events) {
    if (event.kind == static_cast<std::uint16_t>(EventKind::kSloBreach)) {
      breach = &event;
    }
  }
  ASSERT_NE(breach, nullptr);
  EXPECT_EQ(breach->picture, 0xffffffffu);  // disjoint from shard events
  EXPECT_EQ(breach->time, 7.0);             // simulated epoch, not wall time
  EXPECT_EQ(breach->a, slo.state().fast_burn);
  EXPECT_EQ(breach->b, slo.state().slow_burn);
  EXPECT_EQ(breach->c, 1.0);  // cumulative breach count

  // Re-entering breach later fires a second dump.
  slo.record_epoch(8, 10, 10);
  ASSERT_FALSE(slo.state().breaching);
  slo.record_epoch(9, 0, 10);
  EXPECT_EQ(recorder.dump_count(), 2u);
  recorder.disarm();
}

TEST(SloTracker, DisarmedRecorderMeansBreachIsStateOnly) {
  Tracer tracer;
  FlightRecorder recorder;
  SloTracker slo(spec(0.5, 1, 1), &tracer, &recorder);
  slo.record_epoch(0, 0, 10);
  EXPECT_TRUE(slo.state().breaching);
  EXPECT_EQ(recorder.dump_count(), 0u);  // trigger() no-ops when disarmed
  EXPECT_TRUE(tracer.drain().empty());   // tracer never enabled
}

}  // namespace
}  // namespace lsm::obs
