// QuantileSketch: fixed geometry, clamping contract, and the merge
// property the health plane's determinism rests on — merging any
// partition of an observation multiset reproduces the unpartitioned
// sketch bit for bit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "obs/json.h"
#include "obs/sketch.h"
#include "sim/rng.h"

namespace lsm::obs {
namespace {

TEST(QuantileSketch, BucketZeroHoldsZeroNegativeAndNonFinite) {
  EXPECT_EQ(QuantileSketch::bucket_index(0.0), 0);
  EXPECT_EQ(QuantileSketch::bucket_index(-1.0), 0);
  EXPECT_EQ(QuantileSketch::bucket_index(
                std::numeric_limits<double>::quiet_NaN()),
            0);
}

TEST(QuantileSketch, BucketBoundsAreConsistentAndMonotone) {
  // Every positive value's bucket upper bound is >= the value, bounds are
  // nondecreasing in the index, and adjacent sub-buckets split octaves.
  double previous = 0.0;
  for (int index = 0; index < QuantileSketch::kBuckets - 1; ++index) {
    const double upper = QuantileSketch::bucket_upper(index);
    EXPECT_GE(upper, previous) << "bucket " << index;
    previous = upper;
  }
  EXPECT_TRUE(std::isinf(
      QuantileSketch::bucket_upper(QuantileSketch::kBuckets - 1)));

  sim::Rng rng(0x5eedULL);
  for (int k = 0; k < 10000; ++k) {
    const double value = std::ldexp(rng.uniform(0.5, 1.0),
                                    static_cast<int>(rng.uniform_int(
                                        QuantileSketch::kMinExponent,
                                        QuantileSketch::kMaxExponent)));
    const int index = QuantileSketch::bucket_index(value);
    ASSERT_GT(index, 0) << value;
    ASSERT_LT(index, QuantileSketch::kBuckets - 1) << value;
    EXPECT_LE(value, QuantileSketch::bucket_upper(index)) << value;
    EXPECT_GT(value, QuantileSketch::bucket_upper(index - 1)) << value;
  }
}

TEST(QuantileSketch, OutOfRangeValuesHitTheEdgeBuckets) {
  // Below the bottom octave: first log bucket. Above the top: overflow.
  EXPECT_EQ(QuantileSketch::bucket_index(1e-12), 1);
  EXPECT_EQ(QuantileSketch::bucket_index(1e12),
            QuantileSketch::kBuckets - 1);
  QuantileSketch sketch;
  sketch.observe(1e12);
  // Overflow samples report the exact observed max, not a bucket bound.
  EXPECT_EQ(sketch.quantile(1.0), 1e12);
}

TEST(QuantileSketch, ClampingContractMatchesHistogramMetric) {
  QuantileSketch sketch;
  sketch.observe(-3.0);
  sketch.observe(std::numeric_limits<double>::quiet_NaN());
  sketch.observe(std::numeric_limits<double>::infinity());
  sketch.observe(0.5);
  EXPECT_EQ(sketch.count(), 4u);
  EXPECT_EQ(sketch.clamped(), 3u);
  EXPECT_EQ(sketch.buckets()[0], 3u);  // faulty samples land as 0.0
  EXPECT_EQ(sketch.min(), 0.0);
  EXPECT_EQ(sketch.max(), 0.5);
}

TEST(QuantileSketch, EmptySketchReportsZeros) {
  const QuantileSketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.min(), 0.0);
  EXPECT_EQ(sketch.max(), 0.0);
  EXPECT_EQ(sketch.quantile(0.5), 0.0);
}

TEST(QuantileSketch, QuantileWalksRanks) {
  QuantileSketch sketch;
  for (int k = 1; k <= 100; ++k) {
    sketch.observe(static_cast<double>(k));
  }
  // The rank-ceil walk returns bucket upper bounds: each quantile's bound
  // must cover the exact rank statistic and not exceed the next octave.
  EXPECT_GE(sketch.quantile(0.5), 50.0);
  EXPECT_LE(sketch.quantile(0.5), 64.0);
  EXPECT_GE(sketch.quantile(0.99), 99.0);
  EXPECT_LE(sketch.quantile(0.99), 128.0);
  EXPECT_EQ(sketch.quantile(0.0), sketch.quantile(1.0 / 100.0));
}

void expect_identical(const QuantileSketch& a, const QuantileSketch& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.clamped(), b.clamped());
  // min/max and every quantile must match BITWISE.
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(a.buckets(), b.buckets());
}

TEST(QuantileSketch, MergeOfAnyPartitionMatchesUnpartitioned) {
  sim::Rng rng(0xdecade5ULL);
  std::vector<double> values;
  for (int k = 0; k < 20000; ++k) {
    // Mix magnitudes across many octaves plus occasional faulty samples.
    const double value = std::ldexp(
        rng.uniform(0.5, 1.0), static_cast<int>(rng.uniform_int(-20, 20)));
    values.push_back(rng.bernoulli(0.01) ? -value : value);
  }

  QuantileSketch whole;
  for (const double value : values) whole.observe(value);

  for (const int shards : {2, 4, 8, 13}) {
    std::vector<QuantileSketch> parts(static_cast<std::size_t>(shards));
    for (std::size_t k = 0; k < values.size(); ++k) {
      parts[k % static_cast<std::size_t>(shards)].observe(values[k]);
    }
    QuantileSketch merged;
    for (const QuantileSketch& part : parts) merged.merge(part);
    expect_identical(whole, merged);

    // Merge order cannot matter either (integer adds commute exactly).
    QuantileSketch reversed;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
      reversed.merge(*it);
    }
    expect_identical(whole, reversed);
  }
}

TEST(QuantileSketch, MergePreservesEmptyMinMax) {
  QuantileSketch target;
  const QuantileSketch empty;
  target.observe(2.0);
  target.merge(empty);  // merging empty must not disturb min/max
  EXPECT_EQ(target.min(), 2.0);
  EXPECT_EQ(target.max(), 2.0);

  QuantileSketch fresh;
  fresh.merge(target);
  EXPECT_EQ(fresh.min(), 2.0);
  EXPECT_EQ(fresh.count(), 1u);
}

TEST(QuantileSketch, ResetClearsEverything) {
  QuantileSketch sketch;
  sketch.observe(1.0);
  sketch.observe(-1.0);
  sketch.reset();
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.clamped(), 0u);
  EXPECT_EQ(sketch.max(), 0.0);
  const QuantileSketch empty;
  EXPECT_EQ(sketch.buckets(), empty.buckets());
}

TEST(QuantileSketch, JsonIsByteStableAcrossPartitions) {
  sim::Rng rng(0xbeefULL);
  std::vector<double> values;
  for (int k = 0; k < 5000; ++k) values.push_back(rng.uniform(1e-6, 1e6));

  const auto render = [](const QuantileSketch& sketch) {
    JsonWriter json;
    write_sketch_json(json, sketch);
    return json.take();
  };

  QuantileSketch whole;
  for (const double value : values) whole.observe(value);
  QuantileSketch left;
  QuantileSketch right;
  for (std::size_t k = 0; k < values.size(); ++k) {
    (k < values.size() / 2 ? left : right).observe(values[k]);
  }
  QuantileSketch merged;
  merged.merge(left);
  merged.merge(right);
  EXPECT_EQ(render(whole), render(merged));
}

TEST(SketchMetric, AssignReplacesWholesale) {
  SketchMetric metric;
  metric.observe(1.0);
  metric.observe(2.0);
  QuantileSketch replacement;
  replacement.observe(5.0);
  metric.assign(replacement);
  const QuantileSketch data = metric.data();
  EXPECT_EQ(data.count(), 1u);
  EXPECT_EQ(data.max(), 5.0);
}

}  // namespace
}  // namespace lsm::obs
