// TraceBuffer: SPSC ring semantics — ordering, wrap-around, drop-on-full,
// and a producer/consumer thread exercise (meaningful under TSan).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/ring.h"

namespace lsm::obs {
namespace {

TraceEvent make(std::uint32_t picture) {
  TraceEvent event;
  event.stream = 1;
  event.picture = picture;
  event.kind = static_cast<std::uint16_t>(EventKind::kPictureScheduled);
  event.time = picture * 0.5;
  return event;
}

TEST(TraceBuffer, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(TraceBuffer(1).capacity(), 64u);
  EXPECT_EQ(TraceBuffer(64).capacity(), 64u);
  EXPECT_EQ(TraceBuffer(65).capacity(), 128u);
  EXPECT_EQ(TraceBuffer(1000).capacity(), 1024u);
}

TEST(TraceBuffer, DrainsInFifoOrder) {
  TraceBuffer buffer(64);
  for (std::uint32_t i = 1; i <= 10; ++i) {
    EXPECT_TRUE(buffer.try_push(make(i)));
  }
  std::vector<TraceEvent> out;
  EXPECT_EQ(buffer.drain_into(out), 10u);
  ASSERT_EQ(out.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i].picture, i + 1);
  }
  out.clear();
  EXPECT_EQ(buffer.drain_into(out), 0u);
}

TEST(TraceBuffer, DropsNewEventsWhenFullAndCounts) {
  TraceBuffer buffer(64);
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(buffer.try_push(make(i)));
  }
  EXPECT_FALSE(buffer.try_push(make(999)));
  EXPECT_FALSE(buffer.try_push(make(998)));
  EXPECT_EQ(buffer.dropped(), 2u);
  std::vector<TraceEvent> out;
  buffer.drain_into(out);
  ASSERT_EQ(out.size(), 64u);
  EXPECT_EQ(out.back().picture, 63u);  // dropped events never overwrite
  // Draining frees the slots for the producer again.
  EXPECT_TRUE(buffer.try_push(make(7)));
}

TEST(TraceBuffer, WrapsAroundManyTimes) {
  TraceBuffer buffer(64);
  std::vector<TraceEvent> out;
  std::uint32_t next = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 48; ++i) {
      ASSERT_TRUE(buffer.try_push(make(next++)));
    }
    buffer.drain_into(out);
  }
  ASSERT_EQ(out.size(), 480u);
  for (std::uint32_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].picture, i);
  }
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(TraceBuffer, ConcurrentProducerAndConsumerLoseNothingInOrder) {
  TraceBuffer buffer(256);
  constexpr std::uint32_t kTotal = 20000;
  std::vector<TraceEvent> out;
  std::thread producer([&buffer] {
    for (std::uint32_t i = 0; i < kTotal; ++i) {
      while (!buffer.try_push(make(i))) {
        std::this_thread::yield();
      }
    }
  });
  while (out.size() < kTotal) {
    if (buffer.drain_into(out) == 0) std::this_thread::yield();
  }
  producer.join();
  ASSERT_EQ(out.size(), kTotal);
  for (std::uint32_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(out[i].picture, i);  // FIFO and untorn across threads
  }
}

}  // namespace
}  // namespace lsm::obs
