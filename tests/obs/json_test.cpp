// JsonWriter: escaping, round-trip-exact doubles, comma placement, and the
// non-finite -> null rule.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>

#include "obs/json.h"

namespace lsm::obs {
namespace {

TEST(JsonWriter, EscapesQuotesBackslashesAndControls) {
  JsonWriter json;
  json.begin_object();
  json.key("na\"me").value("a\\b\n\t\x01z");
  json.end_object();
  EXPECT_EQ(json.str(), "{\"na\\\"me\": \"a\\\\b\\n\\t\\u0001z\"}");
}

TEST(JsonWriter, CommaPlacementAcrossNestedScopes) {
  JsonWriter json;
  json.begin_object();
  json.key("a").value(std::uint64_t{1});
  json.key("b").begin_array();
  json.value(std::uint64_t{2});
  json.begin_object();
  json.key("c").value(true);
  json.end_object();
  json.null();
  json.end_array();
  json.key("d").value(-5);
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"a\": 1, \"b\": [2, {\"c\": true}, null], \"d\": -5}");
}

TEST(JsonDouble, RoundTripsExactly) {
  for (const double value :
       {0.1, 1.0 / 3.0, 1e-300, 12345.6789, 2.5e17, -0.0078125}) {
    const std::string text = json_double(value);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
  }
  EXPECT_EQ(json_double(0.0), "0");
  EXPECT_EQ(json_double(250.0), "250");
}

TEST(JsonDouble, NonFiniteBecomesNull) {
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriter, TakeMovesTheDocumentOut) {
  JsonWriter json;
  json.begin_array();
  json.value("x");
  json.end_array();
  const std::string doc = json.take();
  EXPECT_EQ(doc, "[\"x\"]");
}

}  // namespace
}  // namespace lsm::obs
