// The ISSUE-mandated integration check: with the global flight recorder
// armed, a faulted pipeline run whose worst_delay_excess ends up positive
// must write a postmortem dump without any manual trigger() call.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "net/transport.h"
#include "obs/flight_recorder.h"
#include "obs/tracer.h"
#include "trace/sequences.h"

namespace lsm::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FlightTrigger, FaultedRunWithDelayExcessDumpsAutomatically) {
  const lsm::trace::Trace trace = lsm::trace::driving1();
  lsm::net::FaultedPipelineConfig config;
  config.base.params.tau = trace.tau();
  config.base.params.D = 0.2;
  config.base.params.K = 1;
  config.base.params.H = trace.pattern().N();
  config.base.network_latency = 0.010;

  // Find a seed whose plan actually pushes a picture past the delay bound;
  // high intensity makes this quick.
  sim::FaultPlan biting_plan;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 64 && !found; ++seed) {
    sim::FaultSpec spec;
    spec.horizon = trace.duration();
    spec.intensity = 4.0;
    spec.seed = seed;
    const sim::FaultPlan plan = sim::FaultPlan::generate(spec);
    const lsm::net::FaultedPipelineReport probe =
        lsm::net::run_faulted_pipeline(trace, config, plan);
    if (probe.report.worst_delay_excess > 0.0) {
      biting_plan = plan;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no fault plan produced a delay-bound overshoot";

  const std::string path =
      std::string(::testing::TempDir()) + "flight_trigger_dump.txt";
  std::remove(path.c_str());
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.set_dump_path(path);
  recorder.arm(64);
  const lsm::net::FaultedPipelineReport out =
      lsm::net::run_faulted_pipeline(trace, config, biting_plan);
  EXPECT_GT(out.report.worst_delay_excess, 0.0);
  EXPECT_GE(recorder.dump_count(), 1u);
  recorder.disarm();
  Tracer::global().set_enabled(false);
  Tracer::global().clear();

  const std::string dump = slurp(path);
  EXPECT_NE(dump.find("flight recorder dump"), std::string::npos);
  EXPECT_NE(dump.find("worst_delay_excess"), std::string::npos);
  EXPECT_NE(dump.find("picture_scheduled"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightTrigger, CleanRunWritesNoDump) {
  const lsm::trace::Trace trace = lsm::trace::driving1();
  lsm::net::PipelineConfig config;
  config.params.tau = trace.tau();
  config.params.D = 0.2;
  config.params.K = 1;
  config.params.H = trace.pattern().N();

  const std::string path =
      std::string(::testing::TempDir()) + "flight_clean_dump.txt";
  std::remove(path.c_str());
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.set_dump_path(path);
  recorder.arm(64);
  const lsm::net::PipelineReport report =
      lsm::net::run_live_pipeline(trace, config);
  EXPECT_EQ(report.worst_delay_excess, 0.0);
  EXPECT_EQ(recorder.dump_count(), 0u);
  recorder.disarm();
  Tracer::global().set_enabled(false);
  Tracer::global().clear();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lsm::obs
