// Metrics registry: handle stability, histogram clamping, snapshot
// ordering, and both exposition formats.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace lsm::obs {
namespace {

TEST(Registry, HandlesAreStableAndSharedByName) {
  Registry registry;
  Counter& a = registry.counter("runs");
  Counter& b = registry.counter("runs");
  EXPECT_EQ(&a, &b);
  a.add(2);
  b.add(3);
  EXPECT_EQ(registry.counter("runs").value(), 5u);
}

TEST(Registry, CountersAreThreadSafe) {
  Registry registry;
  Counter& counter = registry.counter("hits");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) counter.add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 40000u);
}

TEST(HistogramMetric, ObserveClampsFaultyInputsAndCountsThem) {
  HistogramMetric histogram;
  histogram.observe(0.0005);
  histogram.observe(std::numeric_limits<double>::quiet_NaN());
  histogram.observe(std::numeric_limits<double>::infinity());
  histogram.observe(-1.0);
  const HistogramMetric::Data data = histogram.data();
  EXPECT_EQ(data.count, 4u);
  EXPECT_EQ(data.clamped, 3u);
  EXPECT_EQ(data.buckets[0], 4u);
  EXPECT_DOUBLE_EQ(data.max_seconds, 0.0005);
}

TEST(HistogramMetric, MergeAddsPreBinnedData) {
  HistogramMetric histogram;
  std::uint64_t buckets[HistogramMetric::kBuckets] = {};
  buckets[2] = 5;
  buckets[12] = 1;
  histogram.merge(buckets, 6, 2, 9.5);
  const HistogramMetric::Data data = histogram.data();
  EXPECT_EQ(data.count, 6u);
  EXPECT_EQ(data.clamped, 2u);
  EXPECT_EQ(data.buckets[2], 5u);
  EXPECT_EQ(data.buckets[12], 1u);
  EXPECT_DOUBLE_EQ(data.max_seconds, 9.5);
}

TEST(MetricsSnapshot, JsonHasSortedStableShape) {
  Registry registry;
  registry.counter("b.count").add(2);
  registry.counter("a.count").add(1);
  registry.gauge("load").set(0.5);
  registry.histogram("lat").observe(0.002);
  const std::string json = registry.to_json();
  // std::map ordering: a.count before b.count.
  EXPECT_LT(json.find("\"a.count\": 1"), json.find("\"b.count\": 2"));
  EXPECT_NE(json.find("\"gauges\": {\"load\": 0.5}"), std::string::npos);
  EXPECT_NE(json.find("\"lat\": {\"count\": 1, \"clamped\": 0"),
            std::string::npos);
}

TEST(MetricsSnapshot, PrometheusExposition) {
  Registry registry;
  registry.counter("batch.streams").add(4);
  registry.gauge("queue.depth").set(1.5);
  registry.histogram("recovery.latency").observe(0.0015);
  registry.histogram("recovery.latency").observe(-1.0);
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE lsm_batch_streams counter\n"
                      "lsm_batch_streams 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("lsm_queue_depth 1.5"), std::string::npos);
  // Cumulative buckets: the -1 clamp lands in le="0.001" and the 1.5 ms
  // sample joins it in le="0.002".
  EXPECT_NE(text.find("lsm_recovery_latency_bucket{le=\"0.001\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lsm_recovery_latency_bucket{le=\"0.002\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("lsm_recovery_latency_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("lsm_recovery_latency_count 2"), std::string::npos);
  EXPECT_NE(text.find("lsm_recovery_latency_clamped 1"), std::string::npos);
  EXPECT_NE(text.find("lsm_recovery_latency_max_seconds 0.0015"),
            std::string::npos);
}

TEST(Registry, GlobalIsASingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

}  // namespace
}  // namespace lsm::obs
