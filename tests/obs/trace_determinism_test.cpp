// Trace determinism differentials: the binary event stream must be
// byte-identical across execution paths (kReference vs the devirtualized
// fast path) and across BatchSmoother thread counts, once shard events —
// the only wall-clock kinds — are filtered and the stream is put into
// canonical (stream, picture, seq) order. Tracing observes the schedule;
// it must never depend on how the schedule was computed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/smoother.h"
#include "core/streaming.h"
#include "obs/trace_io.h"
#include "obs/tracer.h"
#include "runtime/batch.h"
#include "trace/sequences.h"

namespace lsm::obs {
namespace {

using lsm::core::ExecutionPath;
using lsm::core::SmootherParams;
using lsm::trace::Trace;

SmootherParams params_for(const Trace& trace) {
  SmootherParams params;
  params.K = 1;
  params.H = trace.pattern().N();
  params.D = 0.2;
  params.tau = trace.tau();
  return params;
}

/// Runs every paper sequence through smooth() on `path` with tracing on
/// and returns the canonical deterministic byte stream.
std::string engine_trace_bytes(ExecutionPath path) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  const std::vector<Trace> traces = lsm::trace::paper_sequences();
  for (std::size_t s = 0; s < traces.size(); ++s) {
    const StreamScope scope(static_cast<std::uint32_t>(s));
    const lsm::core::PatternEstimator estimator(traces[s]);
    lsm::core::smooth(traces[s], params_for(traces[s]), estimator,
                      lsm::core::Variant::kBasic, path);
  }
  tracer.set_enabled(false);
  std::vector<TraceEvent> events =
      deterministic_events(tracer.drain());
  canonical_sort(events);
  return serialize(events);
}

TEST(TraceDeterminism, ExecutionPathsEmitByteIdenticalTraces) {
  const std::string reference = engine_trace_bytes(ExecutionPath::kReference);
  const std::string fast = engine_trace_bytes(ExecutionPath::kAuto);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(reference.size(), fast.size());
  EXPECT_TRUE(reference == fast)
      << "fast-path trace diverges from the reference trace";
}

TEST(TraceDeterminism, StreamingSmootherMatchesItselfAcrossPaths) {
  std::string bytes[2];
  const Trace trace = lsm::trace::driving1();
  const ExecutionPath paths[2] = {ExecutionPath::kReference,
                                  ExecutionPath::kAuto};
  for (int run = 0; run < 2; ++run) {
    Tracer& tracer = Tracer::global();
    tracer.clear();
    tracer.set_enabled(true);
    lsm::core::StreamingSmoother smoother(trace.pattern(), params_for(trace),
                                          lsm::core::DefaultSizes{},
                                          paths[run]);
    for (int i = 1; i <= trace.picture_count(); ++i) {
      smoother.push(trace.size_of(i));
      smoother.drain();
    }
    smoother.finish();
    smoother.drain();
    tracer.set_enabled(false);
    std::vector<TraceEvent> events =
        deterministic_events(tracer.drain());
    canonical_sort(events);
    bytes[run] = serialize(events);
  }
  ASSERT_FALSE(bytes[0].empty());
  EXPECT_TRUE(bytes[0] == bytes[1]);
}

/// Runs the paper sequences (repeated to get a meaningful job count)
/// through a BatchSmoother with `threads` workers; returns canonical
/// deterministic bytes.
std::string batch_trace_bytes(int threads) {
  const std::vector<Trace> traces = lsm::trace::paper_sequences();
  std::vector<lsm::runtime::BatchJob> jobs;
  for (int repeat = 0; repeat < 4; ++repeat) {
    for (const Trace& trace : traces) {
      jobs.push_back(lsm::runtime::BatchJob{&trace, params_for(trace),
                                            lsm::core::Variant::kBasic});
    }
  }
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  lsm::runtime::BatchSmoother smoother(threads);
  smoother.run(jobs);
  tracer.set_enabled(false);
  std::vector<TraceEvent> events = deterministic_events(tracer.drain());
  canonical_sort(events);
  return serialize(events);
}

TEST(TraceDeterminism, BatchThreadCountsEmitByteIdenticalTraces) {
  const std::string one = batch_trace_bytes(1);
  const std::string four = batch_trace_bytes(4);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one.size(), four.size());
  EXPECT_TRUE(one == four)
      << "batch trace depends on worker count; stream attribution must be "
         "by job index, not by thread";
}

TEST(TraceDeterminism, RepeatedRunsAreByteIdentical) {
  const std::string a = engine_trace_bytes(ExecutionPath::kAuto);
  const std::string b = engine_trace_bytes(ExecutionPath::kAuto);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace lsm::obs
