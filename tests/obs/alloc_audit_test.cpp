// Steady-state allocation audit under the counting allocator
// (obs/alloc_hook.h). This test binary — and only this binary among the
// test suites — links lsm_allochook, replacing the global operator
// new/delete with counting versions, and asserts the zero-alloc contract
// the perf_micro BM_*SteadyAllocs benchmarks gate: a warmed streaming
// smoother processes pictures without touching the heap.
//
// Sanitizer legs skip the zero assertions (ASan/TSan route allocations
// through their own runtimes and may allocate internally at any point);
// the counter's basic monotonicity is still checked everywhere.
#include "obs/alloc_hook.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/streaming.h"
#include "trace/pattern.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define LSM_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define LSM_UNDER_SANITIZER 1
#else
#define LSM_UNDER_SANITIZER 0
#endif
#else
#define LSM_UNDER_SANITIZER 0
#endif

namespace {

using namespace lsm;

TEST(AllocHook, CountsOperatorNewForms) {
  const std::int64_t before = obs::alloc_count();
  // Stored through containers so the allocations cannot be elided.
  std::vector<std::unique_ptr<int>> scalars;
  scalars.reserve(4);
  for (int i = 0; i < 4; ++i) scalars.push_back(std::make_unique<int>(i));
  auto array = std::make_unique<double[]>(32);
  array[0] = 1.0;
  struct alignas(64) Wide {
    double lanes[8];
  };
  auto aligned = std::make_unique<Wide>();  // aligned operator new form
  aligned->lanes[0] = 2.0;
  const std::int64_t after = obs::alloc_count();
  // reserve + 4 scalar news + array + aligned = at least 7.
  EXPECT_GE(after - before, 7);
  scalars.clear();
  array.reset();
  aligned.reset();
  // Deletes never count; the counter is monotonic.
  EXPECT_GE(obs::alloc_count(), after);
}

TEST(AllocHook, WarmStreamingSmootherLoopIsAllocationFree) {
#if LSM_UNDER_SANITIZER
  GTEST_SKIP() << "sanitizer runtimes allocate on their own schedule";
#endif
  core::SmootherParams params;
  params.tau = 1.0 / 30.0;
  params.D = 0.3;
  params.H = 9;
  core::StreamingSmoother streaming(trace::GopPattern(9, 3), params);
  std::vector<core::PictureSend> sends;
  sends.reserve(1024);
  // Deterministic picture sizes cycling through the pattern; mirrors the
  // BM_SmoothSteadyAllocs shape so the gtest and the bench gate the same
  // loop.
  int next = 0;
  const auto push_chunk = [&] {
    for (int i = 0; i < 256; ++i) {
      streaming.push(40'000 + 977 * (next % 23));
      ++next;
    }
    sends.clear();
    streaming.drain_into(sends);
  };
  for (int warm = 0; warm < 4; ++warm) push_chunk();  // warm every buffer
  const std::int64_t before = obs::alloc_count();
  for (int audited = 0; audited < 4; ++audited) push_chunk();
  const std::int64_t after = obs::alloc_count();
  EXPECT_EQ(after - before, 0)
      << "steady-state smoothing performed heap allocations";
}

}  // namespace
