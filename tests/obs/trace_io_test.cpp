// Binary trace persistence: save/load round trip, corruption detection,
// canonical ordering, and the deterministic-subset filter.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/trace_io.h"

namespace lsm::obs {
namespace {

TraceEvent make(std::uint32_t stream, std::uint32_t picture,
                std::uint32_t seq, EventKind kind, double time) {
  TraceEvent event;
  event.stream = stream;
  event.picture = picture;
  event.seq = seq;
  event.kind = static_cast<std::uint16_t>(kind);
  event.time = time;
  event.a = time * 2;
  return event;
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(TraceIo, SaveLoadRoundTripsBytes) {
  std::vector<TraceEvent> events;
  events.push_back(make(0, 1, 0, EventKind::kPictureScheduled, 0.1));
  events.push_back(make(1, 2, 1, EventKind::kRateChange, 0.2));
  const std::string path = temp_path("roundtrip.lsmtrc");
  save_trace_file(path, events);
  const std::vector<TraceEvent> loaded = load_trace_file(path);
  ASSERT_EQ(loaded.size(), events.size());
  EXPECT_EQ(serialize(loaded), serialize(events));
  std::remove(path.c_str());
}

TEST(TraceIo, LoadRejectsBadMagic) {
  const std::string path = temp_path("badmagic.lsmtrc");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  const char junk[32] = "NOTATRACEFILE";
  std::fwrite(junk, 1, sizeof junk, file);
  std::fclose(file);
  EXPECT_THROW(load_trace_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, LoadRejectsMissingFile) {
  EXPECT_THROW(load_trace_file(temp_path("does_not_exist.lsmtrc")),
               std::runtime_error);
}

TEST(TraceIo, SerializeIsTheRawRecordBytes) {
  std::vector<TraceEvent> events;
  events.push_back(make(3, 4, 5, EventKind::kBoundCrossing, 1.5));
  const std::string bytes = serialize(events);
  ASSERT_EQ(bytes.size(), sizeof(TraceEvent));
  TraceEvent back;
  std::memcpy(&back, bytes.data(), sizeof back);
  EXPECT_EQ(back.stream, 3u);
  EXPECT_EQ(back.picture, 4u);
  EXPECT_DOUBLE_EQ(back.time, 1.5);
}

TEST(TraceIo, CanonicalSortOrdersByStreamPictureSeq) {
  std::vector<TraceEvent> events;
  events.push_back(make(1, 1, 0, EventKind::kPictureScheduled, 0.3));
  events.push_back(make(0, 2, 2, EventKind::kPictureScheduled, 0.2));
  events.push_back(make(0, 1, 1, EventKind::kPictureScheduled, 0.1));
  events.push_back(make(0, 1, 0, EventKind::kRateChange, 0.1));
  canonical_sort(events);
  EXPECT_EQ(events[0].stream, 0u);
  EXPECT_EQ(events[0].picture, 1u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[2].picture, 2u);
  EXPECT_EQ(events[3].stream, 1u);
}

TEST(TraceIo, DeterministicEventsDropShardKinds) {
  std::vector<TraceEvent> events;
  events.push_back(make(0, 1, 0, EventKind::kPictureScheduled, 0.1));
  events.push_back(make(0, 0, 1, EventKind::kShardStart, 123.0));
  events.push_back(make(0, 0, 2, EventKind::kShardEnd, 124.0));
  events.push_back(make(0, 2, 3, EventKind::kRenegGrant, 0.2));
  const std::vector<TraceEvent> filtered = deterministic_events(events);
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0].kind,
            static_cast<std::uint16_t>(EventKind::kPictureScheduled));
  EXPECT_EQ(filtered[1].kind,
            static_cast<std::uint16_t>(EventKind::kRenegGrant));
}

}  // namespace
}  // namespace lsm::obs
