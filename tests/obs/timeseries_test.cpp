// TimeSeries: epoch-keyed windows, fixed-point sums, ring wraparound, and
// the invariance that makes health snapshots byte-stable — a window's
// aggregates are a pure function of the recorded (epoch, value) multiset.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "obs/json.h"
#include "obs/timeseries.h"

namespace lsm::obs {
namespace {

TimeSeriesOptions options(std::size_t windows, std::int64_t epochs,
                          bool with_sketch = false) {
  TimeSeriesOptions opt;
  opt.window_count = windows;
  opt.epochs_per_window = epochs;
  opt.with_sketch = with_sketch;
  return opt;
}

TEST(TimeSeries, ValidatesOptions) {
  EXPECT_THROW(TimeSeries{options(0, 1)}, std::invalid_argument);
  EXPECT_THROW(TimeSeries{options(4, 0)}, std::invalid_argument);
  TimeSeriesOptions bad_scale = options(4, 1);
  bad_scale.sum_scale = 0.0;
  EXPECT_THROW(TimeSeries{bad_scale}, std::invalid_argument);
}

TEST(TimeSeries, AggregatesWithinAWindow) {
  TimeSeries series(options(4, 4));
  series.record(0, 3.0);
  series.record(1, 1.0);
  series.record(3, 7.0);
  std::vector<TimeSeriesWindow> windows;
  series.snapshot(windows);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].window, 0);
  EXPECT_EQ(windows[0].count, 3u);
  EXPECT_EQ(windows[0].sum_fp, 11);  // sum_scale 1.0: integer-exact
  EXPECT_EQ(windows[0].min, 1.0);
  EXPECT_EQ(windows[0].max, 7.0);
}

TEST(TimeSeries, FixedPointSumUsesScale) {
  TimeSeriesOptions opt = options(2, 1);
  opt.sum_scale = 1e9;
  TimeSeries series(opt);
  series.record(0, 0.25);
  series.record(0, 0.5);
  std::vector<TimeSeriesWindow> windows;
  series.snapshot(windows);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].sum_fp, 750000000);  // llround-exact, order-free
}

TEST(TimeSeries, RingWrapsKeepingTheNewestWindows) {
  TimeSeries series(options(4, 2));
  for (std::int64_t epoch = 0; epoch < 20; ++epoch) {
    series.record(epoch, static_cast<double>(epoch));
  }
  std::vector<TimeSeriesWindow> windows;
  series.snapshot(windows);
  // Epochs 0..19 -> windows 0..9; the ring retains windows 6..9,
  // oldest first.
  ASSERT_EQ(windows.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(windows[k].window, static_cast<std::int64_t>(6 + k));
    EXPECT_EQ(windows[k].count, 2u);
    EXPECT_EQ(windows[k].min, static_cast<double>((6 + k) * 2));
    EXPECT_EQ(windows[k].max, static_cast<double>((6 + k) * 2 + 1));
  }
  EXPECT_EQ(series.latest_window(), 9);
}

TEST(TimeSeries, LappedSlotIsResetNotAccumulated) {
  TimeSeries series(options(2, 1));
  series.record(0, 100.0);
  // Window 4 maps onto window 0's slot (4 % 2 == 0): the stale cell must
  // be discarded, not folded into the new window.
  series.record(4, 1.0);
  std::vector<TimeSeriesWindow> windows;
  series.snapshot(windows);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].window, 4);
  EXPECT_EQ(windows[0].count, 1u);
  EXPECT_EQ(windows[0].sum_fp, 1);
  EXPECT_EQ(windows[0].max, 1.0);
}

TEST(TimeSeries, SnapshotSkipsGapsAndStaleSlots) {
  TimeSeries series(options(4, 1));
  series.record(0, 1.0);
  series.record(5, 2.0);  // windows 1..4 never recorded; 0's slot lapped
  std::vector<TimeSeriesWindow> windows;
  series.snapshot(windows);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].window, 5);
}

TEST(TimeSeries, PerWindowSketchesTrackTheirWindows) {
  TimeSeries series(options(3, 2, /*with_sketch=*/true));
  for (std::int64_t epoch = 0; epoch < 6; ++epoch) {
    series.record(epoch, static_cast<double>(epoch + 1));
  }
  std::vector<TimeSeriesWindow> windows;
  std::vector<QuantileSketch> sketches;
  series.snapshot(windows, &sketches);
  ASSERT_EQ(windows.size(), 3u);
  ASSERT_EQ(sketches.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(sketches[k].count(), 2u) << "window " << k;
    EXPECT_EQ(sketches[k].max(), windows[k].max) << "window " << k;
  }
}

TEST(TimeSeries, RecordingOrderWithinAWindowIsInvisible) {
  // Same multiset, different order: byte-identical snapshots (integer
  // sums, multiset min/max).
  const auto render = [](const std::vector<int>& order) {
    TimeSeries series(options(2, 8, /*with_sketch=*/true));
    for (const int value : order) {
      series.record(value % 8, static_cast<double>(value));
    }
    std::vector<TimeSeriesWindow> windows;
    std::vector<QuantileSketch> sketches;
    series.snapshot(windows, &sketches);
    JsonWriter json;
    write_series_json(json, series.options(), windows, &sketches);
    return json.take();
  };
  EXPECT_EQ(render({1, 2, 3, 4, 5, 6, 7}), render({7, 5, 3, 1, 6, 4, 2}));
}

TEST(TimeSeriesMetric, ThreadSafeWrapperMatchesPlainSeries) {
  TimeSeriesMetric metric(options(4, 1));
  metric.record(0, 2.0);
  metric.record(1, 4.0);
  std::vector<TimeSeriesWindow> windows;
  metric.snapshot(windows);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[1].max, 4.0);
}

}  // namespace
}  // namespace lsm::obs
