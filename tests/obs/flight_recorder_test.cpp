// FlightRecorder: retention rings, trigger/dump accounting, and the
// disarmed-is-free contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/tracer.h"

namespace lsm::obs {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FlightRecorder, DisarmedTriggerIsANoOp) {
  FlightRecorder recorder;
  EXPECT_FALSE(recorder.armed());
  EXPECT_FALSE(recorder.trigger("nothing"));
  EXPECT_EQ(recorder.dump_count(), 0u);
}

TEST(FlightRecorder, ArmEnablesTheTracerItConsumes) {
  Tracer tracer;
  FlightRecorder recorder;
  EXPECT_FALSE(tracer.enabled());
  recorder.arm(16, &tracer);
  EXPECT_TRUE(recorder.armed());
  EXPECT_TRUE(tracer.enabled());
  recorder.disarm();
  EXPECT_FALSE(recorder.armed());
}

TEST(FlightRecorder, RetainsOnlyTheTrailingEventsPerStream) {
  Tracer tracer;
  FlightRecorder recorder;
  recorder.arm(4, &tracer);
  StreamTracer stream0(&tracer, 0);
  StreamTracer stream1(&tracer, 1);
  for (std::uint32_t i = 1; i <= 10; ++i) {
    stream0.emit(EventKind::kPictureScheduled, i, i * 0.1);
  }
  stream1.emit(EventKind::kRateChange, 1, 0.5);
  recorder.capture();
  const std::vector<TraceEvent> kept = recorder.retained(0);
  ASSERT_EQ(kept.size(), 4u);  // ring depth, oldest first
  EXPECT_EQ(kept.front().picture, 7u);
  EXPECT_EQ(kept.back().picture, 10u);
  EXPECT_EQ(recorder.retained(1).size(), 1u);
  EXPECT_TRUE(recorder.retained(9).empty());
}

TEST(FlightRecorder, TriggerWritesAReadableDump) {
  Tracer tracer;
  FlightRecorder recorder;
  const std::string path = temp_path("flight_dump.txt");
  std::remove(path.c_str());
  recorder.set_dump_path(path);
  recorder.arm(8, &tracer);
  StreamTracer stream(&tracer, 2);
  stream.emit(EventKind::kPictureScheduled, 1, 0.1, 1e6, 0.05, 0.15);
  stream.emit(EventKind::kBoundCrossing, 2, 0.2, 5e5, 4e5);
  EXPECT_TRUE(recorder.trigger("worst_delay_excess"));
  EXPECT_EQ(recorder.dump_count(), 1u);
  const std::string dump = slurp(path);
  EXPECT_NE(dump.find("worst_delay_excess"), std::string::npos);
  EXPECT_NE(dump.find("picture_scheduled"), std::string::npos);
  EXPECT_NE(dump.find("bound_crossing"), std::string::npos);
  EXPECT_TRUE(recorder.trigger("second_fault"));
  EXPECT_EQ(recorder.dump_count(), 2u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, EnvironmentVariableRedirectsDumpsWhenPathUnset) {
  // CI exports LSM_FLIGHT_DUMP so dumps from any test process land in a
  // file the workflow uploads as a failure artifact.
  Tracer tracer;
  FlightRecorder recorder;
  const std::string path = temp_path("flight_env_dump.txt");
  std::remove(path.c_str());
  ASSERT_EQ(setenv("LSM_FLIGHT_DUMP", path.c_str(), 1), 0);
  recorder.arm(8, &tracer);
  StreamTracer stream(&tracer, 1);
  stream.emit(EventKind::kRateChange, 3, 0.3, 2e6, 1e6);
  EXPECT_TRUE(recorder.trigger("env_redirect"));
  ASSERT_EQ(unsetenv("LSM_FLIGHT_DUMP"), 0);
  const std::string dump = slurp(path);
  EXPECT_NE(dump.find("env_redirect"), std::string::npos);
  EXPECT_NE(dump.find("rate_change"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, RearmResetsDumpCountAndRings) {
  Tracer tracer;
  FlightRecorder recorder;
  const std::string path = temp_path("flight_rearm.txt");
  recorder.set_dump_path(path);
  recorder.arm(8, &tracer);
  StreamTracer stream(&tracer, 0);
  stream.emit(EventKind::kRateChange, 1, 0.0);
  EXPECT_TRUE(recorder.trigger("first"));
  recorder.arm(8, &tracer);
  EXPECT_EQ(recorder.dump_count(), 0u);
  EXPECT_TRUE(recorder.retained(0).empty());
  recorder.disarm();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lsm::obs
