#include "trace/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lsm::trace {
namespace {

TEST(TraceStats, HandComputedExample) {
  // Pattern IBB repeated twice at tau = 0.1.
  const Trace t("t", GopPattern(3, 3), {100, 20, 30, 90, 25, 35}, 0.1);
  const TraceStats stats = compute_stats(t);

  EXPECT_EQ(stats.overall.count, 6);
  EXPECT_EQ(stats.overall.min, 20);
  EXPECT_EQ(stats.overall.max, 100);
  EXPECT_NEAR(stats.overall.mean, 50.0, 1e-12);

  EXPECT_EQ(stats.of(PictureType::I).count, 2);
  EXPECT_NEAR(stats.of(PictureType::I).mean, 95.0, 1e-12);
  EXPECT_NEAR(stats.of(PictureType::I).stddev, 5.0, 1e-12);
  EXPECT_EQ(stats.of(PictureType::P).count, 0);
  EXPECT_EQ(stats.of(PictureType::B).count, 4);
  EXPECT_NEAR(stats.of(PictureType::B).mean, 27.5, 1e-12);

  EXPECT_NEAR(stats.peak_to_mean, 2.0, 1e-12);
  EXPECT_NEAR(stats.i_to_b_ratio, 95.0 / 27.5, 1e-12);
  EXPECT_NEAR(stats.mean_rate_bps, 300.0 / 0.6, 1e-9);
  EXPECT_NEAR(stats.unsmoothed_peak_bps, 1000.0, 1e-9);
}

TEST(TraceStats, SingletonTrace) {
  const Trace t("one", GopPattern(1, 1), {500});
  const TraceStats stats = compute_stats(t);
  EXPECT_EQ(stats.overall.count, 1);
  EXPECT_DOUBLE_EQ(stats.overall.mean, 500.0);
  EXPECT_DOUBLE_EQ(stats.overall.stddev, 0.0);
  EXPECT_DOUBLE_EQ(stats.peak_to_mean, 1.0);
  // No B pictures: ratio stays at its zero default.
  EXPECT_DOUBLE_EQ(stats.i_to_b_ratio, 0.0);
}

TEST(TraceStats, ToStringMentionsAllRows) {
  const Trace t("t", GopPattern(3, 3), {100, 20, 30});
  const std::string text = to_string(compute_stats(t));
  EXPECT_NE(text.find("all"), std::string::npos);
  EXPECT_NE(text.find("I  "), std::string::npos);
  EXPECT_NE(text.find("peak/mean"), std::string::npos);
}

}  // namespace
}  // namespace lsm::trace
