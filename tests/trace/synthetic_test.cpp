#include "trace/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "trace/stats.h"

namespace lsm::trace {
namespace {

SyntheticConfig two_scene_config() {
  SyntheticConfig config;
  config.name = "two-scene";
  config.width = 320;
  config.height = 240;
  config.scenes = {
      SceneSpec{90, 1.0, 0.8, 0.8},   // busy scene
      SceneSpec{90, 0.7, 0.1, 0.1},   // calm scene
  };
  config.seed = 99;
  return config;
}

TEST(Synthetic, ProcessHasOneEntryPerFrame) {
  const VideoProcess process = expand_process(two_scene_config());
  EXPECT_EQ(process.complexity.size(), 180u);
  EXPECT_EQ(process.motion.size(), 180u);
  EXPECT_EQ(process.scene_of.size(), 180u);
  EXPECT_EQ(process.scene_of.front(), 0);
  EXPECT_EQ(process.scene_of.back(), 1);
}

TEST(Synthetic, MotionRampIsLinear) {
  SyntheticConfig config;
  config.scenes = {SceneSpec{101, 1.0, 0.0, 1.0}};
  const VideoProcess process = expand_process(config);
  EXPECT_DOUBLE_EQ(process.motion.front(), 0.0);
  EXPECT_DOUBLE_EQ(process.motion.back(), 1.0);
  EXPECT_NEAR(process.motion[50], 0.5, 1e-12);
}

TEST(Synthetic, SpikeRaisesMotionLocally) {
  SyntheticConfig config;
  config.scenes = {SceneSpec{100, 1.0, 0.1, 0.1}};
  config.spikes = {MotionSpike{50, 3, 0.9}};
  const VideoProcess process = expand_process(config);
  EXPECT_NEAR(process.motion[48], 0.9, 1e-12);  // frame 49
  EXPECT_NEAR(process.motion[49], 0.9, 1e-12);  // frame 50
  EXPECT_NEAR(process.motion[50], 0.9, 1e-12);  // frame 51
  EXPECT_NEAR(process.motion[46], 0.1, 1e-12);
  EXPECT_NEAR(process.motion[52], 0.1, 1e-12);
}

TEST(Synthetic, SpikeAtEdgeIsClippedNotFatal) {
  SyntheticConfig config;
  config.scenes = {SceneSpec{10, 1.0, 0.1, 0.1}};
  config.spikes = {MotionSpike{1, 5, 0.9}, MotionSpike{10, 5, 0.9}};
  const VideoProcess process = expand_process(config);
  EXPECT_NEAR(process.motion.front(), 0.9, 1e-12);
  EXPECT_NEAR(process.motion.back(), 0.9, 1e-12);
}

TEST(Synthetic, Deterministic) {
  const GopPattern pattern(9, 3);
  const Trace a = synthesize(two_scene_config(), pattern);
  const Trace b = synthesize(two_scene_config(), pattern);
  EXPECT_EQ(a.sizes(), b.sizes());
}

TEST(Synthetic, SeedChangesSizes) {
  const GopPattern pattern(9, 3);
  SyntheticConfig other = two_scene_config();
  other.seed = 100;
  const Trace a = synthesize(two_scene_config(), pattern);
  const Trace b = synthesize(other, pattern);
  EXPECT_NE(a.sizes(), b.sizes());
}

TEST(Synthetic, TypeOrderingIpbHolds) {
  const Trace t = synthesize(two_scene_config(), GopPattern(9, 3));
  const TraceStats stats = compute_stats(t);
  EXPECT_GT(stats.of(PictureType::I).mean, stats.of(PictureType::P).mean);
  EXPECT_GT(stats.of(PictureType::P).mean, stats.of(PictureType::B).mean);
}

TEST(Synthetic, BusySceneProducesLargerPredictedPictures) {
  const Trace t = synthesize(two_scene_config(), GopPattern(9, 3));
  // Compare mean B size in the middle of scene 1 vs scene 2 (avoid the
  // boundary region where reference-crossing inflates sizes).
  double busy = 0.0, calm = 0.0;
  int busy_count = 0, calm_count = 0;
  for (int i = 10; i <= 70; ++i) {
    if (t.type_of(i) == PictureType::B) {
      busy += static_cast<double>(t.size_of(i));
      ++busy_count;
    }
  }
  for (int i = 110; i <= 170; ++i) {
    if (t.type_of(i) == PictureType::B) {
      calm += static_cast<double>(t.size_of(i));
      ++calm_count;
    }
  }
  ASSERT_GT(busy_count, 0);
  ASSERT_GT(calm_count, 0);
  EXPECT_GT(busy / busy_count, 2.0 * calm / calm_count);
}

TEST(Synthetic, SceneChangeInflatesPredictedPicturesAtBoundary) {
  // A P or B picture whose reference lies across the scene boundary should
  // be much larger than its steady-state neighbours of the same type. Scene
  // lengths are chosen so the boundary falls mid-pattern (a 90-frame scene
  // would align the change with an I picture, where nothing crosses).
  SyntheticConfig config = two_scene_config();
  config.scenes[0].frames = 94;
  config.scenes[1].frames = 86;
  const GopPattern pattern(9, 3);
  const Trace t = synthesize(config, pattern);
  // Scene boundary is between frames 94 and 95; pictures 95..97 are B, B, P
  // with references reaching back into scene 1.
  double boundary_max = 0.0;
  for (int i = 95; i <= 97; ++i) {
    if (t.type_of(i) != PictureType::I) {
      boundary_max = std::max(boundary_max,
                              static_cast<double>(t.size_of(i)));
    }
  }
  double steady = 0.0;
  int steady_count = 0;
  for (int i = 110; i <= 170; ++i) {
    if (t.type_of(i) == PictureType::B) {
      steady += static_cast<double>(t.size_of(i));
      ++steady_count;
    }
  }
  ASSERT_GT(steady_count, 0);
  EXPECT_GT(boundary_max, 3.0 * steady / steady_count);
}

TEST(Synthetic, SamePatternPhaseSizesCorrelateAcrossOnePattern) {
  // The S_{j-N} estimator relies on same-phase pictures one pattern apart
  // being similar in steady state: relative error should be small.
  const Trace t = synthesize(two_scene_config(), GopPattern(9, 3));
  double total_rel_err = 0.0;
  int count = 0;
  for (int i = 19; i <= 80; ++i) {  // inside scene 1, past warm-up
    const double a = static_cast<double>(t.size_of(i));
    const double b = static_cast<double>(t.size_of(i - 9));
    total_rel_err += std::abs(a - b) / std::max(a, b);
    ++count;
  }
  EXPECT_LT(total_rel_err / count, 0.35);
}

TEST(Synthetic, RejectsEmptyScript) {
  SyntheticConfig config;
  config.scenes = {};
  EXPECT_THROW(expand_process(config), std::invalid_argument);
  config.scenes = {SceneSpec{0, 1.0, 0.0, 0.0}};
  EXPECT_THROW(expand_process(config), std::invalid_argument);
  config.scenes = {SceneSpec{10, -1.0, 0.0, 0.0}};
  EXPECT_THROW(expand_process(config), std::invalid_argument);
}

}  // namespace
}  // namespace lsm::trace
