#include "trace/trace.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lsm::trace {
namespace {

Trace make_small() {
  return Trace("t", GopPattern(3, 3), {100, 20, 30, 90, 25, 35}, 0.1);
}

TEST(Trace, BasicAccessors) {
  const Trace t = make_small();
  EXPECT_EQ(t.picture_count(), 6);
  EXPECT_EQ(t.size_of(1), 100);
  EXPECT_EQ(t.size_of(6), 35);
  EXPECT_EQ(t.type_of(1), PictureType::I);
  EXPECT_EQ(t.type_of(2), PictureType::B);
  EXPECT_EQ(t.type_of(4), PictureType::I);
  EXPECT_DOUBLE_EQ(t.tau(), 0.1);
}

TEST(Trace, DurationAndRates) {
  const Trace t = make_small();
  EXPECT_DOUBLE_EQ(t.duration(), 0.6);
  EXPECT_EQ(t.total_bits(), 300);
  EXPECT_DOUBLE_EQ(t.mean_rate(), 500.0);
}

TEST(Trace, TypesFollowPatternByDefault) {
  const Trace t("x", GopPattern(9, 3),
                std::vector<Bits>(18, 1000));
  for (int i = 1; i <= 18; ++i) {
    EXPECT_EQ(t.type_of(i), t.pattern().type_of(i));
  }
}

TEST(Trace, ExplicitTypesOverridePattern) {
  const Trace t("x", GopPattern(3, 3), {10, 20, 30},
                {PictureType::I, PictureType::P, PictureType::P});
  EXPECT_EQ(t.type_of(2), PictureType::P);  // pattern would say B
}

TEST(Trace, RejectsBadConstruction) {
  EXPECT_THROW(Trace("x", GopPattern(3, 3), {}), std::invalid_argument);
  EXPECT_THROW(Trace("x", GopPattern(3, 3), {10, 0, 30}),
               std::invalid_argument);
  EXPECT_THROW(Trace("x", GopPattern(3, 3), {10, -5, 30}),
               std::invalid_argument);
  EXPECT_THROW(Trace("x", GopPattern(3, 3), {10, 20, 30}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(Trace("x", GopPattern(3, 3), {10, 20},
                     {PictureType::I, PictureType::B, PictureType::B}),
               std::invalid_argument);
}

TEST(Trace, IndexBoundsChecked) {
  const Trace t = make_small();
  EXPECT_THROW(t.size_of(0), std::out_of_range);
  EXPECT_THROW(t.size_of(7), std::out_of_range);
  EXPECT_THROW(t.type_of(0), std::out_of_range);
  EXPECT_THROW(t.type_of(7), std::out_of_range);
}

TEST(Trace, SliceKeepsSizesAndTypes) {
  const Trace t = make_small();
  const Trace s = t.slice(4, 6);
  EXPECT_EQ(s.picture_count(), 3);
  EXPECT_EQ(s.size_of(1), 90);
  EXPECT_EQ(s.size_of(3), 35);
  EXPECT_EQ(s.type_of(1), PictureType::I);  // original picture 4 was phase 0
  EXPECT_THROW(t.slice(0, 3), std::out_of_range);
  EXPECT_THROW(t.slice(5, 4), std::out_of_range);
  EXPECT_THROW(t.slice(1, 7), std::out_of_range);
}

}  // namespace
}  // namespace lsm::trace
