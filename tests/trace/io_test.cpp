#include "trace/io.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "trace/sequences.h"

namespace lsm::trace {
namespace {

TEST(TraceIo, RoundTripPreservesEverything) {
  const Trace original("Sample", GopPattern(9, 3),
                       {214332, 18997, 20011, 95000, 21000, 19000, 97000,
                        20500, 18800},
                       1.0 / 30.0, 640, 480);
  std::stringstream buffer;
  save_trace(original, buffer);
  const Trace loaded = load_trace(buffer);

  EXPECT_EQ(loaded.name(), original.name());
  EXPECT_TRUE(loaded.pattern() == original.pattern());
  EXPECT_EQ(loaded.sizes(), original.sizes());
  EXPECT_EQ(loaded.types(), original.types());
  EXPECT_NEAR(loaded.tau(), original.tau(), 1e-12);
  EXPECT_EQ(loaded.width(), 640);
  EXPECT_EQ(loaded.height(), 480);
}

TEST(TraceIo, RoundTripPaperSequence) {
  const Trace original = driving1();
  std::stringstream buffer;
  save_trace(original, buffer);
  const Trace loaded = load_trace(buffer);
  EXPECT_EQ(loaded.sizes(), original.sizes());
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  std::stringstream buffer;
  buffer << "# a comment\n\nlsm-trace 1\nname T\n# another\npattern IBB\n"
         << "tau 0.1\nresolution 0 0\npictures 3\n1 I 100\n\n2 B 20\n3 B 30\n";
  const Trace loaded = load_trace(buffer);
  EXPECT_EQ(loaded.picture_count(), 3);
  EXPECT_EQ(loaded.size_of(2), 20);
}

TEST(TraceIo, RejectsWrongVersion) {
  std::stringstream buffer;
  buffer << "lsm-trace 2\nname T\npattern I\ntau 0.1\nresolution 0 0\n"
         << "pictures 1\n1 I 100\n";
  EXPECT_THROW(load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsMissingPictures) {
  std::stringstream buffer;
  buffer << "lsm-trace 1\nname T\npattern I\ntau 0.1\nresolution 0 0\n"
         << "pictures 3\n1 I 100\n2 I 90\n";
  EXPECT_THROW(load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsOutOfOrderIndices) {
  std::stringstream buffer;
  buffer << "lsm-trace 1\nname T\npattern I\ntau 0.1\nresolution 0 0\n"
         << "pictures 2\n2 I 100\n1 I 90\n";
  EXPECT_THROW(load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsBadType) {
  std::stringstream buffer;
  buffer << "lsm-trace 1\nname T\npattern I\ntau 0.1\nresolution 0 0\n"
         << "pictures 1\n1 Q 100\n";
  EXPECT_THROW(load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const Trace original = backyard();
  const std::string path = testing::TempDir() + "/lsm_io_test.trace";
  save_trace_file(original, path);
  const Trace loaded = load_trace_file(path);
  EXPECT_EQ(loaded.sizes(), original.sizes());
  EXPECT_EQ(loaded.name(), original.name());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace_file("/nonexistent/definitely/missing.trace"),
               std::runtime_error);
}

}  // namespace
}  // namespace lsm::trace
