// Golden-file regression pin: the calibrated paper sequences shipped in
// data/ must match what the generator produces today. Any change to the RNG,
// the scene process, or the calibration constants trips this test — which is
// the point: EXPERIMENTS.md's measured numbers are tied to these exact
// traces.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "trace/io.h"
#include "trace/sequences.h"

namespace lsm::trace {
namespace {

std::string data_dir() {
  // Tests run from the build tree; the data directory lives in the source
  // tree. LSM_SOURCE_DIR is injected by the test CMakeLists.
  const char* dir = std::getenv("LSM_SOURCE_DIR");
  return dir != nullptr ? std::string(dir) + "/data" : "../data";
}

class GoldenTrace : public testing::TestWithParam<const char*> {};

TEST_P(GoldenTrace, FileMatchesGenerator) {
  const std::string name = GetParam();
  Trace generated = name == "driving1"   ? driving1()
                    : name == "driving2" ? driving2()
                    : name == "tennis"   ? tennis()
                                         : backyard();
  const Trace loaded = load_trace_file(data_dir() + "/" + name + ".trace");
  EXPECT_EQ(loaded.name(), generated.name());
  EXPECT_TRUE(loaded.pattern() == generated.pattern());
  EXPECT_EQ(loaded.sizes(), generated.sizes());
  EXPECT_EQ(loaded.types(), generated.types());
  EXPECT_EQ(loaded.width(), generated.width());
  EXPECT_EQ(loaded.height(), generated.height());
}

INSTANTIATE_TEST_SUITE_P(PaperSequences, GoldenTrace,
                         testing::Values("driving1", "driving2", "tennis",
                                         "backyard"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace lsm::trace
