// Checks that the calibrated synthetic sequences match the paper's
// Section 5.1 descriptions and the quantitative hints scattered through the
// text (I pictures about an order of magnitude larger than B pictures at
// 640x480; ~200,000-bit I pictures next to ~20,000-bit B pictures; Driving1
// and Driving2 are the same video encoded twice; etc.).
#include "trace/sequences.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "trace/stats.h"

namespace lsm::trace {
namespace {

TEST(Sequences, PatternsMatchPaper) {
  EXPECT_EQ(driving1().pattern().to_string(), "IBBPBBPBB");
  EXPECT_EQ(driving2().pattern().to_string(), "IBPBPB");
  EXPECT_EQ(tennis().pattern().to_string(), "IBBPBBPBB");
  EXPECT_EQ(backyard().pattern().to_string(), "IBBPBBPBBPBB");
}

TEST(Sequences, ResolutionsMatchPaper) {
  for (const Trace& t : {driving1(), driving2(), tennis()}) {
    EXPECT_EQ(t.width(), 640);
    EXPECT_EQ(t.height(), 480);
  }
  EXPECT_EQ(backyard().width(), 352);
  EXPECT_EQ(backyard().height(), 288);
}

TEST(Sequences, ThirtyPicturesPerSecondAndRoughlyTenSeconds) {
  for (const Trace& t : paper_sequences()) {
    EXPECT_DOUBLE_EQ(t.tau(), 1.0 / 30.0);
    EXPECT_GE(t.duration(), 9.0);
    EXPECT_LE(t.duration(), 13.0);
  }
}

TEST(Sequences, IPicturesAnOrderOfMagnitudeAboveB) {
  for (const Trace& t : paper_sequences()) {
    const TraceStats stats = compute_stats(t);
    EXPECT_GT(stats.i_to_b_ratio, 4.0) << t.name();
    EXPECT_LT(stats.i_to_b_ratio, 25.0) << t.name();
    EXPECT_GT(stats.of(PictureType::P).mean, stats.of(PictureType::B).mean)
        << t.name();
  }
}

TEST(Sequences, Driving1SizeScaleMatchesFigure3) {
  const TraceStats stats = compute_stats(driving1());
  // Paper: I pictures around 200,000 bits at 640x480, B pictures down to
  // ~20,000 bits in the close-up scene; no picture above ~300,000 bits.
  EXPECT_GT(stats.of(PictureType::I).mean, 150000.0);
  EXPECT_LT(stats.of(PictureType::I).mean, 280000.0);
  EXPECT_LT(stats.of(PictureType::B).min, 30000.0);
  EXPECT_LT(stats.overall.max, 330000);
}

TEST(Sequences, TennisReachesLargerPicturesThanDriving) {
  // Figure 3: Tennis peaks above 300,000 bits, Driving1 around 250,000.
  const TraceStats tennis_stats = compute_stats(tennis());
  const TraceStats driving_stats = compute_stats(driving1());
  EXPECT_GT(tennis_stats.overall.max, driving_stats.overall.max);
  EXPECT_GT(tennis_stats.overall.max, 280000);
}

TEST(Sequences, BackyardIsSmallerScale) {
  const TraceStats stats = compute_stats(backyard());
  EXPECT_LT(stats.overall.max, 150000);
  EXPECT_LT(stats.mean_rate_bps, 1.5e6);
}

TEST(Sequences, DrivingMeanRateInPaperRange) {
  // Figure 4: the smoothed Driving1 rate varies between about 1 and 3 Mbps,
  // so the long-run mean must sit inside that band.
  const double rate = driving1().mean_rate();
  EXPECT_GT(rate, 1.0e6);
  EXPECT_LT(rate, 3.0e6);
}

TEST(Sequences, Driving1AndDriving2ShareTheUnderlyingVideo) {
  // Same scene script and seed: the per-frame process is identical, only the
  // coding pattern differs.
  const SyntheticConfig config = driving_config();
  const VideoProcess process = expand_process(config);
  const Trace d1 = driving1();
  const Trace d2 = driving2();
  EXPECT_EQ(d1.picture_count(), static_cast<int>(process.motion.size()));
  EXPECT_EQ(d2.picture_count(), d1.picture_count());
  // Both encodings must show the close-up scene (scene 1) as cheaper:
  // compare mean sizes over the same frame window.
  auto window_mean = [](const Trace& t, int lo, int hi) {
    double sum = 0.0;
    for (int i = lo; i <= hi; ++i) sum += static_cast<double>(t.size_of(i));
    return sum / (hi - lo + 1);
  };
  EXPECT_GT(window_mean(d1, 20, 100), window_mean(d1, 120, 190));
  EXPECT_GT(window_mean(d2, 20, 100), window_mean(d2, 120, 190));
}

TEST(Sequences, TennisMotionRampRaisesPredictedSizesGradually) {
  const Trace t = tennis();
  auto mean_b = [&t](int lo, int hi) {
    double sum = 0.0;
    int count = 0;
    for (int i = lo; i <= hi; ++i) {
      if (t.type_of(i) == PictureType::B) {
        sum += static_cast<double>(t.size_of(i));
        ++count;
      }
    }
    return sum / count;
  };
  const double early = mean_b(10, 80);
  const double late = mean_b(220, 290);
  EXPECT_GT(late, 1.8 * early);
}

TEST(Sequences, TennisHasTwoIsolatedLargePSpikesInFirstHalf) {
  const Trace t = tennis();
  // Find P pictures in the first half that are at least twice the median P.
  std::vector<double> p_sizes;
  for (int i = 1; i <= 150; ++i) {
    if (t.type_of(i) == PictureType::P) {
      p_sizes.push_back(static_cast<double>(t.size_of(i)));
    }
  }
  std::vector<double> sorted = p_sizes;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  int spikes = 0;
  for (const double s : p_sizes) {
    if (s > 1.8 * median) ++spikes;
  }
  EXPECT_GE(spikes, 1);
  EXPECT_LE(spikes, 4);
}

TEST(Sequences, DeterministicAcrossCalls) {
  EXPECT_EQ(driving1().sizes(), driving1().sizes());
  EXPECT_EQ(backyard().sizes(), backyard().sizes());
}

}  // namespace
}  // namespace lsm::trace
