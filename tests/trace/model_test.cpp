#include "trace/model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "trace/sequences.h"
#include "trace/stats.h"

namespace lsm::trace {
namespace {

TEST(TraceModel, FitRequiresEnoughData) {
  const Trace tiny("t", GopPattern(9, 3), std::vector<Bits>(18, 1000));
  EXPECT_THROW(TraceModel::fit(tiny), std::invalid_argument);
  const Trace enough("t", GopPattern(9, 3), std::vector<Bits>(27, 1000));
  EXPECT_NO_THROW(TraceModel::fit(enough));
}

TEST(TraceModel, FitRecoversPerPhaseScale) {
  const Trace t = driving1();
  const TraceModel model = TraceModel::fit(t);
  ASSERT_EQ(model.by_phase().size(), 9u);
  // Phase 0 is the I phase: its log-mean must dominate the B phases.
  const double i_mean = model.by_phase()[0].log_mean;
  for (const std::size_t b_phase : {1u, 2u, 4u, 5u, 7u, 8u}) {
    EXPECT_GT(i_mean, model.by_phase()[b_phase].log_mean + 0.5);
  }
}

TEST(TraceModel, SamePhaseAutocorrelationIsPositive) {
  // Scene structure makes neighbouring same-phase pictures similar — the
  // property the S_{j-N} estimator relies on; the fit must capture it.
  const TraceModel model = TraceModel::fit(driving1());
  int positive = 0;
  for (const PhaseStats& stats : model.by_phase()) {
    if (stats.ar1 > 0.3) ++positive;
  }
  EXPECT_GE(positive, 6);
}

TEST(TraceModel, GeneratedTraceMatchesSourceStatistics) {
  const Trace source = tennis();
  const TraceModel model = TraceModel::fit(source);
  const Trace generated = model.generate(1800, 7);  // 60 seconds

  const TraceStats source_stats = compute_stats(source);
  const TraceStats generated_stats = compute_stats(generated);
  for (const PictureType type :
       {PictureType::I, PictureType::P, PictureType::B}) {
    const double ratio = generated_stats.of(type).mean /
                         source_stats.of(type).mean;
    EXPECT_GT(ratio, 0.75) << to_char(type);
    EXPECT_LT(ratio, 1.35) << to_char(type);
  }
  EXPECT_GT(generated_stats.i_to_b_ratio, 0.6 * source_stats.i_to_b_ratio);
}

TEST(TraceModel, GeneratedTraceKeepsPatternStructure) {
  const TraceModel model = TraceModel::fit(backyard());
  const Trace generated = model.generate(240, 3);
  EXPECT_EQ(generated.pattern().to_string(), "IBBPBBPBBPBB");
  for (int i = 1; i <= generated.picture_count(); ++i) {
    EXPECT_EQ(generated.type_of(i), generated.pattern().type_of(i));
  }
}

TEST(TraceModel, DeterministicPerSeed) {
  const TraceModel model = TraceModel::fit(driving2());
  EXPECT_EQ(model.generate(100, 5).sizes(), model.generate(100, 5).sizes());
  EXPECT_NE(model.generate(100, 5).sizes(), model.generate(100, 6).sizes());
}

TEST(TraceModel, RefitOnGeneratedDataAgrees) {
  // Generating a long trace and refitting must approximately recover the
  // model parameters (a consistency check of the generator).
  const TraceModel model = TraceModel::fit(driving1());
  const Trace generated = model.generate(9000, 11);  // 5 minutes
  const TraceModel refit = TraceModel::fit(generated);
  for (std::size_t phase = 0; phase < model.by_phase().size(); ++phase) {
    EXPECT_NEAR(refit.by_phase()[phase].log_mean,
                model.by_phase()[phase].log_mean, 0.15)
        << "phase " << phase;
    EXPECT_NEAR(refit.by_phase()[phase].log_sd,
                model.by_phase()[phase].log_sd, 0.35)
        << "phase " << phase;
  }
}

TEST(TraceModel, GenerateRejectsBadCount) {
  const TraceModel model = TraceModel::fit(backyard());
  EXPECT_THROW(model.generate(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace lsm::trace
