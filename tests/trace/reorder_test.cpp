#include "trace/reorder.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace lsm::trace {
namespace {

std::vector<PictureType> types_of(const std::string& s) {
  std::vector<PictureType> out;
  for (const char c : s) {
    out.push_back(c == 'I'   ? PictureType::I
                  : c == 'P' ? PictureType::P
                             : PictureType::B);
  }
  return out;
}

std::string apply(const std::string& display) {
  const auto types = types_of(display);
  const auto order = display_to_coded_permutation(types);
  std::string out;
  for (const int f : order) {
    out.push_back(to_char(types[static_cast<std::size_t>(f)]));
  }
  return out;
}

TEST(Reorder, PaperSectionTwoExample) {
  // Paper: display IBBPBBPBBIBBP... transmits as IPBBPBBIBBPBB...
  EXPECT_EQ(apply("IBBPBBPBBIBBPBB"), "IPBBPBBIBBPBBBB");
  // Check the leading portion the paper prints explicitly.
  EXPECT_EQ(apply("IBBPBBPBBIBB").substr(0, 8), "IPBBPBBI");
}

TEST(Reorder, AllIntraIsIdentity) {
  const auto types = types_of("IIIII");
  const auto order = display_to_coded_permutation(types);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(order[static_cast<std::size_t>(k)], k);
  }
}

TEST(Reorder, IpppIsIdentity) {
  const auto order = display_to_coded_permutation(types_of("IPPPP"));
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(order[static_cast<std::size_t>(k)], k);
  }
}

TEST(Reorder, PermutationIsBijective) {
  const auto types = types_of("IBBPBBPBBIBBPBBPBB");
  auto order = display_to_coded_permutation(types);
  std::sort(order.begin(), order.end());
  for (int k = 0; k < static_cast<int>(order.size()); ++k) {
    EXPECT_EQ(order[static_cast<std::size_t>(k)], k);
  }
}

TEST(Reorder, InverseIsConsistent) {
  const auto types = types_of("IBBPBBPBB");
  const auto order = display_to_coded_permutation(types);
  const auto inverse = coded_position_of_display(types);
  for (int k = 0; k < static_cast<int>(order.size()); ++k) {
    EXPECT_EQ(inverse[static_cast<std::size_t>(
                  order[static_cast<std::size_t>(k)])],
              k);
  }
}

TEST(Reorder, TrailingBsWithoutAnchorAreAppended) {
  EXPECT_EQ(apply("IBB"), "IBB");
  EXPECT_EQ(apply("IBBPBB"), "IPBBBB");
}

TEST(Reorder, TraceReorderKeepsMultisetOfSizes) {
  const Trace display("t", GopPattern(9, 3),
                      {100, 20, 21, 60, 22, 23, 61, 24, 25});
  const Trace coded = to_coded_order(display);
  std::vector<Bits> a = display.sizes();
  std::vector<Bits> b = coded.sizes();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  // First two coded pictures: the I, then the P that displays fourth.
  EXPECT_EQ(coded.size_of(1), 100);
  EXPECT_EQ(coded.size_of(2), 60);
  EXPECT_EQ(coded.type_of(2), PictureType::P);
}

}  // namespace
}  // namespace lsm::trace
