// Whole-system integration: every module in one flow.
//
//   synthetic video -> MPEG encoder -> coded bit stream -> structure parser
//   -> picture-size trace -> streaming smoother (live) -> paced transport
//   -> finite-buffer multiplexer / admission control -> receiver playback
//
// plus the decode path (resilient) on the same bits. If this test passes,
// the library's pieces genuinely compose.
#include <gtest/gtest.h>

#include <cmath>

#include "core/buffer.h"
#include "core/metrics.h"
#include "core/streaming.h"
#include "core/theorem.h"
#include "mpeg/decoder.h"
#include "mpeg/encoder.h"
#include "mpeg/parser.h"
#include "mpeg/videogen.h"
#include "net/admission.h"
#include "net/mux.h"
#include "mpeg/systems.h"
#include "net/packetize.h"
#include "net/transport.h"
#include "trace/sequences.h"

namespace lsm {
namespace {

TEST(EndToEnd, CameraToNetworkAndBack) {
  // 1. Camera: 3 seconds of two-scene video.
  mpeg::VideoConfig video_config;
  video_config.width = 160;
  video_config.height = 96;
  video_config.scenes = {mpeg::VideoScene{45, 1.1, 0.5},
                         mpeg::VideoScene{45, 0.9, 0.2}};
  video_config.seed = 404;
  const std::vector<mpeg::Frame> video = mpeg::generate_video(video_config);

  // 2. Encoder (half-pel, paper quantizers).
  mpeg::EncoderConfig encoder_config;
  encoder_config.pattern = trace::GopPattern(9, 3);
  const mpeg::EncodeResult encoded =
      mpeg::Encoder(encoder_config).encode(video);

  // 3. The transport sees only the bits: recover the trace by start-code
  //    walking and check it against the encoder's bookkeeping.
  const mpeg::ParseResult parsed = mpeg::parse_stream(encoded.stream);
  const trace::Trace t = parsed.display_trace("e2e");
  ASSERT_EQ(t.picture_count(), static_cast<int>(video.size()));

  // 4. Live smoothing with the streaming engine, pictures pushed as the
  //    encoder finishes them.
  core::SmootherParams params;
  params.tau = t.tau();
  params.D = 0.2;
  params.K = 1;
  params.H = 9;
  core::StreamingSmoother streaming(t.pattern(), params);
  std::vector<core::PictureSend> sends;
  for (int i = 1; i <= t.picture_count(); ++i) {
    streaming.push(t.size_of(i));
    for (const core::PictureSend& send : streaming.drain()) {
      sends.push_back(send);
    }
  }
  streaming.finish();
  for (const core::PictureSend& send : streaming.drain()) {
    sends.push_back(send);
  }
  ASSERT_EQ(sends.size(), static_cast<std::size_t>(t.picture_count()));

  core::SmoothingResult result;
  result.sends = sends;
  result.params = params;
  const core::TheoremReport report = core::check_theorem1(result, t);
  EXPECT_TRUE(report.all_ok());

  // 5. The smoothed stream fits a channel at its own peak with near-zero
  //    burst tolerance; the raw stream does not.
  const core::RateSchedule schedule = result.schedule();
  const net::StreamDescriptor descriptor =
      net::describe_stream(schedule, schedule.max_rate() * 1.001);
  EXPECT_LT(descriptor.sigma, 1e-3);

  // 6. Cell multiplexer: smoothed cells through a link with 20% headroom
  //    and a modest buffer lose nothing.
  const std::vector<std::vector<net::Cell>> sources = {
      net::packetize(result)};
  const net::MuxConfig mux_config{t.mean_rate() * 1.2, 100};
  const net::MuxResult mux_result =
      net::simulate_cell_mux(sources, mux_config);
  EXPECT_EQ(mux_result.dropped, 0);

  // 7. Receiver: playout at D + latency never underflows, and the playout
  //    buffer requirement is finite and sane.
  const core::BufferAnalysis buffers =
      core::analyze_buffers(t, result, 0.01, params.D + 0.01);
  EXPECT_EQ(buffers.underflows, 0);
  EXPECT_GT(buffers.max_receiver_bits, 0.0);
  EXPECT_LT(buffers.max_receiver_bits, 1e7);

  // 8. And the bits themselves still decode (resiliently) into frames.
  const mpeg::ResilientDecodeResult decoded =
      mpeg::decode_stream_resilient(encoded.stream);
  EXPECT_TRUE(decoded.clean());
  EXPECT_EQ(decoded.result.pictures.size(), video.size());
}

TEST(EndToEnd, SystemsTimestampsDrivePlayoutCorrectly) {
  // Storage path: encode, pack into a systems stream, demux, and use the
  // recovered PTS values to schedule playout against the smoothed delivery
  // times — the receiver-side contract end to end.
  mpeg::VideoConfig video_config;
  video_config.width = 96;
  video_config.height = 64;
  video_config.scenes = {mpeg::VideoScene{27, 1.0, 0.4}};
  video_config.seed = 71;
  mpeg::EncoderConfig encoder_config;
  encoder_config.pattern = trace::GopPattern(9, 3);
  const mpeg::EncodeResult encoded =
      mpeg::Encoder(encoder_config).encode(mpeg::generate_video(video_config));

  mpeg::SystemsConfig systems_config;
  systems_config.pes_payload_bytes = 256;
  const mpeg::DemuxResult demuxed =
      mpeg::demux_systems(mpeg::mux_systems(encoded, systems_config).bytes);
  ASSERT_EQ(demuxed.elementary, encoded.stream);

  // Smooth the trace and check each stamped picture's delivery precedes its
  // PTS-derived playout instant (with the standard offset D + latency).
  const trace::Trace t =
      mpeg::parse_stream(demuxed.elementary).display_trace("sys");
  core::SmootherParams params;
  params.tau = t.tau();
  params.D = 0.2;
  params.H = 9;
  const core::SmoothingResult result = core::smooth_basic(t, params);
  const double latency = 0.01;
  const double offset = params.D + latency;

  // Each PTS is the stamped picture's display instant, so it identifies the
  // display index directly.
  int matched = 0;
  for (const mpeg::PtsEntry& entry : demuxed.pts) {
    const int display_index = static_cast<int>(
        std::lround(entry.seconds / t.tau()));
    ASSERT_GE(display_index, 0);
    ASSERT_LT(display_index, t.picture_count());
    const core::PictureSend& send =
        result.sends[static_cast<std::size_t>(display_index)];
    EXPECT_EQ(send.index, display_index + 1);
    // Delivered (plus latency) no later than playout at offset + PTS.
    EXPECT_LE(send.depart + latency, offset + entry.seconds + 1e-9)
        << "display " << display_index;
    ++matched;
  }
  EXPECT_GT(matched, t.picture_count() / 2);
}

TEST(EndToEnd, PipelineAgreesWithStreamingSmoother) {
  // The event-driven pipeline (engine inside simulated time) and the
  // push/drain streaming smoother must produce the same schedule for the
  // same trace and parameters.
  const trace::Trace t = trace::tennis();
  core::SmootherParams params;
  params.tau = t.tau();
  params.D = 0.2;
  params.H = 9;

  net::PipelineConfig config;
  config.params = params;
  config.network_latency = 0.0;
  const net::PipelineReport report = net::run_live_pipeline(t, config);

  core::StreamingSmoother streaming(t.pattern(), params);
  std::vector<core::PictureSend> sends;
  for (int i = 1; i <= t.picture_count(); ++i) {
    streaming.push(t.size_of(i));
    for (const core::PictureSend& send : streaming.drain()) {
      sends.push_back(send);
    }
  }
  streaming.finish();
  for (const core::PictureSend& send : streaming.drain()) {
    sends.push_back(send);
  }

  ASSERT_EQ(report.deliveries.size(), sends.size());
  // Away from the tail (where the pipeline's engine knows the sequence end
  // but the streaming smoother pre-finish does not), schedules agree.
  for (std::size_t k = 0; k + params.H < sends.size(); ++k) {
    ASSERT_NEAR(report.deliveries[k].sender_done, sends[k].depart, 1e-9)
        << "picture " << k + 1;
  }
}

}  // namespace
}  // namespace lsm
