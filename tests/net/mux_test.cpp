#include "net/mux.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/smoother.h"
#include "trace/sequences.h"

namespace lsm::net {
namespace {

using lsm::trace::Trace;

std::vector<Cell> regular_cells(int count, double spacing, int source = 0) {
  std::vector<Cell> cells;
  for (int k = 0; k < count; ++k) {
    cells.push_back(Cell{k * spacing, source, 1});
  }
  return cells;
}

TEST(CellMux, NoLossWhenServiceKeepsUp) {
  // One cell per 10 ms; service time per cell = 384 / 100000 = 3.84 ms.
  const MuxConfig config{100000.0, 4};
  const MuxResult result =
      simulate_cell_mux({regular_cells(1000, 0.010)}, config);
  EXPECT_EQ(result.arrived, 1000);
  EXPECT_EQ(result.dropped, 0);
}

TEST(CellMux, BurstOverflowsSmallBuffer) {
  // 100 cells at the same instant into a 10-cell buffer: 90 drops.
  const MuxConfig config{1e6, 10};
  std::vector<Cell> burst;
  for (int k = 0; k < 100; ++k) burst.push_back(Cell{1.0, 0, 1});
  const MuxResult result = simulate_cell_mux({burst}, config);
  EXPECT_EQ(result.arrived, 100);
  EXPECT_EQ(result.dropped, 90);
  EXPECT_NEAR(result.loss_ratio, 0.9, 1e-12);
}

TEST(CellMux, LossDecreasesWithBuffer) {
  const Trace t = lsm::trace::driving1();
  const std::vector<std::vector<Cell>> sources = {packetize_unsmoothed(t)};
  const double capacity = t.mean_rate() * 1.2;
  double previous = 1.0;
  for (const int buffer : {5, 50, 500, 5000}) {
    const MuxResult result =
        simulate_cell_mux(sources, MuxConfig{capacity, buffer});
    EXPECT_LE(result.loss_ratio, previous + 1e-12) << "buffer " << buffer;
    previous = result.loss_ratio;
  }
}

TEST(CellMux, SmoothingReducesLossAtEqualCapacity) {
  // The paper's motivating claim: at the same utilization and buffer, the
  // smoothed stream loses (far) fewer cells than the raw VBR stream.
  const Trace t = lsm::trace::driving1();
  core::SmootherParams params;
  params.tau = t.tau();
  params.D = 0.2;
  params.H = 9;
  const std::vector<std::vector<Cell>> raw = {packetize_unsmoothed(t)};
  const std::vector<std::vector<Cell>> smooth = {
      packetize(core::smooth_basic(t, params))};
  const MuxConfig config{t.mean_rate() * 1.3, 60};
  const MuxResult raw_result = simulate_cell_mux(raw, config);
  const MuxResult smooth_result = simulate_cell_mux(smooth, config);
  EXPECT_GT(raw_result.loss_ratio, 0.0);
  EXPECT_LT(smooth_result.loss_ratio, 0.25 * raw_result.loss_ratio);
}

TEST(CellMux, PerSourceAccountingSumsToTotals) {
  const Trace t = lsm::trace::backyard();
  const std::vector<std::vector<Cell>> sources = {
      packetize_unsmoothed(t, 0), packetize_unsmoothed(t, 1)};
  const MuxResult result =
      simulate_cell_mux(sources, MuxConfig{t.mean_rate() * 1.5, 20});
  EXPECT_EQ(result.arrived_by_source[0] + result.arrived_by_source[1],
            result.arrived);
  EXPECT_EQ(result.dropped_by_source[0] + result.dropped_by_source[1],
            result.dropped);
}

TEST(CellMux, RejectsBadConfig) {
  EXPECT_THROW(simulate_cell_mux({}, MuxConfig{0.0, 10}),
               std::invalid_argument);
  EXPECT_THROW(simulate_cell_mux({}, MuxConfig{1e6, 0}),
               std::invalid_argument);
}

TEST(FluidMux, ConservesBitsWithoutOverflow) {
  const Trace t = lsm::trace::backyard();
  core::SmootherParams params;
  params.tau = t.tau();
  params.H = 12;
  const core::RateSchedule schedule = core::smooth_basic(t, params).schedule();
  FluidMuxConfig config;
  config.service_rate_bps = schedule.max_rate() * 1.1;
  config.buffer_bits = 1e9;
  const FluidMuxResult result = simulate_fluid_mux({schedule}, config);
  EXPECT_NEAR(result.offered_bits, static_cast<double>(t.total_bits()),
              0.01 * static_cast<double>(t.total_bits()));
  EXPECT_DOUBLE_EQ(result.lost_bits, 0.0);
}

TEST(FluidMux, ZeroBufferLosesEverythingAboveCapacity) {
  const core::RateSchedule schedule(
      {core::RateSegment{0.0, 1.0, 200.0}});
  FluidMuxConfig config;
  config.service_rate_bps = 150.0;
  config.buffer_bits = 0.0;
  config.step = 1e-4;
  const FluidMuxResult result = simulate_fluid_mux({schedule}, config);
  EXPECT_NEAR(result.lost_bits, 50.0, 1.0);
}

TEST(FluidMux, AggregatesMultipleSources) {
  const core::RateSchedule a({core::RateSegment{0.0, 1.0, 100.0}});
  const core::RateSchedule b({core::RateSegment{0.0, 1.0, 100.0}});
  FluidMuxConfig config;
  config.service_rate_bps = 150.0;
  config.buffer_bits = 10.0;
  config.step = 1e-4;
  const FluidMuxResult result = simulate_fluid_mux({a, b}, config);
  EXPECT_NEAR(result.offered_bits, 200.0, 0.5);
  EXPECT_NEAR(result.lost_bits, 40.0, 1.0);  // 50 overflow - 10 buffered
}

TEST(FluidMux, SmoothedAggregateNeedsLessCapacityForZeroLoss) {
  // Statistical-multiplexing gain over the four (distinct) paper sequences:
  // at equal capacity and a small ATM-scale buffer, the smoothed aggregate
  // loses far less than the raw per-picture-peak aggregate. (Four copies of
  // the SAME movie would not show this — their scene-level rates are
  // perfectly correlated, and no amount of picture-scale smoothing or
  // buffering removes a sustained aggregate overload.)
  std::vector<core::RateSchedule> raw, smooth;
  double total_mean = 0.0;
  int source = 0;
  for (const Trace& t : lsm::trace::paper_sequences()) {
    const double offset = 0.07 * source++;
    core::SmootherParams params;
    params.tau = t.tau();
    params.D = 0.2;
    params.H = t.pattern().N();
    std::vector<core::RateSegment> segments;
    for (int i = 1; i <= t.picture_count(); ++i) {
      const double begin = (i - 1) * t.tau() + offset;
      segments.push_back(core::RateSegment{
          begin, begin + t.tau(),
          static_cast<double>(t.size_of(i)) / t.tau()});
    }
    raw.push_back(core::RateSchedule(std::move(segments)));
    smooth.push_back(
        core::smooth_basic(t, params).schedule().shifted_left(-offset));
    total_mean += t.mean_rate();
  }
  FluidMuxConfig config;
  config.service_rate_bps = total_mean * 1.35;
  config.buffer_bits = 200.0 * 384;  // 200 cells
  const FluidMuxResult raw_result = simulate_fluid_mux(raw, config);
  const FluidMuxResult smooth_result = simulate_fluid_mux(smooth, config);
  EXPECT_GT(raw_result.loss_ratio, 0.0);
  EXPECT_LT(smooth_result.loss_ratio, 0.5 * raw_result.loss_ratio);
}

}  // namespace
}  // namespace lsm::net
