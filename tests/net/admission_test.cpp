#include "net/admission.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/smoother.h"
#include "net/mux.h"
#include "trace/sequences.h"

namespace lsm::net {
namespace {

using lsm::trace::Trace;

core::RateSchedule smoothed_schedule(const Trace& trace) {
  core::SmootherParams params;
  params.tau = trace.tau();
  params.D = 0.2;
  params.H = trace.pattern().N();
  return core::smooth_basic(trace, params).schedule();
}

core::RateSchedule raw_schedule(const Trace& trace, double offset = 0.0) {
  std::vector<core::RateSegment> segments;
  for (int i = 1; i <= trace.picture_count(); ++i) {
    segments.push_back(core::RateSegment{
        offset + (i - 1) * trace.tau(), offset + i * trace.tau(),
        static_cast<double>(trace.size_of(i)) / trace.tau()});
  }
  return core::RateSchedule(std::move(segments));
}

TEST(Admission, EnforcesRateAndBufferBudgets) {
  AdmissionController controller(10e6, 1e6);
  EXPECT_TRUE(controller.try_admit(StreamDescriptor{4e5, 4e6}));
  EXPECT_TRUE(controller.try_admit(StreamDescriptor{4e5, 4e6}));
  // Third stream breaks the rate budget.
  EXPECT_FALSE(controller.try_admit(StreamDescriptor{1e5, 4e6}));
  // A slim stream fits the remaining 2 Mbps but must also fit the buffer.
  EXPECT_FALSE(controller.try_admit(StreamDescriptor{3e5, 1e6}));
  EXPECT_TRUE(controller.try_admit(StreamDescriptor{1e5, 1e6}));
  EXPECT_EQ(controller.admitted_count(), 3);
}

TEST(Admission, DescriptorMeasurementMatchesTokenBucket) {
  const Trace t = lsm::trace::backyard();
  const core::RateSchedule schedule = smoothed_schedule(t);
  const double rho = t.mean_rate() * 1.3;
  const StreamDescriptor descriptor = describe_stream(schedule, rho);
  EXPECT_DOUBLE_EQ(descriptor.rho, rho);
  EXPECT_DOUBLE_EQ(descriptor.sigma, min_bucket_depth(schedule, rho));
}

TEST(Admission, AdmittedSetNeverLosesInTheFluidMux) {
  // The deterministic guarantee, checked by simulation: admit streams
  // (phase-shifted copies of the paper sequences) until rejection, then run
  // the admitted set through a fluid mux at exactly (C, B) — loss must be
  // zero.
  const double capacity = 12e6;
  const double buffer = 2e6;
  AdmissionController controller(capacity, buffer);
  std::vector<core::RateSchedule> admitted;
  const std::vector<Trace> catalog = lsm::trace::paper_sequences();
  for (int s = 0; s < 16; ++s) {
    const Trace& t = catalog[static_cast<std::size_t>(s) % catalog.size()];
    const double rho = t.mean_rate() * 1.45;
    core::RateSchedule schedule =
        smoothed_schedule(t).shifted_left(-0.083 * s);
    const StreamDescriptor descriptor = describe_stream(schedule, rho);
    if (controller.try_admit(descriptor)) {
      admitted.push_back(std::move(schedule));
    }
  }
  ASSERT_GE(admitted.size(), 2u);
  ASSERT_LT(admitted.size(), 16u);  // the link did fill up

  FluidMuxConfig config;
  config.service_rate_bps = capacity;
  config.buffer_bits = buffer;
  const FluidMuxResult result = simulate_fluid_mux(admitted, config);
  // Zero up to the fluid integrator's discretization error.
  EXPECT_LT(result.loss_ratio, 1e-6);
}

TEST(Admission, SmoothingAdmitsMoreStreams) {
  // The admission-control statement of the multiplexing-gain claim. The
  // buffer is sized so raw VBR streams exhaust it (sigma ~ 100-220 kbit
  // each at rho = 1.45x mean) while smoothed streams (sigma ~ 0) are
  // limited only by link rate.
  const double capacity = 12e6;
  const double buffer = 3e5;
  const std::vector<Trace> catalog = lsm::trace::paper_sequences();

  auto admit_count = [&](bool smoothed) {
    AdmissionController controller(capacity, buffer);
    for (int s = 0; s < 24; ++s) {
      const Trace& t = catalog[static_cast<std::size_t>(s) % catalog.size()];
      const double rho = t.mean_rate() * 1.45;
      const core::RateSchedule schedule =
          smoothed ? smoothed_schedule(t) : raw_schedule(t);
      controller.try_admit(describe_stream(schedule, rho));
    }
    return controller.admitted_count();
  };
  const int raw = admit_count(false);
  const int smooth = admit_count(true);
  EXPECT_GT(smooth, raw);
}

TEST(Policing, ConformingStreamPassesUntouched) {
  const Trace t = lsm::trace::backyard();
  const core::SmoothingResult result = [&t] {
    core::SmootherParams params;
    params.tau = t.tau();
    params.D = 0.2;
    params.H = t.pattern().N();
    return core::smooth_basic(t, params);
  }();
  const double rho = t.mean_rate() * 1.3;
  const std::vector<Cell> cells = packetize(result);
  const StreamDescriptor descriptor = describe_cells(cells, rho);
  const PolicedCells policed = police_cells(cells, descriptor);
  EXPECT_EQ(policed.dropped, 0);
  // Padding makes the cell descriptor strictly larger than the fluid one.
  EXPECT_GE(descriptor.sigma,
            describe_stream(result.schedule(), rho).sigma);
}

TEST(Policing, UndersizedDescriptorDropsCells) {
  // Police the RAW stream with the smoothed stream's (near-zero) sigma: the
  // I-picture bursts are nonconforming and get cut at the edge.
  const Trace t = lsm::trace::driving1();
  const double rho = t.mean_rate() * 1.3;
  const PolicedCells policed = police_cells(
      packetize_unsmoothed(t), StreamDescriptor{1000.0, rho});
  EXPECT_GT(policed.dropped, 0);
  // Conforming output is still time-ordered.
  for (std::size_t k = 1; k < policed.conforming.size(); ++k) {
    ASSERT_GE(policed.conforming[k].time,
              policed.conforming[k - 1].time - 1e-12);
  }
}

TEST(Policing, DropsFallAsSigmaGrows) {
  const Trace t = lsm::trace::driving1();
  const double rho = t.mean_rate() * 1.2;
  const std::vector<Cell> cells = packetize_unsmoothed(t);
  std::int64_t previous = 1LL << 60;
  for (const double sigma : {1e3, 1e4, 1e5, 1e6}) {
    const std::int64_t dropped =
        police_cells(cells, StreamDescriptor{sigma, rho}).dropped;
    EXPECT_LE(dropped, previous) << "sigma " << sigma;
    previous = dropped;
  }
}

TEST(Admission, RejectsBadInputs) {
  EXPECT_THROW(AdmissionController(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(AdmissionController(1.0, -1.0), std::invalid_argument);
  AdmissionController controller(1e6, 1e5);
  EXPECT_THROW(controller.try_admit(StreamDescriptor{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(controller.try_admit(StreamDescriptor{-1.0, 1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lsm::net
