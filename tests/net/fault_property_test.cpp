// Property suite for the fault-injection pipeline: invariants that must
// survive arbitrary (seeded) fault plans across a grid of smoother
// parameters — delivery monotonicity, counter/plan consistency, seed
// determinism, and the tolerance-envelope no-underflow guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/transport.h"
#include "trace/sequences.h"

namespace lsm::net {
namespace {

using lsm::trace::Trace;

struct GridPoint {
  int K;
  int H;
  double D;
  std::uint64_t seed;
  double intensity;
};

std::vector<GridPoint> grid() {
  std::vector<GridPoint> points;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const int K : {1, 2}) {
      for (const double D : {0.2, 0.35}) {
        for (const double intensity : {0.5, 2.0}) {
          points.push_back(GridPoint{K, 9, D, seed, intensity});
        }
      }
    }
  }
  return points;
}

FaultedPipelineConfig config_for(const Trace& trace, const GridPoint& p) {
  FaultedPipelineConfig config;
  config.base.params.tau = trace.tau();
  config.base.params.D = p.D;
  config.base.params.K = p.K;
  config.base.params.H = p.H;
  config.base.network_latency = 0.010;
  config.base.jitter = 0.01;
  return config;
}

sim::FaultPlan plan_for(const Trace& trace, const GridPoint& p) {
  sim::FaultSpec spec;
  spec.horizon = trace.duration();
  spec.intensity = p.intensity;
  spec.seed = p.seed;
  return sim::FaultPlan::generate(spec);
}

TEST(FaultProperty, DeliveriesStayMonotoneUnderFaults) {
  const Trace t = lsm::trace::driving1();
  for (const GridPoint& p : grid()) {
    const FaultedPipelineReport out =
        run_faulted_pipeline(t, config_for(t, p), plan_for(t, p));
    ASSERT_EQ(out.report.deliveries.size(),
              static_cast<std::size_t>(t.picture_count()));
    for (std::size_t k = 0; k < out.report.deliveries.size(); ++k) {
      const PictureDelivery& d = out.report.deliveries[k];
      EXPECT_EQ(d.index, static_cast<int>(k) + 1);
      // The channel is serial: starts and departures never go backwards,
      // and reception is causal.
      EXPECT_LE(d.sender_start, d.sender_done);
      EXPECT_GE(d.received, d.sender_done);
      if (k > 0) {
        const PictureDelivery& prev = out.report.deliveries[k - 1];
        EXPECT_GE(d.sender_start, prev.sender_done - 1e-12);
        EXPECT_GE(d.deadline, prev.deadline);
      }
    }
  }
}

TEST(FaultProperty, IdenticalSeedsProduceBitwiseIdenticalReports) {
  const Trace t = lsm::trace::backyard();
  for (const GridPoint& p : grid()) {
    const FaultedPipelineConfig config = config_for(t, p);
    const sim::FaultPlan plan = plan_for(t, p);
    const FaultedPipelineReport a = run_faulted_pipeline(t, config, plan);
    const FaultedPipelineReport b = run_faulted_pipeline(t, config, plan);
    ASSERT_EQ(a.report.deliveries.size(), b.report.deliveries.size());
    for (std::size_t k = 0; k < a.report.deliveries.size(); ++k) {
      ASSERT_EQ(a.report.deliveries[k].sender_start,
                b.report.deliveries[k].sender_start);
      ASSERT_EQ(a.report.deliveries[k].sender_done,
                b.report.deliveries[k].sender_done);
      ASSERT_EQ(a.report.deliveries[k].received,
                b.report.deliveries[k].received);
    }
    EXPECT_EQ(a.report.underflows, b.report.underflows);
    EXPECT_EQ(a.report.worst_delay_excess, b.report.worst_delay_excess);
    EXPECT_EQ(a.degradation.denials, b.degradation.denials);
    EXPECT_EQ(a.degradation.retries, b.degradation.retries);
    EXPECT_EQ(a.degradation.recovery_latency.count(),
              b.degradation.recovery_latency.count());
    EXPECT_EQ(a.degradation.to_json(), b.degradation.to_json());
  }
}

TEST(FaultProperty, InjectedCountersMatchThePlan) {
  const Trace t = lsm::trace::driving2();
  for (const GridPoint& p : grid()) {
    const sim::FaultPlan plan = plan_for(t, p);
    const FaultedPipelineReport out =
        run_faulted_pipeline(t, config_for(t, p), plan);
    EXPECT_EQ(out.degradation.fades_injected,
              static_cast<std::uint64_t>(
                  plan.count(sim::FaultClass::kChannelFade)));
    EXPECT_EQ(out.degradation.losses_injected,
              static_cast<std::uint64_t>(
                  plan.count(sim::FaultClass::kBurstLoss)));
    EXPECT_EQ(out.degradation.stalls_injected,
              static_cast<std::uint64_t>(
                  plan.count(sim::FaultClass::kEncoderStall)));
    EXPECT_EQ(out.degradation.denial_windows_injected,
              static_cast<std::uint64_t>(
                  plan.count(sim::FaultClass::kRenegotiationDenial)));
  }
}

TEST(FaultProperty, ObservedEffectCountersAreConsistent) {
  const Trace t = lsm::trace::tennis();
  for (const GridPoint& p : grid()) {
    const FaultedPipelineReport out =
        run_faulted_pipeline(t, config_for(t, p), plan_for(t, p));
    const std::uint64_t pictures =
        static_cast<std::uint64_t>(out.report.deliveries.size());
    EXPECT_LE(out.degradation.pictures_faded, pictures);
    EXPECT_LE(out.degradation.pictures_retransmitted, pictures);
    EXPECT_LE(out.degradation.pictures_stalled, pictures);
    EXPECT_LE(out.degradation.late_pictures, pictures);
    // Lateness bookkeeping matches the delivery records exactly.
    std::uint64_t late = 0;
    for (const PictureDelivery& d : out.report.deliveries) {
      late += d.late ? 1 : 0;
    }
    EXPECT_EQ(out.degradation.late_pictures, late);
    EXPECT_EQ(out.report.underflows, static_cast<int>(late));
    EXPECT_GE(out.degradation.retransmitted_bits, 0.0);
    if (out.degradation.pictures_retransmitted > 0) {
      EXPECT_GT(out.degradation.retransmitted_bits, 0.0);
    }
  }
}

TEST(FaultProperty, WorstDelayExcessMatchesDeliveries) {
  const Trace t = lsm::trace::driving1();
  for (const GridPoint& p : grid()) {
    const FaultedPipelineConfig config = config_for(t, p);
    const FaultedPipelineReport out =
        run_faulted_pipeline(t, config, plan_for(t, p));
    double worst = 0.0;
    for (const PictureDelivery& d : out.report.deliveries) {
      const double delay =
          d.sender_done - (d.index - 1) * config.base.params.tau;
      worst = std::max(worst, std::max(0.0, delay - config.base.params.D));
    }
    EXPECT_NEAR(out.report.worst_delay_excess, worst, 1e-9);
    EXPECT_EQ(out.degradation.worst_delay_excess,
              out.report.worst_delay_excess);
  }
}

TEST(FaultProperty, OffsetCoveringWorstExcessEliminatesUnderflow) {
  // The declared tolerance envelope: a playout offset of
  // D + latency + jitter + worst_delay_excess covers every fault the plan
  // injected, so a rerun with that offset never underflows.
  const Trace t = lsm::trace::backyard();
  for (const GridPoint& p : grid()) {
    FaultedPipelineConfig config = config_for(t, p);
    const sim::FaultPlan plan = plan_for(t, p);
    const FaultedPipelineReport first = run_faulted_pipeline(t, config, plan);
    config.base.playout_offset =
        config.base.params.D + config.base.network_latency +
        config.base.jitter + first.report.worst_delay_excess + 1e-6;
    const FaultedPipelineReport covered =
        run_faulted_pipeline(t, config, plan);
    EXPECT_EQ(covered.report.underflows, 0)
        << "seed " << p.seed << " intensity " << p.intensity;
  }
}

TEST(FaultProperty, WithinEnvelopeFaultsKeepTheAutoOffsetClean) {
  // Faults small enough to stay inside the Theorem 1 slack — a stall
  // shorter than the headroom added on top of the auto offset — must not
  // underflow.
  const Trace t = lsm::trace::driving1();
  std::vector<sim::FaultEvent> events;
  sim::FaultEvent stall;
  stall.cls = sim::FaultClass::kEncoderStall;
  stall.start = 2.0;
  stall.duration = 1.0;
  stall.magnitude = 0.015;
  events.push_back(stall);
  const sim::FaultPlan plan(std::move(events));
  FaultedPipelineConfig config;
  config.base.params.tau = t.tau();
  config.base.params.D = 0.2;
  config.base.params.K = 1;
  config.base.params.H = 9;
  config.base.network_latency = 0.010;
  // Headroom 0.02 s > the 0.015 s stall.
  config.base.playout_offset = 0.2 + 0.010 + 0.02;
  const FaultedPipelineReport out = run_faulted_pipeline(t, config, plan);
  EXPECT_EQ(out.report.underflows, 0);
  EXPECT_LE(out.report.worst_delay_excess, 0.015 + 1e-9);
  EXPECT_GE(out.degradation.pictures_stalled, 1u);
}

TEST(FaultProperty, RelaxFactorOneEqualsLatePictureMode) {
  // relax_factor == 1 makes kRateRelaxation request exactly the planned
  // rates, so the two degradation modes must coincide bitwise.
  const Trace t = lsm::trace::driving2();
  for (const std::uint64_t seed : {11ull, 12ull}) {
    sim::FaultSpec spec;
    spec.horizon = t.duration();
    spec.intensity = 2.0;
    spec.seed = seed;
    const sim::FaultPlan plan = sim::FaultPlan::generate(spec);
    FaultedPipelineConfig config;
    config.base.params.tau = t.tau();
    config.base.params.H = 6;
    config.recovery.mode = DegradationMode::kLatePicture;
    const FaultedPipelineReport late = run_faulted_pipeline(t, config, plan);
    config.recovery.mode = DegradationMode::kRateRelaxation;
    config.recovery.relax_factor = 1.0;
    const FaultedPipelineReport relaxed =
        run_faulted_pipeline(t, config, plan);
    ASSERT_EQ(late.report.deliveries.size(),
              relaxed.report.deliveries.size());
    for (std::size_t k = 0; k < late.report.deliveries.size(); ++k) {
      ASSERT_EQ(late.report.deliveries[k].sender_done,
                relaxed.report.deliveries[k].sender_done);
    }
    EXPECT_EQ(late.degradation.rate_relaxations, 0u);
    EXPECT_EQ(relaxed.degradation.rate_relaxations, 0u);
  }
}

TEST(FaultProperty, RetriesAreBoundedByPolicy) {
  const Trace t = lsm::trace::tennis();
  for (const GridPoint& p : grid()) {
    FaultedPipelineConfig config = config_for(t, p);
    config.recovery.retry.max_retries = 2;
    const FaultedPipelineReport out =
        run_faulted_pipeline(t, config, plan_for(t, p));
    // Each picture issues at most one renegotiation request, each request
    // at most max_retries retries (and one extra terminal denial).
    const std::uint64_t pictures =
        static_cast<std::uint64_t>(out.report.deliveries.size());
    EXPECT_LE(out.degradation.retries,
              pictures * static_cast<std::uint64_t>(
                             config.recovery.retry.max_retries));
    EXPECT_LE(out.degradation.denials,
              pictures * static_cast<std::uint64_t>(
                             config.recovery.retry.max_retries + 1));
    EXPECT_LE(out.degradation.giveups, pictures);
  }
}

TEST(FaultProperty, RecoveryLatencyHistogramTracksGrants) {
  // Denial-heavy plan: grants that waited must land in the histogram.
  const Trace t = lsm::trace::driving1();
  sim::FaultSpec spec;
  spec.horizon = t.duration();
  spec.intensity = 3.0;
  spec.seed = 21;
  spec.fade_rate = 0.0;
  spec.loss_rate = 0.0;
  spec.stall_rate = 0.0;
  spec.denial_rate = 6.0;
  const sim::FaultPlan plan = sim::FaultPlan::generate(spec);
  ASSERT_GT(plan.count(sim::FaultClass::kRenegotiationDenial), 0);
  FaultedPipelineConfig config;
  config.base.params.tau = t.tau();
  const FaultedPipelineReport out = run_faulted_pipeline(t, config, plan);
  if (out.degradation.denials > 0) {
    EXPECT_GE(out.degradation.retries + out.degradation.giveups, 1u);
  }
  if (out.degradation.recovery_latency.count() > 0) {
    EXPECT_GT(out.degradation.recovery_latency.max_seconds(), 0.0);
  }
}

}  // namespace
}  // namespace lsm::net
