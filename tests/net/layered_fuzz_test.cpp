// Deterministic fuzz over layered-config and degradation-priority
// handling: seeded random configs are corrupted one field at a time —
// invalid layer counts, non-monotone priorities, NaN or negative
// per-layer D/K/H, malformed weights and caps — and every corruption
// must throw std::invalid_argument from validate() (and thus from
// split_layers / run_layered_pipeline) instead of smoothing garbage.
// Uncorrupted configs from the same generator must validate cleanly.
#include "net/layered.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sim/rng.h"
#include "trace/sequences.h"

namespace lsm::net {
namespace {

using lsm::trace::Trace;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

LayeredConfig random_valid_config(sim::Rng& rng, double tau) {
  LayeredConfig config;
  const int n = static_cast<int>(rng.uniform_int(1, kMaxLayers));
  const bool explicit_weights = rng.bernoulli(0.5);
  int priority = 0;
  for (int l = 0; l < n; ++l) {
    LayerSpec layer;
    layer.params.tau = tau;
    layer.params.D = rng.uniform(0.05, 0.5);
    layer.params.K = static_cast<int>(rng.uniform_int(0, 3));
    layer.params.H = static_cast<int>(rng.uniform_int(1, 12));
    layer.priority = priority;
    priority += static_cast<int>(rng.uniform_int(1, 3));
    layer.relax_factor = rng.uniform(1.0, 2.0);
    layer.weight = explicit_weights ? rng.uniform(0.1, 4.0) : 0.0;
    config.layers.push_back(layer);
  }
  config.channel_cap = rng.bernoulli(0.5) ? 0.0 : rng.uniform(1e5, 1e7);
  config.network_latency = rng.uniform(0.0, 0.05);
  config.jitter = rng.uniform(0.0, 0.02);
  return config;
}

TEST(LayeredFuzz, GeneratedConfigsValidate) {
  sim::Rng rng(2026);
  for (int round = 0; round < 200; ++round) {
    const LayeredConfig config = random_valid_config(rng, 1.0 / 30.0);
    EXPECT_NO_THROW(config.validate()) << "round " << round;
  }
}

TEST(LayeredFuzz, CorruptedConfigsAlwaysThrow) {
  sim::Rng rng(4094);
  int corruptions_exercised = 0;
  for (int round = 0; round < 400; ++round) {
    LayeredConfig config = random_valid_config(rng, 1.0 / 30.0);
    const auto layer =
        static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(config.layers.size()) - 1));
    switch (rng.uniform_int(0, 11)) {
      case 0:
        config.layers.clear();  // no layers at all
        break;
      case 1:
        // Blow past kMaxLayers with copies of a valid layer.
        while (static_cast<int>(config.layers.size()) <= kMaxLayers) {
          LayerSpec extra = config.layers.back();
          extra.priority += 1 + static_cast<int>(config.layers.size());
          config.layers.push_back(extra);
        }
        break;
      case 2:
        config.layers[layer].priority = -1 - config.layers[layer].priority;
        break;
      case 3:
        // Duplicate or inverted priority breaks strict monotonicity.
        if (config.layers.size() > 1 && layer > 0) {
          config.layers[layer].priority = config.layers[layer - 1].priority;
        } else {
          config.layers[layer].priority = -5;
        }
        break;
      case 4:
        config.layers[layer].params.D =
            rng.bernoulli(0.5) ? kNaN : -rng.uniform(0.01, 1.0);
        break;
      case 5:
        config.layers[layer].params.K =
            -1 - static_cast<int>(rng.uniform_int(0, 5));
        break;
      case 6:
        config.layers[layer].params.H = 0;
        break;
      case 7:
        config.layers[layer].params.tau = rng.bernoulli(0.5) ? kNaN : 0.0;
        break;
      case 8:
        config.layers[layer].relax_factor =
            rng.bernoulli(0.5) ? 0.5 : kNaN;
        break;
      case 9:
        config.layers[layer].weight = rng.bernoulli(0.5) ? kNaN : -1.0;
        break;
      case 10:
        config.channel_cap = rng.bernoulli(0.5) ? -1e6 : kInf;
        break;
      default:
        config.network_latency = rng.bernoulli(0.5) ? kNaN : -0.01;
        break;
    }
    ++corruptions_exercised;
    EXPECT_THROW(config.validate(), std::invalid_argument)
        << "round " << round;
  }
  EXPECT_EQ(corruptions_exercised, 400);
}

TEST(LayeredFuzz, MixedWeightSettingsThrow) {
  LayeredConfig config;
  for (int l = 0; l < 3; ++l) {
    LayerSpec layer;
    layer.params.tau = 1.0 / 30.0;
    layer.params.D = 0.2;
    layer.params.K = 1;
    layer.params.H = 6;
    layer.priority = l;
    layer.weight = l == 1 ? 2.0 : 0.0;  // only the middle layer weighted
    config.layers.push_back(layer);
  }
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(LayeredFuzz, MismatchedLayerTauThrows) {
  LayeredConfig config;
  for (int l = 0; l < 2; ++l) {
    LayerSpec layer;
    layer.params.tau = l == 0 ? 1.0 / 30.0 : 1.0 / 25.0;
    layer.params.D = 0.2;
    layer.params.K = 1;
    layer.params.H = 6;
    layer.priority = l;
    config.layers.push_back(layer);
  }
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(LayeredFuzz, RunAndSplitRejectInvalidConfigsToo) {
  // The entry points funnel through validate(): a corrupted config must
  // throw before any smoothing or event scheduling happens.
  const Trace t = lsm::trace::driving1();
  LayeredConfig config;
  LayerSpec layer;
  layer.params.tau = t.tau();
  layer.params.D = kNaN;
  layer.params.K = 1;
  layer.params.H = 6;
  config.layers.push_back(layer);
  EXPECT_THROW(split_layers(t, config), std::invalid_argument);
  EXPECT_THROW(run_layered_pipeline(t, config), std::invalid_argument);
}

TEST(LayeredFuzz, PictureSmallerThanLayerCountThrows) {
  // An 8-way split of a 4-bit picture cannot give every layer a bit.
  std::vector<lsm::trace::Bits> sizes(12, 4);
  const Trace tiny("tiny", lsm::trace::GopPattern(3, 3), sizes, 1.0 / 30.0);
  LayeredConfig config;
  for (int l = 0; l < kMaxLayers; ++l) {
    LayerSpec layer;
    layer.params.tau = tiny.tau();
    layer.params.D = 0.2;
    layer.params.K = 1;
    layer.params.H = 4;
    layer.priority = l;
    config.layers.push_back(layer);
  }
  EXPECT_THROW(split_layers(tiny, config), std::invalid_argument);
}

}  // namespace
}  // namespace lsm::net
