// Layered joint-smoothing suite: exact bit partition, the single-layer
// identity (uncapped one-layer configs reproduce run_live_pipeline
// bitwise, canonical trace bytes included), priority-ordered shedding
// under a shared cap, and channel/fault composition into the admission
// pass.
#include "net/layered.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/trace_io.h"
#include "obs/tracer.h"
#include "trace/sequences.h"

namespace lsm::net {
namespace {

using lsm::trace::Trace;

LayerSpec layer_for(const Trace& trace, int priority) {
  LayerSpec layer;
  layer.params.tau = trace.tau();
  layer.params.D = 0.2;
  layer.params.K = 1;
  layer.params.H = trace.pattern().N();
  layer.priority = priority;
  return layer;
}

LayeredConfig config_for(const Trace& trace, int layers) {
  LayeredConfig config;
  for (int l = 0; l < layers; ++l) {
    config.layers.push_back(layer_for(trace, l));
  }
  return config;
}

TEST(SplitLayers, PartitionsEveryPictureExactly) {
  const Trace t = lsm::trace::driving1();
  const LayeredConfig config = config_for(t, 3);
  const std::vector<Trace> layers = split_layers(t, config);
  ASSERT_EQ(layers.size(), 3u);
  for (int l = 0; l < 3; ++l) {
    EXPECT_EQ(layers[static_cast<std::size_t>(l)].name(),
              t.name() + ".L" + std::to_string(l));
    EXPECT_EQ(layers[static_cast<std::size_t>(l)].picture_count(),
              t.picture_count());
    EXPECT_EQ(layers[static_cast<std::size_t>(l)].tau(), t.tau());
    EXPECT_EQ(layers[static_cast<std::size_t>(l)].types(), t.types());
  }
  for (int i = 1; i <= t.picture_count(); ++i) {
    lsm::trace::Bits sum = 0;
    for (const Trace& layer : layers) {
      EXPECT_GE(layer.size_of(i), 1);
      sum += layer.size_of(i);
    }
    EXPECT_EQ(sum, t.size_of(i)) << "picture " << i;
  }
  // Default geometric split: the base carries the biggest share.
  EXPECT_GT(layers[0].size_of(1), layers[1].size_of(1));
  EXPECT_GT(layers[1].size_of(1), layers[2].size_of(1));
}

TEST(SplitLayers, SingleLayerReturnsTheTraceVerbatim) {
  const Trace t = lsm::trace::tennis();
  const std::vector<Trace> layers = split_layers(t, config_for(t, 1));
  ASSERT_EQ(layers.size(), 1u);
  EXPECT_EQ(layers[0].name(), t.name());  // no suffix: the identity case
  EXPECT_EQ(layers[0].sizes(), t.sizes());
}

TEST(SplitLayers, ExplicitWeightsSteerTheShares) {
  const Trace t = lsm::trace::driving2();
  LayeredConfig config = config_for(t, 2);
  config.layers[0].weight = 1.0;
  config.layers[1].weight = 3.0;
  const std::vector<Trace> layers = split_layers(t, config);
  // Layer 1 gets ~3/4 of each picture under the explicit weights.
  EXPECT_GT(layers[1].size_of(1), layers[0].size_of(1));
}

TEST(LayeredPipeline, SingleLayerUncappedMatchesLivePipelineBitwise) {
  for (const Trace& t : lsm::trace::paper_sequences()) {
    for (const core::ExecutionPath path :
         {core::ExecutionPath::kAuto, core::ExecutionPath::kReference}) {
      LayeredConfig config = config_for(t, 1);
      config.jitter = 0.015;
      config.execution_path = path;
      PipelineConfig base_config;
      base_config.params = config.layers[0].params;
      base_config.network_latency = config.network_latency;
      base_config.jitter = config.jitter;
      base_config.jitter_seed = config.jitter_seed;
      base_config.execution_path = path;
      const PipelineReport base = run_live_pipeline(t, base_config);
      const LayeredReport layered = run_layered_pipeline(t, config);
      ASSERT_EQ(layered.layers.size(), 1u);
      const PipelineReport& report = layered.layers[0].report;
      EXPECT_EQ(report.underflows, base.underflows) << t.name();
      EXPECT_EQ(report.max_sender_delay, base.max_sender_delay) << t.name();
      EXPECT_EQ(report.worst_delay_excess, base.worst_delay_excess)
          << t.name();
      EXPECT_EQ(report.playout_offset, base.playout_offset) << t.name();
      ASSERT_EQ(report.deliveries.size(), base.deliveries.size()) << t.name();
      for (std::size_t k = 0; k < base.deliveries.size(); ++k) {
        ASSERT_EQ(report.deliveries[k].sender_start,
                  base.deliveries[k].sender_start)
            << t.name();
        ASSERT_EQ(report.deliveries[k].received, base.deliveries[k].received)
            << t.name();
        ASSERT_EQ(report.deliveries[k].late, base.deliveries[k].late)
            << t.name();
      }
      EXPECT_EQ(layered.min_active_layers, 1);
      EXPECT_EQ(layered.shed_events, 0u);
      EXPECT_FALSE(layered.base_overloaded);
      EXPECT_FALSE(layered.layers[0].degradation.any_fault());
    }
  }
}

TEST(LayeredPipeline, SingleLayerUncappedTraceBytesMatchLivePipeline) {
  const Trace t = lsm::trace::driving1();
  PipelineConfig base_config;
  LayeredConfig config = config_for(t, 1);
  base_config.params = config.layers[0].params;
  obs::Tracer& tracer = obs::Tracer::global();

  tracer.clear();
  tracer.set_enabled(true);
  run_live_pipeline(t, base_config);
  tracer.set_enabled(false);
  std::vector<obs::TraceEvent> base_events =
      obs::deterministic_events(tracer.drain());
  obs::canonical_sort(base_events);
  const std::string base_bytes = obs::serialize(base_events);

  tracer.clear();
  tracer.set_enabled(true);
  run_layered_pipeline(t, config);
  tracer.set_enabled(false);
  std::vector<obs::TraceEvent> layered_events =
      obs::deterministic_events(tracer.drain());
  obs::canonical_sort(layered_events);
  const std::string layered_bytes = obs::serialize(layered_events);

  ASSERT_FALSE(base_bytes.empty());
  EXPECT_TRUE(base_bytes == layered_bytes)
      << "single-layer layered run perturbs the canonical trace bytes";
}

TEST(LayeredPipeline, GenerousCapShedsNothing) {
  const Trace t = lsm::trace::backyard();
  LayeredConfig config = config_for(t, 3);
  config.channel_cap = 1e12;
  const LayeredReport report = run_layered_pipeline(t, config);
  EXPECT_GT(report.joint_peak_demand, 0.0);
  EXPECT_EQ(report.min_active_layers, 3);
  EXPECT_EQ(report.shed_events, 0u);
  EXPECT_FALSE(report.base_overloaded);
  for (const LayerOutcome& layer : report.layers) {
    EXPECT_TRUE(layer.shed.empty());
    EXPECT_EQ(layer.pictures_shed, 0u);
  }
}

TEST(LayeredPipeline, TightCapShedsEnhancementLayersNeverTheBase) {
  const Trace t = lsm::trace::backyard();
  LayeredConfig probe = config_for(t, 3);
  probe.channel_cap = 1e12;
  const double peak = run_layered_pipeline(t, probe).joint_peak_demand;

  LayeredConfig config = config_for(t, 3);
  config.channel_cap = 0.80 * peak;
  const LayeredReport report = run_layered_pipeline(t, config);
  EXPECT_GT(report.shed_events, 0u);
  EXPECT_LT(report.min_active_layers, 3);
  EXPECT_GE(report.min_active_layers, 1);
  // The base layer is never shed, whatever the cap does.
  EXPECT_TRUE(report.layers[0].shed.empty());
  EXPECT_EQ(report.layers[0].pictures_shed, 0u);
  // Priority order: the top layer sheds at least as much as the middle.
  EXPECT_GE(report.layers[2].shed_time, report.layers[1].shed_time);
  for (const LayerOutcome& layer : report.layers) {
    for (const ShedWindow& window : layer.shed) {
      EXPECT_GT(window.duration(), 0.0);
      EXPECT_GT(window.demand, config.channel_cap);
    }
  }
}

TEST(LayeredPipeline, CapBelowBaseDemandFlagsBaseOverload) {
  const Trace t = lsm::trace::driving2();
  LayeredConfig config = config_for(t, 2);
  config.channel_cap = 1.0;  // 1 bit/s: below any base-layer demand
  const LayeredReport report = run_layered_pipeline(t, config);
  EXPECT_TRUE(report.base_overloaded);
  EXPECT_EQ(report.min_active_layers, 1);
  EXPECT_TRUE(report.layers[0].shed.empty());
  EXPECT_FALSE(report.layers[1].shed.empty());
  EXPECT_GT(report.layers[1].pictures_shed, 0u);
}

TEST(LayeredPipeline, RepeatedRunsAreBitwiseIdentical) {
  const Trace t = lsm::trace::tennis();
  LayeredConfig config = config_for(t, 3);
  config.channel_cap = 2e6;
  sim::MarkovChannelSpec spec =
      sim::MarkovChannelSpec::gilbert_elliott(0.2, 0.3, 0.5);
  spec.horizon = t.duration();
  const sim::ChannelPlan channel = sim::ChannelPlan::generate(spec);
  const LayeredReport a = run_layered_pipeline(t, config, {}, channel);
  const LayeredReport b = run_layered_pipeline(t, config, {}, channel);
  EXPECT_EQ(a.joint_peak_demand, b.joint_peak_demand);
  EXPECT_EQ(a.min_active_layers, b.min_active_layers);
  EXPECT_EQ(a.shed_events, b.shed_events);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    EXPECT_EQ(a.layers[l].shed_time, b.layers[l].shed_time);
    EXPECT_EQ(a.layers[l].pictures_shed, b.layers[l].pictures_shed);
    ASSERT_EQ(a.layers[l].report.deliveries.size(),
              b.layers[l].report.deliveries.size());
    for (std::size_t k = 0; k < a.layers[l].report.deliveries.size(); ++k) {
      EXPECT_EQ(a.layers[l].report.deliveries[k].received,
                b.layers[l].report.deliveries[k].received);
    }
  }
}

TEST(LayeredPipeline, ChannelFadingScalesTheSharedCap) {
  // With the cap calibrated to just fit the joint demand, a half-rate
  // channel state must force shedding that the ideal channel avoids.
  const Trace t = lsm::trace::driving1();
  LayeredConfig probe = config_for(t, 2);
  probe.channel_cap = 1e12;
  const double peak = run_layered_pipeline(t, probe).joint_peak_demand;

  LayeredConfig config = config_for(t, 2);
  config.channel_cap = 1.05 * peak;
  const LayeredReport ideal = run_layered_pipeline(t, config);
  EXPECT_EQ(ideal.shed_events, 0u);

  std::vector<sim::ChannelSegment> segments(1);
  segments[0].start = 0.0;
  segments[0].duration = t.duration();
  segments[0].state = 1;
  segments[0].factor = 0.5;
  const sim::ChannelPlan faded(std::move(segments));
  const LayeredReport degraded = run_layered_pipeline(t, config, {}, faded);
  EXPECT_GT(degraded.shed_events, 0u);
  EXPECT_GT(degraded.layers[1].shed_time, 0.0);
  // The per-layer pipelines saw the same fading channel.
  EXPECT_GT(degraded.layers[0].degradation.pictures_channel_faded, 0u);
}

TEST(LayeredPipeline, PerLayerDegradationModesArePassedThrough) {
  const Trace t = lsm::trace::backyard();
  LayeredConfig config = config_for(t, 2);
  config.layers[0].mode = DegradationMode::kRateRelaxation;
  config.layers[0].relax_factor = 2.0;
  config.layers[1].mode = DegradationMode::kLatePicture;
  sim::FaultSpec spec;
  spec.intensity = 2.0;
  spec.seed = 9;
  spec.horizon = t.duration();
  const sim::FaultPlan plan = sim::FaultPlan::generate(spec);
  const LayeredReport report = run_layered_pipeline(t, config, plan);
  // Both layers ran against the same plan and recorded its faults.
  EXPECT_TRUE(report.layers[0].degradation.any_fault());
  EXPECT_TRUE(report.layers[1].degradation.any_fault());
}

}  // namespace
}  // namespace lsm::net
