// StatmuxService unit coverage: admission-control edges (duplicate ids,
// shard capacity, rate budget, full rings, invalid specs), departure
// during in-flight scheduling (stale calendar generations), zero-stream
// epochs as bitwise no-ops on the aggregate rate series, end-of-sequence
// auto-departure, and the feed-replay identity against a standalone
// StreamingSmoother.
#include "net/statmux.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/streaming.h"
#include "trace/pattern.h"

namespace lsm::net {
namespace {

using lsm::trace::GopPattern;

StreamSpec spec_for(std::uint32_t id, int pictures = 30) {
  StreamSpec spec;
  spec.id = id;
  spec.gop_n = 9;
  spec.gop_m = 3;
  spec.params.tau = 1.0 / 30.0;
  spec.params.D = 0.2;
  spec.params.H = spec.gop_n;
  spec.feed_seed = 1000 + id;
  spec.picture_count = pictures;
  spec.period_ticks = 1;
  spec.phase_ticks = 0;
  return spec;
}

StatmuxConfig config_for(int shards = 2) {
  StatmuxConfig config;
  config.shards = shards;
  config.threads = 2;
  config.link_rate_bps = 1e12;  // generous: admission never rate-limited
  return config;
}

TEST(Statmux, AdmitsRunsAndRetiresStreams) {
  StatmuxService service(config_for());
  for (std::uint32_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(service.admit(spec_for(id)));
  }
  EXPECT_EQ(service.active_streams(), 0);  // not applied until an epoch
  service.run_epoch();
  EXPECT_EQ(service.active_streams(), 4);
  EXPECT_GT(service.last_dirty_streams(), 0);

  service.run_epochs(40);  // past every stream's 30-picture sequence
  const StatmuxStats stats = service.stats();
  EXPECT_EQ(stats.admitted, 4);
  EXPECT_EQ(stats.finished, 4);
  EXPECT_EQ(stats.pictures, 4 * 30);
  EXPECT_EQ(stats.decisions, 4 * 30);
  EXPECT_EQ(service.active_streams(), 0);
  EXPECT_EQ(service.last_dirty_streams(), 0);
}

TEST(Statmux, DuplicateStreamIdIsRejected) {
  StatmuxService service(config_for());
  ASSERT_TRUE(service.admit(spec_for(7)));
  ASSERT_TRUE(service.admit(spec_for(7)));  // enqueues; rejected on apply
  service.run_epoch();
  EXPECT_EQ(service.stats().admitted, 1);
  EXPECT_EQ(service.stats().rejected_duplicate, 1);
  // Still resident: a later re-admission is also a duplicate.
  ASSERT_TRUE(service.admit(spec_for(7)));
  service.run_epoch();
  EXPECT_EQ(service.stats().rejected_duplicate, 2);
}

TEST(Statmux, AdmissionAtShardCapacityIsRejected) {
  StatmuxConfig config = config_for(1);
  config.max_streams_per_shard = 2;
  StatmuxService service(config);
  for (std::uint32_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(service.admit(spec_for(id)));
  }
  service.run_epoch();
  // Canonical admission order is by id: 1 and 2 fit, 3 bounces.
  EXPECT_EQ(service.stats().admitted, 2);
  EXPECT_EQ(service.stats().rejected_capacity, 1);
  EXPECT_EQ(service.active_streams(), 2);
}

TEST(Statmux, AdmissionBeyondRateBudgetIsRejected) {
  StatmuxConfig config = config_for(1);
  // Budget fits one nominal reservation, not two.
  config.link_rate_bps = spec_for(1).nominal_rate() * 1.5;
  StatmuxService service(config);
  ASSERT_TRUE(service.admit(spec_for(1)));
  ASSERT_TRUE(service.admit(spec_for(2)));
  service.run_epoch();
  EXPECT_EQ(service.stats().admitted, 1);
  EXPECT_EQ(service.stats().rejected_rate, 1);
  // The reservation frees on finish: afterwards a new stream fits.
  service.run_epochs(40);
  ASSERT_TRUE(service.admit(spec_for(3)));
  service.run_epoch();
  EXPECT_EQ(service.stats().admitted, 2);
}

TEST(Statmux, DepartDuringInFlightScheduleUsesStaleGenerations) {
  StatmuxConfig config = config_for(1);
  StatmuxService service(config);
  StreamSpec spec = spec_for(5, /*pictures=*/1000);
  spec.period_ticks = 3;  // calendar entry parked several ticks out
  ASSERT_TRUE(service.admit(spec));
  service.run_epochs(4);  // mid-sequence, next arrival in flight
  EXPECT_EQ(service.active_streams(), 1);

  ASSERT_TRUE(service.depart(5));
  service.run_epoch();
  EXPECT_EQ(service.active_streams(), 0);
  EXPECT_EQ(service.stats().departed, 1);

  // Readmit the same id: the parked entry of the departed incarnation has
  // a stale generation and must not advance the new stream.
  ASSERT_TRUE(service.admit(spec_for(5, /*pictures=*/6)));
  service.run_epochs(10);
  const StatmuxStats stats = service.stats();
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.finished, 1);
  EXPECT_EQ(service.active_streams(), 0);
  // Two pictures from the departed incarnation (ticks 0 and 3), six from
  // the readmitted one — the stale entry never fed the new stream.
  EXPECT_EQ(stats.pictures, 2 + 6);
  EXPECT_GE(stats.decisions, 6);  // the finished incarnation decided fully
}

TEST(Statmux, DepartingUnknownIdIsANoOp) {
  StatmuxService service(config_for());
  ASSERT_TRUE(service.depart(99));
  service.run_epoch();
  EXPECT_EQ(service.stats().departed, 0);
}

TEST(Statmux, ZeroStreamEpochIsABitwiseNoOpOnTheRateSeries) {
  StatmuxService empty(config_for());
  empty.run_epochs(3);
  for (double value : empty.rate_series()) EXPECT_EQ(value, 0.0);

  // Populated service: once every stream has retired, further epochs must
  // append the exact same double, bit for bit.
  StatmuxService service(config_for());
  for (std::uint32_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(service.admit(spec_for(id, /*pictures=*/10)));
  }
  service.run_epochs(20);
  ASSERT_EQ(service.active_streams(), 0);
  const double settled = service.reserved_rate();
  service.run_epochs(5);
  const std::vector<double>& series = service.rate_series();
  for (std::size_t i = series.size() - 5; i < series.size(); ++i) {
    EXPECT_EQ(series[i], settled);  // exact double equality: bitwise no-op
  }
}

TEST(Statmux, FullAdmissionRingRejectsWithBackPressure) {
  StatmuxConfig config = config_for(1);
  config.ring_capacity = 2;
  StatmuxService service(config);
  ASSERT_TRUE(service.admit(spec_for(1)));
  ASSERT_TRUE(service.admit(spec_for(2)));
  EXPECT_FALSE(service.admit(spec_for(3)));  // ring full: explicit reject
  service.run_epoch();                       // drains the ring
  EXPECT_TRUE(service.admit(spec_for(3)));   // retry succeeds
}

TEST(Statmux, InvalidSpecsAreRejectedBeforeEnqueue) {
  StatmuxService service(config_for());
  StreamSpec zero_id = spec_for(0);
  EXPECT_FALSE(service.admit(zero_id));
  StreamSpec bad_gop = spec_for(1);
  bad_gop.gop_n = 9;
  bad_gop.gop_m = 4;  // M must divide N
  EXPECT_FALSE(service.admit(bad_gop));
  StreamSpec bad_period = spec_for(2);
  bad_period.period_ticks = 0;
  EXPECT_FALSE(service.admit(bad_period));
  StreamSpec bad_params = spec_for(3);
  bad_params.params.D = -1.0;
  EXPECT_FALSE(service.admit(bad_params));
  EXPECT_FALSE(service.depart(0));
  service.run_epoch();
  EXPECT_EQ(service.stats().admitted, 0);
}

TEST(Statmux, ScheduleMatchesAStandaloneSmootherOnTheSameFeed) {
  StatmuxConfig config = config_for(1);
  config.collect_sends = true;
  StatmuxService service(config);
  const StreamSpec spec = spec_for(9, /*pictures=*/60);
  ASSERT_TRUE(service.admit(spec));
  service.run_epochs(70);
  ASSERT_EQ(service.stats().decisions, 60);

  const GopPattern pattern(spec.gop_n, spec.gop_m);
  core::StreamingSmoother reference(pattern, spec.params, spec.defaults);
  std::vector<core::PictureSend> expected;
  for (int i = 1; i <= spec.picture_count; ++i) {
    reference.push(synthetic_picture_size(spec.feed_seed, i,
                                          pattern.type_of(i),
                                          spec.defaults));
    // The service finishes before the drain that follows the last push —
    // replay with the same cadence or tail decisions use the unbounded
    // lookahead instead of end-of-sequence semantics.
    if (i == spec.picture_count) reference.finish();
    reference.drain_into(expected);
  }

  const std::vector<StreamSend>& got = service.collected_sends(0);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(got[k].stream, 9u);
    EXPECT_EQ(got[k].send.index, expected[k].index);
    EXPECT_EQ(got[k].send.bits, expected[k].bits);
    EXPECT_EQ(got[k].send.rate, expected[k].rate);
    EXPECT_EQ(got[k].send.start, expected[k].start);
    EXPECT_EQ(got[k].send.depart, expected[k].depart);
  }
}

TEST(Statmux, PolicerCountsOvershootEpochs) {
  StatmuxConfig config = config_for(1);
  config.bucket_sigma_bits = 1.0;  // bucket far below one epoch's bits
  StatmuxService service(config);
  ASSERT_TRUE(service.admit(spec_for(1, /*pictures=*/20)));
  service.run_epochs(5);
  EXPECT_GT(service.stats().overshoot_epochs, 0);
}

TEST(Statmux, RateHistoryRingKeepsTheMostRecentEpochs) {
  // Identical deterministic feeds, one unbounded history, one ring of 4:
  // after any number of epochs the ring must hold exactly the last 4
  // totals of the unbounded series, bitwise, and rate_history() must
  // return them oldest-first.
  StatmuxConfig unbounded_config = config_for(2);
  StatmuxConfig ring_config = config_for(2);
  ring_config.rate_history_limit = 4;
  StatmuxService unbounded(unbounded_config);
  StatmuxService ringed(ring_config);
  for (std::uint32_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(unbounded.admit(spec_for(id)));
    ASSERT_TRUE(ringed.admit(spec_for(id)));
  }
  unbounded.run_epochs(11);
  ringed.run_epochs(11);
  const std::vector<double>& full = unbounded.rate_series();
  ASSERT_EQ(full.size(), 11u);
  EXPECT_EQ(ringed.rate_series().size(), 4u);  // storage stays bounded
  std::vector<double> history;
  ringed.rate_history(history);
  ASSERT_EQ(history.size(), 4u);
  for (std::size_t k = 0; k < history.size(); ++k) {
    EXPECT_EQ(history[k], full[full.size() - 4 + k]) << "epoch " << k;
  }
  // reserved_rate() reports the newest total in both modes.
  EXPECT_EQ(ringed.reserved_rate(), full.back());
  EXPECT_EQ(unbounded.reserved_rate(), full.back());
}

TEST(Statmux, RateHistoryBelowLimitAndUnboundedAreChronological) {
  StatmuxConfig ring_config = config_for(1);
  ring_config.rate_history_limit = 8;
  StatmuxService ringed(ring_config);
  ASSERT_TRUE(ringed.admit(spec_for(1)));
  ringed.run_epochs(5);  // fewer epochs than the limit: no wrap yet
  std::vector<double> history;
  ringed.rate_history(history);
  ASSERT_EQ(history.size(), 5u);
  EXPECT_EQ(history, ringed.rate_series());
  // Unbounded services return the full series unchanged.
  StatmuxService unbounded(config_for(1));
  ASSERT_TRUE(unbounded.admit(spec_for(1)));
  unbounded.run_epochs(5);
  unbounded.rate_history(history);
  EXPECT_EQ(history, unbounded.rate_series());
}

TEST(Statmux, ConfigValidationThrows) {
  StatmuxConfig bad;
  bad.shards = 0;
  EXPECT_THROW(StatmuxService service(bad), std::invalid_argument);
  StatmuxConfig bad_rate;
  bad_rate.link_rate_bps = 0.0;
  EXPECT_THROW(StatmuxService service(bad_rate), std::invalid_argument);
}

}  // namespace
}  // namespace lsm::net
