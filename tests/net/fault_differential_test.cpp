// The zero-intensity gate: a faulted pipeline run whose FaultPlan contains
// no events must reproduce run_live_pipeline() field-for-field, bitwise —
// the guard that the fault-injection layer cannot perturb the Theorem 1
// path. Enforced in CI under ASan and TSan.
#include "net/transport.h"

#include <gtest/gtest.h>

#include "trace/sequences.h"

namespace lsm::net {
namespace {

using lsm::trace::Trace;

PipelineConfig default_config(const Trace& trace) {
  PipelineConfig config;
  config.params.tau = trace.tau();
  config.params.D = 0.2;
  config.params.K = 1;
  config.params.H = trace.pattern().N();
  config.network_latency = 0.010;
  return config;
}

void expect_bitwise_equal(const PipelineReport& faulted,
                          const PipelineReport& base, const char* label) {
  EXPECT_EQ(faulted.underflows, base.underflows) << label;
  // Bitwise: EXPECT_EQ on doubles, not NEAR.
  EXPECT_EQ(faulted.max_sender_delay, base.max_sender_delay) << label;
  EXPECT_EQ(faulted.worst_delay_excess, base.worst_delay_excess) << label;
  EXPECT_EQ(faulted.playout_offset, base.playout_offset) << label;
  ASSERT_EQ(faulted.deliveries.size(), base.deliveries.size()) << label;
  for (std::size_t k = 0; k < base.deliveries.size(); ++k) {
    const PictureDelivery& f = faulted.deliveries[k];
    const PictureDelivery& b = base.deliveries[k];
    ASSERT_EQ(f.index, b.index) << label;
    ASSERT_EQ(f.sender_start, b.sender_start) << label;
    ASSERT_EQ(f.sender_done, b.sender_done) << label;
    ASSERT_EQ(f.received, b.received) << label;
    ASSERT_EQ(f.deadline, b.deadline) << label;
    ASSERT_EQ(f.late, b.late) << label;
  }
}

TEST(FaultDifferential, ZeroIntensityPlanMatchesBasePipelineBitwise) {
  sim::FaultSpec spec;
  spec.intensity = 0.0;
  const sim::FaultPlan plan = sim::FaultPlan::generate(spec);
  for (const Trace& t : lsm::trace::paper_sequences()) {
    for (const double jitter : {0.0, 0.02}) {
      PipelineConfig config = default_config(t);
      config.jitter = jitter;
      const PipelineReport base = run_live_pipeline(t, config);
      FaultedPipelineConfig faulted_config;
      faulted_config.base = config;
      const FaultedPipelineReport faulted =
          run_faulted_pipeline(t, faulted_config, plan);
      expect_bitwise_equal(faulted.report, base, t.name().c_str());
    }
  }
}

TEST(FaultDifferential, ZeroIntensityMatchesUnderReferencePath) {
  const sim::FaultPlan plan;  // default = empty
  for (const Trace& t : lsm::trace::paper_sequences()) {
    for (const core::ExecutionPath path :
         {core::ExecutionPath::kAuto, core::ExecutionPath::kReference}) {
      PipelineConfig config = default_config(t);
      config.jitter = 0.015;
      config.execution_path = path;
      const PipelineReport base = run_live_pipeline(t, config);
      FaultedPipelineConfig faulted_config;
      faulted_config.base = config;
      const FaultedPipelineReport faulted =
          run_faulted_pipeline(t, faulted_config, plan);
      expect_bitwise_equal(faulted.report, base, t.name().c_str());
    }
  }
}

TEST(FaultDifferential, ExecutionPathsAgreeInsideFaultedPipeline) {
  // The devirtualized fast path and the virtual reference loop must stay
  // bitwise interchangeable under faults too.
  sim::FaultSpec spec;
  spec.intensity = 2.0;
  spec.seed = 7;
  const sim::FaultPlan plan = sim::FaultPlan::generate(spec);
  const Trace t = lsm::trace::driving1();
  FaultedPipelineConfig config;
  config.base = default_config(t);
  config.base.jitter = 0.01;
  config.base.execution_path = core::ExecutionPath::kAuto;
  const FaultedPipelineReport fast = run_faulted_pipeline(t, config, plan);
  config.base.execution_path = core::ExecutionPath::kReference;
  const FaultedPipelineReport reference =
      run_faulted_pipeline(t, config, plan);
  expect_bitwise_equal(fast.report, reference.report, t.name().c_str());
}

TEST(FaultDifferential, ZeroIntensityCountersAreAllZero) {
  const sim::FaultPlan plan;
  const Trace t = lsm::trace::backyard();
  FaultedPipelineConfig config;
  config.base = default_config(t);
  const FaultedPipelineReport faulted = run_faulted_pipeline(t, config, plan);
  EXPECT_FALSE(faulted.degradation.any_fault());
  EXPECT_EQ(faulted.degradation.recovery_latency.count(), 0u);
  EXPECT_DOUBLE_EQ(faulted.degradation.worst_delay_excess, 0.0);
}

TEST(FaultDifferential, RelaxationModeIsInertWithoutFaults) {
  // kRateRelaxation only engages when the channel falls behind the plan;
  // on an ideal channel it must not perturb anything.
  const sim::FaultPlan plan;
  const Trace t = lsm::trace::tennis();
  const PipelineConfig base_config = default_config(t);
  const PipelineReport base = run_live_pipeline(t, base_config);
  FaultedPipelineConfig config;
  config.base = base_config;
  config.recovery.mode = DegradationMode::kRateRelaxation;
  config.recovery.relax_factor = 2.0;
  const FaultedPipelineReport faulted = run_faulted_pipeline(t, config, plan);
  expect_bitwise_equal(faulted.report, base, t.name().c_str());
  EXPECT_FALSE(faulted.degradation.any_fault());
}

}  // namespace
}  // namespace lsm::net
