#include "net/wfq.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/smoother.h"
#include "net/mux.h"
#include "trace/sequences.h"

namespace lsm::net {
namespace {

using lsm::trace::Trace;

/// `count` cells arriving back-to-back at t = 0 (a saturating burst).
std::vector<Cell> burst(int count, int source) {
  std::vector<Cell> cells;
  for (int k = 0; k < count; ++k) {
    cells.push_back(Cell{0.0, source, 1});
  }
  return cells;
}

/// Evenly spaced cells at `rate_bps` for `duration` seconds.
std::vector<Cell> paced(double rate_bps, double duration, int source) {
  std::vector<Cell> cells;
  const double spacing = kCellPayloadBits / rate_bps;
  for (double t = spacing; t <= duration; t += spacing) {
    cells.push_back(Cell{t, source, 1});
  }
  return cells;
}

TEST(Wfq, WorkConservationAndAccounting) {
  WfqConfig config;
  config.service_rate_bps = 1e6;
  config.weights = {1, 1};
  config.buffer_cells_per_queue = 1000;
  const WfqResult result =
      simulate_wfq({burst(100, 0), burst(50, 1)}, config);
  EXPECT_EQ(result.arrived_by_source[0], 100);
  EXPECT_EQ(result.arrived_by_source[1], 50);
  EXPECT_EQ(result.served_by_source[0], 100);
  EXPECT_EQ(result.served_by_source[1], 50);
  EXPECT_EQ(result.dropped_by_source[0] + result.dropped_by_source[1], 0);
}

TEST(Wfq, EqualWeightsSplitOverloadEvenly) {
  // Both queues saturated with tiny buffers: drops land evenly.
  WfqConfig config;
  config.service_rate_bps = 1e6;
  config.weights = {1, 1};
  config.buffer_cells_per_queue = 10;
  const WfqResult result =
      simulate_wfq({burst(500, 0), burst(500, 1)}, config);
  EXPECT_EQ(result.served_by_source[0], result.served_by_source[1]);
}

TEST(Wfq, WeightsShareTheLinkProportionally) {
  // Persistent overload from both sources, weights 2:1: served cells track
  // the weights while both stay backlogged. Use big buffers so nothing is
  // dropped and both queues stay busy to the end.
  WfqConfig config;
  config.service_rate_bps = 1e6;
  config.weights = {2, 1};
  config.buffer_cells_per_queue = 5000;
  const WfqResult result =
      simulate_wfq({burst(3000, 0), burst(3000, 1)}, config);
  // Whole run serves everything eventually; fairness shows in delays: the
  // weight-2 queue drains twice as fast, so its mean delay is ~half.
  EXPECT_LT(result.mean_delay_by_source[0],
            0.7 * result.mean_delay_by_source[1]);
}

TEST(Wfq, IsolationProtectsAConformingStreamFromAFlooder) {
  // Source 0: a smoothed paper sequence, pacing well within its share.
  // Source 1: an aggressive flooder far beyond its share.
  // Per-queue buffers mean the flooder's drops are its own; the conforming
  // stream loses NOTHING. The shared-FIFO mux, by contrast, spills the
  // flooder's overload onto the conforming stream.
  const Trace t = lsm::trace::backyard();
  core::SmootherParams params;
  params.tau = t.tau();
  params.D = 0.2;
  params.H = t.pattern().N();
  const std::vector<Cell> conforming =
      packetize(core::smooth_basic(t, params), 0);
  std::vector<Cell> flood = paced(4e6, t.duration(), 1);

  WfqConfig config;
  config.service_rate_bps = 4e6;  // share 2 Mbps each; source 0 needs ~1.3
  config.weights = {1, 1};
  config.buffer_cells_per_queue = 60;
  const WfqResult fair = simulate_wfq({conforming, flood}, config);
  EXPECT_EQ(fair.dropped_by_source[0], 0);
  EXPECT_GT(fair.dropped_by_source[1], 0);

  // Same offered traffic through the shared-buffer FIFO: the conforming
  // stream now shares the flooder's losses.
  const MuxResult fifo = simulate_cell_mux(
      {conforming, flood}, MuxConfig{4e6, 120});
  EXPECT_GT(fifo.dropped_by_source[0], 0);
}

TEST(Wfq, DelaysOfAConformingStreamStayBounded) {
  const Trace t = lsm::trace::backyard();
  core::SmootherParams params;
  params.tau = t.tau();
  params.D = 0.2;
  params.H = t.pattern().N();
  const std::vector<Cell> conforming =
      packetize(core::smooth_basic(t, params), 0);
  const std::vector<Cell> flood = paced(5e6, t.duration(), 1);
  WfqConfig config;
  config.service_rate_bps = 4e6;
  config.weights = {1, 1};
  config.buffer_cells_per_queue = 60;
  const WfqResult result = simulate_wfq({conforming, flood}, config);
  // Share 2 Mbps >= the stream's 1.3 Mbps peak: the queue stays shallow and
  // every cell clears in well under a picture period.
  EXPECT_LT(result.max_delay_by_source[0], 0.02);
}

TEST(Wfq, IdlePeriodsAreSkipped) {
  // Two bursts separated by a long gap: the server must jump the gap.
  std::vector<Cell> cells = burst(10, 0);
  for (int k = 0; k < 10; ++k) cells.push_back(Cell{5.0, 0, 2});
  WfqConfig config;
  config.service_rate_bps = 1e6;
  config.weights = {1};
  const WfqResult result = simulate_wfq({cells}, config);
  EXPECT_EQ(result.served_by_source[0], 20);
  // The second burst's delays are small (no stale backlog).
  EXPECT_LT(result.max_delay_by_source[0], 0.01);
}

TEST(Wfq, RejectsBadConfig) {
  WfqConfig config;
  config.weights = {1};
  EXPECT_THROW(simulate_wfq({{}, {}}, config), std::invalid_argument);
  config.weights = {0, 1};
  EXPECT_THROW(simulate_wfq({{}, {}}, config), std::invalid_argument);
  config.weights = {1, 1};
  config.buffer_cells_per_queue = 0;
  EXPECT_THROW(simulate_wfq({{}, {}}, config), std::invalid_argument);
}

}  // namespace
}  // namespace lsm::net
