#include "net/transport.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "core/smoother.h"
#include "trace/sequences.h"

namespace lsm::net {
namespace {

using lsm::trace::Trace;

PipelineConfig default_config(const Trace& trace) {
  PipelineConfig config;
  config.params.tau = trace.tau();
  config.params.D = 0.2;
  config.params.K = 1;
  config.params.H = trace.pattern().N();
  config.network_latency = 0.010;
  return config;
}

TEST(Pipeline, DeliversEveryPicture) {
  const Trace t = lsm::trace::driving1();
  const PipelineReport report = run_live_pipeline(t, default_config(t));
  EXPECT_EQ(report.deliveries.size(),
            static_cast<std::size_t>(t.picture_count()));
}

TEST(Pipeline, NoUnderflowWhenPlayoutOffsetCoversDPlusLatency) {
  // The transport contract implied by Theorem 1.
  for (const Trace& t : lsm::trace::paper_sequences()) {
    const PipelineConfig config = default_config(t);
    const PipelineReport report = run_live_pipeline(t, config);
    EXPECT_EQ(report.underflows, 0) << t.name();
    EXPECT_TRUE(report.clean());
    EXPECT_NEAR(report.playout_offset, 0.21, 1e-12);
  }
}

TEST(Pipeline, SenderDelaysRespectTheBound) {
  const Trace t = lsm::trace::tennis();
  const PipelineConfig config = default_config(t);
  const PipelineReport report = run_live_pipeline(t, config);
  EXPECT_LE(report.max_sender_delay, config.params.D + 1e-9);
}

TEST(Pipeline, TightPlayoutOffsetUnderflows) {
  const Trace t = lsm::trace::driving1();
  PipelineConfig config = default_config(t);
  // Offset far below D: pictures whose smoothing delay exceeds it are late.
  config.playout_offset = 0.07;
  const PipelineReport report = run_live_pipeline(t, config);
  EXPECT_GT(report.underflows, 0);
}

TEST(Pipeline, LatencyShiftsReceptionNotSending) {
  const Trace t = lsm::trace::backyard();
  PipelineConfig near = default_config(t);
  near.network_latency = 0.0;
  PipelineConfig far = default_config(t);
  far.network_latency = 0.1;
  const PipelineReport a = run_live_pipeline(t, near);
  const PipelineReport b = run_live_pipeline(t, far);
  for (std::size_t k = 0; k < a.deliveries.size(); ++k) {
    ASSERT_DOUBLE_EQ(a.deliveries[k].sender_done,
                     b.deliveries[k].sender_done);
    ASSERT_NEAR(b.deliveries[k].received - a.deliveries[k].received, 0.1,
                1e-9);
  }
  EXPECT_EQ(b.underflows, 0);  // offset auto-includes the latency
}

TEST(Pipeline, DeliveriesMatchOfflineSmoother) {
  // The event-driven pipeline and the batch smoother must compute the same
  // schedule (the engine is shared; the pipeline only changes *when* the
  // steps run, not what they see).
  const Trace t = lsm::trace::driving2();
  const PipelineConfig config = default_config(t);
  const PipelineReport report = run_live_pipeline(t, config);
  const core::SmoothingResult offline = core::smooth_basic(t, config.params);
  ASSERT_EQ(report.deliveries.size(), offline.sends.size());
  for (std::size_t k = 0; k < offline.sends.size(); ++k) {
    ASSERT_DOUBLE_EQ(report.deliveries[k].sender_start,
                     offline.sends[k].start);
    ASSERT_DOUBLE_EQ(report.deliveries[k].sender_done,
                     offline.sends[k].depart);
  }
}

TEST(Pipeline, JitterCoveredByAutoOffsetStaysClean) {
  const Trace t = lsm::trace::driving1();
  PipelineConfig config = default_config(t);
  config.jitter = 0.03;
  const PipelineReport report = run_live_pipeline(t, config);
  EXPECT_NEAR(report.playout_offset, 0.2 + 0.01 + 0.03, 1e-12);
  EXPECT_EQ(report.underflows, 0);
}

TEST(Pipeline, JitterBeyondOffsetCausesLateness) {
  const Trace t = lsm::trace::driving1();
  PipelineConfig config = default_config(t);
  config.jitter = 0.05;
  // Offset covers D + base latency but NOT the jitter.
  config.playout_offset = 0.2 + 0.01;
  const PipelineReport report = run_live_pipeline(t, config);
  EXPECT_GT(report.underflows, 0);
}

TEST(Pipeline, JitterIsDeterministicPerSeed) {
  const Trace t = lsm::trace::backyard();
  PipelineConfig config = default_config(t);
  config.jitter = 0.02;
  const PipelineReport a = run_live_pipeline(t, config);
  const PipelineReport b = run_live_pipeline(t, config);
  config.jitter_seed = 2;
  const PipelineReport c = run_live_pipeline(t, config);
  ASSERT_EQ(a.deliveries.size(), b.deliveries.size());
  bool any_difference = false;
  for (std::size_t k = 0; k < a.deliveries.size(); ++k) {
    ASSERT_DOUBLE_EQ(a.deliveries[k].received, b.deliveries[k].received);
    if (a.deliveries[k].received != c.deliveries[k].received) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Pipeline, AutoOffsetPinsTheTheoremFormulaWithTheJitterBound) {
  // Regression for the playout_offset = 0 auto-selection audit: the offset
  // must be exactly D + latency + jitter where "jitter" is the declared
  // bound of the uniform[0, jitter) component — never a sampled value, or
  // the offset would vary run-to-run and undercover the worst draw.
  const Trace t = lsm::trace::driving1();
  for (const double jitter : {0.0, 0.02, 0.05}) {
    PipelineConfig config = default_config(t);
    config.jitter = jitter;
    const PipelineReport a = run_live_pipeline(t, config);
    EXPECT_DOUBLE_EQ(a.playout_offset,
                     config.params.D + config.network_latency + jitter);
    // The formula is a function of the config alone: a different jitter
    // seed draws different samples but the same offset.
    config.jitter_seed = 99;
    const PipelineReport b = run_live_pipeline(t, config);
    EXPECT_DOUBLE_EQ(b.playout_offset, a.playout_offset);
    EXPECT_EQ(b.underflows, 0);
  }
}

TEST(Pipeline, RejectsNegativeAndNonFinitePlayoutOffset) {
  const Trace t = lsm::trace::backyard();
  PipelineConfig config = default_config(t);
  config.playout_offset = -0.1;
  EXPECT_THROW(run_live_pipeline(t, config), std::invalid_argument);
  config.playout_offset = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(run_live_pipeline(t, config), std::invalid_argument);
  config.playout_offset = std::numeric_limits<double>::infinity();
  EXPECT_THROW(run_live_pipeline(t, config), std::invalid_argument);
}

TEST(Pipeline, WorstDelayExcessIsZeroInsideTheoremRegime) {
  for (const Trace& t : lsm::trace::paper_sequences()) {
    const PipelineConfig config = default_config(t);
    ASSERT_TRUE(config.params.guarantees_delay_bound());
    const PipelineReport report = run_live_pipeline(t, config);
    EXPECT_DOUBLE_EQ(report.worst_delay_excess, 0.0) << t.name();
    EXPECT_LE(report.max_sender_delay, config.params.D + 1e-9) << t.name();
  }
}

TEST(Pipeline, ReferenceExecutionPathMatchesFastPath) {
  const Trace t = lsm::trace::driving2();
  PipelineConfig config = default_config(t);
  config.jitter = 0.01;
  const PipelineReport fast = run_live_pipeline(t, config);
  config.execution_path = core::ExecutionPath::kReference;
  const PipelineReport reference = run_live_pipeline(t, config);
  ASSERT_EQ(fast.deliveries.size(), reference.deliveries.size());
  for (std::size_t k = 0; k < fast.deliveries.size(); ++k) {
    ASSERT_DOUBLE_EQ(fast.deliveries[k].sender_done,
                     reference.deliveries[k].sender_done);
    ASSERT_DOUBLE_EQ(fast.deliveries[k].received,
                     reference.deliveries[k].received);
  }
}

TEST(Pipeline, RejectsBadConfig) {
  const Trace t = lsm::trace::backyard();
  PipelineConfig config = default_config(t);
  config.network_latency = -1.0;
  EXPECT_THROW(run_live_pipeline(t, config), std::invalid_argument);
  config = default_config(t);
  config.params.H = 0;
  EXPECT_THROW(run_live_pipeline(t, config), core::InvalidParams);
}

}  // namespace
}  // namespace lsm::net
