// StatmuxChurn: seeded admit/depart soak. One sim::Rng generates a
// 100k+ command script (admissions with randomized cadences, departures
// of live streams) that is replayed against shard counts 1, 4, and 8
// (threads matching). Every per-stream schedule must be bitwise
// identical across shard counts — a stream's smoother never depends on
// where it is sharded — and the aggregate tallies must agree exactly.
// The aggregate rate series is only pinned within a shard count (the
// vectorized reduction fixes the grouping per config, not across
// configs), so full bitwise identity (rate series + send stream) is
// asserted for same-config repeats and 1-vs-N driver threads. CI runs
// this suite under ThreadSanitizer and with --schedule-random.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "net/statmux.h"
#include "sim/rng.h"

namespace lsm::net {
namespace {

constexpr int kBatches = 1600;
constexpr int kCommandsPerBatch = 64;  // 1600 * 64 = 102,400 commands

struct ScriptCommand {
  bool admit = false;
  StreamSpec spec;           // valid when admit
  std::uint32_t depart_id = 0;  // valid when !admit
};

/// One epoch's worth of commands; the whole script is generated once from
/// a single Rng and replayed verbatim against every configuration.
using Script = std::vector<std::vector<ScriptCommand>>;

Script make_script(std::uint64_t seed) {
  sim::Rng rng(seed);
  Script script(kBatches);
  std::vector<std::uint32_t> live;
  std::uint32_t next_id = 1;
  for (int b = 0; b < kBatches; ++b) {
    std::vector<std::uint32_t> admitted_this_batch;
    for (int c = 0; c < kCommandsPerBatch; ++c) {
      // Steer the live population toward ~500 resident streams so the
      // soak exercises sustained slot recycling, not monotone growth.
      const double admit_p =
          live.size() < 200 ? 0.9 : (live.size() > 800 ? 0.1 : 0.5);
      ScriptCommand cmd;
      if (live.empty() || rng.bernoulli(admit_p)) {
        cmd.admit = true;
        StreamSpec& spec = cmd.spec;
        spec.id = next_id++;
        spec.gop_n = 9;
        spec.gop_m = 3;
        spec.params.tau = 1.0 / 30.0;
        spec.params.D = 0.2;
        spec.params.H = spec.gop_n;
        spec.feed_seed = rng.next_u64();
        spec.picture_count = 0;  // endless: departures end every stream
        spec.period_ticks = static_cast<int>(rng.uniform_int(1, 4));
        spec.phase_ticks =
            static_cast<int>(rng.uniform_int(0, spec.period_ticks - 1));
        admitted_this_batch.push_back(spec.id);
      } else {
        // Depart a uniformly random stream admitted in an EARLIER batch,
        // so admit/depart of one id never races within a single epoch.
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        cmd.admit = false;
        cmd.depart_id = live[pick];
        live[pick] = live.back();
        live.pop_back();
      }
      script[static_cast<std::size_t>(b)].push_back(cmd);
    }
    live.insert(live.end(), admitted_this_batch.begin(),
                admitted_this_batch.end());
  }
  return script;
}

struct ChurnResult {
  StatmuxStats stats;
  std::vector<double> rate_series;
  std::vector<StreamSend> sends;  // shard-index order, decision order
  /// Per-stream schedule: every send keyed by stream id, in push order.
  std::map<std::uint32_t, std::vector<core::PictureSend>> schedules;
};

ChurnResult run_script(const Script& script, int shards) {
  StatmuxConfig config;
  config.shards = shards;
  config.threads = shards;
  config.collect_sends = true;
  config.ring_capacity = 4096;
  config.max_streams_per_shard = 100000;  // capacity never rejects here
  config.link_rate_bps = 1e15;            // rate budget never rejects here
  StatmuxService service(config);

  for (const std::vector<ScriptCommand>& batch : script) {
    for (const ScriptCommand& cmd : batch) {
      if (cmd.admit) {
        EXPECT_TRUE(service.admit(cmd.spec)) << "admit " << cmd.spec.id;
      } else {
        EXPECT_TRUE(service.depart(cmd.depart_id))
            << "depart " << cmd.depart_id;
      }
    }
    service.run_epoch();
  }

  ChurnResult result;
  result.stats = service.stats();
  result.rate_series = service.rate_series();
  for (int shard = 0; shard < shards; ++shard) {
    const std::vector<StreamSend>& sends = service.collected_sends(shard);
    result.sends.insert(result.sends.end(), sends.begin(), sends.end());
    for (const StreamSend& send : sends) {
      result.schedules[send.stream].push_back(send.send);
    }
  }
  return result;
}

void expect_same_schedules(const ChurnResult& a, const ChurnResult& b) {
  ASSERT_EQ(a.schedules.size(), b.schedules.size());
  auto ita = a.schedules.begin();
  auto itb = b.schedules.begin();
  for (; ita != a.schedules.end(); ++ita, ++itb) {
    ASSERT_EQ(ita->first, itb->first);
    const std::vector<core::PictureSend>& sa = ita->second;
    const std::vector<core::PictureSend>& sb = itb->second;
    ASSERT_EQ(sa.size(), sb.size()) << "stream " << ita->first;
    for (std::size_t k = 0; k < sa.size(); ++k) {
      ASSERT_EQ(sa[k].index, sb[k].index) << "stream " << ita->first;
      ASSERT_EQ(sa[k].bits, sb[k].bits) << "stream " << ita->first;
      ASSERT_EQ(sa[k].rate, sb[k].rate) << "stream " << ita->first;
      ASSERT_EQ(sa[k].start, sb[k].start) << "stream " << ita->first;
      ASSERT_EQ(sa[k].depart, sb[k].depart) << "stream " << ita->first;
      ASSERT_EQ(sa[k].delay, sb[k].delay) << "stream " << ita->first;
    }
  }
}

void expect_same_stats(const StatmuxStats& a, const StatmuxStats& b) {
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected_duplicate, b.rejected_duplicate);
  EXPECT_EQ(a.rejected_capacity, b.rejected_capacity);
  EXPECT_EQ(a.rejected_rate, b.rejected_rate);
  EXPECT_EQ(a.departed, b.departed);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.pictures, b.pictures);
  EXPECT_EQ(a.decisions, b.decisions);
}

void expect_bitwise(const ChurnResult& a, const ChurnResult& b) {
  expect_same_stats(a.stats, b.stats);
  ASSERT_EQ(a.rate_series.size(), b.rate_series.size());
  for (std::size_t i = 0; i < a.rate_series.size(); ++i) {
    ASSERT_EQ(a.rate_series[i], b.rate_series[i]) << "epoch " << i;
  }
  ASSERT_EQ(a.sends.size(), b.sends.size());
  for (std::size_t i = 0; i < a.sends.size(); ++i) {
    ASSERT_EQ(a.sends[i].stream, b.sends[i].stream) << "send " << i;
    ASSERT_EQ(a.sends[i].send.index, b.sends[i].send.index);
    ASSERT_EQ(a.sends[i].send.rate, b.sends[i].send.rate);
    ASSERT_EQ(a.sends[i].send.start, b.sends[i].send.start);
  }
}

TEST(StatmuxChurn, SchedulesPinnedAcrossShardCounts) {
  const Script script = make_script(0xc0ffee5eedULL);
  const ChurnResult one = run_script(script, 1);
  const ChurnResult four = run_script(script, 4);
  const ChurnResult eight = run_script(script, 8);

  // The soak actually churned: every scripted command was applied, and
  // slot recycling was exercised far past the resident population.
  EXPECT_GT(one.stats.admitted, 40000);
  EXPECT_GT(one.stats.departed, 40000);
  EXPECT_GT(one.stats.pictures, 100000);
  EXPECT_EQ(one.stats.rejected_duplicate, 0);
  EXPECT_EQ(one.stats.rejected_capacity, 0);
  EXPECT_EQ(one.stats.rejected_rate, 0);

  expect_same_stats(one.stats, four.stats);
  expect_same_stats(one.stats, eight.stats);
  expect_same_schedules(one, four);
  expect_same_schedules(one, eight);
}

TEST(StatmuxChurn, SameConfigRepeatsAreBitwiseIdentical) {
  const Script script = make_script(0xc0ffee5eedULL);
  const ChurnResult a = run_script(script, 8);
  const ChurnResult b = run_script(script, 8);
  expect_bitwise(a, b);
}

TEST(StatmuxChurn, DriverThreadCountIsBitwiseInvisible) {
  const Script script = make_script(0xd15ea5e11ULL);
  // Same shard count, different pool widths: the vectorized reduction
  // runs in shard-index order either way, so everything is bitwise equal.
  const auto run_with_threads = [&script](int threads) {
    StatmuxConfig config;
    config.shards = 8;
    config.threads = threads;
    config.collect_sends = true;
    config.ring_capacity = 4096;
    config.max_streams_per_shard = 100000;
    config.link_rate_bps = 1e15;
    StatmuxService service(config);
    ChurnResult result;
    for (const std::vector<ScriptCommand>& batch : script) {
      for (const ScriptCommand& cmd : batch) {
        if (cmd.admit) {
          EXPECT_TRUE(service.admit(cmd.spec));
        } else {
          EXPECT_TRUE(service.depart(cmd.depart_id));
        }
      }
      service.run_epoch();
    }
    result.stats = service.stats();
    result.rate_series = service.rate_series();
    for (int shard = 0; shard < 8; ++shard) {
      const std::vector<StreamSend>& sends = service.collected_sends(shard);
      result.sends.insert(result.sends.end(), sends.begin(), sends.end());
    }
    return result;
  };
  const ChurnResult one = run_with_threads(1);
  const ChurnResult eight = run_with_threads(8);
  expect_bitwise(one, eight);
}

}  // namespace
}  // namespace lsm::net
