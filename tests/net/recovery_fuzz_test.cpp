// Fuzz-style robustness tests: random schedules x random policies x random
// denial plans, all drawn from sim::Rng so every failure is reproducible
// from the seed. Invariants: plan_reservation always covers demand,
// faulted replays never leave a covered span short after a grant, retries
// are bounded (no spinning), and invalid policies throw cleanly.
#include "net/recovery.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/schedule.h"
#include "sim/rng.h"

namespace lsm::net {
namespace {

/// Random piecewise-constant demand r(t): contiguous segments, rates in
/// [0.1, 10] Mb/s, spans in [0.05, 0.8] s.
core::RateSchedule random_schedule(sim::Rng& rng) {
  std::vector<core::RateSegment> segments;
  double t = 0.0;
  const int n = static_cast<int>(rng.uniform_int(3, 20));
  for (int k = 0; k < n; ++k) {
    const double span = rng.uniform(0.05, 0.8);
    segments.push_back(
        core::RateSegment{t, t + span, rng.uniform(0.1e6, 10e6)});
    t += span;
  }
  return core::RateSchedule(std::move(segments));
}

RenegotiationPolicy random_policy(sim::Rng& rng) {
  RenegotiationPolicy policy;
  policy.min_hold = rng.uniform(0.05, 1.5);
  policy.headroom = rng.uniform(1.0, 1.5);
  policy.release_threshold = rng.uniform(0.0, 1.0);
  return policy;
}

RetryPolicy random_retry(sim::Rng& rng) {
  RetryPolicy retry;
  retry.max_retries = static_cast<int>(rng.uniform_int(0, 6));
  retry.base_backoff = rng.uniform(0.01, 0.2);
  retry.backoff_multiplier = rng.uniform(1.0, 3.0);
  retry.max_backoff = retry.base_backoff + rng.uniform(0.0, 1.0);
  return retry;
}

sim::FaultPlan random_denials(sim::Rng& rng, double horizon) {
  std::vector<sim::FaultEvent> events;
  const int n = static_cast<int>(rng.uniform_int(0, 6));
  for (int k = 0; k < n; ++k) {
    sim::FaultEvent event;
    event.cls = sim::FaultClass::kRenegotiationDenial;
    event.start = rng.uniform(0.0, horizon);
    event.duration = rng.uniform(0.05, horizon / 2.0);
    events.push_back(event);
  }
  return sim::FaultPlan(std::move(events));
}

/// Max over combined-breakpoint midpoints of r(t) - R(t).
double max_gap(const core::RateSchedule& demand,
               const core::RateSchedule& reserved, double from, double to) {
  std::vector<double> edges = demand.breakpoints();
  for (const double edge : reserved.breakpoints()) edges.push_back(edge);
  edges.push_back(from);
  edges.push_back(to);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  double gap = 0.0;
  for (std::size_t k = 0; k + 1 < edges.size(); ++k) {
    if (edges[k] < from || edges[k + 1] > to) continue;
    const double mid = 0.5 * (edges[k] + edges[k + 1]);
    gap = std::max(gap, demand.rate_at(mid) - reserved.rate_at(mid));
  }
  return gap;
}

TEST(RecoveryFuzz, PlanReservationAlwaysCoversDemand) {
  sim::Rng rng(1001);
  for (int iteration = 0; iteration < 100; ++iteration) {
    const core::RateSchedule schedule = random_schedule(rng);
    const RenegotiationPolicy policy = random_policy(rng);
    const ReservationResult result = plan_reservation(schedule, policy);
    EXPECT_LE(max_gap(schedule, result.reservation, schedule.start_time(),
                      schedule.end_time()),
              1e-6)
        << "iteration " << iteration;
    EXPECT_GE(result.renegotiations, 0);
  }
}

TEST(RecoveryFuzz, FaultedReplayNeverShortAfterAGrant) {
  sim::Rng rng(2002);
  for (int iteration = 0; iteration < 100; ++iteration) {
    const core::RateSchedule schedule = random_schedule(rng);
    const RenegotiationPolicy policy = random_policy(rng);
    const RetryPolicy retry = random_retry(rng);
    const sim::FaultPlan plan = random_denials(rng, schedule.end_time());
    const FaultedReservationResult result =
        plan_reservation_faulted(schedule, policy, retry, plan);
    // After every honored grant, the reservation covers demand until the
    // next request instant (the end of the grant's ideal segment).
    const ReservationResult ideal_result = plan_reservation(schedule, policy);
    const std::vector<core::RateSegment>& ideal =
        ideal_result.reservation.segments();
    ASSERT_EQ(result.grants.size(), ideal.size());
    for (std::size_t k = 0; k < result.grants.size(); ++k) {
      const GrantRecord& grant = result.grants[k];
      if (grant.gave_up) continue;
      EXPECT_LE(max_gap(schedule, result.reservation, grant.grant_time,
                        ideal[k].end),
                1e-6)
          << "iteration " << iteration << " grant " << k;
    }
  }
}

TEST(RecoveryFuzz, RetriesAreBoundedNoSpinning) {
  sim::Rng rng(3003);
  for (int iteration = 0; iteration < 100; ++iteration) {
    const core::RateSchedule schedule = random_schedule(rng);
    const RenegotiationPolicy policy = random_policy(rng);
    const RetryPolicy retry = random_retry(rng);
    const sim::FaultPlan plan = random_denials(rng, schedule.end_time());
    const FaultedReservationResult result =
        plan_reservation_faulted(schedule, policy, retry, plan);
    const int requests = static_cast<int>(result.grants.size());
    EXPECT_LE(result.retries, requests * retry.max_retries);
    EXPECT_LE(result.denials, requests * (retry.max_retries + 1));
    EXPECT_LE(result.giveups, requests);
    for (const GrantRecord& grant : result.grants) {
      EXPECT_LE(grant.denied_attempts, retry.max_retries + 1);
      EXPECT_GE(grant.grant_time, grant.request_time);
    }
  }
}

TEST(RecoveryFuzz, ZeroDenialReplayMatchesIdealPlanExactly) {
  sim::Rng rng(4004);
  const sim::FaultPlan empty;
  for (int iteration = 0; iteration < 50; ++iteration) {
    const core::RateSchedule schedule = random_schedule(rng);
    const RenegotiationPolicy policy = random_policy(rng);
    const ReservationResult ideal = plan_reservation(schedule, policy);
    const FaultedReservationResult faulted =
        plan_reservation_faulted(schedule, policy, RetryPolicy{}, empty);
    const std::vector<core::RateSegment>& a = ideal.reservation.segments();
    const std::vector<core::RateSegment>& b =
        faulted.reservation.segments();
    ASSERT_EQ(a.size(), b.size()) << "iteration " << iteration;
    for (std::size_t k = 0; k < a.size(); ++k) {
      ASSERT_EQ(a[k].begin, b[k].begin);
      ASSERT_EQ(a[k].end, b[k].end);
      ASSERT_EQ(a[k].rate, b[k].rate);
    }
    EXPECT_EQ(faulted.renegotiations, ideal.renegotiations);
    EXPECT_EQ(faulted.denials, 0);
    EXPECT_EQ(faulted.retries, 0);
    EXPECT_EQ(faulted.giveups, 0);
    EXPECT_DOUBLE_EQ(faulted.over_reservation, ideal.over_reservation);
    EXPECT_DOUBLE_EQ(faulted.max_shortfall, 0.0);
  }
}

TEST(RecoveryFuzz, DeterministicForIdenticalInputs) {
  sim::Rng rng(5005);
  const core::RateSchedule schedule = random_schedule(rng);
  const RenegotiationPolicy policy = random_policy(rng);
  const RetryPolicy retry = random_retry(rng);
  const sim::FaultPlan plan = random_denials(rng, schedule.end_time());
  const FaultedReservationResult a =
      plan_reservation_faulted(schedule, policy, retry, plan);
  const FaultedReservationResult b =
      plan_reservation_faulted(schedule, policy, retry, plan);
  ASSERT_EQ(a.reservation.segments().size(),
            b.reservation.segments().size());
  for (std::size_t k = 0; k < a.reservation.segments().size(); ++k) {
    ASSERT_EQ(a.reservation.segments()[k].rate,
              b.reservation.segments()[k].rate);
  }
  EXPECT_EQ(a.denials, b.denials);
  EXPECT_EQ(a.max_shortfall, b.max_shortfall);
}

TEST(RecoveryFuzz, GiveUpDrawsDownThePriorGrant) {
  // A denial window swallowing a renegotiation with a tiny retry budget:
  // the sender keeps the previous level and the shortfall is reported.
  std::vector<core::RateSegment> demand;
  demand.push_back(core::RateSegment{0.0, 1.0, 1e6});
  demand.push_back(core::RateSegment{1.0, 2.0, 5e6});
  const core::RateSchedule schedule(std::move(demand));
  RenegotiationPolicy policy;
  policy.min_hold = 0.5;
  policy.headroom = 1.0;
  policy.release_threshold = 0.0;
  RetryPolicy retry;
  retry.max_retries = 1;
  retry.base_backoff = 0.05;
  retry.max_backoff = 0.05;
  std::vector<sim::FaultEvent> events;
  sim::FaultEvent denial;
  denial.cls = sim::FaultClass::kRenegotiationDenial;
  denial.start = 0.9;
  denial.duration = 1.5;
  events.push_back(denial);
  const FaultedReservationResult result = plan_reservation_faulted(
      schedule, policy, retry, sim::FaultPlan(std::move(events)));
  EXPECT_GE(result.giveups, 1);
  EXPECT_GT(result.max_shortfall, 0.0);
  // The honored reservation holds the old 1 Mb/s level through the denied
  // span.
  EXPECT_DOUBLE_EQ(result.reservation.rate_at(1.2), 1e6);
}

TEST(RecoveryFuzz, InvalidRetryPoliciesThrowCleanly) {
  const sim::FaultPlan empty;
  std::vector<core::RateSegment> demand;
  demand.push_back(core::RateSegment{0.0, 1.0, 1e6});
  const core::RateSchedule schedule(std::move(demand));
  const RenegotiationPolicy policy;
  RetryPolicy retry;
  retry.max_retries = -1;
  EXPECT_THROW(plan_reservation_faulted(schedule, policy, retry, empty),
               std::invalid_argument);
  retry = RetryPolicy{};
  retry.base_backoff = 0.0;
  EXPECT_THROW(plan_reservation_faulted(schedule, policy, retry, empty),
               std::invalid_argument);
  retry = RetryPolicy{};
  retry.backoff_multiplier = 0.5;
  EXPECT_THROW(plan_reservation_faulted(schedule, policy, retry, empty),
               std::invalid_argument);
  retry = RetryPolicy{};
  retry.max_backoff = retry.base_backoff / 2.0;
  EXPECT_THROW(plan_reservation_faulted(schedule, policy, retry, empty),
               std::invalid_argument);
}

TEST(RecoveryFuzz, InvalidRecoveryPolicyThrows) {
  RecoveryPolicy policy;
  policy.relax_factor = 0.5;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy = RecoveryPolicy{};
  policy.retry.max_retries = -3;
  EXPECT_THROW(policy.validate(), std::invalid_argument);
  policy = RecoveryPolicy{};
  EXPECT_NO_THROW(policy.validate());
}

TEST(RecoveryFuzz, RandomInvalidRenegotiationPoliciesThrow) {
  sim::Rng rng(6006);
  std::vector<core::RateSegment> demand;
  demand.push_back(core::RateSegment{0.0, 1.0, 1e6});
  const core::RateSchedule schedule(std::move(demand));
  for (int iteration = 0; iteration < 50; ++iteration) {
    RenegotiationPolicy policy = random_policy(rng);
    switch (rng.uniform_int(0, 2)) {
      case 0: policy.min_hold = -rng.uniform(0.0, 1.0); break;
      case 1: policy.headroom = rng.uniform(0.0, 0.99); break;
      default: policy.release_threshold = 1.0 + rng.uniform(0.01, 1.0);
    }
    EXPECT_THROW(plan_reservation(schedule, policy), std::invalid_argument);
    EXPECT_THROW(plan_reservation_faulted(schedule, policy, RetryPolicy{},
                                          sim::FaultPlan{}),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace lsm::net
