#include "net/token_bucket.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/smoother.h"
#include "trace/sequences.h"

namespace lsm::net {
namespace {

TEST(MinBucketDepth, ConstantRateBelowRhoNeedsNoDepth) {
  const core::RateSchedule s({core::RateSegment{0.0, 10.0, 100.0}});
  EXPECT_DOUBLE_EQ(min_bucket_depth(s, 150.0), 0.0);
  EXPECT_DOUBLE_EQ(min_bucket_depth(s, 100.0), 0.0);
}

TEST(MinBucketDepth, HandComputedBurst) {
  // 1000 b/s for 2 s then silence; rho = 600: backlog peaks at 800 bits.
  const core::RateSchedule s({core::RateSegment{0.0, 2.0, 1000.0}});
  EXPECT_NEAR(min_bucket_depth(s, 600.0), 800.0, 1e-9);
}

TEST(MinBucketDepth, GapsDrainTheBucket) {
  // Two bursts separated by an idle second.
  const core::RateSchedule s({core::RateSegment{0.0, 1.0, 1000.0},
                              core::RateSegment{2.0, 3.0, 1000.0}});
  // rho = 600: each burst alone peaks at 400; the 1 s gap drains 600 > 400,
  // so the peaks do not accumulate.
  EXPECT_NEAR(min_bucket_depth(s, 600.0), 400.0, 1e-9);
  // rho = 450: burst peak 550, gap drains 450, second burst adds 550 on a
  // 100-bit remainder -> 650.
  EXPECT_NEAR(min_bucket_depth(s, 450.0), 650.0, 1e-9);
}

TEST(MinBucketDepth, MonotoneDecreasingInRho) {
  const auto t = lsm::trace::driving1();
  core::SmootherParams params;
  params.tau = t.tau();
  const core::RateSchedule s = core::smooth_basic(t, params).schedule();
  double previous = 1e18;
  for (double rho = 0.5e6; rho <= 4e6; rho += 0.5e6) {
    const double sigma = min_bucket_depth(s, rho);
    EXPECT_LE(sigma, previous + 1e-6);
    previous = sigma;
  }
}

TEST(MinBucketDepth, SmoothingShrinksTheCurve) {
  const auto t = lsm::trace::driving1();
  core::SmootherParams params;
  params.tau = t.tau();
  params.D = 0.2;
  params.H = 9;
  // Raw stream: each picture at its own per-period rate.
  std::vector<core::RateSegment> raw_segments;
  for (int i = 1; i <= t.picture_count(); ++i) {
    raw_segments.push_back(core::RateSegment{
        (i - 1) * t.tau(), i * t.tau(),
        static_cast<double>(t.size_of(i)) / t.tau()});
  }
  const core::RateSchedule raw(std::move(raw_segments));
  const core::RateSchedule smooth = core::smooth_basic(t, params).schedule();
  const double rho = t.mean_rate() * 1.5;
  EXPECT_LT(min_bucket_depth(smooth, rho),
            0.5 * min_bucket_depth(raw, rho));
}

TEST(MinBucketDepth, RejectsBadRho) {
  const core::RateSchedule s({core::RateSegment{0.0, 1.0, 1.0}});
  EXPECT_THROW(min_bucket_depth(s, 0.0), std::invalid_argument);
}

TEST(BurstinessCurve, SamplesEveryRho) {
  const core::RateSchedule s({core::RateSegment{0.0, 2.0, 1000.0}});
  const auto curve = burstiness_curve(s, {400.0, 600.0, 1200.0});
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_NEAR(curve[0].sigma, 1200.0, 1e-9);
  EXPECT_NEAR(curve[1].sigma, 800.0, 1e-9);
  EXPECT_DOUBLE_EQ(curve[2].sigma, 0.0);
}

TEST(TokenBucket, ConformingStreamPasses) {
  TokenBucket bucket(1000.0, 500.0);
  EXPECT_TRUE(bucket.consume(0.0, 800.0));
  // 0.4 s refills 200 -> 400 available.
  EXPECT_TRUE(bucket.consume(0.4, 400.0));
  EXPECT_FALSE(bucket.consume(0.4, 1.0));
}

TEST(TokenBucket, RefillsCapAtSigma) {
  TokenBucket bucket(100.0, 1000.0);
  EXPECT_TRUE(bucket.consume(0.0, 100.0));
  // 10 s would refill 10000, capped at 100.
  EXPECT_FALSE(bucket.consume(10.0, 101.0));
  EXPECT_TRUE(bucket.consume(10.0, 100.0));
}

TEST(TokenBucket, RejectsTimeTravel) {
  TokenBucket bucket(100.0, 10.0);
  EXPECT_TRUE(bucket.consume(5.0, 1.0));
  EXPECT_THROW(bucket.consume(4.0, 1.0), std::invalid_argument);
}

TEST(TokenBucket, ScheduleConformsToItsMeasuredDepth) {
  // Property: feeding a schedule's own cells through a bucket sized by
  // min_bucket_depth at the same rho never rejects.
  const auto t = lsm::trace::backyard();
  core::SmootherParams params;
  params.tau = t.tau();
  params.H = 12;
  const core::SmoothingResult result = core::smooth_basic(t, params);
  const core::RateSchedule schedule = result.schedule();
  const double rho = t.mean_rate() * 1.2;
  const double sigma = min_bucket_depth(schedule, rho);
  // Feed the fluid schedule in small steps. Discretization front-loads each
  // step's bits, so allow one step of slack on top of the measured depth.
  const double step = 1e-3;
  TokenBucket bucket(sigma + schedule.max_rate() * step, rho);
  for (double at = schedule.start_time(); at < schedule.end_time();
       at += step) {
    const double bits = schedule.rate_at(at + 0.5 * step) * step;
    ASSERT_TRUE(bucket.consume(at, bits)) << "time " << at;
  }
}

}  // namespace
}  // namespace lsm::net
