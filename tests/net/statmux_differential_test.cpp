// StatmuxDifferential: the sharded multiplexer's determinism gate. The
// same admission workload must produce bitwise-identical schedules,
// aggregate rate series, and deterministic trace bytes for 1 vs N pool
// threads, for racing vs sequential (vs reversed) admission interleavings,
// and across repeated runs. CI runs this suite several times with
// --schedule-random under ThreadSanitizer: any shard-state race or
// order-dependent double sum shows up as a byte diff or a TSan report.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "net/statmux.h"
#include "obs/trace_io.h"
#include "obs/tracer.h"

namespace lsm::net {
namespace {

StreamSpec spec_for(std::uint32_t id) {
  StreamSpec spec;
  spec.id = id;
  spec.gop_n = 9;
  spec.gop_m = 3;
  spec.params.tau = 1.0 / 30.0;
  spec.params.D = 0.2;
  spec.params.H = spec.gop_n;
  spec.feed_seed = 0x5eed0000 + id;
  spec.picture_count = 20 + static_cast<int>(id % 13);
  spec.period_ticks = 1 + static_cast<int>(id % 3);
  spec.phase_ticks = static_cast<int>(id % 5);
  return spec;
}

constexpr int kStreams = 64;
constexpr int kShards = 8;
constexpr int kEpochs = 90;  // past the longest sequence at period 3

/// One run's complete observable output in comparable form.
struct RunResult {
  std::vector<double> rate_series;
  std::vector<StreamSend> sends;  // shard-index order, decision order
  std::string trace_bytes;        // canonical deterministic trace
};

/// Runs the standard workload: half the streams admitted up front (in the
/// order `admit_order` yields them, possibly from racing threads), the
/// rest staged from the epoch driver mid-run, plus a couple of mid-run
/// departures.
RunResult run_workload(int threads,
                       const std::vector<std::uint32_t>& upfront,
                       int admit_threads) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);

  StatmuxConfig config;
  config.shards = kShards;
  config.threads = threads;
  config.collect_sends = true;
  config.link_rate_bps = 1e12;
  StatmuxService service(config);

  if (admit_threads <= 1) {
    for (std::uint32_t id : upfront) {
      EXPECT_TRUE(service.admit(spec_for(id)));
    }
  } else {
    // Racing producers: the ring interleaving is nondeterministic, the
    // canonical per-epoch sort must erase it.
    std::vector<std::thread> admitters;
    for (int t = 0; t < admit_threads; ++t) {
      admitters.emplace_back([&service, &upfront, t, admit_threads] {
        for (std::size_t k = static_cast<std::size_t>(t);
             k < upfront.size(); k += static_cast<std::size_t>(admit_threads)) {
          while (!service.admit(spec_for(upfront[k]))) {
            std::this_thread::yield();
          }
        }
      });
    }
    for (std::thread& t : admitters) t.join();
  }

  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    if (epoch == 10) {
      // Staged admissions and departures from the driver, delivered at a
      // fixed epoch: part of the deterministic workload.
      for (std::uint32_t id = kStreams / 2 + 1; id <= kStreams; ++id) {
        EXPECT_TRUE(service.admit(spec_for(id)));
      }
      EXPECT_TRUE(service.depart(3));
      EXPECT_TRUE(service.depart(11));
    }
    service.run_epoch();
  }

  tracer.set_enabled(false);
  RunResult result;
  result.rate_series = service.rate_series();
  for (int shard = 0; shard < kShards; ++shard) {
    const std::vector<StreamSend>& sends = service.collected_sends(shard);
    result.sends.insert(result.sends.end(), sends.begin(), sends.end());
  }
  std::vector<obs::TraceEvent> events =
      obs::deterministic_events(tracer.drain());
  obs::canonical_sort(events);
  result.trace_bytes = obs::serialize(events);
  return result;
}

std::vector<std::uint32_t> first_half_ids() {
  std::vector<std::uint32_t> ids;
  for (std::uint32_t id = 1; id <= kStreams / 2; ++id) ids.push_back(id);
  return ids;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.rate_series.size(), b.rate_series.size());
  for (std::size_t i = 0; i < a.rate_series.size(); ++i) {
    ASSERT_EQ(a.rate_series[i], b.rate_series[i]) << "epoch " << i;
  }
  ASSERT_EQ(a.sends.size(), b.sends.size());
  for (std::size_t i = 0; i < a.sends.size(); ++i) {
    ASSERT_EQ(a.sends[i].stream, b.sends[i].stream) << "send " << i;
    ASSERT_EQ(a.sends[i].send.index, b.sends[i].send.index);
    ASSERT_EQ(a.sends[i].send.bits, b.sends[i].send.bits);
    ASSERT_EQ(a.sends[i].send.rate, b.sends[i].send.rate);
    ASSERT_EQ(a.sends[i].send.start, b.sends[i].send.start);
    ASSERT_EQ(a.sends[i].send.depart, b.sends[i].send.depart);
    ASSERT_EQ(a.sends[i].send.delay, b.sends[i].send.delay);
  }
  ASSERT_FALSE(a.trace_bytes.empty());
  EXPECT_EQ(a.trace_bytes.size(), b.trace_bytes.size());
  EXPECT_TRUE(a.trace_bytes == b.trace_bytes)
      << "deterministic trace bytes diverge";
}

TEST(StatmuxDifferential, OneThreadMatchesManyThreadsBitwise) {
  const std::vector<std::uint32_t> ids = first_half_ids();
  const RunResult one = run_workload(/*threads=*/1, ids, /*admit_threads=*/1);
  const RunResult four =
      run_workload(/*threads=*/4, ids, /*admit_threads=*/1);
  expect_identical(one, four);
}

TEST(StatmuxDifferential, AdmissionInterleavingDoesNotChangeResults) {
  std::vector<std::uint32_t> forward = first_half_ids();
  std::vector<std::uint32_t> reversed(forward.rbegin(), forward.rend());
  const RunResult ordered =
      run_workload(/*threads=*/4, forward, /*admit_threads=*/1);
  const RunResult reversed_order =
      run_workload(/*threads=*/4, reversed, /*admit_threads=*/1);
  expect_identical(ordered, reversed_order);
  // Racing admitters: same command multiset, arbitrary ring interleaving.
  const RunResult raced =
      run_workload(/*threads=*/4, forward, /*admit_threads=*/4);
  expect_identical(ordered, raced);
}

TEST(StatmuxDifferential, RepeatedRunsAreBitwiseIdentical) {
  const std::vector<std::uint32_t> ids = first_half_ids();
  const RunResult a = run_workload(/*threads=*/4, ids, /*admit_threads=*/1);
  const RunResult b = run_workload(/*threads=*/4, ids, /*admit_threads=*/1);
  expect_identical(a, b);
}

/// Same workload as run_workload, but the epochs are driven through
/// run_epochs() batches instead of one run_epoch() per loop iteration.
/// The batched driver must be bitwise-invisible: commands enqueued before
/// a batch apply at its first epoch, exactly like the per-epoch driver.
RunResult run_workload_batched(int threads,
                               const std::vector<std::uint32_t>& upfront) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);

  StatmuxConfig config;
  config.shards = kShards;
  config.threads = threads;
  config.collect_sends = true;
  config.link_rate_bps = 1e12;
  StatmuxService service(config);

  for (std::uint32_t id : upfront) {
    EXPECT_TRUE(service.admit(spec_for(id)));
  }
  service.run_epochs(10);
  for (std::uint32_t id = kStreams / 2 + 1; id <= kStreams; ++id) {
    EXPECT_TRUE(service.admit(spec_for(id)));
  }
  EXPECT_TRUE(service.depart(3));
  EXPECT_TRUE(service.depart(11));
  service.run_epochs(kEpochs - 10);

  tracer.set_enabled(false);
  RunResult result;
  result.rate_series = service.rate_series();
  for (int shard = 0; shard < kShards; ++shard) {
    const std::vector<StreamSend>& sends = service.collected_sends(shard);
    result.sends.insert(result.sends.end(), sends.begin(), sends.end());
  }
  std::vector<obs::TraceEvent> events =
      obs::deterministic_events(tracer.drain());
  obs::canonical_sort(events);
  result.trace_bytes = obs::serialize(events);
  return result;
}

TEST(StatmuxDifferential, BatchedEpochsMatchPerEpochBitwise) {
  const std::vector<std::uint32_t> ids = first_half_ids();
  const RunResult single =
      run_workload(/*threads=*/4, ids, /*admit_threads=*/1);
  const RunResult batched = run_workload_batched(/*threads=*/4, ids);
  expect_identical(single, batched);
  const RunResult batched_one = run_workload_batched(/*threads=*/1, ids);
  expect_identical(single, batched_one);
}

/// Sparse cadences past the timing wheel's level-0 span (256 ticks): every
/// re-arm lands in level 1 and must cascade back down to the right tick.
RunResult run_sparse_workload(int threads) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);

  StatmuxConfig config;
  config.shards = kShards;
  config.threads = threads;
  config.collect_sends = true;
  config.link_rate_bps = 1e12;
  StatmuxService service(config);

  for (std::uint32_t id = 1; id <= 24; ++id) {
    StreamSpec spec = spec_for(id);
    spec.picture_count = 4;
    spec.period_ticks = 300 + static_cast<int>(id % 7) * 60;  // 300..660
    spec.phase_ticks = static_cast<int>(id % 11) * 23;
    EXPECT_TRUE(service.admit(spec));
  }
  service.run_epochs(4 * 700 + 64);  // past the slowest stream's last send
  EXPECT_EQ(service.active_streams(), 0);

  tracer.set_enabled(false);
  RunResult result;
  result.rate_series = service.rate_series();
  for (int shard = 0; shard < kShards; ++shard) {
    const std::vector<StreamSend>& sends = service.collected_sends(shard);
    result.sends.insert(result.sends.end(), sends.begin(), sends.end());
  }
  std::vector<obs::TraceEvent> events =
      obs::deterministic_events(tracer.drain());
  obs::canonical_sort(events);
  result.trace_bytes = obs::serialize(events);
  return result;
}

TEST(StatmuxDifferential, WheelCascadePeriodsStayDeterministic) {
  const RunResult one = run_sparse_workload(/*threads=*/1);
  const RunResult four = run_sparse_workload(/*threads=*/4);
  expect_identical(one, four);
  // Every stream scheduled all of its pictures despite the long re-arm
  // distances: 24 streams x 4 pictures.
  EXPECT_EQ(one.sends.size(), 24u * 4u);
}

}  // namespace
}  // namespace lsm::net
