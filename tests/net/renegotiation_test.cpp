#include "net/renegotiation.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/smoother.h"
#include "trace/sequences.h"

namespace lsm::net {
namespace {

using lsm::trace::Trace;

core::RateSchedule smoothed_schedule(const Trace& trace, double D = 0.2) {
  core::SmootherParams params;
  params.tau = trace.tau();
  params.D = D;
  params.H = trace.pattern().N();
  return core::smooth_basic(trace, params).schedule();
}

core::RateSchedule raw_schedule(const Trace& trace) {
  std::vector<core::RateSegment> segments;
  for (int i = 1; i <= trace.picture_count(); ++i) {
    segments.push_back(core::RateSegment{
        (i - 1) * trace.tau(), i * trace.tau(),
        static_cast<double>(trace.size_of(i)) / trace.tau()});
  }
  return core::RateSchedule(std::move(segments));
}

TEST(Renegotiation, ReservationAlwaysCoversDemand) {
  const Trace t = lsm::trace::driving1();
  for (const core::RateSchedule& schedule :
       {smoothed_schedule(t), raw_schedule(t)}) {
    const ReservationResult planned =
        plan_reservation(schedule, RenegotiationPolicy{});
    // Check at every demand breakpoint midpoint.
    const auto points = schedule.breakpoints();
    for (std::size_t k = 0; k + 1 < points.size(); ++k) {
      const double mid = 0.5 * (points[k] + points[k + 1]);
      ASSERT_GE(planned.reservation.rate_at(mid) + 1e-6,
                schedule.rate_at(mid))
          << "t=" << mid;
    }
  }
}

TEST(Renegotiation, HoldTimeIsRespected) {
  const Trace t = lsm::trace::tennis();
  RenegotiationPolicy policy;
  policy.min_hold = 0.75;
  const ReservationResult planned =
      plan_reservation(smoothed_schedule(t), policy);
  const auto& segments = planned.reservation.segments();
  for (std::size_t k = 0; k + 1 < segments.size(); ++k) {
    // Every reservation level is held at least min_hold (merged segments
    // can only be longer).
    EXPECT_GE(segments[k].end - segments[k].begin, policy.min_hold - 1e-9);
  }
}

TEST(Renegotiation, LongerHoldMeansFewerRenegotiations) {
  const Trace t = lsm::trace::driving1();
  const core::RateSchedule schedule = smoothed_schedule(t);
  RenegotiationPolicy fast;
  fast.min_hold = 0.1;
  RenegotiationPolicy slow;
  slow.min_hold = 2.0;
  EXPECT_GE(plan_reservation(schedule, fast).renegotiations,
            plan_reservation(schedule, slow).renegotiations);
}

TEST(Renegotiation, SmoothedStreamIsCheaperToCarry) {
  // The practical meaning of the paper's "number of rate changes" measure:
  // at equal hold time, the smoothed stream needs fewer renegotiations AND
  // wastes less reserved capacity than the raw VBR stream.
  const Trace t = lsm::trace::driving1();
  const ReservationResult raw =
      plan_reservation(raw_schedule(t), RenegotiationPolicy{});
  const ReservationResult smooth =
      plan_reservation(smoothed_schedule(t), RenegotiationPolicy{});
  EXPECT_LT(smooth.over_reservation, 0.7 * raw.over_reservation);
  EXPECT_LE(smooth.peak_reserved, raw.peak_reserved);
}

TEST(Renegotiation, ConstantDemandNeedsOneReservation) {
  const core::RateSchedule schedule(
      {core::RateSegment{0.0, 10.0, 1e6}});
  const ReservationResult planned =
      plan_reservation(schedule, RenegotiationPolicy{});
  EXPECT_EQ(planned.renegotiations, 0);
  EXPECT_NEAR(planned.peak_reserved, 1.02e6, 1.0);
  EXPECT_NEAR(planned.over_reservation, 0.02, 1e-6);
}

TEST(Renegotiation, ReleaseThresholdTriggersDownNegotiation) {
  // High plateau then low plateau: with releases enabled the reservation
  // steps down; with releases disabled it stays up.
  const core::RateSchedule schedule({core::RateSegment{0.0, 2.0, 1e6},
                                     core::RateSegment{2.0, 10.0, 1e5}});
  RenegotiationPolicy with_release;
  RenegotiationPolicy no_release;
  no_release.release_threshold = 0.0;
  const ReservationResult released =
      plan_reservation(schedule, with_release);
  const ReservationResult held = plan_reservation(schedule, no_release);
  EXPECT_LT(released.over_reservation, held.over_reservation);
  EXPECT_GE(released.renegotiations, 1);
  EXPECT_EQ(held.renegotiations, 0);
}

TEST(Renegotiation, RejectsBadInputs) {
  EXPECT_THROW(plan_reservation(core::RateSchedule{}, RenegotiationPolicy{}),
               std::invalid_argument);
  const core::RateSchedule schedule({core::RateSegment{0.0, 1.0, 1.0}});
  RenegotiationPolicy bad;
  bad.min_hold = 0.0;
  EXPECT_THROW(plan_reservation(schedule, bad), std::invalid_argument);
  bad = RenegotiationPolicy{};
  bad.headroom = 0.9;
  EXPECT_THROW(plan_reservation(schedule, bad), std::invalid_argument);
}

}  // namespace
}  // namespace lsm::net
