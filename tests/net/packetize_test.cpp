#include "net/packetize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/smoother.h"
#include "trace/sequences.h"

namespace lsm::net {
namespace {

using lsm::trace::GopPattern;
using lsm::trace::Trace;

TEST(Packetize, CellCountMatchesBits) {
  const Trace t("t", GopPattern(1, 1), {1000, 384, 385}, 0.1);
  const std::vector<Cell> cells = packetize_unsmoothed(t);
  // ceil(1000/384) + ceil(384/384) + ceil(385/384) = 3 + 1 + 2.
  EXPECT_EQ(cells.size(), 6u);
}

TEST(Packetize, UnsmoothedCellsStayInsideTheirPicturePeriod) {
  const Trace t = lsm::trace::backyard();
  const std::vector<Cell> cells = packetize_unsmoothed(t);
  for (const Cell& cell : cells) {
    const double begin = (cell.picture - 1) * t.tau();
    ASSERT_GT(cell.time, begin);
    ASSERT_LE(cell.time, begin + t.tau() + 1e-9);
  }
}

TEST(Packetize, SmoothedCellsFollowTheSchedule) {
  const Trace t = lsm::trace::backyard();
  core::SmootherParams params;
  params.tau = t.tau();
  params.H = 12;
  const core::SmoothingResult result = core::smooth_basic(t, params);
  const std::vector<Cell> cells = packetize(result);
  std::size_t k = 0;
  for (const core::PictureSend& send : result.sends) {
    const auto count = static_cast<std::size_t>(
        (send.bits + kCellPayloadBits - 1) / kCellPayloadBits);
    for (std::size_t c = 0; c < count; ++c, ++k) {
      ASSERT_LT(k, cells.size());
      ASSERT_EQ(cells[k].picture, send.index);
      ASSERT_GT(cells[k].time, send.start);
      ASSERT_LE(cells[k].time, send.depart + 1e-9);
    }
  }
  EXPECT_EQ(k, cells.size());
}

TEST(Packetize, CellTimesAreNonDecreasing) {
  const Trace t = lsm::trace::driving1();
  core::SmootherParams params;
  params.tau = t.tau();
  const std::vector<Cell> cells = packetize(core::smooth_basic(t, params));
  for (std::size_t k = 1; k < cells.size(); ++k) {
    ASSERT_GE(cells[k].time, cells[k - 1].time - 1e-12);
  }
}

TEST(Packetize, TotalPayloadCoversTraceBits) {
  const Trace t = lsm::trace::backyard();
  const std::vector<Cell> cells = packetize_unsmoothed(t);
  const auto payload_bits =
      static_cast<std::int64_t>(cells.size()) * kCellPayloadBits;
  EXPECT_GE(payload_bits, t.total_bits());
  // Padding waste is below one cell per picture.
  EXPECT_LT(payload_bits - t.total_bits(),
            static_cast<std::int64_t>(t.picture_count()) * kCellPayloadBits);
}

TEST(Packetize, ShiftMovesAllCells) {
  const Trace t("t", GopPattern(1, 1), {1000}, 0.1);
  std::vector<Cell> cells = packetize_unsmoothed(t);
  const double first = cells.front().time;
  shift_cells(cells, 2.5);
  EXPECT_DOUBLE_EQ(cells.front().time, first + 2.5);
}

TEST(Packetize, SourceTagPropagates) {
  const Trace t("t", GopPattern(1, 1), {1000}, 0.1);
  const std::vector<Cell> cells = packetize_unsmoothed(t, 7);
  for (const Cell& cell : cells) EXPECT_EQ(cell.source, 7);
}

}  // namespace
}  // namespace lsm::net
