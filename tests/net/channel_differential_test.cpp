// Channel-model differential gates:
//  1. An empty / zero-intensity ChannelPlan must leave run_faulted_pipeline
//     bitwise equal to run_live_pipeline — schedules, report fields, and
//     canonical trace bytes — on both ExecutionPaths (enforced in CI under
//     ASan and TSan, like the FaultPlan zero-intensity gate).
//  2. A channel fade must be indistinguishable from the equivalent
//     FaultPlan fade window (the min-rule composition collapses to the
//     single active factor), and real fading must surface in the channel
//     counters.
#include "net/transport.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/trace_io.h"
#include "obs/tracer.h"
#include "sim/channel.h"
#include "trace/sequences.h"

namespace lsm::net {
namespace {

using lsm::trace::Trace;

PipelineConfig default_config(const Trace& trace) {
  PipelineConfig config;
  config.params.tau = trace.tau();
  config.params.D = 0.2;
  config.params.K = 1;
  config.params.H = trace.pattern().N();
  config.network_latency = 0.010;
  return config;
}

void expect_bitwise_equal(const PipelineReport& faulted,
                          const PipelineReport& base, const char* label) {
  EXPECT_EQ(faulted.underflows, base.underflows) << label;
  EXPECT_EQ(faulted.max_sender_delay, base.max_sender_delay) << label;
  EXPECT_EQ(faulted.worst_delay_excess, base.worst_delay_excess) << label;
  EXPECT_EQ(faulted.playout_offset, base.playout_offset) << label;
  ASSERT_EQ(faulted.deliveries.size(), base.deliveries.size()) << label;
  for (std::size_t k = 0; k < base.deliveries.size(); ++k) {
    const PictureDelivery& f = faulted.deliveries[k];
    const PictureDelivery& b = base.deliveries[k];
    ASSERT_EQ(f.index, b.index) << label;
    ASSERT_EQ(f.sender_start, b.sender_start) << label;
    ASSERT_EQ(f.sender_done, b.sender_done) << label;
    ASSERT_EQ(f.received, b.received) << label;
    ASSERT_EQ(f.deadline, b.deadline) << label;
    ASSERT_EQ(f.late, b.late) << label;
  }
}

sim::ChannelPlan zero_intensity_plan() {
  sim::MarkovChannelSpec spec =
      sim::MarkovChannelSpec::gilbert_elliott(0.1, 0.3, 0.4);
  spec.intensity = 0.0;
  return sim::ChannelPlan::generate(spec);
}

TEST(ChannelDifferential, ZeroIntensityChannelMatchesBasePipelineBitwise) {
  const sim::ChannelPlan channel = zero_intensity_plan();
  ASSERT_TRUE(channel.empty());
  for (const Trace& t : lsm::trace::paper_sequences()) {
    for (const core::ExecutionPath path :
         {core::ExecutionPath::kAuto, core::ExecutionPath::kReference}) {
      PipelineConfig config = default_config(t);
      config.jitter = 0.015;
      config.execution_path = path;
      const PipelineReport base = run_live_pipeline(t, config);
      FaultedPipelineConfig faulted_config;
      faulted_config.base = config;
      faulted_config.channel = channel;
      const FaultedPipelineReport faulted =
          run_faulted_pipeline(t, faulted_config, sim::FaultPlan());
      expect_bitwise_equal(faulted.report, base, t.name().c_str());
      EXPECT_FALSE(faulted.degradation.any_fault()) << t.name();
      EXPECT_EQ(faulted.degradation.channel_transitions, 0u) << t.name();
      EXPECT_EQ(faulted.degradation.pictures_channel_faded, 0u) << t.name();
      EXPECT_EQ(faulted.degradation.outage_denials, 0u) << t.name();
    }
  }
}

TEST(ChannelDifferential, ZeroIntensityChannelTraceBytesMatchBasePipeline) {
  const Trace t = lsm::trace::driving1();
  const PipelineConfig config = default_config(t);
  obs::Tracer& tracer = obs::Tracer::global();

  tracer.clear();
  tracer.set_enabled(true);
  run_live_pipeline(t, config);
  tracer.set_enabled(false);
  std::vector<obs::TraceEvent> base_events =
      obs::deterministic_events(tracer.drain());
  obs::canonical_sort(base_events);
  const std::string base_bytes = obs::serialize(base_events);

  FaultedPipelineConfig faulted_config;
  faulted_config.base = config;
  faulted_config.channel = zero_intensity_plan();
  tracer.clear();
  tracer.set_enabled(true);
  run_faulted_pipeline(t, faulted_config, sim::FaultPlan());
  tracer.set_enabled(false);
  std::vector<obs::TraceEvent> faulted_events =
      obs::deterministic_events(tracer.drain());
  obs::canonical_sort(faulted_events);
  const std::string faulted_bytes = obs::serialize(faulted_events);

  ASSERT_FALSE(base_bytes.empty());
  EXPECT_TRUE(base_bytes == faulted_bytes)
      << "ideal channel perturbs the canonical trace bytes";
}

TEST(ChannelDifferential, ChannelFadeEqualsEquivalentFaultPlanFade) {
  // One bad-state sojourn [1, 3) at factor 0.5 must degrade delivery
  // exactly like a FaultPlan fade window of the same span and magnitude.
  const Trace t = lsm::trace::tennis();
  const PipelineConfig base_config = default_config(t);

  std::vector<sim::ChannelSegment> segments(2);
  segments[0].start = 0.0;
  segments[0].duration = 1.0;
  segments[0].state = 0;
  segments[0].factor = 1.0;
  segments[1].start = 1.0;
  segments[1].duration = 2.0;
  segments[1].state = 1;
  segments[1].factor = 0.5;
  FaultedPipelineConfig channel_config;
  channel_config.base = base_config;
  channel_config.channel = sim::ChannelPlan(std::move(segments));
  const FaultedPipelineReport via_channel =
      run_faulted_pipeline(t, channel_config, sim::FaultPlan());

  sim::FaultEvent fade;
  fade.cls = sim::FaultClass::kChannelFade;
  fade.start = 1.0;
  fade.duration = 2.0;
  fade.magnitude = 0.5;
  FaultedPipelineConfig fault_config;
  fault_config.base = base_config;
  const FaultedPipelineReport via_fault = run_faulted_pipeline(
      t, fault_config, sim::FaultPlan(std::vector<sim::FaultEvent>{fade}));

  expect_bitwise_equal(via_channel.report, via_fault.report, t.name().c_str());
  EXPECT_GT(via_channel.degradation.pictures_channel_faded, 0u);
  EXPECT_EQ(via_channel.degradation.channel_transitions, 1u);
}

TEST(ChannelDifferential, GeneratedChannelDegradesAndCountsTransitions) {
  sim::MarkovChannelSpec spec =
      sim::MarkovChannelSpec::gilbert_elliott(0.3, 0.3, 0.2);
  spec.horizon = 8.0;
  spec.seed = 5;
  const sim::ChannelPlan channel = sim::ChannelPlan::generate(spec);
  ASSERT_FALSE(channel.empty());
  const Trace t = lsm::trace::backyard();
  const PipelineConfig base_config = default_config(t);
  const PipelineReport base = run_live_pipeline(t, base_config);
  FaultedPipelineConfig config;
  config.base = base_config;
  config.channel = channel;
  const FaultedPipelineReport faulted =
      run_faulted_pipeline(t, config, sim::FaultPlan());
  EXPECT_EQ(faulted.degradation.channel_transitions,
            static_cast<std::uint64_t>(channel.transition_count()));
  EXPECT_GT(faulted.degradation.pictures_channel_faded, 0u);
  EXPECT_GE(faulted.report.max_sender_delay, base.max_sender_delay);
  // Determinism: the same (trace, config, plan, channel) run twice is
  // bitwise identical.
  const FaultedPipelineReport again =
      run_faulted_pipeline(t, config, sim::FaultPlan());
  expect_bitwise_equal(again.report, faulted.report, t.name().c_str());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ChannelDifferential, OutageThresholdDeniesRenegotiationsAndTriggers) {
  // A deep outage below the threshold refuses renegotiation signalling
  // (tallied as outage_denials) and fires the channel_outage
  // flight-recorder trigger.
  std::vector<sim::ChannelSegment> segments(2);
  segments[0].start = 0.0;
  segments[0].duration = 0.5;
  segments[0].state = 0;
  segments[0].factor = 1.0;
  segments[1].start = 0.5;
  segments[1].duration = 6.0;
  segments[1].state = 1;
  segments[1].factor = 0.05;
  const sim::ChannelPlan channel(std::move(segments));
  const Trace t = lsm::trace::driving2();
  FaultedPipelineConfig config;
  config.base = default_config(t);
  config.channel = channel;
  config.channel_outage_threshold = 0.10;

  const std::string path =
      std::string(::testing::TempDir()) + "channel_outage_dump.txt";
  std::remove(path.c_str());
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.set_dump_path(path);
  recorder.arm(64);
  const FaultedPipelineReport faulted =
      run_faulted_pipeline(t, config, sim::FaultPlan());
  EXPECT_GT(faulted.degradation.outage_denials, 0u);
  EXPECT_GE(recorder.dump_count(), 1u);
  recorder.disarm();
  obs::Tracer::global().set_enabled(false);
  obs::Tracer::global().clear();
  EXPECT_NE(slurp(path).find("channel_outage"), std::string::npos);
  std::remove(path.c_str());

  // Threshold 0 disables the coupling: no denials from the same outage.
  config.channel_outage_threshold = 0.0;
  const FaultedPipelineReport open =
      run_faulted_pipeline(t, config, sim::FaultPlan());
  EXPECT_EQ(open.degradation.outage_denials, 0u);
}

}  // namespace
}  // namespace lsm::net
