// StatmuxHealth: the health plane's determinism gate. A seeded
// admit/depart script (the StatmuxChurn recipe, sized down) is replayed
// against shard counts 1, 4, and 8 and driver pools of 1 vs 8 threads;
// the canonical health snapshot — merged delay/slack sketches, global
// queue/dirty sketches, the epoch-aligned series, and the SLO burn state
// — must come back BYTE-identical every time. The epochs outrun both the
// series ring (32 windows x 8 epochs) and the slow SLO window (256), so
// wraparound and aging are in the pinned bytes. CI runs this under
// ThreadSanitizer and with --schedule-random.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/statmux.h"
#include "sim/rng.h"

namespace lsm::net {
namespace {

constexpr int kBatches = 400;          // epochs; wraps series + SLO rings
constexpr int kCommandsPerBatch = 32;  // 400 * 32 = 12,800 commands

struct ScriptCommand {
  bool admit = false;
  StreamSpec spec;
  std::uint32_t depart_id = 0;
};

using Script = std::vector<std::vector<ScriptCommand>>;

Script make_script(std::uint64_t seed) {
  sim::Rng rng(seed);
  Script script(kBatches);
  std::vector<std::uint32_t> live;
  std::uint32_t next_id = 1;
  for (int b = 0; b < kBatches; ++b) {
    std::vector<std::uint32_t> admitted_this_batch;
    for (int c = 0; c < kCommandsPerBatch; ++c) {
      const double admit_p =
          live.size() < 100 ? 0.9 : (live.size() > 400 ? 0.1 : 0.5);
      ScriptCommand cmd;
      if (live.empty() || rng.bernoulli(admit_p)) {
        cmd.admit = true;
        StreamSpec& spec = cmd.spec;
        spec.id = next_id++;
        spec.gop_n = 9;
        spec.gop_m = 3;
        spec.params.tau = 1.0 / 30.0;
        spec.params.D = 0.2;
        spec.params.H = spec.gop_n;
        spec.feed_seed = rng.next_u64();
        spec.picture_count = 0;
        spec.period_ticks = static_cast<int>(rng.uniform_int(1, 4));
        spec.phase_ticks =
            static_cast<int>(rng.uniform_int(0, spec.period_ticks - 1));
        admitted_this_batch.push_back(spec.id);
      } else {
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        cmd.admit = false;
        cmd.depart_id = live[pick];
        live[pick] = live.back();
        live.pop_back();
      }
      script[static_cast<std::size_t>(b)].push_back(cmd);
    }
    live.insert(live.end(), admitted_this_batch.begin(),
                admitted_this_batch.end());
  }
  return script;
}

struct HealthResult {
  std::string health;  ///< health_json(): the canonical snapshot bytes
  StatmuxStats stats;
  obs::SloState slo;
  std::uint64_t delay_count = 0;
  std::uint64_t slack_clamped = 0;
};

HealthResult run_script(const Script& script, int shards, int threads) {
  StatmuxConfig config;
  config.shards = shards;
  config.threads = threads;
  config.ring_capacity = 4096;
  config.max_streams_per_shard = 100000;
  config.link_rate_bps = 1e15;
  StatmuxService service(config);

  for (const std::vector<ScriptCommand>& batch : script) {
    for (const ScriptCommand& cmd : batch) {
      if (cmd.admit) {
        EXPECT_TRUE(service.admit(cmd.spec)) << "admit " << cmd.spec.id;
      } else {
        EXPECT_TRUE(service.depart(cmd.depart_id))
            << "depart " << cmd.depart_id;
      }
    }
    service.run_epoch();
  }

  HealthResult result;
  result.health = service.health_json();
  result.stats = service.stats();
  result.slo = service.slo_state();
  result.delay_count = service.delay_sketch().count();
  result.slack_clamped = service.delay_slack_sketch().clamped();
  return result;
}

TEST(StatmuxHealth, SnapshotBytesPinnedAcrossShardCounts) {
  const Script script = make_script(0x40ea17485eedULL);
  const HealthResult one = run_script(script, 1, 1);
  const HealthResult four = run_script(script, 4, 4);
  const HealthResult eight = run_script(script, 8, 8);

  // The run actually exercised the plane: every decided picture was
  // sketched, the SLO consumed every epoch, and the rings wrapped.
  EXPECT_EQ(one.delay_count,
            static_cast<std::uint64_t>(one.stats.decisions));
  EXPECT_GT(one.stats.decisions, 10000);
  EXPECT_EQ(one.slo.epoch, kBatches - 1);
  EXPECT_GT(one.slo.slow_total, 0u);

  EXPECT_EQ(one.health, four.health);
  EXPECT_EQ(one.health, eight.health);
}

TEST(StatmuxHealth, SnapshotBytesPinnedAcrossThreadCounts) {
  const Script script = make_script(0x5105e7f1ceULL);
  const HealthResult narrow = run_script(script, 8, 1);
  const HealthResult wide = run_script(script, 8, 8);
  EXPECT_EQ(narrow.health, wide.health);
  EXPECT_GT(narrow.delay_count, 0u);
}

TEST(StatmuxHealth, GenerousDelayBoundBurnsNoBudget) {
  // With D = 0.2 and an uncontended link the smoother never overshoots
  // its bound: every picture is good, the slack sketch clamps nothing
  // (true violations only — FP noise within 1e-9 is snapped to 0), and
  // the SLO stays quiet.
  const Script script = make_script(0x900dbea7ULL);
  const HealthResult result = run_script(script, 4, 4);
  EXPECT_EQ(result.slo.slow_good, result.slo.slow_total);
  EXPECT_EQ(result.slo.fast_burn, 0.0);
  EXPECT_FALSE(result.slo.breaching);
  EXPECT_EQ(result.slo.breaches, 0u);
  EXPECT_EQ(result.slack_clamped, 0u);
}

}  // namespace
}  // namespace lsm::net
