#include "mpeg/headers.h"

#include <gtest/gtest.h>

namespace lsm::mpeg {
namespace {

TEST(Headers, SequenceHeaderRoundTrip) {
  const SequenceHeader original{640, 480, 30, 9, 3};
  BitWriter writer;
  write_fields(writer, original);
  BitReader reader(writer.take());
  EXPECT_TRUE(read_sequence_header(reader) == original);
}

TEST(Headers, GroupHeaderRoundTrip) {
  for (const bool closed : {true, false}) {
    const GroupHeader original{4242, closed};
    BitWriter writer;
    write_fields(writer, original);
    BitReader reader(writer.take());
    EXPECT_TRUE(read_group_header(reader) == original);
  }
}

TEST(Headers, PictureHeaderRoundTripAllTypes) {
  for (const auto type : {lsm::trace::PictureType::I,
                          lsm::trace::PictureType::P,
                          lsm::trace::PictureType::B}) {
    const PictureHeader original{1234, type, 17};
    BitWriter writer;
    write_fields(writer, original);
    BitReader reader(writer.take());
    EXPECT_TRUE(read_picture_header(reader) == original);
  }
}

TEST(Headers, TemporalReferenceWrapsAt16Bits) {
  const PictureHeader original{0x1FFFF, lsm::trace::PictureType::I, 4};
  BitWriter writer;
  write_fields(writer, original);
  BitReader reader(writer.take());
  EXPECT_EQ(read_picture_header(reader).temporal_reference, 0xFFFF);
}

TEST(Headers, BadPictureTypeCodeThrows) {
  BitWriter writer;
  writer.put_bits(0, 16);  // temporal reference
  writer.put_bits(3, 2);   // invalid type code
  writer.put_bits(8, 5);
  BitReader reader(writer.take());
  EXPECT_THROW(read_picture_header(reader), std::runtime_error);
}

TEST(Headers, AppendUnitEscapesPayload) {
  std::vector<std::uint8_t> out;
  // Payload full of zeros would otherwise emulate a start code.
  const std::vector<std::uint8_t> payload(16, 0x00);
  append_unit(out, startcode::kGroup, payload);
  // Exactly one start code in the unit: the one we wrote.
  const std::int64_t first = find_start_code(out, 0);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(out[3], startcode::kGroup);
  EXPECT_EQ(find_start_code(out, 4), -1);
}

}  // namespace
}  // namespace lsm::mpeg
