// The Section 3.1 trade-off, quantified: shaping the encoder's peak rate by
// coarsening quantizer scales shrinks oversized pictures but costs quality —
// most visibly on I pictures — whereas lossless smoothing achieves the same
// channel peak with zero quality loss (and a delay of D).
#include "mpeg/ratecontrol.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "mpeg/decoder.h"
#include "mpeg/videogen.h"
#include "trace/stats.h"

namespace lsm::mpeg {
namespace {

std::vector<Frame> sample_video() {
  VideoConfig config;
  config.width = 96;
  config.height = 64;
  config.scenes = {VideoScene{18, 1.2, 0.4}};
  config.seed = 51;
  return generate_video(config);
}

EncoderConfig base_config() {
  EncoderConfig config;
  config.pattern = lsm::trace::GopPattern(9, 3);
  return config;
}

TEST(RateShaping, CapsEveryPictureAtTheBudget) {
  const std::vector<Frame> video = sample_video();
  const EncodeResult vbr = Encoder(base_config()).encode(video);
  lsm::trace::Bits peak = 0;
  for (const EncodedPicture& picture : vbr.pictures) {
    peak = std::max(peak, picture.bits);
  }

  RateShapeConfig config;
  config.base = base_config();
  // Target: halve the peak picture rate.
  config.target_peak_bps =
      static_cast<double>(peak) / 2.0 * config.base.fps;
  const RateShapeResult shaped = encode_rate_shaped(video, config);
  EXPECT_TRUE(shaped.converged);
  const double budget = config.target_peak_bps / config.base.fps;
  for (const EncodedPicture& picture : shaped.encoded.pictures) {
    EXPECT_LE(static_cast<double>(picture.bits), budget + 1e-6)
        << "display " << picture.display_index;
  }
  EXPECT_GT(shaped.reencoded_pictures, 0);
}

TEST(RateShaping, OnlyOversizedPicturesAreTouched) {
  const std::vector<Frame> video = sample_video();
  const EncodeResult vbr = Encoder(base_config()).encode(video);

  RateShapeConfig config;
  config.base = base_config();
  // A generous budget that only I pictures exceed.
  lsm::trace::Bits i_min = 1 << 30, pb_max = 0;
  for (const EncodedPicture& picture : vbr.pictures) {
    if (picture.type == lsm::trace::PictureType::I) {
      i_min = std::min(i_min, picture.bits);
    } else {
      pb_max = std::max(pb_max, picture.bits);
    }
  }
  ASSERT_GT(i_min, pb_max);
  config.target_peak_bps =
      static_cast<double>(pb_max + (i_min - pb_max) / 2) * config.base.fps;
  const RateShapeResult shaped = encode_rate_shaped(video, config);

  for (const EncodedPicture& picture : shaped.encoded.pictures) {
    const int quant =
        shaped.quant_by_picture[static_cast<std::size_t>(
            picture.display_index)];
    if (picture.type == lsm::trace::PictureType::I) {
      EXPECT_GT(quant, config.base.i_quant);
    } else if (picture.type == lsm::trace::PictureType::B) {
      EXPECT_EQ(quant, config.base.b_quant);
    }
  }
}

TEST(RateShaping, QualityDegradesOnShapedPictures) {
  // The paper: quantizer 4 -> 30 on an I picture cut its size ~3.7x at a
  // visible quality cost. Check both directions of the trade.
  const std::vector<Frame> video = sample_video();
  const EncodeResult vbr = Encoder(base_config()).encode(video);

  RateShapeConfig config;
  config.base = base_config();
  lsm::trace::Bits peak = 0;
  for (const EncodedPicture& picture : vbr.pictures) {
    peak = std::max(peak, picture.bits);
  }
  config.target_peak_bps =
      static_cast<double>(peak) / 3.0 * config.base.fps;
  const RateShapeResult shaped = encode_rate_shaped(video, config);

  double vbr_i_psnr = 0.0, shaped_i_psnr = 0.0;
  int i_count = 0;
  for (std::size_t k = 0; k < vbr.pictures.size(); ++k) {
    if (vbr.pictures[k].type != lsm::trace::PictureType::I) continue;
    vbr_i_psnr += vbr.pictures[k].psnr_y;
    shaped_i_psnr += shaped.encoded.pictures[k].psnr_y;
    ++i_count;
  }
  ASSERT_GT(i_count, 0);
  // Shaped I pictures lose measurable quality.
  EXPECT_LT(shaped_i_psnr / i_count, vbr_i_psnr / i_count - 1.5);
}

TEST(RateShaping, ImpossibleTargetReportsNonConvergence) {
  const std::vector<Frame> video = sample_video();
  RateShapeConfig config;
  config.base = base_config();
  config.target_peak_bps = 1000.0;  // absurd: ~33 bits per picture
  const RateShapeResult shaped = encode_rate_shaped(video, config);
  EXPECT_FALSE(shaped.converged);
  // Every picture was pushed to the coarsest allowed scale.
  for (const int quant : shaped.quant_by_picture) {
    EXPECT_EQ(quant, config.max_quant);
  }
}

TEST(RateShaping, RejectsBadConfig) {
  const std::vector<Frame> video = sample_video();
  RateShapeConfig config;
  config.base = base_config();
  config.target_peak_bps = 0.0;
  EXPECT_THROW(encode_rate_shaped(video, config), std::invalid_argument);
  config.target_peak_bps = 1e6;
  config.max_passes = 0;
  EXPECT_THROW(encode_rate_shaped(video, config), std::invalid_argument);
}

TEST(RateShaping, ShapedStreamStillDecodes) {
  const std::vector<Frame> video = sample_video();
  RateShapeConfig config;
  config.base = base_config();
  config.target_peak_bps = 0.4e6;
  const RateShapeResult shaped = encode_rate_shaped(video, config);
  EXPECT_NO_THROW({
    const auto decoded = decode_stream(shaped.encoded.stream);
    EXPECT_EQ(decoded.pictures.size(), video.size());
  });
}

}  // namespace
}  // namespace lsm::mpeg
