// End-to-end codec tests: encoder -> bit stream -> full decoder, plus the
// properties the smoothing paper depends on (I >> P >> B sizes, scene-change
// inflation, the lossy quantizer-scale trade-off of Section 3.1).
#include "mpeg/encoder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "mpeg/decoder.h"
#include "mpeg/videogen.h"
#include "trace/stats.h"

namespace lsm::mpeg {
namespace {

using lsm::trace::PictureType;

std::vector<Frame> test_video(int frames = 20, double motion = 0.5,
                              std::uint64_t seed = 42) {
  VideoConfig config;
  config.width = 96;
  config.height = 64;
  config.scenes = {VideoScene{frames, 1.0, motion}};
  config.seed = seed;
  return generate_video(config);
}

EncoderConfig small_encoder_config() {
  EncoderConfig config;
  config.pattern = lsm::trace::GopPattern(9, 3);
  config.search_range = 7;
  return config;
}

TEST(Codec, EncodesEveryPictureExactlyOnce) {
  const std::vector<Frame> video = test_video(20);
  const EncodeResult result = Encoder(small_encoder_config()).encode(video);
  ASSERT_EQ(result.pictures.size(), 20u);
  std::vector<bool> seen(20, false);
  for (const EncodedPicture& picture : result.pictures) {
    ASSERT_GE(picture.display_index, 0);
    ASSERT_LT(picture.display_index, 20);
    ASSERT_FALSE(seen[static_cast<std::size_t>(picture.display_index)]);
    seen[static_cast<std::size_t>(picture.display_index)] = true;
    ASSERT_GT(picture.bits, 0);
  }
}

TEST(Codec, CodedOrderPutsReferencesBeforeTheirBs) {
  const std::vector<Frame> video = test_video(10);
  const EncodeResult result = Encoder(small_encoder_config()).encode(video);
  // Display IBBPBBPBB I...: coded must begin I(0), P(3), B(1), B(2), ...
  EXPECT_EQ(result.pictures[0].display_index, 0);
  EXPECT_EQ(result.pictures[0].type, PictureType::I);
  EXPECT_EQ(result.pictures[1].display_index, 3);
  EXPECT_EQ(result.pictures[1].type, PictureType::P);
  EXPECT_EQ(result.pictures[2].display_index, 1);
  EXPECT_EQ(result.pictures[2].type, PictureType::B);
}

TEST(Codec, SizeOrderingIPBOnMovingScene) {
  const std::vector<Frame> video = test_video(27, 0.7);
  const EncodeResult result = Encoder(small_encoder_config()).encode(video);
  const lsm::trace::Trace trace = result.display_trace("codec");
  const lsm::trace::TraceStats stats = lsm::trace::compute_stats(trace);
  EXPECT_GT(stats.of(PictureType::I).mean, stats.of(PictureType::P).mean);
  EXPECT_GT(stats.of(PictureType::P).mean, stats.of(PictureType::B).mean);
  // Interframe coding pays off by a large factor.
  EXPECT_GT(stats.i_to_b_ratio, 3.0);
}

TEST(Codec, DecoderMatchesEncoderReconstructionExactly) {
  const std::vector<Frame> video = test_video(18, 0.6);
  const EncodeResult encoded = Encoder(small_encoder_config()).encode(video);
  const DecodeResult decoded = decode_stream(encoded.stream);
  ASSERT_EQ(decoded.pictures.size(), encoded.pictures.size());
  for (std::size_t k = 0; k < decoded.pictures.size(); ++k) {
    const EncodedPicture& enc = encoded.pictures[k];
    const DecodedPicture& dec = decoded.pictures[k];
    ASSERT_EQ(dec.display_index, enc.display_index);
    ASSERT_EQ(dec.type, enc.type);
    // The decoder reproduces the encoder's reconstruction bit-exactly, so
    // its PSNR against the source equals the encoder-reported PSNR.
    const double dec_psnr =
        psnr_y(video[static_cast<std::size_t>(dec.display_index)], dec.frame);
    ASSERT_NEAR(dec_psnr, enc.psnr_y, 1e-9) << "picture " << k;
  }
}

TEST(Codec, ReconstructionQualityIsHighAtFineQuant) {
  const std::vector<Frame> video = test_video(18, 0.4);
  const EncodeResult result = Encoder(small_encoder_config()).encode(video);
  for (const EncodedPicture& picture : result.pictures) {
    EXPECT_GT(picture.psnr_y, 26.0)
        << "display " << picture.display_index << " type "
        << lsm::trace::to_char(picture.type);
  }
}

TEST(Codec, CoarserQuantizerShrinksStreamAndDegradesQuality) {
  // Section 3.1: raising the I quantizer scale from 4 to 30 cut the paper's
  // I picture from 282,976 to 75,960 bits at a visible quality cost.
  const std::vector<Frame> video = test_video(9, 0.3);
  EncoderConfig fine = small_encoder_config();
  EncoderConfig coarse = small_encoder_config();
  coarse.i_quant = 30;
  coarse.p_quant = 30;
  coarse.b_quant = 30;
  const EncodeResult a = Encoder(fine).encode(video);
  const EncodeResult b = Encoder(coarse).encode(video);
  EXPECT_LT(b.stream.size(), a.stream.size() / 2);
  double fine_psnr = 0.0, coarse_psnr = 0.0;
  for (std::size_t k = 0; k < a.pictures.size(); ++k) {
    fine_psnr += a.pictures[k].psnr_y;
    coarse_psnr += b.pictures[k].psnr_y;
  }
  EXPECT_LT(coarse_psnr,
            fine_psnr - 3.0 * static_cast<double>(a.pictures.size()));
}

TEST(Codec, SceneChangeInflatesPredictedPictures) {
  VideoConfig config;
  config.width = 96;
  config.height = 64;
  config.scenes = {VideoScene{13, 1.0, 0.3}, VideoScene{14, 1.0, 0.3}};
  config.seed = 9;
  const std::vector<Frame> video = generate_video(config);
  const EncodeResult result = Encoder(small_encoder_config()).encode(video);
  const lsm::trace::Trace trace = result.display_trace("scenechange");
  // The P picture at display 15 (first P after the cut at frame 13) must be
  // far larger than steady-state P pictures from within scene one.
  // Compare against steady-state P pictures of the SAME scene (i >= 19):
  // the two scenes have independently drawn textures, so cross-scene P
  // sizes differ for reasons unrelated to the cut.
  std::int64_t boundary = 0, steady = 0;
  int steady_count = 0;
  for (int i = 1; i <= trace.picture_count(); ++i) {
    if (trace.type_of(i) != PictureType::P) continue;
    if (i >= 14 && i <= 16) {
      boundary = std::max(boundary, trace.size_of(i));
    } else if (i >= 19) {
      steady += trace.size_of(i);
      ++steady_count;
    }
  }
  ASSERT_GT(steady_count, 0);
  EXPECT_GT(boundary, 2 * steady / steady_count);
}

TEST(Codec, StreamIsDeterministic) {
  const std::vector<Frame> video = test_video(12);
  const EncodeResult a = Encoder(small_encoder_config()).encode(video);
  const EncodeResult b = Encoder(small_encoder_config()).encode(video);
  EXPECT_EQ(a.stream, b.stream);
}

TEST(Codec, DisplayFramesComeBackInDisplayOrder) {
  const std::vector<Frame> video = test_video(12);
  const EncodeResult encoded = Encoder(small_encoder_config()).encode(video);
  const DecodeResult decoded = decode_stream(encoded.stream);
  const std::vector<Frame> frames = decoded.display_frames();
  ASSERT_EQ(frames.size(), video.size());
  for (std::size_t k = 0; k < frames.size(); ++k) {
    // Lossy codec: decoded differs from source but must be close.
    ASSERT_GT(psnr_y(video[k], frames[k]), 24.0) << "frame " << k;
  }
}

TEST(Codec, TrailingBPicturesAreForwardPredicted) {
  // 11 frames with pattern IBBPBBPBB: displays 9, 10 are I, B; with 11
  // frames display 10 (B) has no future anchor and must still encode.
  const std::vector<Frame> video = test_video(11);
  const EncodeResult result = Encoder(small_encoder_config()).encode(video);
  EXPECT_EQ(result.pictures.size(), 11u);
  const DecodeResult decoded = decode_stream(result.stream);
  EXPECT_EQ(decoded.pictures.size(), 11u);
}

TEST(Codec, DifferentGopPatterns) {
  const std::vector<Frame> video = test_video(12);
  for (const auto& [n, m] : {std::pair{6, 2}, {12, 3}, {4, 1}, {1, 1}}) {
    EncoderConfig config = small_encoder_config();
    config.pattern = lsm::trace::GopPattern(n, m);
    const EncodeResult encoded = Encoder(config).encode(video);
    ASSERT_EQ(encoded.pictures.size(), video.size()) << "N=" << n;
    const DecodeResult decoded = decode_stream(encoded.stream);
    ASSERT_EQ(decoded.pictures.size(), video.size()) << "N=" << n;
    for (std::size_t k = 0; k < video.size(); ++k) {
      const DecodedPicture& picture = decoded.pictures[k];
      ASSERT_GT(psnr_y(video[static_cast<std::size_t>(picture.display_index)],
                       picture.frame),
                24.0)
          << "N=" << n << " picture " << k;
    }
  }
}

TEST(Codec, RejectsBadInputs) {
  EXPECT_THROW(Encoder(small_encoder_config()).encode({}),
               std::invalid_argument);
  EncoderConfig config = small_encoder_config();
  config.i_quant = 0;
  EXPECT_THROW(Encoder{config}, std::invalid_argument);
  config = small_encoder_config();
  config.fps = 0;
  EXPECT_THROW(Encoder{config}, std::invalid_argument);
}

TEST(Codec, DecoderRejectsGarbage) {
  EXPECT_THROW(decode_stream({0x12, 0x34, 0x56}), std::runtime_error);
  std::vector<std::uint8_t> only_picture;
  append_start_code(only_picture, startcode::kPicture);
  EXPECT_THROW(decode_stream(only_picture), std::runtime_error);
}

}  // namespace
}  // namespace lsm::mpeg
