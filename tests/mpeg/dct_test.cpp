#include "mpeg/dct.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"

namespace lsm::mpeg {
namespace {

TEST(Dct, ConstantBlockHasOnlyDc) {
  Block block;
  block.fill(100);
  const CoeffBlock coeffs = forward_dct(block);
  // Orthonormal DCT: DC = 8 * value.
  EXPECT_EQ(coeffs[0], 800);
  for (std::size_t k = 1; k < 64; ++k) {
    EXPECT_EQ(coeffs[k], 0) << "k=" << k;
  }
}

TEST(Dct, ZeroBlockStaysZero) {
  Block block{};
  const CoeffBlock coeffs = forward_dct(block);
  for (const auto c : coeffs) EXPECT_EQ(c, 0);
  const Block back = inverse_dct(coeffs);
  for (const auto s : back) EXPECT_EQ(s, 0);
}

TEST(Dct, RoundTripWithinRoundingError) {
  lsm::sim::Rng rng(11);
  for (int round = 0; round < 100; ++round) {
    Block block;
    for (auto& s : block) {
      s = static_cast<std::int16_t>(rng.uniform_int(-255, 255));
    }
    const Block back = inverse_dct(forward_dct(block));
    for (std::size_t k = 0; k < 64; ++k) {
      // Forward rounds once, inverse rounds once: error stays tiny.
      ASSERT_NEAR(back[k], block[k], 2) << "round " << round << " k=" << k;
    }
  }
}

TEST(Dct, LinearityApproximately) {
  lsm::sim::Rng rng(13);
  Block a, b, sum;
  for (std::size_t k = 0; k < 64; ++k) {
    a[k] = static_cast<std::int16_t>(rng.uniform_int(-100, 100));
    b[k] = static_cast<std::int16_t>(rng.uniform_int(-100, 100));
    sum[k] = static_cast<std::int16_t>(a[k] + b[k]);
  }
  const CoeffBlock ca = forward_dct(a);
  const CoeffBlock cb = forward_dct(b);
  const CoeffBlock cs = forward_dct(sum);
  for (std::size_t k = 0; k < 64; ++k) {
    ASSERT_NEAR(cs[k], ca[k] + cb[k], 2);
  }
}

TEST(Dct, EnergyPreservedParseval) {
  lsm::sim::Rng rng(17);
  Block block;
  for (auto& s : block) {
    s = static_cast<std::int16_t>(rng.uniform_int(-200, 200));
  }
  const CoeffBlock coeffs = forward_dct(block);
  double spatial_energy = 0.0, coeff_energy = 0.0;
  for (std::size_t k = 0; k < 64; ++k) {
    spatial_energy += static_cast<double>(block[k]) * block[k];
    coeff_energy += static_cast<double>(coeffs[k]) * coeffs[k];
  }
  EXPECT_NEAR(coeff_energy, spatial_energy, 0.02 * spatial_energy + 100.0);
}

TEST(Dct, HorizontalCosineHitsSingleCoefficient) {
  // spatial(x, y) = cos((2x+1) pi u / 16) lands on coefficient (u, 0).
  const double pi = 3.14159265358979323846;
  const int u = 3;
  Block block;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      block[static_cast<std::size_t>(y * 8 + x)] = static_cast<std::int16_t>(
          std::lround(100.0 * std::cos((2 * x + 1) * u * pi / 16.0)));
    }
  }
  const CoeffBlock coeffs = forward_dct(block);
  int argmax = 0;
  for (int k = 1; k < 64; ++k) {
    if (std::abs(coeffs[static_cast<std::size_t>(k)]) >
        std::abs(coeffs[static_cast<std::size_t>(argmax)])) {
      argmax = k;
    }
  }
  EXPECT_EQ(argmax, u);  // row 0, column u
}

TEST(Dct, FastForwardMatchesScalarBitwise) {
  // The SIMD path claims bitwise identity, not approximate agreement
  // (fastpath.h): every coefficient must be EQ, over blocks spanning the
  // full level-shifted sample range.
  lsm::sim::Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    Block block;
    for (auto& s : block) {
      s = static_cast<std::int16_t>(rng.uniform_int(-128, 127));
    }
    const CoeffBlock scalar = forward_dct(block);
    const CoeffBlock fast = forward_dct_fast(block);
    for (std::size_t k = 0; k < 64; ++k) {
      ASSERT_EQ(fast[k], scalar[k]) << "trial " << trial << " k " << k;
    }
  }
}

TEST(Dct, FastInverseMatchesScalarBitwise) {
  lsm::sim::Rng rng(18);
  for (int trial = 0; trial < 200; ++trial) {
    CoeffBlock coeffs;
    for (auto& c : coeffs) {
      c = static_cast<std::int16_t>(rng.uniform_int(-1024, 1024));
    }
    const Block scalar = inverse_dct(coeffs);
    const Block fast = inverse_dct_fast(coeffs);
    for (std::size_t k = 0; k < 64; ++k) {
      ASSERT_EQ(fast[k], scalar[k]) << "trial " << trial << " k " << k;
    }
  }
}

TEST(Dct, FastRoundTripEqualsScalarRoundTrip) {
  Block block;
  for (int k = 0; k < 64; ++k) {
    block[static_cast<std::size_t>(k)] =
        static_cast<std::int16_t>((k * 37) % 255 - 128);
  }
  EXPECT_EQ(inverse_dct_fast(forward_dct_fast(block)),
            inverse_dct(forward_dct(block)));
}

}  // namespace
}  // namespace lsm::mpeg
