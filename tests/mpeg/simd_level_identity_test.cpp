// Cross-tier differential for the runtime-dispatched encoder kernels
// (mpeg/fastpath.h, core/simd_dispatch.h): for every SIMD level the host
// can execute, the coded bit stream must be byte-identical to the scalar
// tier's, which is itself anchored against the kReference path. Levels
// the host lacks skip with a message. Also pins the encode_into /
// EncodeWorkspace reuse contract: a warm workspace must reproduce
// encode()'s bytes across repeated calls, input-shape changes, and
// slice-parallel executors.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/simd_dispatch.h"
#include "mpeg/decoder.h"
#include "mpeg/encoder.h"
#include "mpeg/videogen.h"
#include "runtime/pool.h"
#include "runtime/encode_batch.h"

namespace lsm::mpeg {
namespace {

using simd::SimdLevel;

class ActiveLevelGuard {
 public:
  ActiveLevelGuard() : saved_(simd::active_simd_level()) {}
  ~ActiveLevelGuard() { simd::set_active_simd_level(saved_); }

 private:
  SimdLevel saved_;
};

std::vector<Frame> level_video(int frames = 12, double motion = 0.6,
                               std::uint64_t seed = 7) {
  VideoConfig config;
  config.width = 96;
  config.height = 64;
  config.scenes = {VideoScene{frames, 1.0, motion}};
  config.seed = seed;
  return generate_video(config);
}

EncoderConfig level_config() {
  EncoderConfig config;
  config.pattern = lsm::trace::GopPattern(9, 3);
  config.search_range = 7;
  return config;
}

void expect_identical(const EncodeResult& a, const EncodeResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.stream.size(), b.stream.size()) << label;
  EXPECT_EQ(a.stream, b.stream) << label;
  ASSERT_EQ(a.pictures.size(), b.pictures.size()) << label;
  for (std::size_t k = 0; k < a.pictures.size(); ++k) {
    EXPECT_EQ(a.pictures[k].display_index, b.pictures[k].display_index)
        << label << " picture " << k;
    EXPECT_EQ(a.pictures[k].bits, b.pictures[k].bits)
        << label << " picture " << k;
    // Exact double equality: the PSNR accumulation is integer-exact and
    // must not depend on the kernel tier.
    EXPECT_EQ(a.pictures[k].psnr_y, b.pictures[k].psnr_y)
        << label << " picture " << k;
  }
}

/// Encodes the same inputs at `level` and at kScalar and compares byte
/// for byte; the scalar tier is anchored against kReference so agreement
/// can't hide a collective drift.
void run_level_identity(SimdLevel level) {
  const ActiveLevelGuard guard;
  const std::string label = simd::simd_level_name(level);
  // Moving and static scenes: the static one makes nearly every SAD a
  // tie, the regime where search-order or cutoff drift between tiers
  // would first change the stream.
  for (const double motion : {0.6, 0.0}) {
    const std::vector<Frame> video = level_video(12, motion);
    simd::set_active_simd_level(SimdLevel::kScalar);
    const EncodeResult scalar = Encoder(level_config()).encode(video);
    EncoderConfig reference_config = level_config();
    reference_config.path = EncoderPath::kReference;
    const EncodeResult reference = Encoder(reference_config).encode(video);
    expect_identical(scalar, reference,
                     label + " (scalar vs reference), motion=" +
                         std::to_string(motion));

    simd::set_active_simd_level(level);
    const EncodeResult wide = Encoder(level_config()).encode(video);
    expect_identical(wide, scalar,
                     label + " motion=" + std::to_string(motion));
    const DecodeResult decoded = decode_stream(wide.stream);
    EXPECT_EQ(decoded.display_frames().size(), video.size()) << label;
  }
}

#define LSM_REQUIRE_LEVEL(level)                                        \
  if (simd::detected_simd_level() < (level)) {                          \
    GTEST_SKIP() << "host supports only "                               \
                 << simd::simd_level_name(simd::detected_simd_level()); \
  }

TEST(SimdLevelIdentity, Sse2StreamMatchesScalar) {
  LSM_REQUIRE_LEVEL(SimdLevel::kSse2);
  run_level_identity(SimdLevel::kSse2);
}

TEST(SimdLevelIdentity, Avx2StreamMatchesScalar) {
  LSM_REQUIRE_LEVEL(SimdLevel::kAvx2);
  run_level_identity(SimdLevel::kAvx2);
}

TEST(SimdLevelIdentity, Avx512StreamMatchesScalar) {
  LSM_REQUIRE_LEVEL(SimdLevel::kAvx512);
  run_level_identity(SimdLevel::kAvx512);
}

// encode() is a thin wrapper over encode_into(); a fresh workspace must
// reproduce its bytes exactly.
TEST(EncodeWorkspace, FreshWorkspaceMatchesEncode) {
  const std::vector<Frame> video = level_video();
  const Encoder encoder(level_config());
  const EncodeResult fresh = encoder.encode(video);
  EncodeResult result;
  EncodeWorkspace workspace;
  encoder.encode_into(video, result, workspace);
  expect_identical(result, fresh, "fresh workspace");
}

// The zero-alloc contract rests on reuse being invisible: a workspace
// warmed by previous encodes — including encodes of differently shaped
// inputs — must still produce byte-identical streams.
TEST(EncodeWorkspace, WarmWorkspaceSurvivesReuseAndShapeChanges) {
  const std::vector<Frame> video_a = level_video(12, 0.6, 7);
  const std::vector<Frame> video_b = level_video(9, 0.3, 11);  // new count
  const Encoder encoder(level_config());
  EncodeResult result;
  EncodeWorkspace workspace;
  // a -> b -> a: the second 'a' runs against buffers dirtied by both
  // previous encodes and a repopulated type/order cache.
  encoder.encode_into(video_a, result, workspace);
  expect_identical(result, encoder.encode(video_a), "first a");
  encoder.encode_into(video_b, result, workspace);
  expect_identical(result, encoder.encode(video_b), "b after a");
  encoder.encode_into(video_a, result, workspace);
  expect_identical(result, encoder.encode(video_a), "a after b");
}

TEST(EncodeWorkspace, SharedAcrossEncoderInstancesAndPatterns) {
  const std::vector<Frame> video = level_video(10, 0.5, 13);
  EncoderConfig other = level_config();
  other.pattern = lsm::trace::GopPattern(6, 1);  // I/P only
  EncodeResult result;
  EncodeWorkspace workspace;
  Encoder(level_config()).encode_into(video, result, workspace);
  expect_identical(result, Encoder(level_config()).encode(video), "9/3");
  Encoder(other).encode_into(video, result, workspace);
  expect_identical(result, Encoder(other).encode(video), "6/1 reuse");
}

TEST(EncodeWorkspace, ParallelSlicesWithWarmWorkspaceMatchSerial) {
  const std::vector<Frame> video = level_video();
  const EncodeResult serial = Encoder(level_config()).encode(video);
  lsm::runtime::ThreadPool pool(4);
  EncoderConfig config = level_config();
  config.slice_executor = lsm::runtime::pool_slice_executor(pool);
  const Encoder encoder(config);
  EncodeResult result;
  EncodeWorkspace workspace;
  for (int round = 0; round < 3; ++round) {
    encoder.encode_into(video, result, workspace);
    expect_identical(result, serial,
                     "parallel round " + std::to_string(round));
  }
}

}  // namespace
}  // namespace lsm::mpeg
