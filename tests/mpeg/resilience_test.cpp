// Error resilience: the paper's Section 2 makes slices the smallest
// resynchronization unit — "whenever errors are detected, the decoder can
// skip ahead to the next slice start code ... One or more slices would be
// missing from the picture being decoded." These tests corrupt coded
// streams and verify the resilient decoder loses exactly the damaged
// slices, nothing more.
#include "mpeg/decoder.h"

#include <gtest/gtest.h>

#include "mpeg/encoder.h"
#include "mpeg/parser.h"
#include "mpeg/videogen.h"
#include "sim/rng.h"

namespace lsm::mpeg {
namespace {

EncodeResult encode_sample(int frames = 18) {
  VideoConfig video_config;
  video_config.width = 96;
  video_config.height = 64;
  video_config.scenes = {VideoScene{frames, 1.0, 0.4}};
  video_config.seed = 33;
  EncoderConfig config;
  config.pattern = lsm::trace::GopPattern(9, 3);
  return Encoder(config).encode(generate_video(video_config));
}

/// Offset of the k-th slice unit (0-based among slices).
std::int64_t nth_slice_offset(const std::vector<std::uint8_t>& stream,
                              int k) {
  int seen = 0;
  for (const UnitOffset& unit : scan_units(stream)) {
    if (unit.code >= startcode::kSliceFirst &&
        unit.code <= startcode::kSliceLast) {
      if (seen == k) return unit.offset;
      ++seen;
    }
  }
  return -1;
}

TEST(Resilience, CleanStreamDecodesClean) {
  const EncodeResult encoded = encode_sample();
  const ResilientDecodeResult resilient =
      decode_stream_resilient(encoded.stream);
  EXPECT_TRUE(resilient.clean());
  EXPECT_EQ(resilient.result.pictures.size(), encoded.pictures.size());
}

TEST(Resilience, SingleCorruptSliceIsConcealedOthersIntact) {
  const EncodeResult encoded = encode_sample();
  const DecodeResult clean = decode_stream(encoded.stream);

  // Corrupt the middle of the 6th slice's payload (inside the first I
  // picture: 4 slice rows per picture at 96x64).
  std::vector<std::uint8_t> corrupted = encoded.stream;
  const std::int64_t slice_at = nth_slice_offset(corrupted, 1);
  ASSERT_GE(slice_at, 0);
  // Scribble over payload bytes well past the start code.
  for (int k = 12; k < 18; ++k) {
    corrupted[static_cast<std::size_t>(slice_at + k)] ^= 0x5A;
  }

  const ResilientDecodeResult resilient = decode_stream_resilient(corrupted);
  ASSERT_EQ(resilient.result.pictures.size(), clean.pictures.size());
  // Either the slice failed to parse (concealed) or it parsed to wrong
  // pixels; in the common case the exp-Golomb stream breaks and we conceal.
  EXPECT_GE(resilient.damaged_slices + resilient.skipped_units, 0);

  // All pictures other than the one containing the damaged slice must be
  // PIXEL-IDENTICAL... except those that predict from it. The damaged slice
  // is in picture coded#0 (the I picture), so allow differences everywhere
  // in that GOP but require structural integrity: same count, same types.
  for (std::size_t k = 0; k < clean.pictures.size(); ++k) {
    EXPECT_EQ(resilient.result.pictures[k].type, clean.pictures[k].type);
    EXPECT_EQ(resilient.result.pictures[k].display_index,
              clean.pictures[k].display_index);
  }
}

TEST(Resilience, CorruptSliceInLastPictureLeavesRestExact) {
  const EncodeResult encoded = encode_sample();
  const DecodeResult clean = decode_stream(encoded.stream);

  // Find the LAST slice in the stream and break its payload so that no
  // other picture can be affected (nothing references the last coded
  // picture... it is a B picture in coded order for 18 frames? ensure by
  // checking type below).
  std::vector<std::uint8_t> corrupted = encoded.stream;
  const auto units = scan_units(corrupted);
  std::int64_t last_slice = -1;
  for (const UnitOffset& unit : units) {
    if (unit.code >= startcode::kSliceFirst &&
        unit.code <= startcode::kSliceLast) {
      last_slice = unit.offset;
    }
  }
  ASSERT_GE(last_slice, 0);
  for (int k = 6; k < 10; ++k) {
    corrupted[static_cast<std::size_t>(last_slice + k)] ^= 0xFF;
  }

  const ResilientDecodeResult resilient = decode_stream_resilient(corrupted);
  ASSERT_EQ(resilient.result.pictures.size(), clean.pictures.size());
  // Every picture except the last coded one is bit-exact.
  for (std::size_t k = 0; k + 1 < clean.pictures.size(); ++k) {
    ASSERT_TRUE(resilient.result.pictures[k].frame == clean.pictures[k].frame)
        << "picture " << k << " affected by corruption in the last one";
  }
}

TEST(Resilience, ConcealedSliceStaysCloseToCleanContent) {
  // Concealment copies the colocated reference rows; for moderate motion
  // the concealed slice should still resemble the clean decode.
  const EncodeResult encoded = encode_sample();
  const DecodeResult clean = decode_stream(encoded.stream);

  std::vector<std::uint8_t> corrupted = encoded.stream;
  // Damage a slice of the second P picture (coded index 4 at N=9, M=3:
  // I P B B P ...). Slices come in groups of 4 per picture.
  const std::int64_t slice_at = nth_slice_offset(corrupted, 4 * 4 + 1);
  ASSERT_GE(slice_at, 0);
  for (int k = 8; k < 14; ++k) {
    corrupted[static_cast<std::size_t>(slice_at + k)] ^= 0x77;
  }
  const ResilientDecodeResult resilient = decode_stream_resilient(corrupted);
  if (resilient.damaged_slices == 0) {
    GTEST_SKIP() << "corruption happened to stay parseable";
  }
  // Compare the corrupted picture against the clean decode: concealment
  // should keep it recognizable (well above garbage PSNR).
  double worst = 1e9;
  for (std::size_t k = 0; k < clean.pictures.size(); ++k) {
    worst = std::min(worst, psnr_y(resilient.result.pictures[k].frame,
                                   clean.pictures[k].frame));
  }
  EXPECT_GT(worst, 15.0);
}

TEST(Resilience, ManyRandomBitFlipsNeverCrash) {
  const EncodeResult encoded = encode_sample();
  lsm::sim::Rng rng(99);
  for (int round = 0; round < 40; ++round) {
    std::vector<std::uint8_t> corrupted = encoded.stream;
    const int flips = static_cast<int>(rng.uniform_int(1, 24));
    for (int f = 0; f < flips; ++f) {
      // Keep the sequence header intact (first ~16 bytes); everything else
      // is fair game, including start codes.
      const auto at = static_cast<std::size_t>(rng.uniform_int(
          16, static_cast<std::int64_t>(corrupted.size()) - 1));
      corrupted[at] ^= static_cast<std::uint8_t>(
          1u << rng.uniform_int(0, 7));
    }
    EXPECT_NO_THROW({
      const ResilientDecodeResult resilient =
          decode_stream_resilient(corrupted);
      (void)resilient;
    }) << "round " << round;
  }
}

TEST(Resilience, TruncatedStreamDecodesPrefix) {
  const EncodeResult encoded = encode_sample();
  std::vector<std::uint8_t> truncated(
      encoded.stream.begin(),
      encoded.stream.begin() +
          static_cast<std::ptrdiff_t>(encoded.stream.size() / 2));
  const ResilientDecodeResult resilient = decode_stream_resilient(truncated);
  EXPECT_GT(resilient.result.pictures.size(), 0u);
  EXPECT_LT(resilient.result.pictures.size(), encoded.pictures.size());
}

}  // namespace
}  // namespace lsm::mpeg
