#include "mpeg/zigzag.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "sim/rng.h"

namespace lsm::mpeg {
namespace {

TEST(Zigzag, ScanIsAPermutation) {
  const auto& scan = zigzag_scan();
  std::array<bool, 64> seen{};
  for (const auto index : scan) {
    ASSERT_LT(index, 64);
    ASSERT_FALSE(seen[index]);
    seen[index] = true;
  }
}

TEST(Zigzag, ScanStartsAndEndsCorrectly) {
  const auto& scan = zigzag_scan();
  EXPECT_EQ(scan[0], 0);   // DC first
  EXPECT_EQ(scan[1], 1);   // then (0,1)
  EXPECT_EQ(scan[2], 8);   // then (1,0)
  EXPECT_EQ(scan[63], 63); // highest frequency last
}

TEST(Zigzag, ScanFrequencyIsNonDecreasingDiagonally) {
  // Each scan step moves to a cell whose (row + col) differs by at most 1.
  const auto& scan = zigzag_scan();
  for (std::size_t k = 1; k < 64; ++k) {
    const int a = scan[k - 1] / 8 + scan[k - 1] % 8;
    const int b = scan[k] / 8 + scan[k] % 8;
    ASSERT_LE(std::abs(b - a), 1) << "k=" << k;
  }
}

TEST(RunLength, AllZeroAcGivesNoPairs) {
  CoeffBlock block{};
  block[0] = 42;  // DC is excluded from the AC coder
  EXPECT_TRUE(run_length_encode(block).empty());
}

TEST(RunLength, HandComputedPattern) {
  const auto& scan = zigzag_scan();
  CoeffBlock block{};
  block[scan[1]] = 7;    // run 0
  block[scan[4]] = -3;   // run 2
  block[scan[63]] = 1;   // run 58
  const std::vector<RunLevel> pairs = run_length_encode(block);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0].run, 0);
  EXPECT_EQ(pairs[0].level, 7);
  EXPECT_EQ(pairs[1].run, 2);
  EXPECT_EQ(pairs[1].level, -3);
  EXPECT_EQ(pairs[2].run, 58);
  EXPECT_EQ(pairs[2].level, 1);
}

TEST(RunLength, RoundTripRandomBlocks) {
  lsm::sim::Rng rng(23);
  for (int round = 0; round < 300; ++round) {
    CoeffBlock block{};
    const int nonzero = static_cast<int>(rng.uniform_int(0, 20));
    for (int k = 0; k < nonzero; ++k) {
      const auto pos = static_cast<std::size_t>(rng.uniform_int(0, 63));
      block[pos] = static_cast<std::int16_t>(
          rng.bernoulli(0.5) ? rng.uniform_int(1, 300)
                             : -rng.uniform_int(1, 300));
    }
    const CoeffBlock back =
        run_length_decode(block[0], run_length_encode(block));
    ASSERT_EQ(back, block) << "round " << round;
  }
}

TEST(RunLength, DecodeRejectsOverflow) {
  std::vector<RunLevel> pairs = {RunLevel{63, 5}, RunLevel{10, 1}};
  EXPECT_THROW(run_length_decode(0, pairs), std::invalid_argument);
}

TEST(RunLength, DecodeRejectsZeroLevel) {
  std::vector<RunLevel> pairs = {RunLevel{0, 0}};
  EXPECT_THROW(run_length_decode(0, pairs), std::invalid_argument);
}

TEST(RunLength, DenseBlockFullRoundTrip) {
  CoeffBlock block{};
  for (std::size_t k = 0; k < 64; ++k) {
    block[k] = static_cast<std::int16_t>(k % 2 == 0 ? k + 1 : -(int)k);
  }
  const CoeffBlock back =
      run_length_decode(block[0], run_length_encode(block));
  EXPECT_EQ(back, block);
}

}  // namespace
}  // namespace lsm::mpeg
