// Half-pel motion compensation (ISO 11172-2 precision): bilinear
// interpolation, two-stage search, and the compression payoff on
// sub-pixel motion.
#include "mpeg/motion.h"

#include <gtest/gtest.h>

#include <utility>

#include "mpeg/decoder.h"
#include "mpeg/encoder.h"
#include "sim/rng.h"

namespace lsm::mpeg {
namespace {

Frame textured_frame(std::uint64_t seed, int width = 64, int height = 48) {
  Frame frame(width, height);
  lsm::sim::Rng rng(seed);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      frame.y.set(x, y, static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
  }
  for (int y = 0; y < height / 2; ++y) {
    for (int x = 0; x < width / 2; ++x) {
      frame.cb.set(x, y, static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      frame.cr.set(x, y, static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
  }
  return frame;
}

/// Shifts luma by half a pixel horizontally with the codec's own rounding.
Frame halfpel_shifted(const Frame& source) {
  Frame out = source;
  for (int y = 0; y < source.height(); ++y) {
    for (int x = 0; x < source.width(); ++x) {
      out.y.set(x, y,
                static_cast<std::uint8_t>((source.y.at_clamped(x, y) +
                                           source.y.at_clamped(x + 1, y) + 1) /
                                          2));
    }
  }
  return out;
}

TEST(HalfPel, EvenVectorsMatchFullPelExtraction) {
  const Frame frame = textured_frame(1);
  // Luma agrees for every even half-pel vector. Chroma agrees only when the
  // halved vector is even too (an odd full-pel luma vector puts chroma on a
  // half-pel position, which the half-pel path correctly interpolates while
  // the full-pel path truncates).
  for (const auto& [dx, dy] : {std::pair{0, 0}, {2, 4}, {-6, 2}, {8, -8}}) {
    const MacroblockPixels full =
        extract_macroblock(frame, 1, 1, MotionVector{dx / 2, dy / 2});
    const MacroblockPixels half =
        extract_macroblock_halfpel(frame, 1, 1, MotionVector{dx, dy});
    EXPECT_EQ(full.y, half.y) << dx << "," << dy;
    if (dx % 4 == 0 && dy % 4 == 0) {
      EXPECT_EQ(full.cb, half.cb) << dx << "," << dy;
      EXPECT_EQ(full.cr, half.cr) << dx << "," << dy;
    }
  }
}

TEST(HalfPel, HorizontalInterpolationAveragesNeighbours) {
  Frame frame(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      frame.y.set(x, y, static_cast<std::uint8_t>(x * 7));
    }
  }
  const MacroblockPixels half =
      extract_macroblock_halfpel(frame, 0, 0, MotionVector{1, 0});
  // Pixel (0,0) samples between luma columns 0 and 1: (0 + 7 + 1)/2 = 4.
  EXPECT_EQ(half.y[0], 4);
  // Pixel (5,0): between columns 5 and 6: (35 + 42 + 1)/2 = 39.
  EXPECT_EQ(half.y[5], 39);
}

TEST(HalfPel, DiagonalInterpolationAveragesFour) {
  Frame frame(32, 32);
  frame.y.set(0, 0, 10);
  frame.y.set(1, 0, 20);
  frame.y.set(0, 1, 30);
  frame.y.set(1, 1, 50);
  const MacroblockPixels half =
      extract_macroblock_halfpel(frame, 0, 0, MotionVector{1, 1});
  EXPECT_EQ(half.y[0], (10 + 20 + 30 + 50 + 2) / 4);
}

TEST(HalfPel, NegativeHalfVectorsFloorCorrectly) {
  Frame frame(32, 32);
  for (int x = 0; x < 32; ++x) frame.y.set(x, 5, static_cast<std::uint8_t>(x));
  // Macroblock (1, 0), vector (-1, 0): pixel (x=0, y=5) of the macroblock
  // samples between luma columns 15 and 16: (15 + 16 + 1)/2 = 16.
  const MacroblockPixels half =
      extract_macroblock_halfpel(frame, 1, 0, MotionVector{-1, 0});
  EXPECT_EQ(half.y[5 * 16 + 0], 16);
}

TEST(HalfPel, SearchRecoversHalfPelShift) {
  const Frame reference = textured_frame(7);
  const Frame current = halfpel_shifted(reference);
  const MotionSearchResult result =
      search_motion_halfpel(current, reference, 1, 1, 4);
  EXPECT_EQ(result.mv.dx, 1);
  EXPECT_EQ(result.mv.dy, 0);
  EXPECT_EQ(result.sad, 0);
}

TEST(HalfPel, SearchNeverWorseThanFullPel) {
  const Frame reference = textured_frame(9);
  const Frame current = textured_frame(10);  // unrelated content
  for (int mb = 0; mb < 3; ++mb) {
    const MotionSearchResult full =
        search_motion(current, reference, mb, 1, 4);
    const MotionSearchResult half =
        search_motion_halfpel(current, reference, mb, 1, 4);
    EXPECT_LE(half.sad, full.sad) << "mb " << mb;
  }
}

TEST(HalfPel, ImprovesCompressionOnSubPixelMotion) {
  // A two-frame I,P sequence whose motion is exactly half a pixel: the
  // half-pel encoder predicts almost perfectly, the full-pel one cannot.
  const Frame reference = textured_frame(21, 96, 64);
  const Frame moved = halfpel_shifted(reference);
  const std::vector<Frame> video = {reference, moved};

  EncoderConfig half_config;
  half_config.pattern = lsm::trace::GopPattern(2, 1);
  half_config.half_pel = true;
  EncoderConfig full_config = half_config;
  full_config.half_pel = false;

  const EncodeResult with_half = Encoder(half_config).encode(video);
  const EncodeResult with_full = Encoder(full_config).encode(video);
  // Picture at coded index 1 is the P picture in both runs.
  const std::int64_t half_bits = with_half.pictures[1].bits;
  const std::int64_t full_bits = with_full.pictures[1].bits;
  EXPECT_LT(half_bits, full_bits / 2)
      << "half-pel " << half_bits << " vs full-pel " << full_bits;
}

TEST(HalfPel, FullPelModeStillRoundTrips) {
  const Frame a = textured_frame(31, 96, 64);
  const Frame b = halfpel_shifted(a);
  EncoderConfig config;
  config.pattern = lsm::trace::GopPattern(2, 1);
  config.half_pel = false;
  const EncodeResult encoded = Encoder(config).encode({a, b});
  EXPECT_NO_THROW({
    const auto decoded = decode_stream(encoded.stream);
    EXPECT_EQ(decoded.pictures.size(), 2u);
  });
}

}  // namespace
}  // namespace lsm::mpeg
