#include "mpeg/coding.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/rng.h"

namespace lsm::mpeg {
namespace {

using detail::block_of;
using detail::DcPredictors;
using detail::reconstruct_inter;
using detail::reconstruct_intra;
using detail::store_block;
using detail::store_macroblock;

MacroblockPixels random_macroblock(std::uint64_t seed) {
  lsm::sim::Rng rng(seed);
  MacroblockPixels mb;
  for (auto& v : mb.y) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  for (auto& v : mb.cb) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  for (auto& v : mb.cr) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return mb;
}

TEST(Coding, BlockOfReadsTheRightQuadrants) {
  MacroblockPixels mb;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      mb.y[static_cast<std::size_t>(y * 16 + x)] =
          static_cast<std::uint8_t>(y * 16 + x);
    }
  }
  // Block 3 is the bottom-right luma quadrant: its (0,0) is pixel (8,8).
  const Block block = block_of(mb, 3);
  EXPECT_EQ(block[0], 8 * 16 + 8);
  EXPECT_EQ(block[63], 15 * 16 + 15);
  // Block 4/5 are the chroma planes.
  mb.cb[0] = 99;
  EXPECT_EQ(block_of(mb, 4)[0], 99);
  EXPECT_THROW(block_of(mb, 6), std::invalid_argument);
  EXPECT_THROW(block_of(mb, -1), std::invalid_argument);
}

TEST(Coding, StoreMacroblockThenBlockOfRoundTrips) {
  const MacroblockPixels mb = random_macroblock(5);
  Frame frame(64, 48);
  store_macroblock(frame, 2, 1, mb);
  const MacroblockPixels back = extract_macroblock(frame, 2, 1);
  EXPECT_EQ(back.y, mb.y);
  EXPECT_EQ(back.cb, mb.cb);
  EXPECT_EQ(back.cr, mb.cr);
}

TEST(Coding, StoreBlockWritesOneBlockOnly) {
  Frame frame(64, 48);
  Block samples{};
  samples.fill(200);
  store_block(frame, 1, 1, 1, samples);  // top-right luma quadrant of MB(1,1)
  EXPECT_EQ(frame.y.at(16 + 8, 16 + 0), 200);
  EXPECT_EQ(frame.y.at(16 + 0, 16 + 0), 0);  // neighbouring quadrant intact
}

TEST(Coding, IntraReconstructionInvertsQuantizationApproximately) {
  lsm::sim::Rng rng(7);
  for (const int qscale : {2, 6, 15}) {
    MacroblockPixels mb = random_macroblock(rng.next_u64());
    const Block source = block_of(mb, 0);
    Block shifted = source;
    for (auto& s : shifted) s = static_cast<std::int16_t>(s - 128);
    const CoeffBlock levels =
        quantize_intra(forward_dct(shifted), qscale);
    const Block recon = reconstruct_intra(levels, qscale);
    // Random (noise-like) blocks are the worst case for transform coding;
    // bound the error loosely but meaningfully.
    double err = 0.0;
    for (std::size_t k = 0; k < 64; ++k) {
      err += std::abs(recon[k] - source[k]);
    }
    EXPECT_LT(err / 64.0, 6.0 * qscale) << "qscale " << qscale;
  }
}

TEST(Coding, InterReconstructionAddsResidualToPrediction) {
  // prediction + quantized(residual) must move recon toward the target.
  const MacroblockPixels current = random_macroblock(11);
  const MacroblockPixels prediction = random_macroblock(12);
  const Block cur = block_of(current, 0);
  const Block pred = block_of(prediction, 0);
  Block residual{};
  for (std::size_t k = 0; k < 64; ++k) {
    residual[k] = static_cast<std::int16_t>(cur[k] - pred[k]);
  }
  const CoeffBlock levels = quantize_inter(forward_dct(residual), 4);
  const Block recon = reconstruct_inter(pred, levels, 4);
  double err_with_residual = 0.0, err_prediction_only = 0.0;
  for (std::size_t k = 0; k < 64; ++k) {
    err_with_residual += std::abs(recon[k] - cur[k]);
    err_prediction_only += std::abs(pred[k] - cur[k]);
  }
  EXPECT_LT(err_with_residual, 0.5 * err_prediction_only);
}

TEST(Coding, ReconstructionClampsToPixelRange) {
  CoeffBlock levels{};
  levels[0] = 30000 / 8;  // an absurd DC
  const Block high = reconstruct_intra(levels, 4);
  for (const auto v : high) {
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 255);
  }
  levels[0] = -30000 / 8;
  const Block low = reconstruct_intra(levels, 4);
  for (const auto v : low) {
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 255);
  }
}

TEST(Coding, DcPredictorsTrackPerComponent) {
  DcPredictors dc;
  dc.of(0) = 5;
  dc.of(3) = 7;  // same luma predictor
  EXPECT_EQ(dc.y, 7);
  dc.of(4) = 11;
  dc.of(5) = 13;
  EXPECT_EQ(dc.cb, 11);
  EXPECT_EQ(dc.cr, 13);
  dc.reset();
  EXPECT_EQ(dc.y + dc.cb + dc.cr, 0);
}

}  // namespace
}  // namespace lsm::mpeg
