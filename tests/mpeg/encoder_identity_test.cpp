// Differential identity suite for the encoder fast path (DESIGN.md §3.4):
// the SIMD kernels and the slice-parallel runtime must produce streams
// byte-identical to the scalar serial reference — across kernel paths,
// thread counts, and the batch runtime — and the streams must decode back
// to identical pixels. Runs under ASan and TSan in CI; the TSan leg is what
// makes "slice rows are race-free" a checked claim rather than a comment.
#include "mpeg/encoder.h"

#include <gtest/gtest.h>

#include <vector>

#include "mpeg/decoder.h"
#include "mpeg/fastpath.h"
#include "mpeg/videogen.h"
#include "runtime/encode_batch.h"

namespace lsm::mpeg {
namespace {

std::vector<Frame> identity_video(int frames = 12, double motion = 0.6,
                                  std::uint64_t seed = 7) {
  VideoConfig config;
  config.width = 96;
  config.height = 64;
  config.scenes = {VideoScene{frames, 1.0, motion}};
  config.seed = seed;
  return generate_video(config);
}

EncoderConfig identity_config() {
  EncoderConfig config;
  config.pattern = lsm::trace::GopPattern(9, 3);
  config.search_range = 7;
  return config;
}

EncodeResult encode_with(const std::vector<Frame>& video, EncoderConfig config,
                         EncoderPath path, SliceExecutor executor = {}) {
  config.path = path;
  config.slice_executor = std::move(executor);
  return Encoder(std::move(config)).encode(video);
}

void expect_identical(const EncodeResult& a, const EncodeResult& b) {
  ASSERT_EQ(a.stream.size(), b.stream.size());
  EXPECT_EQ(a.stream, b.stream);
  ASSERT_EQ(a.pictures.size(), b.pictures.size());
  for (std::size_t k = 0; k < a.pictures.size(); ++k) {
    EXPECT_EQ(a.pictures[k].display_index, b.pictures[k].display_index);
    EXPECT_EQ(a.pictures[k].bits, b.pictures[k].bits);
    EXPECT_DOUBLE_EQ(a.pictures[k].psnr_y, b.pictures[k].psnr_y);
  }
}

TEST(EncoderIdentity, SimdStreamMatchesScalarReference) {
  const std::vector<Frame> video = identity_video();
  const EncodeResult reference =
      encode_with(video, identity_config(), EncoderPath::kReference);
  const EncodeResult fast =
      encode_with(video, identity_config(), EncoderPath::kAuto);
  expect_identical(reference, fast);
}

TEST(EncoderIdentity, SimdMatchesScalarWithFullPelOnlyVectors) {
  const std::vector<Frame> video = identity_video();
  EncoderConfig config = identity_config();
  config.half_pel = false;
  const EncodeResult reference =
      encode_with(video, config, EncoderPath::kReference);
  const EncodeResult fast = encode_with(video, config, EncoderPath::kAuto);
  expect_identical(reference, fast);
}

TEST(EncoderIdentity, StaticSceneSkipAndTieBreaksArePreserved) {
  // Zero motion makes nearly every SAD a tie: every candidate matches the
  // reference equally well, so the zero-vector preference (and the P-skip
  // mode it enables) decides the stream. Any tie-break drift between the
  // scalar and cutoff-terminated SIMD searches would show up here first.
  const std::vector<Frame> video = identity_video(10, 0.0);
  const EncodeResult reference =
      encode_with(video, identity_config(), EncoderPath::kReference);
  const EncodeResult fast =
      encode_with(video, identity_config(), EncoderPath::kAuto);
  expect_identical(reference, fast);
}

TEST(EncoderIdentity, StreamIsByteIdenticalAcrossThreadCounts) {
  const std::vector<Frame> video = identity_video();
  const EncodeResult serial =
      encode_with(video, identity_config(), EncoderPath::kAuto);
  for (const int threads : {1, 2, 8}) {
    lsm::runtime::ThreadPool pool(threads);
    const EncodeResult parallel =
        encode_with(video, identity_config(), EncoderPath::kAuto,
                    lsm::runtime::pool_slice_executor(pool));
    expect_identical(serial, parallel);
  }
}

TEST(EncoderIdentity, ThreadedScalarPathMatchesSerialScalarPath) {
  // The executor must be path-agnostic: parallel slices on the reference
  // kernels reproduce the serial reference stream too.
  const std::vector<Frame> video = identity_video();
  const EncodeResult serial =
      encode_with(video, identity_config(), EncoderPath::kReference);
  lsm::runtime::ThreadPool pool(8);
  const EncodeResult parallel =
      encode_with(video, identity_config(), EncoderPath::kReference,
                  lsm::runtime::pool_slice_executor(pool));
  expect_identical(serial, parallel);
}

TEST(EncoderIdentity, FastStreamDecodesToReferenceStreamPixels) {
  const std::vector<Frame> video = identity_video();
  const EncodeResult reference =
      encode_with(video, identity_config(), EncoderPath::kReference);
  lsm::runtime::ThreadPool pool(4);
  const EncodeResult fast =
      encode_with(video, identity_config(), EncoderPath::kAuto,
                  lsm::runtime::pool_slice_executor(pool));
  const DecodeResult decoded_reference = decode_stream(reference.stream);
  const DecodeResult decoded_fast = decode_stream(fast.stream);
  const std::vector<Frame> frames_reference =
      decoded_reference.display_frames();
  const std::vector<Frame> frames_fast = decoded_fast.display_frames();
  ASSERT_EQ(frames_reference.size(), video.size());
  ASSERT_EQ(frames_fast.size(), frames_reference.size());
  for (std::size_t k = 0; k < frames_fast.size(); ++k) {
    EXPECT_EQ(frames_fast[k], frames_reference[k]) << "frame " << k;
  }
}

TEST(EncoderIdentity, BatchEncoderMatchesSerialEncodes) {
  const std::vector<Frame> video_a = identity_video(9, 0.4, 11);
  const std::vector<Frame> video_b = identity_video(12, 0.8, 12);
  const std::vector<Frame> video_c = identity_video(6, 0.0, 13);
  std::vector<lsm::runtime::EncodeJob> jobs;
  for (const auto* video : {&video_a, &video_b, &video_c}) {
    lsm::runtime::EncodeJob job;
    job.frames = video;
    job.config = identity_config();
    jobs.push_back(job);
  }
  lsm::runtime::BatchEncoder batch(4);
  const std::vector<EncodeResult> results = batch.run(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const EncodeResult serial = Encoder(jobs[k].config).encode(*jobs[k].frames);
    expect_identical(serial, results[k]);
  }
  const lsm::runtime::PerfCounters totals = batch.counters().total();
  EXPECT_EQ(totals.streams, jobs.size());
  EXPECT_EQ(totals.pictures, 9u + 12u + 6u);
}

TEST(EncoderIdentity, BatchEncoderRejectsNullFrames) {
  lsm::runtime::BatchEncoder batch(2);
  std::vector<lsm::runtime::EncodeJob> jobs(1);
  EXPECT_THROW(batch.run(jobs), std::invalid_argument);
}

TEST(EncoderIdentity, SliceExecutorPropagatesEncodeErrors) {
  // A throwing body must surface in the caller, not kill a pool worker.
  lsm::runtime::ThreadPool pool(2);
  const SliceExecutor executor = lsm::runtime::pool_slice_executor(pool);
  EXPECT_THROW(
      executor(4,
               [](int i) {
                 if (i == 2) throw std::runtime_error("slice failure");
               }),
      std::runtime_error);
}

}  // namespace
}  // namespace lsm::mpeg
