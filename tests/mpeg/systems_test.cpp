#include "mpeg/systems.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "mpeg/decoder.h"
#include "mpeg/videogen.h"

namespace lsm::mpeg {
namespace {

EncodeResult encode_sample(int frames = 18) {
  VideoConfig video_config;
  video_config.width = 96;
  video_config.height = 64;
  video_config.scenes = {VideoScene{frames, 1.0, 0.4}};
  video_config.seed = 61;
  EncoderConfig config;
  config.pattern = lsm::trace::GopPattern(9, 3);
  return Encoder(config).encode(generate_video(video_config));
}

TEST(Systems, RoundTripIsByteExact) {
  const EncodeResult encoded = encode_sample();
  const SystemsStream muxed = mux_systems(encoded);
  const DemuxResult demuxed = demux_systems(muxed.bytes);
  EXPECT_EQ(demuxed.elementary, encoded.stream);
}

TEST(Systems, DemuxedStreamStillDecodes) {
  const EncodeResult encoded = encode_sample();
  const DemuxResult demuxed = demux_systems(mux_systems(encoded).bytes);
  const DecodeResult direct = decode_stream(encoded.stream);
  const DecodeResult via_systems = decode_stream(demuxed.elementary);
  ASSERT_EQ(via_systems.pictures.size(), direct.pictures.size());
  for (std::size_t k = 0; k < direct.pictures.size(); ++k) {
    ASSERT_TRUE(via_systems.pictures[k].frame == direct.pictures[k].frame);
  }
}

TEST(Systems, PackCountMatchesPayloadSize) {
  const EncodeResult encoded = encode_sample();
  SystemsConfig config;
  config.pes_payload_bytes = 512;
  const SystemsStream muxed = mux_systems(encoded, config);
  const int expected =
      static_cast<int>((encoded.stream.size() + 511) / 512);
  EXPECT_EQ(muxed.pack_count, expected);
}

TEST(Systems, ScrIsMonotoneAndScaledByMuxRate) {
  const EncodeResult encoded = encode_sample();
  SystemsConfig config;
  config.mux_rate_bps = 2e6;
  const DemuxResult demuxed =
      demux_systems(mux_systems(encoded, config).bytes);
  ASSERT_GT(demuxed.scr_seconds.size(), 1u);
  for (std::size_t k = 1; k < demuxed.scr_seconds.size(); ++k) {
    ASSERT_GE(demuxed.scr_seconds[k], demuxed.scr_seconds[k - 1]);
  }
  EXPECT_NEAR(demuxed.mux_rate_bps, 2e6, 50.0 * 8.0);
  // The last SCR is roughly the stream size over the mux rate.
  const double expected_span =
      static_cast<double>(mux_systems(encoded, config).bytes.size()) * 8.0 /
      2e6;
  EXPECT_NEAR(demuxed.scr_seconds.back(), expected_span,
              0.2 * expected_span + 0.01);
}

TEST(Systems, PtsValuesAreDisplayTimes) {
  const EncodeResult encoded = encode_sample();
  SystemsConfig config;
  config.pes_payload_bytes = 256;  // small chunks: most pictures stamped
  const SystemsStream muxed = mux_systems(encoded, config);
  const DemuxResult demuxed = demux_systems(muxed.bytes);
  ASSERT_EQ(static_cast<int>(demuxed.pts.size()), muxed.pts_count);
  EXPECT_GT(demuxed.pts.size(), encoded.pictures.size() / 2);
  const double tau = 1.0 / encoded.sequence_header.fps;
  for (const PtsEntry& entry : demuxed.pts) {
    // Every PTS is some picture's display instant: a multiple of tau
    // (within 90 kHz quantization).
    const double periods = entry.seconds / tau;
    EXPECT_NEAR(periods, std::round(periods), 0.01)
        << "pts " << entry.seconds;
  }
}

TEST(Systems, FirstPtsBelongsToTheFirstPicture) {
  const EncodeResult encoded = encode_sample();
  const DemuxResult demuxed = demux_systems(mux_systems(encoded).bytes);
  ASSERT_FALSE(demuxed.pts.empty());
  // Coded order starts with the I picture at display 0: PTS 0.
  EXPECT_NEAR(demuxed.pts.front().seconds, 0.0, 1e-4);
  EXPECT_EQ(demuxed.pts.front().es_offset, 0);
}

TEST(Systems, RejectsGarbageAndTruncation) {
  EXPECT_THROW(demux_systems({0x12, 0x34, 0x56, 0x78}), std::runtime_error);
  const EncodeResult encoded = encode_sample(9);
  std::vector<std::uint8_t> truncated = mux_systems(encoded).bytes;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(demux_systems(truncated), std::runtime_error);
  SystemsConfig bad;
  bad.pes_payload_bytes = 1;
  EXPECT_THROW(mux_systems(encoded, bad), std::invalid_argument);
}

TEST(Systems, OverheadIsSmall) {
  const EncodeResult encoded = encode_sample();
  const SystemsStream muxed = mux_systems(encoded);
  const double overhead =
      static_cast<double>(muxed.bytes.size()) /
          static_cast<double>(encoded.stream.size()) -
      1.0;
  EXPECT_LT(overhead, 0.03);  // < 3% for 2016-byte payloads
}

}  // namespace
}  // namespace lsm::mpeg
