// Robustness fuzzing: arbitrary bytes fed into every parsing entry point
// must produce exceptions or valid results — never crashes, hangs, or
// out-of-bounds reads (the sanitizers in debug builds back this up).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "mpeg/decoder.h"
#include "mpeg/parser.h"
#include "mpeg/vlc.h"
#include "sim/rng.h"
#include "trace/io.h"

namespace lsm::mpeg {
namespace {

std::vector<std::uint8_t> random_bytes(lsm::sim::Rng& rng, int max_size) {
  const auto size = static_cast<std::size_t>(rng.uniform_int(0, max_size));
  std::vector<std::uint8_t> bytes(size);
  for (auto& b : bytes) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return bytes;
}

TEST(Fuzz, ExpGolombDecoderNeverCrashes) {
  lsm::sim::Rng rng(1);
  for (int round = 0; round < 500; ++round) {
    BitReader reader(random_bytes(rng, 64));
    try {
      while (true) {
        (void)get_ue(reader);
      }
    } catch (const std::exception&) {
      // out_of_range at buffer end or runtime_error on malformed code.
    }
  }
}

TEST(Fuzz, BlockDecoderNeverCrashes) {
  lsm::sim::Rng rng(2);
  for (int round = 0; round < 500; ++round) {
    BitReader reader(random_bytes(rng, 256));
    try {
      while (true) {
        (void)get_block(reader);
      }
    } catch (const std::exception&) {
    }
  }
}

TEST(Fuzz, StreamParserThrowsButNeverCrashes) {
  lsm::sim::Rng rng(3);
  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint8_t> bytes = random_bytes(rng, 2048);
    // Seed plausible start codes into the soup half the time.
    if (round % 2 == 0 && bytes.size() > 8) {
      append_start_code(bytes, startcode::kSequenceHeader);
      for (int k = 0; k < 7; ++k) {
        bytes.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      }
      append_start_code(bytes, startcode::kPicture);
    }
    try {
      (void)parse_stream(bytes);
    } catch (const std::exception&) {
    }
  }
}

TEST(Fuzz, StrictDecoderThrowsButNeverCrashes) {
  lsm::sim::Rng rng(4);
  for (int round = 0; round < 200; ++round) {
    try {
      (void)decode_stream(random_bytes(rng, 1024));
    } catch (const std::exception&) {
    }
  }
}

TEST(Fuzz, ResilientDecoderSurvivesStructuredGarbage) {
  // A syntactically valid header followed by garbage units.
  lsm::sim::Rng rng(5);
  for (int round = 0; round < 100; ++round) {
    std::vector<std::uint8_t> bytes;
    append_start_code(bytes, startcode::kSequenceHeader);
    // width=32, height=32, fps=30, N=9, M=3 (7 payload bytes).
    BitWriter writer;
    writer.put_bits(32, 16);
    writer.put_bits(32, 16);
    writer.put_bits(30, 8);
    writer.put_bits(9, 8);
    writer.put_bits(3, 8);
    const auto payload = escape_payload(writer.take());
    bytes.insert(bytes.end(), payload.begin(), payload.end());
    const int garbage_units = static_cast<int>(rng.uniform_int(1, 6));
    for (int u = 0; u < garbage_units; ++u) {
      append_start_code(
          bytes, static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      const auto junk = random_bytes(rng, 200);
      const auto escaped = escape_payload(junk);
      bytes.insert(bytes.end(), escaped.begin(), escaped.end());
    }
    try {
      const ResilientDecodeResult result = decode_stream_resilient(bytes);
      (void)result;
    } catch (const std::exception&) {
      // Acceptable: e.g. bad dimensions if the header bytes got unlucky.
    }
  }
}

TEST(Fuzz, TraceLoaderThrowsButNeverCrashes) {
  lsm::sim::Rng rng(6);
  for (int round = 0; round < 300; ++round) {
    const auto bytes = random_bytes(rng, 512);
    std::string text(bytes.begin(), bytes.end());
    std::istringstream in(text);
    try {
      (void)lsm::trace::load_trace(in);
    } catch (const std::exception&) {
    }
  }
}

}  // namespace
}  // namespace lsm::mpeg
