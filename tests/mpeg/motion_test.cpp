#include "mpeg/motion.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>

#include "mpeg/videogen.h"
#include "sim/rng.h"

namespace lsm::mpeg {
namespace {

/// A frame with deterministic texture (no motion model — just content).
Frame textured_frame(std::uint64_t seed, int width = 64, int height = 48) {
  Frame frame(width, height);
  lsm::sim::Rng rng(seed);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      frame.y.set(x, y, static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
  }
  for (int y = 0; y < height / 2; ++y) {
    for (int x = 0; x < width / 2; ++x) {
      frame.cb.set(x, y, static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      frame.cr.set(x, y, static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
  }
  return frame;
}

/// Shifts frame content by (dx, dy); vacated pixels clamp to the border.
Frame shifted(const Frame& source, int dx, int dy) {
  Frame out(source.width(), source.height());
  for (int y = 0; y < source.height(); ++y) {
    for (int x = 0; x < source.width(); ++x) {
      out.y.set(x, y, source.y.at_clamped(x - dx, y - dy));
    }
  }
  for (int y = 0; y < source.height() / 2; ++y) {
    for (int x = 0; x < source.width() / 2; ++x) {
      out.cb.set(x, y, source.cb.at_clamped(x - dx / 2, y - dy / 2));
      out.cr.set(x, y, source.cr.at_clamped(x - dx / 2, y - dy / 2));
    }
  }
  return out;
}

TEST(Motion, ZeroVectorOnIdenticalFrames) {
  const Frame frame = textured_frame(1);
  const MotionSearchResult result = search_motion(frame, frame, 1, 1, 7);
  EXPECT_EQ(result.mv, (MotionVector{0, 0}));
  EXPECT_EQ(result.sad, 0);
}

TEST(Motion, RecoversPureTranslation) {
  const Frame reference = textured_frame(2);
  for (const auto& [dx, dy] : {std::pair{3, 2}, {-4, 1}, {0, -5}, {6, -6}}) {
    const Frame current = shifted(reference, dx, dy);
    // Interior macroblock so the clamped border does not interfere.
    const MotionSearchResult result =
        search_motion(current, reference, 1, 1, 7);
    EXPECT_EQ(result.mv.dx, -dx) << "dx=" << dx << " dy=" << dy;
    EXPECT_EQ(result.mv.dy, -dy) << "dx=" << dx << " dy=" << dy;
    EXPECT_EQ(result.sad, 0);
  }
}

TEST(Motion, RangeLimitsTheSearch) {
  const Frame reference = textured_frame(3);
  const Frame current = shifted(reference, 6, 0);
  const MotionSearchResult narrow = search_motion(current, reference, 1, 1, 2);
  // The true vector (-6, 0) is outside range 2.
  EXPECT_LE(std::abs(narrow.mv.dx), 2);
  EXPECT_LE(std::abs(narrow.mv.dy), 2);
  EXPECT_GT(narrow.sad, 0);
}

TEST(Motion, ZeroBiasPrefersStillVector) {
  // On a flat frame every vector has SAD 0; the zero vector must win.
  Frame flat(64, 48);
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 64; ++x) flat.y.set(x, y, 128);
  }
  const MotionSearchResult result = search_motion(flat, flat, 1, 1, 7);
  EXPECT_EQ(result.mv, (MotionVector{0, 0}));
}

TEST(Motion, SadMatchesManualComputation) {
  Frame a(32, 32), b(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      a.y.set(x, y, 100);
      b.y.set(x, y, 103);
    }
  }
  EXPECT_EQ(luma_sad(a, b, 0, 0, MotionVector{0, 0}), 256 * 3);
}

TEST(Motion, ExtractMacroblockReadsCorrectPixels) {
  const Frame frame = textured_frame(4);
  const MacroblockPixels mb = extract_macroblock(frame, 1, 2);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      ASSERT_EQ(mb.y[static_cast<std::size_t>(y * 16 + x)],
                frame.y.at(16 + x, 32 + y));
    }
  }
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      ASSERT_EQ(mb.cb[static_cast<std::size_t>(y * 8 + x)],
                frame.cb.at(8 + x, 16 + y));
    }
  }
}

TEST(Motion, ExtractWithVectorDisplaces) {
  const Frame frame = textured_frame(5);
  const MacroblockPixels moved =
      extract_macroblock(frame, 1, 1, MotionVector{3, -2});
  EXPECT_EQ(moved.y[0], frame.y.at(16 + 3, 16 - 2));
  // Chroma displaced by mv/2.
  EXPECT_EQ(moved.cb[0], frame.cb.at(8 + 1, 8 - 1));
}

TEST(Motion, ExtractClampsAtBorders) {
  const Frame frame = textured_frame(6);
  // Far out-of-range vector: every sample clamps to the frame corner region.
  const MacroblockPixels mb =
      extract_macroblock(frame, 0, 0, MotionVector{-100, -100});
  for (const auto sample : mb.y) {
    ASSERT_EQ(sample, frame.y.at(0, 0));
  }
}

TEST(Motion, AverageRoundsUp) {
  MacroblockPixels a, b;
  a.y.fill(10);
  b.y.fill(13);
  a.cb.fill(0);
  b.cb.fill(1);
  a.cr.fill(200);
  b.cr.fill(200);
  const MacroblockPixels avg = average(a, b);
  EXPECT_EQ(avg.y[0], 12);   // (10+13+1)/2
  EXPECT_EQ(avg.cb[0], 1);   // (0+1+1)/2
  EXPECT_EQ(avg.cr[0], 200);
}

}  // namespace
}  // namespace lsm::mpeg
