#include "mpeg/motion.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>

#include "mpeg/videogen.h"
#include "sim/rng.h"

namespace lsm::mpeg {
namespace {

/// A frame with deterministic texture (no motion model — just content).
Frame textured_frame(std::uint64_t seed, int width = 64, int height = 48) {
  Frame frame(width, height);
  lsm::sim::Rng rng(seed);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      frame.y.set(x, y, static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
  }
  for (int y = 0; y < height / 2; ++y) {
    for (int x = 0; x < width / 2; ++x) {
      frame.cb.set(x, y, static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      frame.cr.set(x, y, static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
  }
  return frame;
}

/// Shifts frame content by (dx, dy); vacated pixels clamp to the border.
Frame shifted(const Frame& source, int dx, int dy) {
  Frame out(source.width(), source.height());
  for (int y = 0; y < source.height(); ++y) {
    for (int x = 0; x < source.width(); ++x) {
      out.y.set(x, y, source.y.at_clamped(x - dx, y - dy));
    }
  }
  for (int y = 0; y < source.height() / 2; ++y) {
    for (int x = 0; x < source.width() / 2; ++x) {
      out.cb.set(x, y, source.cb.at_clamped(x - dx / 2, y - dy / 2));
      out.cr.set(x, y, source.cr.at_clamped(x - dx / 2, y - dy / 2));
    }
  }
  return out;
}

TEST(Motion, ZeroVectorOnIdenticalFrames) {
  const Frame frame = textured_frame(1);
  const MotionSearchResult result = search_motion(frame, frame, 1, 1, 7);
  EXPECT_EQ(result.mv, (MotionVector{0, 0}));
  EXPECT_EQ(result.sad, 0);
}

TEST(Motion, RecoversPureTranslation) {
  const Frame reference = textured_frame(2);
  for (const auto& [dx, dy] : {std::pair{3, 2}, {-4, 1}, {0, -5}, {6, -6}}) {
    const Frame current = shifted(reference, dx, dy);
    // Interior macroblock so the clamped border does not interfere.
    const MotionSearchResult result =
        search_motion(current, reference, 1, 1, 7);
    EXPECT_EQ(result.mv.dx, -dx) << "dx=" << dx << " dy=" << dy;
    EXPECT_EQ(result.mv.dy, -dy) << "dx=" << dx << " dy=" << dy;
    EXPECT_EQ(result.sad, 0);
  }
}

TEST(Motion, RangeLimitsTheSearch) {
  const Frame reference = textured_frame(3);
  const Frame current = shifted(reference, 6, 0);
  const MotionSearchResult narrow = search_motion(current, reference, 1, 1, 2);
  // The true vector (-6, 0) is outside range 2.
  EXPECT_LE(std::abs(narrow.mv.dx), 2);
  EXPECT_LE(std::abs(narrow.mv.dy), 2);
  EXPECT_GT(narrow.sad, 0);
}

TEST(Motion, ZeroBiasPrefersStillVector) {
  // On a flat frame every vector has SAD 0; the zero vector must win.
  Frame flat(64, 48);
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 64; ++x) flat.y.set(x, y, 128);
  }
  const MotionSearchResult result = search_motion(flat, flat, 1, 1, 7);
  EXPECT_EQ(result.mv, (MotionVector{0, 0}));
}

TEST(Motion, SadMatchesManualComputation) {
  Frame a(32, 32), b(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      a.y.set(x, y, 100);
      b.y.set(x, y, 103);
    }
  }
  EXPECT_EQ(luma_sad(a, b, 0, 0, MotionVector{0, 0}), 256 * 3);
}

TEST(Motion, ExtractMacroblockReadsCorrectPixels) {
  const Frame frame = textured_frame(4);
  const MacroblockPixels mb = extract_macroblock(frame, 1, 2);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      ASSERT_EQ(mb.y[static_cast<std::size_t>(y * 16 + x)],
                frame.y.at(16 + x, 32 + y));
    }
  }
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      ASSERT_EQ(mb.cb[static_cast<std::size_t>(y * 8 + x)],
                frame.cb.at(8 + x, 16 + y));
    }
  }
}

TEST(Motion, ExtractWithVectorDisplaces) {
  const Frame frame = textured_frame(5);
  const MacroblockPixels moved =
      extract_macroblock(frame, 1, 1, MotionVector{3, -2});
  EXPECT_EQ(moved.y[0], frame.y.at(16 + 3, 16 - 2));
  // Chroma displaced by mv/2.
  EXPECT_EQ(moved.cb[0], frame.cb.at(8 + 1, 8 - 1));
}

TEST(Motion, ExtractClampsAtBorders) {
  const Frame frame = textured_frame(6);
  // Far out-of-range vector: every sample clamps to the frame corner region.
  const MacroblockPixels mb =
      extract_macroblock(frame, 0, 0, MotionVector{-100, -100});
  for (const auto sample : mb.y) {
    ASSERT_EQ(sample, frame.y.at(0, 0));
  }
}

TEST(Motion, AverageRoundsUp) {
  MacroblockPixels a, b;
  a.y.fill(10);
  b.y.fill(13);
  a.cb.fill(0);
  b.cb.fill(1);
  a.cr.fill(200);
  b.cr.fill(200);
  const MacroblockPixels avg = average(a, b);
  EXPECT_EQ(avg.y[0], 12);   // (10+13+1)/2
  EXPECT_EQ(avg.cb[0], 1);   // (0+1+1)/2
  EXPECT_EQ(avg.cr[0], 200);
}

TEST(Motion, FastSadMatchesScalarForInteriorAndBorderVectors) {
  const Frame current = textured_frame(41);
  const Frame reference = textured_frame(42);
  // Macroblock (0,0) forces border clamping for negative vectors; (1,1) is
  // interior for small ones. Both must agree with the scalar loop exactly.
  for (const auto& [mb_x, mb_y] :
       std::initializer_list<std::pair<int, int>>{{0, 0}, {1, 1}}) {
    for (int dy = -9; dy <= 9; dy += 3) {
      for (int dx = -9; dx <= 9; dx += 3) {
        const MotionVector mv{dx, dy};
        EXPECT_EQ(luma_sad_fast(current, reference, mb_x, mb_y, mv),
                  luma_sad(current, reference, mb_x, mb_y, mv))
            << "mb (" << mb_x << "," << mb_y << ") mv (" << dx << "," << dy
            << ")";
      }
    }
  }
}

TEST(Motion, FastSadCutoffNeverUnderReportsBelowTheCutoff) {
  // Contract (motion.h): exact below stop_at, and any value >= stop_at once
  // the cutoff triggers — so a `sad < best` comparison decides identically.
  const Frame current = textured_frame(43);
  const Frame reference = textured_frame(44);
  for (int dy = -4; dy <= 4; dy += 2) {
    for (int dx = -4; dx <= 4; dx += 2) {
      const MotionVector mv{dx, dy};
      const int exact = luma_sad(current, reference, 1, 1, mv);
      for (const int stop_at : {1, exact / 2, exact, exact + 1}) {
        const int got = luma_sad_fast(current, reference, 1, 1, mv, stop_at);
        if (got < stop_at) {
          EXPECT_EQ(got, exact);
        } else {
          EXPECT_GE(exact, stop_at);
        }
      }
    }
  }
}

TEST(Motion, FastHalfpelSadMatchesScalarInAllFourPhases) {
  const Frame current = textured_frame(45);
  const Frame reference = textured_frame(46);
  for (const auto& [mb_x, mb_y] :
       std::initializer_list<std::pair<int, int>>{{0, 0}, {1, 1}}) {
    for (int dy = -3; dy <= 3; ++dy) {    // odd and even: all four
      for (int dx = -3; dx <= 3; ++dx) {  // interpolation phases
        const MotionVector mv{dx, dy};
        EXPECT_EQ(luma_sad_halfpel_fast(current, reference, mb_x, mb_y, mv),
                  luma_sad_halfpel(current, reference, mb_x, mb_y, mv))
            << "mb (" << mb_x << "," << mb_y << ") half-pel (" << dx << ","
            << dy << ")";
      }
    }
  }
}

TEST(Motion, FastSearchReturnsScalarSearchResult) {
  const Frame base = textured_frame(47);
  for (const auto& [dx, dy] : std::initializer_list<std::pair<int, int>>{
           {0, 0}, {3, -2}, {-5, 4}}) {
    const Frame current = shifted(base, dx, dy);
    for (int mb_y = 0; mb_y < current.height() / 16; ++mb_y) {
      for (int mb_x = 0; mb_x < current.width() / 16; ++mb_x) {
        const MotionSearchResult scalar =
            search_motion(current, base, mb_x, mb_y, 7);
        const MotionSearchResult fast =
            search_motion_fast(current, base, mb_x, mb_y, 7);
        EXPECT_EQ(fast.mv, scalar.mv)
            << "shift (" << dx << "," << dy << ") mb (" << mb_x << ","
            << mb_y << ")";
        EXPECT_EQ(fast.sad, scalar.sad);
        const MotionSearchResult scalar_half =
            search_motion_halfpel(current, base, mb_x, mb_y, 7);
        const MotionSearchResult fast_half =
            search_motion_halfpel_fast(current, base, mb_x, mb_y, 7);
        EXPECT_EQ(fast_half.mv, scalar_half.mv);
        EXPECT_EQ(fast_half.sad, scalar_half.sad);
      }
    }
  }
}

TEST(Motion, FastSearchPreservesZeroVectorPreferenceOnStaticContent) {
  // A static pair makes every candidate tie at SAD close to 0; the zero
  // bias must hand the win to mv = (0,0) on both paths.
  const Frame frame = textured_frame(48);
  const MotionSearchResult scalar = search_motion(frame, frame, 1, 1, 7);
  const MotionSearchResult fast = search_motion_fast(frame, frame, 1, 1, 7);
  EXPECT_EQ(scalar.mv, (MotionVector{0, 0}));
  EXPECT_EQ(fast.mv, (MotionVector{0, 0}));
  EXPECT_EQ(fast.sad, scalar.sad);
}

TEST(Motion, FastAverageAndMacroblockSadMatchScalar) {
  const Frame frame_a = textured_frame(49);
  const Frame frame_b = textured_frame(50);
  const MacroblockPixels a = extract_macroblock(frame_a, 1, 1);
  const MacroblockPixels b = extract_macroblock(frame_b, 1, 1);
  EXPECT_EQ(average_fast(a, b), average(a, b));
  int scalar_sad = 0;
  for (std::size_t k = 0; k < a.y.size(); ++k) {
    scalar_sad += std::abs(static_cast<int>(a.y[k]) - static_cast<int>(b.y[k]));
  }
  EXPECT_EQ(macroblock_luma_sad_fast(a, b), scalar_sad);
}

TEST(Motion, FastHalfpelExtractMatchesScalarEverywhere) {
  const Frame frame = textured_frame(51);
  for (int mb_y = 0; mb_y < frame.height() / 16; ++mb_y) {
    for (int mb_x = 0; mb_x < frame.width() / 16; ++mb_x) {
      for (int dy = -3; dy <= 3; ++dy) {
        for (int dx = -3; dx <= 3; ++dx) {
          const MotionVector mv{dx, dy};
          EXPECT_EQ(extract_macroblock_halfpel_fast(frame, mb_x, mb_y, mv),
                    extract_macroblock_halfpel(frame, mb_x, mb_y, mv))
              << "mb (" << mb_x << "," << mb_y << ") half-pel (" << dx << ","
              << dy << ")";
        }
      }
    }
  }
}

}  // namespace
}  // namespace lsm::mpeg
