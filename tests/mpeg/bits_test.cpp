#include "mpeg/bits.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/rng.h"

namespace lsm::mpeg {
namespace {

TEST(BitIo, SingleBitsRoundTrip) {
  BitWriter writer;
  const bool pattern[] = {true, false, true, true, false, false, true, false,
                          true, true, true};
  for (const bool bit : pattern) writer.put_bit(bit);
  BitReader reader(writer.take());
  for (const bool bit : pattern) EXPECT_EQ(reader.get_bit(), bit);
}

TEST(BitIo, MultiBitValuesRoundTrip) {
  BitWriter writer;
  writer.put_bits(0x5, 3);
  writer.put_bits(0x12345, 20);
  writer.put_bits(0xFFFFFFFF, 32);
  writer.put_bits(0, 1);
  BitReader reader(writer.take());
  EXPECT_EQ(reader.get_bits(3), 0x5u);
  EXPECT_EQ(reader.get_bits(20), 0x12345u);
  EXPECT_EQ(reader.get_bits(32), 0xFFFFFFFFu);
  EXPECT_EQ(reader.get_bits(1), 0u);
}

TEST(BitIo, RandomizedRoundTrip) {
  lsm::sim::Rng rng(5);
  std::vector<std::pair<std::uint32_t, int>> values;
  BitWriter writer;
  for (int k = 0; k < 5000; ++k) {
    const int count = static_cast<int>(rng.uniform_int(1, 32));
    const std::uint32_t value =
        count == 32 ? static_cast<std::uint32_t>(rng.next_u64())
                    : static_cast<std::uint32_t>(
                          rng.uniform_int(0, (1LL << count) - 1));
    values.emplace_back(value, count);
    writer.put_bits(value, count);
  }
  BitReader reader(writer.take());
  for (const auto& [value, count] : values) {
    ASSERT_EQ(reader.get_bits(count), value);
  }
}

TEST(BitIo, ValueTooWideThrows) {
  BitWriter writer;
  EXPECT_THROW(writer.put_bits(4, 2), std::invalid_argument);
  EXPECT_THROW(writer.put_bits(0, 33), std::invalid_argument);
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter writer;
  writer.put_bits(0xA, 4);
  BitReader reader(writer.take());
  reader.get_bits(8);  // padded byte
  EXPECT_THROW(reader.get_bits(1), std::out_of_range);
}

TEST(BitIo, AlignmentPadsWithZeros) {
  BitWriter writer;
  writer.put_bits(1, 1);
  writer.align();
  EXPECT_TRUE(writer.aligned());
  writer.put_bits(0xAB, 8);
  BitReader reader(writer.take());
  EXPECT_EQ(reader.get_bits(8), 0x80u);
  EXPECT_EQ(reader.get_bits(8), 0xABu);
}

TEST(BitIo, BitCountTracksWrites) {
  BitWriter writer;
  EXPECT_EQ(writer.bit_count(), 0);
  writer.put_bits(1, 1);
  EXPECT_EQ(writer.bit_count(), 1);
  writer.put_bits(0, 10);
  EXPECT_EQ(writer.bit_count(), 11);
  writer.align();
  EXPECT_EQ(writer.bit_count(), 16);
}

TEST(Escaping, StartCodePatternNeverAppearsInEscapedPayload) {
  // Payload engineered to contain every dangerous pattern.
  std::vector<std::uint8_t> payload = {0x00, 0x00, 0x01, 0xFF, 0x00, 0x00,
                                       0x00, 0x00, 0x02, 0x00, 0x00, 0x03,
                                       0x00, 0x00};
  const std::vector<std::uint8_t> escaped = escape_payload(payload);
  EXPECT_EQ(find_start_code(escaped, 0), -1);
  EXPECT_EQ(unescape_payload(escaped), payload);
}

TEST(Escaping, RandomPayloadsRoundTripAndStayClean) {
  lsm::sim::Rng rng(17);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> payload;
    const int size = static_cast<int>(rng.uniform_int(0, 300));
    for (int k = 0; k < size; ++k) {
      // Heavily zero-biased to stress the escaper.
      payload.push_back(rng.bernoulli(0.6)
                            ? 0x00
                            : static_cast<std::uint8_t>(rng.uniform_int(0, 4)));
    }
    const std::vector<std::uint8_t> escaped = escape_payload(payload);
    ASSERT_EQ(find_start_code(escaped, 0), -1) << "round " << round;
    ASSERT_EQ(unescape_payload(escaped), payload) << "round " << round;
  }
}

TEST(Escaping, TrailingZerosGetGuardByte) {
  const std::vector<std::uint8_t> payload = {0xAA, 0x00, 0x00};
  const std::vector<std::uint8_t> escaped = escape_payload(payload);
  // A following start code must not merge with the payload tail.
  std::vector<std::uint8_t> stream = escaped;
  append_start_code(stream, 0x42);
  const std::int64_t at = find_start_code(stream, 0);
  ASSERT_GE(at, 0);
  EXPECT_EQ(stream[static_cast<std::size_t>(at + 3)], 0x42);
  EXPECT_EQ(at, static_cast<std::int64_t>(escaped.size()));
}

TEST(BitIo, ChunkedWritesMatchBitByBitWrites) {
  // put_bits writes whole bytes at a time; a bit-by-bit shadow writer is
  // the reference. Random widths at random alignments must agree exactly.
  lsm::sim::Rng rng(31);
  BitWriter chunked;
  BitWriter reference;
  for (int n = 0; n < 2000; ++n) {
    const int count = rng.uniform_int(0, 32);
    const std::uint32_t value =
        count == 0 ? 0u
        : count == 32
            ? static_cast<std::uint32_t>(rng.uniform_int(0, 0x7FFFFFFF)) * 2u +
                  static_cast<std::uint32_t>(rng.uniform_int(0, 1))
            : static_cast<std::uint32_t>(rng.uniform_int(
                  0, static_cast<int>((1u << count) - 1u)));
    chunked.put_bits(value, count);
    for (int k = count - 1; k >= 0; --k) {
      reference.put_bit(((value >> k) & 1u) != 0);
    }
    ASSERT_EQ(chunked.bit_count(), reference.bit_count()) << "write " << n;
  }
  EXPECT_EQ(chunked.take(), reference.take());
}

TEST(BitIo, WritesStraddlingByteBoundariesRoundTrip) {
  BitWriter writer;
  writer.put_bits(0x1, 3);          // partial byte
  writer.put_bits(0xABCDE, 20);     // straddles three bytes
  writer.put_bits(0x0, 0);          // no-op
  writer.put_bits(0xFFFFFFFF, 32);  // full word, unaligned
  writer.put_bits(0x2A, 9);
  BitReader reader(writer.take());
  EXPECT_EQ(reader.get_bits(3), 0x1u);
  EXPECT_EQ(reader.get_bits(20), 0xABCDEu);
  EXPECT_EQ(reader.get_bits(32), 0xFFFFFFFFu);
  EXPECT_EQ(reader.get_bits(9), 0x2Au);
}

TEST(BitIo, ReserveDoesNotAffectOutput) {
  BitWriter plain;
  BitWriter reserved;
  reserved.reserve(1024);
  for (int k = 0; k < 100; ++k) {
    plain.put_bits(static_cast<std::uint32_t>(k), 7);
    reserved.put_bits(static_cast<std::uint32_t>(k), 7);
  }
  EXPECT_EQ(reserved.bit_count(), plain.bit_count());
  EXPECT_EQ(reserved.take(), plain.take());
}

TEST(BitIo, ChunkedWriterStillValidatesArguments) {
  BitWriter writer;
  writer.put_bits(0x7, 3);  // leave the writer mid-byte
  EXPECT_THROW(writer.put_bits(0, -1), std::invalid_argument);
  EXPECT_THROW(writer.put_bits(0, 33), std::invalid_argument);
  EXPECT_THROW(writer.put_bits(0x8, 3), std::invalid_argument);
  // The failed calls must not have written anything.
  EXPECT_EQ(writer.bit_count(), 3);
}

TEST(StartCodes, FindLocatesAllCodes) {
  std::vector<std::uint8_t> stream;
  append_start_code(stream, startcode::kSequenceHeader);
  stream.push_back(0xAB);
  append_start_code(stream, startcode::kPicture);
  const std::int64_t first = find_start_code(stream, 0);
  EXPECT_EQ(first, 0);
  const std::int64_t second = find_start_code(stream, first + 4);
  EXPECT_EQ(second, 5);
  EXPECT_EQ(find_start_code(stream, second + 4), -1);
}

}  // namespace
}  // namespace lsm::mpeg
