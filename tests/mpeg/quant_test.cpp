#include "mpeg/quant.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/rng.h"

namespace lsm::mpeg {
namespace {

TEST(Quant, IntraDcUsesFixedStepOfEight) {
  CoeffBlock coeffs{};
  coeffs[0] = 800;
  for (const int scale : {1, 8, 31}) {
    const CoeffBlock levels = quantize_intra(coeffs, scale);
    EXPECT_EQ(levels[0], 100) << "scale " << scale;
    const CoeffBlock back = dequantize_intra(levels, scale);
    EXPECT_EQ(back[0], 800);
  }
}

TEST(Quant, CoarserScaleZeroesMoreCoefficients) {
  lsm::sim::Rng rng(3);
  CoeffBlock coeffs{};
  for (std::size_t k = 0; k < 64; ++k) {
    coeffs[k] = static_cast<std::int16_t>(rng.uniform_int(-60, 60));
  }
  auto zero_count = [](const CoeffBlock& levels) {
    int zeros = 0;
    for (const auto v : levels) zeros += v == 0 ? 1 : 0;
    return zeros;
  };
  const int fine = zero_count(quantize_intra(coeffs, 2));
  const int coarse = zero_count(quantize_intra(coeffs, 30));
  EXPECT_GT(coarse, fine);
}

TEST(Quant, ReconstructionErrorBoundedByStep) {
  lsm::sim::Rng rng(5);
  for (const int scale : {1, 4, 8, 16, 31}) {
    CoeffBlock coeffs{};
    for (std::size_t k = 0; k < 64; ++k) {
      coeffs[k] = static_cast<std::int16_t>(rng.uniform_int(-1000, 1000));
    }
    const CoeffBlock recon =
        dequantize_intra(quantize_intra(coeffs, scale), scale);
    const auto& matrix = intra_quant_matrix();
    for (std::size_t k = 1; k < 64; ++k) {
      const double step = scale * matrix[k] / 8.0;
      ASSERT_LE(std::abs(recon[k] - coeffs[k]), step + 1.0)
          << "scale " << scale << " k " << k;
    }
  }
}

TEST(Quant, InterFlatMatrixErrorBound) {
  lsm::sim::Rng rng(7);
  for (const int scale : {1, 6, 15, 31}) {
    CoeffBlock coeffs{};
    for (std::size_t k = 0; k < 64; ++k) {
      coeffs[k] = static_cast<std::int16_t>(rng.uniform_int(-2000, 2000));
    }
    const CoeffBlock recon =
        dequantize_inter(quantize_inter(coeffs, scale), scale);
    const double step = scale * 16.0 / 8.0;
    for (std::size_t k = 0; k < 64; ++k) {
      ASSERT_LE(std::abs(recon[k] - coeffs[k]), step + 1.0);
    }
  }
}

TEST(Quant, QuantizationIsMonotone) {
  // Larger coefficients never quantize to smaller levels.
  for (int v = -500; v <= 500; v += 7) {
    CoeffBlock a{}, b{};
    a[10] = static_cast<std::int16_t>(v);
    b[10] = static_cast<std::int16_t>(v + 7);
    EXPECT_LE(quantize_intra(a, 8)[10], quantize_intra(b, 8)[10]);
    EXPECT_LE(quantize_inter(a, 8)[10], quantize_inter(b, 8)[10]);
  }
}

TEST(Quant, SymmetricAroundZero) {
  CoeffBlock pos{}, neg{};
  pos[5] = 123;
  neg[5] = -123;
  EXPECT_EQ(quantize_intra(pos, 6)[5], -quantize_intra(neg, 6)[5]);
  EXPECT_EQ(quantize_inter(pos, 6)[5], -quantize_inter(neg, 6)[5]);
}

TEST(Quant, RejectsBadScale) {
  const CoeffBlock coeffs{};
  EXPECT_THROW(quantize_intra(coeffs, 0), std::invalid_argument);
  EXPECT_THROW(quantize_intra(coeffs, 32), std::invalid_argument);
  EXPECT_THROW(dequantize_inter(coeffs, -1), std::invalid_argument);
}

TEST(Quant, MatrixMatchesIsoDefaultCorners) {
  const auto& matrix = intra_quant_matrix();
  EXPECT_EQ(matrix[0], 8);    // DC position
  EXPECT_EQ(matrix[63], 83);  // highest frequency
  EXPECT_EQ(matrix[7], 34);
}

TEST(Quant, FastQuantizersMatchScalarBitwise) {
  // The SIMD quantizers route the integer divisions through packed double
  // division; quant.h argues the results are exact, this checks it across
  // the DCT output range and every extreme scale, including the
  // rounding-sensitive half-away (intra) and truncation (inter) cases.
  lsm::sim::Rng rng(23);
  for (const int scale : {1, 2, 7, 16, 31}) {
    for (int trial = 0; trial < 100; ++trial) {
      CoeffBlock coeffs;
      for (auto& c : coeffs) {
        c = static_cast<std::int16_t>(rng.uniform_int(-2048, 2048));
      }
      EXPECT_EQ(quantize_intra_fast(coeffs, scale),
                quantize_intra(coeffs, scale))
          << "intra scale " << scale << " trial " << trial;
      EXPECT_EQ(quantize_inter_fast(coeffs, scale),
                quantize_inter(coeffs, scale))
          << "inter scale " << scale << " trial " << trial;
    }
  }
}

TEST(Quant, FastQuantizersValidateScaleLikeScalar) {
  const CoeffBlock coeffs{};
  EXPECT_THROW(quantize_intra_fast(coeffs, 0), std::invalid_argument);
  EXPECT_THROW(quantize_inter_fast(coeffs, 32), std::invalid_argument);
}

}  // namespace
}  // namespace lsm::mpeg
