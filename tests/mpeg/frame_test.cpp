#include "mpeg/frame.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace lsm::mpeg {
namespace {

TEST(Plane, ConstructionAndAccess) {
  Plane plane(8, 4, 77);
  EXPECT_EQ(plane.width(), 8);
  EXPECT_EQ(plane.height(), 4);
  EXPECT_EQ(plane.at(0, 0), 77);
  EXPECT_EQ(plane.at(7, 3), 77);
  plane.set(3, 2, 200);
  EXPECT_EQ(plane.at(3, 2), 200);
}

TEST(Plane, BoundsChecked) {
  Plane plane(8, 4);
  EXPECT_THROW(plane.at(8, 0), std::out_of_range);
  EXPECT_THROW(plane.at(0, 4), std::out_of_range);
  EXPECT_THROW(plane.at(-1, 0), std::out_of_range);
  EXPECT_THROW(plane.set(0, -1, 0), std::out_of_range);
  EXPECT_THROW(Plane(0, 4), std::invalid_argument);
}

TEST(Plane, ClampedReadsAtBorders) {
  Plane plane(4, 4);
  plane.set(0, 0, 10);
  plane.set(3, 3, 20);
  EXPECT_EQ(plane.at_clamped(-5, -5), 10);
  EXPECT_EQ(plane.at_clamped(100, 100), 20);
  EXPECT_EQ(plane.at_clamped(-1, 3), plane.at(0, 3));
}

TEST(Frame, ChromaIsQuarterSize) {
  const Frame frame(64, 48);
  EXPECT_EQ(frame.y.width(), 64);
  EXPECT_EQ(frame.cb.width(), 32);
  EXPECT_EQ(frame.cb.height(), 24);
  EXPECT_EQ(frame.mb_cols(), 4);
  EXPECT_EQ(frame.mb_rows(), 3);
  // Chroma planes start at mid-gray.
  EXPECT_EQ(frame.cb.at(0, 0), 128);
  EXPECT_EQ(frame.cr.at(10, 10), 128);
}

TEST(Frame, RequiresMacroblockAlignment) {
  EXPECT_THROW(Frame(60, 48), std::invalid_argument);
  EXPECT_THROW(Frame(64, 40), std::invalid_argument);
  EXPECT_NO_THROW(Frame(16, 16));
}

TEST(Psnr, IdenticalFramesAreInfinite) {
  const Frame a(32, 32);
  EXPECT_TRUE(std::isinf(psnr_y(a, a)));
}

TEST(Psnr, KnownUniformError) {
  Frame a(32, 32), b(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      a.y.set(x, y, 100);
      b.y.set(x, y, 110);  // error 10 everywhere: MSE = 100
    }
  }
  EXPECT_NEAR(psnr_y(a, b), 10.0 * std::log10(255.0 * 255.0 / 100.0), 1e-9);
}

TEST(Psnr, SizeMismatchThrows) {
  const Frame a(32, 32), b(64, 32);
  EXPECT_THROW(psnr_y(a, b), std::invalid_argument);
}

TEST(Psnr, MoreErrorMeansLowerPsnr) {
  Frame reference(32, 32), small_err(32, 32), big_err(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      reference.y.set(x, y, 128);
      small_err.y.set(x, y, 130);
      big_err.y.set(x, y, 160);
    }
  }
  EXPECT_GT(psnr_y(reference, small_err), psnr_y(reference, big_err));
}

}  // namespace
}  // namespace lsm::mpeg
