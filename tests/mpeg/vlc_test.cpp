#include "mpeg/vlc.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/rng.h"

namespace lsm::mpeg {
namespace {

TEST(ExpGolomb, KnownCodewords) {
  // 0 -> "1" (1 bit), 1 -> "010", 2 -> "011", 3 -> "00100".
  BitWriter writer;
  put_ue(writer, 0);
  put_ue(writer, 1);
  put_ue(writer, 2);
  put_ue(writer, 3);
  EXPECT_EQ(writer.bit_count(), 1 + 3 + 3 + 5);
  BitReader reader(writer.take());
  EXPECT_EQ(get_ue(reader), 0u);
  EXPECT_EQ(get_ue(reader), 1u);
  EXPECT_EQ(get_ue(reader), 2u);
  EXPECT_EQ(get_ue(reader), 3u);
}

TEST(ExpGolomb, ShorterCodesForSmallerValues) {
  auto bits_for = [](std::uint32_t value) {
    BitWriter writer;
    put_ue(writer, value);
    return writer.bit_count();
  };
  EXPECT_LT(bits_for(0), bits_for(1));
  EXPECT_LE(bits_for(1), bits_for(5));
  EXPECT_LT(bits_for(5), bits_for(100));
  EXPECT_LT(bits_for(100), bits_for(100000));
}

TEST(ExpGolomb, UnsignedRoundTripSweep) {
  BitWriter writer;
  for (std::uint32_t v = 0; v < 2000; ++v) put_ue(writer, v);
  put_ue(writer, 0x7FFFFFFF);
  BitReader reader(writer.take());
  for (std::uint32_t v = 0; v < 2000; ++v) ASSERT_EQ(get_ue(reader), v);
  EXPECT_EQ(get_ue(reader), 0x7FFFFFFFu);
}

TEST(ExpGolomb, SignedRoundTripSweep) {
  BitWriter writer;
  for (std::int32_t v = -1500; v <= 1500; ++v) put_se(writer, v);
  put_se(writer, 1 << 30);
  put_se(writer, -(1 << 30));
  BitReader reader(writer.take());
  for (std::int32_t v = -1500; v <= 1500; ++v) ASSERT_EQ(get_se(reader), v);
  EXPECT_EQ(get_se(reader), 1 << 30);
  EXPECT_EQ(get_se(reader), -(1 << 30));
}

TEST(ExpGolomb, SignedMappingOrder) {
  // 0, 1, -1, 2, -2 map to codes of non-decreasing length.
  auto bits_for = [](std::int32_t value) {
    BitWriter writer;
    put_se(writer, value);
    return writer.bit_count();
  };
  EXPECT_LT(bits_for(0), bits_for(1));
  EXPECT_EQ(bits_for(1), bits_for(-1));
  EXPECT_EQ(bits_for(2), bits_for(-2));
  EXPECT_LE(bits_for(1), bits_for(2));
}

TEST(Vlc, BlockRoundTrip) {
  lsm::sim::Rng rng(31);
  for (int round = 0; round < 200; ++round) {
    const std::int16_t dc = static_cast<std::int16_t>(
        rng.uniform_int(-1000, 1000));
    std::vector<RunLevel> ac;
    int budget = 63;
    while (budget > 1 && rng.bernoulli(0.7)) {
      const int run =
          static_cast<int>(rng.uniform_int(0, std::min(10, budget - 1)));
      std::int16_t level = static_cast<std::int16_t>(rng.uniform_int(1, 500));
      if (rng.bernoulli(0.5)) level = static_cast<std::int16_t>(-level);
      ac.push_back(RunLevel{static_cast<std::uint8_t>(run), level});
      budget -= run + 1;
    }
    BitWriter writer;
    put_block(writer, dc, ac);
    BitReader reader(writer.take());
    const DecodedBlock decoded = get_block(reader);
    ASSERT_EQ(decoded.dc, dc);
    ASSERT_EQ(decoded.ac.size(), ac.size());
    for (std::size_t k = 0; k < ac.size(); ++k) {
      ASSERT_EQ(decoded.ac[k].run, ac[k].run);
      ASSERT_EQ(decoded.ac[k].level, ac[k].level);
    }
  }
}

TEST(Vlc, MultipleBlocksBackToBack) {
  BitWriter writer;
  put_block(writer, 5, {RunLevel{0, 3}});
  put_block(writer, -2, {});
  put_block(writer, 0, {RunLevel{62, -1}});
  BitReader reader(writer.take());
  EXPECT_EQ(get_block(reader).dc, 5);
  const DecodedBlock second = get_block(reader);
  EXPECT_EQ(second.dc, -2);
  EXPECT_TRUE(second.ac.empty());
  const DecodedBlock third = get_block(reader);
  EXPECT_EQ(third.ac[0].run, 62);
  EXPECT_EQ(third.ac[0].level, -1);
}

TEST(Vlc, PutBlockRejectsZeroLevel) {
  BitWriter writer;
  EXPECT_THROW(put_block(writer, 0, {RunLevel{0, 0}}), std::invalid_argument);
}

TEST(Vlc, GetBlockRejectsBadRun) {
  BitWriter writer;
  put_se(writer, 0);   // dc
  put_ue(writer, 63);  // run 63: invalid (only <= 62 possible)
  put_se(writer, 1);
  put_ue(writer, kEndOfBlockRun);
  BitReader reader(writer.take());
  EXPECT_THROW(get_block(reader), std::runtime_error);
}

}  // namespace
}  // namespace lsm::mpeg
