#include "mpeg/videogen.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

namespace lsm::mpeg {
namespace {

VideoConfig small_config() {
  VideoConfig config;
  config.width = 96;
  config.height = 64;
  config.scenes = {VideoScene{10, 1.0, 0.5}, VideoScene{8, 1.4, 0.1}};
  config.seed = 77;
  return config;
}

double mean_abs_luma_diff(const Frame& a, const Frame& b) {
  double total = 0.0;
  const auto& pa = a.y.samples();
  const auto& pb = b.y.samples();
  for (std::size_t k = 0; k < pa.size(); ++k) {
    total += std::abs(static_cast<int>(pa[k]) - static_cast<int>(pb[k]));
  }
  return total / static_cast<double>(pa.size());
}

TEST(VideoGen, ProducesAllFramesAtRequestedSize) {
  const std::vector<Frame> frames = generate_video(small_config());
  ASSERT_EQ(frames.size(), 18u);
  for (const Frame& frame : frames) {
    EXPECT_EQ(frame.width(), 96);
    EXPECT_EQ(frame.height(), 64);
    EXPECT_EQ(frame.cb.width(), 48);
  }
}

TEST(VideoGen, Deterministic) {
  const std::vector<Frame> a = generate_video(small_config());
  const std::vector<Frame> b = generate_video(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_TRUE(a[k] == b[k]) << "frame " << k;
  }
}

TEST(VideoGen, SeedChangesContent) {
  VideoConfig other = small_config();
  other.seed = 78;
  const std::vector<Frame> a = generate_video(small_config());
  const std::vector<Frame> b = generate_video(other);
  EXPECT_FALSE(a[0] == b[0]);
}

TEST(VideoGen, ConsecutiveFramesWithinSceneAreSimilar) {
  const std::vector<Frame> frames = generate_video(small_config());
  // Within scene 1 (frames 0..9): small frame-to-frame change.
  const double within = mean_abs_luma_diff(frames[4], frames[5]);
  // Across the scene change (frames 9 -> 10): large change.
  const double across = mean_abs_luma_diff(frames[9], frames[10]);
  EXPECT_LT(within, 0.5 * across);
}

TEST(VideoGen, MotionLevelControlsFrameDifference) {
  VideoConfig still = small_config();
  still.scenes = {VideoScene{6, 1.0, 0.0}};
  VideoConfig moving = small_config();
  moving.scenes = {VideoScene{6, 1.0, 1.0}};
  const std::vector<Frame> a = generate_video(still);
  const std::vector<Frame> b = generate_video(moving);
  EXPECT_LT(mean_abs_luma_diff(a[2], a[3]) + 0.5,
            mean_abs_luma_diff(b[2], b[3]));
}

TEST(VideoGen, ComplexityRaisesSpatialDetail) {
  VideoConfig flat = small_config();
  flat.scenes = {VideoScene{2, 0.2, 0.0}};
  VideoConfig busy = small_config();
  busy.scenes = {VideoScene{2, 2.0, 0.0}};
  auto horizontal_activity = [](const Frame& frame) {
    double total = 0.0;
    for (int y = 0; y < frame.height(); ++y) {
      for (int x = 1; x < frame.width(); ++x) {
        total += std::abs(static_cast<int>(frame.y.at(x, y)) -
                          static_cast<int>(frame.y.at(x - 1, y)));
      }
    }
    return total;
  };
  const double calm = horizontal_activity(generate_video(flat)[0]);
  const double rich = horizontal_activity(generate_video(busy)[0]);
  EXPECT_GT(rich, 1.5 * calm);
}

TEST(VideoGen, RejectsBadConfig) {
  VideoConfig config = small_config();
  config.width = 100;  // not a multiple of 16
  EXPECT_THROW(generate_video(config), std::invalid_argument);
  config = small_config();
  config.scenes.clear();
  EXPECT_THROW(generate_video(config), std::invalid_argument);
  config = small_config();
  config.scenes[0].frames = 0;
  EXPECT_THROW(generate_video(config), std::invalid_argument);
}

}  // namespace
}  // namespace lsm::mpeg
