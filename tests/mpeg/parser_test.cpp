// The structure parser is what a transport-protocol implementation would run
// over a live encoder's output to obtain the picture-size sequence the
// smoothing algorithm needs; its accounting must agree bit-for-bit with the
// encoder's own bookkeeping.
#include "mpeg/parser.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "mpeg/encoder.h"
#include "mpeg/videogen.h"

namespace lsm::mpeg {
namespace {

EncodeResult encode_sample(int frames = 20) {
  VideoConfig video_config;
  video_config.width = 96;
  video_config.height = 64;
  video_config.scenes = {VideoScene{frames, 1.0, 0.5}};
  video_config.seed = 21;
  EncoderConfig encoder_config;
  encoder_config.pattern = lsm::trace::GopPattern(9, 3);
  return Encoder(encoder_config).encode(generate_video(video_config));
}

TEST(Parser, RecoversSequenceHeader) {
  const EncodeResult encoded = encode_sample();
  const ParseResult parsed = parse_stream(encoded.stream);
  EXPECT_TRUE(parsed.sequence_header == encoded.sequence_header);
  EXPECT_TRUE(parsed.has_sequence_end);
}

TEST(Parser, PictureSizesMatchEncoderExactly) {
  const EncodeResult encoded = encode_sample();
  const ParseResult parsed = parse_stream(encoded.stream);
  ASSERT_EQ(parsed.pictures.size(), encoded.pictures.size());
  for (std::size_t k = 0; k < parsed.pictures.size(); ++k) {
    ASSERT_EQ(parsed.pictures[k].bits, encoded.pictures[k].bits)
        << "picture " << k;
    ASSERT_EQ(parsed.pictures[k].display_index,
              encoded.pictures[k].display_index);
    ASSERT_EQ(parsed.pictures[k].type, encoded.pictures[k].type);
  }
}

TEST(Parser, GroupCountEqualsNumberOfIPictures) {
  const EncodeResult encoded = encode_sample(20);  // I at displays 0, 9, 18
  const ParseResult parsed = parse_stream(encoded.stream);
  EXPECT_EQ(parsed.group_count, 3);
}

TEST(Parser, SliceCountEqualsMacroblockRows) {
  const EncodeResult encoded = encode_sample();
  const ParseResult parsed = parse_stream(encoded.stream);
  for (const ParsedPicture& picture : parsed.pictures) {
    EXPECT_EQ(picture.slice_count, 64 / 16);
  }
}

TEST(Parser, DisplayTraceMatchesEncoderTrace) {
  const EncodeResult encoded = encode_sample();
  const ParseResult parsed = parse_stream(encoded.stream);
  const lsm::trace::Trace from_parser = parsed.display_trace("t");
  const lsm::trace::Trace from_encoder = encoded.display_trace("t");
  EXPECT_EQ(from_parser.sizes(), from_encoder.sizes());
  EXPECT_EQ(from_parser.types(), from_encoder.types());
  EXPECT_DOUBLE_EQ(from_parser.tau(), from_encoder.tau());
}

TEST(Parser, CodedTracePreservesStreamOrder) {
  const EncodeResult encoded = encode_sample();
  const ParseResult parsed = parse_stream(encoded.stream);
  const lsm::trace::Trace coded = parsed.coded_trace("t");
  for (std::size_t k = 0; k < parsed.pictures.size(); ++k) {
    EXPECT_EQ(coded.size_of(static_cast<int>(k) + 1),
              parsed.pictures[k].bits);
  }
}

TEST(Parser, WorksWithoutSequenceEndCode) {
  EncodeResult encoded = encode_sample();
  // Drop the 4-byte sequence end code.
  encoded.stream.resize(encoded.stream.size() - 4);
  const ParseResult parsed = parse_stream(encoded.stream);
  EXPECT_FALSE(parsed.has_sequence_end);
  ASSERT_EQ(parsed.pictures.size(), 20u);
  EXPECT_GT(parsed.pictures.back().bits, 0);
}

TEST(Parser, RejectsMalformedStreams) {
  EXPECT_THROW(parse_stream({0xFF, 0xFE}), std::runtime_error);
  // Slice before any picture.
  std::vector<std::uint8_t> bad;
  append_start_code(bad, startcode::kSequenceHeader);
  // minimal sequence header payload: 16+16+8+8+8 bits = 7 bytes
  for (int k = 0; k < 7; ++k) bad.push_back(0x10);
  append_start_code(bad, startcode::kSliceFirst);
  bad.push_back(0xAA);
  EXPECT_THROW(parse_stream(bad), std::runtime_error);
  // Picture before sequence header.
  std::vector<std::uint8_t> headerless;
  append_start_code(headerless, startcode::kPicture);
  headerless.push_back(0x00);
  headerless.push_back(0x00);
  headerless.push_back(0x00);
  EXPECT_THROW(parse_stream(headerless), std::runtime_error);
}

TEST(Parser, TotalBitsAreConsistentWithStreamSize) {
  const EncodeResult encoded = encode_sample();
  const ParseResult parsed = parse_stream(encoded.stream);
  std::int64_t picture_bits = 0;
  for (const ParsedPicture& picture : parsed.pictures) {
    picture_bits += picture.bits;
  }
  // Pictures account for most of the stream; headers are the remainder.
  const std::int64_t stream_bits =
      static_cast<std::int64_t>(encoded.stream.size()) * 8;
  EXPECT_LT(picture_bits, stream_bits);
  EXPECT_GT(picture_bits, stream_bits * 9 / 10);
}

}  // namespace
}  // namespace lsm::mpeg
