// Golden-seed regression corpus for plan generation: the committed dumps
// under tests/data/ pin the exact FaultPlan / ChannelPlan realizations a
// handful of seeds produce. Serialization is byte-exact (IEEE-754 bit
// patterns), so any RNG, ordering, or generation change shows up as a
// reviewable text diff instead of silent drift under the differentials.
//
// Regenerate after an *intentional* change with:
//   LSM_REGEN_GOLDEN=1 ./test_sim --gtest_filter='GoldenPlan*'
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/channel.h"
#include "sim/fault.h"
#include "sim/plan_io.h"

namespace lsm::sim {
namespace {

std::string data_dir() {
  const char* dir = std::getenv("LSM_SOURCE_DIR");
  return dir != nullptr ? std::string(dir) + "/tests/data" : "../tests/data";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) ADD_FAILURE() << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void check_golden(const std::string& name, const std::string& serialized) {
  const std::string path = data_dir() + "/" + name + ".lsmplan";
  if (std::getenv("LSM_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << serialized;
    GTEST_SKIP() << "regenerated " << path;
  }
  EXPECT_EQ(read_file(path), serialized) << name << " drifted";
}

FaultSpec corpus_fault_spec(std::uint64_t seed) {
  FaultSpec spec;
  spec.seed = seed;
  spec.horizon = 30.0;
  spec.intensity = 2.0;
  return spec;
}

MarkovChannelSpec corpus_channel_spec(std::uint64_t seed) {
  MarkovChannelSpec spec =
      MarkovChannelSpec::gilbert_elliott(0.10, 0.30, 0.4);
  spec.seed = seed;
  spec.horizon = 30.0;
  return spec;
}

class GoldenPlan : public testing::TestWithParam<std::uint64_t> {};

TEST_P(GoldenPlan, FaultDumpMatchesGenerator) {
  const FaultPlan plan = FaultPlan::generate(corpus_fault_spec(GetParam()));
  ASSERT_FALSE(plan.empty());
  check_golden("fault_seed" + std::to_string(GetParam()),
               serialize_fault_plan(plan));
}

TEST_P(GoldenPlan, ChannelDumpMatchesGenerator) {
  const ChannelPlan plan =
      ChannelPlan::generate(corpus_channel_spec(GetParam()));
  ASSERT_FALSE(plan.empty());
  check_golden("channel_seed" + std::to_string(GetParam()),
               serialize_channel_plan(plan));
}

TEST_P(GoldenPlan, FaultSerializationRoundTripsExactly) {
  const FaultPlan plan = FaultPlan::generate(corpus_fault_spec(GetParam()));
  const std::string text = serialize_fault_plan(plan);
  const FaultPlan parsed = parse_fault_plan(text);
  ASSERT_EQ(parsed.events().size(), plan.events().size());
  for (std::size_t k = 0; k < plan.events().size(); ++k) {
    EXPECT_EQ(parsed.events()[k].cls, plan.events()[k].cls);
    // Bitwise, not approximate: EQ on the doubles themselves.
    EXPECT_EQ(parsed.events()[k].start, plan.events()[k].start);
    EXPECT_EQ(parsed.events()[k].duration, plan.events()[k].duration);
    EXPECT_EQ(parsed.events()[k].magnitude, plan.events()[k].magnitude);
  }
  EXPECT_EQ(serialize_fault_plan(parsed), text);
}

TEST_P(GoldenPlan, ChannelSerializationRoundTripsExactly) {
  const ChannelPlan plan =
      ChannelPlan::generate(corpus_channel_spec(GetParam()));
  const std::string text = serialize_channel_plan(plan);
  const ChannelPlan parsed = parse_channel_plan(text);
  ASSERT_EQ(parsed.segments().size(), plan.segments().size());
  for (std::size_t k = 0; k < plan.segments().size(); ++k) {
    EXPECT_EQ(parsed.segments()[k].state, plan.segments()[k].state);
    EXPECT_EQ(parsed.segments()[k].start, plan.segments()[k].start);
    EXPECT_EQ(parsed.segments()[k].duration, plan.segments()[k].duration);
    EXPECT_EQ(parsed.segments()[k].factor, plan.segments()[k].factor);
  }
  EXPECT_EQ(serialize_channel_plan(parsed), text);
}

INSTANTIATE_TEST_SUITE_P(CorpusSeeds, GoldenPlan,
                         testing::Values(std::uint64_t{1}, std::uint64_t{42},
                                         std::uint64_t{1994}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(GoldenPlan, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_fault_plan(""), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("lsmplan v2 fault\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("lsmplan v1 channel\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("lsmplan v1 fault\n"),  // missing end
               std::invalid_argument);
  EXPECT_THROW(
      parse_fault_plan("lsmplan v1 fault\nevent fade deadbeef 0 0\nend\n"),
      std::invalid_argument);
  EXPECT_THROW(parse_channel_plan("lsmplan v1 fault\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(
      parse_channel_plan("lsmplan v1 channel\nsegment x 0 0 0\nend\n"),
      std::invalid_argument);
}

TEST(GoldenPlan, EmptyPlansSerializeToHeaderAndEnd) {
  EXPECT_EQ(serialize_fault_plan(FaultPlan()), "lsmplan v1 fault\nend\n");
  EXPECT_EQ(serialize_channel_plan(ChannelPlan()),
            "lsmplan v1 channel\nend\n");
  EXPECT_TRUE(parse_fault_plan("lsmplan v1 fault\nend\n").empty());
  EXPECT_TRUE(parse_channel_plan("lsmplan v1 channel\nend\n").empty());
}

}  // namespace
}  // namespace lsm::sim
