#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace lsm::sim {
namespace {

TEST(EventQueue, DispatchesInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(3.0, [&order] { order.push_back(3); });
  queue.schedule_at(1.0, [&order] { order.push_back(1); });
  queue.schedule_at(2.0, [&order] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int k = 0; k < 10; ++k) {
    queue.schedule_at(5.0, [&order, k] { order.push_back(k); });
  }
  queue.run();
  for (int k = 0; k < 10; ++k) {
    EXPECT_EQ(order[static_cast<std::size_t>(k)], k);
  }
}

TEST(EventQueue, ClockAdvancesToEventTime) {
  EventQueue queue;
  double observed = -1.0;
  queue.schedule_at(2.5, [&] { observed = queue.now(); });
  queue.run();
  EXPECT_DOUBLE_EQ(observed, 2.5);
  EXPECT_DOUBLE_EQ(queue.now(), 2.5);
}

TEST(EventQueue, ActionsMayScheduleFurtherEvents) {
  EventQueue queue;
  std::vector<double> times;
  queue.schedule_at(1.0, [&] {
    times.push_back(queue.now());
    queue.schedule_in(1.0, [&] { times.push_back(queue.now()); });
  });
  queue.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue queue;
  queue.schedule_at(1.0, [] {});
  queue.run();
  EXPECT_THROW(queue.schedule_at(0.5, [] {}), std::invalid_argument);
  EXPECT_THROW(queue.schedule_in(-0.1, [] {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule_at(1.0, [&] { fired.push_back(1); });
  queue.schedule_at(2.0, [&] { fired.push_back(2); });
  queue.schedule_at(3.0, [&] { fired.push_back(3); });
  const std::size_t count = queue.run_until(2.0);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle) {
  EventQueue queue;
  queue.run_until(7.0);
  EXPECT_DOUBLE_EQ(queue.now(), 7.0);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue queue;
  EXPECT_FALSE(queue.step());
  queue.schedule_at(0.0, [] {});
  EXPECT_TRUE(queue.step());
  EXPECT_FALSE(queue.step());
}

TEST(EventQueue, ZeroDelaySelfScheduleRunsAfterCurrent) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(1.0, [&] {
    queue.schedule_in(0.0, [&] { order.push_back(2); });
    order.push_back(1);
  });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace lsm::sim
