// Statistical property suite for the Markov block-fading channel: the
// empirical behaviour of generated realizations must converge to the
// spec's *analytic* accessors (stationary distribution, mean sojourn
// times, mean factor). Every check runs on fixed seeds, so the suite is
// deterministic — the tolerances are convergence bounds chosen with wide
// margin for the configured horizons, not flaky confidence intervals.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/channel.h"

namespace lsm::sim {
namespace {

struct EmpiricalStats {
  std::vector<double> occupancy_fraction;  ///< time share per state
  std::vector<double> mean_sojourn;        ///< seconds per maximal visit
  double mean_factor = 0.0;                ///< time-weighted factor
};

EmpiricalStats measure(const ChannelPlan& plan, int states) {
  EmpiricalStats stats;
  stats.occupancy_fraction.assign(static_cast<std::size_t>(states), 0.0);
  stats.mean_sojourn.assign(static_cast<std::size_t>(states), 0.0);
  std::vector<int> visits(static_cast<std::size_t>(states), 0);
  double total = 0.0;
  for (const ChannelSegment& segment : plan.segments()) {
    const auto s = static_cast<std::size_t>(segment.state);
    stats.occupancy_fraction[s] += segment.duration;
    ++visits[s];
    stats.mean_factor += segment.factor * segment.duration;
    total += segment.duration;
  }
  for (std::size_t s = 0; s < stats.occupancy_fraction.size(); ++s) {
    stats.mean_sojourn[s] =
        visits[s] > 0 ? stats.occupancy_fraction[s] / visits[s] : 0.0;
    stats.occupancy_fraction[s] /= total;
  }
  stats.mean_factor /= total;
  return stats;
}

MarkovChannelSpec long_gilbert_elliott(std::uint64_t seed) {
  MarkovChannelSpec spec =
      MarkovChannelSpec::gilbert_elliott(0.05, 0.25, 0.3);
  spec.horizon = 4000.0;  // 200k blocks at the default 20 ms block
  spec.seed = seed;
  return spec;
}

TEST(ChannelStatistics, EmpiricalStationaryMatchesAnalytic) {
  const MarkovChannelSpec spec = long_gilbert_elliott(11);
  const std::vector<double> pi = spec.stationary();
  const ChannelPlan plan = ChannelPlan::generate(spec);
  ASSERT_FALSE(plan.empty());
  const EmpiricalStats stats = measure(plan, spec.state_count());
  // Occupancy share converges at O(1/sqrt(blocks)) with a correlation
  // penalty; 200k blocks leave ample room for a 0.02 absolute bound.
  for (int s = 0; s < spec.state_count(); ++s) {
    EXPECT_NEAR(stats.occupancy_fraction[static_cast<std::size_t>(s)],
                pi[static_cast<std::size_t>(s)], 0.02)
        << "state " << s;
  }
  EXPECT_NEAR(stats.mean_factor, spec.mean_factor(), 0.02);
}

TEST(ChannelStatistics, EmpiricalMeanSojournMatchesAnalytic) {
  const MarkovChannelSpec spec = long_gilbert_elliott(17);
  const ChannelPlan plan = ChannelPlan::generate(spec);
  ASSERT_FALSE(plan.empty());
  const EmpiricalStats stats = measure(plan, spec.state_count());
  // Mean sojourns: Good = 0.02/0.05 = 0.4 s, Bad = 0.02/0.25 = 0.08 s.
  // ~10k visits each; allow 10% relative error.
  for (int s = 0; s < spec.state_count(); ++s) {
    const double analytic = spec.mean_sojourn(s);
    EXPECT_NEAR(stats.mean_sojourn[static_cast<std::size_t>(s)], analytic,
                0.10 * analytic)
        << "state " << s;
  }
}

TEST(ChannelStatistics, ThreeStateChainConvergesToStationary) {
  MarkovChannelSpec spec;
  spec.factors = {1.0, 0.6, 0.2};
  spec.transition = {
      {0.95, 0.04, 0.01},
      {0.20, 0.70, 0.10},
      {0.05, 0.25, 0.70},
  };
  spec.horizon = 4000.0;
  spec.seed = 23;
  const std::vector<double> pi = spec.stationary();
  const ChannelPlan plan = ChannelPlan::generate(spec);
  ASSERT_FALSE(plan.empty());
  const EmpiricalStats stats = measure(plan, spec.state_count());
  for (int s = 0; s < spec.state_count(); ++s) {
    EXPECT_NEAR(stats.occupancy_fraction[static_cast<std::size_t>(s)],
                pi[static_cast<std::size_t>(s)], 0.03)
        << "state " << s;
  }
  EXPECT_NEAR(stats.mean_factor, spec.mean_factor(), 0.03);
}

TEST(ChannelStatistics, IntensitySharpensFadingMonotonically) {
  MarkovChannelSpec spec =
      MarkovChannelSpec::gilbert_elliott(0.04, 0.40, 0.3);
  spec.horizon = 2000.0;
  spec.seed = 29;
  spec.intensity = 1.0;
  const ChannelPlan at_one = ChannelPlan::generate(spec);
  spec.intensity = 2.0;
  const ChannelPlan at_two = ChannelPlan::generate(spec);
  ASSERT_FALSE(at_one.empty());
  ASSERT_FALSE(at_two.empty());
  // Doubling the off-diagonals doubles the transition pressure: more
  // state changes, and (here) a larger bad-state share since p grows
  // relative to the p + r mix shift.
  EXPECT_GT(at_two.transition_count(), at_one.transition_count());
  const EmpiricalStats one = measure(at_one, 2);
  const EmpiricalStats two = measure(at_two, 2);
  const std::vector<double> pi_two = spec.stationary();
  EXPECT_NEAR(two.occupancy_fraction[1], pi_two[1], 0.02);
  EXPECT_GT(two.occupancy_fraction[1], one.occupancy_fraction[1] - 0.02);
}

TEST(ChannelStatistics, IdenticalSeedsYieldIdenticalEventStreams) {
  // The statistical layer's reproducibility contract: realizations are a
  // pure function of the spec, segment for segment, bit for bit.
  const MarkovChannelSpec spec = long_gilbert_elliott(31);
  const ChannelPlan a = ChannelPlan::generate(spec);
  const ChannelPlan b = ChannelPlan::generate(spec);
  ASSERT_EQ(a.segments().size(), b.segments().size());
  for (std::size_t k = 0; k < a.segments().size(); ++k) {
    EXPECT_EQ(a.segments()[k].state, b.segments()[k].state);
    EXPECT_EQ(a.segments()[k].start, b.segments()[k].start);
    EXPECT_EQ(a.segments()[k].duration, b.segments()[k].duration);
    EXPECT_EQ(a.segments()[k].factor, b.segments()[k].factor);
  }
}

}  // namespace
}  // namespace lsm::sim
