#include "sim/fault.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lsm::sim {
namespace {

FaultEvent make_event(FaultClass cls, double start, double duration,
                      double magnitude) {
  FaultEvent event;
  event.cls = cls;
  event.start = start;
  event.duration = duration;
  event.magnitude = magnitude;
  return event;
}

TEST(FaultPlan, DefaultIsEmptyAndIdeal) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_DOUBLE_EQ(plan.fade_factor_at(1.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.loss_fraction_at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(plan.stall_delay_at(1.0), 0.0);
  EXPECT_FALSE(plan.denial_active(1.0));
  EXPECT_TRUE(plan.fade_breakpoints(0.0, 100.0).empty());
}

TEST(FaultPlan, ZeroIntensityGeneratesNoEvents) {
  FaultSpec spec;
  spec.intensity = 0.0;
  const FaultPlan plan = FaultPlan::generate(spec);
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, GenerationIsDeterministicPerSeed) {
  FaultSpec spec;
  spec.seed = 42;
  spec.intensity = 2.0;
  const FaultPlan a = FaultPlan::generate(spec);
  const FaultPlan b = FaultPlan::generate(spec);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t k = 0; k < a.events().size(); ++k) {
    EXPECT_EQ(a.events()[k].cls, b.events()[k].cls);
    EXPECT_DOUBLE_EQ(a.events()[k].start, b.events()[k].start);
    EXPECT_DOUBLE_EQ(a.events()[k].duration, b.events()[k].duration);
    EXPECT_DOUBLE_EQ(a.events()[k].magnitude, b.events()[k].magnitude);
  }
  spec.seed = 43;
  const FaultPlan c = FaultPlan::generate(spec);
  bool any_difference = a.events().size() != c.events().size();
  for (std::size_t k = 0;
       !any_difference && k < a.events().size() && k < c.events().size();
       ++k) {
    any_difference = a.events()[k].start != c.events()[k].start;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlan, IntensityScalesEventCount) {
  // With a single class enabled, the same seed's inter-arrival draws scale
  // by 1/intensity, so the count is monotone in intensity.
  FaultSpec spec;
  spec.loss_rate = 0.0;
  spec.stall_rate = 0.0;
  spec.denial_rate = 0.0;
  spec.fade_rate = 8.0;
  spec.horizon = 50.0;
  spec.intensity = 1.0;
  const int at_one =
      static_cast<int>(FaultPlan::generate(spec).events().size());
  spec.intensity = 4.0;
  const int at_four =
      static_cast<int>(FaultPlan::generate(spec).events().size());
  EXPECT_GT(at_one, 0);
  EXPECT_GT(at_four, at_one);
}

TEST(FaultPlan, GeneratedMagnitudesStayInClassRanges) {
  FaultSpec spec;
  spec.intensity = 4.0;
  spec.horizon = 30.0;
  const FaultPlan plan = FaultPlan::generate(spec);
  ASSERT_FALSE(plan.empty());
  for (const FaultEvent& event : plan.events()) {
    EXPECT_GE(event.start, 0.0);
    EXPECT_GT(event.duration, 0.0);
    switch (event.cls) {
      case FaultClass::kChannelFade:
        EXPECT_GT(event.magnitude, 0.0);
        EXPECT_LE(event.magnitude, 1.0);
        break;
      case FaultClass::kBurstLoss:
        EXPECT_GE(event.magnitude, 0.0);
        EXPECT_LE(event.magnitude, 0.9);
        break;
      case FaultClass::kEncoderStall:
        EXPECT_GT(event.magnitude, 0.0);
        break;
      case FaultClass::kRenegotiationDenial:
        EXPECT_DOUBLE_EQ(event.magnitude, 0.0);
        break;
    }
  }
}

TEST(FaultPlan, QueriesReflectExplicitEvents) {
  const FaultPlan plan(std::vector<FaultEvent>{
      make_event(FaultClass::kChannelFade, 1.0, 2.0, 0.5),
      make_event(FaultClass::kBurstLoss, 2.0, 1.0, 0.2),
      make_event(FaultClass::kEncoderStall, 4.0, 0.5, 0.03),
      make_event(FaultClass::kRenegotiationDenial, 5.0, 1.0, 0.0),
  });
  EXPECT_DOUBLE_EQ(plan.fade_factor_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(plan.fade_factor_at(1.5), 0.5);
  EXPECT_DOUBLE_EQ(plan.fade_factor_at(3.0), 1.0);  // half-open window
  EXPECT_DOUBLE_EQ(plan.loss_fraction_at(2.5), 0.2);
  EXPECT_DOUBLE_EQ(plan.loss_fraction_at(3.5), 0.0);
  EXPECT_DOUBLE_EQ(plan.stall_delay_at(4.2), 0.03);
  EXPECT_TRUE(plan.denial_active(5.5));
  EXPECT_FALSE(plan.denial_active(6.5));
}

TEST(FaultPlan, OverlappingFadesComposeByMinStallsByMax) {
  const FaultPlan plan(std::vector<FaultEvent>{
      make_event(FaultClass::kChannelFade, 0.0, 4.0, 0.8),
      make_event(FaultClass::kChannelFade, 1.0, 1.0, 0.3),
      make_event(FaultClass::kEncoderStall, 0.0, 4.0, 0.02),
      make_event(FaultClass::kEncoderStall, 1.0, 1.0, 0.05),
  });
  EXPECT_DOUBLE_EQ(plan.fade_factor_at(0.5), 0.8);
  EXPECT_DOUBLE_EQ(plan.fade_factor_at(1.5), 0.3);
  EXPECT_DOUBLE_EQ(plan.stall_delay_at(0.5), 0.02);
  EXPECT_DOUBLE_EQ(plan.stall_delay_at(1.5), 0.05);
}

TEST(FaultPlan, FadeBreakpointsAreSortedUniqueAndInterior) {
  const FaultPlan plan(std::vector<FaultEvent>{
      make_event(FaultClass::kChannelFade, 1.0, 1.0, 0.5),
      make_event(FaultClass::kChannelFade, 2.0, 1.0, 0.5),
      make_event(FaultClass::kBurstLoss, 2.5, 1.0, 0.1),
  });
  // Edges at 1, 2 (shared), 3; only fade edges strictly inside (0.5, 2.5).
  const std::vector<double> edges = plan.fade_breakpoints(0.5, 2.5);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_DOUBLE_EQ(edges[0], 1.0);
  EXPECT_DOUBLE_EQ(edges[1], 2.0);
}

TEST(FaultPlan, CountByClass) {
  const FaultPlan plan(std::vector<FaultEvent>{
      make_event(FaultClass::kChannelFade, 0.0, 1.0, 0.5),
      make_event(FaultClass::kChannelFade, 2.0, 1.0, 0.5),
      make_event(FaultClass::kRenegotiationDenial, 0.0, 1.0, 0.0),
  });
  EXPECT_EQ(plan.count(FaultClass::kChannelFade), 2);
  EXPECT_EQ(plan.count(FaultClass::kRenegotiationDenial), 1);
  EXPECT_EQ(plan.count(FaultClass::kBurstLoss), 0);
  EXPECT_EQ(plan.count(FaultClass::kEncoderStall), 0);
}

TEST(FaultPlan, RejectsMalformedEvents) {
  EXPECT_THROW(FaultPlan(std::vector<FaultEvent>{
                   make_event(FaultClass::kChannelFade, -1.0, 1.0, 0.5)}),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan(std::vector<FaultEvent>{
                   make_event(FaultClass::kChannelFade, 0.0, 0.0, 0.5)}),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan(std::vector<FaultEvent>{
                   make_event(FaultClass::kChannelFade, 0.0, 1.0, 0.0)}),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan(std::vector<FaultEvent>{
                   make_event(FaultClass::kBurstLoss, 0.0, 1.0, 0.95)}),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan(std::vector<FaultEvent>{
                   make_event(FaultClass::kEncoderStall, 0.0, 1.0, -0.1)}),
               std::invalid_argument);
}

TEST(FaultPlan, RejectsBadSpec) {
  FaultSpec spec;
  spec.horizon = 0.0;
  EXPECT_THROW(FaultPlan::generate(spec), std::invalid_argument);
  spec = FaultSpec{};
  spec.intensity = -1.0;
  EXPECT_THROW(FaultPlan::generate(spec), std::invalid_argument);
  spec = FaultSpec{};
  spec.fade_min_factor = 0.0;
  EXPECT_THROW(FaultPlan::generate(spec), std::invalid_argument);
  spec = FaultSpec{};
  spec.loss_max_fraction = 0.95;
  EXPECT_THROW(FaultPlan::generate(spec), std::invalid_argument);
  spec = FaultSpec{};
  spec.denial_mean_duration = 0.0;
  EXPECT_THROW(FaultPlan::generate(spec), std::invalid_argument);
}

TEST(FaultPlan, EventsSortedByOnset) {
  const FaultPlan plan(std::vector<FaultEvent>{
      make_event(FaultClass::kBurstLoss, 3.0, 1.0, 0.1),
      make_event(FaultClass::kChannelFade, 1.0, 1.0, 0.5),
      make_event(FaultClass::kEncoderStall, 2.0, 1.0, 0.01),
  });
  ASSERT_EQ(plan.events().size(), 3u);
  EXPECT_DOUBLE_EQ(plan.events()[0].start, 1.0);
  EXPECT_DOUBLE_EQ(plan.events()[1].start, 2.0);
  EXPECT_DOUBLE_EQ(plan.events()[2].start, 3.0);
}

}  // namespace
}  // namespace lsm::sim
