#include "sim/channel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace lsm::sim {
namespace {

ChannelSegment make_segment(double start, double duration, int state,
                            double factor) {
  ChannelSegment segment;
  segment.start = start;
  segment.duration = duration;
  segment.state = state;
  segment.factor = factor;
  return segment;
}

TEST(MarkovChannelSpec, DefaultIsValidSingleGoodState) {
  const MarkovChannelSpec spec;
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(spec.state_count(), 1);
  const std::vector<double> pi = spec.stationary();
  ASSERT_EQ(pi.size(), 1u);
  EXPECT_DOUBLE_EQ(pi[0], 1.0);
  EXPECT_DOUBLE_EQ(spec.mean_factor(), 1.0);
  EXPECT_TRUE(std::isinf(spec.mean_sojourn(0)));
}

TEST(MarkovChannelSpec, GilbertElliottStationaryMatchesClosedForm) {
  // Two-state chain: pi_bad = p / (p + r), pi_good = r / (p + r).
  const double p = 0.05;
  const double r = 0.40;
  const MarkovChannelSpec spec =
      MarkovChannelSpec::gilbert_elliott(p, r, 0.25);
  const std::vector<double> pi = spec.stationary();
  ASSERT_EQ(pi.size(), 2u);
  EXPECT_NEAR(pi[0], r / (p + r), 1e-12);
  EXPECT_NEAR(pi[1], p / (p + r), 1e-12);
  EXPECT_NEAR(spec.mean_factor(), pi[0] * 1.0 + pi[1] * 0.25, 1e-12);
}

TEST(MarkovChannelSpec, MeanSojournMatchesGeometricHoldingTime) {
  const MarkovChannelSpec spec =
      MarkovChannelSpec::gilbert_elliott(0.05, 0.40, 0.25);
  // Sojourn in Good is geometric with leave probability p: block / p.
  EXPECT_NEAR(spec.mean_sojourn(0), spec.block / 0.05, 1e-12);
  EXPECT_NEAR(spec.mean_sojourn(1), spec.block / 0.40, 1e-12);
  EXPECT_THROW(spec.mean_sojourn(-1), std::out_of_range);
  EXPECT_THROW(spec.mean_sojourn(2), std::out_of_range);
}

TEST(MarkovChannelSpec, IntensityScalesOffDiagonals) {
  MarkovChannelSpec spec =
      MarkovChannelSpec::gilbert_elliott(0.05, 0.40, 0.25);
  spec.intensity = 2.0;
  // Scaled chain has p' = 0.10, r' = 0.80.
  EXPECT_NEAR(spec.mean_sojourn(0), spec.block / 0.10, 1e-12);
  const std::vector<double> pi = spec.stationary();
  EXPECT_NEAR(pi[1], 0.10 / 0.90, 1e-12);
}

TEST(MarkovChannelSpec, ThreeStateStationarySolvesBalance) {
  MarkovChannelSpec spec;
  spec.factors = {1.0, 0.6, 0.2};
  spec.transition = {
      {0.90, 0.08, 0.02},
      {0.30, 0.60, 0.10},
      {0.10, 0.30, 0.60},
  };
  const std::vector<double> pi = spec.stationary();
  ASSERT_EQ(pi.size(), 3u);
  double sum = 0.0;
  for (int j = 0; j < 3; ++j) {
    double balance = 0.0;
    for (int i = 0; i < 3; ++i) balance += pi[i] * spec.transition[i][j];
    EXPECT_NEAR(balance, pi[j], 1e-12);
    sum += pi[j];
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(MarkovChannelSpec, ValidateRejectsMalformedSpecs) {
  MarkovChannelSpec spec;
  spec.horizon = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = MarkovChannelSpec{};
  spec.block = -0.01;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = MarkovChannelSpec{};
  spec.factors = {1.0, 1.5};  // factor > 1
  spec.transition = {{0.9, 0.1}, {0.5, 0.5}};
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = MarkovChannelSpec{};
  spec.factors = {1.0, 0.0};  // factor must be > 0
  spec.transition = {{0.9, 0.1}, {0.5, 0.5}};
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = MarkovChannelSpec{};
  spec.factors = {1.0, 0.5};
  spec.transition = {{0.8, 0.1}, {0.5, 0.5}};  // row 0 sums to 0.9
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = MarkovChannelSpec{};
  spec.factors = {1.0, 0.5};
  spec.transition = {{0.9, 0.1}};  // not N x N
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = MarkovChannelSpec::gilbert_elliott(0.6, 0.4, 0.5);
  spec.intensity = 2.0;  // scaled p = 1.2 breaks stochasticity
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = MarkovChannelSpec{};
  spec.initial_state = 1;  // out of range for 1 state
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = MarkovChannelSpec{};
  spec.intensity = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ChannelPlan, DefaultIsEmptyAndIdeal) {
  const ChannelPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_DOUBLE_EQ(plan.horizon(), 0.0);
  EXPECT_DOUBLE_EQ(plan.factor_at(1.0), 1.0);
  EXPECT_EQ(plan.state_at(1.0), -1);
  EXPECT_TRUE(plan.factor_breakpoints(0.0, 100.0).empty());
  EXPECT_EQ(plan.transition_count(), 0);
}

TEST(ChannelPlan, ZeroIntensityRealizationIsEmpty) {
  MarkovChannelSpec spec =
      MarkovChannelSpec::gilbert_elliott(0.2, 0.3, 0.5);
  spec.intensity = 0.0;
  const ChannelPlan plan = ChannelPlan::generate(spec);
  EXPECT_TRUE(plan.empty());
}

TEST(ChannelPlan, AllGoodExplicitSegmentsCollapseToEmpty) {
  const ChannelPlan plan(std::vector<ChannelSegment>{
      make_segment(0.0, 1.0, 0, 1.0),
      make_segment(1.0, 2.0, 0, 1.0),
  });
  EXPECT_TRUE(plan.empty());
}

TEST(ChannelPlan, GenerationIsDeterministicPerSeed) {
  MarkovChannelSpec spec =
      MarkovChannelSpec::gilbert_elliott(0.10, 0.30, 0.4);
  spec.horizon = 20.0;
  spec.seed = 7;
  const ChannelPlan a = ChannelPlan::generate(spec);
  const ChannelPlan b = ChannelPlan::generate(spec);
  ASSERT_EQ(a.segments().size(), b.segments().size());
  ASSERT_FALSE(a.empty());
  for (std::size_t k = 0; k < a.segments().size(); ++k) {
    EXPECT_EQ(a.segments()[k].state, b.segments()[k].state);
    EXPECT_DOUBLE_EQ(a.segments()[k].start, b.segments()[k].start);
    EXPECT_DOUBLE_EQ(a.segments()[k].duration, b.segments()[k].duration);
    EXPECT_DOUBLE_EQ(a.segments()[k].factor, b.segments()[k].factor);
  }
  spec.seed = 8;
  const ChannelPlan c = ChannelPlan::generate(spec);
  bool any_difference = a.segments().size() != c.segments().size();
  for (std::size_t k = 0;
       !any_difference && k < a.segments().size() && k < c.segments().size();
       ++k) {
    any_difference = a.segments()[k].duration != c.segments()[k].duration ||
                     a.segments()[k].state != c.segments()[k].state;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ChannelPlan, RealizationIsContiguousAlternatingAndClipped) {
  MarkovChannelSpec spec =
      MarkovChannelSpec::gilbert_elliott(0.15, 0.35, 0.3);
  spec.horizon = 12.0;
  spec.seed = 3;
  const ChannelPlan plan = ChannelPlan::generate(spec);
  ASSERT_FALSE(plan.empty());
  double cursor = 0.0;
  for (std::size_t k = 0; k < plan.segments().size(); ++k) {
    const ChannelSegment& segment = plan.segments()[k];
    EXPECT_DOUBLE_EQ(segment.start, cursor);
    EXPECT_GT(segment.duration, 0.0);
    if (k > 0) {
      EXPECT_NE(segment.state, plan.segments()[k - 1].state);
    }
    cursor = segment.end();
  }
  EXPECT_LE(plan.horizon(), spec.horizon + 1e-12);
  EXPECT_EQ(plan.transition_count(),
            static_cast<int>(plan.segments().size()) - 1);
}

TEST(ChannelPlan, QueriesAreHalfOpenAtSegmentEdges) {
  const ChannelPlan plan(std::vector<ChannelSegment>{
      make_segment(0.0, 1.0, 0, 1.0),
      make_segment(1.0, 1.0, 1, 0.5),
      make_segment(2.0, 1.0, 0, 1.0),
  });
  EXPECT_DOUBLE_EQ(plan.factor_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.factor_at(1.0), 0.5);  // [1, 2) owns its start
  EXPECT_DOUBLE_EQ(plan.factor_at(2.0), 1.0);  // and not its end
  EXPECT_DOUBLE_EQ(plan.factor_at(3.0), 1.0);  // ideal past the horizon
  EXPECT_EQ(plan.state_at(1.5), 1);
  EXPECT_EQ(plan.state_at(2.0), 0);
  EXPECT_EQ(plan.state_at(3.0), -1);
  EXPECT_EQ(plan.state_at(-0.5), -1);
  EXPECT_DOUBLE_EQ(plan.occupancy(0), 2.0);
  EXPECT_DOUBLE_EQ(plan.occupancy(1), 1.0);
}

TEST(ChannelPlan, FactorBreakpointsAreInteriorFactorChangesOnly) {
  const ChannelPlan plan(std::vector<ChannelSegment>{
      make_segment(0.0, 1.0, 0, 1.0),
      make_segment(1.0, 1.0, 1, 0.5),
      make_segment(2.0, 1.0, 2, 0.5),  // state change, same factor
      make_segment(3.0, 1.0, 0, 1.0),
  });
  // Factor changes at 1 and 3 only; 2 is a state flip at constant factor.
  const std::vector<double> edges = plan.factor_breakpoints(0.0, 10.0);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_DOUBLE_EQ(edges[0], 1.0);
  EXPECT_DOUBLE_EQ(edges[1], 3.0);
  // Edges exactly at a or b are excluded (open interval).
  EXPECT_TRUE(plan.factor_breakpoints(1.0, 3.0).empty());
  EXPECT_TRUE(plan.factor_breakpoints(5.0, 2.0).empty());  // degenerate
}

TEST(ChannelPlan, HorizonEdgeIsABreakpointWhenEndingFaded) {
  const ChannelPlan plan(std::vector<ChannelSegment>{
      make_segment(0.0, 1.0, 0, 1.0),
      make_segment(1.0, 1.0, 1, 0.5),
  });
  // The channel snaps back to ideal at t = 2 (horizon), so a drain
  // integration crossing it must break there.
  const std::vector<double> edges = plan.factor_breakpoints(0.0, 5.0);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_DOUBLE_EQ(edges[0], 1.0);
  EXPECT_DOUBLE_EQ(edges[1], 2.0);
}

TEST(ChannelPlan, RejectsMalformedSegmentLists) {
  // Gap between segments.
  EXPECT_THROW(ChannelPlan(std::vector<ChannelSegment>{
                   make_segment(0.0, 1.0, 0, 1.0),
                   make_segment(1.5, 1.0, 1, 0.5)}),
               std::invalid_argument);
  // First segment not at 0.
  EXPECT_THROW(ChannelPlan(std::vector<ChannelSegment>{
                   make_segment(0.5, 1.0, 0, 1.0)}),
               std::invalid_argument);
  // Non-positive duration.
  EXPECT_THROW(ChannelPlan(std::vector<ChannelSegment>{
                   make_segment(0.0, 0.0, 0, 1.0)}),
               std::invalid_argument);
  // Factor out of (0, 1].
  EXPECT_THROW(ChannelPlan(std::vector<ChannelSegment>{
                   make_segment(0.0, 1.0, 0, 0.0)}),
               std::invalid_argument);
  EXPECT_THROW(ChannelPlan(std::vector<ChannelSegment>{
                   make_segment(0.0, 1.0, 0, 1.5)}),
               std::invalid_argument);
}

}  // namespace
}  // namespace lsm::sim
