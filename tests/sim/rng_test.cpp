#include "sim/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace lsm::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, KnownFirstOutputIsStable) {
  // Pin the stream so accidental algorithm changes are caught: regenerating
  // the calibrated paper sequences depends on this exact stream.
  Rng rng(0);
  const std::uint64_t first = rng.next_u64();
  Rng again(0);
  EXPECT_EQ(first, again.next_u64());
  EXPECT_NE(first, 0u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(17);
  std::vector<int> histogram(6, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const std::int64_t v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++histogram[static_cast<std::size_t>(v)];
  }
  for (const int count : histogram) {
    EXPECT_NEAR(count, n / 6, n / 60);  // within 10% of expectation
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalIsPositiveWithCorrectMedian) {
  Rng rng(31);
  const int n = 100001;
  std::vector<double> values;
  values.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double x = rng.lognormal(1.0, 0.5);
    ASSERT_GT(x, 0.0);
    values.push_back(x);
  }
  std::nth_element(values.begin(), values.begin() + n / 2, values.end());
  // Median of lognormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(values[n / 2], std::exp(1.0), 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(37);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(41);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.split();
  std::set<std::uint64_t> outputs;
  for (int i = 0; i < 1000; ++i) {
    outputs.insert(parent.next_u64());
    outputs.insert(child.next_u64());
  }
  // Virtually all 2000 draws must be distinct.
  EXPECT_GT(outputs.size(), 1990u);
}

}  // namespace
}  // namespace lsm::sim
