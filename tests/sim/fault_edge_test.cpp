// Boundary-semantics pin for FaultPlan windows: every event owns the
// half-open interval [start, end()), so queries at an exact edge belong
// to the *starting* window, two windows sharing an endpoint hand off
// without overlap or gap, and fade_breakpoints() reports edges strictly
// inside the open query range only. These are regression tests for the
// documented contract in sim/fault.h — drain integration in net/ composes
// factors interval-by-interval and double-counts (or drops) bits if an
// edge is attributed to both sides or neither.
#include <gtest/gtest.h>

#include <vector>

#include "sim/fault.h"

namespace lsm::sim {
namespace {

FaultEvent make_event(FaultClass cls, double start, double duration,
                      double magnitude) {
  FaultEvent event;
  event.cls = cls;
  event.start = start;
  event.duration = duration;
  event.magnitude = magnitude;
  return event;
}

TEST(FaultEdges, QueryAtExactStartIsInsideTheWindow) {
  const FaultPlan plan(std::vector<FaultEvent>{
      make_event(FaultClass::kChannelFade, 1.0, 2.0, 0.5),
      make_event(FaultClass::kBurstLoss, 1.0, 2.0, 0.2),
      make_event(FaultClass::kEncoderStall, 1.0, 2.0, 0.03),
      make_event(FaultClass::kRenegotiationDenial, 1.0, 2.0, 0.0),
  });
  EXPECT_DOUBLE_EQ(plan.fade_factor_at(1.0), 0.5);
  EXPECT_DOUBLE_EQ(plan.loss_fraction_at(1.0), 0.2);
  EXPECT_DOUBLE_EQ(plan.stall_delay_at(1.0), 0.03);
  EXPECT_TRUE(plan.denial_active(1.0));
}

TEST(FaultEdges, QueryAtExactEndIsOutsideTheWindow) {
  const FaultPlan plan(std::vector<FaultEvent>{
      make_event(FaultClass::kChannelFade, 1.0, 2.0, 0.5),
      make_event(FaultClass::kBurstLoss, 1.0, 2.0, 0.2),
      make_event(FaultClass::kEncoderStall, 1.0, 2.0, 0.03),
      make_event(FaultClass::kRenegotiationDenial, 1.0, 2.0, 0.0),
  });
  EXPECT_DOUBLE_EQ(plan.fade_factor_at(3.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.loss_fraction_at(3.0), 0.0);
  EXPECT_DOUBLE_EQ(plan.stall_delay_at(3.0), 0.0);
  EXPECT_FALSE(plan.denial_active(3.0));
}

TEST(FaultEdges, TwoFadesSharingAnEndpointHandOffExactly) {
  // [1, 2) at 0.5, then [2, 3) at 0.25: at t = 2 only the second window
  // is active — no instant where both (min would give 0.25 early) or
  // neither (factor 1 gap) applies.
  const FaultPlan plan(std::vector<FaultEvent>{
      make_event(FaultClass::kChannelFade, 1.0, 1.0, 0.5),
      make_event(FaultClass::kChannelFade, 2.0, 1.0, 0.25),
  });
  EXPECT_DOUBLE_EQ(plan.fade_factor_at(1.5), 0.5);
  EXPECT_DOUBLE_EQ(plan.fade_factor_at(2.0), 0.25);
  EXPECT_DOUBLE_EQ(plan.fade_factor_at(2.999999), 0.25);
  EXPECT_DOUBLE_EQ(plan.fade_factor_at(3.0), 1.0);
  // The shared edge is one breakpoint, not two.
  const std::vector<double> edges = plan.fade_breakpoints(0.0, 10.0);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_DOUBLE_EQ(edges[0], 1.0);
  EXPECT_DOUBLE_EQ(edges[1], 2.0);
  EXPECT_DOUBLE_EQ(edges[2], 3.0);
}

TEST(FaultEdges, BreakpointsExcludeTheQueryRangeEdges) {
  const FaultPlan plan(std::vector<FaultEvent>{
      make_event(FaultClass::kChannelFade, 1.0, 2.0, 0.5),
  });
  // Window edges at 1 and 3. A query range starting or ending exactly on
  // an edge excludes it: the caller already integrates from/to there.
  EXPECT_EQ(plan.fade_breakpoints(0.0, 10.0).size(), 2u);
  const std::vector<double> from_edge = plan.fade_breakpoints(1.0, 10.0);
  ASSERT_EQ(from_edge.size(), 1u);
  EXPECT_DOUBLE_EQ(from_edge[0], 3.0);
  const std::vector<double> to_edge = plan.fade_breakpoints(0.0, 3.0);
  ASSERT_EQ(to_edge.size(), 1u);
  EXPECT_DOUBLE_EQ(to_edge[0], 1.0);
  EXPECT_TRUE(plan.fade_breakpoints(1.0, 3.0).empty());
}

TEST(FaultEdges, DegenerateBreakpointRangesAreEmpty) {
  const FaultPlan plan(std::vector<FaultEvent>{
      make_event(FaultClass::kChannelFade, 1.0, 2.0, 0.5),
  });
  EXPECT_TRUE(plan.fade_breakpoints(2.0, 2.0).empty());
  EXPECT_TRUE(plan.fade_breakpoints(5.0, 1.0).empty());  // reversed
}

TEST(FaultEdges, AbuttingOppositeSeverityFadesComposeByMinPerInstant) {
  // An enclosing mild fade [0, 4) at 0.8 with a deep inner fade [1, 2) at
  // 0.3: min composition must flip exactly at 1 and 2.
  const FaultPlan plan(std::vector<FaultEvent>{
      make_event(FaultClass::kChannelFade, 0.0, 4.0, 0.8),
      make_event(FaultClass::kChannelFade, 1.0, 1.0, 0.3),
  });
  EXPECT_DOUBLE_EQ(plan.fade_factor_at(0.0), 0.8);
  EXPECT_DOUBLE_EQ(plan.fade_factor_at(1.0), 0.3);
  EXPECT_DOUBLE_EQ(plan.fade_factor_at(2.0), 0.8);
  EXPECT_DOUBLE_EQ(plan.fade_factor_at(4.0), 1.0);
}

}  // namespace
}  // namespace lsm::sim
