// Ablation (Section 4.3 design choice): the paper estimates unknown picture
// sizes with S_{j-N}, exploiting the repeating pattern. How much does the
// estimator matter? Compare, on every sequence at the paper's operating
// point:
//   * pattern        — the paper's S_{j-N};
//   * oracle         — perfect knowledge (upper bound on estimator quality);
//   * last-same-type — nearest arrived same-type picture (no pattern
//                      arithmetic);
//   * type-mean      — running per-type mean (washes out scene changes).
// Theorem 1 holds for all of them; the measures quantify the quality gap.
#include "bench_util.h"

#include "core/theorem.h"

int main() {
  using namespace lsm;
  bench::banner("Ablation: size estimator choice (K=1, H=N, D=0.2)");

  for (const trace::Trace& t : trace::paper_sequences()) {
    std::printf("\n# %s\n", t.name().c_str());
    std::printf("%-16s %12s %12s %14s %14s %10s\n", "estimator", "area_diff",
                "rate_changes", "max_rate_Mbps", "sd_rate_Mbps", "delay_ok");
    const core::SmootherParams params = bench::paper_params(t);

    const core::PatternEstimator pattern(t);
    const core::OracleEstimator oracle(t);
    const core::LastSameTypeEstimator last(t);
    const core::TypeMeanEstimator mean(t);
    const core::PhaseEwmaEstimator ewma(t);
    for (const core::SizeEstimator* estimator :
         {static_cast<const core::SizeEstimator*>(&pattern),
          static_cast<const core::SizeEstimator*>(&oracle),
          static_cast<const core::SizeEstimator*>(&last),
          static_cast<const core::SizeEstimator*>(&mean),
          static_cast<const core::SizeEstimator*>(&ewma)}) {
      const core::SmoothingResult result = core::smooth(t, params, *estimator);
      const core::SmoothnessMetrics metrics = core::evaluate(result, t);
      const core::TheoremReport report = core::check_theorem1(result, t);
      std::printf("%-16s %12.4f %12d %14.4f %14.4f %10s\n",
                  estimator->name().c_str(), metrics.area_difference,
                  metrics.rate_changes, metrics.max_rate / 1e6,
                  metrics.rate_stddev / 1e6,
                  report.delay_bound_ok ? "yes" : "NO");
    }
  }
  return 0;
}
