// Figure 3: picture sizes (bits/picture vs picture number) of the Driving1
// and Tennis sequences — the raw material of every other experiment. The
// paper shows two panels; we print all four sequences' series plus the
// summary statistics that calibrate the synthetic substitution (DESIGN.md).
#include "bench_util.h"
#include "trace/stats.h"

int main() {
  using lsm::bench::banner;
  banner("Figure 3: MPEG video sequences (bits/picture vs picture number)");

  for (const lsm::trace::Trace& trace : lsm::trace::paper_sequences()) {
    std::printf("\n# %s  coding pattern %s  %dx%d\n", trace.name().c_str(),
                trace.pattern().to_string().c_str(), trace.width(),
                trace.height());
    std::printf("%s", lsm::trace::to_string(
                          lsm::trace::compute_stats(trace)).c_str());
    std::printf("%8s %4s %10s\n", "picture", "type", "bits");
    for (int i = 1; i <= trace.picture_count(); i += 3) {
      std::printf("%8d %4c %10lld\n", i, lsm::trace::to_char(trace.type_of(i)),
                  static_cast<long long>(trace.size_of(i)));
    }
  }
  return 0;
}
