// Figure 4: rate as a function of time for four delay bounds
// (Driving1, K = 1, H = 9, D in {0.1, 0.2, 0.3, 0.4}), comparing the basic
// algorithm's r(t) against the ideal-smoothing rate R(t). The paper's
// qualitative findings to reproduce:
//   * smoothness improves as D is relaxed;
//   * the improvement from 0.2 to 0.3 is marginal (D = 0.2 is the sweet
//     spot);
//   * the smoothed rate varies between roughly 1 and 3 Mbps, driven by
//     scene content, not by the I/B size alternation.
#include "bench_util.h"

#include "core/ideal.h"

int main() {
  using namespace lsm;
  bench::banner(
      "Figure 4: r(t) vs ideal R(t), Driving1, K=1, H=9, four delay bounds");

  const trace::Trace t = trace::driving1();
  const core::SmoothingResult ideal = core::smooth_ideal(t);
  const core::RateSchedule ideal_schedule = ideal.schedule();

  std::vector<core::RateSchedule> schedules;
  const std::vector<double> bounds = {0.1, 0.2, 0.3, 0.4};
  std::printf("\nsummary:\n");
  lsm::bench::print_measures_header("D(s)");
  for (const double d : bounds) {
    core::SmootherParams params = bench::paper_params(t);
    params.D = d;
    params.H = 9;
    const core::SmoothingResult result = core::smooth_basic(t, params);
    lsm::bench::print_measures_row(d, core::evaluate(result, t));
    schedules.push_back(result.schedule());
  }

  std::printf("\nrate series (Mbps, sampled every 0.1 s; R = ideal):\n");
  std::printf("%8s %10s %10s %10s %10s %10s\n", "time(s)", "D=0.1", "D=0.2",
              "D=0.3", "D=0.4", "R(t)");
  for (double at = 0.0; at <= t.duration() + 0.4; at += 0.1) {
    std::printf("%8.1f", at);
    for (const core::RateSchedule& schedule : schedules) {
      std::printf(" %10.3f", schedule.rate_at(at) / 1e6);
    }
    std::printf(" %10.3f\n", ideal_schedule.rate_at(at) / 1e6);
  }
  return 0;
}
