// Section 3.1 head-to-head: lossy quantizer-scale rate control vs lossless
// smoothing, at the SAME channel peak rate.
//
//   (a) lossless: encode VBR at fine quantizers (I/P/B = 4/6/15), smooth
//       with the basic algorithm; the cost is D seconds of delay, quality
//       untouched.
//   (b) lossy: re-encode oversized pictures at coarser quantizer scales
//       until every picture fits the same peak rate in ONE picture period;
//       no smoothing delay, but quality drops — worst on the I pictures the
//       paper calls "the most important" (blocking effects, Section 3.1).
//
// The paper's own data point: an I picture re-quantized from scale 4 to 30
// shrank 282,976 -> 75,960 bits and looked "grainy, fuzzy".
#include "bench_util.h"

#include <cstdio>

#include "core/metrics.h"
#include "core/smoother.h"
#include "mpeg/ratecontrol.h"
#include "mpeg/videogen.h"
#include "trace/pattern.h"
#include "trace/stats.h"

int main() {
  using namespace lsm;
  bench::banner("Section 3.1: lossy rate control vs lossless smoothing");

  // A two-scene synthetic feed, VBR-encoded.
  mpeg::VideoConfig video_config;
  video_config.width = 192;
  video_config.height = 112;
  video_config.scenes = {mpeg::VideoScene{36, 1.2, 0.5},
                         mpeg::VideoScene{36, 1.0, 0.3}};
  video_config.seed = 77;
  const std::vector<mpeg::Frame> video = mpeg::generate_video(video_config);

  mpeg::EncoderConfig base;
  base.pattern = trace::GopPattern(9, 3);
  const mpeg::EncodeResult vbr = mpeg::Encoder(base).encode(video);
  const trace::Trace vbr_trace = vbr.display_trace("vbr");

  // (a) lossless smoothing at D = 0.2.
  core::SmootherParams params;
  params.tau = vbr_trace.tau();
  params.D = 0.2;
  params.H = 9;
  const core::SmoothingResult smoothed =
      core::smooth_basic(vbr_trace, params);
  const double smoothed_peak = smoothed.schedule().max_rate();

  // (b) lossy shaping to that very peak.
  mpeg::RateShapeConfig shape;
  shape.base = base;
  shape.target_peak_bps = smoothed_peak;
  const mpeg::RateShapeResult shaped = mpeg::encode_rate_shaped(video, shape);

  auto psnr_by_type = [](const mpeg::EncodeResult& result) {
    double sums[3] = {0, 0, 0};
    int counts[3] = {0, 0, 0};
    for (const mpeg::EncodedPicture& picture : result.pictures) {
      sums[static_cast<int>(picture.type)] += picture.psnr_y;
      counts[static_cast<int>(picture.type)] += 1;
    }
    struct Out {
      double i, p, b;
    };
    return Out{sums[0] / counts[0], sums[1] / counts[1], sums[2] / counts[2]};
  };
  const auto vbr_psnr = psnr_by_type(vbr);
  const auto shaped_psnr = psnr_by_type(shaped.encoded);

  std::printf("\nchannel peak rate (both schemes): %.3f Mbps\n",
              smoothed_peak / 1e6);
  std::printf("unsmoothed VBR would need:        %.3f Mbps\n\n",
              static_cast<double>(
                  lsm::trace::compute_stats(vbr_trace).unsmoothed_peak_bps) /
                  1e6);

  std::printf("%-26s %8s %8s %8s %10s\n", "scheme", "I_PSNR", "P_PSNR",
              "B_PSNR", "delay");
  std::printf("%-26s %8.2f %8.2f %8.2f %9.2fs\n",
              "lossless smoothing (a)", vbr_psnr.i, vbr_psnr.p, vbr_psnr.b,
              params.D);
  std::printf("%-26s %8.2f %8.2f %8.2f %10s\n", "lossy quant control (b)",
              shaped_psnr.i, shaped_psnr.p, shaped_psnr.b, "none");

  std::printf("\nlossy shaper detail: %d/%zu pictures re-quantized, "
              "%d passes, converged=%s\n",
              shaped.reencoded_pictures, shaped.encoded.pictures.size(),
              shaped.passes, shaped.converged ? "yes" : "no");
  int coarsest = 0;
  for (const int quant : shaped.quant_by_picture) {
    coarsest = std::max(coarsest, quant);
  }
  std::printf("coarsest quantizer used: %d (VBR used 4/6/15)\n", coarsest);
  std::printf("\nExpected shape: row (b) loses several dB on I pictures — "
              "the paper's argument for using lossy control only as a last "
              "resort.\n");
  return 0;
}
