// Section 5.1 as a table: the inventory of the four MPEG video sequences —
// coding pattern, resolution, duration, per-type size statistics, and the
// derived quantities the paper quotes in the text (I an order of magnitude
// above B; the 200,000-bit I next to the 20,000-bit B of the introduction;
// the >7.5 Mbps unsmoothed peak requirement).
#include "bench_util.h"
#include "trace/stats.h"

int main() {
  using namespace lsm;
  bench::banner("Section 5.1: sequence inventory");

  std::printf("%-10s %-14s %-9s %5s %6s %9s %9s %9s %7s %9s\n", "sequence",
              "pattern", "res", "pics", "sec", "I_mean", "P_mean", "B_mean",
              "I/B", "peakMbps");
  for (const trace::Trace& t : trace::paper_sequences()) {
    const trace::TraceStats stats = trace::compute_stats(t);
    char resolution[16];
    std::snprintf(resolution, sizeof resolution, "%dx%d", t.width(),
                  t.height());
    std::printf("%-10s %-14s %-9s %5d %6.1f %9.0f %9.0f %9.0f %7.2f %9.2f\n",
                t.name().c_str(), t.pattern().to_string().c_str(), resolution,
                t.picture_count(), t.duration(),
                stats.of(trace::PictureType::I).mean,
                stats.of(trace::PictureType::P).mean,
                stats.of(trace::PictureType::B).mean, stats.i_to_b_ratio,
                stats.unsmoothed_peak_bps / 1e6);
  }

  std::printf(
      "\nmean rates and smoothed operating points (K=1, H=N, D=0.2):\n");
  std::printf("%-10s %10s %12s %12s\n", "sequence", "mean_Mbps",
              "smoothedMax", "smoothedSD");
  for (const trace::Trace& t : trace::paper_sequences()) {
    const core::SmoothingResult result =
        core::smooth_basic(t, bench::paper_params(t));
    const core::SmoothnessMetrics metrics = core::evaluate(result, t);
    std::printf("%-10s %10.2f %12.2f %12.3f\n", t.name().c_str(),
                t.mean_rate() / 1e6, metrics.max_rate / 1e6,
                metrics.rate_stddev / 1e6);
  }
  return 0;
}
