// Figure 5: delays of pictures in the Driving1 sequence (basic algorithm).
//
// Left panel: D = 0.1 and D = 0.3 (K = 1, H = 9) against ideal smoothing —
// the algorithm's delays respect the bound while ideal smoothing's are much
// larger.
//
// Right panel: K = 1 vs K = 9 with equal slack (D = 0.1333 + (K+1)/30,
// H = 9) against ideal — showing why K = 1 is the right choice.
#include "bench_util.h"

#include "core/ideal.h"

namespace {

std::vector<double> delays_of(const lsm::core::SmoothingResult& result) {
  std::vector<double> out;
  out.reserve(result.sends.size());
  for (const lsm::core::PictureSend& send : result.sends) {
    out.push_back(send.delay);
  }
  return out;
}

void print_panel(const char* title,
                 const std::vector<std::pair<std::string, std::vector<double>>>&
                     series) {
  std::printf("\n%s\n", title);
  std::printf("%8s", "picture");
  for (const auto& [name, values] : series) {
    std::printf(" %12s", name.c_str());
  }
  std::printf("\n");
  const std::size_t count = series.front().second.size();
  for (std::size_t i = 0; i < count; i += 3) {
    std::printf("%8zu", i + 1);
    for (const auto& [name, values] : series) {
      std::printf(" %12.4f", values[i]);
    }
    std::printf("\n");
  }
  std::printf("%8s", "max:");
  for (const auto& [name, values] : series) {
    double peak = 0.0;
    for (const double v : values) peak = std::max(peak, v);
    std::printf(" %12.4f", peak);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace lsm;
  bench::banner("Figure 5: delays of pictures, Driving1 (basic algorithm)");

  const trace::Trace t = trace::driving1();
  const std::vector<double> ideal = delays_of(core::smooth_ideal(t));

  // Left panel.
  core::SmootherParams params = bench::paper_params(t);
  params.H = 9;
  params.D = 0.1;
  const std::vector<double> d01 = delays_of(core::smooth_basic(t, params));
  params.D = 0.3;
  const std::vector<double> d03 = delays_of(core::smooth_basic(t, params));
  print_panel("left panel: D=0.1 and D=0.3 (K=1, H=9) vs ideal",
              {{"D=0.1", d01}, {"D=0.3", d03}, {"ideal", ideal}});

  // Right panel: equal slack 0.1333, K = 1 vs K = 9.
  params = bench::paper_params(t);
  params.H = 9;
  params.K = 1;
  params.D = 0.1333 + (params.K + 1) / 30.0;
  const std::vector<double> k1 = delays_of(core::smooth_basic(t, params));
  params.K = 9;
  params.D = 0.1333 + (params.K + 1) / 30.0;
  const std::vector<double> k9 = delays_of(core::smooth_basic(t, params));
  print_panel(
      "right panel: D=0.1333+(K+1)/30, H=9, K=1 vs K=9 vs ideal",
      {{"K=1", k1}, {"K=9", k9}, {"ideal", ideal}});

  std::printf("\nNote: K=9 delays sit a full pattern above K=1 at equal "
              "slack; the paper concludes K=1 should be used.\n");
  return 0;
}
