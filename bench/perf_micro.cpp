// Throughput microbenchmarks (google-benchmark): how fast are the smoother,
// the offline-optimal solver, the estimators, and the codec primitives? The
// algorithm must run in real time on 1994 hardware — a picture decision
// costs O(H) arithmetic — so modern throughput should be millions of
// pictures per second.
#include <benchmark/benchmark.h>

#include "core/ideal.h"
#include "core/simd_dispatch.h"
#include "core/optimal.h"
#include "core/smoother.h"
#include "core/streaming.h"
#include "mpeg/dct.h"
#include "mpeg/encoder.h"
#include "mpeg/quant.h"
#include "mpeg/motion.h"
#include "mpeg/systems.h"
#include "mpeg/videogen.h"
#include "net/layered.h"
#include "net/mux.h"
#include "net/packetize.h"
#include "net/statmux.h"
#include "obs/alloc_hook.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "runtime/batch.h"
#include "runtime/encode_batch.h"
#include "trace/sequences.h"
#include "trace/synthetic.h"

namespace {

using namespace lsm;

void BM_SmoothBasic(benchmark::State& state) {
  const trace::Trace t = trace::driving1();
  core::SmootherParams params;
  params.tau = t.tau();
  params.H = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::smooth_basic(t, params));
  }
  state.SetItemsProcessed(state.iterations() * t.picture_count());
}
BENCHMARK(BM_SmoothBasic)->Arg(1)->Arg(9)->Arg(18);

// The tracing-cost gate: the same BM_SmoothBasic loop with the global
// tracer disabled (the shipped default: one relaxed load per picture) and
// enabled (events land in the SPSC rings, drained each iteration so the
// rings never fill). Baseline thresholds keep "tracing off" within noise
// of BM_SmoothBasic/18 — instrumenting the engine must stay free.
void BM_TraceOverhead(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  const trace::Trace t = trace::driving1();
  core::SmootherParams params;
  params.tau = t.tau();
  params.H = 18;
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(enabled);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::smooth_basic(t, params));
    if (enabled) tracer.clear();
  }
  tracer.set_enabled(false);
  tracer.clear();
  state.SetItemsProcessed(state.iterations() * t.picture_count());
}
BENCHMARK(BM_TraceOverhead)->ArgName("enabled")->Arg(0)->Arg(1);

// The health-plane primitive: one QuantileSketch::observe() is a frexp,
// a shift, and two integer increments. The BM_MuxScale rows carry this
// cost inline (every decided picture is observed twice, plus the
// per-epoch global sketches), gated at <= 5% there; this row pins the
// primitive itself so a geometry change cannot hide inside mux noise.
// Values span ~20 octaves around 1.0 — the delay/slack regime.
void BM_SketchOverhead(benchmark::State& state) {
  std::vector<double> values(4096);
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;  // splitmix-style scramble
  for (double& v : values) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    const std::uint64_t h = x * 0x2545f4914f6cdd1dULL;
    v = std::ldexp(0.5 + 0.5 * static_cast<double>(h >> 11) * 0x1.0p-53,
                   static_cast<int>(h % 21) - 10);
  }
  obs::QuantileSketch sketch;
  for (auto _ : state) {
    for (const double value : values) sketch.observe(value);
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_SketchOverhead);

// A long scene-process trace (>= 50k pictures) so the per-picture cost is
// measured with the estimator tables, prefix sums, and trace data far
// outside L1/L2 — the regime batch consumers actually run in, where the
// small paper traces (< 10k pictures) flatter the cache.
const trace::Trace& long_synthetic_trace() {
  static const trace::Trace t = [] {
    trace::SyntheticConfig config;
    config.name = "bench-long";
    config.seed = 42;
    for (int s = 0; s < 25; ++s) {
      // Alternating calm and busy scenes, 2160 frames (90 s) each: 54k
      // pictures total, with scene changes to exercise the scene-cut
      // fallback inside the size model.
      config.scenes.push_back(trace::SceneSpec{
          2160, 0.8 + 0.03 * s, s % 2 == 0 ? 0.1 : 0.5,
          s % 2 == 0 ? 0.3 : 0.7});
    }
    return trace::synthesize(config, trace::GopPattern(9, 3));
  }();
  return t;
}

void BM_SmoothBasicLong(benchmark::State& state) {
  const trace::Trace& t = long_synthetic_trace();
  core::SmootherParams params;
  params.tau = t.tau();
  params.H = static_cast<int>(state.range(0));
  std::vector<core::PictureSend> sends;
  std::vector<core::StepDiagnostics> diagnostics;
  const core::PatternEstimator estimator(t);
  for (auto _ : state) {
    sends.clear();
    diagnostics.clear();
    core::SmootherEngine engine(t, params, estimator);
    engine.run_into(sends, diagnostics);
    benchmark::DoNotOptimize(sends.data());
  }
  state.SetItemsProcessed(state.iterations() * t.picture_count());
}
BENCHMARK(BM_SmoothBasicLong)->Arg(18);

// Whole-loop throughput of each sealed estimator kernel: the estimator
// choice decides which fast-path kernel the engine instantiates, so these
// track the per-kernel cost of the devirtualized path (compare against
// BM_SmoothBasic, the PatternEstimator kernel, on the same trace).
template <typename Estimator, typename... Args>
void smooth_with_estimator(benchmark::State& state, Args... args) {
  const trace::Trace t = trace::driving1();
  core::SmootherParams params;
  params.tau = t.tau();
  params.H = 18;
  const Estimator estimator(t, args...);
  std::vector<core::PictureSend> sends;
  std::vector<core::StepDiagnostics> diagnostics;
  for (auto _ : state) {
    sends.clear();
    diagnostics.clear();
    core::SmootherEngine engine(t, params, estimator);
    engine.run_into(sends, diagnostics);
    benchmark::DoNotOptimize(sends.data());
  }
  state.SetItemsProcessed(state.iterations() * t.picture_count());
}

void BM_LastSameType(benchmark::State& state) {
  smooth_with_estimator<core::LastSameTypeEstimator>(state);
}
BENCHMARK(BM_LastSameType);

void BM_PhaseEwma(benchmark::State& state) {
  smooth_with_estimator<core::PhaseEwmaEstimator>(state, 0.5);
}
BENCHMARK(BM_PhaseEwma);

void BM_TypeMean(benchmark::State& state) {
  smooth_with_estimator<core::TypeMeanEstimator>(state);
}
BENCHMARK(BM_TypeMean);

void BM_SmoothModified(benchmark::State& state) {
  const trace::Trace t = trace::driving1();
  core::SmootherParams params;
  params.tau = t.tau();
  params.H = 9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::smooth_modified(t, params));
  }
  state.SetItemsProcessed(state.iterations() * t.picture_count());
}
BENCHMARK(BM_SmoothModified);

// Batch runtime scaling: 32 independent smoothing runs (the four paper
// traces, cycled) sharded across a work-stealing pool. Near-linear scaling
// in the thread count is the tentpole claim; CI's bench-baseline job tracks
// items_per_second for each thread count. UseRealTime: the work happens on
// pool workers, not the benchmark thread.
void BM_BatchSmooth(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::vector<trace::Trace> catalog = trace::paper_sequences();
  std::vector<runtime::BatchJob> jobs;
  std::int64_t batch_pictures = 0;
  for (int i = 0; i < 32; ++i) {
    const trace::Trace& t = catalog[static_cast<std::size_t>(i) %
                                    catalog.size()];
    core::SmootherParams params;
    params.K = 1;
    params.H = t.pattern().N();
    params.D = 0.2;
    params.tau = t.tau();
    jobs.push_back(runtime::BatchJob{&t, params, core::Variant::kBasic});
    batch_pictures += t.picture_count();
  }
  runtime::BatchSmoother batch(threads);
  std::vector<core::SmoothingResult> results;
  for (auto _ : state) {
    batch.run_into(jobs, results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * batch_pictures);
  state.counters["streams_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(jobs.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchSmooth)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_IdealSmoothing(benchmark::State& state) {
  const trace::Trace t = trace::driving1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::smooth_ideal(t));
  }
  state.SetItemsProcessed(state.iterations() * t.picture_count());
}
BENCHMARK(BM_IdealSmoothing);

void BM_OfflineOptimal(benchmark::State& state) {
  const trace::Trace t = trace::driving1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::smooth_offline_optimal(t, 0.2));
  }
  state.SetItemsProcessed(state.iterations() * t.picture_count());
}
BENCHMARK(BM_OfflineOptimal);

void BM_PatternEstimator(benchmark::State& state) {
  const trace::Trace t = trace::driving1();
  const core::PatternEstimator estimator(t);
  int j = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.size_at(j, 5.0));
    j = j % t.picture_count() + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PatternEstimator);

void BM_ForwardDct(benchmark::State& state) {
  mpeg::Block block;
  for (std::size_t k = 0; k < 64; ++k) {
    block[k] = static_cast<std::int16_t>((k * 37) % 255 - 128);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpeg::forward_dct(block));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardDct);

void BM_ForwardDctFast(benchmark::State& state) {
  mpeg::Block block;
  for (std::size_t k = 0; k < 64; ++k) {
    block[k] = static_cast<std::int16_t>((k * 37) % 255 - 128);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpeg::forward_dct_fast(block));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardDctFast);

void BM_QuantIntra(benchmark::State& state) {
  mpeg::Block block;
  for (std::size_t k = 0; k < 64; ++k) {
    block[k] = static_cast<std::int16_t>((k * 37) % 255 - 128);
  }
  const mpeg::CoeffBlock coeffs = mpeg::forward_dct(block);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpeg::quantize_intra_fast(coeffs, 4));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuantIntra);

const std::vector<mpeg::Frame>& cif_video() {
  static const std::vector<mpeg::Frame> video = [] {
    mpeg::VideoConfig video_config;
    video_config.width = 176;
    video_config.height = 144;
    video_config.scenes = {mpeg::VideoScene{9, 1.0, 0.5}};
    return mpeg::generate_video(video_config);
  }();
  return video;
}

// Full-pipeline encoder throughput on the SIMD fast path with slice rows
// spread over a pool; thread scaling across {1, 4, 8} is the tentpole
// claim next to BM_BatchSmooth. UseRealTime: slices run on pool workers.
void BM_EncodeCif(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const std::vector<mpeg::Frame>& video = cif_video();
  runtime::ThreadPool pool(threads);
  mpeg::EncoderConfig config;
  config.pattern = trace::GopPattern(9, 3);
  config.slice_executor = runtime::pool_slice_executor(pool);
  const mpeg::Encoder encoder(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(video));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(video.size()));
}
BENCHMARK(BM_EncodeCif)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The pre-optimization configuration — scalar kernels, serial slices — so
// the fast path's speedup stays a measured number, not a changelog claim.
void BM_EncodeCifScalar(benchmark::State& state) {
  const std::vector<mpeg::Frame>& video = cif_video();
  mpeg::EncoderConfig config;
  config.pattern = trace::GopPattern(9, 3);
  config.path = mpeg::EncoderPath::kReference;
  const mpeg::Encoder encoder(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(video));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(video.size()));
}
BENCHMARK(BM_EncodeCifScalar)->Unit(benchmark::kMillisecond);

void BM_StreamingSmoother(benchmark::State& state) {
  const trace::Trace t = trace::driving1();
  core::SmootherParams params;
  params.tau = t.tau();
  params.H = 9;
  for (auto _ : state) {
    core::StreamingSmoother streaming(t.pattern(), params);
    std::int64_t decided = 0;
    for (int i = 1; i <= t.picture_count(); ++i) {
      streaming.push(t.size_of(i));
      decided += static_cast<std::int64_t>(streaming.drain().size());
    }
    streaming.finish();
    decided += static_cast<std::int64_t>(streaming.drain().size());
    benchmark::DoNotOptimize(decided);
  }
  state.SetItemsProcessed(state.iterations() * t.picture_count());
}
BENCHMARK(BM_StreamingSmoother);

void BM_HalfPelSearch(benchmark::State& state) {
  mpeg::VideoConfig config;
  config.width = 96;
  config.height = 64;
  config.scenes = {mpeg::VideoScene{2, 1.0, 0.5}};
  const std::vector<mpeg::Frame> video = mpeg::generate_video(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mpeg::search_motion_halfpel(video[1], video[0], 2, 1, 7));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HalfPelSearch);

// The packed-SAD kernel with early termination, on the same interior
// macroblock the scalar BM_HalfPelSearch uses.
void BM_FullPelSearch(benchmark::State& state) {
  mpeg::VideoConfig config;
  config.width = 96;
  config.height = 64;
  config.scenes = {mpeg::VideoScene{2, 1.0, 0.5}};
  const std::vector<mpeg::Frame> video = mpeg::generate_video(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mpeg::search_motion_fast(video[1], video[0], 2, 1, 7));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullPelSearch);

void BM_SystemsMux(benchmark::State& state) {
  mpeg::VideoConfig video_config;
  video_config.width = 96;
  video_config.height = 64;
  video_config.scenes = {mpeg::VideoScene{18, 1.0, 0.4}};
  mpeg::EncoderConfig encoder_config;
  encoder_config.pattern = trace::GopPattern(9, 3);
  const mpeg::EncodeResult encoded =
      mpeg::Encoder(encoder_config).encode(mpeg::generate_video(video_config));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mpeg::mux_systems(encoded));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(encoded.stream.size()));
}
BENCHMARK(BM_SystemsMux);

void BM_CellMux(benchmark::State& state) {
  const trace::Trace t = trace::driving1();
  const std::vector<std::vector<net::Cell>> sources = {
      net::packetize_unsmoothed(t)};
  const net::MuxConfig config{t.mean_rate() * 1.2, 100};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::simulate_cell_mux(sources, config));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sources[0].size()));
}
BENCHMARK(BM_CellMux);

// Full layered pipeline (split, per-layer smoothing, joint admission
// against a shared channel cap) over driving1 with three geometric
// layers. Exercises the merged-breakpoint edge build and the joint
// admission scan, the hot path of net/layered.cpp.
void BM_LayeredSmooth(benchmark::State& state) {
  const trace::Trace t = trace::driving1();
  net::LayeredConfig config;
  for (int l = 0; l < 3; ++l) {
    net::LayerSpec layer;
    layer.params.tau = t.tau();
    layer.params.D = 0.2;
    layer.params.K = 1;
    layer.params.H = t.pattern().N();
    layer.priority = l;
    config.layers.push_back(layer);
  }
  config.channel_cap = t.mean_rate() * 1.2;  // tight enough to shed
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::run_layered_pipeline(t, config));
  }
  state.SetItemsProcessed(state.iterations() * 3 *
                          static_cast<std::int64_t>(t.picture_count()));
}
BENCHMARK(BM_LayeredSmooth);

// Sharded statmux at scale: `streams` resident endless streams over
// `shards` shards, with arrival cadences staggered so roughly 1024
// streams are dirty each epoch regardless of the resident count. The
// measured per-epoch cost therefore tracks the DIRTY set: items/s
// (pictures scheduled per second) staying flat from 1k to 100k resident
// streams is the scaling property the CI baseline gates.
void BM_MuxScale(benchmark::State& state) {
  const int streams = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  const int period = streams / 1024 < 1 ? 1 : streams / 1024;

  net::StatmuxConfig config;
  config.shards = shards;
  config.ring_capacity =
      static_cast<std::size_t>(streams / shards) * 2 + 64;
  config.max_streams_per_shard = streams;
  config.link_rate_bps = 1e15;  // admission never rate-limited here
  net::StatmuxService service(config);

  for (int id = 1; id <= streams; ++id) {
    net::StreamSpec spec;
    spec.id = static_cast<std::uint32_t>(id);
    spec.gop_n = 9;
    spec.gop_m = 3;
    spec.params.tau = 1.0 / 30.0;
    spec.params.D = 0.2;
    spec.params.H = spec.gop_n;
    spec.feed_seed = 0xbe9c0000ULL + static_cast<std::uint64_t>(id);
    spec.picture_count = 0;  // endless: population constant while timed
    spec.period_ticks = period;
    spec.phase_ticks = id % period;
    if (!service.admit(spec)) {
      state.SkipWithError("admission ring rejected setup stream");
      return;
    }
  }
  // Warm to steady state: every stream pushes past the smoother's
  // bounded-window trim threshold (~84 pictures), so retained buffers sit
  // at their high-water capacity, plus one full level-0 lap of the timing
  // wheel (256 ticks) so every calendar bucket has seen its peak
  // population and the timed epochs do no per-stream reallocation.
  service.run_epochs(period * 110 + 1 + 256);

  const std::int64_t before = service.stats().pictures;
  for (auto _ : state) {
    service.run_epoch();
  }
  state.SetItemsProcessed(service.stats().pictures - before);
  state.counters["resident"] = static_cast<double>(service.active_streams());
  // Deterministic health counters, ceiling-gated via max_counters in
  // BENCH_BASELINE.json: wheel_entries above `resident` means stale
  // calendar entries are accumulating (a leak — every resident stream owns
  // exactly one live entry here), and dirty_set above ceil(streams/period)
  // means the staggered cadence degraded into thundering herds.
  state.counters["dirty_set"] =
      static_cast<double>(service.last_dirty_streams());
  state.counters["wheel_entries"] =
      static_cast<double>(service.wheel_entries());
}
BENCHMARK(BM_MuxScale)
    ->ArgNames({"streams", "shards"})
    ->Args({1000, 4})
    ->Args({10000, 8})
    ->Args({100000, 8})
    ->Args({1000000, 8})
    ->UseRealTime();

// ---------------------------------------------------------------------------
// Steady-state allocation audits. perf_micro links lsm_allochook, so every
// global operator new ticks obs::alloc_count(); each audit warms its
// subsystem past every high-water mark, measures allocations across a
// handful of un-timed iterations (OUTSIDE the benchmark timing loop, so
// the framework's own bookkeeping cannot leak into the number), and
// reports the per-iteration average as the `allocs_steady` counter.
// BENCH_BASELINE.json gates these at zero via max_counters — the hot loops
// must not touch the heap once warm. The timed loop still runs so the
// audits double as throughput benchmarks of the reuse paths.

/// Allocations per call of `body` after `warmup` warm calls, averaged over
/// `audited` calls.
template <typename Body>
double audit_steady_allocs(int warmup, int audited, Body&& body) {
  for (int r = 0; r < warmup; ++r) body();
  const std::int64_t before = obs::alloc_count();
  for (int r = 0; r < audited; ++r) body();
  return static_cast<double>(obs::alloc_count() - before) /
         static_cast<double>(audited);
}

// One endless smoothing stream: push/drain_into against a single
// StreamingSmoother whose bounded retention and send buffer have reached
// capacity. The steady state of every resident statmux stream.
void BM_SmoothSteadyAllocs(benchmark::State& state) {
  const trace::Trace t = trace::driving1();
  core::SmootherParams params;
  params.tau = t.tau();
  params.H = 9;
  core::StreamingSmoother streaming(t.pattern(), params);
  std::vector<core::PictureSend> sends;
  sends.reserve(1024);
  int next = 1;
  const auto push_chunk = [&] {
    for (int k = 0; k < 256; ++k) {
      streaming.push(t.size_of(next));
      next = next % t.picture_count() + 1;
      sends.clear();
      streaming.drain_into(sends);
      benchmark::DoNotOptimize(sends.data());
    }
  };
  const double allocs = audit_steady_allocs(4, 4, push_chunk);
  std::int64_t pictures = 0;
  for (auto _ : state) {
    push_chunk();
    pictures += 256;
  }
  state.SetItemsProcessed(pictures);
  state.counters["allocs_steady"] = allocs;
  obs::publish_steady_allocs(obs::Registry::global(), "smooth",
                             static_cast<std::int64_t>(allocs));
}
BENCHMARK(BM_SmoothSteadyAllocs);

// encode_into against a warm EncodeWorkspace: recon frames, slice
// writers, stream buffer, and picture records all at high-water capacity.
void BM_EncodeSteadyAllocs(benchmark::State& state) {
  const std::vector<mpeg::Frame>& video = cif_video();
  mpeg::EncoderConfig config;
  config.pattern = trace::GopPattern(9, 3);
  const mpeg::Encoder encoder(config);
  mpeg::EncodeResult result;
  mpeg::EncodeWorkspace workspace;
  const auto encode_once = [&] {
    encoder.encode_into(video, result, workspace);
    benchmark::DoNotOptimize(result.stream.data());
  };
  const double allocs = audit_steady_allocs(2, 4, encode_once);
  for (auto _ : state) encode_once();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(video.size()));
  state.counters["allocs_steady"] = allocs;
  obs::publish_steady_allocs(obs::Registry::global(), "encode",
                             static_cast<std::int64_t>(allocs));
}
BENCHMARK(BM_EncodeSteadyAllocs)->Unit(benchmark::kMillisecond);

// Warmed statmux epochs with a bounded rate history: shard scratch, task
// ring, smoother retention, and the rate ring are all at capacity, so a
// long-running service's epoch loop never allocates.
void BM_MuxSteadyAllocs(benchmark::State& state) {
  constexpr int kStreams = 1000;
  net::StatmuxConfig config;
  config.shards = 4;
  config.ring_capacity = kStreams * 2 + 64;
  config.max_streams_per_shard = kStreams;
  config.link_rate_bps = 1e15;
  config.rate_history_limit = 128;
  net::StatmuxService service(config);
  for (int id = 1; id <= kStreams; ++id) {
    net::StreamSpec spec;
    spec.id = static_cast<std::uint32_t>(id);
    spec.gop_n = 9;
    spec.gop_m = 3;
    spec.params.tau = 1.0 / 30.0;
    spec.params.D = 0.2;
    spec.params.H = spec.gop_n;
    spec.feed_seed = 0xbe9c0000ULL + static_cast<std::uint64_t>(id);
    spec.picture_count = 0;  // endless
    spec.period_ticks = 1;
    spec.phase_ticks = 0;
    if (!service.admit(spec)) {
      state.SkipWithError("admission ring rejected setup stream");
      return;
    }
  }
  const auto epoch = [&] { service.run_epoch(); };
  // Warm epochs push every stream past the smoother trim threshold (~84
  // pictures), fill the 128-slot rate-history ring, AND complete a full
  // level-0 lap of the timing wheel (256 ticks) so every calendar bucket
  // holds its high-water capacity before the audit starts.
  const double allocs = audit_steady_allocs(140 + 256, 8, epoch);
  const std::int64_t before = service.stats().pictures;
  for (auto _ : state) epoch();
  state.SetItemsProcessed(service.stats().pictures - before);
  state.counters["allocs_steady"] = allocs;
  obs::publish_steady_allocs(obs::Registry::global(), "mux",
                             static_cast<std::int64_t>(allocs));
}
BENCHMARK(BM_MuxSteadyAllocs)->UseRealTime();

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): stamp the SIMD dispatch
// decision into the benchmark context, so every JSON/console report (and
// the CI bench_summary.md built from it) records which kernel tier
// produced the numbers.
int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "lsm_simd_detected",
      lsm::simd::simd_level_name(lsm::simd::detected_simd_level()));
  benchmark::AddCustomContext(
      "lsm_simd_active",
      lsm::simd::simd_level_name(lsm::simd::active_simd_level()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
