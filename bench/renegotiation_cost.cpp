// The signalling cost of VBR video, quantified: plan renegotiated-CBR
// reservations for raw vs smoothed streams across hold times. This makes
// the paper's "number of rate changes" measure operational — every change
// is a renegotiation a network must process, and over-reservation is the
// capacity wasted between changes.
#include "bench_util.h"

#include "net/admission.h"
#include "net/renegotiation.h"

namespace {

using namespace lsm;

core::RateSchedule raw_schedule(const trace::Trace& t) {
  std::vector<core::RateSegment> segments;
  for (int i = 1; i <= t.picture_count(); ++i) {
    segments.push_back(core::RateSegment{
        (i - 1) * t.tau(), i * t.tau(),
        static_cast<double>(t.size_of(i)) / t.tau()});
  }
  return core::RateSchedule(std::move(segments));
}

}  // namespace

int main() {
  bench::banner("Renegotiated-CBR carriage cost: raw vs smoothed");

  for (const trace::Trace& t : trace::paper_sequences()) {
    const core::RateSchedule raw = raw_schedule(t);
    const core::RateSchedule smooth =
        core::smooth_basic(t, bench::paper_params(t)).schedule();
    std::printf("\n# %s (renegotiations | over-reservation)\n",
                t.name().c_str());
    std::printf("%10s %16s %16s\n", "hold(s)", "raw", "smoothed");
    for (const double hold : {0.1, 0.25, 0.5, 1.0, 2.0}) {
      net::RenegotiationPolicy policy;
      policy.min_hold = hold;
      const net::ReservationResult raw_plan =
          net::plan_reservation(raw, policy);
      const net::ReservationResult smooth_plan =
          net::plan_reservation(smooth, policy);
      std::printf("%10.2f %9d %5.1f%% %9d %5.1f%%\n", hold,
                  raw_plan.renegotiations, 100.0 * raw_plan.over_reservation,
                  smooth_plan.renegotiations,
                  100.0 * smooth_plan.over_reservation);
    }
  }

  std::printf("\nadmission-control view (C = 12 Mbps):\n");
  std::printf("%16s %10s %10s\n", "buffer(kbit)", "raw", "smoothed");
  const std::vector<trace::Trace> catalog = trace::paper_sequences();
  for (const double buffer : {100e3, 300e3, 600e3, 1200e3}) {
    int counts[2] = {0, 0};
    for (const bool smoothed : {false, true}) {
      net::AdmissionController controller(12e6, buffer);
      for (int s = 0; s < 24; ++s) {
        const trace::Trace& t =
            catalog[static_cast<std::size_t>(s) % catalog.size()];
        const core::RateSchedule schedule =
            smoothed
                ? core::smooth_basic(t, bench::paper_params(t)).schedule()
                : raw_schedule(t);
        controller.try_admit(
            net::describe_stream(schedule, t.mean_rate() * 1.45));
      }
      counts[smoothed ? 1 : 0] = controller.admitted_count();
    }
    std::printf("%16.0f %10d %10d\n", buffer / 1e3, counts[0], counts[1]);
  }
  std::printf("\nExpected shape: smoothed streams renegotiate less, waste "
              "less reserved capacity, and admit in greater numbers at "
              "small buffers.\n");
  return 0;
}
