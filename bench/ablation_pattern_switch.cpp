// Section 4.4 extension: the encoder switches coding pattern mid-stream
// (N=9/M=3 -> N=6/M=2 at the scene change). The basic algorithm does not
// depend on M and uses N only in size estimation, so the delay bound is
// unaffected — only smoothness suffers, and only through the estimator.
// This bench compares estimators around the switch.
#include "bench_util.h"

#include "core/theorem.h"

int main() {
  using namespace lsm;
  bench::banner(
      "Extension: mid-stream pattern switch (N=9/M=3 -> N=6/M=2)");

  const trace::Trace first = trace::driving1().slice(1, 153);
  const trace::Trace second = trace::driving2().slice(157, 300);
  const trace::Trace switched = trace::concat(first, second);
  std::printf("\nswitched sequence: %d pictures, switch after picture %d\n",
              switched.picture_count(), first.picture_count());

  core::SmootherParams params;
  params.tau = switched.tau();
  params.D = 0.2;
  params.H = 9;

  std::printf("\n%-16s %12s %12s %14s %10s %10s\n", "estimator", "area_diff",
              "rate_changes", "max_rate_Mbps", "max_delay", "delay_ok");
  const core::PatternEstimator pattern(switched);
  const core::OracleEstimator oracle(switched);
  const core::LastSameTypeEstimator last(switched);
  const core::PhaseEwmaEstimator ewma(switched);
  for (const core::SizeEstimator* estimator :
       {static_cast<const core::SizeEstimator*>(&pattern),
        static_cast<const core::SizeEstimator*>(&oracle),
        static_cast<const core::SizeEstimator*>(&last),
        static_cast<const core::SizeEstimator*>(&ewma)}) {
    const core::SmoothingResult result =
        core::smooth(switched, params, *estimator);
    const core::SmoothnessMetrics metrics = core::evaluate(result, switched);
    const core::TheoremReport report = core::check_theorem1(result, switched);
    std::printf("%-16s %12.4f %12d %14.4f %10.4f %10s\n",
                estimator->name().c_str(), metrics.area_difference,
                metrics.rate_changes, metrics.max_rate / 1e6,
                report.max_delay, report.delay_bound_ok ? "yes" : "NO");
  }
  std::printf("\nExpected shape: delay_ok for every estimator (Theorem 1 is "
              "estimate-independent); type-aware estimators track the new "
              "pattern with fewer rate changes than the fixed-N walk.\n");
  return 0;
}
