// Figure 7: the four smoothness measures as a function of the lookahead
// interval H (D = 0.2, K = 1), all four sequences.
//
// Paper findings to reproduce (the Section 4.3 conjecture):
//   * area difference, SD, and max rate stop improving once H reaches the
//     pattern length N — estimated sizes beyond one pattern add nothing;
//   * the number of rate changes INCREASES for H > N.
#include "bench_util.h"

int main() {
  using namespace lsm;
  bench::banner("Figure 7: measures vs lookahead H (D=0.2, K=1)");

  for (const trace::Trace& t : trace::paper_sequences()) {
    const int n = t.pattern().N();
    std::printf("\n# %s (N=%d)\n", t.name().c_str(), n);
    lsm::bench::print_measures_header("H");
    for (int h = 1; h <= 2 * n; ++h) {
      core::SmootherParams params = bench::paper_params(t);
      params.H = h;
      const core::SmoothingResult result = core::smooth_basic(t, params);
      lsm::bench::print_measures_row(h, core::evaluate(result, t));
    }
  }
  return 0;
}
