// Underflow vs. headroom across fault intensities: runs the faulted
// transport pipeline over a grid of fault intensity x playout headroom x
// degradation mode and reports how gracefully the pipeline degrades —
// late pictures, worst delay excess over D, retransmitted bits, and
// recovery effort. Emits CSV rows plus one DegradationCounters JSON blob
// per intensity so CI artifacts can track the degradation telemetry.
//
// Deliberately NOT part of perf_micro: this bench measures model outputs,
// not wall-clock, so it never perturbs the BENCH_BASELINE.json gates.
#include "bench_util.h"

#include "net/transport.h"
#include "obs/metrics.h"

namespace {

using namespace lsm;

net::PipelineConfig pipeline_config(const trace::Trace& t, double headroom) {
  net::PipelineConfig config;
  config.params = bench::paper_params(t);
  config.network_latency = 0.010;
  config.jitter = 0.005;
  // Explicit offset = Theorem 1 bound + headroom; headroom 0 is the knife
  // edge where any fault-induced lag shows up as underflow.
  config.playout_offset = config.params.D + config.network_latency +
                          config.jitter + headroom;
  return config;
}

const char* mode_name(net::DegradationMode mode) {
  return mode == net::DegradationMode::kLatePicture ? "late_picture"
                                                    : "rate_relaxation";
}

}  // namespace

int main() {
  bench::banner("Fault sweep: underflow vs. headroom vs. intensity");

  std::printf(
      "trace,mode,intensity,headroom_s,pictures,late,underflow_pct,"
      "worst_excess_s,faded,retransmitted,stalled,denials,retries,giveups,"
      "retx_bits\n");

  const std::vector<trace::Trace> traces = {trace::driving1(),
                                            trace::tennis()};
  for (const double intensity : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    sim::FaultSpec spec;
    spec.intensity = intensity;
    spec.seed = 1994;
    const sim::FaultPlan plan = sim::FaultPlan::generate(spec);
    runtime::DegradationCounters aggregate;
    for (const net::DegradationMode mode :
         {net::DegradationMode::kLatePicture,
          net::DegradationMode::kRateRelaxation}) {
      for (const double headroom : {0.0, 0.05, 0.2}) {
        for (const trace::Trace& t : traces) {
          net::FaultedPipelineConfig config;
          config.base = pipeline_config(t, headroom);
          config.recovery.mode = mode;
          const net::FaultedPipelineReport result =
              net::run_faulted_pipeline(t, config, plan);
          const runtime::DegradationCounters& deg = result.degradation;

          const std::size_t pictures = result.report.deliveries.size();
          bench::require(pictures ==
                             static_cast<std::size_t>(t.picture_count()),
                         "every picture delivered");
          bench::require_finite(result.report.worst_delay_excess,
                                "worst_delay_excess");
          bench::require_finite(deg.retransmitted_bits, "retransmitted_bits");
          if (intensity == 0.0) {
            bench::require(result.report.underflows == 0 &&
                               !deg.any_fault(),
                           "zero intensity degrades nothing");
          }

          std::printf(
              "%s,%s,%.1f,%.2f,%zu,%d,%.2f,%.6f,%llu,%llu,%llu,%llu,%llu,"
              "%llu,%.0f\n",
              t.name().c_str(), mode_name(mode), intensity, headroom,
              pictures, result.report.underflows,
              100.0 * result.report.underflows /
                  static_cast<double>(pictures),
              result.report.worst_delay_excess,
              static_cast<unsigned long long>(deg.pictures_faded),
              static_cast<unsigned long long>(deg.pictures_retransmitted),
              static_cast<unsigned long long>(deg.pictures_stalled),
              static_cast<unsigned long long>(deg.denials),
              static_cast<unsigned long long>(deg.retries),
              static_cast<unsigned long long>(deg.giveups),
              deg.retransmitted_bits);
          aggregate += deg;
        }
      }
    }
    // Per-intensity telemetry as a unified metrics snapshot (one line per
    // intensity, each validated against tools/metrics_schema.json by CI).
    lsm::obs::Registry registry;
    registry.gauge("fault_sweep.intensity").set(intensity);
    aggregate.export_metrics(registry, "fault_sweep");
    std::printf("# metrics: %s\n", registry.to_json().c_str());
  }

  std::printf(
      "# Expected shape: under rate_relaxation the channel catches back up "
      "after a fault, so underflows fall as headroom grows; late_picture "
      "mode carries the accumulated lag instead, bounding renegotiation "
      "load at the cost of lateness.\n");
  return 0;
}
