// Underflow vs. headroom across fault intensities: runs the faulted
// transport pipeline over a grid of fault intensity x playout headroom x
// degradation mode and reports how gracefully the pipeline degrades —
// late pictures, worst delay excess over D, retransmitted bits, and
// recovery effort. A second sweep adds the hostile-channel dimensions:
// Markov channel process x layer count, running the layered joint
// smoother under a shared cap against each block-fading realization.
// Emits CSV rows plus one DegradationCounters JSON blob per grid point
// so CI artifacts can track the degradation telemetry.
//
// Deliberately NOT part of perf_micro: this bench measures model outputs,
// not wall-clock, so it never perturbs the BENCH_BASELINE.json gates.
#include "bench_util.h"

#include "net/layered.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "sim/channel.h"

namespace {

using namespace lsm;

net::PipelineConfig pipeline_config(const trace::Trace& t, double headroom) {
  net::PipelineConfig config;
  config.params = bench::paper_params(t);
  config.network_latency = 0.010;
  config.jitter = 0.005;
  // Explicit offset = Theorem 1 bound + headroom; headroom 0 is the knife
  // edge where any fault-induced lag shows up as underflow.
  config.playout_offset = config.params.D + config.network_latency +
                          config.jitter + headroom;
  return config;
}

const char* mode_name(net::DegradationMode mode) {
  return mode == net::DegradationMode::kLatePicture ? "late_picture"
                                                    : "rate_relaxation";
}

}  // namespace

int main() {
  bench::banner("Fault sweep: underflow vs. headroom vs. intensity");

  std::printf(
      "trace,mode,intensity,headroom_s,pictures,late,underflow_pct,"
      "worst_excess_s,faded,retransmitted,stalled,denials,retries,giveups,"
      "retx_bits\n");

  const std::vector<trace::Trace> traces = {trace::driving1(),
                                            trace::tennis()};
  for (const double intensity : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    sim::FaultSpec spec;
    spec.intensity = intensity;
    spec.seed = 1994;
    const sim::FaultPlan plan = sim::FaultPlan::generate(spec);
    runtime::DegradationCounters aggregate;
    for (const net::DegradationMode mode :
         {net::DegradationMode::kLatePicture,
          net::DegradationMode::kRateRelaxation}) {
      for (const double headroom : {0.0, 0.05, 0.2}) {
        for (const trace::Trace& t : traces) {
          net::FaultedPipelineConfig config;
          config.base = pipeline_config(t, headroom);
          config.recovery.mode = mode;
          const net::FaultedPipelineReport result =
              net::run_faulted_pipeline(t, config, plan);
          const runtime::DegradationCounters& deg = result.degradation;

          const std::size_t pictures = result.report.deliveries.size();
          bench::require(pictures ==
                             static_cast<std::size_t>(t.picture_count()),
                         "every picture delivered");
          bench::require_finite(result.report.worst_delay_excess,
                                "worst_delay_excess");
          bench::require_finite(deg.retransmitted_bits, "retransmitted_bits");
          if (intensity == 0.0) {
            bench::require(result.report.underflows == 0 &&
                               !deg.any_fault(),
                           "zero intensity degrades nothing");
          }

          std::printf(
              "%s,%s,%.1f,%.2f,%zu,%d,%.2f,%.6f,%llu,%llu,%llu,%llu,%llu,"
              "%llu,%.0f\n",
              t.name().c_str(), mode_name(mode), intensity, headroom,
              pictures, result.report.underflows,
              100.0 * result.report.underflows /
                  static_cast<double>(pictures),
              result.report.worst_delay_excess,
              static_cast<unsigned long long>(deg.pictures_faded),
              static_cast<unsigned long long>(deg.pictures_retransmitted),
              static_cast<unsigned long long>(deg.pictures_stalled),
              static_cast<unsigned long long>(deg.denials),
              static_cast<unsigned long long>(deg.retries),
              static_cast<unsigned long long>(deg.giveups),
              deg.retransmitted_bits);
          aggregate += deg;
        }
      }
    }
    // Per-intensity telemetry as a unified metrics snapshot (one line per
    // intensity, each validated against tools/metrics_schema.json by CI).
    lsm::obs::Registry registry;
    registry.gauge("fault_sweep.intensity").set(intensity);
    aggregate.export_metrics(registry, "fault_sweep");
    std::printf("# metrics: %s\n", registry.to_json().c_str());
  }

  std::printf(
      "# Expected shape: under rate_relaxation the channel catches back up "
      "after a fault, so underflows fall as headroom grows; late_picture "
      "mode carries the accumulated lag instead, bounding renegotiation "
      "load at the cost of lateness.\n");

  // --- Sweep 2: channel process x layer count -------------------------
  // The layered joint smoother against Markov block-fading channels: each
  // channel process is a seeded realization, each layer count splits the
  // video into that many priority-ordered sub-streams under a shared cap
  // calibrated just above the single-channel joint demand.
  bench::banner("Fault sweep: channel process x layer count");
  std::printf(
      "trace,channel,layers,transitions,mean_factor,joint_peak_bps,"
      "shed_events,min_active,shed_time_s,pictures_shed,underflows,"
      "channel_faded,base_overloaded\n");

  struct ChannelProcess {
    const char* name;
    double p, r, bad_factor;  // p = r = 0 selects the ideal channel
  };
  const ChannelProcess processes[] = {
      {"ideal", 0.0, 0.0, 1.0},
      {"ge_mild", 0.05, 0.40, 0.5},
      {"ge_harsh", 0.20, 0.30, 0.2},
  };
  for (const ChannelProcess& process : processes) {
    sim::ChannelPlan channel;
    double analytic_mean_factor = 1.0;
    if (process.p > 0.0) {
      sim::MarkovChannelSpec spec = sim::MarkovChannelSpec::gilbert_elliott(
          process.p, process.r, process.bad_factor);
      spec.horizon = 60.0;
      spec.seed = 1994;
      channel = sim::ChannelPlan::generate(spec);
      analytic_mean_factor = spec.mean_factor();
    }
    lsm::obs::Registry registry;
    runtime::DegradationCounters aggregate;
    std::uint64_t total_shed_events = 0;
    for (const int layer_count : {1, 2, 3}) {
      for (const trace::Trace& t : traces) {
        net::LayeredConfig config;
        for (int l = 0; l < layer_count; ++l) {
          net::LayerSpec layer;
          layer.params = bench::paper_params(t);
          layer.priority = l;
          // The base rides the paper's late-picture response; enhancement
          // layers relax rate to catch up when the channel permits.
          layer.mode = l == 0 ? net::DegradationMode::kLatePicture
                              : net::DegradationMode::kRateRelaxation;
          config.layers.push_back(layer);
        }
        config.network_latency = 0.010;
        config.jitter = 0.005;

        // Calibrate the shared cap at the clean joint peak so the fading
        // channel (not the split itself) is what forces shedding.
        net::LayeredConfig probe = config;
        probe.channel_cap = 1e15;
        const double peak =
            net::run_layered_pipeline(t, probe).joint_peak_demand;
        config.channel_cap = peak;

        const net::LayeredReport report =
            net::run_layered_pipeline(t, config, {}, channel);
        double shed_time = 0.0;
        std::uint64_t pictures_shed = 0;
        int underflows = 0;
        std::uint64_t channel_faded = 0;
        for (const net::LayerOutcome& layer : report.layers) {
          shed_time += layer.shed_time;
          pictures_shed += layer.pictures_shed;
          underflows += layer.report.underflows;
          channel_faded += layer.degradation.pictures_channel_faded;
          aggregate += layer.degradation;
        }
        total_shed_events += report.shed_events;
        bench::require_finite(report.joint_peak_demand, "joint_peak_demand");
        bench::require(report.min_active_layers >= 1,
                       "base layer always active");
        if (process.p == 0.0 && layer_count == 1) {
          bench::require(report.shed_events == 0 && underflows == 0,
                         "ideal single layer degrades nothing");
        }
        std::printf("%s,%s,%d,%d,%.4f,%.0f,%llu,%d,%.3f,%llu,%d,%llu,%d\n",
                    t.name().c_str(), process.name, layer_count,
                    channel.transition_count(), analytic_mean_factor,
                    report.joint_peak_demand,
                    static_cast<unsigned long long>(report.shed_events),
                    report.min_active_layers, shed_time,
                    static_cast<unsigned long long>(pictures_shed),
                    underflows,
                    static_cast<unsigned long long>(channel_faded),
                    report.base_overloaded ? 1 : 0);
      }
    }
    // One schema-validated metrics line per channel process.
    registry.gauge("fault_sweep.channel_mean_factor")
        .set(analytic_mean_factor);
    registry.counter("fault_sweep.channel_transitions_realized")
        .add(static_cast<std::uint64_t>(channel.transition_count()));
    registry.counter("fault_sweep.layer_shed_events").add(total_shed_events);
    aggregate.export_metrics(registry, "fault_sweep");
    std::printf("# metrics: %s\n", registry.to_json().c_str());
  }
  std::printf(
      "# Expected shape: the ideal channel sheds nothing; as the channel "
      "process hardens, joint admission sheds enhancement layers first and "
      "the base layer's decodability survives until the cap falls below "
      "even its demand.\n");
  return 0;
}
