// Coding-pattern study: how the encoder's (N, M) choice shapes the
// smoothing problem. One synthetic video is encoded under several GOP
// structures; for each we report bit cost, quality, the I/B size spread
// (the thing smoothing exists to absorb), and the paper's smoothness
// measures at the standard operating point.
//
// Expected shape: all-intra (N=1) costs several times the bits but has
// almost nothing to smooth; long GOPs (N=12) are cheapest and burstiest;
// the paper's N=9/M=3 sits in between — interframe coding creates exactly
// the picture-scale burstiness the smoothing algorithm then removes.
#include "bench_util.h"

#include <cstdio>

#include "core/metrics.h"
#include "core/smoother.h"
#include "core/theorem.h"
#include "mpeg/encoder.h"
#include "mpeg/videogen.h"
#include "trace/stats.h"

int main() {
  using namespace lsm;
  bench::banner(
      "Codec pattern study: (N, M) vs rate, quality, and smoothness");

  mpeg::VideoConfig video_config;
  video_config.width = 192;
  video_config.height = 112;
  video_config.scenes = {mpeg::VideoScene{36, 1.1, 0.5},
                         mpeg::VideoScene{36, 0.9, 0.25}};
  video_config.seed = 88;
  const std::vector<mpeg::Frame> video = mpeg::generate_video(video_config);

  std::printf("\n%-14s %10s %8s %8s %8s %14s %12s\n", "pattern", "kbits",
              "PSNR", "I/B", "pk/mean", "smoothed_max", "rate_changes");
  for (const auto& [n, m] : {std::pair{1, 1}, {4, 1}, {6, 2}, {9, 3},
                             {12, 3}, {12, 4}}) {
    mpeg::EncoderConfig config;
    config.pattern = trace::GopPattern(n, m);
    const mpeg::EncodeResult encoded = mpeg::Encoder(config).encode(video);
    const trace::Trace t = encoded.display_trace("study");
    const trace::TraceStats stats = trace::compute_stats(t);

    double psnr = 0.0;
    for (const mpeg::EncodedPicture& picture : encoded.pictures) {
      psnr += picture.psnr_y;
    }
    psnr /= static_cast<double>(encoded.pictures.size());

    core::SmootherParams params;
    params.tau = t.tau();
    params.D = 0.2;
    params.H = n;
    const core::SmoothingResult result = core::smooth_basic(t, params);
    const core::SmoothnessMetrics metrics = core::evaluate(result, t);
    const core::TheoremReport report = core::check_theorem1(result, t);

    std::printf("%-14s %10.0f %8.1f %8.2f %8.2f %13.3fM %12d%s\n",
                t.pattern().to_string().c_str(),
                static_cast<double>(t.total_bits()) / 1e3, psnr,
                stats.i_to_b_ratio > 0 ? stats.i_to_b_ratio : 1.0,
                stats.peak_to_mean, metrics.max_rate / 1e6,
                metrics.rate_changes,
                report.all_ok() ? "" : "  THEOREM-VIOLATION");
  }
  std::printf("\nExpected shape: bits fall and burstiness (I/B, peak/mean) "
              "rises with GOP length; the delay bound holds for every "
              "pattern.\n");
  return 0;
}
