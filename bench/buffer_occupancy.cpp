// Buffer sizing study (system model, Figure 1): how much memory does
// smoothing cost at the sender, and how much playout buffer does the
// receiver need, as functions of the delay bound D? Not a figure in the
// paper, but the engineering question its delay bound directly answers:
// D bounds the sender queue residence time, so both buffers scale with D.
#include "bench_util.h"

#include <cstdio>

#include "core/buffer.h"
#include "core/optimal.h"

int main() {
  using namespace lsm;
  bench::banner("Buffer occupancy vs delay bound D (K=1, H=N)");

  for (const trace::Trace& t : trace::paper_sequences()) {
    std::printf("\n# %s (mean rate %.2f Mbps)\n", t.name().c_str(),
                t.mean_rate() / 1e6);
    std::printf("%8s %16s %16s %16s\n", "D(s)", "sender_max_kbit",
                "sender_mean_kbit", "receiver_max_kbit");
    for (const double d : {0.07, 0.1, 0.1333, 0.2, 0.3, 0.5}) {
      core::SmootherParams params = bench::paper_params(t);
      params.D = d;
      const core::SmoothingResult result = core::smooth_basic(t, params);
      const core::BufferAnalysis analysis =
          core::analyze_buffers(t, result, 0.0, d);
      std::printf("%8.4f %16.1f %16.1f %16.1f\n", d,
                  analysis.max_sender_bits / 1e3,
                  analysis.mean_sender_bits / 1e3,
                  analysis.max_receiver_bits / 1e3);
    }
  }
  std::printf("\nExpected shape: both buffers grow roughly linearly with D "
              "(about D seconds' worth of the stream's rate).\n");

  // Peak-rate vs receiver-buffer tradeoff: the buffer-constrained
  // offline-optimal schedule (the corridor formulation that followed the
  // paper). A small client buffer forces the channel peak back toward the
  // unsmoothed requirement.
  bench::banner("Peak rate vs receiver buffer (offline optimal, D=0.3)");
  for (const trace::Trace& t : trace::paper_sequences()) {
    double largest = 0.0;
    for (int i = 1; i <= t.picture_count(); ++i) {
      largest = std::max(largest, static_cast<double>(t.size_of(i)));
    }
    std::printf("\n# %s (largest picture %.0f kbit)\n", t.name().c_str(),
                largest / 1e3);
    std::printf("%18s %16s\n", "buffer(kbit)", "peak_Mbps");
    for (const double factor : {1.05, 1.5, 2.0, 4.0, 8.0, 1e6}) {
      const core::OptimalResult result = core::smooth_offline_optimal_buffered(
          t, 0.3, largest * factor, 0.3);
      std::printf("%18.0f %16.4f\n", largest * factor / 1e3,
                  result.peak_rate / 1e6);
    }
  }
  return 0;
}
