// Section 5.2's K = 0 observation: "we did observe some delay bound
// violations when the slack in the delay bound was deliberately made very
// small", while no violation ever occurs for K >= 1 (Theorem 1). This bench
// sweeps the slack for K = 0 and K = 1 and counts violations.
//
// With K = 0 the server may start sending picture i before S_i is known; the
// rate is chosen from an estimate, and when the estimate is low and the
// slack small, the deadline is missed.
#include "bench_util.h"

#include "core/theorem.h"

int main() {
  using namespace lsm;
  bench::banner("Section 5.2: delay-bound violations for K=0 vs K=1");

  for (const trace::Trace& t : trace::paper_sequences()) {
    std::printf("\n# %s\n", t.name().c_str());
    std::printf("%10s %14s %14s %16s\n", "slack(s)", "K=0:violations",
                "K=1:violations", "K=0:worst(ms)");
    for (const double slack : {0.005, 0.01, 0.02, 0.04, 0.08, 0.1333}) {
      int violations[2] = {0, 0};
      double worst_excess = 0.0;
      for (const int k : {0, 1}) {
        core::SmootherParams params = bench::paper_params(t);
        params.K = k;
        params.D = (k + 1) * params.tau + slack;
        const core::SmoothingResult result = core::smooth_basic(t, params);
        const core::TheoremReport report = core::check_theorem1(result, t);
        violations[k] = report.delay_violations;
        if (k == 0) worst_excess = std::max(0.0, report.worst_excess);
      }
      std::printf("%10.4f %14d %14d %16.2f\n", slack, violations[0],
                  violations[1], worst_excess * 1e3);
    }
  }
  std::printf("\nExpected shape: K=1 columns are all zero (Theorem 1); K=0 "
              "violations appear as the slack shrinks.\n");
  return 0;
}
