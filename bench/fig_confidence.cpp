// Robustness of the paper's conclusions: the 1994 evaluation used four
// ~10-second clips. Here each sequence's fitted statistical model
// (trace/model.h) generates an ensemble of fresh 20-second workloads, and
// the headline conclusions are re-checked on every member:
//
//   C1  relaxing D from 0.1 to 0.2 s buys a large max-rate reduction;
//   C2  relaxing D from 0.2 to 0.3 s buys little more;
//   C3  lookahead H = N beats H = 1 decisively on max rate;
//   C4  pushing H to 2N adds rate changes without improving max rate.
#include "bench_util.h"

#include <cmath>

#include "runtime/batch.h"
#include "trace/model.h"

namespace {

using namespace lsm;

struct Sample {
  double max_rate_d01 = 0.0;
  double max_rate_d02 = 0.0;
  double max_rate_d03 = 0.0;
  int changes_h_n = 0;
  int changes_h_2n = 0;
  double max_rate_h1 = 0.0;
  double max_rate_h_n = 0.0;
  double max_rate_h_2n = 0.0;
};

// The (D, H) design points each bootstrap workload is smoothed at. The
// H-sweep points reuse D = 0.2; kRunsPerWorkload jobs per workload go into
// one BatchSmoother batch, and the results come back in job order.
constexpr int kRunsPerWorkload = 4;  // (0.1,N) (0.2,N) (0.3,N) (0.2,1)
                                     // + (0.2,2N) appended below
constexpr int kJobsPerWorkload = kRunsPerWorkload + 1;

std::vector<runtime::BatchJob> make_jobs_for(const trace::Trace& t) {
  const int n = t.pattern().N();
  const double design[kRunsPerWorkload][2] = {
      {0.1, static_cast<double>(n)},
      {0.2, static_cast<double>(n)},
      {0.3, static_cast<double>(n)},
      {0.2, 1.0},
  };
  std::vector<runtime::BatchJob> jobs;
  jobs.reserve(kJobsPerWorkload);
  for (const auto& point : design) {
    core::SmootherParams params = bench::paper_params(t);
    params.D = point[0];
    params.H = static_cast<int>(point[1]);
    jobs.push_back(runtime::BatchJob{&t, params, core::Variant::kBasic});
  }
  core::SmootherParams params = bench::paper_params(t);
  params.H = 2 * n;
  jobs.push_back(runtime::BatchJob{&t, params, core::Variant::kBasic});
  return jobs;
}

Sample to_sample(const trace::Trace& t,
                 const core::SmoothingResult* results) {
  Sample sample;
  for (int r = 0; r < kJobsPerWorkload; ++r) {
    bench::require_sane(results[r], "confidence bootstrap run");
  }
  sample.max_rate_d01 = core::evaluate(results[0], t).max_rate;
  const core::SmoothnessMetrics at02 = core::evaluate(results[1], t);
  sample.max_rate_d02 = at02.max_rate;
  sample.changes_h_n = at02.rate_changes;
  sample.max_rate_d03 = core::evaluate(results[2], t).max_rate;
  sample.max_rate_h1 = core::evaluate(results[3], t).max_rate;
  sample.max_rate_h_n = at02.max_rate;
  const core::SmoothnessMetrics at2n = core::evaluate(results[4], t);
  sample.max_rate_h_2n = at2n.max_rate;
  sample.changes_h_2n = at2n.rate_changes;
  return sample;
}

struct MeanSd {
  double mean = 0.0;
  double sd = 0.0;
};

MeanSd summarize(const std::vector<double>& values) {
  MeanSd out;
  for (const double v : values) out.mean += v;
  out.mean /= static_cast<double>(values.size());
  for (const double v : values) {
    out.sd += (v - out.mean) * (v - out.mean);
  }
  out.sd = std::sqrt(out.sd / static_cast<double>(values.size()));
  return out;
}

}  // namespace

int main() {
  bench::banner(
      "Confidence sweep: paper conclusions over model-generated ensembles");

  constexpr int kSeeds = 8;
  constexpr int kPictures = 600;  // 20 seconds per workload

  runtime::BatchSmoother batch;
  for (const trace::Trace& source : trace::paper_sequences()) {
    const trace::TraceModel model = trace::TraceModel::fit(source);
    std::vector<double> gain_01_02, gain_02_03, gain_h1_hn;
    int c1 = 0, c2 = 0, c3 = 0, c4 = 0;
    // Generate every bootstrap workload first (the jobs hold pointers into
    // this vector), then smooth all seeds x design points in one batch.
    std::vector<trace::Trace> workloads;
    workloads.reserve(kSeeds);
    for (int seed = 1; seed <= kSeeds; ++seed) {
      workloads.push_back(
          model.generate(kPictures, static_cast<std::uint64_t>(seed)));
    }
    std::vector<runtime::BatchJob> jobs;
    jobs.reserve(static_cast<std::size_t>(kSeeds) * kJobsPerWorkload);
    for (const trace::Trace& workload : workloads) {
      const std::vector<runtime::BatchJob> per_workload =
          make_jobs_for(workload);
      jobs.insert(jobs.end(), per_workload.begin(), per_workload.end());
    }
    const std::vector<core::SmoothingResult> results = batch.run(jobs);
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const trace::Trace& workload =
          workloads[static_cast<std::size_t>(seed - 1)];
      const Sample sample =
          to_sample(workload,
                    &results[static_cast<std::size_t>(seed - 1) *
                             kJobsPerWorkload]);
      gain_01_02.push_back(sample.max_rate_d01 / sample.max_rate_d02 - 1.0);
      gain_02_03.push_back(sample.max_rate_d02 / sample.max_rate_d03 - 1.0);
      gain_h1_hn.push_back(sample.max_rate_h1 / sample.max_rate_h_n - 1.0);
      c1 += sample.max_rate_d01 > 1.15 * sample.max_rate_d02 ? 1 : 0;
      c2 += sample.max_rate_d02 < 1.15 * sample.max_rate_d03 ? 1 : 0;
      c3 += sample.max_rate_h1 > 1.15 * sample.max_rate_h_n ? 1 : 0;
      c4 += (sample.changes_h_2n >= sample.changes_h_n &&
             sample.max_rate_h_2n > 0.95 * sample.max_rate_h_n)
                ? 1
                : 0;
    }
    const MeanSd g1 = summarize(gain_01_02);
    const MeanSd g2 = summarize(gain_02_03);
    const MeanSd g3 = summarize(gain_h1_hn);
    std::printf("\n# %s (%d workloads x %d pictures)\n",
                source.name().c_str(), kSeeds, kPictures);
    std::printf("  max-rate gain D 0.1->0.2 : %5.1f%% +- %4.1f%%\n",
                100 * g1.mean, 100 * g1.sd);
    std::printf("  max-rate gain D 0.2->0.3 : %5.1f%% +- %4.1f%%\n",
                100 * g2.mean, 100 * g2.sd);
    std::printf("  max-rate gain H 1 -> N   : %5.1f%% +- %4.1f%%\n",
                100 * g3.mean, 100 * g3.sd);
    std::printf("  C1 big win 0.1->0.2      : %d/%d\n", c1, kSeeds);
    std::printf("  C2 little win 0.2->0.3   : %d/%d\n", c2, kSeeds);
    std::printf("  C3 lookahead pays to N   : %d/%d\n", c3, kSeeds);
    std::printf("  C4 2N adds only changes  : %d/%d\n", c4, kSeeds);
  }
  std::printf("\nExpected shape: C1-C4 hold for (nearly) every workload; the "
              "paper's parameter guidance is not an artifact of its four "
              "clips.\n");
  std::printf("\nsmoothing runtime counters (%d workers):\n%s\n",
              batch.thread_count(), batch.report_json().c_str());
  return 0;
}
