// Robustness of the paper's conclusions: the 1994 evaluation used four
// ~10-second clips. Here each sequence's fitted statistical model
// (trace/model.h) generates an ensemble of fresh 20-second workloads, and
// the headline conclusions are re-checked on every member:
//
//   C1  relaxing D from 0.1 to 0.2 s buys a large max-rate reduction;
//   C2  relaxing D from 0.2 to 0.3 s buys little more;
//   C3  lookahead H = N beats H = 1 decisively on max rate;
//   C4  pushing H to 2N adds rate changes without improving max rate.
#include "bench_util.h"

#include <cmath>

#include "trace/model.h"

namespace {

using namespace lsm;

struct Sample {
  double max_rate_d01 = 0.0;
  double max_rate_d02 = 0.0;
  double max_rate_d03 = 0.0;
  int changes_h_n = 0;
  int changes_h_2n = 0;
  double max_rate_h1 = 0.0;
  double max_rate_h_n = 0.0;
  double max_rate_h_2n = 0.0;
};

Sample measure(const trace::Trace& t) {
  Sample sample;
  auto run = [&t](double d, int h) {
    core::SmootherParams params = bench::paper_params(t);
    params.D = d;
    params.H = h;
    return core::evaluate(core::smooth_basic(t, params), t);
  };
  const int n = t.pattern().N();
  sample.max_rate_d01 = run(0.1, n).max_rate;
  const core::SmoothnessMetrics at02 = run(0.2, n);
  sample.max_rate_d02 = at02.max_rate;
  sample.changes_h_n = at02.rate_changes;
  sample.max_rate_d03 = run(0.3, n).max_rate;
  sample.max_rate_h1 = run(0.2, 1).max_rate;
  sample.max_rate_h_n = at02.max_rate;
  const core::SmoothnessMetrics at2n = run(0.2, 2 * n);
  sample.max_rate_h_2n = at2n.max_rate;
  sample.changes_h_2n = at2n.rate_changes;
  return sample;
}

struct MeanSd {
  double mean = 0.0;
  double sd = 0.0;
};

MeanSd summarize(const std::vector<double>& values) {
  MeanSd out;
  for (const double v : values) out.mean += v;
  out.mean /= static_cast<double>(values.size());
  for (const double v : values) {
    out.sd += (v - out.mean) * (v - out.mean);
  }
  out.sd = std::sqrt(out.sd / static_cast<double>(values.size()));
  return out;
}

}  // namespace

int main() {
  bench::banner(
      "Confidence sweep: paper conclusions over model-generated ensembles");

  constexpr int kSeeds = 8;
  constexpr int kPictures = 600;  // 20 seconds per workload

  for (const trace::Trace& source : trace::paper_sequences()) {
    const trace::TraceModel model = trace::TraceModel::fit(source);
    std::vector<double> gain_01_02, gain_02_03, gain_h1_hn;
    int c1 = 0, c2 = 0, c3 = 0, c4 = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const trace::Trace workload =
          model.generate(kPictures, static_cast<std::uint64_t>(seed));
      const Sample sample = measure(workload);
      gain_01_02.push_back(sample.max_rate_d01 / sample.max_rate_d02 - 1.0);
      gain_02_03.push_back(sample.max_rate_d02 / sample.max_rate_d03 - 1.0);
      gain_h1_hn.push_back(sample.max_rate_h1 / sample.max_rate_h_n - 1.0);
      c1 += sample.max_rate_d01 > 1.15 * sample.max_rate_d02 ? 1 : 0;
      c2 += sample.max_rate_d02 < 1.15 * sample.max_rate_d03 ? 1 : 0;
      c3 += sample.max_rate_h1 > 1.15 * sample.max_rate_h_n ? 1 : 0;
      c4 += (sample.changes_h_2n >= sample.changes_h_n &&
             sample.max_rate_h_2n > 0.95 * sample.max_rate_h_n)
                ? 1
                : 0;
    }
    const MeanSd g1 = summarize(gain_01_02);
    const MeanSd g2 = summarize(gain_02_03);
    const MeanSd g3 = summarize(gain_h1_hn);
    std::printf("\n# %s (%d workloads x %d pictures)\n",
                source.name().c_str(), kSeeds, kPictures);
    std::printf("  max-rate gain D 0.1->0.2 : %5.1f%% +- %4.1f%%\n",
                100 * g1.mean, 100 * g1.sd);
    std::printf("  max-rate gain D 0.2->0.3 : %5.1f%% +- %4.1f%%\n",
                100 * g2.mean, 100 * g2.sd);
    std::printf("  max-rate gain H 1 -> N   : %5.1f%% +- %4.1f%%\n",
                100 * g3.mean, 100 * g3.sd);
    std::printf("  C1 big win 0.1->0.2      : %d/%d\n", c1, kSeeds);
    std::printf("  C2 little win 0.2->0.3   : %d/%d\n", c2, kSeeds);
    std::printf("  C3 lookahead pays to N   : %d/%d\n", c3, kSeeds);
    std::printf("  C4 2N adds only changes  : %d/%d\n", c4, kSeeds);
  }
  std::printf("\nExpected shape: C1-C4 hold for (nearly) every workload; the "
              "paper's parameter guidance is not an artifact of its four "
              "clips.\n");
  return 0;
}
