// Figure 6: the four smoothness measures (area difference, number of rate
// changes, maximum rate, standard deviation of rate) as a function of the
// delay bound D, for all four sequences (K = 1, H = N).
//
// Paper findings to reproduce:
//   * every measure improves (falls) as D is relaxed;
//   * Backyard is the easiest sequence to smooth;
//   * the 640x480 sequences level off at a max smoothed rate near 3 Mbps,
//     Backyard near 1.5 Mbps;
//   * the max-rate-vs-D curve is the design tradeoff lossless smoothing
//     buys.
#include "bench_util.h"

int main() {
  using namespace lsm;
  bench::banner("Figure 6: measures vs delay bound D (K=1, H=N)");

  const std::vector<double> bounds = {0.07, 0.0833, 0.1,    0.1167, 0.1333,
                                      0.15, 0.1667, 0.2,    0.2333, 0.2667,
                                      0.3};
  for (const trace::Trace& t : trace::paper_sequences()) {
    std::printf("\n# %s\n", t.name().c_str());
    lsm::bench::print_measures_header("D(s)");
    for (const double d : bounds) {
      core::SmootherParams params = bench::paper_params(t);
      params.D = d;
      const core::SmoothingResult result = core::smooth_basic(t, params);
      lsm::bench::print_measures_row(d, core::evaluate(result, t));
    }
  }
  return 0;
}
