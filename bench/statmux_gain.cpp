// The motivating claim (Section 1 and 3.2, refs [10, 11]): reducing the
// rate variance of VBR video sources improves the statistical-multiplexing
// gain of a finite-buffer packet switch. The four paper sequences (plus
// phase-shifted repeats for larger source counts) feed one cell multiplexer;
// we report loss ratio versus utilization and versus source count, raw vs
// smoothed, and the token-bucket burstiness curves.
#include "bench_util.h"

#include <algorithm>

#include "net/mux.h"
#include "net/packetize.h"
#include "net/token_bucket.h"
#include "net/wfq.h"
#include "runtime/batch.h"

namespace {

using namespace lsm;

/// Catalog of the four paper sequences plus their smoothed schedules, the
/// latter produced by one parallel batch run (each statmux experiment needs
/// every sequence smoothed; sources repeat the catalog cyclically).
struct Catalog {
  std::vector<trace::Trace> traces;
  std::vector<core::SmoothingResult> smoothed;
};

Catalog make_catalog(runtime::BatchSmoother& batch) {
  Catalog catalog;
  catalog.traces = trace::paper_sequences();
  catalog.smoothed =
      batch.run(runtime::make_jobs(catalog.traces, bench::paper_params));
  for (const core::SmoothingResult& result : catalog.smoothed) {
    bench::require_sane(result, "statmux catalog smoothing run");
  }
  return catalog;
}

std::vector<std::vector<net::Cell>> make_sources(const Catalog& catalog,
                                                 int count, bool smoothed,
                                                 double& total_mean) {
  std::vector<std::vector<net::Cell>> sources;
  total_mean = 0.0;
  for (int s = 0; s < count; ++s) {
    const std::size_t slot =
        static_cast<std::size_t>(s) % catalog.traces.size();
    std::vector<net::Cell> cells =
        smoothed ? net::packetize(catalog.smoothed[slot], s)
                 : net::packetize_unsmoothed(catalog.traces[slot], s);
    net::shift_cells(cells, 0.0531 * s);  // desynchronize GOP phases
    sources.push_back(std::move(cells));
    total_mean += catalog.traces[slot].mean_rate();
  }
  return sources;
}

}  // namespace

int main() {
  bench::banner("Motivation: statistical multiplexing gain (refs [10, 11])");

  runtime::BatchSmoother batch;
  const Catalog catalog = make_catalog(batch);

  std::printf("\ncell-loss ratio vs utilization "
              "(8 sources, buffer 300 cells):\n");
  std::printf("%12s %14s %14s\n", "utilization", "raw", "smoothed");
  {
    double mean = 0.0;
    const auto raw = make_sources(catalog, 8, false, mean);
    const auto smooth = make_sources(catalog, 8, true, mean);
    for (const double u : {0.55, 0.65, 0.75, 0.85, 0.95}) {
      const net::MuxConfig config{mean / u, 300};
      const double raw_loss = net::simulate_cell_mux(raw, config).loss_ratio;
      const double smooth_loss =
          net::simulate_cell_mux(smooth, config).loss_ratio;
      bench::require_finite(raw_loss, "raw loss ratio");
      bench::require_finite(smooth_loss, "smoothed loss ratio");
      std::printf("%12.2f %14.6f %14.6f\n", u, raw_loss, smooth_loss);
    }
  }

  std::printf("\ncell-loss ratio vs source count "
              "(utilization 0.8, buffer 300 cells):\n");
  std::printf("%12s %14s %14s\n", "sources", "raw", "smoothed");
  for (const int count : {2, 4, 8, 12}) {
    double mean = 0.0;
    const auto raw = make_sources(catalog, count, false, mean);
    const auto smooth = make_sources(catalog, count, true, mean);
    const net::MuxConfig config{mean / 0.8, 300};
    std::printf("%12d %14.6f %14.6f\n", count,
                net::simulate_cell_mux(raw, config).loss_ratio,
                net::simulate_cell_mux(smooth, config).loss_ratio);
  }

  std::printf("\nisolation: shared FIFO vs per-source WFQ when one source "
              "floods\n(3 smoothed sequences + 1 flooding at 2x its share; "
              "drops by source):\n");
  {
    // Each conforming source reserves its SMOOTHED PEAK (what it would
    // declare at admission); the flooder reserves its nominal mean but
    // sends double. Weights encode the reservations in 100 kb/s units.
    std::vector<std::vector<net::Cell>> cells;
    std::vector<int> weights;
    double reserved_total = 0.0;
    for (int s = 0; s < 3; ++s) {
      const core::SmoothingResult& smoothed =
          catalog.smoothed[static_cast<std::size_t>(s)];
      auto stream = net::packetize(smoothed, s);
      net::shift_cells(stream, 0.0531 * s);
      cells.push_back(std::move(stream));
      const double reservation = smoothed.schedule().max_rate();
      weights.push_back(
          std::max(1, static_cast<int>(reservation / 1e5)));
      reserved_total += reservation;
    }
    {
      const trace::Trace& t = catalog.traces[3];
      std::vector<net::Cell> flood = net::packetize_unsmoothed(t, 3);
      std::vector<net::Cell> extra = net::packetize_unsmoothed(t, 3);
      net::shift_cells(extra, 0.009);
      flood.insert(flood.end(), extra.begin(), extra.end());
      std::sort(flood.begin(), flood.end(),
                [](const net::Cell& a, const net::Cell& b) {
                  return a.time < b.time;
                });
      cells.push_back(std::move(flood));
      weights.push_back(std::max(1, static_cast<int>(t.mean_rate() / 1e5)));
      reserved_total += t.mean_rate();
    }
    const double capacity = reserved_total * 1.05;
    const net::MuxResult fifo =
        net::simulate_cell_mux(cells, net::MuxConfig{capacity, 240});
    net::WfqConfig wfq_config;
    wfq_config.service_rate_bps = capacity;
    wfq_config.weights = weights;
    wfq_config.buffer_cells_per_queue = 60;
    const net::WfqResult wfq = net::simulate_wfq(cells, wfq_config);
    std::printf("%10s %14s %14s\n", "source", "FIFO drops", "WFQ drops");
    for (std::size_t s = 0; s < 4; ++s) {
      std::printf("%10zu %14lld %14lld%s\n", s,
                  static_cast<long long>(fifo.dropped_by_source[s]),
                  static_cast<long long>(wfq.dropped_by_source[s]),
                  s == 3 ? "   <- flooder" : "");
    }
  }

  std::printf("\ntoken-bucket burstiness sigma(rho) for Driving1 (kbits):\n");
  std::printf("%14s %12s %12s\n", "rho/mean", "raw", "smoothed");
  {
    const trace::Trace& t = catalog.traces[0];  // Driving1
    std::vector<core::RateSegment> raw_segments;
    for (int i = 1; i <= t.picture_count(); ++i) {
      raw_segments.push_back(core::RateSegment{
          (i - 1) * t.tau(), i * t.tau(),
          static_cast<double>(t.size_of(i)) / t.tau()});
    }
    const core::RateSchedule raw(std::move(raw_segments));
    const core::RateSchedule smooth = catalog.smoothed[0].schedule();
    for (const double factor : {1.1, 1.2, 1.4, 1.7, 2.0, 2.5}) {
      const double rho = t.mean_rate() * factor;
      std::printf("%14.1f %12.1f %12.1f\n", factor,
                  net::min_bucket_depth(raw, rho) / 1e3,
                  net::min_bucket_depth(smooth, rho) / 1e3);
    }
  }

  std::printf("\nsmoothing runtime counters (%d workers):\n%s\n",
              batch.thread_count(), batch.report_json().c_str());
  return 0;
}
