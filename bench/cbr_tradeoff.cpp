// CBR-with-startup-delay vs lossless smoothing: the two classical service
// models for stored/live video. For each sequence:
//   * the (rate, startup delay) frontier of CBR transmission;
//   * where the paper's operating point (K=1, H=N, D=0.2) sits against it.
// CBR at equal delay has a lower PEAK (it exploits unlimited client
// buffering and whole-trace knowledge) but reserves that rate for the whole
// session and needs the startup delay; the smoother transmits at scene
// rate, needs ~D of buffer at each end, and is causal.
#include "bench_util.h"

#include "core/cbr.h"
#include "core/optimal.h"

int main() {
  using namespace lsm;
  bench::banner("CBR startup-delay frontier vs lossless smoothing");

  for (const trace::Trace& t : trace::paper_sequences()) {
    std::printf("\n# %s (mean %.2f Mbps)\n", t.name().c_str(),
                t.mean_rate() / 1e6);
    std::printf("%12s %14s %18s\n", "delay(s)", "cbr_Mbps",
                "cbr_rate/mean");
    for (const double d : {0.1, 0.1333, 0.2, 0.3, 0.5, 1.0, 2.0}) {
      const core::Rate rate = core::min_cbr_rate(t, d);
      std::printf("%12.3f %14.4f %18.2f\n", d, rate / 1e6,
                  rate / t.mean_rate());
    }
    const core::SmoothingResult smoothed =
        core::smooth_basic(t, bench::paper_params(t));
    const double peak = smoothed.schedule().max_rate();
    std::printf("  smoothing @ D=0.2: peak %.4f Mbps (%.2fx mean), "
                "CBR at same delay: %.4f Mbps reserved for the session\n",
                peak / 1e6, peak / t.mean_rate(),
                core::min_cbr_rate(t, 0.2) / 1e6);
  }
  std::printf("\nExpected shape: the CBR frontier falls steeply with delay; "
              "at D=0.2 the CBR reservation exceeds the stream's mean by "
              "15-40%%, capacity a multiplexed VBR service recovers.\n");
  return 0;
}
