// Contrast with the a-priori-knowledge baseline (Ott et al. [8], modeled as
// the taut-string offline-optimal schedule, see core/optimal.h): how much
// peak rate and variability does the paper's causal algorithm give up by
// knowing only K = 1 pictures ahead?
//
// Expected shape: the causal algorithm's peak is close to (and never below)
// the offline optimum, with the gap shrinking as D grows — the paper's
// argument that a priori knowledge is unnecessary in practice.
#include "bench_util.h"

#include "core/optimal.h"

int main() {
  using namespace lsm;
  bench::banner("Ablation: basic algorithm vs offline-optimal (taut string)");

  for (const trace::Trace& t : trace::paper_sequences()) {
    std::printf("\n# %s (mean %.2f Mbps)\n", t.name().c_str(),
                t.mean_rate() / 1e6);
    std::printf("%8s %16s %16s %10s %16s\n", "D(s)", "basic_peak_Mbps",
                "optimal_peak", "ratio", "optimal_maxdelay");
    for (const double d : {0.07, 0.1, 0.1333, 0.2, 0.3}) {
      core::SmootherParams params = bench::paper_params(t);
      params.D = d;
      const core::SmoothingResult basic = core::smooth_basic(t, params);
      const core::OptimalResult optimal = core::smooth_offline_optimal(t, d);
      const double basic_peak = basic.schedule().max_rate();
      std::printf("%8.4f %16.4f %16.4f %10.3f %16.4f\n", d, basic_peak / 1e6,
                  optimal.peak_rate / 1e6, basic_peak / optimal.peak_rate,
                  optimal.max_delay());
    }
  }
  return 0;
}
