// Figure 8: the four smoothness measures as a function of K, the number of
// pictures with known sizes (D = 0.1333 + (K+1)/30 so the slack is constant,
// H = N), all four sequences.
//
// Paper finding to reproduce: smoothness improves only marginally ("barely
// noticeable") as K grows, while delay grows linearly with K — so K = 1
// should be used.
#include "bench_util.h"

int main() {
  using namespace lsm;
  bench::banner(
      "Figure 8: measures vs K (D=0.1333+(K+1)/30, H=N)");

  for (const trace::Trace& t : trace::paper_sequences()) {
    std::printf("\n# %s\n", t.name().c_str());
    lsm::bench::print_measures_header("K");
    for (int k = 1; k <= 12; ++k) {
      core::SmootherParams params = bench::paper_params(t);
      params.K = k;
      params.D = 0.1333 + (k + 1) / 30.0;
      const core::SmoothingResult result = core::smooth_basic(t, params);
      lsm::bench::print_measures_row(k, core::evaluate(result, t));
    }
  }
  return 0;
}
