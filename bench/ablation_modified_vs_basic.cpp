// Section 4.4's modified algorithm (Eq. 15): on normal exit the rate is set
// to the lookahead moving average sum/(N tau) instead of keeping the
// previous rate. The paper reports the modification produces "numerous small
// rate changes" but tracks ideal smoothing more closely — in particular a
// smaller area difference. This bench quantifies both claims across the
// sequences and a sweep of D.
#include "bench_util.h"

int main() {
  using namespace lsm;
  bench::banner("Ablation: basic vs modified (Eq. 15) algorithm (K=1, H=N)");

  for (const trace::Trace& t : trace::paper_sequences()) {
    std::printf("\n# %s\n", t.name().c_str());
    std::printf("%8s | %12s %12s %10s | %12s %12s %10s\n", "D(s)",
                "basic:area", "basic:chg", "chg_size", "mod:area", "mod:chg",
                "chg_size");
    for (const double d : {0.1, 0.1333, 0.1667, 0.2, 0.25, 0.3}) {
      core::SmootherParams params = bench::paper_params(t);
      params.D = d;
      const core::SmoothingResult basic_run = core::smooth_basic(t, params);
      const core::SmoothingResult modified_run =
          core::smooth_modified(t, params);
      const core::SmoothnessMetrics basic = core::evaluate(basic_run, t);
      const core::SmoothnessMetrics modified =
          core::evaluate(modified_run, t);
      const core::RateChangeProfile basic_profile =
          core::rate_change_profile(basic_run);
      const core::RateChangeProfile modified_profile =
          core::rate_change_profile(modified_run);
      std::printf("%8.4f | %12.4f %12d %9.1f%% | %12.4f %12d %9.1f%%\n", d,
                  basic.area_difference, basic.rate_changes,
                  100.0 * basic_profile.mean_relative,
                  modified.area_difference, modified.rate_changes,
                  100.0 * modified_profile.mean_relative);
    }
  }
  std::printf("\nExpected shape: mod:area < basic:area while mod:chg >> "
              "basic:chg AND each modified change is much smaller "
              "(chg_size, mean |delta r| relative to the mean rate) — the "
              "paper's 'numerous small rate changes'.\n");
  return 0;
}
