// Statmux scale sweep: resident-stream counts from 1k up (default cap
// 100k, override with argv[1]), each run measuring steady-state epoch
// throughput of the sharded StatmuxService — epochs/s, scheduled
// pictures/s, the dirty-set size — and the heap traffic of a steady
// epoch. Arrival cadences are staggered so the dirty set stays ~1k
// streams at every resident count: flat pictures/s and a flat
// allocation count across the sweep demonstrate that per-epoch cost
// scales with the dirty set, not with residency.
#include "bench_util.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "net/statmux.h"
#include "obs/metrics.h"

namespace {

// Global allocation tally: every operator new in the process bumps it, so
// the steady-epoch window measures the service's true heap traffic.
std::atomic<std::uint64_t> g_alloc_ops{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

}  // namespace

void* operator new(std::size_t size) {
  g_alloc_ops.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

void* operator new[](std::size_t size) { return operator new(size); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace lsm;

struct SweepRow {
  int streams = 0;
  double epochs_per_s = 0.0;
  double pictures_per_s = 0.0;
  double dirty_per_epoch = 0.0;
  double allocs_per_epoch = 0.0;
  double alloc_bytes_per_epoch = 0.0;
  /// Load-skew axes over the measured window, both max/mean across shards
  /// (1.0 = perfectly balanced): resident stream population, and the wall
  /// time each shard spent running its epochs.
  double count_imbalance = 1.0;
  double busy_imbalance = 1.0;
};

SweepRow run_point(int streams, int shards) {
  const int period = streams / 1024 < 1 ? 1 : streams / 1024;

  net::StatmuxConfig config;
  config.shards = shards;
  config.ring_capacity = static_cast<std::size_t>(streams / shards) * 2 + 64;
  config.max_streams_per_shard = streams;
  config.link_rate_bps = 1e15;
  net::StatmuxService service(config);

  for (int id = 1; id <= streams; ++id) {
    net::StreamSpec spec;
    spec.id = static_cast<std::uint32_t>(id);
    spec.gop_n = 9;
    spec.gop_m = 3;
    spec.params.tau = 1.0 / 30.0;
    spec.params.D = 0.2;
    spec.params.H = spec.gop_n;
    spec.feed_seed = 0x5ca1e000ULL + static_cast<std::uint64_t>(id);
    spec.picture_count = 0;  // endless: residency constant while measured
    spec.period_ticks = period;
    spec.phase_ticks = id % period;
    bench::require(service.admit(spec), "mux_scale admission");
  }
  // Warm to true steady state: every stream must push past the smoother's
  // bounded-window trim threshold (~84 pictures) so its retained buffers
  // reach their high-water capacity, plus one full level-0 lap of the
  // timing wheel (256 ticks) so every calendar bucket has grown to its
  // peak population and stopped reallocating.
  service.run_epochs(period * 110 + 1 + 256);
  bench::require(service.active_streams() == streams,
                 "mux_scale residency after warmup");

  const int measured = 2 * period < 64 ? 64 : 2 * period;
  std::vector<double> busy_before(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    busy_before[static_cast<std::size_t>(s)] = service.shard_busy_seconds(s);
  }
  const std::int64_t pictures_before = service.stats().pictures;
  const std::uint64_t ops_before =
      g_alloc_ops.load(std::memory_order_relaxed);
  const std::uint64_t bytes_before =
      g_alloc_bytes.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  service.run_epochs(measured);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  const std::uint64_t ops =
      g_alloc_ops.load(std::memory_order_relaxed) - ops_before;
  const std::uint64_t bytes =
      g_alloc_bytes.load(std::memory_order_relaxed) - bytes_before;
  const std::int64_t pictures = service.stats().pictures - pictures_before;

  bench::require(pictures > 0, "mux_scale scheduled pictures");
  bench::require_finite(elapsed.count(), "mux_scale elapsed");
  bench::require(elapsed.count() > 0.0, "mux_scale elapsed positive");

  SweepRow row;
  row.streams = streams;
  row.epochs_per_s = measured / elapsed.count();
  row.pictures_per_s = static_cast<double>(pictures) / elapsed.count();
  row.dirty_per_epoch =
      static_cast<double>(pictures) / static_cast<double>(measured);
  row.allocs_per_epoch =
      static_cast<double>(ops) / static_cast<double>(measured);
  row.alloc_bytes_per_epoch =
      static_cast<double>(bytes) / static_cast<double>(measured);

  // Load-skew axes: hash-sharding should spread both the resident
  // population and the per-shard epoch wall time close to evenly; a
  // max/mean drifting from 1.0 means one shard carries the sweep point.
  double max_count = 0.0, sum_count = 0.0;
  double max_busy = 0.0, sum_busy = 0.0;
  for (int s = 0; s < shards; ++s) {
    const double count = static_cast<double>(service.shard_stream_count(s));
    const double busy = service.shard_busy_seconds(s) -
                        busy_before[static_cast<std::size_t>(s)];
    max_count = count > max_count ? count : max_count;
    max_busy = busy > max_busy ? busy : max_busy;
    sum_count += count;
    sum_busy += busy;
  }
  const double mean_count = sum_count / shards;
  const double mean_busy = sum_busy / shards;
  row.count_imbalance = mean_count > 0.0 ? max_count / mean_count : 1.0;
  row.busy_imbalance = mean_busy > 0.0 ? max_busy / mean_busy : 1.0;
  obs::publish_shard_occupancy(obs::Registry::global(), "mux_scale",
                               max_count, mean_count);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const int max_streams = argc > 1 ? std::atoi(argv[1]) : 100000;
  bench::require(max_streams >= 1000, "mux_scale max streams >= 1000");
  bench::banner("statmux scale sweep: steady-state epoch cost vs residency");
  std::printf("%10s %12s %14s %12s %14s %16s %12s %12s\n", "streams",
              "epochs_per_s", "pictures_per_s", "dirty_epoch", "allocs_epoch",
              "alloc_KiB_epoch", "count_imbal", "busy_imbal");

  SweepRow first;
  SweepRow last;
  for (int streams = 1000; streams <= max_streams; streams *= 10) {
    const int shards = streams < 10000 ? 4 : 8;
    const SweepRow row = run_point(streams, shards);
    if (streams == 1000) first = row;
    last = row;
    std::printf("%10d %12.1f %14.1f %12.1f %14.1f %16.2f %12.3f %12.3f\n",
                row.streams, row.epochs_per_s, row.pictures_per_s,
                row.dirty_per_epoch, row.allocs_per_epoch,
                row.alloc_bytes_per_epoch / 1024.0, row.count_imbalance,
                row.busy_imbalance);
  }

  // The scaling claim: heap traffic of a steady epoch must not grow with
  // residency (it is a small constant per shard from the pool's task
  // plumbing) — if it does, some per-stream state is being reallocated.
  bench::require(
      last.allocs_per_epoch <= first.allocs_per_epoch * 4.0 + 512.0,
      "steady-state allocations scale with residency");

  std::printf("# metrics: %s\n",
              obs::Registry::global().to_json().c_str());
  return 0;
}
