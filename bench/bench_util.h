// Shared helpers for the figure/table benches: every bench regenerates one
// table or figure of the paper's evaluation section (see DESIGN.md,
// experiment index) and prints its rows to stdout.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/smoother.h"
#include "trace/sequences.h"

namespace lsm::bench {

/// Exits with a failing status when `ok` is false. The CI smoke step runs
/// every bench and treats a nonzero exit as failure, so a bench that
/// computes garbage must call these instead of printing it and returning 0.
inline void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "bench sanity check failed: %s\n", what);
    std::exit(EXIT_FAILURE);
  }
}

/// A finite, non-NaN number (loss ratios, rates, gains, ...).
inline void require_finite(double value, const char* what) {
  require(std::isfinite(value), what);
}

/// A smoothing run is sane iff it scheduled at least one picture and every
/// send carries finite times and a positive finite rate.
inline void require_sane(const core::SmoothingResult& result,
                         const char* what) {
  require(!result.sends.empty(), what);
  for (const core::PictureSend& send : result.sends) {
    require(std::isfinite(send.start) && std::isfinite(send.depart) &&
                std::isfinite(send.delay) && std::isfinite(send.rate) &&
                send.rate > 0.0,
            what);
  }
}

/// The paper's standard parameter set for a sequence: K = 1, H = N, D = 0.2.
inline core::SmootherParams paper_params(const trace::Trace& trace) {
  core::SmootherParams params;
  params.K = 1;
  params.H = trace.pattern().N();
  params.D = 0.2;
  params.tau = trace.tau();
  return params;
}

/// Prints one row of the four smoothness measures.
inline void print_measures_header(const char* x_label) {
  std::printf("%10s %12s %12s %14s %14s\n", x_label, "area_diff",
              "rate_changes", "max_rate_Mbps", "sd_rate_Mbps");
}

inline void print_measures_row(double x, const core::SmoothnessMetrics& m) {
  std::printf("%10.4f %12.4f %12d %14.4f %14.4f\n", x, m.area_difference,
              m.rate_changes, m.max_rate / 1e6, m.rate_stddev / 1e6);
}

/// Banner naming the figure being regenerated.
inline void banner(const std::string& title) {
  const char* rule =
      "==============================================================";
  std::printf("%s\n%s\n%s\n", rule, title.c_str(), rule);
}

}  // namespace lsm::bench
