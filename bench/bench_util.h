// Shared helpers for the figure/table benches: every bench regenerates one
// table or figure of the paper's evaluation section (see DESIGN.md,
// experiment index) and prints its rows to stdout.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/smoother.h"
#include "trace/sequences.h"

namespace lsm::bench {

/// The paper's standard parameter set for a sequence: K = 1, H = N, D = 0.2.
inline core::SmootherParams paper_params(const trace::Trace& trace) {
  core::SmootherParams params;
  params.K = 1;
  params.H = trace.pattern().N();
  params.D = 0.2;
  params.tau = trace.tau();
  return params;
}

/// Prints one row of the four smoothness measures.
inline void print_measures_header(const char* x_label) {
  std::printf("%10s %12s %12s %14s %14s\n", x_label, "area_diff",
              "rate_changes", "max_rate_Mbps", "sd_rate_Mbps");
}

inline void print_measures_row(double x, const core::SmoothnessMetrics& m) {
  std::printf("%10.4f %12.4f %12d %14.4f %14.4f\n", x, m.area_difference,
              m.rate_changes, m.max_rate / 1e6, m.rate_stddev / 1e6);
}

/// Banner naming the figure being regenerated.
inline void banner(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace lsm::bench
