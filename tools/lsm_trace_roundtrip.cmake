# ctest script: lsm_trace record -> summary -> chrome must all succeed and
# the chrome JSON must be non-trivial.
set(bin "${WORK_DIR}/roundtrip.bin")
set(json "${WORK_DIR}/roundtrip.json")

execute_process(COMMAND ${LSM_TRACE} record ${bin} all
                RESULT_VARIABLE status OUTPUT_VARIABLE record_out)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "lsm_trace record failed: ${status}")
endif()
if(NOT record_out MATCHES "# sketch: ([^\n]+)")
  message(FATAL_ERROR "record missing the sketch line: ${record_out}")
endif()
set(live_sketch "${CMAKE_MATCH_1}")

execute_process(COMMAND ${LSM_TRACE} summary ${bin}
                RESULT_VARIABLE status OUTPUT_VARIABLE summary)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "lsm_trace summary failed: ${status}")
endif()
if(NOT summary MATCHES "picture_scheduled")
  message(FATAL_ERROR "summary missing picture_scheduled: ${summary}")
endif()

execute_process(COMMAND ${LSM_TRACE} chrome ${bin} ${json}
                RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "lsm_trace chrome failed: ${status}")
endif()
file(READ ${json} chrome_json)
string(LENGTH "${chrome_json}" chrome_length)
if(chrome_length LESS 100 OR NOT chrome_json MATCHES "traceEvents")
  message(FATAL_ERROR "chrome export looks empty (${chrome_length} bytes)")
endif()

# The offline quantiles replay must rebuild the live sketch BIT-EXACTLY
# from the recorded picture_scheduled events: same geometry, same
# observation multiset, byte-identical JSON.
execute_process(COMMAND ${LSM_TRACE} quantiles ${bin}
                RESULT_VARIABLE status OUTPUT_VARIABLE quantiles_out)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "lsm_trace quantiles failed: ${status}")
endif()
if(NOT quantiles_out MATCHES "# sketch: ([^\n]+)")
  message(FATAL_ERROR "quantiles missing the sketch line: ${quantiles_out}")
endif()
set(replayed_sketch "${CMAKE_MATCH_1}")
if(NOT live_sketch STREQUAL replayed_sketch)
  message(FATAL_ERROR "offline sketch diverged from the live one:\n"
                      "  live:     ${live_sketch}\n"
                      "  replayed: ${replayed_sketch}")
endif()
