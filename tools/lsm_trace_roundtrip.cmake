# ctest script: lsm_trace record -> summary -> chrome must all succeed and
# the chrome JSON must be non-trivial.
set(bin "${WORK_DIR}/roundtrip.bin")
set(json "${WORK_DIR}/roundtrip.json")

execute_process(COMMAND ${LSM_TRACE} record ${bin} all
                RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "lsm_trace record failed: ${status}")
endif()

execute_process(COMMAND ${LSM_TRACE} summary ${bin}
                RESULT_VARIABLE status OUTPUT_VARIABLE summary)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "lsm_trace summary failed: ${status}")
endif()
if(NOT summary MATCHES "picture_scheduled")
  message(FATAL_ERROR "summary missing picture_scheduled: ${summary}")
endif()

execute_process(COMMAND ${LSM_TRACE} chrome ${bin} ${json}
                RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "lsm_trace chrome failed: ${status}")
endif()
file(READ ${json} chrome_json)
string(LENGTH "${chrome_json}" chrome_length)
if(chrome_length LESS 100 OR NOT chrome_json MATCHES "traceEvents")
  message(FATAL_ERROR "chrome export looks empty (${chrome_length} bytes)")
endif()
