// lsm_top: live-ish terminal view of the statmux health plane.
//
//   lsm_top replay <run.log>   tail a recorded run: every `# metrics:` and
//                              `# health:` line in the file is parsed
//                              (obs/json_parse.h) and the LAST snapshot is
//                              rendered — per-shard quantile tables, trend
//                              sparklines over the epoch-aligned series,
//                              and the active SLO burn. `# metrics:` lines
//                              are additionally checked for staleness:
//                              snapshot_seq must be strictly increasing
//                              and time_s nondecreasing, so a scraper
//                              stuck on a cached snapshot is called out
//                              instead of silently re-rendered.
//   lsm_top demo [epochs]      run a built-in deterministic admit/depart
//                              churn against a sharded StatmuxService,
//                              print one `# health:` line per 100 epochs
//                              (the stream `replay` consumes), and render
//                              the final dashboard.
//
// Rendering is plain stdout — no curses, no ANSI cursor games — so the
// output is pipeable, diffable, and testable under ctest.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/statmux.h"
#include "obs/json_parse.h"
#include "sim/rng.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: lsm_top replay <run.log>\n"
               "       lsm_top demo [epochs]\n");
  return 2;
}

/// Eight-level unicode sparkline over the per-window means of a series
/// object ({"windows": [{"count", "sum", ...}]}, sums fixed-point by
/// "scale"). Empty windows render as a space.
std::string sparkline(const lsm::obs::JsonValue& series) {
  static const char* kLevels[8] = {"\xe2\x96\x81", "\xe2\x96\x82",
                                   "\xe2\x96\x83", "\xe2\x96\x84",
                                   "\xe2\x96\x85", "\xe2\x96\x86",
                                   "\xe2\x96\x87", "\xe2\x96\x88"};
  const lsm::obs::JsonValue* windows = series.find("windows");
  const double scale = series.number_or("scale", 1.0);
  if (windows == nullptr || !windows->is_array()) return "";
  std::vector<double> means;
  double lo = 0.0;
  double hi = 0.0;
  bool seeded = false;
  for (const lsm::obs::JsonValue& window : windows->items) {
    const double count = window.number_or("count", 0.0);
    if (count <= 0.0) {
      means.push_back(-1.0);  // gap
      continue;
    }
    const double mean = window.number_or("sum", 0.0) / scale / count;
    if (!seeded) {
      lo = hi = mean;
      seeded = true;
    }
    lo = std::min(lo, mean);
    hi = std::max(hi, mean);
    means.push_back(mean);
  }
  std::string out;
  for (const double mean : means) {
    if (mean < 0.0) {
      out += ' ';
      continue;
    }
    const double span = hi - lo;
    const int level =
        span > 0.0
            ? std::min(7, static_cast<int>((mean - lo) / span * 8.0))
            : 0;
    out += kLevels[level];
  }
  return out;
}

void print_sketch_row(const char* label, const lsm::obs::JsonValue* sketch) {
  if (sketch == nullptr || !sketch->is_object()) return;
  std::printf("  %-22s %10.0f %8.0f %12.6f %12.6f %12.6f %12.6f\n", label,
              sketch->number_or("count", 0.0),
              sketch->number_or("clamped", 0.0),
              sketch->number_or("p50", 0.0), sketch->number_or("p99", 0.0),
              sketch->number_or("p999", 0.0), sketch->number_or("max", 0.0));
}

void print_series_row(const char* label, const lsm::obs::JsonValue* series) {
  if (series == nullptr || !series->is_object()) return;
  double newest = 0.0;
  const lsm::obs::JsonValue* windows = series->find("windows");
  if (windows != nullptr && !windows->items.empty()) {
    const lsm::obs::JsonValue& last = windows->items.back();
    const double count = last.number_or("count", 0.0);
    if (count > 0.0) {
      newest = last.number_or("sum", 0.0) /
               series->number_or("scale", 1.0) / count;
    }
  }
  std::printf("  %-22s %12.2f  %s\n", label, newest,
              sparkline(*series).c_str());
}

/// Renders one health snapshot (the health_json() shape, canonical or
/// per-shard) as the dashboard.
void render_health(const lsm::obs::JsonValue& health) {
  std::printf("=== statmux health @ tick %.0f ===\n",
              health.number_or("tick", 0.0));

  const lsm::obs::JsonValue* slo = health.find("slo");
  if (slo != nullptr && slo->is_object()) {
    const lsm::obs::JsonValue* name = slo->find("name");
    const lsm::obs::JsonValue* breaching = slo->find("breaching");
    std::printf(
        "slo %s  objective %.4f  burn fast %.3f / slow %.3f  %s"
        "  (breaches: %.0f)\n",
        name != nullptr && name->is_string() ? name->string.c_str() : "?",
        slo->number_or("objective", 0.0), slo->number_or("fast_burn", 0.0),
        slo->number_or("slow_burn", 0.0),
        breaching != nullptr && breaching->boolean ? "BREACHING" : "ok",
        slo->number_or("breaches", 0.0));
  }

  const lsm::obs::JsonValue* sketches = health.find("sketches");
  if (sketches != nullptr && sketches->is_object()) {
    std::printf("  %-22s %10s %8s %12s %12s %12s %12s\n", "sketch", "count",
                "clamped", "p50", "p99", "p999", "max");
    for (const auto& [name, sketch] : sketches->members) {
      print_sketch_row(name.c_str(), &sketch);
    }
  }

  const lsm::obs::JsonValue* series = health.find("series");
  if (series != nullptr && series->is_object()) {
    std::printf("  %-22s %12s  trend\n", "series", "newest");
    for (const auto& [name, one] : series->members) {
      print_series_row(name.c_str(), &one);
    }
  }

  const lsm::obs::JsonValue* shards = health.find("shards");
  if (shards != nullptr && shards->is_array()) {
    std::printf("  %5s %8s %10s %12s %12s %12s\n", "shard", "streams",
                "pictures", "delay p99", "slack p50", "epoch p99(s)");
    for (const lsm::obs::JsonValue& shard : shards->items) {
      const lsm::obs::JsonValue* delay = shard.find("delay_seconds");
      const lsm::obs::JsonValue* slack = shard.find("delay_slack_seconds");
      const lsm::obs::JsonValue* wall = shard.find("epoch_seconds");
      std::printf(
          "  %5.0f %8.0f %10.0f %12.6f %12.6f %12.6f\n",
          shard.number_or("shard", 0.0), shard.number_or("streams", 0.0),
          delay != nullptr ? delay->number_or("count", 0.0) : 0.0,
          delay != nullptr ? delay->number_or("p99", 0.0) : 0.0,
          slack != nullptr ? slack->number_or("p50", 0.0) : 0.0,
          wall != nullptr ? wall->number_or("p99", 0.0) : 0.0);
    }
  }
}

constexpr const char* kMetricsPrefix = "# metrics: ";
constexpr const char* kHealthPrefix = "# health: ";

int cmd_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "lsm_top: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string line;
  std::string last_health;
  int metrics_lines = 0;
  int health_lines = 0;
  int stale = 0;
  double last_seq = 0.0;
  double last_time = 0.0;
  while (std::getline(in, line)) {
    if (line.rfind(kMetricsPrefix, 0) == 0) {
      const lsm::obs::JsonValue snapshot =
          lsm::obs::parse_json(line.substr(std::strlen(kMetricsPrefix)));
      ++metrics_lines;
      const double seq = snapshot.number_or("seq", 0.0);
      const double time_s = snapshot.number_or("time_s", 0.0);
      if (metrics_lines > 1 && (seq <= last_seq || time_s < last_time)) {
        ++stale;
        std::printf(
            "stale scrape: seq %.0f after %.0f, time_s %g after %g\n", seq,
            last_seq, time_s, last_time);
      }
      last_seq = seq;
      last_time = time_s;
    } else if (line.rfind(kHealthPrefix, 0) == 0) {
      last_health = line.substr(std::strlen(kHealthPrefix));
      ++health_lines;
    }
  }
  std::printf("%s: %d metrics line(s), %d health line(s), %d stale\n",
              path.c_str(), metrics_lines, health_lines, stale);
  if (!last_health.empty()) {
    render_health(lsm::obs::parse_json(last_health));
  }
  return stale == 0 ? 0 : 1;
}

/// Deterministic built-in churn: seeded admissions with randomized
/// cadences and departures of streams admitted in earlier epochs — a
/// pocket edition of the StatmuxChurn soak, so the demo output is
/// reproducible run to run.
int cmd_demo(int epochs) {
  lsm::net::StatmuxConfig config;
  config.shards = 4;
  config.threads = 2;
  config.ring_capacity = 4096;
  config.link_rate_bps = 1e12;
  lsm::net::StatmuxService service(config);

  lsm::sim::Rng rng(0x70901e5ULL);
  std::vector<std::uint32_t> live;
  std::uint32_t next_id = 1;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (int c = 0; c < 16; ++c) {
      const double admit_p =
          live.size() < 100 ? 0.9 : (live.size() > 400 ? 0.1 : 0.5);
      if (live.empty() || rng.bernoulli(admit_p)) {
        lsm::net::StreamSpec spec;
        spec.id = next_id++;
        spec.gop_n = 9;
        spec.gop_m = 3;
        spec.params.tau = 1.0 / 30.0;
        spec.params.D = 0.2;
        spec.params.H = spec.gop_n;
        spec.feed_seed = rng.next_u64();
        spec.period_ticks = static_cast<int>(rng.uniform_int(1, 4));
        spec.phase_ticks =
            static_cast<int>(rng.uniform_int(0, spec.period_ticks - 1));
        if (service.admit(spec)) live.push_back(spec.id);
      } else {
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        service.depart(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      }
    }
    service.run_epoch();
    if ((epoch + 1) % 100 == 0 || epoch + 1 == epochs) {
      std::printf("# health: %s\n", service.health_json().c_str());
    }
  }
  render_health(lsm::obs::parse_json(service.health_json(true)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "replay") {
      if (argc < 3) return usage();
      return cmd_replay(argv[2]);
    }
    if (command == "demo") {
      const int epochs = argc > 2 ? std::atoi(argv[2]) : 300;
      return cmd_demo(epochs < 1 ? 300 : epochs);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "lsm_top: %s\n", error.what());
    return 1;
  }
  return usage();
}
