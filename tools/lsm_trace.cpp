// lsm_trace: record and inspect binary schedule traces.
//
//   lsm_trace record <out.bin> [sequence]   run the smoother over a paper
//                                           sequence (default driving1,
//                                           or "all" for the four paper
//                                           streams) with tracing on and
//                                           save the binary trace
//   lsm_trace chrome <in.bin> <out.json>    convert to chrome://tracing
//                                           JSON (load via chrome://tracing
//                                           or ui.perfetto.dev)
//   lsm_trace timeline <in.bin> [stream]    print events in canonical
//                                           order, optionally one stream
//   lsm_trace summary <in.bin>              per-kind and per-stream counts
//   lsm_trace quantiles <in.bin> [stream]   per-picture delay quantiles,
//                                           rebuilt OFFLINE from the
//                                           recorded picture_scheduled
//                                           events with the same fixed
//                                           sketch geometry the live
//                                           health plane uses — the
//                                           round-trip test pins its
//                                           "# sketch:" line bit-exactly
//                                           against record's live sketch
//
// The binary format is obs/trace_io.h's header + raw TraceEvent records;
// any run with Tracer::global() enabled can produce one.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "core/smoother.h"
#include "obs/chrome_trace.h"
#include "obs/event.h"
#include "obs/json.h"
#include "obs/sketch.h"
#include "obs/trace_io.h"
#include "obs/tracer.h"
#include "trace/sequences.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: lsm_trace record <out.bin> [sequence|all]\n"
               "       lsm_trace chrome <in.bin> <out.json>\n"
               "       lsm_trace timeline <in.bin> [stream]\n"
               "       lsm_trace summary <in.bin>\n"
               "       lsm_trace quantiles <in.bin> [stream]\n"
               "sequences: driving1 driving2 tennis backyard\n");
  return 2;
}

/// The machine-readable sketch line both `record` (live) and `quantiles`
/// (offline replay) print; the round-trip ctest compares the two strings
/// byte for byte.
void print_sketch_line(const lsm::obs::QuantileSketch& sketch) {
  lsm::obs::JsonWriter json;
  lsm::obs::write_sketch_json(json, sketch);
  std::printf("# sketch: %s\n", json.str().c_str());
}

std::vector<lsm::trace::Trace> pick_sequences(const std::string& name) {
  if (name == "all") return lsm::trace::paper_sequences();
  if (name == "driving1") return {lsm::trace::driving1()};
  if (name == "driving2") return {lsm::trace::driving2()};
  if (name == "tennis") return {lsm::trace::tennis()};
  if (name == "backyard") return {lsm::trace::backyard()};
  throw std::runtime_error("unknown sequence: " + name);
}

int cmd_record(const std::string& out_path, const std::string& sequence) {
  const std::vector<lsm::trace::Trace> traces = pick_sequences(sequence);
  lsm::obs::Tracer& tracer = lsm::obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  lsm::obs::QuantileSketch delay_sketch;
  for (std::size_t s = 0; s < traces.size(); ++s) {
    const lsm::obs::StreamScope scope(static_cast<std::uint32_t>(s));
    const lsm::trace::Trace& trace = traces[s];
    lsm::core::SmootherParams params;
    params.K = 1;
    params.H = trace.pattern().N();
    params.D = 0.2;
    params.tau = trace.tau();
    const lsm::core::SmoothingResult result =
        lsm::core::smooth_basic(trace, params);
    // Live health sketch over the run's per-picture delays — the same
    // doubles the smoother traces as picture_scheduled payload b, so the
    // offline `quantiles` replay must reproduce this sketch bit-exactly.
    for (const lsm::core::PictureSend& send : result.sends) {
      delay_sketch.observe(send.delay);
    }
  }
  tracer.set_enabled(false);
  std::vector<lsm::obs::TraceEvent> events = tracer.drain();
  lsm::obs::canonical_sort(events);
  lsm::obs::save_trace_file(out_path, events);
  std::printf("recorded %zu events (%zu streams) -> %s\n", events.size(),
              traces.size(), out_path.c_str());
  print_sketch_line(delay_sketch);
  return 0;
}

int cmd_chrome(const std::string& in_path, const std::string& out_path) {
  const std::vector<lsm::obs::TraceEvent> events =
      lsm::obs::load_trace_file(in_path);
  const std::string json = lsm::obs::to_chrome_trace_json(events);
  std::FILE* file = std::fopen(out_path.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("cannot open " + out_path);
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("%zu events -> %s (load in chrome://tracing)\n", events.size(),
              out_path.c_str());
  return 0;
}

int cmd_timeline(const std::string& in_path, const char* stream_arg) {
  std::vector<lsm::obs::TraceEvent> events =
      lsm::obs::load_trace_file(in_path);
  lsm::obs::canonical_sort(events);
  const bool filter = stream_arg != nullptr;
  const std::uint32_t only =
      filter ? static_cast<std::uint32_t>(std::strtoul(stream_arg, nullptr, 10))
             : 0;
  for (const lsm::obs::TraceEvent& event : events) {
    if (filter && event.stream != only) continue;
    std::printf("s%-3u p%-5u t=%-12.6f %-18s a=%-14g b=%-14g c=%g\n",
                event.stream, event.picture, event.time,
                lsm::obs::event_kind_name(
                    static_cast<lsm::obs::EventKind>(event.kind)),
                event.a, event.b, event.c);
  }
  return 0;
}

int cmd_summary(const std::string& in_path) {
  const std::vector<lsm::obs::TraceEvent> events =
      lsm::obs::load_trace_file(in_path);
  std::map<std::uint16_t, std::uint64_t> by_kind;
  std::map<std::uint32_t, std::uint64_t> by_stream;
  double first = 0.0;
  double last = 0.0;
  for (const lsm::obs::TraceEvent& event : events) {
    ++by_kind[event.kind];
    ++by_stream[event.stream];
    if (lsm::obs::deterministic_kind(
            static_cast<lsm::obs::EventKind>(event.kind))) {
      if (first == 0.0 || event.time < first) first = event.time;
      if (event.time > last) last = event.time;
    }
  }
  std::printf("%zu events, %zu streams, span %.6f .. %.6f s\n", events.size(),
              by_stream.size(), first, last);
  for (const auto& [kind, count] : by_kind) {
    std::printf("  %-18s %llu\n",
                lsm::obs::event_kind_name(
                    static_cast<lsm::obs::EventKind>(kind)),
                static_cast<unsigned long long>(count));
  }
  for (const auto& [stream, count] : by_stream) {
    std::printf("  stream %-3u %llu events\n", stream,
                static_cast<unsigned long long>(count));
  }
  return 0;
}

int cmd_quantiles(const std::string& in_path, const char* stream_arg) {
  const std::vector<lsm::obs::TraceEvent> events =
      lsm::obs::load_trace_file(in_path);
  const bool filter = stream_arg != nullptr;
  const std::uint32_t only =
      filter ? static_cast<std::uint32_t>(std::strtoul(stream_arg, nullptr, 10))
             : 0;
  lsm::obs::QuantileSketch sketch;
  for (const lsm::obs::TraceEvent& event : events) {
    if (static_cast<lsm::obs::EventKind>(event.kind) !=
        lsm::obs::EventKind::kPictureScheduled) {
      continue;
    }
    if (filter && event.stream != only) continue;
    sketch.observe(event.b);  // payload b = delay d_i - (i-1) tau
  }
  std::printf("pictures: %llu  (clamped %llu)\n",
              static_cast<unsigned long long>(sketch.count()),
              static_cast<unsigned long long>(sketch.clamped()));
  std::printf("%8s %14s\n", "quantile", "delay(s)");
  for (const double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
    std::printf("%8.3f %14.9f\n", q, sketch.quantile(q));
  }
  std::printf("%8s %14.9f\n", "min", sketch.min());
  std::printf("%8s %14.9f\n", "max", sketch.max());
  print_sketch_line(sketch);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  try {
    if (command == "record") {
      return cmd_record(argv[2], argc > 3 ? argv[3] : "driving1");
    }
    if (command == "chrome") {
      if (argc < 4) return usage();
      return cmd_chrome(argv[2], argv[3]);
    }
    if (command == "timeline") {
      return cmd_timeline(argv[2], argc > 3 ? argv[3] : nullptr);
    }
    if (command == "summary") {
      return cmd_summary(argv[2]);
    }
    if (command == "quantiles") {
      return cmd_quantiles(argv[2], argc > 3 ? argv[3] : nullptr);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "lsm_trace: %s\n", error.what());
    return 1;
  }
  return usage();
}
