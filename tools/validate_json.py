#!/usr/bin/env python3
"""Run binaries and validate their JSON output.

Contract enforced on every binary's stdout:
  * every line whose first non-space character is '{' must parse with
    json.loads (the single-JSON-path conformance gate), and
  * every line starting with '# metrics: ' must parse AND validate
    against the schema given with --schema (tools/metrics_schema.json,
    the obs::MetricsSnapshot shape).

The validator implements the subset of JSON Schema the schema file uses
(type / required / properties / values / items / length / minimum), so
no third-party jsonschema package is needed.

Usage: validate_json.py [--schema SCHEMA] BINARY [ARG...] [-- BINARY2 ...]
Each '--'-separated group is one command; a bare list of paths runs each
as a single-argument command.
"""

import json
import subprocess
import sys

METRICS_PREFIX = "# metrics: "


def validate(instance, schema, path="$"):
    """Returns a list of error strings (empty when valid)."""
    errors = []
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        checks = {
            "object": lambda v: isinstance(v, dict),
            "array": lambda v: isinstance(v, list),
            "string": lambda v: isinstance(v, str),
            "integer": lambda v: isinstance(v, int)
            and not isinstance(v, bool),
            "number": lambda v: isinstance(v, (int, float))
            and not isinstance(v, bool),
            "boolean": lambda v: isinstance(v, bool),
            "null": lambda v: v is None,
        }
        if not any(checks[t](instance) for t in allowed):
            return ["%s: expected %s, got %r" % (path, allowed, instance)]
    for key in schema.get("required", []):
        if key not in instance:
            errors.append("%s: missing required key %r" % (path, key))
    for key, sub in schema.get("properties", {}).items():
        if isinstance(instance, dict) and key in instance:
            errors += validate(instance[key], sub, "%s.%s" % (path, key))
    values_schema = schema.get("values")
    if values_schema is not None and isinstance(instance, dict):
        for key, value in instance.items():
            errors += validate(value, values_schema, "%s.%s" % (path, key))
    items_schema = schema.get("items")
    if items_schema is not None and isinstance(instance, list):
        for index, item in enumerate(instance):
            errors += validate(item, items_schema,
                               "%s[%d]" % (path, index))
    length = schema.get("length")
    if length is not None and isinstance(instance, list):
        if len(instance) != length:
            errors.append("%s: expected %d items, got %d"
                          % (path, length, len(instance)))
    minimum = schema.get("minimum")
    if minimum is not None and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool):
        if instance < minimum:
            errors.append("%s: %r below minimum %r"
                          % (path, instance, minimum))
    return errors


def check_command(command, schema):
    result = subprocess.run(command, stdout=subprocess.PIPE,
                            stderr=subprocess.DEVNULL, timeout=600)
    if result.returncode != 0:
        return ["%s exited with %d" % (command[0], result.returncode)]
    errors = []
    metrics_lines = 0
    for number, raw in enumerate(result.stdout.decode().splitlines(), 1):
        line = raw.strip()
        payload = None
        if raw.startswith(METRICS_PREFIX):
            payload = raw[len(METRICS_PREFIX):]
        elif line.startswith("{"):
            payload = line
        if payload is None:
            continue
        try:
            parsed = json.loads(payload)
        except ValueError as error:
            errors.append("%s line %d: not JSON (%s)"
                          % (command[0], number, error))
            continue
        if raw.startswith(METRICS_PREFIX):
            metrics_lines += 1
            if schema is not None:
                errors += ["%s line %d %s" % (command[0], number, e)
                           for e in validate(parsed, schema)]
    if schema is not None and metrics_lines == 0:
        errors.append("%s: no '%s' snapshot line found"
                      % (command[0], METRICS_PREFIX.strip()))
    return errors


def main():
    # Parsed by hand: argparse swallows the first "--" separator.
    argv = sys.argv[1:]
    schema = None
    if argv and argv[0] == "--schema":
        if len(argv) < 2:
            print(__doc__, file=sys.stderr)
            return 2
        with open(argv[1]) as handle:
            schema = json.load(handle)
        argv = argv[2:]
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2

    commands = []
    if "--" in argv:
        group = []
        for token in argv + ["--"]:
            if token == "--":
                if group:
                    commands.append(group)
                group = []
            else:
                group.append(token)
    else:
        commands = [[path] for path in argv]

    failures = []
    for command in commands:
        failures += check_command(command, schema)
    for failure in failures:
        print("FAIL:", failure, file=sys.stderr)
    if failures:
        return 1
    print("validated %d command(s): JSON parses and metrics match schema"
          % len(commands))
    return 0


if __name__ == "__main__":
    sys.exit(main())
