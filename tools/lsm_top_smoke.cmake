# ctest script: lsm_top demo -> replay must round-trip. The demo's
# `# health:` stream is written to a log; replay parses it back, renders
# the dashboard, and must find zero stale scrapes.
set(log "${WORK_DIR}/lsm_top_demo.log")

execute_process(COMMAND ${LSM_TOP} demo 250
                RESULT_VARIABLE status OUTPUT_VARIABLE demo_out)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "lsm_top demo failed: ${status}")
endif()
if(NOT demo_out MATCHES "# health: ")
  message(FATAL_ERROR "demo missing health lines:\n${demo_out}")
endif()
if(NOT demo_out MATCHES "statmux health @ tick 250")
  message(FATAL_ERROR "demo missing the dashboard:\n${demo_out}")
endif()
if(NOT demo_out MATCHES "slo statmux.delay_slack")
  message(FATAL_ERROR "demo missing the SLO row:\n${demo_out}")
endif()
file(WRITE ${log} "${demo_out}")

execute_process(COMMAND ${LSM_TOP} replay ${log}
                RESULT_VARIABLE status OUTPUT_VARIABLE replay_out)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "lsm_top replay failed: ${status}\n${replay_out}")
endif()
if(NOT replay_out MATCHES "3 health line")
  message(FATAL_ERROR "replay miscounted health lines:\n${replay_out}")
endif()
if(NOT replay_out MATCHES "0 stale")
  message(FATAL_ERROR "replay reported stale scrapes:\n${replay_out}")
endif()
if(NOT replay_out MATCHES "statmux health @ tick 250")
  message(FATAL_ERROR "replay missing the dashboard:\n${replay_out}")
endif()
