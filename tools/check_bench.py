#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

The CI bench-baseline job runs

    perf_micro --benchmark_format=json > bench_results.json
    tools/check_bench.py compare --baseline BENCH_BASELINE.json \
        --current bench_results.json

and fails when any benchmark's throughput (items_per_second; falls back to
1/real_time for benchmarks without an items counter) drops more than
--threshold (default 0.25) below the baseline. Benchmarks new in the
current run pass with a notice; benchmarks that disappeared fail, so a
deleted benchmark forces a deliberate baseline refresh.

Refresh the baseline from a trusted run with

    tools/check_bench.py update --current bench_results.json \
        --baseline BENCH_BASELINE.json

which rewrites the baseline as a minimal, diff-friendly document.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_throughputs(path: str) -> dict[str, float]:
    """Map benchmark name -> throughput from either a raw google-benchmark
    JSON document or a previously reduced baseline document."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    benchmarks = document.get("benchmarks", [])
    if isinstance(benchmarks, dict):  # reduced baseline format
        return {name: float(entry["throughput"])
                for name, entry in benchmarks.items()}
    throughputs: dict[str, float] = {}
    for entry in benchmarks:
        if entry.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        name = entry["name"]
        if "items_per_second" in entry:
            throughputs[name] = float(entry["items_per_second"])
        else:
            # real_time is reported in entry["time_unit"]; normalize to
            # runs/second so the ratio check still works.
            unit = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[
                entry.get("time_unit", "ns")]
            real_time = float(entry["real_time"]) * unit
            if real_time > 0:
                throughputs[name] = 1.0 / real_time
    return throughputs


def cmd_compare(args: argparse.Namespace) -> int:
    baseline = load_throughputs(args.baseline)
    current = load_throughputs(args.current)
    failures = []
    for name, base in sorted(baseline.items()):
        now = current.get(name)
        if now is None:
            failures.append(f"{name}: present in baseline but missing from "
                            f"the current run (refresh the baseline if it "
                            f"was removed on purpose)")
            continue
        ratio = now / base if base > 0 else float("inf")
        marker = "FAIL" if ratio < 1.0 - args.threshold else "ok"
        print(f"{marker:>4}  {name}: {now:.3e} vs baseline {base:.3e} "
              f"({100.0 * (ratio - 1.0):+.1f}%)")
        if marker == "FAIL":
            failures.append(f"{name}: throughput regressed "
                            f"{100.0 * (1.0 - ratio):.1f}% "
                            f"(> {100.0 * args.threshold:.0f}% allowed)")
    for name in sorted(set(current) - set(baseline)):
        print(f" new  {name}: {current[name]:.3e} (no baseline; "
              f"run the update command to record one)")
    if failures:
        print("\nbench regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nbench regression check passed "
          f"({len(baseline)} baselined benchmarks).")
    return 0


def cmd_update(args: argparse.Namespace) -> int:
    current = load_throughputs(args.current)
    if not current:
        print("no benchmarks in the current run; refusing to write an "
              "empty baseline", file=sys.stderr)
        return 1
    document = {
        "comment": "Throughput baseline for tools/check_bench.py; refresh "
                   "with the update subcommand from a trusted run.",
        "benchmarks": {
            name: {"throughput": value}
            for name, value in sorted(current.items())
        },
    }
    with open(args.baseline, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {len(current)} baselines to {args.baseline}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser("compare", help="check a run")
    compare.add_argument("--baseline", default="BENCH_BASELINE.json")
    compare.add_argument("--current", required=True)
    compare.add_argument("--threshold", type=float, default=0.25,
                         help="allowed fractional throughput drop")
    compare.set_defaults(func=cmd_compare)

    update = subparsers.add_parser("update", help="rewrite the baseline")
    update.add_argument("--baseline", default="BENCH_BASELINE.json")
    update.add_argument("--current", required=True)
    update.set_defaults(func=cmd_update)

    args = parser.parse_args()
    try:
        return args.func(args)
    except OSError as error:
        print(f"check_bench: {error}", file=sys.stderr)
        return 1
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
        print(f"check_bench: malformed benchmark document: {error}",
              file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
