#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

The CI bench-baseline job runs

    perf_micro --benchmark_format=json > bench_results.json
    tools/check_bench.py compare --baseline BENCH_BASELINE.json \
        --current bench_results.json

and fails when any benchmark's throughput (items_per_second; falls back to
1/real_time for benchmarks without an items counter) drops more than
--threshold (default 0.25) below the baseline. A baseline entry may carry
its own "threshold" key, which overrides the global value for that one
benchmark — use a looser override for noisy end-to-end benchmarks (e.g.
threaded encoder throughput on shared CI runners) and a tighter one for
stable microkernels. The update subcommand preserves per-benchmark
overrides when it rewrites throughputs. Benchmarks new in the current run
pass with a WARN (record them with the update subcommand); benchmarks that
disappeared fail, so a deleted benchmark forces a deliberate baseline
refresh.

A baseline entry may also carry a "max_counters" object mapping user
counter names to hard ceilings, checked with no tolerance: the run fails
if the counter exceeds the ceiling OR is missing from the current run.
This is how the steady-state allocation audits are gated —
{"max_counters": {"allocs_steady": 0}} means "one warmed iteration of
this benchmark performs zero heap allocations", and any nonzero count is
a regression regardless of throughput. The statmux scale rows gate
several health counters at once the same way: "dirty_set" (streams
scheduled per epoch — above ceil(streams/period) means the staggered
cadence collapsed into thundering herds) and "wheel_entries" (timing
wheel residency — above the resident stream count means stale calendar
entries are leaking). Every counter in the object is checked
independently; one over-ceiling counter fails the run even when the
others and the throughput are fine. max_counters survives the update
subcommand just like threshold.

Context keys the benchmark binary stamps with AddCustomContext (the
lsm_simd_detected / lsm_simd_active dispatch decision from perf_micro)
are echoed into the markdown summary so every CI run records which
kernels produced its numbers.

--summary-out FILE additionally writes the comparison as a markdown
before/after delta table, the format GitHub renders when appended to
$GITHUB_STEP_SUMMARY.

Refresh the baseline from a trusted run with

    tools/check_bench.py update --current bench_results.json \
        --baseline BENCH_BASELINE.json

which rewrites the baseline as a minimal, diff-friendly document.

`tools/check_bench.py snapshots --log run.log` audits a recorded
`# metrics:` stream for scrape staleness: every snapshot carries a
monotonic "seq" (incremented per Registry snapshot) and a simulated-time
"time_s" stamp, so a healthy stream has strictly increasing seq and
nondecreasing time_s. A scraper stuck on a cached snapshot (duplicate
seq) or reading snapshots out of order fails the check — the same
detection lsm_top's replay mode performs.

`tools/check_bench.py selftest` exercises the compare/update logic against
synthetic documents in a temporary directory (run by CI so a regression in
this script cannot silently disable the perf gate).
"""

from __future__ import annotations

import argparse
import json
import sys


# Benchmark entry fields that are measurements or metadata, never user
# counters; everything else numeric in a raw entry is a user counter.
_STANDARD_FIELDS = frozenset({
    "name", "run_name", "run_type", "family_index",
    "per_family_instance_index", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "items_per_second", "bytes_per_second", "label",
    "aggregate_name", "aggregate_unit",
})


def load_entries(path: str) -> dict[str, dict]:
    """Map benchmark name -> {"throughput": ..., optional "threshold": ...,
    optional "max_counters": {...}, optional "counters": {...}} from either
    a raw google-benchmark JSON document or a previously reduced baseline
    document. Only reduced baselines carry thresholds and max_counters;
    only raw runs carry measured counters."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    benchmarks = document.get("benchmarks", [])
    entries: dict[str, dict] = {}
    if isinstance(benchmarks, dict):  # reduced baseline format
        for name, entry in benchmarks.items():
            reduced = {"throughput": float(entry["throughput"])}
            if "threshold" in entry:
                threshold = float(entry["threshold"])
                if not 0.0 <= threshold < 1.0:
                    raise ValueError(
                        f"{name}: per-benchmark threshold {threshold} must "
                        f"be a fraction in [0, 1)")
                reduced["threshold"] = threshold
            if "max_counters" in entry:
                limits = entry["max_counters"]
                if not isinstance(limits, dict) or not limits:
                    raise ValueError(
                        f"{name}: max_counters must be a non-empty object "
                        f"of counter-name -> ceiling")
                reduced["max_counters"] = {
                    counter: float(limit)
                    for counter, limit in limits.items()
                }
            entries[name] = reduced
        return entries
    for entry in benchmarks:
        if entry.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        name = entry["name"]
        counters = {
            key: float(value)
            for key, value in entry.items()
            if key not in _STANDARD_FIELDS
            and isinstance(value, (int, float))
        }
        if "items_per_second" in entry:
            entries[name] = {
                "throughput": float(entry["items_per_second"]),
                "counters": counters,
            }
        else:
            # real_time is reported in entry["time_unit"]; normalize to
            # runs/second so the ratio check still works.
            unit = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[
                entry.get("time_unit", "ns")]
            real_time = float(entry["real_time"]) * unit
            if real_time > 0:
                entries[name] = {"throughput": 1.0 / real_time,
                                 "counters": counters}
    return entries


def load_context(path: str, keys: tuple[str, ...] = (
        "lsm_simd_detected", "lsm_simd_active")) -> dict[str, str]:
    """Custom AddCustomContext keys from a raw run (empty for baselines)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    context = document.get("context", {})
    if not isinstance(context, dict):
        return {}
    return {key: str(context[key]) for key in keys if key in context}


def load_throughputs(path: str) -> dict[str, float]:
    return {name: entry["throughput"]
            for name, entry in load_entries(path).items()}


def write_summary(path: str, rows: list[tuple[str, str, str, str, str]],
                  failures: list[str], threshold: float,
                  context: dict[str, str] | None = None) -> None:
    """Markdown before/after table in the $GITHUB_STEP_SUMMARY format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("## Benchmark delta vs committed baseline\n\n")
        if context:
            for key, value in sorted(context.items()):
                handle.write(f"- `{key}`: {value}\n")
            handle.write("\n")
        handle.write("| Benchmark | Baseline | Current | Delta | Status |\n")
        handle.write("|---|---:|---:|---:|---|\n")
        for name, base, now, delta, status in rows:
            handle.write(f"| `{name}` | {base} | {now} | {delta} "
                         f"| {status} |\n")
        if failures:
            handle.write(f"\n**FAILED** — {len(failures)} benchmark(s) "
                         f"regressed more than "
                         f"{100.0 * threshold:.0f}%, went missing, or "
                         f"exceeded a counter ceiling.\n")
        else:
            handle.write("\nAll baselined benchmarks within threshold "
                         f"({100.0 * threshold:.0f}%) and counter "
                         f"ceilings.\n")


def cmd_compare(args: argparse.Namespace) -> int:
    baseline = load_entries(args.baseline)
    current_entries = load_entries(args.current)
    current = {name: entry["throughput"]
               for name, entry in current_entries.items()}
    context = load_context(args.current)
    for key, value in sorted(context.items()):
        print(f"ctx   {key}: {value}")
    failures = []
    rows: list[tuple[str, str, str, str, str]] = []
    for name, entry in sorted(baseline.items()):
        base = entry["throughput"]
        threshold = entry.get("threshold", args.threshold)
        now = current.get(name)
        if now is None:
            failures.append(f"{name}: present in baseline but missing from "
                            f"the current run (refresh the baseline if it "
                            f"was removed on purpose)")
            print(f"FAIL  {name}: missing from the current run")
            rows.append((name, f"{base:.3e}", "—", "—", "❌ missing"))
            continue
        ratio = now / base if base > 0 else float("inf")
        delta = f"{100.0 * (ratio - 1.0):+.1f}%"
        marker = "FAIL" if ratio < 1.0 - threshold else "ok"
        override = ("" if "threshold" not in entry
                    else f" [threshold {100.0 * threshold:.0f}%]")
        print(f"{marker:>4}  {name}: {now:.3e} vs baseline {base:.3e} "
              f"({delta}){override}")
        status = "❌ regressed" if marker == "FAIL" else "✅"
        if marker == "FAIL":
            failures.append(f"{name}: throughput regressed "
                            f"{100.0 * (1.0 - ratio):.1f}% "
                            f"(> {100.0 * threshold:.0f}% allowed)")
        # Counter ceilings are hard limits with no tolerance: the
        # zero-alloc contract is exact, so one allocation is a failure.
        measured = current_entries[name].get("counters", {})
        for counter, limit in sorted(entry.get("max_counters", {}).items()):
            value = measured.get(counter)
            if value is None:
                failures.append(f"{name}: counter {counter!r} gated at "
                                f"<= {limit:g} but absent from the run")
                print(f"FAIL  {name}: counter {counter} missing "
                      f"(ceiling {limit:g})")
                status = f"❌ {counter} missing"
            elif value > limit:
                failures.append(f"{name}: counter {counter} = {value:g} "
                                f"exceeds ceiling {limit:g}")
                print(f"FAIL  {name}: counter {counter} = {value:g} "
                      f"(ceiling {limit:g})")
                status = f"❌ {counter} {value:g} > {limit:g}"
            else:
                print(f"  ok  {name}: counter {counter} = {value:g} "
                      f"(ceiling {limit:g})")
        rows.append((name, f"{base:.3e}", f"{now:.3e}", delta, status))
    for name in sorted(set(current) - set(baseline)):
        print(f"WARN  {name}: {current[name]:.3e} (not in the baseline; "
              f"run the update command to record it)")
        rows.append((name, "—", f"{current[name]:.3e}", "—",
                     "⚠️ no baseline"))
    if args.summary_out:
        write_summary(args.summary_out, rows, failures, args.threshold,
                      context)
    if failures:
        print("\nbench regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nbench regression check passed "
          f"({len(baseline)} baselined benchmarks).")
    return 0


def cmd_update(args: argparse.Namespace) -> int:
    current = load_throughputs(args.current)
    if not current:
        print("no benchmarks in the current run; refusing to write an "
              "empty baseline", file=sys.stderr)
        return 1
    # A refresh rewrites throughputs but keeps per-benchmark threshold
    # overrides and max_counters ceilings from the previous baseline —
    # they encode contracts and noise judgments, not measurements.
    import os
    thresholds: dict[str, float] = {}
    ceilings: dict[str, dict[str, float]] = {}
    if os.path.exists(args.baseline):
        for name, entry in load_entries(args.baseline).items():
            if "threshold" in entry:
                thresholds[name] = entry["threshold"]
            if "max_counters" in entry:
                ceilings[name] = entry["max_counters"]

    def reduced_entry(name: str, value: float) -> dict:
        entry: dict = {"throughput": value}
        if name in thresholds:
            entry["threshold"] = thresholds[name]
        if name in ceilings:
            entry["max_counters"] = ceilings[name]
        return entry

    document = {
        "comment": "Throughput baseline for tools/check_bench.py; refresh "
                   "with the update subcommand from a trusted run. A "
                   "per-benchmark \"threshold\" key overrides the global "
                   "--threshold for that benchmark; a \"max_counters\" "
                   "object gates user counters with hard ceilings (the "
                   "allocs_steady zero-alloc contract). Both survive "
                   "refreshes.",
        "benchmarks": {
            name: reduced_entry(name, value)
            for name, value in sorted(current.items())
        },
    }
    with open(args.baseline, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {len(current)} baselines to {args.baseline}")
    return 0


_METRICS_PREFIX = "# metrics: "


def audit_snapshot_lines(lines: list[str]) -> tuple[int, list[str]]:
    """Returns (snapshot_count, errors) for a `# metrics:` stream: seq must
    be strictly increasing and time_s nondecreasing across snapshots."""
    errors: list[str] = []
    count = 0
    last_seq = None
    last_time = None
    for number, raw in enumerate(lines, 1):
        if not raw.startswith(_METRICS_PREFIX):
            continue
        try:
            snapshot = json.loads(raw[len(_METRICS_PREFIX):])
        except ValueError as error:
            errors.append(f"line {number}: not JSON ({error})")
            continue
        count += 1
        seq = snapshot.get("seq")
        time_s = snapshot.get("time_s")
        if not isinstance(seq, int):
            errors.append(f"line {number}: snapshot missing integer 'seq'")
            continue
        if not isinstance(time_s, (int, float)):
            errors.append(f"line {number}: snapshot missing 'time_s'")
            continue
        if last_seq is not None and seq <= last_seq:
            errors.append(f"line {number}: stale/duplicate scrape — seq "
                          f"{seq} after {last_seq}")
        if last_time is not None and time_s < last_time:
            errors.append(f"line {number}: time went backwards — time_s "
                          f"{time_s} after {last_time}")
        last_seq = seq
        last_time = time_s
    return count, errors


def cmd_snapshots(args: argparse.Namespace) -> int:
    if args.log == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(args.log, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    count, errors = audit_snapshot_lines(lines)
    for error in errors:
        print(f"FAIL  {error}", file=sys.stderr)
    if count == 0:
        print("no '# metrics:' snapshot lines found", file=sys.stderr)
        return 1
    if errors:
        print(f"\nsnapshot stream check FAILED ({len(errors)} problem(s) "
              f"in {count} snapshot(s)).", file=sys.stderr)
        return 1
    print(f"snapshot stream ok: {count} snapshot(s), seq strictly "
          f"increasing, time_s nondecreasing.")
    return 0


def cmd_selftest(args: argparse.Namespace) -> int:
    """End-to-end check of compare/update against synthetic documents."""
    del args
    import os
    import tempfile

    def bench_doc(values: dict[str, float]) -> dict:
        return {"benchmarks": [
            {"name": name, "run_type": "iteration",
             "items_per_second": value}
            for name, value in values.items()]}

    def run_compare(baseline: dict[str, float], current: dict[str, float],
                    tmp: str, summary: str | None = None) -> int:
        baseline_path = os.path.join(tmp, "baseline.json")
        current_path = os.path.join(tmp, "current.json")
        with open(current_path, "w", encoding="utf-8") as handle:
            json.dump(bench_doc(current), handle)
        with open(os.path.join(tmp, "raw_base.json"), "w",
                  encoding="utf-8") as handle:
            json.dump(bench_doc(baseline), handle)
        update_args = argparse.Namespace(
            baseline=baseline_path,
            current=os.path.join(tmp, "raw_base.json"))
        assert cmd_update(update_args) == 0, "update must succeed"
        compare_args = argparse.Namespace(
            baseline=baseline_path, current=current_path, threshold=0.25,
            summary_out=summary)
        return cmd_compare(compare_args)

    checks = 0
    with tempfile.TemporaryDirectory() as tmp:
        # Unchanged run passes.
        assert run_compare({"BM_A": 100.0}, {"BM_A": 100.0}, tmp) == 0
        checks += 1
        # Regression beyond the threshold fails.
        assert run_compare({"BM_A": 100.0}, {"BM_A": 60.0}, tmp) == 1
        checks += 1
        # Improvement passes.
        assert run_compare({"BM_A": 100.0}, {"BM_A": 300.0}, tmp) == 0
        checks += 1
        # A baselined benchmark missing from the run fails.
        assert run_compare({"BM_A": 100.0, "BM_B": 50.0},
                           {"BM_A": 100.0}, tmp) == 1
        checks += 1
        # A new, unbaselined benchmark warns but passes.
        assert run_compare({"BM_A": 100.0},
                           {"BM_A": 100.0, "BM_NEW": 5.0}, tmp) == 0
        checks += 1
        # The summary table is written and mentions every benchmark.
        summary_path = os.path.join(tmp, "summary.md")
        assert run_compare({"BM_A": 100.0, "BM_B": 50.0},
                           {"BM_A": 100.0, "BM_NEW": 5.0}, tmp,
                           summary=summary_path) == 1
        with open(summary_path, "r", encoding="utf-8") as handle:
            summary = handle.read()
        for expected in ("BM_A", "BM_B", "BM_NEW", "missing",
                         "no baseline", "FAILED"):
            assert expected in summary, f"summary lacks {expected!r}"
        checks += 1

        def write_baseline(path: str,
                           entries: dict[str, dict[str, float]]) -> None:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump({"benchmarks": entries}, handle)

        def compare_against(baseline_path: str,
                            current: dict[str, float]) -> int:
            current_path = os.path.join(tmp, "override_current.json")
            with open(current_path, "w", encoding="utf-8") as handle:
                json.dump(bench_doc(current), handle)
            return cmd_compare(argparse.Namespace(
                baseline=baseline_path, current=current_path,
                threshold=0.25, summary_out=None))

        # A loose per-benchmark threshold admits a drop the global 25%
        # would reject; a benchmark without an override still fails.
        override_path = os.path.join(tmp, "override_baseline.json")
        write_baseline(override_path, {
            "BM_NOISY": {"throughput": 100.0, "threshold": 0.6},
            "BM_STABLE": {"throughput": 100.0},
        })
        assert compare_against(override_path,
                               {"BM_NOISY": 55.0, "BM_STABLE": 100.0}) == 0
        assert compare_against(override_path,
                               {"BM_NOISY": 55.0, "BM_STABLE": 70.0}) == 1
        checks += 1
        # A tight override rejects a drop the global threshold would allow.
        write_baseline(override_path, {
            "BM_KERNEL": {"throughput": 100.0, "threshold": 0.05},
        })
        assert compare_against(override_path, {"BM_KERNEL": 90.0}) == 1
        assert compare_against(override_path, {"BM_KERNEL": 96.0}) == 0
        checks += 1
        # update preserves threshold overrides while rewriting throughputs.
        write_baseline(override_path, {
            "BM_NOISY": {"throughput": 100.0, "threshold": 0.6},
            "BM_STABLE": {"throughput": 100.0},
        })
        refreshed_raw = os.path.join(tmp, "override_raw.json")
        with open(refreshed_raw, "w", encoding="utf-8") as handle:
            json.dump(bench_doc({"BM_NOISY": 200.0, "BM_STABLE": 150.0}),
                      handle)
        assert cmd_update(argparse.Namespace(
            baseline=override_path, current=refreshed_raw)) == 0
        refreshed = load_entries(override_path)
        assert refreshed["BM_NOISY"] == {"throughput": 200.0,
                                         "threshold": 0.6}
        assert refreshed["BM_STABLE"] == {"throughput": 150.0}
        checks += 1
        # An out-of-range override is rejected as malformed.
        write_baseline(override_path,
                       {"BM_BAD": {"throughput": 1.0, "threshold": 1.5}})
        try:
            load_entries(override_path)
            raise AssertionError("threshold 1.5 must be rejected")
        except ValueError:
            pass
        checks += 1

        def bench_doc_counters(
                values: dict[str, tuple[float, dict[str, float]]],
                context: dict[str, str] | None = None) -> dict:
            document = {"benchmarks": [
                dict({"name": name, "run_type": "iteration",
                      "items_per_second": throughput}, **counters)
                for name, (throughput, counters) in values.items()]}
            if context:
                document["context"] = context
            return document

        def compare_doc(baseline_path: str, document: dict,
                        summary: str | None = None) -> int:
            current_path = os.path.join(tmp, "counter_current.json")
            with open(current_path, "w", encoding="utf-8") as handle:
                json.dump(document, handle)
            return cmd_compare(argparse.Namespace(
                baseline=baseline_path, current=current_path,
                threshold=0.25, summary_out=summary))

        # Counter ceilings are zero-tolerance: at the ceiling passes, one
        # over fails even when throughput is fine, and a gated counter
        # missing from the run fails (a renamed counter must not silently
        # disable the gate).
        gate_path = os.path.join(tmp, "counter_baseline.json")
        write_baseline(gate_path, {
            "BM_ALLOC": {"throughput": 100.0,
                         "max_counters": {"allocs_steady": 0.0}},
        })
        assert compare_doc(gate_path, bench_doc_counters(
            {"BM_ALLOC": (100.0, {"allocs_steady": 0.0})})) == 0
        assert compare_doc(gate_path, bench_doc_counters(
            {"BM_ALLOC": (100.0, {"allocs_steady": 1.0})})) == 1
        assert compare_doc(gate_path, bench_doc_counters(
            {"BM_ALLOC": (100.0, {})})) == 1
        checks += 1
        # Multiple ceilings on one benchmark are independent gates (the
        # statmux scale rows pin dirty_set AND wheel_entries): nonzero
        # ceilings pass at the ceiling, and ONE counter over its limit
        # fails the run even while the other stays under.
        health_path = os.path.join(tmp, "health_baseline.json")
        write_baseline(health_path, {
            "BM_MUX": {"throughput": 100.0,
                       "max_counters": {"dirty_set": 1031.0,
                                        "wheel_entries": 100000.0}},
        })
        assert compare_doc(health_path, bench_doc_counters(
            {"BM_MUX": (100.0, {"dirty_set": 1031.0,
                                "wheel_entries": 100000.0})})) == 0
        assert compare_doc(health_path, bench_doc_counters(
            {"BM_MUX": (100.0, {"dirty_set": 1031.0,
                                "wheel_entries": 100001.0})})) == 1
        assert compare_doc(health_path, bench_doc_counters(
            {"BM_MUX": (100.0, {"dirty_set": 1032.0,
                                "wheel_entries": 99999.0})})) == 1
        # A partially-reported run fails: each gated counter must appear.
        assert compare_doc(health_path, bench_doc_counters(
            {"BM_MUX": (100.0, {"dirty_set": 1031.0})})) == 1
        checks += 1
        # update preserves max_counters alongside thresholds.
        refreshed_counters = os.path.join(tmp, "counter_raw.json")
        with open(refreshed_counters, "w", encoding="utf-8") as handle:
            json.dump(bench_doc_counters(
                {"BM_ALLOC": (250.0, {"allocs_steady": 0.0})}), handle)
        assert cmd_update(argparse.Namespace(
            baseline=gate_path, current=refreshed_counters)) == 0
        refreshed = load_entries(gate_path)
        assert refreshed["BM_ALLOC"] == {
            "throughput": 250.0, "max_counters": {"allocs_steady": 0.0}}
        checks += 1
        # SIMD dispatch context from the run is echoed into the summary.
        context_summary = os.path.join(tmp, "context_summary.md")
        assert compare_doc(gate_path, bench_doc_counters(
            {"BM_ALLOC": (250.0, {"allocs_steady": 0.0})},
            context={"lsm_simd_detected": "avx512",
                     "lsm_simd_active": "avx2"}),
            summary=context_summary) == 0
        with open(context_summary, "r", encoding="utf-8") as handle:
            summary = handle.read()
        for expected in ("lsm_simd_detected", "avx512",
                         "lsm_simd_active", "avx2"):
            assert expected in summary, f"summary lacks {expected!r}"
        checks += 1
        # A malformed max_counters object is rejected.
        write_baseline(override_path, {
            "BM_BAD": {"throughput": 1.0, "max_counters": []}})
        try:
            load_entries(override_path)
            raise AssertionError("non-object max_counters must be rejected")
        except ValueError:
            pass
        checks += 1

        # Snapshot-stream audit: healthy streams pass; a duplicated seq
        # (cached scrape), a backwards time_s, and a seq-less snapshot all
        # fail; non-metrics lines are ignored.
        def metrics_line(seq: int | None, time_s: float) -> str:
            snapshot: dict = {"time_s": time_s, "counters": {}}
            if seq is not None:
                snapshot["seq"] = seq
            return "# metrics: " + json.dumps(snapshot)

        count, errors = audit_snapshot_lines([
            "plain output", metrics_line(1, 0.0), metrics_line(2, 1.5),
            metrics_line(3, 1.5)])
        assert count == 3 and not errors, errors
        _, errors = audit_snapshot_lines(
            [metrics_line(5, 0.0), metrics_line(5, 1.0)])
        assert any("stale/duplicate" in e for e in errors), errors
        _, errors = audit_snapshot_lines(
            [metrics_line(1, 2.0), metrics_line(2, 1.0)])
        assert any("time went backwards" in e for e in errors), errors
        _, errors = audit_snapshot_lines([metrics_line(None, 0.0)])
        assert any("missing integer 'seq'" in e for e in errors), errors
        count, errors = audit_snapshot_lines(["no snapshots here"])
        assert count == 0 and not errors
        checks += 1
    print(f"check_bench selftest passed ({checks} scenarios).")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser("compare", help="check a run")
    compare.add_argument("--baseline", default="BENCH_BASELINE.json")
    compare.add_argument("--current", required=True)
    compare.add_argument("--threshold", type=float, default=0.25,
                         help="allowed fractional throughput drop")
    compare.add_argument("--summary-out", default=None,
                         help="write a markdown delta table here "
                              "(append to $GITHUB_STEP_SUMMARY in CI)")
    compare.set_defaults(func=cmd_compare)

    update = subparsers.add_parser("update", help="rewrite the baseline")
    update.add_argument("--baseline", default="BENCH_BASELINE.json")
    update.add_argument("--current", required=True)
    update.set_defaults(func=cmd_update)

    snapshots = subparsers.add_parser(
        "snapshots", help="audit a '# metrics:' stream for stale scrapes")
    snapshots.add_argument("--log", required=True,
                           help="file of captured stdout ('-' for stdin)")
    snapshots.set_defaults(func=cmd_snapshots)

    selftest = subparsers.add_parser(
        "selftest", help="verify this script against synthetic documents")
    selftest.set_defaults(func=cmd_selftest)

    args = parser.parse_args()
    try:
        return args.func(args)
    except OSError as error:
        print(f"check_bench: {error}", file=sys.stderr)
        return 1
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
        print(f"check_bench: malformed benchmark document: {error}",
              file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
