#include "trace/sequences.h"

namespace lsm::trace {

SyntheticConfig driving_config() {
  SyntheticConfig config;
  config.name = "Driving";
  config.width = 640;
  config.height = 480;
  // Fast car in the countryside -> close-up of the driver -> car again.
  config.scenes = {
      SceneSpec{110, 1.00, 0.80, 0.90},
      SceneSpec{90, 0.72, 0.20, 0.28},
      SceneSpec{100, 1.02, 0.85, 0.80},
  };
  config.bits_per_pixel_intra = 0.70;
  config.noise_sigma = 0.07;
  config.seed = 0xD41;
  return config;
}

Trace driving1() {
  SyntheticConfig config = driving_config();
  config.name = "Driving1";
  return synthesize(config, GopPattern(9, 3));
}

Trace driving2() {
  SyntheticConfig config = driving_config();
  config.name = "Driving2";
  return synthesize(config, GopPattern(6, 2));
}

Trace tennis() {
  SyntheticConfig config;
  config.name = "Tennis";
  config.width = 640;
  config.height = 480;
  // One continuous scene: the instructor lectures sitting down, then gets up
  // and moves away; motion ramps up gradually through the second half.
  config.scenes = {
      SceneSpec{150, 1.15, 0.10, 0.18},
      SceneSpec{150, 1.15, 0.25, 0.75},
  };
  // Two isolated instances of large P pictures in the first half.
  config.spikes = {
      MotionSpike{58, 3, 0.95},
      MotionSpike{104, 3, 0.95},
  };
  config.bits_per_pixel_intra = 0.82;
  config.noise_sigma = 0.06;
  config.seed = 0x7E5;
  return synthesize(config, GopPattern(9, 3));
}

Trace backyard() {
  SyntheticConfig config;
  config.name = "Backyard";
  config.width = 352;
  config.height = 288;
  // Person in a backyard -> two other people elsewhere -> back. Complex,
  // detailed backgrounds (high spatial complexity) but unhurried motion.
  config.scenes = {
      SceneSpec{132, 1.30, 0.18, 0.22},
      SceneSpec{120, 1.38, 0.22, 0.28},
      SceneSpec{108, 1.30, 0.20, 0.18},
  };
  config.bits_per_pixel_intra = 0.80;
  config.noise_sigma = 0.06;
  config.seed = 0xBAC;
  return synthesize(config, GopPattern(12, 3));
}

std::vector<Trace> paper_sequences() {
  return {driving1(), driving2(), tennis(), backyard()};
}

}  // namespace lsm::trace
