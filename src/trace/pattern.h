// MPEG group-of-pictures (GOP) pattern: the repeating sequence of I, P, and B
// picture types, parameterized as in the paper by
//   M — distance between successive reference pictures (I or P), and
//   N — distance between successive I pictures (the pattern length).
//
// Example: M = 3, N = 9 yields the display-order pattern IBBPBBPBB; M = 1,
// N = 5 yields IPPPP.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lsm::trace {

/// Number of bits; picture sizes are exact integers.
using Bits = std::int64_t;

/// MPEG picture (frame) coding type.
enum class PictureType : std::uint8_t { I, P, B };

/// Single-character name ('I', 'P', or 'B').
char to_char(PictureType type) noexcept;

/// The repeating pattern of picture types in display order.
///
/// Invariant: N >= 1, M >= 1, and M divides N (every pattern position
/// p with p % M == 0 is a reference picture). Picture indices are 1-based
/// throughout the library, matching the paper; picture 1 is an I picture.
class GopPattern {
 public:
  /// Throws std::invalid_argument unless 1 <= M <= N and N % M == 0.
  GopPattern(int N, int M);

  int N() const noexcept { return n_; }
  int M() const noexcept { return m_; }

  /// Type of 1-based picture index `i` in display order.
  PictureType type_of(int i) const noexcept;

  /// Position of picture `i` within its pattern, in [0, N).
  int phase_of(int i) const noexcept;

  /// Count of each type within one pattern period.
  int count_of(PictureType type) const noexcept;

  /// Display-order pattern string, e.g. "IBBPBBPBB".
  std::string to_string() const;

  /// Parses a display-order pattern string such as "IBBPBBPBB". The string
  /// must begin with 'I', contain only I/P/B, and be a valid (N, M) pattern.
  /// Throws std::invalid_argument otherwise.
  static GopPattern parse(const std::string& pattern);

  friend bool operator==(const GopPattern& a, const GopPattern& b) noexcept {
    return a.n_ == b.n_ && a.m_ == b.m_;
  }

 private:
  int n_;
  int m_;
};

}  // namespace lsm::trace
