#include "trace/reorder.h"

namespace lsm::trace {

std::vector<int> display_to_coded_permutation(
    const std::vector<PictureType>& display_types) {
  std::vector<int> order;
  order.reserve(display_types.size());
  std::vector<int> pending_b;
  for (int f = 0; f < static_cast<int>(display_types.size()); ++f) {
    if (display_types[static_cast<std::size_t>(f)] == PictureType::B) {
      pending_b.push_back(f);
    } else {
      // Anchor: transmit it ahead of the B pictures that display before it.
      order.push_back(f);
      for (const int b : pending_b) order.push_back(b);
      pending_b.clear();
    }
  }
  // Trailing B pictures with no future anchor (end of sequence).
  for (const int b : pending_b) order.push_back(b);
  return order;
}

std::vector<int> coded_position_of_display(
    const std::vector<PictureType>& display_types) {
  const std::vector<int> order = display_to_coded_permutation(display_types);
  std::vector<int> inverse(order.size(), 0);
  for (int k = 0; k < static_cast<int>(order.size()); ++k) {
    inverse[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] = k;
  }
  return inverse;
}

Trace to_coded_order(const Trace& display_trace) {
  const std::vector<int> order =
      display_to_coded_permutation(display_trace.types());
  std::vector<Bits> sizes;
  std::vector<PictureType> types;
  sizes.reserve(order.size());
  types.reserve(order.size());
  for (const int f : order) {
    sizes.push_back(display_trace.sizes()[static_cast<std::size_t>(f)]);
    types.push_back(display_trace.types()[static_cast<std::size_t>(f)]);
  }
  return Trace(display_trace.name() + ".coded", display_trace.pattern(),
               std::move(sizes), std::move(types), display_trace.tau(),
               display_trace.width(), display_trace.height());
}

}  // namespace lsm::trace
