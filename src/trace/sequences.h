// The four MPEG video sequences of the paper's Section 5.1, synthesized from
// calibrated scene scripts (see DESIGN.md, substitution table):
//
//   Driving1 (N=9, M=3, 640x480)  — fast car scene, close-up of the driver,
//                                   back to the car; two scene changes.
//   Driving2 (N=6, M=2, 640x480)  — the SAME video re-encoded with a
//                                   different coding pattern.
//   Tennis   (N=9, M=3, 640x480)  — no scene change; motion grows gradually
//                                   as the instructor gets up; two isolated
//                                   large P pictures in the first half.
//   Backyard (N=12, M=3, 352x288) — two scene changes, complex backgrounds,
//                                   slow motion; the easiest to smooth.
//
// All sequences run at 30 pictures/s and last 10-12 seconds. Calibration
// targets from the paper: I pictures ~200-300 kbit at 640x480 (an order of
// magnitude above B pictures), smoothed rates spanning roughly 1-3 Mbps for
// the 640x480 sequences and peaking near 1.5 Mbps for Backyard.
#pragma once

#include <vector>

#include "trace/synthetic.h"
#include "trace/trace.h"

namespace lsm::trace {

/// The shared scene script for the Driving video (used by both encodings).
SyntheticConfig driving_config();

Trace driving1();  ///< Driving encoded with N=9, M=3.
Trace driving2();  ///< Driving encoded with N=6, M=2.
Trace tennis();    ///< Tennis, N=9, M=3.
Trace backyard();  ///< Backyard, N=12, M=3.

/// All four sequences in the paper's order.
std::vector<Trace> paper_sequences();

}  // namespace lsm::trace
