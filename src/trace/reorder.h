// Display-order <-> coded-order (transmission-order) conversion.
//
// B pictures reference a future anchor, so the anchor must be transmitted
// before the B pictures that precede it in display order (paper, Section 2):
//
//   display:  I B B P B B P B B I B B P ...
//   coded:    I P B B P B B I B B P B B ...
//
// The smoothing experiments in the paper operate on the picture sequence in
// the order the encoder emits it; these helpers let callers work in either
// order and convert traces between them.
#pragma once

#include <vector>

#include "trace/trace.h"

namespace lsm::trace {

/// Permutation from coded position k (0-based) to display index (0-based):
/// the k-th transmitted picture is display picture perm[k]. Works for any
/// type sequence, including irregular ones.
std::vector<int> display_to_coded_permutation(
    const std::vector<PictureType>& display_types);

/// Inverse permutation: display position -> coded position (0-based).
std::vector<int> coded_position_of_display(
    const std::vector<PictureType>& display_types);

/// Returns `display_trace` with pictures rearranged into coded order.
Trace to_coded_order(const Trace& display_trace);

}  // namespace lsm::trace
