#include "trace/synthetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/rng.h"

namespace lsm::trace {

namespace {

double clamp01(double x) noexcept { return std::clamp(x, 0.0, 1.0); }

/// Display index (1-based) of the reference anchor preceding picture i, for
/// the regular pattern. Anchors (I or P) sit at phases 0, M, 2M, ...
int previous_anchor(int i, const GopPattern& pattern) noexcept {
  const int offset = pattern.phase_of(i) % pattern.M();
  return i - (offset == 0 ? pattern.M() : offset);
}

}  // namespace

VideoProcess expand_process(const SyntheticConfig& config) {
  if (config.scenes.empty()) {
    throw std::invalid_argument("expand_process: scene script is empty");
  }
  VideoProcess process;
  sim::Rng rng(config.seed);
  double wander = 0.0;
  int scene_index = 0;
  for (const SceneSpec& scene : config.scenes) {
    if (scene.frames < 1 || scene.complexity <= 0.0) {
      throw std::invalid_argument("expand_process: invalid scene spec");
    }
    for (int f = 0; f < scene.frames; ++f) {
      const double progress =
          scene.frames > 1 ? static_cast<double>(f) / (scene.frames - 1) : 0.0;
      wander = 0.9 * wander + rng.normal(0.0, config.complexity_wander);
      process.complexity.push_back(scene.complexity * std::exp(wander));
      process.motion.push_back(clamp01(scene.motion_begin +
                                       progress * (scene.motion_end -
                                                   scene.motion_begin)));
      process.scene_of.push_back(scene_index);
    }
    ++scene_index;
  }
  // Apply motion spikes on top of the scene script.
  for (const MotionSpike& spike : config.spikes) {
    const int half = spike.width / 2;
    for (int f = spike.frame - half; f <= spike.frame + half; ++f) {
      if (f < 1 || f > static_cast<int>(process.motion.size())) continue;
      auto& m = process.motion[static_cast<std::size_t>(f - 1)];
      m = clamp01(std::max(m, spike.magnitude));
    }
  }
  return process;
}

Trace synthesize(const SyntheticConfig& config, const GopPattern& pattern) {
  const VideoProcess process = expand_process(config);
  const int frames = static_cast<int>(process.complexity.size());
  const double pixels =
      static_cast<double>(config.width) * static_cast<double>(config.height);

  // Each (pattern, seed) combination is a distinct "encoding run" of the same
  // video, so the per-picture coding noise stream is keyed on the pattern.
  sim::Rng noise(config.seed ^
                 (static_cast<std::uint64_t>(pattern.N()) * 1000003ULL +
                  static_cast<std::uint64_t>(pattern.M())));

  auto scene_at = [&process, frames](int f) {
    const int clamped = std::clamp(f, 1, frames);
    return process.scene_of[static_cast<std::size_t>(clamped - 1)];
  };

  std::vector<Bits> sizes;
  sizes.reserve(static_cast<std::size_t>(frames));
  for (int i = 1; i <= frames; ++i) {
    const double c = process.complexity[static_cast<std::size_t>(i - 1)];
    const double m = process.motion[static_cast<std::size_t>(i - 1)];
    const double intra_cost = config.bits_per_pixel_intra * c * pixels;

    const PictureType type = pattern.type_of(i);
    double m_eff = m;
    if (type == PictureType::P) {
      // Reference across a scene change: motion compensation fails, most
      // macroblocks revert to intra coding.
      if (scene_at(previous_anchor(i, pattern)) != scene_at(i)) m_eff = 0.95;
    } else if (type == PictureType::B) {
      const int prev = previous_anchor(i, pattern);
      const int next = prev + pattern.M();
      const bool prev_crosses = scene_at(prev) != scene_at(i);
      const bool next_crosses = scene_at(next) != scene_at(i);
      if (prev_crosses && next_crosses) {
        m_eff = 0.9;  // no usable reference on either side
      } else if (prev_crosses || next_crosses) {
        // One-sided prediction still works; interpolation does not.
        m_eff = std::max(m, 0.5);
      }
    }

    double factor = 1.0;
    switch (type) {
      case PictureType::I:
        factor = 1.0;
        break;
      case PictureType::P:
        factor = std::min(1.0, config.p_floor + config.p_gain * m_eff);
        break;
      case PictureType::B:
        factor = std::min(1.0, config.b_floor + config.b_gain * m_eff);
        break;
    }

    const double jitter = noise.lognormal(0.0, config.noise_sigma);
    const double bits = intra_cost * factor * jitter;
    sizes.push_back(std::max<Bits>(200, static_cast<Bits>(std::llround(bits))));
  }

  return Trace(config.name, pattern, std::move(sizes), kDefaultTau,
               config.width, config.height);
}

}  // namespace lsm::trace
