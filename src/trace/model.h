// Statistical trace model: fit a compact generative model to a measured
// picture-size trace and synthesize arbitrarily long traces with the same
// structure. This is the workload-generator counterpart of the calibrated
// scene scripts in sequences.h: where those encode a *description* of a
// video, TraceModel encodes a *measurement*.
//
// Model: the sizes at each pattern phase (0..N-1) form a stationary
// lognormal AR(1) process — log S is Gaussian with per-phase mean and
// standard deviation, and consecutive same-phase pictures correlate with a
// per-phase coefficient. Same-phase autocorrelation is precisely the
// property the paper's S_{j-N} estimator exploits, so traces generated from
// a fitted model exercise the estimator the way the source trace does.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.h"

namespace lsm::trace {

/// Per-phase parameters of the fitted process.
struct PhaseStats {
  double log_mean = 0.0;
  double log_sd = 0.0;
  double ar1 = 0.0;  ///< lag-1 autocorrelation of same-phase log sizes
};

class TraceModel {
 public:
  /// Fits a model to `trace`. Requires at least three full patterns.
  /// Throws std::invalid_argument otherwise.
  static TraceModel fit(const Trace& trace);

  /// Generates `picture_count` pictures. Deterministic per seed.
  Trace generate(int picture_count, std::uint64_t seed) const;

  const GopPattern& pattern() const noexcept { return pattern_; }
  const std::vector<PhaseStats>& by_phase() const noexcept {
    return by_phase_;
  }

 private:
  GopPattern pattern_{9, 3};
  double tau_ = kDefaultTau;
  int width_ = 0;
  int height_ = 0;
  std::string source_name_;
  std::vector<PhaseStats> by_phase_;
};

}  // namespace lsm::trace
