#include "trace/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

namespace lsm::trace {

namespace {

SizeSummary summarize(const std::vector<Bits>& values) {
  SizeSummary out;
  out.count = static_cast<int>(values.size());
  if (values.empty()) return out;
  out.min = std::numeric_limits<Bits>::max();
  out.max = std::numeric_limits<Bits>::min();
  double sum = 0.0;
  for (const Bits v : values) {
    out.min = std::min(out.min, v);
    out.max = std::max(out.max, v);
    sum += static_cast<double>(v);
  }
  out.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (const Bits v : values) {
    const double d = static_cast<double>(v) - out.mean;
    sq += d * d;
  }
  out.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return out;
}

}  // namespace

TraceStats compute_stats(const Trace& trace) {
  TraceStats stats;
  std::vector<Bits> all(trace.sizes());
  std::vector<Bits> per_type[3];
  for (int i = 1; i <= trace.picture_count(); ++i) {
    per_type[static_cast<int>(trace.type_of(i))].push_back(trace.size_of(i));
  }
  stats.overall = summarize(all);
  for (int t = 0; t < 3; ++t) stats.by_type[t] = summarize(per_type[t]);

  if (stats.overall.mean > 0.0) {
    stats.peak_to_mean =
        static_cast<double>(stats.overall.max) / stats.overall.mean;
  }
  const double b_mean = stats.of(PictureType::B).mean;
  if (b_mean > 0.0) {
    stats.i_to_b_ratio = stats.of(PictureType::I).mean / b_mean;
  }
  stats.mean_rate_bps = trace.mean_rate();
  stats.unsmoothed_peak_bps =
      static_cast<double>(stats.overall.max) / trace.tau();
  return stats;
}

std::string to_string(const TraceStats& stats) {
  std::ostringstream os;
  auto row = [&os](const char* label, const SizeSummary& s) {
    os << "  " << label << ": count=" << s.count << " min=" << s.min
       << " max=" << s.max << " mean=" << static_cast<Bits>(s.mean)
       << " sd=" << static_cast<Bits>(s.stddev) << " bits\n";
  };
  row("all", stats.overall);
  row("I  ", stats.of(PictureType::I));
  row("P  ", stats.of(PictureType::P));
  row("B  ", stats.of(PictureType::B));
  os << "  peak/mean=" << stats.peak_to_mean
     << " I/B=" << stats.i_to_b_ratio
     << " mean_rate=" << stats.mean_rate_bps / 1e6 << " Mbps"
     << " unsmoothed_peak=" << stats.unsmoothed_peak_bps / 1e6 << " Mbps\n";
  return os.str();
}

}  // namespace lsm::trace
