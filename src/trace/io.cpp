#include "trace/io.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lsm::trace {

namespace {

PictureType type_from_char(char c) {
  switch (c) {
    case 'I': return PictureType::I;
    case 'P': return PictureType::P;
    case 'B': return PictureType::B;
    default:
      throw std::runtime_error(std::string("load_trace: bad picture type '") +
                               c + "'");
  }
}

/// Reads the next non-comment, non-blank line.
bool next_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos) continue;
    if (line[pos] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

void save_trace(const Trace& trace, std::ostream& out) {
  out << "lsm-trace 1\n";
  out << "name " << trace.name() << "\n";
  out << "pattern " << trace.pattern().to_string() << "\n";
  out << "tau " << std::setprecision(12) << trace.tau() << "\n";
  out << "resolution " << trace.width() << " " << trace.height() << "\n";
  out << "pictures " << trace.picture_count() << "\n";
  for (int i = 1; i <= trace.picture_count(); ++i) {
    out << i << " " << to_char(trace.type_of(i)) << " " << trace.size_of(i)
        << "\n";
  }
}

void save_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_trace_file: cannot open " + path);
  save_trace(trace, out);
  if (!out) throw std::runtime_error("save_trace_file: write failed: " + path);
}

Trace load_trace(std::istream& in) {
  std::string line;
  auto expect = [&](const std::string& keyword) -> std::istringstream {
    if (!next_line(in, line)) {
      throw std::runtime_error("load_trace: unexpected end of input, wanted " +
                               keyword);
    }
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (word != keyword) {
      throw std::runtime_error("load_trace: expected '" + keyword +
                               "', found '" + word + "'");
    }
    return ls;
  };

  {
    auto ls = expect("lsm-trace");
    int version = 0;
    ls >> version;
    if (version != 1) throw std::runtime_error("load_trace: bad version");
  }
  std::string name;
  expect("name") >> name;
  std::string pattern_string;
  expect("pattern") >> pattern_string;
  double tau = 0.0;
  expect("tau") >> tau;
  int width = 0, height = 0;
  expect("resolution") >> width >> height;
  int count = 0;
  expect("pictures") >> count;
  if (count < 1) throw std::runtime_error("load_trace: bad picture count");

  std::vector<Bits> sizes;
  std::vector<PictureType> types;
  sizes.reserve(static_cast<std::size_t>(count));
  types.reserve(static_cast<std::size_t>(count));
  for (int i = 1; i <= count; ++i) {
    if (!next_line(in, line)) {
      throw std::runtime_error("load_trace: missing picture line");
    }
    std::istringstream ls(line);
    int index = 0;
    char type_char = 0;
    Bits bits = 0;
    if (!(ls >> index >> type_char >> bits) || index != i) {
      throw std::runtime_error("load_trace: malformed picture line: " + line);
    }
    types.push_back(type_from_char(type_char));
    sizes.push_back(bits);
  }

  return Trace(name, GopPattern::parse(pattern_string), std::move(sizes),
               std::move(types), tau, width, height);
}

Trace load_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace_file: cannot open " + path);
  return load_trace(in);
}

}  // namespace lsm::trace
