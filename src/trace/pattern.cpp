#include "trace/pattern.h"

#include <stdexcept>

namespace lsm::trace {

char to_char(PictureType type) noexcept {
  switch (type) {
    case PictureType::I: return 'I';
    case PictureType::P: return 'P';
    case PictureType::B: return 'B';
  }
  return '?';
}

GopPattern::GopPattern(int N, int M) : n_(N), m_(M) {
  if (N < 1 || M < 1 || M > N || N % M != 0) {
    throw std::invalid_argument(
        "GopPattern: requires 1 <= M <= N and N % M == 0");
  }
}

PictureType GopPattern::type_of(int i) const noexcept {
  const int phase = phase_of(i);
  if (phase == 0) return PictureType::I;
  if (phase % m_ == 0) return PictureType::P;
  return PictureType::B;
}

int GopPattern::phase_of(int i) const noexcept {
  // 1-based picture 1 has phase 0. Negative/zero indices are not meaningful
  // but map consistently for defensive callers.
  const int zero_based = i - 1;
  const int phase = zero_based % n_;
  return phase < 0 ? phase + n_ : phase;
}

int GopPattern::count_of(PictureType type) const noexcept {
  switch (type) {
    case PictureType::I: return 1;
    case PictureType::P: return n_ / m_ - 1;
    case PictureType::B: return n_ - n_ / m_;
  }
  return 0;
}

std::string GopPattern::to_string() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(n_));
  for (int i = 1; i <= n_; ++i) out.push_back(to_char(type_of(i)));
  return out;
}

GopPattern GopPattern::parse(const std::string& pattern) {
  if (pattern.empty() || pattern.front() != 'I') {
    throw std::invalid_argument("GopPattern::parse: must begin with 'I'");
  }
  const int n = static_cast<int>(pattern.size());
  // M is the index of the first reference picture after the leading I; if
  // there is none, every non-I picture would be B, which is only valid for
  // the degenerate all-I pattern "I" (N = M = 1).
  int m = n;
  for (int p = 1; p < n; ++p) {
    const char c = pattern[static_cast<std::size_t>(p)];
    if (c == 'P') {
      m = p;
      break;
    }
    if (c != 'B') {
      throw std::invalid_argument("GopPattern::parse: invalid character");
    }
  }
  GopPattern result(n, m);
  if (result.to_string() != pattern) {
    throw std::invalid_argument(
        "GopPattern::parse: string is not a valid (N, M) pattern: " + pattern);
  }
  return result;
}

}  // namespace lsm::trace
