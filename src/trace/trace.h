// A picture-size trace: the sequence S_1, S_2, ... of coded picture sizes for
// one video sequence, together with its GOP pattern and metadata. This is the
// sole input the smoothing algorithm consumes.
#pragma once

#include <string>
#include <vector>

#include "trace/pattern.h"

namespace lsm::trace {

/// Default picture period used throughout the paper: 30 pictures/s.
inline constexpr double kDefaultTau = 1.0 / 30.0;

/// Immutable picture-size trace. Picture indices are 1-based as in the paper.
///
/// Picture types are stored explicitly so that sequences with mid-stream
/// pattern changes (an MPEG encoder may change M and N adaptively, Section
/// 4.4) can be represented; for ordinary traces the types simply follow the
/// pattern.
class Trace {
 public:
  /// Builds a trace whose types follow `pattern`. Throws
  /// std::invalid_argument if sizes is empty, any size is <= 0, or tau <= 0.
  Trace(std::string name, GopPattern pattern, std::vector<Bits> sizes,
        double tau = kDefaultTau, int width = 0, int height = 0);

  /// Builds a trace with explicit per-picture types (sizes and types must
  /// have equal length). `pattern` is retained as the nominal pattern used
  /// for size estimation.
  Trace(std::string name, GopPattern pattern, std::vector<Bits> sizes,
        std::vector<PictureType> types, double tau = kDefaultTau,
        int width = 0, int height = 0);

  const std::string& name() const noexcept { return name_; }
  const GopPattern& pattern() const noexcept { return pattern_; }
  double tau() const noexcept { return tau_; }
  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

  /// Number of pictures n.
  int picture_count() const noexcept { return static_cast<int>(sizes_.size()); }

  /// Size S_i in bits of 1-based picture i. Requires 1 <= i <= count.
  Bits size_of(int i) const;

  /// Type of 1-based picture i. Requires 1 <= i <= count.
  PictureType type_of(int i) const;

  /// Duration n * tau of the sequence in seconds.
  double duration() const noexcept {
    return static_cast<double>(sizes_.size()) * tau_;
  }

  /// Sum of all picture sizes in bits.
  Bits total_bits() const noexcept;

  /// Long-run average bit rate total_bits / duration, in bits/s.
  double mean_rate() const noexcept;

  const std::vector<Bits>& sizes() const noexcept { return sizes_; }
  const std::vector<PictureType>& types() const noexcept { return types_; }

  /// Copy of this trace restricted to pictures [first, last] (1-based,
  /// inclusive). The slice must begin on a pattern boundary for the nominal
  /// pattern to remain meaningful; this is not enforced.
  Trace slice(int first, int last) const;

  /// Copy with every size multiplied by `factor` (> 0), e.g. to model a
  /// different quantizer operating point. Sizes round to >= 1 bit.
  Trace scaled(double factor) const;

 private:
  std::string name_;
  GopPattern pattern_;
  std::vector<Bits> sizes_;
  std::vector<PictureType> types_;
  double tau_;
  int width_;
  int height_;
};

/// Concatenates two traces into one sequence — the situation of Section 4.4
/// where "an MPEG encoder may change the values of M and N adaptively as
/// the scene changes". The result carries explicit per-picture types (the
/// type sequence of `first` followed by that of `second`) and `first`'s
/// nominal pattern; the basic algorithm does not depend on M and uses N
/// only for size estimation, so smoothing remains correct across the
/// switch (see the pattern-switch tests and bench). Picture periods must
/// match. Throws std::invalid_argument otherwise.
Trace concat(const Trace& first, const Trace& second);

}  // namespace lsm::trace
