// Scene-process synthetic trace generator.
//
// The paper's experiments use four MPEG sequences encoded at UT Austin from
// captured video; we do not have those tapes. This module substitutes a
// generative model of the *video*, not of the size sequence directly: each
// display frame f carries a scene complexity c_f and a motion level m_f drawn
// from a scene script (piecewise levels, ramps, isolated motion spikes, and
// scene changes). Picture sizes are then derived from (c_f, m_f) and the GOP
// pattern the way an interframe coder behaves:
//
//   intra cost   = bits_per_pixel_intra * c_f * pixels
//   I size       = intra cost
//   P size       = intra cost * min(1, p_floor + p_gain * m_eff)
//   B size       = intra cost * min(1, b_floor + b_gain * m_eff)
//
// where m_eff is the motion level, overridden toward 1 for predicted pictures
// whose reference lies across a scene change (motion compensation fails and
// most macroblocks fall back to intra coding). Multiplicative lognormal noise
// models residual per-picture variability, and a slow AR(1) wander models
// within-scene complexity drift.
//
// Because (c_f, m_f) is generated first and the pattern is applied second,
// re-running one script with different (N, M) models re-encoding the *same*
// video with different coding parameters — exactly how the paper produced
// Driving1 (N=9, M=3) and Driving2 (N=6, M=2) from one tape.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/pattern.h"
#include "trace/trace.h"

namespace lsm::trace {

/// One homogeneous scene in the script. Motion ramps linearly from
/// motion_begin to motion_end across the scene's frames.
struct SceneSpec {
  int frames = 0;             ///< scene length in display frames (>= 1)
  double complexity = 1.0;    ///< relative spatial complexity (> 0)
  double motion_begin = 0.0;  ///< motion level in [0, 1] at scene start
  double motion_end = 0.0;    ///< motion level in [0, 1] at scene end
};

/// An isolated burst of motion (e.g. the two isolated large P pictures in
/// the Tennis sequence): motion is raised to `magnitude` for `width` frames
/// centered at `frame` (1-based display frame index).
struct MotionSpike {
  int frame = 0;
  int width = 1;
  double magnitude = 1.0;
};

/// Full description of a synthetic sequence.
struct SyntheticConfig {
  std::string name = "synthetic";
  int width = 640;
  int height = 480;
  std::vector<SceneSpec> scenes;   ///< at least one scene required
  std::vector<MotionSpike> spikes; ///< optional motion events

  /// Coder model constants (see file comment).
  double bits_per_pixel_intra = 0.70;
  double p_floor = 0.16;
  double p_gain = 0.42;
  double b_floor = 0.055;
  double b_gain = 0.22;

  /// Per-picture multiplicative lognormal noise sigma (log-space).
  double noise_sigma = 0.06;
  /// AR(1) within-scene complexity wander: c *= exp(w), w ~ AR(1) with this
  /// innovation sigma and pole 0.9.
  double complexity_wander = 0.015;

  std::uint64_t seed = 1;
};

/// The per-frame video process, exposed so tests can validate the model and
/// so Driving1/Driving2 can be shown to share one underlying video.
struct VideoProcess {
  std::vector<double> complexity;  ///< c_f, one per display frame
  std::vector<double> motion;      ///< m_f in [0, 1], one per display frame
  std::vector<int> scene_of;       ///< 0-based scene index per frame
};

/// Expands the scene script into the per-frame process. Deterministic given
/// config.seed. Throws std::invalid_argument on an empty/invalid script.
VideoProcess expand_process(const SyntheticConfig& config);

/// Generates the picture-size trace for `pattern` applied to the config's
/// video process. Deterministic given (config, pattern).
Trace synthesize(const SyntheticConfig& config, const GopPattern& pattern);

}  // namespace lsm::trace
