// Plain-text trace serialization, so traces can be exported for plotting,
// archived, or loaded from externally measured MPEG streams.
//
// Format (one directive per line; '#' begins a comment):
//
//   lsm-trace 1
//   name Driving1
//   pattern IBBPBBPBB
//   tau 0.0333333333
//   resolution 640 480
//   pictures 300
//   1 I 214332
//   2 B 18997
//   ...
//
// Picture lines are "<index> <type> <bits>"; indices must be 1..n in order.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace lsm::trace {

/// Writes `trace` to `out` in the format above.
void save_trace(const Trace& trace, std::ostream& out);

/// Writes `trace` to a file. Throws std::runtime_error on I/O failure.
void save_trace_file(const Trace& trace, const std::string& path);

/// Parses a trace from `in`. Throws std::runtime_error on malformed input.
Trace load_trace(std::istream& in);

/// Loads a trace from a file. Throws std::runtime_error on failure.
Trace load_trace_file(const std::string& path);

}  // namespace lsm::trace
