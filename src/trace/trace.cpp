#include "trace/trace.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace lsm::trace {

namespace {

std::vector<PictureType> types_from_pattern(const GopPattern& pattern,
                                            std::size_t count) {
  std::vector<PictureType> types;
  types.reserve(count);
  for (std::size_t i = 1; i <= count; ++i) {
    types.push_back(pattern.type_of(static_cast<int>(i)));
  }
  return types;
}

}  // namespace

Trace::Trace(std::string name, GopPattern pattern, std::vector<Bits> sizes,
             double tau, int width, int height)
    : Trace(std::move(name), pattern, std::move(sizes), {}, tau, width,
            height) {}

Trace::Trace(std::string name, GopPattern pattern, std::vector<Bits> sizes,
             std::vector<PictureType> types, double tau, int width, int height)
    : name_(std::move(name)),
      pattern_(pattern),
      sizes_(std::move(sizes)),
      types_(std::move(types)),
      tau_(tau),
      width_(width),
      height_(height) {
  if (sizes_.empty()) {
    throw std::invalid_argument("Trace: empty size sequence");
  }
  if (tau_ <= 0.0) {
    throw std::invalid_argument("Trace: picture period must be positive");
  }
  for (const Bits s : sizes_) {
    if (s <= 0) {
      throw std::invalid_argument("Trace: picture sizes must be positive");
    }
  }
  if (types_.empty()) {
    types_ = types_from_pattern(pattern_, sizes_.size());
  } else if (types_.size() != sizes_.size()) {
    throw std::invalid_argument("Trace: types/sizes length mismatch");
  }
}

Bits Trace::size_of(int i) const {
  if (i < 1 || i > picture_count()) {
    throw std::out_of_range("Trace::size_of: picture index out of range");
  }
  return sizes_[static_cast<std::size_t>(i - 1)];
}

PictureType Trace::type_of(int i) const {
  if (i < 1 || i > picture_count()) {
    throw std::out_of_range("Trace::type_of: picture index out of range");
  }
  return types_[static_cast<std::size_t>(i - 1)];
}

Bits Trace::total_bits() const noexcept {
  return std::accumulate(sizes_.begin(), sizes_.end(), Bits{0});
}

double Trace::mean_rate() const noexcept {
  return static_cast<double>(total_bits()) / duration();
}

Trace Trace::slice(int first, int last) const {
  if (first < 1 || last > picture_count() || first > last) {
    throw std::out_of_range("Trace::slice: invalid range");
  }
  const auto a = static_cast<std::size_t>(first - 1);
  const auto b = static_cast<std::size_t>(last);
  return Trace(name_ + "[" + std::to_string(first) + ":" +
                   std::to_string(last) + "]",
               pattern_,
               std::vector<Bits>(sizes_.begin() + a, sizes_.begin() + b),
               std::vector<PictureType>(types_.begin() + a, types_.begin() + b),
               tau_, width_, height_);
}

Trace Trace::scaled(double factor) const {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("Trace::scaled: factor must be > 0");
  }
  std::vector<Bits> sizes;
  sizes.reserve(sizes_.size());
  for (const Bits s : sizes_) {
    sizes.push_back(std::max<Bits>(
        1, static_cast<Bits>(std::llround(static_cast<double>(s) * factor))));
  }
  return Trace(name_ + ".scaled", pattern_, std::move(sizes),
               std::vector<PictureType>(types_), tau_, width_, height_);
}

Trace concat(const Trace& first, const Trace& second) {
  if (std::abs(first.tau() - second.tau()) > 1e-12) {
    throw std::invalid_argument("concat: picture periods differ");
  }
  std::vector<Bits> sizes = first.sizes();
  sizes.insert(sizes.end(), second.sizes().begin(), second.sizes().end());
  std::vector<PictureType> types = first.types();
  types.insert(types.end(), second.types().begin(), second.types().end());
  return Trace(first.name() + "+" + second.name(), first.pattern(),
               std::move(sizes), std::move(types), first.tau(), first.width(),
               first.height());
}

}  // namespace lsm::trace
