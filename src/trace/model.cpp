#include "trace/model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/rng.h"

namespace lsm::trace {

TraceModel TraceModel::fit(const Trace& trace) {
  const int n_phase = trace.pattern().N();
  if (trace.picture_count() < 3 * n_phase) {
    throw std::invalid_argument("TraceModel::fit: need >= 3 full patterns");
  }

  TraceModel model;
  model.pattern_ = trace.pattern();
  model.tau_ = trace.tau();
  model.width_ = trace.width();
  model.height_ = trace.height();
  model.source_name_ = trace.name();
  model.by_phase_.resize(static_cast<std::size_t>(n_phase));

  for (int phase = 0; phase < n_phase; ++phase) {
    std::vector<double> logs;
    for (int i = phase + 1; i <= trace.picture_count(); i += n_phase) {
      logs.push_back(std::log(static_cast<double>(trace.size_of(i))));
    }
    const auto count = static_cast<double>(logs.size());
    double mean = 0.0;
    for (const double v : logs) mean += v;
    mean /= count;
    double variance = 0.0;
    for (const double v : logs) variance += (v - mean) * (v - mean);
    variance /= count;
    // Lag-1 autocovariance of the same-phase series.
    double autocovariance = 0.0;
    for (std::size_t k = 1; k < logs.size(); ++k) {
      autocovariance += (logs[k] - mean) * (logs[k - 1] - mean);
    }
    autocovariance /= count - 1.0;

    PhaseStats& stats =
        model.by_phase_[static_cast<std::size_t>(phase)];
    stats.log_mean = mean;
    stats.log_sd = std::sqrt(variance);
    stats.ar1 = variance > 1e-12
                    ? std::clamp(autocovariance / variance, 0.0, 0.98)
                    : 0.0;
  }
  return model;
}

Trace TraceModel::generate(int picture_count, std::uint64_t seed) const {
  if (picture_count < 1) {
    throw std::invalid_argument("TraceModel::generate: bad picture count");
  }
  sim::Rng rng(seed);
  const int n_phase = pattern_.N();

  // One standardized AR(1) state per phase, warmed to stationarity.
  std::vector<double> state(static_cast<std::size_t>(n_phase));
  for (auto& z : state) z = rng.normal();

  std::vector<Bits> sizes;
  sizes.reserve(static_cast<std::size_t>(picture_count));
  for (int i = 1; i <= picture_count; ++i) {
    const auto phase = static_cast<std::size_t>(pattern_.phase_of(i));
    const PhaseStats& stats = by_phase_[phase];
    double& z = state[phase];
    // Stationary AR(1): z' = a z + sqrt(1 - a^2) e, keeps unit variance.
    z = stats.ar1 * z +
        std::sqrt(std::max(0.0, 1.0 - stats.ar1 * stats.ar1)) * rng.normal();
    const double log_size = stats.log_mean + stats.log_sd * z;
    sizes.push_back(std::max<Bits>(
        1, static_cast<Bits>(std::llround(std::exp(log_size)))));
  }
  return Trace(source_name_ + ".model", pattern_, std::move(sizes), tau_,
               width_, height_);
}

}  // namespace lsm::trace
