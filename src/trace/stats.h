// Descriptive statistics of a picture-size trace: overall and per picture
// type. Used by the sequence-inventory "table" bench and by tests that check
// the calibrated synthetic sequences match the paper's descriptions
// (I pictures roughly an order of magnitude larger than B pictures, etc.).
#pragma once

#include <array>
#include <string>

#include "trace/trace.h"

namespace lsm::trace {

/// Summary statistics over a set of picture sizes.
struct SizeSummary {
  int count = 0;
  Bits min = 0;
  Bits max = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
};

/// Per-trace statistics.
struct TraceStats {
  SizeSummary overall;
  SizeSummary by_type[3];  // indexed by static_cast<int>(PictureType)

  /// Peak-to-mean ratio of picture sizes.
  double peak_to_mean = 0.0;

  /// Ratio mean(I) / mean(B); the paper reports "an order of magnitude".
  double i_to_b_ratio = 0.0;

  /// Long-run average bit rate in bits/s.
  double mean_rate_bps = 0.0;

  /// Rate needed to send the largest picture in one picture period, bits/s —
  /// the unsmoothed peak requirement the paper's introduction computes.
  double unsmoothed_peak_bps = 0.0;

  const SizeSummary& of(PictureType type) const noexcept {
    return by_type[static_cast<int>(type)];
  }
};

/// Computes statistics for `trace`.
TraceStats compute_stats(const Trace& trace);

/// Multi-line human-readable rendering (used by tab_sequences bench).
std::string to_string(const TraceStats& stats);

}  // namespace lsm::trace
