#include "obs/trace_io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace lsm::obs {

namespace {

constexpr char kMagic[8] = {'L', 'S', 'M', 'T', 'R', 'C', '0', '1'};

struct FileHeader {
  char magic[8];
  std::uint32_t record_size;
  std::uint32_t count;
};
static_assert(sizeof(FileHeader) == 16, "header layout is the format");

}  // namespace

void canonical_sort(std::vector<TraceEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              if (x.stream != y.stream) return x.stream < y.stream;
              if (x.picture != y.picture) return x.picture < y.picture;
              if (x.seq != y.seq) return x.seq < y.seq;
              if (x.kind != y.kind) return x.kind < y.kind;
              return x.time < y.time;
            });
}

std::vector<TraceEvent> deterministic_events(
    const std::vector<TraceEvent>& events) {
  std::vector<TraceEvent> out;
  out.reserve(events.size());
  for (const TraceEvent& event : events) {
    if (deterministic_kind(static_cast<EventKind>(event.kind))) {
      out.push_back(event);
    }
  }
  return out;
}

std::string serialize(const std::vector<TraceEvent>& events) {
  std::string bytes;
  bytes.resize(events.size() * sizeof(TraceEvent));
  if (!events.empty()) {
    std::memcpy(bytes.data(), events.data(), bytes.size());
  }
  return bytes;
}

void save_trace_file(const std::string& path,
                     const std::vector<TraceEvent>& events) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("save_trace_file: cannot open " + path);
  }
  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.record_size = sizeof(TraceEvent);
  header.count = static_cast<std::uint32_t>(events.size());
  bool ok = std::fwrite(&header, sizeof header, 1, file) == 1;
  if (ok && !events.empty()) {
    ok = std::fwrite(events.data(), sizeof(TraceEvent), events.size(),
                     file) == events.size();
  }
  const bool closed = std::fclose(file) == 0;
  if (!ok || !closed) {
    throw std::runtime_error("save_trace_file: short write to " + path);
  }
}

std::vector<TraceEvent> load_trace_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw std::runtime_error("load_trace_file: cannot open " + path);
  }
  FileHeader header{};
  std::vector<TraceEvent> events;
  bool ok = std::fread(&header, sizeof header, 1, file) == 1 &&
            std::memcmp(header.magic, kMagic, sizeof kMagic) == 0 &&
            header.record_size == sizeof(TraceEvent);
  if (ok) {
    events.resize(header.count);
    if (header.count > 0) {
      ok = std::fread(events.data(), sizeof(TraceEvent), events.size(),
                      file) == events.size();
    }
  }
  std::fclose(file);
  if (!ok) {
    throw std::runtime_error("load_trace_file: bad trace file " + path);
  }
  return events;
}

}  // namespace lsm::obs
