#include "obs/tracer.h"

namespace lsm::obs {

namespace {

/// Cache of the calling thread's buffer in its owning tracer. The epoch
/// invalidates every thread's cache when any Tracer is destroyed, so a new
/// Tracer reusing the same address can never inherit a stale buffer.
struct ThreadCache {
  const Tracer* owner = nullptr;
  std::uint64_t epoch = 0;
  TraceBuffer* buffer = nullptr;
};

std::atomic<std::uint64_t> g_tracer_epoch{1};
thread_local ThreadCache t_cache;
thread_local std::uint32_t t_stream = 0;

}  // namespace

Tracer::Tracer() = default;

Tracer::~Tracer() {
  g_tracer_epoch.fetch_add(1, std::memory_order_relaxed);
}

Tracer& Tracer::global() noexcept {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_buffer_capacity(std::size_t events) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = events > 0 ? events : 1;
}

TraceBuffer* Tracer::local_buffer() noexcept {
  const std::uint64_t epoch = g_tracer_epoch.load(std::memory_order_relaxed);
  if (t_cache.owner == this && t_cache.epoch == epoch) {
    return t_cache.buffer;
  }
  // Cold path: first emission from this thread into this tracer (or a
  // tracer was destroyed since). Register a fresh buffer.
  TraceBuffer* buffer = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::make_unique<TraceBuffer>(capacity_));
    buffer = buffers_.back().get();
  }
  t_cache.owner = this;
  t_cache.epoch = epoch;
  t_cache.buffer = buffer;
  return buffer;
}

void Tracer::emit(const TraceEvent& event) noexcept {
  if (!enabled()) return;
  local_buffer()->try_push(event);
}

std::vector<TraceEvent> Tracer::drain() {
  std::vector<TraceEvent> events;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<TraceBuffer>& buffer : buffers_) {
    buffer->drain_into(events);
  }
  return events;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<TraceBuffer>& buffer : buffers_) {
    total += buffer->dropped();
  }
  return total;
}

void Tracer::clear() {
  std::vector<TraceEvent> discard;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<TraceBuffer>& buffer : buffers_) {
    discard.clear();
    buffer->drain_into(discard);
  }
}

std::uint32_t current_stream() noexcept { return t_stream; }

StreamScope::StreamScope(std::uint32_t stream) noexcept
    : previous_(t_stream) {
  t_stream = stream;
}

StreamScope::~StreamScope() { t_stream = previous_; }

const char* event_kind_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kNone:
      return "none";
    case EventKind::kPictureScheduled:
      return "picture_scheduled";
    case EventKind::kRateChange:
      return "rate_change";
    case EventKind::kBoundCrossing:
      return "bound_crossing";
    case EventKind::kRenegRequest:
      return "reneg_request";
    case EventKind::kRenegGrant:
      return "reneg_grant";
    case EventKind::kRenegDenial:
      return "reneg_denial";
    case EventKind::kRenegGiveUp:
      return "reneg_giveup";
    case EventKind::kFaultWindowOpen:
      return "fault_window_open";
    case EventKind::kFaultWindowClose:
      return "fault_window_close";
    case EventKind::kShardStart:
      return "shard_start";
    case EventKind::kShardEnd:
      return "shard_end";
    case EventKind::kStreamAdmit:
      return "stream_admit";
    case EventKind::kStreamDepart:
      return "stream_depart";
    case EventKind::kMuxEpoch:
      return "mux_epoch";
    case EventKind::kChannelState:
      return "channel_state";
    case EventKind::kLayerShed:
      return "layer_shed";
    case EventKind::kSloBreach:
      return "slo_breach";
  }
  return "unknown";
}

}  // namespace lsm::obs
