// Flight recorder: bounded retention of the last N trace events per
// stream, dumped automatically when something goes wrong — a delay bound
// overshoot (worst_delay_excess > 0), a renegotiation give-up in
// net/recovery, or a differential identity mismatch. The dump turns "one
// test failed" into a postmortem: the exact event sequence leading into
// the failure, per stream, with kind names and payloads.
//
// The recorder is disarmed by default and costs nothing until armed: it
// is a *consumer* of the Tracer's buffers (capture() drains them into the
// retention rings), never a hot-path participant. Arm it, run, and either
// trigger() fires on a fault or the retained events are simply discarded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.h"
#include "obs/tracer.h"

namespace lsm::obs {

class FlightRecorder {
 public:
  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder the built-in triggers fire.
  static FlightRecorder& global() noexcept;

  /// Starts retaining (and enables the tracer feeding it). `per_stream`
  /// is the ring depth: how many trailing events each stream keeps.
  void arm(std::size_t per_stream = 256, Tracer* tracer = nullptr);
  void disarm();
  bool armed() const;

  /// Dump destination: a file path (appended), or empty for stderr.
  void set_dump_path(std::string path);

  /// Pulls new events from the tracer into the retention rings.
  void capture();

  /// capture() + write a postmortem dump. No-op when disarmed. Returns
  /// true when a dump was written.
  bool trigger(std::string_view reason);

  /// Dumps written since arm() (tests assert on this).
  std::uint64_t dump_count() const;

  /// The retained trailing events of one stream, oldest first.
  std::vector<TraceEvent> retained(std::uint32_t stream) const;

 private:
  void write_dump(std::string_view reason);

  mutable std::mutex mutex_;
  Tracer* tracer_ = nullptr;
  bool armed_ = false;
  std::size_t per_stream_ = 256;
  std::string dump_path_;
  std::uint64_t dumps_ = 0;
  std::map<std::uint32_t, std::deque<TraceEvent>> rings_;
};

}  // namespace lsm::obs
