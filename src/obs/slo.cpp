#include "obs/slo.h"

#include <stdexcept>

#include "obs/flight_recorder.h"
#include "obs/json.h"

namespace lsm::obs {

namespace {

/// picture field of kSloBreach events: keeps service-level SLO events
/// disjoint from the statmux shard tracers, which share stream 0 with
/// picture = shard index.
constexpr std::uint32_t kSloPicture = 0xffffffffu;

}  // namespace

void SloSpec::validate() const {
  if (!(objective > 0.0) || !(objective < 1.0)) {
    throw std::invalid_argument("slo: objective must be in (0, 1)");
  }
  if (fast_window_epochs < 1 || slow_window_epochs < 1) {
    throw std::invalid_argument("slo: window sizes must be >= 1");
  }
  if (fast_window_epochs > slow_window_epochs) {
    throw std::invalid_argument(
        "slo: fast window must not exceed the slow window");
  }
  if (!(burn_threshold > 0.0)) {
    throw std::invalid_argument("slo: burn threshold must be > 0");
  }
}

SloTracker::SloTracker(SloSpec spec, Tracer* tracer,
                       FlightRecorder* recorder)
    : spec_(std::move(spec)),
      tracer_(tracer != nullptr ? tracer : &Tracer::global(), 0),
      recorder_(recorder != nullptr ? recorder
                                    : &FlightRecorder::global()) {
  spec_.validate();
  ring_.resize(static_cast<std::size_t>(spec_.slow_window_epochs));
}

const SloState& SloTracker::record_epoch(std::int64_t epoch,
                                         std::uint64_t good,
                                         std::uint64_t total) {
  if (epoch < 0) epoch = 0;
  const std::size_t slot =
      static_cast<std::size_t>(epoch) %
      static_cast<std::size_t>(spec_.slow_window_epochs);
  Cell& cell = ring_[slot];
  if (cell.epoch != epoch) {
    cell.epoch = epoch;
    cell.good = 0;
    cell.total = 0;
  }
  cell.good += good;
  cell.total += total;

  SloState next;
  next.epoch = epoch;
  next.breaches = state_.breaches;
  for (const Cell& c : ring_) {
    if (c.epoch < 0 || c.epoch > epoch) continue;
    const std::int64_t age = epoch - c.epoch;
    if (age < spec_.fast_window_epochs) {
      next.fast_good += c.good;
      next.fast_total += c.total;
    }
    if (age < spec_.slow_window_epochs) {
      next.slow_good += c.good;
      next.slow_total += c.total;
    }
  }
  const double budget = 1.0 - spec_.objective;
  if (next.fast_total > 0) {
    next.fast_burn =
        (static_cast<double>(next.fast_total - next.fast_good) /
         static_cast<double>(next.fast_total)) /
        budget;
  }
  if (next.slow_total > 0) {
    next.slow_burn =
        (static_cast<double>(next.slow_total - next.slow_good) /
         static_cast<double>(next.slow_total)) /
        budget;
  }
  next.breaching = next.fast_total > 0 && next.slow_total > 0 &&
                   next.fast_burn >= spec_.burn_threshold &&
                   next.slow_burn >= spec_.burn_threshold;
  if (next.breaching && !state_.breaching) {
    ++next.breaches;
    tracer_.emit(EventKind::kSloBreach, kSloPicture,
                 static_cast<double>(epoch), next.fast_burn, next.slow_burn,
                 static_cast<double>(next.breaches));
    recorder_->trigger("slo_breach:" + spec_.name);
  }
  state_ = next;
  return state_;
}

void write_slo_json(JsonWriter& json, const SloSpec& spec,
                    const SloState& state) {
  json.begin_object();
  json.key("name").value(spec.name);
  json.key("objective").value(spec.objective);
  json.key("fast_window").value(spec.fast_window_epochs);
  json.key("slow_window").value(spec.slow_window_epochs);
  json.key("burn_threshold").value(spec.burn_threshold);
  json.key("epoch").value(state.epoch);
  json.key("fast_good").value(state.fast_good);
  json.key("fast_total").value(state.fast_total);
  json.key("slow_good").value(state.slow_good);
  json.key("slow_total").value(state.slow_total);
  json.key("fast_burn").value(state.fast_burn);
  json.key("slow_burn").value(state.slow_burn);
  json.key("breaching").value(state.breaching);
  json.key("breaches").value(state.breaches);
  json.end_object();
}

}  // namespace lsm::obs
