#include "obs/timeseries.h"

#include <algorithm>
#include <stdexcept>

#include "obs/json.h"

namespace lsm::obs {

void TimeSeriesOptions::validate() const {
  if (window_count < 1) {
    throw std::invalid_argument("timeseries: window_count must be >= 1");
  }
  if (epochs_per_window < 1) {
    throw std::invalid_argument(
        "timeseries: epochs_per_window must be >= 1");
  }
  if (!(sum_scale > 0.0)) {
    throw std::invalid_argument("timeseries: sum_scale must be > 0");
  }
}

TimeSeries::TimeSeries(const TimeSeriesOptions& options)
    : options_(options) {
  options_.validate();
  ring_.resize(options_.window_count);
  if (options_.with_sketch) sketch_ring_.resize(options_.window_count);
}

void TimeSeries::record(std::int64_t epoch, double value) noexcept {
  if (epoch < 0) epoch = 0;
  const std::int64_t window = epoch / options_.epochs_per_window;
  const std::size_t slot =
      static_cast<std::size_t>(window) % options_.window_count;
  TimeSeriesWindow& cell = ring_[slot];
  if (cell.window != window) {
    cell = TimeSeriesWindow{};
    cell.window = window;
    if (options_.with_sketch) sketch_ring_[slot].reset();
  }
  ++cell.count;
  cell.sum_fp += std::llround(value * options_.sum_scale);
  if (cell.count == 1) {
    cell.min = value;
    cell.max = value;
  } else {
    if (value < cell.min) cell.min = value;
    if (value > cell.max) cell.max = value;
  }
  if (options_.with_sketch) sketch_ring_[slot].observe(value);
  if (window > latest_) latest_ = window;
}

void TimeSeries::snapshot(std::vector<TimeSeriesWindow>& out,
                          std::vector<QuantileSketch>* sketches) const {
  out.clear();
  if (sketches != nullptr) sketches->clear();
  if (latest_ < 0) return;
  const std::int64_t span =
      static_cast<std::int64_t>(options_.window_count);
  const std::int64_t first = std::max<std::int64_t>(0, latest_ - span + 1);
  for (std::int64_t window = first; window <= latest_; ++window) {
    const std::size_t slot =
        static_cast<std::size_t>(window) % options_.window_count;
    if (ring_[slot].window != window) continue;  // never written / lapped
    out.push_back(ring_[slot]);
    if (sketches != nullptr && options_.with_sketch) {
      sketches->push_back(sketch_ring_[slot]);
    }
  }
}

void write_series_json(JsonWriter& json, const TimeSeriesOptions& options,
                       const std::vector<TimeSeriesWindow>& windows,
                       const std::vector<QuantileSketch>* sketches) {
  json.begin_object();
  json.key("window_epochs").value(options.epochs_per_window);
  json.key("scale").value(options.sum_scale);
  json.key("windows").begin_array();
  for (std::size_t k = 0; k < windows.size(); ++k) {
    const TimeSeriesWindow& window = windows[k];
    json.begin_object();
    json.key("w").value(window.window);
    json.key("count").value(window.count);
    json.key("sum").value(window.sum_fp);
    json.key("min").value(window.min);
    json.key("max").value(window.max);
    if (sketches != nullptr && k < sketches->size()) {
      const QuantileSketch& sketch = (*sketches)[k];
      json.key("p50").value(sketch.quantile(0.5));
      json.key("p99").value(sketch.quantile(0.99));
      json.key("p999").value(sketch.quantile(0.999));
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace lsm::obs
