// Tracer: the always-compiled structured-tracing handle.
//
// Instrumentation sites construct a StreamTracer (engine, streaming
// smoother, transport pipeline) and call emit(); when tracing is disabled
// — the default — emit() is a single relaxed atomic load and a predictable
// branch, cheap enough to live inside the per-picture scheduling loop
// (BM_TraceOverhead pins the cost, the CI baseline gates it). When
// enabled, events land in a lock-free per-thread SPSC TraceBuffer owned by
// the Tracer; drain() gathers every thread's events.
//
// Stream identity is ambient: the batch runtime wraps each job in a
// StreamScope(job_index), and any engine constructed inside picks the id
// up via current_stream(). That keeps core's constructors unchanged while
// making multi-stream traces attributable — and deterministic, because the
// scope is set by job, not by thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/event.h"
#include "obs/ring.h"

namespace lsm::obs {

class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer every default StreamTracer binds to.
  static Tracer& global() noexcept;

  /// The disabled check on the hot path: one relaxed load.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Capacity (events) of per-thread buffers created after this call.
  void set_buffer_capacity(std::size_t events);

  /// Records one event into the calling thread's buffer. No-op when
  /// disabled.
  void emit(const TraceEvent& event) noexcept;

  /// Gathers (and removes) every buffered event from every thread. Call
  /// after the producing work has been ordered before this thread (e.g.
  /// ThreadPool::wait_idle()); events emitted concurrently with drain()
  /// land in this or a later drain.
  std::vector<TraceEvent> drain();

  /// Total events dropped on full rings since construction.
  std::uint64_t dropped() const;

  /// Discards all buffered events.
  void clear();

 private:
  TraceBuffer* local_buffer() noexcept;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::size_t capacity_ = 1u << 16;
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
};

/// Ambient stream id for the calling thread (0 outside any StreamScope).
std::uint32_t current_stream() noexcept;

/// RAII ambient stream id: engines constructed inside the scope attribute
/// their events to `stream`. Nestable; restores the previous id on exit.
class StreamScope {
 public:
  explicit StreamScope(std::uint32_t stream) noexcept;
  ~StreamScope();
  StreamScope(const StreamScope&) = delete;
  StreamScope& operator=(const StreamScope&) = delete;

 private:
  std::uint32_t previous_;
};

/// Per-component emission handle: binds a tracer, a stream id, and the
/// per-stream sequence counter that makes event order reconstructible
/// after a multi-thread drain.
class StreamTracer {
 public:
  /// Binds to the global tracer and the ambient stream id.
  StreamTracer() noexcept
      : tracer_(&Tracer::global()), stream_(current_stream()) {}
  StreamTracer(Tracer* tracer, std::uint32_t stream) noexcept
      : tracer_(tracer), stream_(stream) {}

  /// True when emit() will record. The disabled path of emit() is exactly
  /// this check.
  bool on() const noexcept { return tracer_->enabled(); }

  std::uint32_t stream() const noexcept { return stream_; }

  void emit(EventKind kind, std::uint32_t picture, double time,
            double a = 0.0, double b = 0.0, double c = 0.0) noexcept {
    if (!on()) return;
    TraceEvent event;
    event.stream = stream_;
    event.picture = picture;
    event.kind = static_cast<std::uint16_t>(kind);
    event.seq = seq_++;
    event.time = time;
    event.a = a;
    event.b = b;
    event.c = c;
    tracer_->emit(event);
  }

 private:
  Tracer* tracer_;
  std::uint32_t stream_;
  std::uint32_t seq_ = 0;
};

}  // namespace lsm::obs
