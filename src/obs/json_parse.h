// Minimal JSON reader: the parsing counterpart of obs/json.h, used by
// tools that consume the library's own snapshot lines (lsm_top tails
// `# metrics:` / `# health:` streams) and by tests that want structured
// access to snapshot JSON without regex surgery.
//
// Scope is deliberately the subset obs/json.h emits: objects, arrays,
// strings with the writer's escapes, doubles (std::from_chars round-trip),
// booleans, null. Object member order is preserved — the writer emits
// sorted keys, and round-tripping must not reorder them.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lsm::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;  ///< kArray elements
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject

  bool is_object() const noexcept { return kind == Kind::kObject; }
  bool is_array() const noexcept { return kind == Kind::kArray; }
  bool is_number() const noexcept { return kind == Kind::kNumber; }
  bool is_string() const noexcept { return kind == Kind::kString; }

  /// Member lookup (linear; snapshot objects are small). Null when absent
  /// or not an object.
  const JsonValue* find(std::string_view key) const noexcept;

  /// The member's number, or `fallback` when absent / not a number.
  double number_or(std::string_view key, double fallback) const noexcept;
};

/// Parses one JSON document (leading/trailing whitespace allowed). Throws
/// std::runtime_error with an offset-bearing message on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace lsm::obs
