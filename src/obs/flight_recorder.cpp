#include "obs/flight_recorder.h"

#include <cstdio>
#include <cstdlib>

namespace lsm::obs {

FlightRecorder& FlightRecorder::global() noexcept {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::arm(std::size_t per_stream, Tracer* tracer) {
  const std::lock_guard<std::mutex> lock(mutex_);
  tracer_ = tracer != nullptr ? tracer : &Tracer::global();
  per_stream_ = per_stream > 0 ? per_stream : 1;
  armed_ = true;
  dumps_ = 0;
  rings_.clear();
  tracer_->set_enabled(true);
}

void FlightRecorder::disarm() {
  const std::lock_guard<std::mutex> lock(mutex_);
  armed_ = false;
  rings_.clear();
  tracer_ = nullptr;
}

bool FlightRecorder::armed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return armed_;
}

void FlightRecorder::set_dump_path(std::string path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  dump_path_ = std::move(path);
}

void FlightRecorder::capture() {
  std::vector<TraceEvent> events;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!armed_) return;
    events = tracer_->drain();
    for (const TraceEvent& event : events) {
      std::deque<TraceEvent>& ring = rings_[event.stream];
      ring.push_back(event);
      while (ring.size() > per_stream_) ring.pop_front();
    }
  }
}

bool FlightRecorder::trigger(std::string_view reason) {
  if (!armed()) return false;
  capture();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_) return false;
  write_dump(reason);
  ++dumps_;
  return true;
}

std::uint64_t FlightRecorder::dump_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dumps_;
}

std::vector<TraceEvent> FlightRecorder::retained(
    std::uint32_t stream) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = rings_.find(stream);
  if (it == rings_.end()) return {};
  return std::vector<TraceEvent>(it->second.begin(), it->second.end());
}

void FlightRecorder::write_dump(std::string_view reason) {
  std::FILE* out = stderr;
  bool close = false;
  // Explicit path wins; otherwise LSM_FLIGHT_DUMP redirects dumps to a
  // file — CI sets it so dumps from any test process land somewhere an
  // artifact upload can collect on failure.
  const char* path = dump_path_.c_str();
  if (dump_path_.empty()) {
    const char* env = std::getenv("LSM_FLIGHT_DUMP");
    path = (env != nullptr && env[0] != '\0') ? env : nullptr;
  }
  if (path != nullptr) {
    std::FILE* file = std::fopen(path, "a");
    if (file != nullptr) {
      out = file;
      close = true;
    }
  }
  std::fprintf(out,
               "=== lsm flight recorder dump (reason: %.*s) ===\n",
               static_cast<int>(reason.size()), reason.data());
  for (const auto& [stream, ring] : rings_) {
    std::fprintf(out, "stream %u: last %zu events\n", stream, ring.size());
    for (const TraceEvent& event : ring) {
      std::fprintf(
          out,
          "  t=%.6f %-18s picture=%u seq=%u a=%.6g b=%.6g c=%.6g\n",
          event.time,
          event_kind_name(static_cast<EventKind>(event.kind)),
          event.picture, event.seq, event.a, event.b, event.c);
    }
  }
  std::fprintf(out, "=== end of dump ===\n");
  if (close) {
    std::fclose(out);
  } else {
    std::fflush(out);
  }
}

}  // namespace lsm::obs
