// Minimal JSON writer: the single serialization path for every JSON blob
// the library emits (metrics snapshots, counter reports, chrome traces).
//
// Two properties the hand-rolled snprintf emitters it replaces did not
// have:
//
//   * Strings are escaped (quotes, backslashes, control characters), so a
//     trace name like `ad"hoc` can no longer corrupt a report.
//   * Doubles are formatted with std::to_chars shortest round-trip form:
//     parsing the output recovers the exact bit pattern, and the text is
//     as short as possible. Non-finite values (which JSON cannot
//     represent) serialize as null.
//
// The writer is a plain append-only builder over std::string with explicit
// begin/end calls; it does not validate nesting beyond comma placement.
// tools/validate_json.py parses every emitter's output with python's
// json.loads under ctest, which is the real conformance gate.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>
#include <system_error>

namespace lsm::obs {

/// Appends `text` JSON-escaped (without surrounding quotes) to `out`.
inline void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
}

/// Shortest round-trip-exact decimal form of `value`; "null" when the
/// value is not finite (NaN or infinity have no JSON representation).
inline std::string json_double(double value) {
  if (!(value == value) || value > 1.7976931348623157e308 ||
      value < -1.7976931348623157e308) {
    return "null";
  }
  char buffer[32];
  const std::to_chars_result result =
      std::to_chars(buffer, buffer + sizeof buffer, value);
  return std::string(buffer, result.ptr);
}

/// Streaming JSON builder with automatic comma placement.
class JsonWriter {
 public:
  JsonWriter& begin_object() {
    separate();
    out_ += '{';
    push(false);
    return *this;
  }
  JsonWriter& end_object() {
    out_ += '}';
    pop();
    return *this;
  }
  JsonWriter& begin_array() {
    separate();
    out_ += '[';
    push(false);
    return *this;
  }
  JsonWriter& end_array() {
    out_ += ']';
    pop();
    return *this;
  }

  /// Object key; the next value call supplies its value.
  JsonWriter& key(std::string_view name) {
    separate();
    out_ += '"';
    append_json_escaped(out_, name);
    out_ += "\": ";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view text) {
    separate();
    out_ += '"';
    append_json_escaped(out_, text);
    out_ += '"';
    return *this;
  }
  JsonWriter& value(const char* text) {
    return value(std::string_view(text));
  }
  JsonWriter& value(double number) {
    separate();
    out_ += json_double(number);
    return *this;
  }
  JsonWriter& value(std::uint64_t number) {
    separate();
    out_ += std::to_string(number);
    return *this;
  }
  JsonWriter& value(std::int64_t number) {
    separate();
    out_ += std::to_string(number);
    return *this;
  }
  JsonWriter& value(int number) {
    return value(static_cast<std::int64_t>(number));
  }
  JsonWriter& value(bool flag) {
    separate();
    out_ += flag ? "true" : "false";
    return *this;
  }
  JsonWriter& null() {
    separate();
    out_ += "null";
    return *this;
  }

  const std::string& str() const noexcept { return out_; }
  std::string take() { return std::move(out_); }

 private:
  /// Emits ", " before the second and later members of the current scope;
  /// a value directly following key() never takes a comma.
  void separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (depth_ > 0) {
      if ((need_comma_ >> (depth_ - 1)) & 1u) {
        out_ += ", ";
      } else {
        need_comma_ |= 1ull << (depth_ - 1);
      }
    }
  }
  void push(bool need_comma) {
    ++depth_;
    if (need_comma) {
      need_comma_ |= 1ull << (depth_ - 1);
    } else {
      need_comma_ &= ~(1ull << (depth_ - 1));
    }
  }
  void pop() {
    if (depth_ > 0) --depth_;
  }

  std::string out_;
  std::uint64_t need_comma_ = 0;  ///< one bit per nesting level (max 64)
  int depth_ = 0;
  bool pending_value_ = false;
};

}  // namespace lsm::obs
