// Lock-free single-producer/single-consumer ring buffer of TraceEvents.
//
// Each tracing thread owns exactly one TraceBuffer (the producer side);
// the draining thread is the single consumer. Memory ordering argument
// (DESIGN.md §3.5): the producer publishes a slot by storing tail_ with
// release order after writing the slot, and the consumer acquires tail_
// before reading, so slot contents are never read before they are fully
// written; symmetrically the consumer releases head_ after copying a slot
// out and the producer acquires head_ before overwriting, so a slot is
// never clobbered while the consumer still reads it. A full ring drops the
// new event (never blocks, never tears an old one) and counts the drop.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/event.h"

namespace lsm::obs {

class TraceBuffer {
 public:
  /// `capacity` is rounded up to a power of two (minimum 64).
  explicit TraceBuffer(std::size_t capacity) {
    std::size_t rounded = 64;
    while (rounded < capacity) rounded *= 2;
    slots_.resize(rounded);
    mask_ = rounded - 1;
  }

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer side. Returns false (and counts a drop) when full.
  bool try_push(const TraceEvent& event) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[static_cast<std::size_t>(tail) & mask_] = event;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: appends every buffered event to `out` and frees the
  /// slots. Returns the number of events drained.
  std::size_t drain_into(std::vector<TraceEvent>& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    for (std::uint64_t k = head; k != tail; ++k) {
      out.push_back(slots_[static_cast<std::size_t>(k) & mask_]);
    }
    head_.store(tail, std::memory_order_release);
    return static_cast<std::size_t>(tail - head);
  }

  /// Events rejected because the ring was full. Producer-written, safe to
  /// read from any thread (monotonic, relaxed).
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<TraceEvent> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer cursor
  alignas(64) std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace lsm::obs
