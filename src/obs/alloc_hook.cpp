#include "obs/alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::int64_t> g_alloc_count{0};

void* counted_malloc(std::size_t size) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void* counted_aligned(std::size_t size, std::size_t alignment) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  // Aligned operator new is only selected for over-aligned types, so
  // `alignment` is a power of two >= the default; posix_memalign
  // additionally wants a multiple of sizeof(void*), which such alignments
  // always are. free() releases posix_memalign storage, so the delete
  // overloads need no alignment bookkeeping.
  void* pointer = nullptr;
  if (posix_memalign(&pointer, alignment, size != 0 ? size : alignment) != 0) {
    return nullptr;
  }
  return pointer;
}

}  // namespace

namespace lsm::obs {

std::int64_t alloc_count() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace lsm::obs

void* operator new(std::size_t size) {
  if (void* pointer = counted_malloc(size)) return pointer;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* pointer = counted_malloc(size)) return pointer;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  if (void* pointer =
          counted_aligned(size, static_cast<std::size_t>(alignment))) {
    return pointer;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  if (void* pointer =
          counted_aligned(size, static_cast<std::size_t>(alignment))) {
    return pointer;
  }
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return counted_aligned(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return counted_aligned(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* pointer) noexcept { std::free(pointer); }
void operator delete[](void* pointer) noexcept { std::free(pointer); }
void operator delete(void* pointer, std::size_t) noexcept {
  std::free(pointer);
}
void operator delete[](void* pointer, std::size_t) noexcept {
  std::free(pointer);
}
void operator delete(void* pointer, const std::nothrow_t&) noexcept {
  std::free(pointer);
}
void operator delete[](void* pointer, const std::nothrow_t&) noexcept {
  std::free(pointer);
}
void operator delete(void* pointer, std::align_val_t) noexcept {
  std::free(pointer);
}
void operator delete[](void* pointer, std::align_val_t) noexcept {
  std::free(pointer);
}
void operator delete(void* pointer, std::size_t, std::align_val_t) noexcept {
  std::free(pointer);
}
void operator delete[](void* pointer, std::size_t, std::align_val_t) noexcept {
  std::free(pointer);
}
