#include "obs/metrics.h"

#include <cmath>

#include "obs/json.h"

namespace lsm::obs {

void HistogramMetric::observe(double seconds) noexcept {
  const bool faulty = !std::isfinite(seconds) || seconds < 0.0;
  if (faulty) seconds = 0.0;
  int index = 0;
  double bound = 0.001;
  while (index < kBuckets - 1 && seconds >= bound) {
    ++index;
    bound *= 2.0;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++data_.buckets[static_cast<std::size_t>(index)];
  ++data_.count;
  data_.clamped += faulty ? 1 : 0;
  if (seconds > data_.max_seconds) data_.max_seconds = seconds;
}

void HistogramMetric::merge(const std::uint64_t* buckets,
                            std::uint64_t count, std::uint64_t clamped,
                            double max_seconds) noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (int i = 0; i < kBuckets; ++i) {
    data_.buckets[static_cast<std::size_t>(i)] +=
        buckets[static_cast<std::size_t>(i)];
  }
  data_.count += count;
  data_.clamped += clamped;
  if (max_seconds > data_.max_seconds) data_.max_seconds = max_seconds;
}

HistogramMetric::Data HistogramMetric::data() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

Registry& Registry::global() noexcept {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

HistogramMetric& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<HistogramMetric>())
             .first;
  }
  return *it->second;
}

SketchMetric& Registry::sketch(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = sketches_.find(name);
  if (it == sketches_.end()) {
    it = sketches_.emplace(std::string(name), std::make_unique<SketchMetric>())
             .first;
  }
  return *it->second;
}

TimeSeriesMetric& Registry::timeseries(std::string_view name,
                                       const TimeSeriesOptions& options) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_
             .emplace(std::string(name),
                      std::make_unique<TimeSeriesMetric>(options))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  snap.seq = snapshot_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  snap.time_seconds = time_seconds_.load(std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back(
        MetricsSnapshot::Histogram{name, histogram->data()});
  }
  for (const auto& [name, sketch] : sketches_) {
    snap.sketches.push_back(MetricsSnapshot::Sketch{name, sketch->data()});
  }
  for (const auto& [name, series] : series_) {
    MetricsSnapshot::Series out;
    out.name = name;
    out.options = series->options();
    series->snapshot(out.windows, &out.window_sketches);
    snap.series.push_back(std::move(out));
  }
  return snap;
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("seq").value(seq);
  json.key("time_s").value(time_seconds);
  json.key("counters").begin_object();
  for (const auto& [name, value] : counters) {
    json.key(name).value(value);
  }
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, value] : gauges) {
    json.key(name).value(value);
  }
  json.end_object();
  json.key("histograms").begin_object();
  for (const Histogram& histogram : histograms) {
    json.key(histogram.name).begin_object();
    json.key("count").value(histogram.data.count);
    json.key("clamped").value(histogram.data.clamped);
    json.key("max_s").value(histogram.data.max_seconds);
    json.key("buckets").begin_array();
    for (const std::uint64_t bucket : histogram.data.buckets) {
      json.value(bucket);
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();
  json.key("sketches").begin_object();
  for (const Sketch& sketch : sketches) {
    json.key(sketch.name);
    write_sketch_json(json, sketch.data);
  }
  json.end_object();
  json.key("series").begin_object();
  for (const Series& entry : series) {
    json.key(entry.name);
    write_series_json(json, entry.options, entry.windows,
                      entry.options.with_sketch ? &entry.window_sketches
                                                : nullptr);
  }
  json.end_object();
  json.end_object();
  return json.take();
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; dots become underscores.
std::string prometheus_name(std::string_view name) {
  std::string out = "lsm_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_double(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  return json_double(value);
}

/// "# HELP name text\n" — emitted BEFORE the matching # TYPE line
/// (Prometheus convention). The help text names the dotted source metric,
/// which the exposition name mangles.
void append_help(std::string& out, const std::string& prom,
                 std::string_view kind, std::string_view source) {
  out += "# HELP " + prom + " lsm " + std::string(kind) + " '" +
         std::string(source) + "'\n";
}

/// One "# HELP/# TYPE/value" gauge triplet (the sketch-quantile and
/// series-window companions).
void append_gauge(std::string& out, const std::string& prom,
                  std::string_view help, double value) {
  out += "# HELP " + prom + " " + std::string(help) + "\n";
  out += "# TYPE " + prom + " gauge\n";
  out += prom + " " + prometheus_double(value) + "\n";
}

}  // namespace

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  append_help(out, "lsm_snapshot_seq", "snapshot sequence number",
              "registry");
  out += "# TYPE lsm_snapshot_seq counter\n";
  out += "lsm_snapshot_seq " + std::to_string(seq) + "\n";
  append_gauge(out, "lsm_snapshot_time_seconds",
               "simulated-time stamp of this snapshot", time_seconds);
  for (const auto& [name, value] : counters) {
    const std::string prom = prometheus_name(name);
    append_help(out, prom, "counter", name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string prom = prometheus_name(name);
    append_help(out, prom, "gauge", name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + prometheus_double(value) + "\n";
  }
  for (const Histogram& histogram : histograms) {
    const std::string prom = prometheus_name(histogram.name);
    append_help(out, prom, "histogram", histogram.name);
    out += "# TYPE " + prom + " histogram\n";
    double bound = 0.001;
    std::uint64_t cumulative = 0;
    for (int i = 0; i < HistogramMetric::kBuckets; ++i) {
      cumulative += histogram.data.buckets[static_cast<std::size_t>(i)];
      const std::string le =
          i < HistogramMetric::kBuckets - 1 ? prometheus_double(bound)
                                            : "+Inf";
      out += prom + "_bucket{le=\"" + le +
             "\"} " + std::to_string(cumulative) + "\n";
      bound *= 2.0;
    }
    out += prom + "_count " + std::to_string(histogram.data.count) + "\n";
    // The histogram tracks max and clamp counts, not a sum of samples:
    // expose them as companion gauges rather than faking a _sum.
    append_help(out, prom + "_max_seconds", "histogram max",
                histogram.name);
    out += "# TYPE " + prom + "_max_seconds gauge\n";
    out += prom + "_max_seconds " +
           prometheus_double(histogram.data.max_seconds) + "\n";
    append_help(out, prom + "_clamped", "histogram clamp count",
                histogram.name);
    out += "# TYPE " + prom + "_clamped counter\n";
    out += prom + "_clamped " + std::to_string(histogram.data.clamped) +
           "\n";
  }
  for (const Sketch& sketch : sketches) {
    const std::string prom = prometheus_name(sketch.name);
    append_help(out, prom + "_count", "sketch sample count", sketch.name);
    out += "# TYPE " + prom + "_count counter\n";
    out += prom + "_count " + std::to_string(sketch.data.count()) + "\n";
    append_help(out, prom + "_clamped", "sketch clamp count", sketch.name);
    out += "# TYPE " + prom + "_clamped counter\n";
    out += prom + "_clamped " + std::to_string(sketch.data.clamped()) +
           "\n";
    append_gauge(out, prom + "_min", "sketch min", sketch.data.min());
    append_gauge(out, prom + "_max", "sketch max", sketch.data.max());
    append_gauge(out, prom + "_p50", "sketch p50 quantile",
                 sketch.data.quantile(0.5));
    append_gauge(out, prom + "_p99", "sketch p99 quantile",
                 sketch.data.quantile(0.99));
    append_gauge(out, prom + "_p999", "sketch p999 quantile",
                 sketch.data.quantile(0.999));
  }
  for (const Series& entry : series) {
    // Prometheus is a point-in-time exposition: the newest window stands
    // for the series; full window history rides the JSON snapshot.
    const std::string prom = prometheus_name(entry.name);
    TimeSeriesWindow latest;
    const QuantileSketch* latest_sketch = nullptr;
    if (!entry.windows.empty()) {
      latest = entry.windows.back();
      if (entry.options.with_sketch &&
          entry.window_sketches.size() == entry.windows.size()) {
        latest_sketch = &entry.window_sketches.back();
      }
    }
    append_gauge(out, prom + "_window", "series newest window index",
                 static_cast<double>(latest.window));
    append_gauge(out, prom + "_count", "series newest window sample count",
                 static_cast<double>(latest.count));
    append_gauge(out, prom + "_sum", "series newest window sum",
                 static_cast<double>(latest.sum_fp) /
                     entry.options.sum_scale);
    append_gauge(out, prom + "_min", "series newest window min",
                 latest.min);
    append_gauge(out, prom + "_max", "series newest window max",
                 latest.max);
    if (latest_sketch != nullptr) {
      append_gauge(out, prom + "_p50", "series newest window p50",
                   latest_sketch->quantile(0.5));
      append_gauge(out, prom + "_p99", "series newest window p99",
                   latest_sketch->quantile(0.99));
      append_gauge(out, prom + "_p999", "series newest window p999",
                   latest_sketch->quantile(0.999));
    }
  }
  return out;
}

void publish_steady_allocs(Registry& registry, std::string_view subsystem,
                           std::int64_t count) {
  std::string name(subsystem);
  name += ".allocs_steady";
  registry.gauge(name).set(static_cast<double>(count));
}

void publish_shard_occupancy(Registry& registry, std::string_view subsystem,
                             double max_occupancy, double mean_occupancy) {
  std::string name(subsystem);
  name += ".shard.occupancy.max";
  registry.gauge(name).set(max_occupancy);
  name.assign(subsystem);
  name += ".shard.occupancy.imbalance";
  registry.gauge(name).set(
      mean_occupancy > 0.0 ? max_occupancy / mean_occupancy : 1.0);
}

}  // namespace lsm::obs
