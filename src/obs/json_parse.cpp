#include "obs/json_parse.h"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace lsm::obs {

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key,
                            double fallback) const noexcept {
  const JsonValue* value = find(key);
  return value != nullptr && value->kind == Kind::kNumber ? value->number
                                                          : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_space();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_space();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue value;
      value.kind = JsonValue::Kind::kString;
      value.string = parse_string();
      return value;
    }
    if (consume_literal("true")) {
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (consume_literal("false")) {
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      return value;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_space();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_space();
      std::string key = parse_string();
      skip_space();
      expect(':');
      value.members.emplace_back(std::move(key), parse_value());
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_space();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.items.push_back(parse_value());
      skip_space();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // The writer only emits \u00XX control escapes; decode the
          // Latin-1 range and pass anything wider through as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    const std::from_chars_result result = std::from_chars(
        text_.data() + start, text_.data() + pos_, value.number);
    if (result.ec != std::errc() || result.ptr != text_.data() + pos_) {
      fail("bad number");
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace lsm::obs
