#include "obs/chrome_trace.h"

#include <algorithm>

#include "obs/json.h"

namespace lsm::obs {

namespace {

/// Seconds -> chrome's microsecond timebase.
double to_us(double seconds) { return seconds * 1e6; }

void write_common(JsonWriter& json, const TraceEvent& event,
                  const char* phase) {
  json.key("name").value(
      event_kind_name(static_cast<EventKind>(event.kind)));
  json.key("ph").value(phase);
  json.key("ts").value(to_us(event.time));
  json.key("pid").value(static_cast<std::uint64_t>(event.stream));
  json.key("tid").value(std::uint64_t{0});
}

}  // namespace

std::string to_chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::vector<TraceEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     return x.time < y.time;
                   });
  JsonWriter json;
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("traceEvents").begin_array();
  for (const TraceEvent& event : sorted) {
    const EventKind kind = static_cast<EventKind>(event.kind);
    json.begin_object();
    if (kind == EventKind::kPictureScheduled) {
      // Complete slice from the decision instant t_i to the departure d_i.
      write_common(json, event, "X");
      json.key("dur").value(
          to_us(event.c > event.time ? event.c - event.time : 0.0));
      json.key("args").begin_object();
      json.key("picture").value(static_cast<std::uint64_t>(event.picture));
      json.key("rate_bps").value(event.a);
      json.key("delay_s").value(event.b);
      json.end_object();
    } else if (kind == EventKind::kShardStart ||
               kind == EventKind::kShardEnd) {
      write_common(json, event, "i");
      json.key("s").value("g");
      json.key("args").begin_object();
      json.key("first_job").value(event.a);
      json.key("last_job").value(event.b);
      json.end_object();
    } else {
      write_common(json, event, "i");
      json.key("s").value("t");
      json.key("args").begin_object();
      json.key("picture").value(static_cast<std::uint64_t>(event.picture));
      json.key("a").value(event.a);
      json.key("b").value(event.b);
      json.key("c").value(event.c);
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.take();
}

}  // namespace lsm::obs
