// Chrome trace_event exporter: converts a binary event stream into the
// JSON Array Format chrome://tracing (or Perfetto's legacy importer)
// loads directly. Picture sends become complete ("X") slices spanning
// t_i .. d_i on the stream's track; everything else becomes a
// thread-scoped instant ("i") mark, so bound crossings, renegotiation
// round-trips, and fault windows line up visually against the schedule.
#pragma once

#include <string>
#include <vector>

#include "obs/event.h"

namespace lsm::obs {

/// The full chrome://tracing JSON document for `events`.
std::string to_chrome_trace_json(const std::vector<TraceEvent>& events);

}  // namespace lsm::obs
