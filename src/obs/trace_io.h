// Binary trace persistence and canonical ordering.
//
// The on-disk format is deliberately dumb: a 16-byte header (magic,
// version, record size, count) followed by raw TraceEvent records in
// memory layout. It exists so a run's trace can be saved cheaply and
// post-processed offline (tools/lsm_trace converts it to chrome://tracing
// JSON or a per-picture timeline), and so the determinism differential
// can compare two runs byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.h"

namespace lsm::obs {

/// Sorts events into the canonical comparison order: (stream, picture,
/// seq, kind, time). Within one stream the per-stream seq already encodes
/// emission order; the sort makes multi-thread drains reproducible.
void canonical_sort(std::vector<TraceEvent>& events);

/// Events whose kinds are deterministic functions of the inputs (drops
/// shard start/end, whose timestamps are wall-clock). The determinism
/// differential compares exactly this subset.
std::vector<TraceEvent> deterministic_events(
    const std::vector<TraceEvent>& events);

/// The raw bytes of `events` back-to-back — the byte-identity comparison
/// form (and the file payload).
std::string serialize(const std::vector<TraceEvent>& events);

/// Writes header + records. Throws std::runtime_error on io failure.
void save_trace_file(const std::string& path,
                     const std::vector<TraceEvent>& events);

/// Reads a file written by save_trace_file. Throws std::runtime_error on
/// io failure, bad magic, or a record-size mismatch.
std::vector<TraceEvent> load_trace_file(const std::string& path);

}  // namespace lsm::obs
