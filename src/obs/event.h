// The structured trace event: one fixed-size binary record per observable
// action in the smoothing runtime (event taxonomy in DESIGN.md §3.5).
//
// Events are designed for the determinism gate first and dashboards
// second: every field of a schedule-level event is a pure function of the
// inputs (trace, parameters, seed), so the byte stream is identical across
// execution paths and thread counts once sorted by (stream, picture, seq).
// Runtime-level events (shard start/end) carry wall-clock time and are
// excluded from that comparison by kind — see deterministic_kind().
#pragma once

#include <cstdint>
#include <type_traits>

namespace lsm::obs {

/// What happened. Payload layout of TraceEvent::{a, b, c} per kind below.
enum class EventKind : std::uint16_t {
  kNone = 0,
  /// Picture i scheduled: a = rate r_i (bps), b = delay d_i - (i-1)tau (s),
  /// c = departure d_i (s). time = decision instant t_i.
  kPictureScheduled = 1,
  /// r_i differs from r_{i-1}: a = new rate, b = previous rate.
  kRateChange = 2,
  /// Figure 2 early exit — the Section 4.4 Theorem-1 bound crossing
  /// (lower > upper): a = clamped lower bound, b = clamped upper bound.
  kBoundCrossing = 3,
  /// Renegotiation request issued: a = requested rate (bps).
  kRenegRequest = 4,
  /// Request granted: a = granted rate, b = denied attempts before the
  /// grant. time = grant instant.
  kRenegGrant = 5,
  /// Request denied at least once: a = requested rate, b = denials so far.
  kRenegDenial = 6,
  /// Retry budget exhausted: a = requested rate, b = denied attempts.
  kRenegGiveUp = 7,
  /// Fault window opens: a = sim::FaultClass as double, b = window end
  /// time, c = magnitude.
  kFaultWindowOpen = 8,
  /// Fault window closes: a = sim::FaultClass as double.
  kFaultWindowClose = 9,
  /// Batch shard starts on a worker: a = first job index, b = one past the
  /// last job index. time = wall seconds (nondeterministic).
  kShardStart = 10,
  /// Batch shard finished: a = first job index, b = one past the last.
  kShardEnd = 11,
  /// Statmux stream admitted to a shard: a = shard index, b = nominal
  /// reserved rate (bps). time = admission epoch tick.
  kStreamAdmit = 12,
  /// Statmux stream departed (explicit or end-of-sequence): a = shard
  /// index, b = 1.0 when the stream finished its sequence, 0.0 on an
  /// explicit departure. time = departure epoch tick.
  kStreamDepart = 13,
  /// Statmux shard epoch completed: a = streams advanced this epoch
  /// (dirty set size), b = shard reserved rate after the epoch (bps),
  /// c = active streams on the shard. stream = 0, picture = shard index,
  /// time = epoch tick. Deterministic: every field is a function of the
  /// admission/feed inputs, never of thread timing.
  kMuxEpoch = 14,
  /// Block-fading channel entered a new state: a = state index, b =
  /// throughput factor of the state, c = sojourn end time. time =
  /// segment start.
  kChannelState = 15,
  /// Layered joint admission shed a layer for an interval: a = layer
  /// index, b = interval end time, c = joint demand (bps) that exceeded
  /// the cap. time = interval start, picture = 0.
  kLayerShed = 16,
  /// An SLO entered the breaching state (both burn-rate windows at or
  /// above the threshold, obs/slo.h): a = fast-window burn rate, b =
  /// slow-window burn rate, c = cumulative breach count. stream = 0,
  /// picture = 0xffffffff (disjoint from the statmux shard tracers),
  /// time = simulated epoch index. Deterministic: burn rates are
  /// divisions of partition-invariant integer tallies.
  kSloBreach = 17,
};

/// Human-readable kind name (chrome exporter, flight-recorder dumps).
const char* event_kind_name(EventKind kind) noexcept;

/// True for kinds whose every field is deterministic given the inputs;
/// false for runtime-timing kinds (shards), which the determinism
/// differential excludes before comparing.
constexpr bool deterministic_kind(EventKind kind) noexcept {
  return kind != EventKind::kShardStart && kind != EventKind::kShardEnd;
}

/// One fixed-size binary trace record. Plain data, 48 bytes, memcpy-safe:
/// the binary trace file format is the in-memory layout.
struct TraceEvent {
  std::uint32_t stream = 0;   ///< stream/job id (obs::current_stream())
  std::uint32_t picture = 0;  ///< 1-based picture index, 0 when n/a
  std::uint16_t kind = 0;     ///< EventKind
  std::uint16_t flags = 0;    ///< reserved (always 0 today)
  std::uint32_t seq = 0;      ///< per-stream emission order
  double time = 0.0;          ///< simulated seconds (wall for shard events)
  double a = 0.0;             ///< payload, see EventKind
  double b = 0.0;
  double c = 0.0;
};

static_assert(sizeof(TraceEvent) == 48,
              "TraceEvent is the on-disk record; keep it exactly 48 bytes");
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must stay memcpy-safe for binary trace io");

}  // namespace lsm::obs
