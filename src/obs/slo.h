// Declarative SLOs with multi-window burn-rate alerting (DESIGN.md §3.10).
//
// A spec names an objective over a good/total event ratio — e.g. "delay
// slack >= 0 for 99.9% of pictures" — and the tracker consumes one
// (good, total) pair per epoch. Alerting follows the standard two-window
// burn-rate recipe: the burn rate of a window is
//
//   burn = (bad / total) / (1 - objective)
//
// (1.0 = consuming the error budget exactly at the rate that exhausts it
// over the window), and the tracker is *breaching* while BOTH the fast
// and the slow window burn at or above the threshold — the fast window
// makes alerts responsive, the slow window keeps one bad epoch from
// paging. Entering the breaching state emits a kSloBreach trace event and
// trigger()s the FlightRecorder, turning a budget burn into a postmortem
// dump of the trailing per-stream events.
//
// Determinism: epoch tallies are integers keyed by simulated epoch, burn
// rates are single divisions of partition-invariant integers, so the
// state (and health_json snapshots of it) is byte-identical across shard
// counts, thread counts, and ExecutionPaths. The per-epoch ring is
// preallocated; record_epoch() allocates only when a breach fires (the
// trigger reason string), never in steady state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/tracer.h"

namespace lsm::obs {

class FlightRecorder;
class JsonWriter;

struct SloSpec {
  std::string name = "slo";  ///< dotted metric-style name
  double objective = 0.999;  ///< required good fraction in (0, 1)
  std::int64_t fast_window_epochs = 32;
  std::int64_t slow_window_epochs = 256;  ///< also the ring capacity
  /// Alert when both windows burn at >= this multiple of the budget rate.
  double burn_threshold = 1.0;

  /// Throws std::invalid_argument on objective outside (0, 1), window
  /// sizes < 1, fast > slow, or a non-positive threshold.
  void validate() const;
};

struct SloState {
  std::int64_t epoch = -1;  ///< last recorded epoch
  std::uint64_t fast_good = 0;
  std::uint64_t fast_total = 0;
  std::uint64_t slow_good = 0;
  std::uint64_t slow_total = 0;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  bool breaching = false;
  std::uint64_t breaches = 0;  ///< cumulative transitions into breach
};

class SloTracker {
 public:
  /// `tracer`/`recorder` default to the process-wide instances; pass
  /// explicit ones to keep a test hermetic.
  explicit SloTracker(SloSpec spec, Tracer* tracer = nullptr,
                      FlightRecorder* recorder = nullptr);

  /// Records one epoch's tallies and re-evaluates both windows. Epochs
  /// are expected in nondecreasing order; re-recording the current epoch
  /// accumulates into it. Returns the updated state.
  const SloState& record_epoch(std::int64_t epoch, std::uint64_t good,
                               std::uint64_t total);

  const SloState& state() const noexcept { return state_; }
  const SloSpec& spec() const noexcept { return spec_; }

 private:
  struct Cell {
    std::int64_t epoch = -1;
    std::uint64_t good = 0;
    std::uint64_t total = 0;
  };

  SloSpec spec_;
  std::vector<Cell> ring_;  ///< slow_window_epochs slots, epoch-keyed
  SloState state_;
  StreamTracer tracer_;
  FlightRecorder* recorder_;
};

/// Serializes spec + state as the canonical JSON object health snapshots
/// embed.
void write_slo_json(JsonWriter& json, const SloSpec& spec,
                    const SloState& state);

}  // namespace lsm::obs
