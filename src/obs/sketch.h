// Fixed-geometry mergeable quantile sketch (DESIGN.md §3.10).
//
// The health plane needs per-picture and per-epoch distributions (delay,
// delay slack, queue depth, dirty-set size) that can be accumulated
// shard-locally without locks and reduced at the epoch driver — and the
// reduction must be BIT-EXACT regardless of how the population was
// partitioned, because the determinism gate compares health snapshots
// across shard counts. That rules out streaming estimators whose state
// depends on arrival order (t-digest, GK) and fixes the design:
//
//   * Geometry is static. Every sketch has the same HDR-histogram-style
//     log-linear buckets — an octave per power of two, split linearly into
//     8 sub-buckets by the top three mantissa bits — so any two sketches
//     are mergeable by element-wise addition.
//   * Counts are integers. Bucket counts, total and clamp tallies are
//     uint64: addition is associative and commutative EXACTLY, so the
//     merged sketch is a pure function of the observation multiset, not of
//     the shard partition or merge order. (Merges are nevertheless done in
//     shard-index order, matching the rate-series reduction discipline.)
//   * min/max are the only doubles, and min/max over a multiset is also
//     partition-independent.
//   * Bucket bounds are dyadic rationals (ldexp of small integers), hence
//     exactly representable: quantile() returns the same bits everywhere.
//
// Clamping follows HistogramMetric's contract: negative or non-finite
// samples count into bucket 0 as value 0.0 and increment `clamped` so
// faulty inputs stay visible. (The statmux slack sketch exploits this:
// slack is nonnegative under the paper's Theorem 1, so `clamped` doubles
// as the delay-bound violation count.)
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <mutex>

namespace lsm::obs {

class JsonWriter;

class QuantileSketch {
 public:
  static constexpr int kSubBucketBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 8 per octave
  /// frexp-exponent range: octave e covers [2^(e-1), 2^e). 2^-27 (~7.5e-9,
  /// below the 1e-9 delay tolerance) .. 2^27 (~1.3e8, above any picture
  /// count or queue depth the service can hold).
  static constexpr int kMinExponent = -26;
  static constexpr int kMaxExponent = 27;
  static constexpr int kOctaves = kMaxExponent - kMinExponent + 1;
  /// [0] = zero/clamped, [1 .. kOctaves*8] = log-linear, last = overflow.
  static constexpr int kBuckets = 2 + kOctaves * kSubBuckets;

  /// Bucket of `value` after clamping (value <= 0 or tiny -> 0 or the
  /// first log bucket; value beyond the top octave -> kBuckets - 1).
  static int bucket_index(double value) noexcept {
    if (!(value > 0.0)) return 0;  // zero, negative, NaN
    int exponent = 0;
    const double mantissa = std::frexp(value, &exponent);  // [0.5, 1)
    if (exponent > kMaxExponent) return kBuckets - 1;
    if (exponent < kMinExponent) return 1;
    const int sub = static_cast<int>(mantissa * (2 * kSubBuckets)) -
                    kSubBuckets;  // top 3 mantissa bits: [0, 8)
    return 1 + (exponent - kMinExponent) * kSubBuckets + sub;
  }

  /// Inclusive upper bound of bucket `index` — a dyadic rational, exactly
  /// representable, so quantiles are bit-identical everywhere. Bucket 0
  /// reports 0.0; the overflow bucket has no finite bound (+inf).
  static double bucket_upper(int index) noexcept;

  void observe(double value) noexcept {
    const bool faulty = !std::isfinite(value) || value < 0.0;
    if (faulty) value = 0.0;
    ++buckets_[static_cast<std::size_t>(bucket_index(value))];
    ++count_;
    clamped_ += faulty ? 1 : 0;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  /// Element-wise integer addition (plus min/max). Callers reducing a
  /// sharded population merge in shard-index order — the same discipline
  /// as the reserved-rate reduction — though the integer counts make the
  /// result order-independent by construction.
  void merge(const QuantileSketch& other) noexcept;

  void reset() noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t clamped() const noexcept { return clamped_; }
  /// Smallest / largest observed value (after clamping); 0.0 when empty.
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

  /// Upper bound of the bucket holding the rank-ceil(q * count) sample
  /// (q clamped to [0, 1]); 0.0 when empty. Samples in the overflow
  /// bucket report the exact observed max. The result is a pure function
  /// of the bucket counts, so it is byte-stable across shard partitions.
  double quantile(double q) const noexcept;

  const std::array<std::uint64_t, static_cast<std::size_t>(kBuckets)>&
  buckets() const noexcept {
    return buckets_;
  }

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(kBuckets)> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t clamped_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Serializes `sketch` as the canonical JSON object both the Registry
/// snapshot ("sketches" section) and StatmuxService::health_json() emit:
/// {"count": .., "clamped": .., "min": .., "max": .., "p50": .., "p99":
/// .., "p999": .., "buckets": [[index, count], ...]} with only the
/// non-zero buckets listed, in index order.
void write_sketch_json(JsonWriter& json, const QuantileSketch& sketch);

/// Thread-safe named wrapper registered in obs::Registry: observe() and
/// merge() from any thread; data() copies the fixed-size state under the
/// lock. assign() replaces the contents wholesale — the statmux driver
/// publishes its freshly merged per-shard sketches this way every batch,
/// so the registry mirror never double-counts cumulative shard state.
class SketchMetric {
 public:
  void observe(double value) noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    sketch_.observe(value);
  }
  void merge(const QuantileSketch& other) noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    sketch_.merge(other);
  }
  void assign(const QuantileSketch& replacement) noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    sketch_ = replacement;
  }
  QuantileSketch data() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sketch_;
  }

 private:
  mutable std::mutex mutex_;
  QuantileSketch sketch_;
};

}  // namespace lsm::obs
