// Counting global allocator for steady-state allocation audits.
//
// The zero-alloc guarantees of the hot paths (Encoder::encode_into against
// a warm workspace, StatmuxService::run_epoch with a bounded rate history,
// StreamingSmoother::drain_into) are enforced, not assumed: binaries that
// link the `lsm_allochook` library get global operator new/delete
// replacements that count every allocation, and the perf_micro
// BM_*SteadyAllocs benchmarks plus tests/obs/alloc_steady_test.cpp assert
// the count stays at zero across warmed iterations. The counter is a
// single relaxed atomic increment per allocation, cheap enough that the
// hook never distorts what it measures.
//
// alloc_count() is DEFINED only in lsm_allochook — a binary that calls it
// must link that library, and linking it is exactly what installs the
// counting operator new/delete (the reference pulls the hook object out of
// the archive). Regular binaries stay on the default allocator.
#pragma once

#include <cstdint>

namespace lsm::obs {

/// Number of global operator new calls (all forms: array, nothrow,
/// aligned) since process start. Monotone; never decremented by delete.
std::int64_t alloc_count() noexcept;

}  // namespace lsm::obs
