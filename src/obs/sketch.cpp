#include "obs/sketch.h"

#include "obs/json.h"

namespace lsm::obs {

double QuantileSketch::bucket_upper(int index) noexcept {
  if (index <= 0) return 0.0;
  if (index >= kBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  const int j = index - 1;
  const int octave = j / kSubBuckets;
  const int sub = j % kSubBuckets;
  // Octave e spans [2^(e-1), 2^e); sub-bucket s tops out at
  // (kSubBuckets + s + 1) * 2^(e - 1 - kSubBucketBits) — a dyadic
  // rational, exact in double.
  const int exponent = kMinExponent + octave;
  return std::ldexp(static_cast<double>(kSubBuckets + sub + 1),
                    exponent - 1 - kSubBucketBits);
}

void QuantileSketch::merge(const QuantileSketch& other) noexcept {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  count_ += other.count_;
  clamped_ += other.clamped_;
  if (other.count_ > 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
}

void QuantileSketch::reset() noexcept {
  buckets_.fill(0);
  count_ = 0;
  clamped_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

double QuantileSketch::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  if (!(q > 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[static_cast<std::size_t>(i)];
    if (cumulative >= rank) {
      // The overflow bucket has no finite bound; the exact max (itself
      // partition-independent) is the honest answer there.
      return i == kBuckets - 1 ? max() : bucket_upper(i);
    }
  }
  return max();
}

void write_sketch_json(JsonWriter& json, const QuantileSketch& sketch) {
  json.begin_object();
  json.key("count").value(sketch.count());
  json.key("clamped").value(sketch.clamped());
  json.key("min").value(sketch.min());
  json.key("max").value(sketch.max());
  json.key("p50").value(sketch.quantile(0.5));
  json.key("p99").value(sketch.quantile(0.99));
  json.key("p999").value(sketch.quantile(0.999));
  json.key("buckets").begin_array();
  const auto& buckets = sketch.buckets();
  for (int i = 0; i < QuantileSketch::kBuckets; ++i) {
    const std::uint64_t count = buckets[static_cast<std::size_t>(i)];
    if (count == 0) continue;
    json.begin_array();
    json.value(static_cast<std::uint64_t>(i));
    json.value(count);
    json.end_array();
  }
  json.end_array();
  json.end_object();
}

}  // namespace lsm::obs
