// Epoch-aligned ring-buffered time series (DESIGN.md §3.10).
//
// A TimeSeries rolls per-epoch observations into fixed windows of
// `epochs_per_window` consecutive epochs, keeping the most recent
// `window_count` windows in a preallocated ring — construction is the only
// allocation, so a long-running service records epoch after epoch without
// touching the heap (the BM_MuxSteadyAllocs gate covers the statmux
// series).
//
// The clock is SIMULATED time: windows are keyed by epoch index, never by
// wall clock, so a snapshot is a pure function of the recorded
// (epoch, value) sequence — byte-identical across thread counts and
// ExecutionPaths. Per-window aggregates are chosen to also be invariant
// under re-partitioning of the recording (the shard-count axis of the
// statmux determinism gate):
//
//   * count — integer;
//   * min/max — multiset-invariant doubles;
//   * sum — FIXED-POINT int64: each value contributes
//     llround(value * sum_scale), so window sums are integer additions
//     (exact, order-free), not order-sensitive double accumulation;
//   * optionally a QuantileSketch per window (integer bucket counts).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "obs/sketch.h"

namespace lsm::obs {

class JsonWriter;

struct TimeSeriesOptions {
  std::size_t window_count = 32;       ///< ring capacity (windows retained)
  std::int64_t epochs_per_window = 1;  ///< epochs rolled into one window
  /// Fixed-point quantum of the window sum: a recorded value contributes
  /// llround(value * sum_scale) to sum_fp. 1e9 gives nanosecond-exact
  /// sums for second-valued series; 1.0 suits integer-valued series
  /// (queue depths, stream counts).
  double sum_scale = 1.0;
  bool with_sketch = false;  ///< keep a QuantileSketch per window

  /// Throws std::invalid_argument on a zero window count, non-positive
  /// window width, or non-positive scale.
  void validate() const;
};

/// One aggregated window. `window` is the window index
/// (epoch / epochs_per_window); -1 marks a never-written ring slot.
struct TimeSeriesWindow {
  std::int64_t window = -1;
  std::uint64_t count = 0;
  std::int64_t sum_fp = 0;  ///< fixed-point sum (see sum_scale)
  double min = 0.0;
  double max = 0.0;
};

class TimeSeries {
 public:
  /// Preallocates the ring (the only allocation). Validates `options`.
  explicit TimeSeries(const TimeSeriesOptions& options);

  /// Folds `value` into the window of `epoch` (>= 0). Recording an epoch
  /// whose window lapped the ring resets the slot first; recording into
  /// the current window accumulates. Allocation-free.
  void record(std::int64_t epoch, double value) noexcept;

  const TimeSeriesOptions& options() const noexcept { return options_; }

  /// Window index of the newest recorded epoch; -1 before any record.
  std::int64_t latest_window() const noexcept { return latest_; }

  /// Copies the populated windows, oldest first, into `out` (cleared
  /// first). With `sketches` non-null (and with_sketch on) the matching
  /// per-window sketches are copied in parallel.
  void snapshot(std::vector<TimeSeriesWindow>& out,
                std::vector<QuantileSketch>* sketches = nullptr) const;

 private:
  TimeSeriesOptions options_;
  std::vector<TimeSeriesWindow> ring_;
  std::vector<QuantileSketch> sketch_ring_;  ///< empty unless with_sketch
  std::int64_t latest_ = -1;
};

/// Serializes a series snapshot as the canonical JSON object both the
/// Registry snapshot ("series" section) and StatmuxService::health_json()
/// emit: {"window_epochs": .., "scale": .., "windows": [{"w": .., "count":
/// .., "sum": <fixed-point int64>, "min": .., "max": .. [, "p50"/"p99"/
/// "p999"]}, ...]}. Quantile keys appear only when `sketches` is non-null.
void write_series_json(JsonWriter& json, const TimeSeriesOptions& options,
                       const std::vector<TimeSeriesWindow>& windows,
                       const std::vector<QuantileSketch>* sketches);

/// Thread-safe named wrapper registered in obs::Registry.
class TimeSeriesMetric {
 public:
  explicit TimeSeriesMetric(const TimeSeriesOptions& options)
      : series_(options) {}

  void record(std::int64_t epoch, double value) noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    series_.record(epoch, value);
  }
  const TimeSeriesOptions& options() const noexcept {
    return series_.options();
  }
  void snapshot(std::vector<TimeSeriesWindow>& out,
                std::vector<QuantileSketch>* sketches = nullptr) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    series_.snapshot(out, sketches);
  }

 private:
  mutable std::mutex mutex_;
  TimeSeries series_;
};

}  // namespace lsm::obs
