// Metrics registry: named counters, gauges, and fixed-bucket histograms
// with a stable snapshot API and two expositions (JSON and Prometheus
// text). This is the one place metric values become text — the runtime's
// PerfRegistry / DegradationCounters reports and the benches' telemetry
// lines all export into a Registry (or go through obs/json.h directly),
// so there is exactly one JSON-emission path in the codebase.
//
// Handles returned by counter()/gauge()/histogram() have stable addresses
// for the registry's lifetime and are safe to update from any thread;
// name lookup takes a mutex (do it once, keep the handle), updates are a
// single atomic or a short critical section.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/sketch.h"
#include "obs/timeseries.h"

namespace lsm::obs {

/// Monotonic counter (Prometheus "counter").
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins double (Prometheus "gauge").
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket latency histogram, same bucket geometry as the runtime's
/// LatencyHistogram: bucket i counts samples below 1 ms * 2^i, the last
/// bucket is the overflow. Negative or non-finite samples are clamped to
/// zero and counted separately so faulty inputs stay visible.
class HistogramMetric {
 public:
  static constexpr int kBuckets = 13;

  void observe(double seconds) noexcept;

  /// Adds pre-binned data (the LatencyHistogram export path). `buckets`
  /// must hold kBuckets entries.
  void merge(const std::uint64_t* buckets, std::uint64_t count,
             std::uint64_t clamped, double max_seconds) noexcept;

  struct Data {
    std::array<std::uint64_t, kBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t clamped = 0;
    double max_seconds = 0.0;
  };
  Data data() const noexcept;

 private:
  mutable std::mutex mutex_;
  Data data_;
};

/// Point-in-time copy of every metric, sorted by name — the stable shape
/// both expositions and tools/metrics_schema.json describe.
struct MetricsSnapshot {
  /// Monotonic scrape counter: each Registry::snapshot() call gets the
  /// next value, so consumers (lsm_top, check_bench.py snapshots) can
  /// detect stale or duplicated scrapes in a snapshot stream.
  std::uint64_t seq = 0;
  /// Simulated-time stamp of the snapshot (Registry::set_time); 0 until a
  /// subsystem publishes its clock.
  double time_seconds = 0.0;

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  struct Histogram {
    std::string name;
    HistogramMetric::Data data;
  };
  std::vector<Histogram> histograms;
  struct Sketch {
    std::string name;
    QuantileSketch data;
  };
  std::vector<Sketch> sketches;
  struct Series {
    std::string name;
    TimeSeriesOptions options;
    std::vector<TimeSeriesWindow> windows;
    /// Parallel to `windows` when the series keeps per-window sketches;
    /// empty otherwise.
    std::vector<QuantileSketch> window_sketches;
  };
  std::vector<Series> series;

  /// {"seq": .., "time_s": .., "counters": {...}, "gauges": {...},
  /// "histograms": {...}, "sketches": {...}, "series": {...}}.
  std::string to_json() const;

  /// Prometheus text exposition ('.' in names becomes '_', each metric
  /// prefixed with lsm_).
  std::string to_prometheus() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry (long-running deployments scrape this one).
  static Registry& global() noexcept;

  /// Finds or creates. The returned reference stays valid for the
  /// registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  HistogramMetric& histogram(std::string_view name);
  SketchMetric& sketch(std::string_view name);
  /// `options` apply only when the series is created by this call;
  /// later lookups return the existing series unchanged.
  TimeSeriesMetric& timeseries(std::string_view name,
                               const TimeSeriesOptions& options = {});

  /// Publishes the simulated clock stamped onto snapshots. Simulated —
  /// never wall — time keeps snapshot bytes deterministic; the epoch
  /// driver calls this once per batch.
  void set_time(double sim_seconds) noexcept {
    time_seconds_.store(sim_seconds, std::memory_order_relaxed);
  }

  /// Each call returns the next snapshot_seq (starting at 1).
  MetricsSnapshot snapshot() const;
  std::string to_json() const { return snapshot().to_json(); }
  std::string to_prometheus() const { return snapshot().to_prometheus(); }

 private:
  mutable std::mutex mutex_;
  mutable std::atomic<std::uint64_t> snapshot_seq_{0};
  std::atomic<double> time_seconds_{0.0};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
      histograms_;
  std::map<std::string, std::unique_ptr<SketchMetric>, std::less<>>
      sketches_;
  std::map<std::string, std::unique_ptr<TimeSeriesMetric>, std::less<>>
      series_;
};

/// Records a steady-state allocation audit result as the gauge
/// "<subsystem>.allocs_steady" — the number of heap allocations one warmed
/// iteration of the subsystem's hot loop performed (0 is the contract for
/// smooth/encode/mux; the perf_micro BM_*SteadyAllocs harness measures it
/// under the lsm_allochook counting allocator and BENCH_BASELINE.json
/// gates it).
void publish_steady_allocs(Registry& registry, std::string_view subsystem,
                           std::int64_t count);

/// Records a sharded subsystem's load skew as the gauges
/// "<subsystem>.shard.occupancy.max" (largest per-shard population) and
/// "<subsystem>.shard.occupancy.imbalance" (max/mean; 1.0 = perfectly
/// balanced, and the convention when the subsystem is empty). The statmux
/// service publishes these every epoch batch; bench/mux_scale prints the
/// same max/mean axis per sweep point so skew regressions are visible
/// next to aggregate throughput.
void publish_shard_occupancy(Registry& registry, std::string_view subsystem,
                             double max_occupancy, double mean_occupancy);

}  // namespace lsm::obs
