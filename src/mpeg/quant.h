// Coefficient quantization (paper, Section 2: low-frequency coefficients are
// quantized more finely than high-frequency ones; the quantizer scale in the
// slice/macroblock header trades bit rate for visual quality and is the knob
// lossy rate control turns — Section 3.1).
//
// Intra blocks use the MPEG-1 default intra matrix with the DC coefficient
// quantized by a fixed step of 8; non-intra (residual) blocks use a flat
// matrix of 16, as in MPEG-1.
#pragma once

#include "mpeg/dct.h"

namespace lsm::mpeg {

/// MPEG-1 default intra quantization matrix (row-major, zigzag-independent).
const std::array<std::uint8_t, 64>& intra_quant_matrix() noexcept;

/// Quantizes `coeffs` in place semantics (returns levels). quantizer_scale
/// must be in [1, 31].
CoeffBlock quantize_intra(const CoeffBlock& coeffs, int quantizer_scale);
CoeffBlock quantize_inter(const CoeffBlock& coeffs, int quantizer_scale);

/// SSE2 quantizers, bitwise identical to the scalar ones. The integer
/// divisions become packed double divisions plus truncation, which is exact
/// here: numerator and divisor are small integers (|num| <= 2^18), so when
/// the true quotient is not an integer it sits at least 1/divisor >= 2^-13
/// away from one — ten orders of magnitude more than the half-ulp error of
/// a correctly rounded double division — and when it is an integer the
/// division is exact. Fall back to the scalar versions without SSE2.
CoeffBlock quantize_intra_fast(const CoeffBlock& coeffs, int quantizer_scale);
CoeffBlock quantize_inter_fast(const CoeffBlock& coeffs, int quantizer_scale);

/// Fused forward DCT + quantization, bitwise identical to
/// quantize_*(forward_dct(spatial), scale) at every dispatch level. On the
/// AVX2 tier the rounded coefficients are quantized in-register without
/// the intermediate int16 block (value-preserving: |coeff| <= 8 * 1024,
/// so the skipped narrowing loses nothing); below it the call decomposes
/// into the unfused *_fast kernels. The encoder's block loops call these.
CoeffBlock dct_quantize_intra_fast(const Block& spatial, int quantizer_scale);
CoeffBlock dct_quantize_inter_fast(const Block& spatial, int quantizer_scale);

/// Reconstructs coefficient values from levels.
CoeffBlock dequantize_intra(const CoeffBlock& levels, int quantizer_scale);
CoeffBlock dequantize_inter(const CoeffBlock& levels, int quantizer_scale);

}  // namespace lsm::mpeg
