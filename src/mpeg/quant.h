// Coefficient quantization (paper, Section 2: low-frequency coefficients are
// quantized more finely than high-frequency ones; the quantizer scale in the
// slice/macroblock header trades bit rate for visual quality and is the knob
// lossy rate control turns — Section 3.1).
//
// Intra blocks use the MPEG-1 default intra matrix with the DC coefficient
// quantized by a fixed step of 8; non-intra (residual) blocks use a flat
// matrix of 16, as in MPEG-1.
#pragma once

#include "mpeg/dct.h"

namespace lsm::mpeg {

/// MPEG-1 default intra quantization matrix (row-major, zigzag-independent).
const std::array<std::uint8_t, 64>& intra_quant_matrix() noexcept;

/// Quantizes `coeffs` in place semantics (returns levels). quantizer_scale
/// must be in [1, 31].
CoeffBlock quantize_intra(const CoeffBlock& coeffs, int quantizer_scale);
CoeffBlock quantize_inter(const CoeffBlock& coeffs, int quantizer_scale);

/// Reconstructs coefficient values from levels.
CoeffBlock dequantize_intra(const CoeffBlock& levels, int quantizer_scale);
CoeffBlock dequantize_inter(const CoeffBlock& levels, int quantizer_scale);

}  // namespace lsm::mpeg
