// The MPEG-style encoder: consumes display-order frames, produces a
// start-code-delimited coded bit stream with I/P/B pictures in transmission
// order, and reports the per-picture sizes that form a lsm::trace::Trace.
//
// Coding pipeline per macroblock (paper, Section 2):
//   I:  every macroblock intracoded — level shift, 8x8 DCT, intra
//       quantization, zigzag run/level, VLC; DC coded differentially.
//   P:  full-pel motion search against the previous reference; residual
//       DCT-coded with the flat inter matrix; falls back to intra when the
//       best match is poor; zero-vector/zero-residual macroblocks are
//       skipped.
//   B:  forward, backward, or interpolated prediction from the two
//       surrounding references (backward only when a future reference
//       exists, e.g. not for trailing B pictures); intra fallback.
//
// The encoder maintains the same reconstruction the decoder computes
// (dequantize + IDCT + prediction), so decoder output matches encoder
// reconstruction bit-exactly — tested in tests/mpeg/codec_test.cpp.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "mpeg/fastpath.h"
#include "mpeg/frame.h"
#include "mpeg/headers.h"
#include "trace/trace.h"

namespace lsm::mpeg {

/// Runs `body(i)` for every i in [0, count), in any order and possibly
/// concurrently. The encoder hands each picture's slice rows to one of
/// these; rows are independent (per-slice predictors, disjoint
/// reconstruction rows), so any execution order yields the same bytes.
/// An empty function means "run serially in the calling thread".
using SliceExecutor =
    std::function<void(int count, const std::function<void(int)>& body)>;

struct EncoderConfig {
  lsm::trace::GopPattern pattern{9, 3};
  int fps = 30;
  /// Quantizer scales per picture type; the paper's Driving sequences used
  /// 4 / 6 / 15.
  int i_quant = 4;
  int p_quant = 6;
  int b_quant = 15;
  /// Full-pel motion search range (+-range in both axes).
  int search_range = 7;
  /// Half-pel motion refinement (ISO 11172-2 precision). When false the
  /// encoder emits full-pel vectors only; the bit stream is unchanged (all
  /// vectors are coded in half-pel units and full-pel ones are even).
  bool half_pel = true;
  /// A macroblock whose best prediction SAD exceeds this is intracoded.
  int intra_sad_threshold = 3200;
  /// Also reconstruct B pictures (needed for PSNR reporting; references
  /// never depend on them).
  bool reconstruct_b = true;
  /// Optional per-picture quantizer override, indexed by display position
  /// (0-based). Empty = use the per-type scales above; an entry of 0 means
  /// "no override for this picture". Non-empty overrides must match the
  /// frame count. Used by the lossy rate-shaping layer (ratecontrol.h).
  std::vector<int> per_picture_quant;
  /// Kernel selection: kAuto takes the SIMD fast path when the build has
  /// it, kReference forces the scalar kernels. Both produce byte-identical
  /// streams (tests/mpeg/encoder_identity_test.cpp).
  EncoderPath path = EncoderPath::kAuto;
  /// Slice-row executor for intra-picture parallelism; empty = serial.
  /// runtime::pool_slice_executor adapts a ThreadPool. Output bytes are
  /// independent of the executor: slices encode into private writers and
  /// are spliced in row order.
  SliceExecutor slice_executor;
};

/// Macroblock coding modes as they appear in the bit stream.
namespace mb_mode {
inline constexpr std::uint32_t kPSkip = 0;
inline constexpr std::uint32_t kPInter = 1;
inline constexpr std::uint32_t kPIntra = 2;
inline constexpr std::uint32_t kBForward = 0;
inline constexpr std::uint32_t kBBackward = 1;
inline constexpr std::uint32_t kBInterpolated = 2;
inline constexpr std::uint32_t kBIntra = 3;
}  // namespace mb_mode

/// Bookkeeping for one encoded picture.
struct EncodedPicture {
  int display_index = 0;  ///< 0-based position in display order
  int coded_index = 0;    ///< 0-based position in the stream
  lsm::trace::PictureType type = lsm::trace::PictureType::I;
  std::int64_t bits = 0;  ///< picture start code to next non-slice start code
  double psnr_y = 0.0;    ///< reconstruction quality vs the source frame
};

struct EncodeResult {
  std::vector<std::uint8_t> stream;
  std::vector<EncodedPicture> pictures;  ///< in coded (stream) order
  SequenceHeader sequence_header;

  /// Picture-size trace in DISPLAY order (what Figure 3 plots).
  lsm::trace::Trace display_trace(const std::string& name) const;
  /// Picture-size trace in CODED (transmission) order.
  lsm::trace::Trace coded_trace(const std::string& name) const;
};

/// Reusable buffers for Encoder::encode_into. Everything encode() used to
/// allocate per call or per picture lives here: three reconstruction
/// frames (the forward/backward anchors plus the picture being coded,
/// rotated in place), one persistent BitWriter per slice row (cleared, not
/// reconstructed, so each keeps its high-water capacity), and the cached
/// display-to-coded permutation. A warm workspace makes repeated
/// encode_into calls of same-shaped input allocation-free — the property
/// BM_EncodeSteadyAllocs gates at zero.
///
/// A workspace may be reused across Encoder instances and input shapes;
/// mismatches just repopulate the buffers (allocating once). Not
/// thread-safe: one workspace per concurrent encode.
struct EncodeWorkspace {
  std::array<Frame, 3> recon;          ///< anchor/anchor/current rotation
  std::vector<BitWriter> slice_writers;  ///< one per slice row, persistent
  BitWriter header_writer;

  /// Cached picture-type sequence and coded-order permutation, valid for
  /// (cached_count, cached_gop_n, cached_gop_m).
  std::vector<lsm::trace::PictureType> types;
  std::vector<int> order;
  int cached_count = -1;
  int cached_gop_n = 0;
  int cached_gop_m = 0;
};

class Encoder {
 public:
  /// Throws std::invalid_argument on a structurally bad config.
  explicit Encoder(EncoderConfig config);

  /// Encodes `display_frames` (all same dimensions, multiples of 16,
  /// non-empty). Returns the stream plus bookkeeping.
  EncodeResult encode(const std::vector<Frame>& display_frames) const;

  /// encode() into caller-owned result and workspace buffers. `result` is
  /// cleared (capacity kept) and refilled; bytes are identical to
  /// encode()'s. Steady state — same frame count and dimensions against a
  /// warm workspace — performs no heap allocation.
  void encode_into(const std::vector<Frame>& display_frames,
                   EncodeResult& result, EncodeWorkspace& workspace) const;

 private:
  EncoderConfig config_;
};

}  // namespace lsm::mpeg
