// Full pixel decoder for the coded stream: parses every layer down to the
// macroblock and reconstructs frames with the same arithmetic the encoder's
// reference loop uses, so decoder output is bit-exact against encoder
// reconstruction. A decoder resynchronizes at slice start codes, which is
// why a slice is the smallest unit recoverable after errors (paper,
// Section 2).
#pragma once

#include <vector>

#include "mpeg/encoder.h"
#include "mpeg/frame.h"
#include "mpeg/headers.h"

namespace lsm::mpeg {

struct DecodedPicture {
  int coded_index = 0;
  int display_index = 0;
  lsm::trace::PictureType type = lsm::trace::PictureType::I;
  Frame frame;
};

struct DecodeResult {
  SequenceHeader sequence_header;
  std::vector<DecodedPicture> pictures;  ///< in coded (stream) order

  /// Frames rearranged into display order.
  std::vector<Frame> display_frames() const;
};

/// Decodes a complete stream. Throws std::runtime_error on malformed input
/// (bad start-code structure, truncated slices, invalid codes).
DecodeResult decode_stream(const std::vector<std::uint8_t>& stream);

/// Error-resilient decode (the paper's Section 2 observation made concrete:
/// "whenever errors are detected, the decoder can skip ahead to the next
/// slice start code — or picture start code — and resume decoding from
/// there"). A slice whose macroblock data fails to parse is concealed by
/// copying the colocated rows from the picture's forward reference (or
/// mid-gray when none exists); unknown or garbled units are skipped. The
/// sequence header must still parse — without it nothing can be decoded.
struct ResilientDecodeResult {
  DecodeResult result;
  int damaged_slices = 0;  ///< slices concealed after a parse failure
  int skipped_units = 0;   ///< unknown/garbled non-slice units ignored
  bool clean() const noexcept {
    return damaged_slices == 0 && skipped_units == 0;
  }
};
ResilientDecodeResult decode_stream_resilient(
    const std::vector<std::uint8_t>& stream);

}  // namespace lsm::mpeg
