// Internal: declarations shared between the baseline (SSE2) kernel
// translation units and the AVX2 ones (dct_avx2.cpp, quant_avx2.cpp,
// motion_avx2.cpp), plus the runtime-dispatch predicate the *_fast entry
// points use. Not installed; include only from src/mpeg.
//
// The AVX2 kernels live in dedicated translation units compiled with
// -mavx2 (see src/mpeg/CMakeLists.txt) so the architecture flags stay
// per-file and the baseline objects never contain 256-bit instructions;
// LSM_MPEG_HAVE_AVX2 tells the dispatchers the tier was compiled at all.
// Every kernel here is bitwise identical to its scalar reference — the
// per-lane identity arguments live with each implementation; the SAD
// kernels additionally preserve the row-group cutoff boundaries of the
// SSE2 versions so early termination fires at the identical partial sums.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "core/simd_dispatch.h"
#include "mpeg/dct.h"
#include "mpeg/motion.h"

namespace lsm::mpeg {

/// basis[u][x] = c(u) * cos((2x+1) u pi / 16) with c(0) = sqrt(1/8),
/// c(u>0) = sqrt(2/8) — the orthonormal DCT-II basis. `transposed[x][u]`
/// holds the same doubles transposed so the vector row passes can load
/// adjacent-u groups contiguously.
struct DctBasisTable {
  double value[8][8];
  alignas(32) double transposed[8][8];
  DctBasisTable() {
    const double pi = 3.14159265358979323846;
    for (int u = 0; u < 8; ++u) {
      const double c = u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int x = 0; x < 8; ++x) {
        value[u][x] = c * std::cos((2 * x + 1) * u * pi / 16.0);
        transposed[x][u] = value[u][x];
      }
    }
  }
};

/// The process-wide basis table (defined in dct.cpp; shared with the AVX2
/// translation unit so both tiers read the identical doubles).
const DctBasisTable& dct_basis() noexcept;

/// True when the *_fast dispatchers should take the AVX2 kernels: the
/// active runtime level (detected, or forced via LSM_SIMD_LEVEL /
/// lsm::simd::set_active_simd_level) admits them. kAvx512 also lands here:
/// the MPEG block kernels are int16/uint8-bound and gain nothing from
/// 512-bit lanes that would justify the extra tier.
inline bool use_avx2_kernels() noexcept {
  return lsm::simd::active_simd_level() >= lsm::simd::SimdLevel::kAvx2;
}

#if defined(LSM_MPEG_HAVE_AVX2)
namespace avx2 {

CoeffBlock forward_dct(const Block& spatial);
Block inverse_dct(const CoeffBlock& coeffs);

/// Fused forward DCT + quantization: the column pass's rounded
/// coefficients are quantized in-register instead of round-tripping
/// through a packed int16 block. Identical levels to
/// quantize_*(forward_dct(spatial), scale).
CoeffBlock dct_quantize_intra(const Block& spatial, int quantizer_scale);
CoeffBlock dct_quantize_inter(const Block& spatial, int quantizer_scale);

CoeffBlock quantize_intra(const CoeffBlock& coeffs, int quantizer_scale);
CoeffBlock quantize_inter(const CoeffBlock& coeffs, int quantizer_scale);

/// 16x16 SAD with the same every-4-rows cutoff contract as the SSE2
/// sad_16x16 (motion.cpp): partial sums are compared at the identical row
/// boundaries, so search decisions cannot diverge.
int sad_16x16(const std::uint8_t* cur, int cur_stride,
              const std::uint8_t* ref, int ref_stride, int stop_at) noexcept;

/// Exhaustive full-pel stage over a materialized search patch; candidate
/// order, strict-< acceptance, zero bias, and final exact recompute mirror
/// search_motion line for line (patch layout as motion.cpp's SearchPatch:
/// candidate (dx,dy) starts at patch[(dy+range+1)*stride + dx+range+1]).
MotionSearchResult search_fullpel(const std::uint8_t* cur, int cur_stride,
                                  const std::uint8_t* patch, int patch_stride,
                                  int range, int zero_bias) noexcept;

int macroblock_luma_sad(const MacroblockPixels& a,
                        const MacroblockPixels& b) noexcept;

MacroblockPixels average(const MacroblockPixels& a,
                         const MacroblockPixels& b) noexcept;

}  // namespace avx2
#endif  // LSM_MPEG_HAVE_AVX2

}  // namespace lsm::mpeg
