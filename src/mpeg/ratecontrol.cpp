#include "mpeg/ratecontrol.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lsm::mpeg {

RateShapeResult encode_rate_shaped(const std::vector<Frame>& display_frames,
                                   const RateShapeConfig& config) {
  if (config.target_peak_bps <= 0.0) {
    throw std::invalid_argument("encode_rate_shaped: bad target rate");
  }
  if (config.max_quant < 1 || config.max_quant > 31 ||
      config.max_passes < 1) {
    throw std::invalid_argument("encode_rate_shaped: bad shaper limits");
  }

  const int n = static_cast<int>(display_frames.size());
  const double tau = 1.0 / config.base.fps;
  const double budget_bits = config.target_peak_bps * tau;

  EncoderConfig current = config.base;
  current.per_picture_quant.assign(static_cast<std::size_t>(n), 0);

  RateShapeResult result;
  // Track the effective scale per picture (starts at the type default).
  result.quant_by_picture.assign(static_cast<std::size_t>(n), 0);
  for (int i = 1; i <= n; ++i) {
    const auto type = config.base.pattern.type_of(i);
    result.quant_by_picture[static_cast<std::size_t>(i - 1)] =
        type == lsm::trace::PictureType::I   ? config.base.i_quant
        : type == lsm::trace::PictureType::P ? config.base.p_quant
                                             : config.base.b_quant;
  }

  for (int pass = 0; pass < config.max_passes; ++pass) {
    result.encoded = Encoder(current).encode(display_frames);
    ++result.passes;

    // Coarsen every oversized picture proportionally to its overshoot
    // (coded size is roughly inversely proportional to the scale).
    bool any_over = false;
    for (const EncodedPicture& picture : result.encoded.pictures) {
      if (static_cast<double>(picture.bits) <= budget_bits) continue;
      const auto index = static_cast<std::size_t>(picture.display_index);
      const int old_quant = result.quant_by_picture[index];
      if (old_quant >= config.max_quant) continue;  // cannot coarsen further
      const double overshoot =
          static_cast<double>(picture.bits) / budget_bits;
      const int new_quant = std::clamp(
          static_cast<int>(std::ceil(old_quant * overshoot)), old_quant + 1,
          config.max_quant);
      result.quant_by_picture[index] = new_quant;
      current.per_picture_quant[index] = new_quant;
      any_over = true;
    }
    if (!any_over) break;
  }

  result.reencoded_pictures = 0;
  result.converged = true;
  for (const EncodedPicture& picture : result.encoded.pictures) {
    const auto index = static_cast<std::size_t>(picture.display_index);
    if (current.per_picture_quant[index] != 0) ++result.reencoded_pictures;
    if (static_cast<double>(picture.bits) > budget_bits) {
      result.converged = false;
    }
  }
  return result;
}

}  // namespace lsm::mpeg
