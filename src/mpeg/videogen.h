// Synthetic video source: renders deterministic frames with controllable
// spatial complexity, motion, and scene changes, substituting for the
// captured tapes the paper encoded (DESIGN.md substitution table).
//
// A scene is a textured background (sum of sinusoids plus hash noise whose
// amplitude scales with complexity), panned at a speed proportional to the
// motion level, with a handful of moving rectangular objects. A scene change
// re-seeds the texture and palette, so motion compensation across the
// boundary genuinely fails — exactly the effect that inflates P/B pictures
// at scene changes.
#pragma once

#include <cstdint>
#include <vector>

#include "mpeg/frame.h"

namespace lsm::mpeg {

/// One scene of the synthetic video.
struct VideoScene {
  int frames = 30;          ///< length in frames (>= 1)
  double complexity = 1.0;  ///< texture amplitude/detail, > 0
  double motion = 0.5;      ///< pan + object speed, in [0, 1]
};

struct VideoConfig {
  int width = 320;   ///< multiple of 16
  int height = 240;  ///< multiple of 16
  std::vector<VideoScene> scenes;
  std::uint64_t seed = 1;
};

/// Renders all frames in display order. Deterministic for a given config.
/// Throws std::invalid_argument on bad dimensions or an empty scene list.
std::vector<Frame> generate_video(const VideoConfig& config);

}  // namespace lsm::mpeg
