#include "mpeg/quant.h"

#include <cstdlib>
#include <stdexcept>

namespace lsm::mpeg {

namespace {

void check_scale(int quantizer_scale) {
  if (quantizer_scale < 1 || quantizer_scale > 31) {
    throw std::invalid_argument("quantizer_scale must be in [1, 31]");
  }
}

int divide_round(int value, int divisor) noexcept {
  // Symmetric round-half-away-from-zero.
  const int sign = value < 0 ? -1 : 1;
  return sign * ((std::abs(value) * 2 + divisor) / (2 * divisor));
}

}  // namespace

const std::array<std::uint8_t, 64>& intra_quant_matrix() noexcept {
  // ISO 11172-2 default intra matrix.
  static const std::array<std::uint8_t, 64> matrix = {
      8,  16, 19, 22, 26, 27, 29, 34,
      16, 16, 22, 24, 27, 29, 34, 37,
      19, 22, 26, 27, 29, 34, 34, 38,
      22, 22, 26, 27, 29, 34, 37, 40,
      22, 26, 27, 29, 32, 35, 40, 48,
      26, 27, 29, 32, 35, 40, 48, 58,
      26, 27, 29, 34, 38, 46, 56, 69,
      27, 29, 35, 38, 46, 56, 69, 83};
  return matrix;
}

CoeffBlock quantize_intra(const CoeffBlock& coeffs, int quantizer_scale) {
  check_scale(quantizer_scale);
  const auto& matrix = intra_quant_matrix();
  CoeffBlock levels{};
  // DC: fixed divisor of 8, independent of the scale (MPEG-1 semantics).
  levels[0] = static_cast<std::int16_t>(divide_round(coeffs[0], 8));
  for (std::size_t k = 1; k < 64; ++k) {
    const int divisor = quantizer_scale * matrix[k];
    // MPEG-1 scales the matrix entry by quantizer_scale/8 relative to the
    // coefficient; expressed directly: level = 8*coeff / (scale * m).
    levels[k] = static_cast<std::int16_t>(
        divide_round(8 * coeffs[k], divisor));
  }
  return levels;
}

CoeffBlock quantize_inter(const CoeffBlock& coeffs, int quantizer_scale) {
  check_scale(quantizer_scale);
  CoeffBlock levels{};
  for (std::size_t k = 0; k < 64; ++k) {
    const int divisor = quantizer_scale * 16;
    // MPEG-1 non-intra quantization truncates toward zero: the resulting
    // dead zone around zero is what keeps residual pictures small — noise
    // the reference already absorbed is not re-coded.
    levels[k] = static_cast<std::int16_t>((8 * coeffs[k]) / divisor);
  }
  return levels;
}

CoeffBlock dequantize_intra(const CoeffBlock& levels, int quantizer_scale) {
  check_scale(quantizer_scale);
  const auto& matrix = intra_quant_matrix();
  CoeffBlock coeffs{};
  coeffs[0] = static_cast<std::int16_t>(levels[0] * 8);
  for (std::size_t k = 1; k < 64; ++k) {
    coeffs[k] = static_cast<std::int16_t>(
        (levels[k] * quantizer_scale * matrix[k]) / 8);
  }
  return coeffs;
}

CoeffBlock dequantize_inter(const CoeffBlock& levels, int quantizer_scale) {
  check_scale(quantizer_scale);
  CoeffBlock coeffs{};
  for (std::size_t k = 0; k < 64; ++k) {
    coeffs[k] = static_cast<std::int16_t>(
        (levels[k] * quantizer_scale * 16) / 8);
  }
  return coeffs;
}

}  // namespace lsm::mpeg
