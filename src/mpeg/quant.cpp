#include "mpeg/quant.h"

#include <cstdlib>
#include <stdexcept>

#include "mpeg/fastpath.h"
#include "mpeg/simd_kernels.h"

#if LSM_MPEG_SIMD
#include <emmintrin.h>
#endif

namespace lsm::mpeg {

namespace {

void check_scale(int quantizer_scale) {
  if (quantizer_scale < 1 || quantizer_scale > 31) {
    throw std::invalid_argument("quantizer_scale must be in [1, 31]");
  }
}

int divide_round(int value, int divisor) noexcept {
  // Symmetric round-half-away-from-zero.
  const int sign = value < 0 ? -1 : 1;
  return sign * ((std::abs(value) * 2 + divisor) / (2 * divisor));
}

}  // namespace

const std::array<std::uint8_t, 64>& intra_quant_matrix() noexcept {
  // ISO 11172-2 default intra matrix.
  static const std::array<std::uint8_t, 64> matrix = {
      8,  16, 19, 22, 26, 27, 29, 34,
      16, 16, 22, 24, 27, 29, 34, 37,
      19, 22, 26, 27, 29, 34, 34, 38,
      22, 22, 26, 27, 29, 34, 37, 40,
      22, 26, 27, 29, 32, 35, 40, 48,
      26, 27, 29, 32, 35, 40, 48, 58,
      26, 27, 29, 34, 38, 46, 56, 69,
      27, 29, 35, 38, 46, 56, 69, 83};
  return matrix;
}

CoeffBlock quantize_intra(const CoeffBlock& coeffs, int quantizer_scale) {
  check_scale(quantizer_scale);
  const auto& matrix = intra_quant_matrix();
  CoeffBlock levels{};
  // DC: fixed divisor of 8, independent of the scale (MPEG-1 semantics).
  levels[0] = static_cast<std::int16_t>(divide_round(coeffs[0], 8));
  for (std::size_t k = 1; k < 64; ++k) {
    const int divisor = quantizer_scale * matrix[k];
    // MPEG-1 scales the matrix entry by quantizer_scale/8 relative to the
    // coefficient; expressed directly: level = 8*coeff / (scale * m).
    levels[k] = static_cast<std::int16_t>(
        divide_round(8 * coeffs[k], divisor));
  }
  return levels;
}

CoeffBlock quantize_inter(const CoeffBlock& coeffs, int quantizer_scale) {
  check_scale(quantizer_scale);
  CoeffBlock levels{};
  for (std::size_t k = 0; k < 64; ++k) {
    const int divisor = quantizer_scale * 16;
    // MPEG-1 non-intra quantization truncates toward zero: the resulting
    // dead zone around zero is what keeps residual pictures small — noise
    // the reference already absorbed is not re-coded.
    levels[k] = static_cast<std::int16_t>((8 * coeffs[k]) / divisor);
  }
  return levels;
}

#if LSM_MPEG_SIMD

namespace {

/// trunc((2*|value| + divisor) / (2*divisor)) for two lanes at once — the
/// magnitude part of divide_round. Exact: see quant.h.
inline __m128i round_half_away_pair(__m128d abs_value, __m128d divisor) {
  const __m128d num =
      _mm_add_pd(_mm_add_pd(abs_value, abs_value), divisor);
  const __m128d den = _mm_add_pd(divisor, divisor);
  return _mm_cvttpd_epi32(_mm_div_pd(num, den));
}

}  // namespace

CoeffBlock quantize_intra_fast(const CoeffBlock& coeffs, int quantizer_scale) {
  check_scale(quantizer_scale);
#if defined(LSM_MPEG_HAVE_AVX2)
  if (use_avx2_kernels()) return avx2::quantize_intra(coeffs, quantizer_scale);
#endif
  const auto& matrix = intra_quant_matrix();
  CoeffBlock levels{};
  levels[0] = static_cast<std::int16_t>(divide_round(coeffs[0], 8));
  alignas(16) int lanes[4];
  for (std::size_t k = 1; k + 1 < 64; k += 2) {
    const int v0 = 8 * coeffs[k];
    const int v1 = 8 * coeffs[k + 1];
    const __m128d abs_value = _mm_set_pd(std::abs(v1), std::abs(v0));
    const __m128d divisor =
        _mm_set_pd(quantizer_scale * matrix[k + 1],
                   quantizer_scale * matrix[k]);
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes),
                    round_half_away_pair(abs_value, divisor));
    levels[k] = static_cast<std::int16_t>(v0 < 0 ? -lanes[0] : lanes[0]);
    levels[k + 1] = static_cast<std::int16_t>(v1 < 0 ? -lanes[1] : lanes[1]);
  }
  levels[63] = static_cast<std::int16_t>(
      divide_round(8 * coeffs[63], quantizer_scale * matrix[63]));
  return levels;
}

CoeffBlock quantize_inter_fast(const CoeffBlock& coeffs, int quantizer_scale) {
  check_scale(quantizer_scale);
#if defined(LSM_MPEG_HAVE_AVX2)
  if (use_avx2_kernels()) return avx2::quantize_inter(coeffs, quantizer_scale);
#endif
  CoeffBlock levels{};
  // C integer division truncates toward zero, exactly what cvttpd does, so
  // the signed case needs no magnitude split.
  const __m128d divisor = _mm_set1_pd(quantizer_scale * 16);
  alignas(16) int lanes[4];
  for (std::size_t k = 0; k < 64; k += 2) {
    const __m128d num = _mm_set_pd(8 * coeffs[k + 1], 8 * coeffs[k]);
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes),
                    _mm_cvttpd_epi32(_mm_div_pd(num, divisor)));
    levels[k] = static_cast<std::int16_t>(lanes[0]);
    levels[k + 1] = static_cast<std::int16_t>(lanes[1]);
  }
  return levels;
}

#else  // !LSM_MPEG_SIMD

CoeffBlock quantize_intra_fast(const CoeffBlock& coeffs, int quantizer_scale) {
  return quantize_intra(coeffs, quantizer_scale);
}

CoeffBlock quantize_inter_fast(const CoeffBlock& coeffs, int quantizer_scale) {
  return quantize_inter(coeffs, quantizer_scale);
}

#endif  // LSM_MPEG_SIMD

CoeffBlock dct_quantize_intra_fast(const Block& spatial,
                                   int quantizer_scale) {
  check_scale(quantizer_scale);
#if defined(LSM_MPEG_HAVE_AVX2)
  if (use_avx2_kernels()) {
    return avx2::dct_quantize_intra(spatial, quantizer_scale);
  }
#endif
  return quantize_intra_fast(forward_dct_fast(spatial), quantizer_scale);
}

CoeffBlock dct_quantize_inter_fast(const Block& spatial,
                                   int quantizer_scale) {
  check_scale(quantizer_scale);
#if defined(LSM_MPEG_HAVE_AVX2)
  if (use_avx2_kernels()) {
    return avx2::dct_quantize_inter(spatial, quantizer_scale);
  }
#endif
  return quantize_inter_fast(forward_dct_fast(spatial), quantizer_scale);
}

CoeffBlock dequantize_intra(const CoeffBlock& levels, int quantizer_scale) {
  check_scale(quantizer_scale);
  const auto& matrix = intra_quant_matrix();
  CoeffBlock coeffs{};
  coeffs[0] = static_cast<std::int16_t>(levels[0] * 8);
  for (std::size_t k = 1; k < 64; ++k) {
    coeffs[k] = static_cast<std::int16_t>(
        (levels[k] * quantizer_scale * matrix[k]) / 8);
  }
  return coeffs;
}

CoeffBlock dequantize_inter(const CoeffBlock& levels, int quantizer_scale) {
  check_scale(quantizer_scale);
  CoeffBlock coeffs{};
  for (std::size_t k = 0; k < 64; ++k) {
    coeffs[k] = static_cast<std::int16_t>(
        (levels[k] * quantizer_scale * 16) / 8);
  }
  return coeffs;
}

}  // namespace lsm::mpeg
