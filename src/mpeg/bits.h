// Bit-level I/O and start-code framing for the coded stream.
//
// MPEG start codes are byte-aligned 0x00 0x00 0x01 <code> sequences made
// unique in the stream by construction of the VLC tables plus zero stuffing
// (paper, Section 2). Our VLC layer is simplified (exp-Golomb codes, see
// vlc.h), so uniqueness is instead enforced with explicit emulation
// prevention: within a unit's payload every byte pair 0x00 0x00 followed by
// a byte <= 0x03 gets a 0x03 byte inserted after the zeros on write, and the
// reader strips it. The effect is identical — a three-byte 0x00 0x00 0x01
// can only ever be a start code — and the mechanism is documented in
// DESIGN.md as a deviation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lsm::mpeg {

/// MSB-first bit writer.
class BitWriter {
 public:
  /// Appends the `count` low bits of `value`, most significant first.
  /// Requires 0 <= count <= 32 and value < 2^count.
  void put_bits(std::uint32_t value, int count);

  /// Pre-allocates the byte buffer (same semantics as vector::reserve).
  /// Callers that know a likely output size — e.g. a slice writer sized
  /// from the previous picture's slice — avoid growth reallocations.
  void reserve(std::size_t byte_capacity) { bytes_.reserve(byte_capacity); }

  /// Appends a single bit.
  void put_bit(bool bit) { put_bits(bit ? 1u : 0u, 1); }

  /// Pads with zero bits to the next byte boundary.
  void align();

  /// True if the current position is byte-aligned.
  bool aligned() const noexcept { return bit_pos_ == 0; }

  /// Total number of bits written so far.
  std::int64_t bit_count() const noexcept;

  /// Finishes (aligns) and returns the bytes.
  std::vector<std::uint8_t> take();

  /// Rewinds to empty, KEEPING the byte buffer's capacity — a writer held
  /// across pictures reaches its high-water size once and then never
  /// reallocates (the encoder's steady-state path, encoder.h
  /// EncodeWorkspace).
  void clear() noexcept {
    bytes_.clear();
    bit_pos_ = 0;
  }

  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  int bit_pos_ = 0;  ///< bits already used in the trailing partial byte
};

/// MSB-first bit reader over a byte buffer.
class BitReader {
 public:
  explicit BitReader(std::vector<std::uint8_t> bytes);

  /// Reads `count` bits (0 <= count <= 32). Throws std::out_of_range past
  /// the end of the buffer.
  std::uint32_t get_bits(int count);

  bool get_bit() { return get_bits(1) != 0; }

  /// Skips to the next byte boundary.
  void align();

  /// Bits remaining.
  std::int64_t remaining() const noexcept;

  bool exhausted() const noexcept { return remaining() <= 0; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t byte_pos_ = 0;
  int bit_pos_ = 0;
};

/// Inserts emulation-prevention bytes (see file comment).
std::vector<std::uint8_t> escape_payload(const std::vector<std::uint8_t>& raw);

/// Removes emulation-prevention bytes.
std::vector<std::uint8_t> unescape_payload(
    const std::vector<std::uint8_t>& escaped);

/// Start-code values (the <code> byte), numbered as in MPEG-1 video.
namespace startcode {
inline constexpr std::uint8_t kPicture = 0x00;
inline constexpr std::uint8_t kSliceFirst = 0x01;  ///< slice row r -> 0x01+r
inline constexpr std::uint8_t kSliceLast = 0xAF;
inline constexpr std::uint8_t kSequenceHeader = 0xB3;
inline constexpr std::uint8_t kSequenceEnd = 0xB7;
inline constexpr std::uint8_t kGroup = 0xB8;
}  // namespace startcode

/// Appends 0x00 0x00 0x01 <code> to `out`.
void append_start_code(std::vector<std::uint8_t>& out, std::uint8_t code);

/// Finds the next start code at or after `from`. Returns the offset of the
/// 0x00 of the prefix, or -1 if none.
std::int64_t find_start_code(const std::vector<std::uint8_t>& data,
                             std::int64_t from);

}  // namespace lsm::mpeg
