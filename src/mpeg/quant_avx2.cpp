// AVX2 tier of the block quantizers: the SSE2 kernels (quant.cpp) at four
// lanes per __m256d instead of two. Compiled with -mavx2 for THIS
// translation unit only; reached solely through the *_fast dispatchers
// after use_avx2_kernels() has checked the active runtime level. The
// packed-division exactness argument is unchanged from quant.h — lane
// count does not enter it.
#include "mpeg/simd_kernels.h"

#if defined(LSM_MPEG_HAVE_AVX2)

#include <immintrin.h>

#include <cstdlib>

#include "mpeg/quant.h"

namespace lsm::mpeg::avx2 {

namespace {

inline __m128i round_half_away_quad(__m256d abs_value,
                                    __m256d divisor) noexcept {
  const __m256d num = _mm256_add_pd(_mm256_add_pd(abs_value, abs_value),
                                    divisor);
  const __m256d den = _mm256_add_pd(divisor, divisor);
  return _mm256_cvttpd_epi32(_mm256_div_pd(num, den));
}

int divide_round(int value, int divisor) noexcept {
  const int sign = value < 0 ? -1 : 1;
  return sign * ((std::abs(value) * 2 + divisor) / (2 * divisor));
}

}  // namespace

CoeffBlock quantize_intra(const CoeffBlock& coeffs, int quantizer_scale) {
  const auto& matrix = intra_quant_matrix();
  CoeffBlock levels{};
  levels[0] = static_cast<std::int16_t>(divide_round(coeffs[0], 8));
  const double scale = static_cast<double>(quantizer_scale);
  alignas(16) int q[4];
  // k = 1..60 in quads, 61..63 scalar; any grouping of the element-wise
  // operation gives the same levels.
  for (std::size_t k = 1; k + 3 < 64; k += 4) {
    int v[4];
    alignas(32) double mags[4];
    for (int l = 0; l < 4; ++l) {
      v[l] = 8 * coeffs[k + static_cast<std::size_t>(l)];
      mags[l] = static_cast<double>(std::abs(v[l]));
    }
    const __m256d divisor =
        _mm256_set_pd(scale * matrix[k + 3], scale * matrix[k + 2],
                      scale * matrix[k + 1], scale * matrix[k]);
    _mm_store_si128(reinterpret_cast<__m128i*>(q),
                    round_half_away_quad(_mm256_load_pd(mags), divisor));
    for (int l = 0; l < 4; ++l) {
      levels[k + static_cast<std::size_t>(l)] =
          static_cast<std::int16_t>(v[l] < 0 ? -q[l] : q[l]);
    }
  }
  for (std::size_t k = 61; k < 64; ++k) {
    levels[k] = static_cast<std::int16_t>(
        divide_round(8 * coeffs[k], quantizer_scale * matrix[k]));
  }
  return levels;
}

CoeffBlock quantize_inter(const CoeffBlock& coeffs, int quantizer_scale) {
  CoeffBlock levels{};
  const __m256d divisor = _mm256_set1_pd(quantizer_scale * 16);
  alignas(16) int q[4];
  for (std::size_t k = 0; k < 64; k += 4) {
    alignas(32) double nums[4];
    for (int l = 0; l < 4; ++l) {
      nums[l] = static_cast<double>(8 * coeffs[k + static_cast<std::size_t>(l)]);
    }
    _mm_store_si128(
        reinterpret_cast<__m128i*>(q),
        _mm256_cvttpd_epi32(_mm256_div_pd(_mm256_load_pd(nums), divisor)));
    for (int l = 0; l < 4; ++l) {
      levels[k + static_cast<std::size_t>(l)] = static_cast<std::int16_t>(q[l]);
    }
  }
  return levels;
}

}  // namespace lsm::mpeg::avx2

#endif  // LSM_MPEG_HAVE_AVX2
