// Lossy rate shaping by quantizer-scale control — the technique the paper's
// Section 3.1 reviews and argues should be a LAST resort. The encoder's
// output rate is capped by re-encoding oversized pictures at coarser
// quantizer scales (multi-pass), so that every picture fits within a
// per-period bit budget and no smoothing buffer is needed at all.
//
// The paper's experiment: raising an I picture's quantizer scale from 4 to
// 30 shrank it from 282,976 to 75,960 bits, but the result was "grainy,
// fuzzy, and has visible blocking effects". The ablation bench
// (ablation_lossy_vs_lossless) reproduces the trade: rate-shaping to the
// same peak rate that lossless smoothing achieves costs several dB of
// I-picture PSNR, while lossless smoothing costs only delay.
#pragma once

#include "mpeg/encoder.h"

namespace lsm::mpeg {

struct RateShapeConfig {
  EncoderConfig base;            ///< pass-1 configuration (fine quants)
  double target_peak_bps = 2e6;  ///< no picture may exceed this rate over tau
  int max_quant = 31;            ///< coarsest scale the shaper may use
  int max_passes = 8;            ///< re-encode iterations
};

struct RateShapeResult {
  EncodeResult encoded;               ///< final pass output
  std::vector<int> quant_by_picture;  ///< effective scale, display order
  int reencoded_pictures = 0;  ///< pictures forced to a coarser scale
  int passes = 0;              ///< encode passes run
  bool converged = false;      ///< every picture within budget at the end
};

/// Shapes `display_frames` to the target peak rate. Throws
/// std::invalid_argument on a non-positive target or bad base config.
RateShapeResult encode_rate_shaped(const std::vector<Frame>& display_frames,
                                   const RateShapeConfig& config);

}  // namespace lsm::mpeg
