// Structure-level stream parser: walks the start codes of a coded stream
// without decoding macroblocks, recovering exactly what a transport protocol
// can see — picture boundaries, types, and sizes. This is how a smoothing
// implementation obtains its picture-size sequence from a live encoder's
// output, and it is the bridge from the mpeg substrate to lsm::trace.
//
// A picture's size is measured from its picture start code up to the next
// start code that is not a slice (the next picture, group, sequence header,
// or sequence end) — the same accounting the encoder reports.
#pragma once

#include <string>
#include <vector>

#include "mpeg/headers.h"
#include "trace/trace.h"

namespace lsm::mpeg {

struct ParsedPicture {
  int coded_index = 0;
  int display_index = 0;  ///< from the temporal reference field
  lsm::trace::PictureType type = lsm::trace::PictureType::I;
  int quantizer_scale = 0;
  int slice_count = 0;
  std::int64_t bits = 0;
};

struct ParseResult {
  SequenceHeader sequence_header;
  std::vector<ParsedPicture> pictures;  ///< in coded (stream) order
  int group_count = 0;
  bool has_sequence_end = false;

  /// Picture-size trace in display order (requires every display index in
  /// [0, n) to be present exactly once).
  lsm::trace::Trace display_trace(const std::string& name) const;
  /// Picture-size trace in coded order.
  lsm::trace::Trace coded_trace(const std::string& name) const;
};

/// Parses the structure of `stream`. Throws std::runtime_error on malformed
/// start-code structure.
ParseResult parse_stream(const std::vector<std::uint8_t>& stream);

/// Raw start-code map of a stream: byte offset of each 0x000001 prefix and
/// the unit's code byte. Useful for targeted fault injection and tooling.
struct UnitOffset {
  std::int64_t offset = 0;
  std::uint8_t code = 0;
};
std::vector<UnitOffset> scan_units(const std::vector<std::uint8_t>& stream);

}  // namespace lsm::mpeg
