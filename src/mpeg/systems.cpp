#include "mpeg/systems.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mpeg/bits.h"
#include "mpeg/parser.h"

namespace lsm::mpeg {

namespace {

constexpr std::uint8_t kPackCode = 0xBA;
constexpr std::uint8_t kPesVideoCode = 0xE0;
constexpr std::uint8_t kProgramEndCode = 0xB9;

void put_u16(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 24));
  out.push_back(static_cast<std::uint8_t>((value >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((value >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(value & 0xFF));
}

std::uint32_t get_u16(const std::vector<std::uint8_t>& data,
                      std::size_t& at) {
  if (at + 2 > data.size()) throw std::runtime_error("demux: truncated u16");
  const std::uint32_t value = (static_cast<std::uint32_t>(data[at]) << 8) |
                              data[at + 1];
  at += 2;
  return value;
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& data,
                      std::size_t& at) {
  if (at + 4 > data.size()) throw std::runtime_error("demux: truncated u32");
  const std::uint32_t value = (static_cast<std::uint32_t>(data[at]) << 24) |
                              (static_cast<std::uint32_t>(data[at + 1]) << 16) |
                              (static_cast<std::uint32_t>(data[at + 2]) << 8) |
                              data[at + 3];
  at += 4;
  return value;
}

void expect_start_code(const std::vector<std::uint8_t>& data, std::size_t& at,
                       std::uint8_t code) {
  if (at + 4 > data.size() || data[at] != 0x00 || data[at + 1] != 0x00 ||
      data[at + 2] != 0x01 || data[at + 3] != code) {
    throw std::runtime_error("demux: expected start code");
  }
  at += 4;
}

}  // namespace

SystemsStream mux_systems(const EncodeResult& encoded,
                          const SystemsConfig& config) {
  if (config.pes_payload_bytes < 32 || !(config.mux_rate_bps > 0.0)) {
    throw std::invalid_argument("mux_systems: bad config");
  }
  const std::vector<std::uint8_t>& es = encoded.stream;

  // Picture start offsets within the elementary stream, with display-time
  // PTS values for each.
  struct Boundary {
    std::int64_t offset;
    double pts_seconds;
  };
  std::vector<Boundary> boundaries;
  {
    std::size_t picture_index = 0;
    for (const UnitOffset& unit : scan_units(es)) {
      if (unit.code != startcode::kPicture) continue;
      if (picture_index >= encoded.pictures.size()) break;
      const EncodedPicture& picture = encoded.pictures[picture_index++];
      const double tau = 1.0 / encoded.sequence_header.fps;
      boundaries.push_back(
          Boundary{unit.offset, picture.display_index * tau});
    }
  }

  SystemsStream out;
  const double bytes_per_second = config.mux_rate_bps / 8.0;
  std::size_t es_at = 0;
  std::size_t next_boundary = 0;
  while (es_at < es.size()) {
    const std::size_t chunk = std::min(
        static_cast<std::size_t>(config.pes_payload_bytes),
        es.size() - es_at);

    // Pack header: SCR from the systems-stream position so far.
    append_start_code(out.bytes, kPackCode);
    const double scr_seconds =
        static_cast<double>(out.bytes.size()) / bytes_per_second;
    put_u32(out.bytes,
            static_cast<std::uint32_t>(scr_seconds * kSystemClockHz));
    // mux_rate in units of 50 bytes/s, 22 bits used of 24.
    const auto rate_units =
        static_cast<std::uint32_t>(config.mux_rate_bps / 8.0 / 50.0);
    out.bytes.push_back(static_cast<std::uint8_t>((rate_units >> 16) & 0x3F));
    out.bytes.push_back(static_cast<std::uint8_t>((rate_units >> 8) & 0xFF));
    out.bytes.push_back(static_cast<std::uint8_t>(rate_units & 0xFF));
    ++out.pack_count;

    // Does a picture begin within this chunk? Then stamp the earliest one.
    // (If several pictures start in one chunk only the first is stamped —
    // as in MPEG, unstamped access units inherit interpolated timestamps.)
    bool has_pts = false;
    double pts_seconds = 0.0;
    while (next_boundary < boundaries.size() &&
           boundaries[next_boundary].offset <
               static_cast<std::int64_t>(es_at)) {
      ++next_boundary;  // picture started in an earlier, already-stamped chunk
    }
    if (next_boundary < boundaries.size() &&
        boundaries[next_boundary].offset <
            static_cast<std::int64_t>(es_at + chunk)) {
      has_pts = true;
      pts_seconds = boundaries[next_boundary].pts_seconds;
      ++next_boundary;
      ++out.pts_count;
    }

    // PES packet.
    append_start_code(out.bytes, kPesVideoCode);
    const std::uint32_t length =
        1 + (has_pts ? 4 : 0) + static_cast<std::uint32_t>(chunk);
    put_u16(out.bytes, length);
    out.bytes.push_back(has_pts ? 0x01 : 0x00);
    if (has_pts) {
      put_u32(out.bytes,
              static_cast<std::uint32_t>(pts_seconds * kSystemClockHz));
    }
    out.bytes.insert(out.bytes.end(),
                     es.begin() + static_cast<std::ptrdiff_t>(es_at),
                     es.begin() + static_cast<std::ptrdiff_t>(es_at + chunk));
    es_at += chunk;
  }

  append_start_code(out.bytes, kProgramEndCode);
  return out;
}

DemuxResult demux_systems(const std::vector<std::uint8_t>& stream) {
  DemuxResult result;
  std::size_t at = 0;
  while (true) {
    if (at + 4 > stream.size()) {
      throw std::runtime_error("demux: missing program end code");
    }
    if (stream[at] == 0x00 && stream[at + 1] == 0x00 &&
        stream[at + 2] == 0x01 && stream[at + 3] == kProgramEndCode) {
      break;
    }
    expect_start_code(stream, at, kPackCode);
    const std::uint32_t scr = get_u32(stream, at);
    result.scr_seconds.push_back(static_cast<double>(scr) / kSystemClockHz);
    if (at + 3 > stream.size()) throw std::runtime_error("demux: truncated");
    const std::uint32_t rate_units =
        (static_cast<std::uint32_t>(stream[at]) << 16) |
        (static_cast<std::uint32_t>(stream[at + 1]) << 8) | stream[at + 2];
    at += 3;
    result.mux_rate_bps = static_cast<double>(rate_units) * 50.0 * 8.0;

    expect_start_code(stream, at, kPesVideoCode);
    const std::uint32_t length = get_u16(stream, at);
    if (length < 1 || at + length > stream.size()) {
      throw std::runtime_error("demux: bad PES length");
    }
    const std::uint8_t flags = stream[at++];
    std::uint32_t consumed = 1;
    if (flags & 0x01) {
      const std::uint32_t pts = get_u32(stream, at);
      consumed += 4;
      result.pts.push_back(
          PtsEntry{static_cast<std::int64_t>(result.elementary.size()),
                   static_cast<double>(pts) / kSystemClockHz});
    }
    const std::uint32_t payload = length - consumed;
    result.elementary.insert(
        result.elementary.end(),
        stream.begin() + static_cast<std::ptrdiff_t>(at),
        stream.begin() + static_cast<std::ptrdiff_t>(at + payload));
    at += payload;
  }
  return result;
}

}  // namespace lsm::mpeg
