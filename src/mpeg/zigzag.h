// Zigzag scan: orders the 64 coefficients of a block from low to high
// spatial frequency so that the run-length coder sees the long zero runs
// quantization produces in the high frequencies (paper, Section 2).
#pragma once

#include <utility>
#include <vector>

#include "mpeg/dct.h"

namespace lsm::mpeg {

/// scan[k] = row-major index of the k-th coefficient in zigzag order.
const std::array<std::uint8_t, 64>& zigzag_scan() noexcept;

/// A (run, level) pair: `run` zero coefficients followed by `level` != 0.
struct RunLevel {
  std::uint8_t run = 0;
  std::int16_t level = 0;
};

/// Run-length encodes the AC coefficients (zigzag positions 1..63). The DC
/// coefficient (position 0) is NOT included — it is coded separately.
std::vector<RunLevel> run_length_encode(const CoeffBlock& block);

/// A block has at most 63 AC coefficients, so any caller can hold the
/// pairs in a fixed stack buffer of this size.
inline constexpr std::size_t kMaxRunLevels = 63;

/// run_length_encode into a caller-provided buffer of at least
/// kMaxRunLevels entries; returns the number of pairs written. The
/// encoder's per-block hot path — no allocation per block.
std::size_t run_length_encode_into(const CoeffBlock& block, RunLevel* out);

/// Rebuilds a coefficient block from `dc` and the AC run/level pairs.
/// Throws std::invalid_argument if the pairs overflow the block or contain
/// a zero level.
CoeffBlock run_length_decode(std::int16_t dc,
                             const std::vector<RunLevel>& pairs);

}  // namespace lsm::mpeg
