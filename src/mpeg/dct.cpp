#include "mpeg/dct.h"

#include <cmath>

#include "mpeg/fastpath.h"
#include "mpeg/simd_kernels.h"

#if LSM_MPEG_SIMD
#include <emmintrin.h>
#endif

namespace lsm::mpeg {

/// Defined here, declared in simd_kernels.h: one table instance shared by
/// every tier, so the AVX2 translation unit reads the identical doubles.
const DctBasisTable& dct_basis() noexcept {
  static const DctBasisTable table;
  return table;
}

namespace {

const DctBasisTable& basis() { return dct_basis(); }

}  // namespace

CoeffBlock forward_dct(const Block& spatial) {
  const DctBasisTable& b = basis();
  double rows[8][8];
  // 1-D DCT over rows.
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      double acc = 0.0;
      for (int x = 0; x < 8; ++x) {
        const auto k = static_cast<std::size_t>(y * 8 + x);
        acc += b.value[u][x] * static_cast<double>(spatial[k]);
      }
      rows[y][u] = acc;
    }
  }
  // 1-D DCT over columns.
  CoeffBlock out{};
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      double acc = 0.0;
      for (int y = 0; y < 8; ++y) acc += b.value[v][y] * rows[y][u];
      out[static_cast<std::size_t>(v * 8 + u)] =
          static_cast<std::int16_t>(std::lround(acc));
    }
  }
  return out;
}

Block inverse_dct(const CoeffBlock& coeffs) {
  const DctBasisTable& b = basis();
  double cols[8][8];
  // Inverse over columns.
  for (int u = 0; u < 8; ++u) {
    for (int y = 0; y < 8; ++y) {
      double acc = 0.0;
      for (int v = 0; v < 8; ++v) {
        acc += b.value[v][y] *
               static_cast<double>(coeffs[static_cast<std::size_t>(v * 8 + u)]);
      }
      cols[y][u] = acc;
    }
  }
  // Inverse over rows.
  Block out{};
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      double acc = 0.0;
      for (int u = 0; u < 8; ++u) acc += b.value[u][x] * cols[y][u];
      out[static_cast<std::size_t>(y * 8 + x)] =
          static_cast<std::int16_t>(std::lround(acc));
    }
  }
  return out;
}

#if LSM_MPEG_SIMD

CoeffBlock forward_dct_fast(const Block& spatial) {
#if defined(LSM_MPEG_HAVE_AVX2)
  if (use_avx2_kernels()) return avx2::forward_dct(spatial);
#endif
  const DctBasisTable& b = basis();
  // One int16 -> double conversion per sample, instead of one per use.
  alignas(16) double sd[64];
  for (int k = 0; k < 64; ++k) sd[k] = static_cast<double>(spatial[k]);

  // Row pass: rows[y][u] = sum_x transposed[x][u] * sd[y*8+x]. Two adjacent
  // u lanes accumulate over ascending x, exactly the scalar order per lane.
  alignas(16) double rows[8][8];
  for (int y = 0; y < 8; ++y) {
    __m128d acc[4];
    for (int p = 0; p < 4; ++p) acc[p] = _mm_setzero_pd();
    for (int x = 0; x < 8; ++x) {
      const __m128d s = _mm_set1_pd(sd[y * 8 + x]);
      for (int p = 0; p < 4; ++p) {
        acc[p] = _mm_add_pd(
            acc[p], _mm_mul_pd(_mm_load_pd(&b.transposed[x][2 * p]), s));
      }
    }
    for (int p = 0; p < 4; ++p) _mm_store_pd(&rows[y][2 * p], acc[p]);
  }

  // Column pass: out[v*8+u] = lround(sum_y value[v][y] * rows[y][u]), two
  // adjacent u lanes per vector, ascending-y accumulation as in the scalar
  // loop. lround (round half away from zero) must stay scalar: cvtpd_epi32
  // rounds half to even.
  CoeffBlock out{};
  for (int v = 0; v < 8; ++v) {
    for (int p = 0; p < 4; ++p) {
      __m128d acc = _mm_setzero_pd();
      for (int y = 0; y < 8; ++y) {
        acc = _mm_add_pd(
            acc, _mm_mul_pd(_mm_set1_pd(b.value[v][y]),
                            _mm_load_pd(&rows[y][2 * p])));
      }
      alignas(16) double lanes[2];
      _mm_store_pd(lanes, acc);
      out[static_cast<std::size_t>(v * 8 + 2 * p)] =
          static_cast<std::int16_t>(std::lround(lanes[0]));
      out[static_cast<std::size_t>(v * 8 + 2 * p + 1)] =
          static_cast<std::int16_t>(std::lround(lanes[1]));
    }
  }
  return out;
}

Block inverse_dct_fast(const CoeffBlock& coeffs) {
#if defined(LSM_MPEG_HAVE_AVX2)
  if (use_avx2_kernels()) return avx2::inverse_dct(coeffs);
#endif
  const DctBasisTable& b = basis();
  alignas(16) double cd[64];
  for (int k = 0; k < 64; ++k) cd[k] = static_cast<double>(coeffs[k]);

  // Column inverse: cols[y][u] = sum_v value[v][y] * cd[v*8+u], ascending v
  // per lane (the scalar loop's order for every u).
  alignas(16) double cols[8][8];
  for (int y = 0; y < 8; ++y) {
    __m128d acc[4];
    for (int p = 0; p < 4; ++p) acc[p] = _mm_setzero_pd();
    for (int v = 0; v < 8; ++v) {
      const __m128d basis_vy = _mm_set1_pd(b.value[v][y]);
      for (int p = 0; p < 4; ++p) {
        acc[p] = _mm_add_pd(
            acc[p], _mm_mul_pd(basis_vy, _mm_load_pd(&cd[v * 8 + 2 * p])));
      }
    }
    for (int p = 0; p < 4; ++p) _mm_store_pd(&cols[y][2 * p], acc[p]);
  }

  // Row inverse: out[y*8+x] = lround(sum_u value[u][x] * cols[y][u]), two
  // adjacent x lanes, ascending-u accumulation.
  Block out{};
  for (int y = 0; y < 8; ++y) {
    for (int p = 0; p < 4; ++p) {
      __m128d acc = _mm_setzero_pd();
      for (int u = 0; u < 8; ++u) {
        acc = _mm_add_pd(
            acc, _mm_mul_pd(_mm_set1_pd(cols[y][u]),
                            _mm_loadu_pd(&b.value[u][2 * p])));
      }
      alignas(16) double lanes[2];
      _mm_store_pd(lanes, acc);
      out[static_cast<std::size_t>(y * 8 + 2 * p)] =
          static_cast<std::int16_t>(std::lround(lanes[0]));
      out[static_cast<std::size_t>(y * 8 + 2 * p + 1)] =
          static_cast<std::int16_t>(std::lround(lanes[1]));
    }
  }
  return out;
}

#else  // !LSM_MPEG_SIMD

CoeffBlock forward_dct_fast(const Block& spatial) {
  return forward_dct(spatial);
}

Block inverse_dct_fast(const CoeffBlock& coeffs) {
  return inverse_dct(coeffs);
}

#endif  // LSM_MPEG_SIMD

}  // namespace lsm::mpeg
