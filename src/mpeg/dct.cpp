#include "mpeg/dct.h"

#include <cmath>

namespace lsm::mpeg {

namespace {

/// basis[u][x] = c(u) * cos((2x+1) u pi / 16) with c(0) = sqrt(1/8),
/// c(u>0) = sqrt(2/8) — the orthonormal DCT-II basis.
struct BasisTable {
  double value[8][8];
  BasisTable() {
    const double pi = 3.14159265358979323846;
    for (int u = 0; u < 8; ++u) {
      const double c = u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int x = 0; x < 8; ++x) {
        value[u][x] = c * std::cos((2 * x + 1) * u * pi / 16.0);
      }
    }
  }
};

const BasisTable& basis() {
  static const BasisTable table;
  return table;
}

}  // namespace

CoeffBlock forward_dct(const Block& spatial) {
  const BasisTable& b = basis();
  double rows[8][8];
  // 1-D DCT over rows.
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      double acc = 0.0;
      for (int x = 0; x < 8; ++x) {
        const auto k = static_cast<std::size_t>(y * 8 + x);
        acc += b.value[u][x] * static_cast<double>(spatial[k]);
      }
      rows[y][u] = acc;
    }
  }
  // 1-D DCT over columns.
  CoeffBlock out{};
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      double acc = 0.0;
      for (int y = 0; y < 8; ++y) acc += b.value[v][y] * rows[y][u];
      out[static_cast<std::size_t>(v * 8 + u)] =
          static_cast<std::int16_t>(std::lround(acc));
    }
  }
  return out;
}

Block inverse_dct(const CoeffBlock& coeffs) {
  const BasisTable& b = basis();
  double cols[8][8];
  // Inverse over columns.
  for (int u = 0; u < 8; ++u) {
    for (int y = 0; y < 8; ++y) {
      double acc = 0.0;
      for (int v = 0; v < 8; ++v) {
        acc += b.value[v][y] *
               static_cast<double>(coeffs[static_cast<std::size_t>(v * 8 + u)]);
      }
      cols[y][u] = acc;
    }
  }
  // Inverse over rows.
  Block out{};
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      double acc = 0.0;
      for (int u = 0; u < 8; ++u) acc += b.value[u][x] * cols[y][u];
      out[static_cast<std::size_t>(y * 8 + x)] =
          static_cast<std::int16_t>(std::lround(acc));
    }
  }
  return out;
}

}  // namespace lsm::mpeg
