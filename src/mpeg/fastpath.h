// Execution-path switch for the encoder's SIMD fast path, mirroring the
// smoothing layer's core/fastpath.h design: every vector kernel (DCT,
// quantization, packed-SAD motion search) is bitwise identical to the
// scalar reference by construction — same IEEE double operations in the
// same per-lane order, exact integer-division arguments, monotone SAD
// early termination — and the scalar loops are retained behind
// EncoderPath::kReference as the differential-testing reference
// (tests/mpeg/encoder_identity_test.cpp). DESIGN.md §3.4 carries the
// identity arguments.
//
// The baseline kernels use SSE2, which is part of the x86-64 baseline; on
// targets without SSE2 every *_fast entry point degrades to the scalar
// reference and kAuto equals kReference. Above the baseline the *_fast
// entry points runtime-dispatch (core/simd_dispatch.h) to AVX2 kernels —
// wider DCT/quant lanes, two-row vpsadbw motion search, and fused
// DCT+quant (quant.h) — compiled per-file with -mavx2 so no wide
// instruction can leak into the baseline objects (simd_kernels.h). Every
// tier stays bitwise identical; LSM_SIMD_LEVEL pins the tier for
// differential testing (tests/mpeg/simd_level_identity_test.cpp).
#pragma once

#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define LSM_MPEG_SIMD 1
#else
#define LSM_MPEG_SIMD 0
#endif

namespace lsm::mpeg {

/// Which implementation of the block/search kernels the encoder runs.
enum class EncoderPath {
  kAuto,       ///< SIMD kernels where the target supports them
  kReference,  ///< always the scalar reference loops
};

/// True when the *_fast kernels actually vectorize on this target.
constexpr bool simd_available() noexcept { return LSM_MPEG_SIMD == 1; }

}  // namespace lsm::mpeg
