// Stream-level headers, mirroring the paper's Section 2 BNF:
//
//   <sequence> ::= <sequence header> <group of pictures>
//                  { [<sequence header>] <group of pictures> }
//                  <sequence end code>
//   <group of pictures> ::= <group header> <picture> { <picture> }
//   <picture> ::= <picture header> <slice> { <slice> }
//   <slice>   ::= <slice header> <macroblock> { <macroblock> }
//
// Every header begins with a byte-aligned, unique 0x000001xx start code
// (bits.h). Field widths are our own (documented below); the structure and
// code numbering follow MPEG-1.
#pragma once

#include <cstdint>
#include <vector>

#include "mpeg/bits.h"
#include "trace/pattern.h"

namespace lsm::mpeg {

/// Sequence header: width(16) height(16) fps(8) N(8) M(8).
struct SequenceHeader {
  int width = 0;
  int height = 0;
  int fps = 30;
  int gop_n = 9;  ///< pattern length N
  int gop_m = 3;  ///< reference distance M
  friend bool operator==(const SequenceHeader&,
                         const SequenceHeader&) = default;
};

/// Group-of-pictures header: index(16) closed(1). The index substitutes for
/// MPEG's hours/minutes/seconds time code (random access anchor).
struct GroupHeader {
  int index = 0;
  bool closed = true;
  friend bool operator==(const GroupHeader&, const GroupHeader&) = default;
};

/// Picture header: temporal_reference(16) type(2) quantizer_scale(5).
struct PictureHeader {
  int temporal_reference = 0;  ///< display index, modulo 2^16
  lsm::trace::PictureType type = lsm::trace::PictureType::I;
  int quantizer_scale = 8;
  friend bool operator==(const PictureHeader&,
                         const PictureHeader&) = default;
};

void write_fields(BitWriter& writer, const SequenceHeader& header);
void write_fields(BitWriter& writer, const GroupHeader& header);
void write_fields(BitWriter& writer, const PictureHeader& header);

SequenceHeader read_sequence_header(BitReader& reader);
GroupHeader read_group_header(BitReader& reader);
PictureHeader read_picture_header(BitReader& reader);

/// Appends a complete unit — start code plus escaped payload — to `out`.
void append_unit(std::vector<std::uint8_t>& out, std::uint8_t code,
                 const std::vector<std::uint8_t>& payload);

}  // namespace lsm::mpeg
