#include "mpeg/vlc.h"

#include <stdexcept>

namespace lsm::mpeg {

void put_ue(BitWriter& writer, std::uint32_t value) {
  // Encode value+1 with floor(log2(value+1)) leading zeros.
  const std::uint64_t code = static_cast<std::uint64_t>(value) + 1;
  int length = 0;
  while ((code >> (length + 1)) != 0) ++length;
  writer.put_bits(0, length);
  // code has (length + 1) significant bits, the top one being 1.
  writer.put_bits(static_cast<std::uint32_t>(code), length + 1);
}

std::uint32_t get_ue(BitReader& reader) {
  int zeros = 0;
  while (!reader.get_bit()) {
    ++zeros;
    if (zeros > 32) throw std::runtime_error("get_ue: malformed code");
  }
  std::uint64_t code = 1;
  for (int k = 0; k < zeros; ++k) {
    code = (code << 1) | (reader.get_bit() ? 1u : 0u);
  }
  return static_cast<std::uint32_t>(code - 1);
}

void put_se(BitWriter& writer, std::int32_t value) {
  const std::uint32_t mapped =
      value > 0
          ? static_cast<std::uint32_t>(value) * 2 - 1
          : static_cast<std::uint32_t>(-static_cast<std::int64_t>(value)) * 2;
  put_ue(writer, mapped);
}

std::int32_t get_se(BitReader& reader) {
  const std::uint32_t mapped = get_ue(reader);
  if (mapped % 2 == 1) return static_cast<std::int32_t>((mapped + 1) / 2);
  return -static_cast<std::int32_t>(mapped / 2);
}

void put_block(BitWriter& writer, std::int16_t dc,
               const std::vector<RunLevel>& ac) {
  put_block(writer, dc, ac.data(), ac.size());
}

void put_block(BitWriter& writer, std::int16_t dc, const RunLevel* ac,
               std::size_t count) {
  put_se(writer, dc);
  for (std::size_t k = 0; k < count; ++k) {
    if (ac[k].level == 0) {
      throw std::invalid_argument("put_block: zero AC level");
    }
    put_ue(writer, ac[k].run);
    put_se(writer, ac[k].level);
  }
  put_ue(writer, kEndOfBlockRun);
}

DecodedBlock get_block(BitReader& reader) {
  DecodedBlock block;
  block.dc = static_cast<std::int16_t>(get_se(reader));
  while (true) {
    const std::uint32_t run = get_ue(reader);
    if (run == kEndOfBlockRun) break;
    if (run > 62) throw std::runtime_error("get_block: bad run length");
    const std::int32_t level = get_se(reader);
    if (level == 0) throw std::runtime_error("get_block: zero level");
    block.ac.push_back(RunLevel{static_cast<std::uint8_t>(run),
                                static_cast<std::int16_t>(level)});
  }
  return block;
}

}  // namespace lsm::mpeg
