#include "mpeg/parser.h"

#include <stdexcept>

#include "mpeg/bits.h"

namespace lsm::mpeg {

namespace {

bool is_slice(std::uint8_t code) noexcept {
  return code >= startcode::kSliceFirst && code <= startcode::kSliceLast;
}

}  // namespace

ParseResult parse_stream(const std::vector<std::uint8_t>& stream) {
  ParseResult result;
  bool saw_sequence_header = false;

  std::int64_t at = find_start_code(stream, 0);
  if (at != 0) {
    throw std::runtime_error(
        "parse_stream: stream must begin with a start code");
  }

  std::int64_t picture_offset = -1;  // offset of the open picture's start code
  auto close_picture = [&result, &picture_offset](std::int64_t end_offset) {
    if (picture_offset < 0) return;
    result.pictures.back().bits = (end_offset - picture_offset) * 8;
    picture_offset = -1;
  };

  while (at >= 0) {
    const std::uint8_t code = stream[static_cast<std::size_t>(at + 3)];
    const std::int64_t body = at + 4;
    const std::int64_t next = find_start_code(stream, body);
    const std::int64_t end =
        next < 0 ? static_cast<std::int64_t>(stream.size()) : next;

    if (is_slice(code)) {
      if (picture_offset < 0) {
        throw std::runtime_error("parse_stream: slice outside any picture");
      }
      ++result.pictures.back().slice_count;
    } else {
      close_picture(at);
      if (code == startcode::kSequenceHeader) {
        const std::vector<std::uint8_t> payload = unescape_payload(
            std::vector<std::uint8_t>(stream.begin() + body,
                                      stream.begin() + end));
        BitReader reader(payload);
        result.sequence_header = read_sequence_header(reader);
        saw_sequence_header = true;
      } else if (code == startcode::kGroup) {
        ++result.group_count;
      } else if (code == startcode::kPicture) {
        if (!saw_sequence_header) {
          throw std::runtime_error(
              "parse_stream: picture before sequence header");
        }
        const std::vector<std::uint8_t> payload = unescape_payload(
            std::vector<std::uint8_t>(stream.begin() + body,
                                      stream.begin() + end));
        BitReader reader(payload);
        const PictureHeader header = read_picture_header(reader);
        ParsedPicture picture;
        picture.coded_index = static_cast<int>(result.pictures.size());
        picture.display_index = header.temporal_reference;
        picture.type = header.type;
        picture.quantizer_scale = header.quantizer_scale;
        result.pictures.push_back(picture);
        picture_offset = at;
      } else if (code == startcode::kSequenceEnd) {
        result.has_sequence_end = true;
        break;
      } else {
        throw std::runtime_error("parse_stream: unknown start code");
      }
    }
    at = next;
  }
  // Stream without a sequence end code: close against the stream tail.
  close_picture(static_cast<std::int64_t>(stream.size()));
  return result;
}

std::vector<UnitOffset> scan_units(const std::vector<std::uint8_t>& stream) {
  std::vector<UnitOffset> units;
  std::int64_t at = find_start_code(stream, 0);
  while (at >= 0) {
    units.push_back(
        UnitOffset{at, stream[static_cast<std::size_t>(at + 3)]});
    at = find_start_code(stream, at + 4);
  }
  return units;
}

lsm::trace::Trace ParseResult::display_trace(const std::string& name) const {
  std::vector<lsm::trace::Bits> sizes(pictures.size(), 0);
  std::vector<lsm::trace::PictureType> types(pictures.size(),
                                             lsm::trace::PictureType::I);
  for (const ParsedPicture& picture : pictures) {
    if (picture.display_index < 0 ||
        picture.display_index >= static_cast<int>(pictures.size()) ||
        sizes[static_cast<std::size_t>(picture.display_index)] != 0) {
      throw std::runtime_error(
          "display_trace: temporal references are not a permutation");
    }
    sizes[static_cast<std::size_t>(picture.display_index)] = picture.bits;
    types[static_cast<std::size_t>(picture.display_index)] = picture.type;
  }
  return lsm::trace::Trace(
      name,
      lsm::trace::GopPattern(sequence_header.gop_n, sequence_header.gop_m),
      std::move(sizes), std::move(types), 1.0 / sequence_header.fps,
      sequence_header.width, sequence_header.height);
}

lsm::trace::Trace ParseResult::coded_trace(const std::string& name) const {
  std::vector<lsm::trace::Bits> sizes;
  std::vector<lsm::trace::PictureType> types;
  for (const ParsedPicture& picture : pictures) {
    sizes.push_back(picture.bits);
    types.push_back(picture.type);
  }
  return lsm::trace::Trace(
      name,
      lsm::trace::GopPattern(sequence_header.gop_n, sequence_header.gop_m),
      std::move(sizes), std::move(types), 1.0 / sequence_header.fps,
      sequence_header.width, sequence_header.height);
}

}  // namespace lsm::mpeg
