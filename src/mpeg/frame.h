// Uncompressed video frames in 4:2:0 YCbCr, the working format of the codec
// (paper, Section 2: RGB is converted to YCrCb and chroma is subsampled so
// each 16x16 macroblock carries four 8x8 luma blocks and one 8x8 block per
// chroma plane).
#pragma once

#include <cstdint>
#include <vector>

namespace lsm::mpeg {

/// One sample plane. Samples are 8-bit; indexing is row-major.
class Plane {
 public:
  Plane() = default;
  /// Creates a width x height plane filled with `fill`.
  Plane(int width, int height, std::uint8_t fill = 0);

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

  std::uint8_t at(int x, int y) const;
  void set(int x, int y, std::uint8_t value);

  /// Clamped read: coordinates outside the plane are clamped to the border
  /// (used by motion compensation near edges).
  std::uint8_t at_clamped(int x, int y) const noexcept;

  const std::vector<std::uint8_t>& samples() const noexcept { return data_; }
  std::vector<std::uint8_t>& samples() noexcept { return data_; }

  friend bool operator==(const Plane& a, const Plane& b) = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> data_;
};

/// A 4:2:0 frame: full-resolution luma, half-resolution chroma. Dimensions
/// must be multiples of 16 so the macroblock grid is exact.
struct Frame {
  Plane y;
  Plane cb;
  Plane cr;

  Frame() = default;
  /// Throws std::invalid_argument unless width and height are positive
  /// multiples of 16.
  Frame(int width, int height);

  int width() const noexcept { return y.width(); }
  int height() const noexcept { return y.height(); }
  int mb_cols() const noexcept { return y.width() / 16; }
  int mb_rows() const noexcept { return y.height() / 16; }

  friend bool operator==(const Frame& a, const Frame& b) = default;
};

/// Luma peak signal-to-noise ratio in dB between two equally-sized frames.
/// Returns +infinity for identical planes. Throws on size mismatch.
double psnr_y(const Frame& a, const Frame& b);

}  // namespace lsm::mpeg
