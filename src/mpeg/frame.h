// Uncompressed video frames in 4:2:0 YCbCr, the working format of the codec
// (paper, Section 2: RGB is converted to YCrCb and chroma is subsampled so
// each 16x16 macroblock carries four 8x8 luma blocks and one 8x8 block per
// chroma plane).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace lsm::mpeg {

/// One sample plane. Samples are 8-bit; indexing is row-major. The
/// accessors are defined inline: motion compensation and block store/load
/// touch tens of millions of samples per encoded sequence, and an
/// out-of-line call per sample dominated the encoder profile.
class Plane {
 public:
  Plane() = default;
  /// Creates a width x height plane filled with `fill`.
  Plane(int width, int height, std::uint8_t fill = 0);

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }

  std::uint8_t at(int x, int y) const {
    if (x < 0 || y < 0 || x >= width_ || y >= height_) {
      throw std::out_of_range("Plane::at: coordinates out of range");
    }
    return data_[index(x, y)];
  }
  void set(int x, int y, std::uint8_t value) {
    if (x < 0 || y < 0 || x >= width_ || y >= height_) {
      throw std::out_of_range("Plane::set: coordinates out of range");
    }
    data_[index(x, y)] = value;
  }

  /// Clamped read: coordinates outside the plane are clamped to the border
  /// (used by motion compensation near edges).
  std::uint8_t at_clamped(int x, int y) const noexcept {
    x = x < 0 ? 0 : (x >= width_ ? width_ - 1 : x);
    y = y < 0 ? 0 : (y >= height_ ? height_ - 1 : y);
    return data_[index(x, y)];
  }

  /// Raw pointer to row `y` (caller guarantees 0 <= y < height()). The
  /// in-bounds fast paths of block extraction/store run row-wise off these.
  const std::uint8_t* row(int y) const noexcept {
    return data_.data() + static_cast<std::size_t>(y) * width_;
  }
  std::uint8_t* row(int y) noexcept {
    return data_.data() + static_cast<std::size_t>(y) * width_;
  }

  const std::vector<std::uint8_t>& samples() const noexcept { return data_; }
  std::vector<std::uint8_t>& samples() noexcept { return data_; }

  friend bool operator==(const Plane& a, const Plane& b) = default;

 private:
  std::size_t index(int x, int y) const noexcept {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> data_;
};

/// A 4:2:0 frame: full-resolution luma, half-resolution chroma. Dimensions
/// must be multiples of 16 so the macroblock grid is exact.
struct Frame {
  Plane y;
  Plane cb;
  Plane cr;

  Frame() = default;
  /// Throws std::invalid_argument unless width and height are positive
  /// multiples of 16.
  Frame(int width, int height);

  int width() const noexcept { return y.width(); }
  int height() const noexcept { return y.height(); }
  int mb_cols() const noexcept { return y.width() / 16; }
  int mb_rows() const noexcept { return y.height() / 16; }

  friend bool operator==(const Frame& a, const Frame& b) = default;
};

/// Luma peak signal-to-noise ratio in dB between two equally-sized frames.
/// Returns +infinity for identical planes. Throws on size mismatch.
double psnr_y(const Frame& a, const Frame& b);

}  // namespace lsm::mpeg
