#include "mpeg/videogen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/rng.h"

namespace lsm::mpeg {

namespace {

/// Cheap deterministic 2-D hash noise in [0, 1).
double hash_noise(std::uint64_t seed, int x, int y) noexcept {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) *
       0x9E3779B97F4A7C15ULL;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(y)) *
       0xC2B2AE3D27D4EB4FULL;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 32;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint8_t clamp_pixel(double v) noexcept {
  return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
}

struct Object {
  double x, y;    // position
  double vx, vy;  // velocity per frame
  int w, h;
  double luma;
  double cb, cr;
};

}  // namespace

std::vector<Frame> generate_video(const VideoConfig& config) {
  if (config.width % 16 != 0 || config.height % 16 != 0 ||
      config.width <= 0 || config.height <= 0) {
    throw std::invalid_argument("generate_video: bad dimensions");
  }
  if (config.scenes.empty()) {
    throw std::invalid_argument("generate_video: no scenes");
  }

  std::vector<Frame> frames;
  lsm::sim::Rng rng(config.seed);

  int scene_index = 0;
  for (const VideoScene& scene : config.scenes) {
    if (scene.frames < 1 || scene.complexity <= 0.0) {
      throw std::invalid_argument("generate_video: bad scene");
    }
    // Scene-specific texture parameters.
    const std::uint64_t tex_seed = rng.next_u64();
    const double base_luma = rng.uniform(90.0, 160.0);
    const double freq_x = rng.uniform(0.02, 0.06) * scene.complexity;
    const double freq_y = rng.uniform(0.02, 0.06) * scene.complexity;
    const double wave_amp = 25.0 * scene.complexity;
    const double noise_amp = 18.0 * scene.complexity;
    // Up to 2 px/frame of camera pan: with M = 3 a P picture is three frames
    // from its reference, so the displacement stays inside the encoder's
    // default +-7 full-pel search window.
    const double pan_speed = 2.0 * scene.motion;
    const double scene_cb = rng.uniform(110.0, 146.0);
    const double scene_cr = rng.uniform(110.0, 146.0);

    // A few moving objects.
    std::vector<Object> objects;
    const int object_count = 2 + static_cast<int>(rng.uniform_int(0, 2));
    for (int k = 0; k < object_count; ++k) {
      Object obj;
      obj.x = rng.uniform(0.0, config.width - 32.0);
      obj.y = rng.uniform(0.0, config.height - 32.0);
      const double speed = 2.0 * scene.motion;
      obj.vx = rng.uniform(-speed, speed);
      obj.vy = rng.uniform(-speed, speed);
      obj.w = 16 + static_cast<int>(rng.uniform_int(0, 32));
      obj.h = 16 + static_cast<int>(rng.uniform_int(0, 32));
      obj.luma = rng.uniform(40.0, 220.0);
      obj.cb = rng.uniform(90.0, 166.0);
      obj.cr = rng.uniform(90.0, 166.0);
      objects.push_back(obj);
    }

    for (int f = 0; f < scene.frames; ++f) {
      Frame frame(config.width, config.height);
      // Integer pan per frame: the generator has no sub-pixel filter and the
      // codec searches full-pel vectors only (MPEG's half-pel refinement is
      // out of scope), so camera motion is quantized to whole pixels to keep
      // the background exactly motion-compensable — as real video is to a
      // half-pel-capable coder.
      const double pan = std::floor(pan_speed * f);
      const double pan_y = std::floor(0.35 * pan);

      for (int y = 0; y < config.height; ++y) {
        for (int x = 0; x < config.width; ++x) {
          const double tx = x + pan;
          const double ty = y + pan_y;
          double v = base_luma;
          v += wave_amp * std::sin(freq_x * tx) * std::cos(freq_y * ty);
          v += wave_amp * 0.5 * std::sin(0.11 * tx + 0.07 * ty);
          v += noise_amp * (hash_noise(tex_seed,
                                       static_cast<int>(std::floor(tx / 2.0)),
                                       static_cast<int>(std::floor(ty / 2.0))) -
                            0.5);
          frame.y.set(x, y, clamp_pixel(v));
        }
      }
      for (int y = 0; y < config.height / 2; ++y) {
        for (int x = 0; x < config.width / 2; ++x) {
          const double tx = 2.0 * x + pan;
          frame.cb.set(x, y,
                       clamp_pixel(scene_cb + 10.0 * std::sin(0.015 * tx)));
          frame.cr.set(x, y,
                       clamp_pixel(scene_cr + 10.0 * std::cos(0.017 * tx)));
        }
      }

      // Objects on top, bouncing off frame edges.
      for (Object& obj : objects) {
        const int ox = static_cast<int>(std::lround(obj.x));
        const int oy = static_cast<int>(std::lround(obj.y));
        for (int y = std::max(0, oy);
             y < std::min(config.height, oy + obj.h); ++y) {
          for (int x = std::max(0, ox);
               x < std::min(config.width, ox + obj.w); ++x) {
            frame.y.set(x, y, clamp_pixel(obj.luma +
                                          8.0 * hash_noise(tex_seed, x - ox,
                                                           y - oy)));
            frame.cb.set(x / 2, y / 2, clamp_pixel(obj.cb));
            frame.cr.set(x / 2, y / 2, clamp_pixel(obj.cr));
          }
        }
        obj.x += obj.vx;
        obj.y += obj.vy;
        if (obj.x < -obj.w || obj.x > config.width) obj.vx = -obj.vx;
        if (obj.y < -obj.h || obj.y > config.height) obj.vy = -obj.vy;
      }

      frames.push_back(std::move(frame));
    }
    ++scene_index;
  }
  (void)scene_index;
  return frames;
}

}  // namespace lsm::mpeg
