// Variable-length (entropy) coding layer.
//
// MPEG-1 uses fixed Huffman tables for DC sizes, AC run/level pairs, and
// motion vectors. We use exponential-Golomb codes instead: they are
// self-terminating, prefix-free, assign short codes to the small values that
// dominate after quantization, and need no table plumbing. This is a
// documented deviation (DESIGN.md): absolute picture sizes shift by a small
// constant factor versus the ISO tables, while the structure the smoothing
// paper depends on (I >> P >> B, long zero runs cheap) is unchanged.
//
// Layout per coded block: signed-Golomb DC (intra: differential from the
// previous DC of the same plane; inter: absolute), then AC (run, level)
// pairs as (ue(run), se(level)), terminated by the end-of-block symbol
// ue(64) in the run position (runs are always <= 62, so 64 is unambiguous).
#pragma once

#include <cstdint>
#include <vector>

#include "mpeg/bits.h"
#include "mpeg/zigzag.h"

namespace lsm::mpeg {

/// End-of-block marker written in the run position.
inline constexpr std::uint32_t kEndOfBlockRun = 64;

/// Unsigned exp-Golomb: 0 -> "1", 1 -> "010", 2 -> "011", ...
void put_ue(BitWriter& writer, std::uint32_t value);
std::uint32_t get_ue(BitReader& reader);

/// Signed exp-Golomb: 0, 1, -1, 2, -2, ... mapped to 0, 1, 2, 3, 4, ...
void put_se(BitWriter& writer, std::int32_t value);
std::int32_t get_se(BitReader& reader);

/// Writes one block: DC value (signed) then AC run/levels and EOB.
void put_block(BitWriter& writer, std::int16_t dc,
               const std::vector<RunLevel>& ac);

/// Same, over a raw (pointer, count) pair — the encoder feeds the stack
/// buffer run_length_encode_into fills, so block coding never allocates.
void put_block(BitWriter& writer, std::int16_t dc, const RunLevel* ac,
               std::size_t count);

/// Reads one block written by put_block.
struct DecodedBlock {
  std::int16_t dc = 0;
  std::vector<RunLevel> ac;
};
DecodedBlock get_block(BitReader& reader);

}  // namespace lsm::mpeg
