#include "mpeg/decoder.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "mpeg/coding.h"
#include "mpeg/vlc.h"

namespace lsm::mpeg {

namespace {

using detail::DcPredictors;
using lsm::trace::PictureType;

struct Anchor {
  Frame recon;
  int display_index = -1;
};

struct SliceState {
  DcPredictors dc;
  MotionVector mv_pred_f;
  MotionVector mv_pred_b;
  void reset() {
    dc.reset();
    mv_pred_f = MotionVector{};
    mv_pred_b = MotionVector{};
  }
};

/// One start-code unit in the stream.
struct Unit {
  std::uint8_t code = 0;
  std::vector<std::uint8_t> payload;  ///< unescaped
};

std::vector<Unit> split_units(const std::vector<std::uint8_t>& stream) {
  std::vector<Unit> units;
  std::int64_t at = find_start_code(stream, 0);
  if (at < 0) throw std::runtime_error("decode: no start code found");
  while (at >= 0) {
    const std::uint8_t code = stream[static_cast<std::size_t>(at + 3)];
    const std::int64_t body = at + 4;
    std::int64_t next = find_start_code(stream, body);
    const std::int64_t end = next < 0
                                 ? static_cast<std::int64_t>(stream.size())
                                 : next;
    Unit unit;
    unit.code = code;
    unit.payload = unescape_payload(std::vector<std::uint8_t>(
        stream.begin() + body, stream.begin() + end));
    units.push_back(std::move(unit));
    at = next;
  }
  return units;
}

CoeffBlock levels_from(const DecodedBlock& decoded, std::int16_t dc) {
  return run_length_decode(dc, decoded.ac);
}

void decode_intra_macroblock(BitReader& reader, SliceState& state, int qscale,
                             Frame& recon, int mb_x, int mb_y) {
  for (int b = 0; b < 6; ++b) {
    const DecodedBlock decoded = get_block(reader);
    int& predictor = state.dc.of(b);
    const int dc = predictor + decoded.dc;
    predictor = dc;
    const CoeffBlock levels =
        levels_from(decoded, static_cast<std::int16_t>(dc));
    detail::store_block(recon, mb_x, mb_y, b,
                        detail::reconstruct_intra(levels, qscale));
  }
}

void decode_inter_blocks(BitReader& reader, const MacroblockPixels& prediction,
                         int qscale, Frame& recon, int mb_x, int mb_y) {
  const std::uint32_t cbp = reader.get_bits(6);
  for (int b = 0; b < 6; ++b) {
    const Block pred = detail::block_of(prediction, b);
    if (cbp & (1u << (5 - b))) {
      const DecodedBlock decoded = get_block(reader);
      const CoeffBlock levels = levels_from(decoded, decoded.dc);
      detail::store_block(recon, mb_x, mb_y, b,
                          detail::reconstruct_inter(pred, levels, qscale));
    } else {
      detail::store_block(recon, mb_x, mb_y, b, pred);
    }
  }
}

MotionVector read_mv(BitReader& reader, MotionVector& predictor) {
  MotionVector mv;
  mv.dx = predictor.dx + get_se(reader);
  mv.dy = predictor.dy + get_se(reader);
  predictor = mv;
  return mv;
}

/// Decodes one slice's macroblock data. Throws on any parse error.
void decode_slice(const Unit& unit, const PictureHeader& header, int mb_y,
                  int mb_cols, const Anchor* forward_ref,
                  const Anchor* backward_ref, Frame& recon) {
  BitReader reader(unit.payload);
  const int qscale = static_cast<int>(reader.get_bits(5));
  if (qscale < 1 || qscale > 31) {
    throw std::runtime_error("decode: bad slice quantizer scale");
  }
  SliceState state;
  state.reset();
  const PictureType type = header.type;

  for (int mb_x = 0; mb_x < mb_cols; ++mb_x) {
    if (type == PictureType::I) {
      decode_intra_macroblock(reader, state, qscale, recon, mb_x, mb_y);
      continue;
    }
    if (type == PictureType::P) {
      const std::uint32_t mode = get_ue(reader);
      if (mode == mb_mode::kPIntra) {
        decode_intra_macroblock(reader, state, qscale, recon, mb_x, mb_y);
        state.mv_pred_f = MotionVector{};
        continue;
      }
      state.dc.reset();
      if (mode == mb_mode::kPSkip) {
        detail::store_macroblock(
            recon, mb_x, mb_y,
            extract_macroblock(forward_ref->recon, mb_x, mb_y));
        state.mv_pred_f = MotionVector{};
        continue;
      }
      if (mode != mb_mode::kPInter) {
        throw std::runtime_error("decode: bad P macroblock mode");
      }
      const MotionVector mv = read_mv(reader, state.mv_pred_f);
      const MacroblockPixels prediction =
          extract_macroblock_halfpel(forward_ref->recon, mb_x, mb_y, mv);
      decode_inter_blocks(reader, prediction, qscale, recon, mb_x, mb_y);
      continue;
    }

    // B picture.
    const std::uint32_t mode = get_ue(reader);
    if (mode == mb_mode::kBIntra) {
      decode_intra_macroblock(reader, state, qscale, recon, mb_x, mb_y);
      state.mv_pred_f = MotionVector{};
      state.mv_pred_b = MotionVector{};
      continue;
    }
    if (mode > mb_mode::kBIntra) {
      throw std::runtime_error("decode: bad B macroblock mode");
    }
    state.dc.reset();
    MacroblockPixels prediction;
    if (mode == mb_mode::kBForward) {
      const MotionVector mv = read_mv(reader, state.mv_pred_f);
      prediction =
          extract_macroblock_halfpel(forward_ref->recon, mb_x, mb_y, mv);
    } else if (mode == mb_mode::kBBackward) {
      if (backward_ref == nullptr) {
        throw std::runtime_error("decode: backward mode without reference");
      }
      const MotionVector mv = read_mv(reader, state.mv_pred_b);
      prediction =
          extract_macroblock_halfpel(backward_ref->recon, mb_x, mb_y, mv);
    } else {
      if (backward_ref == nullptr) {
        throw std::runtime_error(
            "decode: interpolated mode without backward reference");
      }
      const MotionVector mv_f = read_mv(reader, state.mv_pred_f);
      const MotionVector mv_b = read_mv(reader, state.mv_pred_b);
      prediction = average(
          extract_macroblock_halfpel(forward_ref->recon, mb_x, mb_y, mv_f),
          extract_macroblock_halfpel(backward_ref->recon, mb_x, mb_y, mv_b));
    }
    decode_inter_blocks(reader, prediction, qscale, recon, mb_x, mb_y);
  }
}

/// Conceals a damaged slice: colocated copy from the reference, or mid-gray
/// where no reference exists (leading I picture).
void conceal_slice(int mb_y, int mb_cols, const Anchor* reference,
                   Frame& recon) {
  for (int mb_x = 0; mb_x < mb_cols; ++mb_x) {
    if (reference != nullptr) {
      detail::store_macroblock(recon, mb_x, mb_y,
                               extract_macroblock(reference->recon, mb_x,
                                                  mb_y));
    } else {
      MacroblockPixels gray;
      gray.y.fill(128);
      gray.cb.fill(128);
      gray.cr.fill(128);
      detail::store_macroblock(recon, mb_x, mb_y, gray);
    }
  }
}

DecodeResult decode_impl(const std::vector<std::uint8_t>& stream,
                         bool resilient, ResilientDecodeResult* damage) {
  const std::vector<Unit> units = split_units(stream);
  if (units.empty() || units.front().code != startcode::kSequenceHeader) {
    throw std::runtime_error("decode: stream must begin with sequence header");
  }

  DecodeResult result;
  {
    BitReader reader(units.front().payload);
    result.sequence_header = read_sequence_header(reader);
  }
  const int width = result.sequence_header.width;
  const int height = result.sequence_header.height;
  if (width <= 0 || height <= 0 || width % 16 != 0 || height % 16 != 0) {
    throw std::runtime_error("decode: bad dimensions in sequence header");
  }
  const int mb_cols = width / 16;
  const int mb_rows = height / 16;

  std::optional<Anchor> older;
  std::optional<Anchor> newer;

  std::optional<PictureHeader> picture_header;
  Frame recon;
  int coded_index = 0;

  auto finish_picture = [&]() {
    if (!picture_header) return;
    DecodedPicture decoded;
    decoded.coded_index = coded_index++;
    decoded.display_index = picture_header->temporal_reference;
    decoded.type = picture_header->type;
    decoded.frame = recon;
    result.pictures.push_back(std::move(decoded));
    if (picture_header->type != PictureType::B) {
      older = std::move(newer);
      newer = Anchor{std::move(recon), picture_header->temporal_reference};
    }
    picture_header.reset();
  };

  for (std::size_t u = 1; u < units.size(); ++u) {
    const Unit& unit = units[u];
    if (unit.code == startcode::kSequenceEnd) {
      finish_picture();
      break;
    }
    if (unit.code == startcode::kGroup ||
        unit.code == startcode::kSequenceHeader) {
      finish_picture();
      continue;
    }
    if (unit.code == startcode::kPicture) {
      finish_picture();
      try {
        BitReader reader(unit.payload);
        picture_header = read_picture_header(reader);
      } catch (const std::exception&) {
        if (!resilient) throw;
        ++damage->skipped_units;  // picture lost; following slices skip too
        picture_header.reset();
        continue;
      }
      recon = Frame(width, height);
      continue;
    }
    if (unit.code >= startcode::kSliceFirst &&
        unit.code <= startcode::kSliceLast) {
      if (!picture_header) {
        if (resilient) {
          ++damage->skipped_units;
          continue;
        }
        throw std::runtime_error("decode: slice outside any picture");
      }
      const int mb_y = unit.code - startcode::kSliceFirst;
      if (mb_y >= mb_rows) {
        if (resilient) {
          ++damage->skipped_units;
          continue;
        }
        throw std::runtime_error("decode: bad slice row");
      }

      // Reference selection, mirroring the encoder.
      const Anchor* forward_ref = nullptr;
      const Anchor* backward_ref = nullptr;
      const PictureType type = picture_header->type;
      const int di = picture_header->temporal_reference;
      if (type != PictureType::I && !newer) {
        // Predicted picture with no decodable reference (start-of-stream
        // corruption): unrecoverable in strict mode, skippable otherwise.
        if (resilient) {
          ++damage->skipped_units;
          continue;
        }
        throw std::runtime_error("decode: predicted picture without reference");
      }
      if (type == PictureType::P) {
        forward_ref = &*newer;
      } else if (type == PictureType::B) {
        if (di > newer->display_index) {
          forward_ref = &*newer;
        } else {
          forward_ref = older ? &*older : &*newer;
          backward_ref = &*newer;
        }
      }

      if (resilient) {
        try {
          decode_slice(unit, *picture_header, mb_y, mb_cols, forward_ref,
                       backward_ref, recon);
        } catch (const std::exception&) {
          // Resynchronize at the next slice start code; conceal this one.
          conceal_slice(mb_y, mb_cols,
                        forward_ref != nullptr ? forward_ref
                        : newer                ? &*newer
                                               : nullptr,
                        recon);
          ++damage->damaged_slices;
        }
      } else {
        decode_slice(unit, *picture_header, mb_y, mb_cols, forward_ref,
                     backward_ref, recon);
      }
      continue;
    }
    if (resilient) {
      ++damage->skipped_units;
      continue;
    }
    throw std::runtime_error("decode: unknown start code");
  }

  finish_picture();
  return result;
}

}  // namespace

std::vector<Frame> DecodeResult::display_frames() const {
  std::vector<DecodedPicture const*> sorted;
  sorted.reserve(pictures.size());
  for (const DecodedPicture& picture : pictures) sorted.push_back(&picture);
  std::sort(sorted.begin(), sorted.end(),
            [](const DecodedPicture* a, const DecodedPicture* b) {
              return a->display_index < b->display_index;
            });
  std::vector<Frame> frames;
  frames.reserve(sorted.size());
  for (const DecodedPicture* picture : sorted) frames.push_back(picture->frame);
  return frames;
}

DecodeResult decode_stream(const std::vector<std::uint8_t>& stream) {
  return decode_impl(stream, false, nullptr);
}

ResilientDecodeResult decode_stream_resilient(
    const std::vector<std::uint8_t>& stream) {
  ResilientDecodeResult resilient;
  resilient.result = decode_impl(stream, true, &resilient);
  return resilient;
}

}  // namespace lsm::mpeg
