// AVX2 tier of the motion-search kernels: vpsadbw over 32 lanes — two
// 16-pixel macroblock rows per instruction — instead of one row per
// _mm_sad_epu8. Compiled with -mavx2 for THIS translation unit only;
// reached solely through the *_fast dispatchers after use_avx2_kernels()
// has checked the active runtime level.
//
// Identity: a SAD is an exact integer sum, so lane grouping cannot change
// it; what CAN change search decisions is the early-termination cutoff.
// The SSE2 sad_16x16 compares its partial sum against stop_at after rows
// 0-3, 0-7, and 0-11 — these kernels accumulate two rows per add but
// compare at the very same row boundaries, so every (partial, stop_at)
// comparison sees the identical value and the candidate walk of
// search_fullpel takes the identical branches as the SSE2/scalar stages.
#include "mpeg/simd_kernels.h"

#if defined(LSM_MPEG_HAVE_AVX2)

#include <immintrin.h>

namespace lsm::mpeg::avx2 {

namespace {

/// Two stride-separated 16-byte rows in one register, low lane first.
inline __m256i load_rows(const std::uint8_t* p, int stride) noexcept {
  const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i hi =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + stride));
  return _mm256_inserti128_si256(_mm256_castsi128_si256(lo), hi, 1);
}

inline int horizontal_sum(__m256i sad_accumulator) noexcept {
  const __m128i both = _mm_add_epi64(
      _mm256_castsi256_si128(sad_accumulator),
      _mm256_extracti128_si256(sad_accumulator, 1));
  return _mm_cvtsi128_si32(both) +
         _mm_cvtsi128_si32(_mm_srli_si128(both, 8));
}

/// The current macroblock's 16 rows preloaded as eight row pairs — they
/// are invariant across every candidate of a search, so search_fullpel
/// loads them once instead of per candidate.
struct CurrentRows {
  __m256i pair[8];
};

inline CurrentRows load_current(const std::uint8_t* cur,
                                int cur_stride) noexcept {
  CurrentRows rows;
  for (int y = 0; y < 16; y += 2) {
    rows.pair[y / 2] = load_rows(cur + y * cur_stride, cur_stride);
  }
  return rows;
}

/// SAD of the preloaded current block against a reference window, with the
/// same rows-0-3 / 0-7 / 0-11 cutoff boundaries as the SSE2 sad_16x16 —
/// every (partial, stop_at) comparison sees the identical value.
inline int sad_preloaded(const CurrentRows& cur, const std::uint8_t* ref,
                         int ref_stride, int stop_at) noexcept {
  __m256i acc = _mm256_setzero_si256();
  for (int y = 0; y < 16; y += 4) {
    for (int r = 0; r < 4; r += 2) {
      const __m256i b = load_rows(ref + (y + r) * ref_stride, ref_stride);
      acc = _mm256_add_epi64(acc,
                             _mm256_sad_epu8(cur.pair[(y + r) / 2], b));
    }
    if (y < 12) {
      const int partial = horizontal_sum(acc);
      if (partial >= stop_at) return partial;
    }
  }
  return horizontal_sum(acc);
}

}  // namespace

int sad_16x16(const std::uint8_t* cur, int cur_stride,
              const std::uint8_t* ref, int ref_stride, int stop_at) noexcept {
  __m256i acc = _mm256_setzero_si256();
  for (int y = 0; y < 16; y += 4) {
    for (int r = 0; r < 4; r += 2) {
      const __m256i a = load_rows(cur + (y + r) * cur_stride, cur_stride);
      const __m256i b = load_rows(ref + (y + r) * ref_stride, ref_stride);
      acc = _mm256_add_epi64(acc, _mm256_sad_epu8(a, b));
    }
    if (y < 12) {
      const int partial = horizontal_sum(acc);
      if (partial >= stop_at) return partial;
    }
  }
  return horizontal_sum(acc);
}

MotionSearchResult search_fullpel(const std::uint8_t* cur, int cur_stride,
                                  const std::uint8_t* patch, int patch_stride,
                                  int range, int zero_bias) noexcept {
  const auto patch_at = [&](int dx, int dy) {
    return patch + (dy + range + 1) * patch_stride + (dx + range + 1);
  };
  const CurrentRows rows = load_current(cur, cur_stride);
  MotionSearchResult best;
  best.mv = MotionVector{0, 0};
  best.sad =
      sad_preloaded(rows, patch_at(0, 0), patch_stride, 0x7FFFFFFF) -
      zero_bias;
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const int sad =
          sad_preloaded(rows, patch_at(dx, dy), patch_stride, best.sad);
      if (sad < best.sad) {
        best.mv = MotionVector{dx, dy};
        best.sad = sad;
      }
    }
  }
  best.sad = sad_preloaded(rows, patch_at(best.mv.dx, best.mv.dy),
                           patch_stride, 0x7FFFFFFF);
  return best;
}

int macroblock_luma_sad(const MacroblockPixels& a,
                        const MacroblockPixels& b) noexcept {
  __m256i acc = _mm256_setzero_si256();
  for (int k = 0; k < 256; k += 32) {
    const __m256i pa =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.y.data() + k));
    const __m256i pb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.y.data() + k));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(pa, pb));
  }
  return horizontal_sum(acc);
}

MacroblockPixels average(const MacroblockPixels& a,
                         const MacroblockPixels& b) noexcept {
  MacroblockPixels out;
  for (int k = 0; k < 256; k += 32) {
    const __m256i pa =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.y.data() + k));
    const __m256i pb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.y.data() + k));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out.y.data() + k),
                        _mm256_avg_epu8(pa, pb));
  }
  for (int k = 0; k < 64; k += 32) {
    const __m256i cb_a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.cb.data() + k));
    const __m256i cb_b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.cb.data() + k));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out.cb.data() + k),
                        _mm256_avg_epu8(cb_a, cb_b));
    const __m256i cr_a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.cr.data() + k));
    const __m256i cr_b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.cr.data() + k));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out.cr.data() + k),
                        _mm256_avg_epu8(cr_a, cr_b));
  }
  return out;
}

}  // namespace lsm::mpeg::avx2

#endif  // LSM_MPEG_HAVE_AVX2
