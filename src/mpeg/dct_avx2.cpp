// AVX2 tier of the 8x8 DCT kernels, plus the fused DCT+quantization
// entries. Compiled with -mavx2 (and -ffp-contract=off: the FP identity
// depends on the mul/add sequences staying separately rounded) for THIS
// translation unit only; reached solely through the *_fast dispatchers
// after use_avx2_kernels() has checked the active runtime level.
//
// Bitwise identity: the SSE2 kernels (dct.cpp) accumulate two adjacent
// output lanes per vector in ascending input order, each lane performing
// exactly the scalar loop's mul/add sequence. These kernels are the same
// loops at four lanes per __m256d — the per-lane operation sequence is
// unchanged, only the number of independent lanes in one register grows,
// so every double (and every rounded coefficient) still matches the
// scalar reference bit for bit. Rounding (lround, round half away from
// zero) stays scalar per lane, as in the SSE2 tier.
#include "mpeg/simd_kernels.h"

#if defined(LSM_MPEG_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>
#include <cstdlib>

#include "mpeg/quant.h"

namespace lsm::mpeg::avx2 {

namespace {

/// Row pass shared by the plain and fused forward kernels:
/// rows[y][u] = sum_x transposed[x][u] * spatial[y*8+x], ascending x per
/// lane (the scalar order for every u).
inline void forward_rows(const Block& spatial, const DctBasisTable& b,
                         double rows[8][8]) noexcept {
  alignas(32) double sd[64];
  for (int k = 0; k < 64; ++k) sd[k] = static_cast<double>(spatial[k]);
  for (int y = 0; y < 8; ++y) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (int x = 0; x < 8; ++x) {
      const __m256d s = _mm256_broadcast_sd(&sd[y * 8 + x]);
      acc0 = _mm256_add_pd(
          acc0, _mm256_mul_pd(_mm256_load_pd(&b.transposed[x][0]), s));
      acc1 = _mm256_add_pd(
          acc1, _mm256_mul_pd(_mm256_load_pd(&b.transposed[x][4]), s));
    }
    _mm256_store_pd(&rows[y][0], acc0);
    _mm256_store_pd(&rows[y][4], acc1);
  }
}

/// Column pass for output row v, lane group p (u = 4p..4p+3):
/// sum_y value[v][y] * rows[y][u], ascending y per lane.
inline __m256d forward_cols(const DctBasisTable& b,
                            const double rows[8][8], int v,
                            int p) noexcept {
  __m256d acc = _mm256_setzero_pd();
  for (int y = 0; y < 8; ++y) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_broadcast_sd(&b.value[v][y]),
                           _mm256_load_pd(&rows[y][4 * p])));
  }
  return acc;
}

/// trunc((2*|value| + divisor) / (2*divisor)) for four lanes — the
/// magnitude part of divide_round; exactness argument in quant.h.
inline __m128i round_half_away_quad(__m256d abs_value,
                                    __m256d divisor) noexcept {
  const __m256d num = _mm256_add_pd(_mm256_add_pd(abs_value, abs_value),
                                    divisor);
  const __m256d den = _mm256_add_pd(divisor, divisor);
  return _mm256_cvttpd_epi32(_mm256_div_pd(num, den));
}

int divide_round(int value, int divisor) noexcept {
  const int sign = value < 0 ? -1 : 1;
  return sign * ((std::abs(value) * 2 + divisor) / (2 * divisor));
}

}  // namespace

CoeffBlock forward_dct(const Block& spatial) {
  const DctBasisTable& b = dct_basis();
  alignas(32) double rows[8][8];
  forward_rows(spatial, b, rows);
  CoeffBlock out{};
  for (int v = 0; v < 8; ++v) {
    for (int p = 0; p < 2; ++p) {
      alignas(32) double lanes[4];
      _mm256_store_pd(lanes, forward_cols(b, rows, v, p));
      for (int l = 0; l < 4; ++l) {
        out[static_cast<std::size_t>(v * 8 + 4 * p + l)] =
            static_cast<std::int16_t>(std::lround(lanes[l]));
      }
    }
  }
  return out;
}

Block inverse_dct(const CoeffBlock& coeffs) {
  const DctBasisTable& b = dct_basis();
  alignas(32) double cd[64];
  for (int k = 0; k < 64; ++k) cd[k] = static_cast<double>(coeffs[k]);

  // Column inverse: cols[y][u] = sum_v value[v][y] * cd[v*8+u], ascending
  // v per lane.
  alignas(32) double cols[8][8];
  for (int y = 0; y < 8; ++y) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (int v = 0; v < 8; ++v) {
      const __m256d basis_vy = _mm256_broadcast_sd(&b.value[v][y]);
      acc0 = _mm256_add_pd(
          acc0, _mm256_mul_pd(basis_vy, _mm256_load_pd(&cd[v * 8])));
      acc1 = _mm256_add_pd(
          acc1, _mm256_mul_pd(basis_vy, _mm256_load_pd(&cd[v * 8 + 4])));
    }
    _mm256_store_pd(&cols[y][0], acc0);
    _mm256_store_pd(&cols[y][4], acc1);
  }

  // Row inverse: out[y*8+x] = lround(sum_u value[u][x] * cols[y][u]),
  // four adjacent x lanes, ascending-u accumulation.
  Block out{};
  for (int y = 0; y < 8; ++y) {
    for (int p = 0; p < 2; ++p) {
      __m256d acc = _mm256_setzero_pd();
      for (int u = 0; u < 8; ++u) {
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(_mm256_broadcast_sd(&cols[y][u]),
                               _mm256_loadu_pd(&b.value[u][4 * p])));
      }
      alignas(32) double lanes[4];
      _mm256_store_pd(lanes, acc);
      for (int l = 0; l < 4; ++l) {
        out[static_cast<std::size_t>(y * 8 + 4 * p + l)] =
            static_cast<std::int16_t>(std::lround(lanes[l]));
      }
    }
  }
  return out;
}

CoeffBlock dct_quantize_intra(const Block& spatial, int quantizer_scale) {
  const DctBasisTable& b = dct_basis();
  const auto& matrix = intra_quant_matrix();
  alignas(32) double rows[8][8];
  forward_rows(spatial, b, rows);
  CoeffBlock levels{};
  const double scale = static_cast<double>(quantizer_scale);
  int dc = 0;
  for (int v = 0; v < 8; ++v) {
    for (int p = 0; p < 2; ++p) {
      alignas(32) double lanes[4];
      _mm256_store_pd(lanes, forward_cols(b, rows, v, p));
      const int k0 = v * 8 + 4 * p;
      // The rounded coefficients never leave registers as int16: quantize
      // the 8*|coeff| magnitudes directly (the int16 round trip the
      // unfused path takes is value-preserving — |coeff| <= 8*1024 — so
      // skipping it cannot change a level).
      alignas(32) double mags[4];
      bool neg[4];
      for (int l = 0; l < 4; ++l) {
        const long c = std::lround(lanes[l]);
        if (k0 + l == 0) dc = static_cast<int>(c);
        neg[l] = c < 0;
        mags[l] = static_cast<double>(8 * std::labs(c));
      }
      const __m256d divisor = _mm256_set_pd(scale * matrix[k0 + 3],
                                            scale * matrix[k0 + 2],
                                            scale * matrix[k0 + 1],
                                            scale * matrix[k0]);
      alignas(16) int q[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(q),
                      round_half_away_quad(_mm256_load_pd(mags), divisor));
      for (int l = 0; l < 4; ++l) {
        levels[static_cast<std::size_t>(k0 + l)] =
            static_cast<std::int16_t>(neg[l] ? -q[l] : q[l]);
      }
    }
  }
  // DC: fixed divisor of 8, independent of the scale (MPEG-1 semantics);
  // recomputed scalar over the saved coefficient, replacing the generic
  // lane result.
  levels[0] = static_cast<std::int16_t>(divide_round(dc, 8));
  return levels;
}

CoeffBlock dct_quantize_inter(const Block& spatial, int quantizer_scale) {
  const DctBasisTable& b = dct_basis();
  alignas(32) double rows[8][8];
  forward_rows(spatial, b, rows);
  CoeffBlock levels{};
  // C integer division truncates toward zero, exactly what cvttpd does
  // (exactness argument in quant.h), so the signed case needs no
  // magnitude split.
  const __m256d divisor = _mm256_set1_pd(quantizer_scale * 16);
  for (int v = 0; v < 8; ++v) {
    for (int p = 0; p < 2; ++p) {
      alignas(32) double lanes[4];
      _mm256_store_pd(lanes, forward_cols(b, rows, v, p));
      alignas(32) double nums[4];
      for (int l = 0; l < 4; ++l) {
        nums[l] = static_cast<double>(8 * std::lround(lanes[l]));
      }
      const __m128i q = _mm256_cvttpd_epi32(
          _mm256_div_pd(_mm256_load_pd(nums), divisor));
      alignas(16) int qi[4];
      _mm_store_si128(reinterpret_cast<__m128i*>(qi), q);
      const int k0 = v * 8 + 4 * p;
      for (int l = 0; l < 4; ++l) {
        levels[static_cast<std::size_t>(k0 + l)] =
            static_cast<std::int16_t>(qi[l]);
      }
    }
  }
  return levels;
}

}  // namespace lsm::mpeg::avx2

#endif  // LSM_MPEG_HAVE_AVX2
