#include "mpeg/motion.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "mpeg/fastpath.h"
#include "mpeg/simd_kernels.h"

#if LSM_MPEG_SIMD
#include <emmintrin.h>
#endif

namespace lsm::mpeg {

namespace {

int floor_div2(int v) noexcept { return v >= 0 ? v / 2 : (v - 1) / 2; }

/// Bilinear sample of `plane` at half-pel coordinates (2x is one pixel).
std::uint8_t sample_halfpel(const Plane& plane, int x_half,
                            int y_half) noexcept {
  const int x0 = floor_div2(x_half);
  const int y0 = floor_div2(y_half);
  const bool frac_x = (x_half & 1) != 0;
  const bool frac_y = (y_half & 1) != 0;
  if (!frac_x && !frac_y) return plane.at_clamped(x0, y0);
  if (frac_x && !frac_y) {
    return static_cast<std::uint8_t>(
        (plane.at_clamped(x0, y0) + plane.at_clamped(x0 + 1, y0) + 1) / 2);
  }
  if (!frac_x && frac_y) {
    return static_cast<std::uint8_t>(
        (plane.at_clamped(x0, y0) + plane.at_clamped(x0, y0 + 1) + 1) / 2);
  }
  return static_cast<std::uint8_t>(
      (plane.at_clamped(x0, y0) + plane.at_clamped(x0 + 1, y0) +
       plane.at_clamped(x0, y0 + 1) + plane.at_clamped(x0 + 1, y0 + 1) + 2) /
      4);
}

/// Chroma vector: luma half-pel vector halved with truncation toward zero
/// (ISO 11172-2 semantics), still in half-pel units of the chroma plane.
int chroma_component(int luma_half) noexcept { return luma_half / 2; }

}  // namespace

MacroblockPixels extract_macroblock(const Frame& frame, int mb_x, int mb_y,
                                    MotionVector mv) {
  MacroblockPixels out;
  const int y0 = mb_y * 16 + mv.dy;
  const int x0 = mb_x * 16 + mv.dx;
  const int cy0 = mb_y * 8 + mv.dy / 2;
  const int cx0 = mb_x * 8 + mv.dx / 2;
  // Interior windows (the overwhelming majority at typical search ranges)
  // copy row-wise; clamping is the identity there, so the bytes match the
  // clamped loops below exactly.
  if (x0 >= 0 && y0 >= 0 && x0 + 16 <= frame.y.width() &&
      y0 + 16 <= frame.y.height() && cx0 >= 0 && cy0 >= 0 &&
      cx0 + 8 <= frame.cb.width() && cy0 + 8 <= frame.cb.height()) {
    for (int y = 0; y < 16; ++y) {
      std::memcpy(out.y.data() + y * 16, frame.y.row(y0 + y) + x0, 16);
    }
    for (int y = 0; y < 8; ++y) {
      std::memcpy(out.cb.data() + y * 8, frame.cb.row(cy0 + y) + cx0, 8);
      std::memcpy(out.cr.data() + y * 8, frame.cr.row(cy0 + y) + cx0, 8);
    }
    return out;
  }
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      out.y[static_cast<std::size_t>(y * 16 + x)] =
          frame.y.at_clamped(x0 + x, y0 + y);
    }
  }
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      out.cb[static_cast<std::size_t>(y * 8 + x)] =
          frame.cb.at_clamped(cx0 + x, cy0 + y);
      out.cr[static_cast<std::size_t>(y * 8 + x)] =
          frame.cr.at_clamped(cx0 + x, cy0 + y);
    }
  }
  return out;
}

MacroblockPixels average(const MacroblockPixels& a,
                         const MacroblockPixels& b) {
  MacroblockPixels out;
  for (std::size_t k = 0; k < out.y.size(); ++k) {
    out.y[k] = static_cast<std::uint8_t>((a.y[k] + b.y[k] + 1) / 2);
  }
  for (std::size_t k = 0; k < out.cb.size(); ++k) {
    out.cb[k] = static_cast<std::uint8_t>((a.cb[k] + b.cb[k] + 1) / 2);
    out.cr[k] = static_cast<std::uint8_t>((a.cr[k] + b.cr[k] + 1) / 2);
  }
  return out;
}

int luma_sad(const Frame& current, const Frame& reference, int mb_x, int mb_y,
             MotionVector mv) {
  const int cy = mb_y * 16;
  const int cx = mb_x * 16;
  int total = 0;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      const int a = current.y.at_clamped(cx + x, cy + y);
      const int b = reference.y.at_clamped(cx + mv.dx + x, cy + mv.dy + y);
      total += std::abs(a - b);
    }
  }
  return total;
}

MacroblockPixels extract_macroblock_halfpel(const Frame& frame, int mb_x,
                                            int mb_y, MotionVector half_pel) {
  MacroblockPixels out;
  const int y0 = mb_y * 32 + half_pel.dy;  // half-pel origin
  const int x0 = mb_x * 32 + half_pel.dx;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      out.y[static_cast<std::size_t>(y * 16 + x)] =
          sample_halfpel(frame.y, x0 + 2 * x, y0 + 2 * y);
    }
  }
  const int cy0 = mb_y * 16 + chroma_component(half_pel.dy);
  const int cx0 = mb_x * 16 + chroma_component(half_pel.dx);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      out.cb[static_cast<std::size_t>(y * 8 + x)] =
          sample_halfpel(frame.cb, cx0 + 2 * x, cy0 + 2 * y);
      out.cr[static_cast<std::size_t>(y * 8 + x)] =
          sample_halfpel(frame.cr, cx0 + 2 * x, cy0 + 2 * y);
    }
  }
  return out;
}

int luma_sad_halfpel(const Frame& current, const Frame& reference, int mb_x,
                     int mb_y, MotionVector half_pel) {
  const int cy = mb_y * 16;
  const int cx = mb_x * 16;
  const int ry0 = mb_y * 32 + half_pel.dy;
  const int rx0 = mb_x * 32 + half_pel.dx;
  int total = 0;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      const int a = current.y.at_clamped(cx + x, cy + y);
      const int b = sample_halfpel(reference.y, rx0 + 2 * x, ry0 + 2 * y);
      total += std::abs(a - b);
    }
  }
  return total;
}

MotionSearchResult search_motion_halfpel(const Frame& current,
                                         const Frame& reference, int mb_x,
                                         int mb_y, int range, int zero_bias) {
  // Stage 1: full-pel candidate.
  const MotionSearchResult full =
      search_motion(current, reference, mb_x, mb_y, range, zero_bias);
  MotionSearchResult best;
  best.mv = MotionVector{2 * full.mv.dx, 2 * full.mv.dy};
  best.sad = full.sad;
  // Stage 2: +-1 half-pel refinement around the full-pel winner.
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const MotionVector candidate{2 * full.mv.dx + dx, 2 * full.mv.dy + dy};
      const int sad =
          luma_sad_halfpel(current, reference, mb_x, mb_y, candidate);
      if (sad < best.sad) {
        best.mv = candidate;
        best.sad = sad;
      }
    }
  }
  return best;
}

MotionSearchResult search_motion(const Frame& current, const Frame& reference,
                                 int mb_x, int mb_y, int range,
                                 int zero_bias) {
  MotionSearchResult best;
  best.mv = MotionVector{0, 0};
  best.sad = luma_sad(current, reference, mb_x, mb_y, best.mv) - zero_bias;
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const MotionVector mv{dx, dy};
      const int sad = luma_sad(current, reference, mb_x, mb_y, mv);
      if (sad < best.sad) {
        best.mv = mv;
        best.sad = sad;
      }
    }
  }
  // Report the true SAD for the winner (undo the zero bias if it won).
  best.sad = luma_sad(current, reference, mb_x, mb_y, best.mv);
  return best;
}

#if LSM_MPEG_SIMD

namespace {

inline int horizontal_sum(__m128i sad_accumulator) noexcept {
  return _mm_cvtsi128_si32(sad_accumulator) +
         _mm_cvtsi128_si32(_mm_srli_si128(sad_accumulator, 8));
}

/// SAD of a 16x16 window with a row-group cutoff: checks the partial sum
/// against `stop_at` every four rows, so a hopeless candidate costs a
/// quarter of a full SAD on average.
inline int sad_16x16(const std::uint8_t* cur, int cur_stride,
                     const std::uint8_t* ref, int ref_stride,
                     int stop_at) noexcept {
  __m128i acc = _mm_setzero_si128();
  for (int y = 0; y < 16; y += 4) {
    for (int r = 0; r < 4; ++r) {
      const __m128i a = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(cur + (y + r) * cur_stride));
      const __m128i b = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(ref + (y + r) * ref_stride));
      acc = _mm_add_epi64(acc, _mm_sad_epu8(a, b));
    }
    if (y < 12) {
      const int partial = horizontal_sum(acc);
      if (partial >= stop_at) return partial;
    }
  }
  return horizontal_sum(acc);
}

/// One 16-sample half-pel interpolated reference row starting at `ref`
/// (the top-left full-pel sample of the row's window).
inline __m128i halfpel_row(const std::uint8_t* ref, int stride, bool frac_x,
                           bool frac_y) noexcept {
  const __m128i a =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ref));
  if (!frac_x && !frac_y) return a;
  if (frac_x && !frac_y) {
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ref + 1));
    return _mm_avg_epu8(a, b);  // (a + b + 1) / 2, as sample_halfpel
  }
  if (!frac_x && frac_y) {
    const __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ref + stride));
    return _mm_avg_epu8(a, c);
  }
  // Four-tap (a + b + c + d + 2) / 4 must widen: chained avg_epu8 rounds
  // differently.
  const __m128i b =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ref + 1));
  const __m128i c =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ref + stride));
  const __m128i d =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ref + stride + 1));
  const __m128i zero = _mm_setzero_si128();
  const __m128i two = _mm_set1_epi16(2);
  __m128i lo = _mm_add_epi16(
      _mm_add_epi16(_mm_unpacklo_epi8(a, zero), _mm_unpacklo_epi8(b, zero)),
      _mm_add_epi16(_mm_unpacklo_epi8(c, zero), _mm_unpacklo_epi8(d, zero)));
  __m128i hi = _mm_add_epi16(
      _mm_add_epi16(_mm_unpackhi_epi8(a, zero), _mm_unpackhi_epi8(b, zero)),
      _mm_add_epi16(_mm_unpackhi_epi8(c, zero), _mm_unpackhi_epi8(d, zero)));
  lo = _mm_srli_epi16(_mm_add_epi16(lo, two), 2);
  hi = _mm_srli_epi16(_mm_add_epi16(hi, two), 2);
  return _mm_packus_epi16(lo, hi);
}

/// 8-sample variant of halfpel_row for the chroma planes: identical
/// formulas lane for lane ((a+b+1)/2 averages, widened four-tap), only the
/// register's low 8 bytes are meaningful.
inline __m128i halfpel_row8(const std::uint8_t* ref, int stride, bool frac_x,
                            bool frac_y) noexcept {
  const __m128i a =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(ref));
  if (!frac_x && !frac_y) return a;
  if (frac_x && !frac_y) {
    const __m128i b =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(ref + 1));
    return _mm_avg_epu8(a, b);
  }
  if (!frac_x && frac_y) {
    const __m128i c =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(ref + stride));
    return _mm_avg_epu8(a, c);
  }
  const __m128i b =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(ref + 1));
  const __m128i c =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(ref + stride));
  const __m128i d =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(ref + stride + 1));
  const __m128i zero = _mm_setzero_si128();
  const __m128i two = _mm_set1_epi16(2);
  __m128i lo = _mm_add_epi16(
      _mm_add_epi16(_mm_unpacklo_epi8(a, zero), _mm_unpacklo_epi8(b, zero)),
      _mm_add_epi16(_mm_unpacklo_epi8(c, zero), _mm_unpacklo_epi8(d, zero)));
  lo = _mm_srli_epi16(_mm_add_epi16(lo, two), 2);
  return _mm_packus_epi16(lo, zero);
}

/// Half-pel SAD over a prepared reference window (same cutoff contract as
/// sad_16x16).
inline int sad_16x16_halfpel(const std::uint8_t* cur, int cur_stride,
                             const std::uint8_t* ref, int ref_stride,
                             bool frac_x, bool frac_y, int stop_at) noexcept {
  __m128i acc = _mm_setzero_si128();
  for (int y = 0; y < 16; y += 4) {
    for (int r = 0; r < 4; ++r) {
      const __m128i a = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(cur + (y + r) * cur_stride));
      const __m128i b =
          halfpel_row(ref + (y + r) * ref_stride, ref_stride, frac_x, frac_y);
      acc = _mm_add_epi64(acc, _mm_sad_epu8(a, b));
    }
    if (y < 12) {
      const int partial = horizontal_sum(acc);
      if (partial >= stop_at) return partial;
    }
  }
  return horizontal_sum(acc);
}

/// A materialized at_clamped() window of the reference luma plane covering
/// every candidate of one motion search: data[y*stride+x] equals
/// at_clamped(origin_x + x, origin_y + y) by construction, so SADs taken
/// from the patch equal the scalar clamped SADs exactly — which is what
/// lets border macroblocks (where candidate windows hang off the frame)
/// run the packed kernels instead of the per-pixel clamped fallback.
struct SearchPatch {
  static constexpr int kMaxSide = 2 * 64 + 18;  // max search range, halfpel
  std::array<std::uint8_t, kMaxSide * kMaxSide> data;
  int stride = 0;
};

void fill_patch(const Frame& reference, int origin_x, int origin_y, int side,
                SearchPatch& patch) noexcept {
  patch.stride = side;
  const int w = reference.width();
  const int h = reference.height();
  const std::uint8_t* samples = reference.y.samples().data();
  for (int y = 0; y < side; ++y) {
    const int ry = std::clamp(origin_y + y, 0, h - 1);
    const std::uint8_t* row = samples + ry * w;
    std::uint8_t* out = patch.data.data() + y * side;
    // Left clamp run, interior memcpy, right clamp run.
    int x = std::min(side, std::max(0, -origin_x));
    std::memset(out, row[0], static_cast<std::size_t>(x));
    const int mid_end = std::max(x, std::min(side, w - origin_x));
    if (mid_end > x) {
      std::memcpy(out + x, row + origin_x + x,
                  static_cast<std::size_t>(mid_end - x));
      x = mid_end;
    }
    std::memset(out + x, row[w - 1], static_cast<std::size_t>(side - x));
  }
}

}  // namespace

int luma_sad_fast(const Frame& current, const Frame& reference, int mb_x,
                  int mb_y, MotionVector mv, int stop_at) {
  const int rx = mb_x * 16 + mv.dx;
  const int ry = mb_y * 16 + mv.dy;
  if (rx < 0 || ry < 0 || rx + 16 > reference.width() ||
      ry + 16 > reference.height()) {
    return luma_sad(current, reference, mb_x, mb_y, mv);  // clamped border
  }
  const int cw = current.width();
  const int rw = reference.width();
  const std::uint8_t* cur =
      current.y.samples().data() + (mb_y * 16) * cw + mb_x * 16;
  const std::uint8_t* ref = reference.y.samples().data() + ry * rw + rx;
#if defined(LSM_MPEG_HAVE_AVX2)
  if (use_avx2_kernels()) return avx2::sad_16x16(cur, cw, ref, rw, stop_at);
#endif
  return sad_16x16(cur, cw, ref, rw, stop_at);
}

int luma_sad_halfpel_fast(const Frame& current, const Frame& reference,
                          int mb_x, int mb_y, MotionVector half_pel,
                          int stop_at) {
  const int x0 = floor_div2(mb_x * 32 + half_pel.dx);
  const int y0 = floor_div2(mb_y * 32 + half_pel.dy);
  const bool frac_x = ((mb_x * 32 + half_pel.dx) & 1) != 0;
  const bool frac_y = ((mb_y * 32 + half_pel.dy) & 1) != 0;
  const int margin_x = frac_x ? 1 : 0;
  const int margin_y = frac_y ? 1 : 0;
  if (x0 < 0 || y0 < 0 || x0 + 16 + margin_x > reference.width() ||
      y0 + 16 + margin_y > reference.height()) {
    return luma_sad_halfpel(current, reference, mb_x, mb_y, half_pel);
  }
  const int cw = current.width();
  const int rw = reference.width();
  const std::uint8_t* cur =
      current.y.samples().data() + (mb_y * 16) * cw + mb_x * 16;
  const std::uint8_t* ref = reference.y.samples().data() + y0 * rw + x0;
  __m128i acc = _mm_setzero_si128();
  for (int y = 0; y < 16; y += 4) {
    for (int r = 0; r < 4; ++r) {
      const __m128i a = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(cur + (y + r) * cw));
      const __m128i b = halfpel_row(ref + (y + r) * rw, rw, frac_x, frac_y);
      acc = _mm_add_epi64(acc, _mm_sad_epu8(a, b));
    }
    if (y < 12) {
      const int partial = horizontal_sum(acc);
      if (partial >= stop_at) return partial;
    }
  }
  return horizontal_sum(acc);
}

int macroblock_luma_sad_fast(const MacroblockPixels& a,
                             const MacroblockPixels& b) {
#if defined(LSM_MPEG_HAVE_AVX2)
  if (use_avx2_kernels()) return avx2::macroblock_luma_sad(a, b);
#endif
  __m128i acc = _mm_setzero_si128();
  for (int row = 0; row < 16; ++row) {
    const __m128i pa = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(a.y.data() + row * 16));
    const __m128i pb = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(b.y.data() + row * 16));
    acc = _mm_add_epi64(acc, _mm_sad_epu8(pa, pb));
  }
  return horizontal_sum(acc);
}

MacroblockPixels average_fast(const MacroblockPixels& a,
                              const MacroblockPixels& b) {
#if defined(LSM_MPEG_HAVE_AVX2)
  if (use_avx2_kernels()) return avx2::average(a, b);
#endif
  MacroblockPixels out;
  for (int k = 0; k < 256; k += 16) {
    const __m128i pa =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.y.data() + k));
    const __m128i pb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.y.data() + k));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out.y.data() + k),
                     _mm_avg_epu8(pa, pb));
  }
  for (int k = 0; k < 64; k += 16) {
    const __m128i cb_a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.cb.data() + k));
    const __m128i cb_b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.cb.data() + k));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out.cb.data() + k),
                     _mm_avg_epu8(cb_a, cb_b));
    const __m128i cr_a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.cr.data() + k));
    const __m128i cr_b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.cr.data() + k));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out.cr.data() + k),
                     _mm_avg_epu8(cr_a, cr_b));
  }
  return out;
}

MacroblockPixels extract_macroblock_halfpel_fast(const Frame& frame,
                                                 int mb_x, int mb_y,
                                                 MotionVector half_pel) {
  const int x0 = floor_div2(mb_x * 32 + half_pel.dx);
  const int y0 = floor_div2(mb_y * 32 + half_pel.dy);
  const bool frac_x = ((mb_x * 32 + half_pel.dx) & 1) != 0;
  const bool frac_y = ((mb_y * 32 + half_pel.dy) & 1) != 0;
  const int margin_x = frac_x ? 1 : 0;
  const int margin_y = frac_y ? 1 : 0;
  if (x0 < 0 || y0 < 0 || x0 + 16 + margin_x > frame.width() ||
      y0 + 16 + margin_y > frame.height()) {
    return extract_macroblock_halfpel(frame, mb_x, mb_y, half_pel);
  }
  MacroblockPixels out;
  const int w = frame.width();
  const std::uint8_t* ref = frame.y.samples().data() + y0 * w + x0;
  for (int y = 0; y < 16; ++y) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out.y.data() + y * 16),
                     halfpel_row(ref + y * w, w, frac_x, frac_y));
  }
  // Chroma: the sampled positions share one fractional phase (adding 2x
  // keeps half-pel parity), so interior blocks interpolate row-wise with
  // halfpel_row8; border blocks fall back to the per-sample clamped path.
  const int cy0 = mb_y * 16 + chroma_component(half_pel.dy);
  const int cx0 = mb_x * 16 + chroma_component(half_pel.dx);
  const int cfx0 = floor_div2(cx0);
  const int cfy0 = floor_div2(cy0);
  const bool cfrac_x = (cx0 & 1) != 0;
  const bool cfrac_y = (cy0 & 1) != 0;
  const int cmargin_x = cfrac_x ? 1 : 0;
  const int cmargin_y = cfrac_y ? 1 : 0;
  if (cfx0 >= 0 && cfy0 >= 0 && cfx0 + 8 + cmargin_x <= frame.cb.width() &&
      cfy0 + 8 + cmargin_y <= frame.cb.height()) {
    const int cw = frame.cb.width();
    const std::uint8_t* cb = frame.cb.row(cfy0) + cfx0;
    const std::uint8_t* cr = frame.cr.row(cfy0) + cfx0;
    for (int y = 0; y < 8; ++y) {
      _mm_storel_epi64(reinterpret_cast<__m128i*>(out.cb.data() + y * 8),
                       halfpel_row8(cb + y * cw, cw, cfrac_x, cfrac_y));
      _mm_storel_epi64(reinterpret_cast<__m128i*>(out.cr.data() + y * 8),
                       halfpel_row8(cr + y * cw, cw, cfrac_x, cfrac_y));
    }
    return out;
  }
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      out.cb[static_cast<std::size_t>(y * 8 + x)] =
          sample_halfpel(frame.cb, cx0 + 2 * x, cy0 + 2 * y);
      out.cr[static_cast<std::size_t>(y * 8 + x)] =
          sample_halfpel(frame.cr, cx0 + 2 * x, cy0 + 2 * y);
    }
  }
  return out;
}

namespace {

/// The exhaustive full-pel stage over a filled patch. Candidate order,
/// strict-< acceptance, the zero bias, and the final exact recompute mirror
/// search_motion line for line; the patch makes every candidate's SAD the
/// exact clamped SAD with the monotone cutoff available everywhere.
#if LSM_MPEG_SIMD
MotionSearchResult search_fullpel_on_patch(const std::uint8_t* cur,
                                           int cur_stride,
                                           const SearchPatch& patch,
                                           int range,
                                           int zero_bias) noexcept {
#if defined(LSM_MPEG_HAVE_AVX2)
  if (use_avx2_kernels()) {
    return avx2::search_fullpel(cur, cur_stride, patch.data.data(),
                                patch.stride, range, zero_bias);
  }
#endif
  const auto patch_at = [&](int dx, int dy) {
    return patch.data.data() + (dy + range + 1) * patch.stride +
           (dx + range + 1);
  };
  MotionSearchResult best;
  best.mv = MotionVector{0, 0};
  best.sad = sad_16x16(cur, cur_stride, patch_at(0, 0), patch.stride,
                       0x7FFFFFFF) -
             zero_bias;
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const int sad = sad_16x16(cur, cur_stride, patch_at(dx, dy),
                                patch.stride, best.sad);
      if (sad < best.sad) {
        best.mv = MotionVector{dx, dy};
        best.sad = sad;
      }
    }
  }
  best.sad = sad_16x16(cur, cur_stride, patch_at(best.mv.dx, best.mv.dy),
                       patch.stride, 0x7FFFFFFF);
  return best;
}
#endif  // LSM_MPEG_SIMD

}  // namespace

MotionSearchResult search_motion_fast(const Frame& current,
                                      const Frame& reference, int mb_x,
                                      int mb_y, int range, int zero_bias) {
  // The patch has a one-sample halo beyond the candidate windows (origin
  // shifted by range+1, side 2*range+18) so the half-pel stage can reuse
  // it; the full-pel stage only reads the inner 2*range+16 square.
  const int side = 2 * range + 18;
  SearchPatch patch;
  fill_patch(reference, mb_x * 16 - range - 1, mb_y * 16 - range - 1, side,
             patch);
  const int cw = current.width();
  const std::uint8_t* cur =
      current.y.samples().data() + (mb_y * 16) * cw + mb_x * 16;
  return search_fullpel_on_patch(cur, cw, patch, range, zero_bias);
}

MotionSearchResult search_motion_halfpel_fast(const Frame& current,
                                              const Frame& reference,
                                              int mb_x, int mb_y, int range,
                                              int zero_bias) {
  const int side = 2 * range + 18;
  SearchPatch patch;
  fill_patch(reference, mb_x * 16 - range - 1, mb_y * 16 - range - 1, side,
             patch);
  const int cw = current.width();
  const std::uint8_t* cur =
      current.y.samples().data() + (mb_y * 16) * cw + mb_x * 16;
  const MotionSearchResult full =
      search_fullpel_on_patch(cur, cw, patch, range, zero_bias);

  // +-1 half-pel refinement around the full-pel winner, on the same patch:
  // for a half-pel vector hp the scalar SAD reads sample_halfpel at
  // full-pel origin mb*16 + floor(hp/2) with fractional bits hp & 1, and
  // the patch halo guarantees those reads (including the +1 interpolation
  // neighbors) are in bounds, so the kernels see the identical clamped
  // samples.
  MotionSearchResult best;
  best.mv = MotionVector{2 * full.mv.dx, 2 * full.mv.dy};
  best.sad = full.sad;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const MotionVector candidate{2 * full.mv.dx + dx, 2 * full.mv.dy + dy};
      const std::uint8_t* ref =
          patch.data.data() +
          (floor_div2(candidate.dy) + range + 1) * patch.stride +
          (floor_div2(candidate.dx) + range + 1);
      const int sad =
          sad_16x16_halfpel(cur, cw, ref, patch.stride,
                            (candidate.dx & 1) != 0, (candidate.dy & 1) != 0,
                            best.sad);
      if (sad < best.sad) {
        best.mv = candidate;
        best.sad = sad;
      }
    }
  }
  return best;
}

#else  // !LSM_MPEG_SIMD

int luma_sad_fast(const Frame& current, const Frame& reference, int mb_x,
                  int mb_y, MotionVector mv, int stop_at) {
  (void)stop_at;
  return luma_sad(current, reference, mb_x, mb_y, mv);
}

int luma_sad_halfpel_fast(const Frame& current, const Frame& reference,
                          int mb_x, int mb_y, MotionVector half_pel,
                          int stop_at) {
  (void)stop_at;
  return luma_sad_halfpel(current, reference, mb_x, mb_y, half_pel);
}

int macroblock_luma_sad_fast(const MacroblockPixels& a,
                             const MacroblockPixels& b) {
  int total = 0;
  for (std::size_t k = 0; k < a.y.size(); ++k) {
    total += std::abs(static_cast<int>(a.y[k]) - static_cast<int>(b.y[k]));
  }
  return total;
}

MacroblockPixels average_fast(const MacroblockPixels& a,
                              const MacroblockPixels& b) {
  return average(a, b);
}

MacroblockPixels extract_macroblock_halfpel_fast(const Frame& frame,
                                                 int mb_x, int mb_y,
                                                 MotionVector half_pel) {
  return extract_macroblock_halfpel(frame, mb_x, mb_y, half_pel);
}

MotionSearchResult search_motion_fast(const Frame& current,
                                      const Frame& reference, int mb_x,
                                      int mb_y, int range, int zero_bias) {
  return search_motion(current, reference, mb_x, mb_y, range, zero_bias);
}

MotionSearchResult search_motion_halfpel_fast(const Frame& current,
                                              const Frame& reference,
                                              int mb_x, int mb_y, int range,
                                              int zero_bias) {
  return search_motion_halfpel(current, reference, mb_x, mb_y, range,
                               zero_bias);
}

#endif  // LSM_MPEG_SIMD

}  // namespace lsm::mpeg
