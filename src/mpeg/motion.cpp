#include "mpeg/motion.h"

#include <cstdlib>

namespace lsm::mpeg {

namespace {

int floor_div2(int v) noexcept { return v >= 0 ? v / 2 : (v - 1) / 2; }

/// Bilinear sample of `plane` at half-pel coordinates (2x is one pixel).
std::uint8_t sample_halfpel(const Plane& plane, int x_half,
                            int y_half) noexcept {
  const int x0 = floor_div2(x_half);
  const int y0 = floor_div2(y_half);
  const bool frac_x = (x_half & 1) != 0;
  const bool frac_y = (y_half & 1) != 0;
  if (!frac_x && !frac_y) return plane.at_clamped(x0, y0);
  if (frac_x && !frac_y) {
    return static_cast<std::uint8_t>(
        (plane.at_clamped(x0, y0) + plane.at_clamped(x0 + 1, y0) + 1) / 2);
  }
  if (!frac_x && frac_y) {
    return static_cast<std::uint8_t>(
        (plane.at_clamped(x0, y0) + plane.at_clamped(x0, y0 + 1) + 1) / 2);
  }
  return static_cast<std::uint8_t>(
      (plane.at_clamped(x0, y0) + plane.at_clamped(x0 + 1, y0) +
       plane.at_clamped(x0, y0 + 1) + plane.at_clamped(x0 + 1, y0 + 1) + 2) /
      4);
}

/// Chroma vector: luma half-pel vector halved with truncation toward zero
/// (ISO 11172-2 semantics), still in half-pel units of the chroma plane.
int chroma_component(int luma_half) noexcept { return luma_half / 2; }

}  // namespace

MacroblockPixels extract_macroblock(const Frame& frame, int mb_x, int mb_y,
                                    MotionVector mv) {
  MacroblockPixels out;
  const int y0 = mb_y * 16 + mv.dy;
  const int x0 = mb_x * 16 + mv.dx;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      out.y[static_cast<std::size_t>(y * 16 + x)] =
          frame.y.at_clamped(x0 + x, y0 + y);
    }
  }
  const int cy0 = mb_y * 8 + mv.dy / 2;
  const int cx0 = mb_x * 8 + mv.dx / 2;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      out.cb[static_cast<std::size_t>(y * 8 + x)] =
          frame.cb.at_clamped(cx0 + x, cy0 + y);
      out.cr[static_cast<std::size_t>(y * 8 + x)] =
          frame.cr.at_clamped(cx0 + x, cy0 + y);
    }
  }
  return out;
}

MacroblockPixels average(const MacroblockPixels& a,
                         const MacroblockPixels& b) {
  MacroblockPixels out;
  for (std::size_t k = 0; k < out.y.size(); ++k) {
    out.y[k] = static_cast<std::uint8_t>((a.y[k] + b.y[k] + 1) / 2);
  }
  for (std::size_t k = 0; k < out.cb.size(); ++k) {
    out.cb[k] = static_cast<std::uint8_t>((a.cb[k] + b.cb[k] + 1) / 2);
    out.cr[k] = static_cast<std::uint8_t>((a.cr[k] + b.cr[k] + 1) / 2);
  }
  return out;
}

int luma_sad(const Frame& current, const Frame& reference, int mb_x, int mb_y,
             MotionVector mv) {
  const int cy = mb_y * 16;
  const int cx = mb_x * 16;
  int total = 0;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      const int a = current.y.at_clamped(cx + x, cy + y);
      const int b = reference.y.at_clamped(cx + mv.dx + x, cy + mv.dy + y);
      total += std::abs(a - b);
    }
  }
  return total;
}

MacroblockPixels extract_macroblock_halfpel(const Frame& frame, int mb_x,
                                            int mb_y, MotionVector half_pel) {
  MacroblockPixels out;
  const int y0 = mb_y * 32 + half_pel.dy;  // half-pel origin
  const int x0 = mb_x * 32 + half_pel.dx;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      out.y[static_cast<std::size_t>(y * 16 + x)] =
          sample_halfpel(frame.y, x0 + 2 * x, y0 + 2 * y);
    }
  }
  const int cy0 = mb_y * 16 + chroma_component(half_pel.dy);
  const int cx0 = mb_x * 16 + chroma_component(half_pel.dx);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      out.cb[static_cast<std::size_t>(y * 8 + x)] =
          sample_halfpel(frame.cb, cx0 + 2 * x, cy0 + 2 * y);
      out.cr[static_cast<std::size_t>(y * 8 + x)] =
          sample_halfpel(frame.cr, cx0 + 2 * x, cy0 + 2 * y);
    }
  }
  return out;
}

int luma_sad_halfpel(const Frame& current, const Frame& reference, int mb_x,
                     int mb_y, MotionVector half_pel) {
  const int cy = mb_y * 16;
  const int cx = mb_x * 16;
  const int ry0 = mb_y * 32 + half_pel.dy;
  const int rx0 = mb_x * 32 + half_pel.dx;
  int total = 0;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      const int a = current.y.at_clamped(cx + x, cy + y);
      const int b = sample_halfpel(reference.y, rx0 + 2 * x, ry0 + 2 * y);
      total += std::abs(a - b);
    }
  }
  return total;
}

MotionSearchResult search_motion_halfpel(const Frame& current,
                                         const Frame& reference, int mb_x,
                                         int mb_y, int range, int zero_bias) {
  // Stage 1: full-pel candidate.
  const MotionSearchResult full =
      search_motion(current, reference, mb_x, mb_y, range, zero_bias);
  MotionSearchResult best;
  best.mv = MotionVector{2 * full.mv.dx, 2 * full.mv.dy};
  best.sad = full.sad;
  // Stage 2: +-1 half-pel refinement around the full-pel winner.
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const MotionVector candidate{2 * full.mv.dx + dx, 2 * full.mv.dy + dy};
      const int sad =
          luma_sad_halfpel(current, reference, mb_x, mb_y, candidate);
      if (sad < best.sad) {
        best.mv = candidate;
        best.sad = sad;
      }
    }
  }
  return best;
}

MotionSearchResult search_motion(const Frame& current, const Frame& reference,
                                 int mb_x, int mb_y, int range,
                                 int zero_bias) {
  MotionSearchResult best;
  best.mv = MotionVector{0, 0};
  best.sad = luma_sad(current, reference, mb_x, mb_y, best.mv) - zero_bias;
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const MotionVector mv{dx, dy};
      const int sad = luma_sad(current, reference, mb_x, mb_y, mv);
      if (sad < best.sad) {
        best.mv = mv;
        best.sad = sad;
      }
    }
  }
  // Report the true SAD for the winner (undo the zero bias if it won).
  best.sad = luma_sad(current, reference, mb_x, mb_y, best.mv);
  return best;
}

}  // namespace lsm::mpeg
