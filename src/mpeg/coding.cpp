#include "mpeg/coding.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace lsm::mpeg::detail {

namespace {

std::int16_t clamp255(int v) noexcept {
  return static_cast<std::int16_t>(std::clamp(v, 0, 255));
}

/// Offsets of block b within the macroblock, in its own plane's units.
void block_origin(int b, int& x0, int& y0) noexcept {
  switch (b) {
    case 0: x0 = 0; y0 = 0; break;
    case 1: x0 = 8; y0 = 0; break;
    case 2: x0 = 0; y0 = 8; break;
    case 3: x0 = 8; y0 = 8; break;
    default: x0 = 0; y0 = 0; break;  // chroma blocks span the whole 8x8
  }
}

}  // namespace

Block block_of(const MacroblockPixels& mb, int b) {
  if (b < 0 || b > 5) throw std::invalid_argument("block_of: bad index");
  Block out{};
  if (b < 4) {
    int x0 = 0, y0 = 0;
    block_origin(b, x0, y0);
    for (int y = 0; y < 8; ++y) {
      const std::uint8_t* in =
          mb.y.data() + static_cast<std::size_t>((y0 + y) * 16 + x0);
      std::int16_t* row = out.data() + static_cast<std::size_t>(y * 8);
      for (int x = 0; x < 8; ++x) row[x] = static_cast<std::int16_t>(in[x]);
    }
  } else {
    const auto& plane = b == 4 ? mb.cb : mb.cr;
    for (std::size_t k = 0; k < 64; ++k) {
      out[k] = static_cast<std::int16_t>(plane[k]);
    }
  }
  return out;
}

void store_block(Frame& frame, int mb_x, int mb_y, int b,
                 const Block& samples) {
  // Block coordinates come off the macroblock grid, so the 8x8 window is
  // in-bounds by construction; write row-wise through raw row pointers.
  Plane* plane = nullptr;
  int fx = 0;
  int fy = 0;
  if (b < 4) {
    int x0 = 0, y0 = 0;
    block_origin(b, x0, y0);
    plane = &frame.y;
    fx = mb_x * 16 + x0;
    fy = mb_y * 16 + y0;
  } else {
    plane = b == 4 ? &frame.cb : &frame.cr;
    fx = mb_x * 8;
    fy = mb_y * 8;
  }
  for (int y = 0; y < 8; ++y) {
    std::uint8_t* out = plane->row(fy + y) + fx;
    const std::int16_t* in = samples.data() + static_cast<std::size_t>(y * 8);
    for (int x = 0; x < 8; ++x) out[x] = static_cast<std::uint8_t>(in[x]);
  }
}

Block reconstruct_intra(const CoeffBlock& levels, int quantizer_scale) {
  const CoeffBlock coeffs = dequantize_intra(levels, quantizer_scale);
  Block spatial = inverse_dct(coeffs);
  for (auto& s : spatial) s = clamp255(s + 128);
  return spatial;
}

Block reconstruct_inter(const Block& prediction, const CoeffBlock& levels,
                        int quantizer_scale) {
  const CoeffBlock coeffs = dequantize_inter(levels, quantizer_scale);
  const Block residual = inverse_dct(coeffs);
  Block out{};
  for (std::size_t k = 0; k < 64; ++k) {
    out[k] = clamp255(prediction[k] + residual[k]);
  }
  return out;
}

Block reconstruct_intra_fast(const CoeffBlock& levels, int quantizer_scale) {
  const CoeffBlock coeffs = dequantize_intra(levels, quantizer_scale);
  Block spatial = inverse_dct_fast(coeffs);
  for (auto& s : spatial) s = clamp255(s + 128);
  return spatial;
}

Block reconstruct_inter_fast(const Block& prediction, const CoeffBlock& levels,
                             int quantizer_scale) {
  const CoeffBlock coeffs = dequantize_inter(levels, quantizer_scale);
  const Block residual = inverse_dct_fast(coeffs);
  Block out{};
  for (std::size_t k = 0; k < 64; ++k) {
    out[k] = clamp255(prediction[k] + residual[k]);
  }
  return out;
}

void store_macroblock(Frame& frame, int mb_x, int mb_y,
                      const MacroblockPixels& mb) {
  for (int y = 0; y < 16; ++y) {
    std::memcpy(frame.y.row(mb_y * 16 + y) + mb_x * 16,
                mb.y.data() + static_cast<std::size_t>(y * 16), 16);
  }
  for (int y = 0; y < 8; ++y) {
    std::memcpy(frame.cb.row(mb_y * 8 + y) + mb_x * 8,
                mb.cb.data() + static_cast<std::size_t>(y * 8), 8);
    std::memcpy(frame.cr.row(mb_y * 8 + y) + mb_x * 8,
                mb.cr.data() + static_cast<std::size_t>(y * 8), 8);
  }
}

}  // namespace lsm::mpeg::detail
