#include "mpeg/coding.h"

#include <algorithm>
#include <stdexcept>

namespace lsm::mpeg::detail {

namespace {

std::int16_t clamp255(int v) noexcept {
  return static_cast<std::int16_t>(std::clamp(v, 0, 255));
}

/// Offsets of block b within the macroblock, in its own plane's units.
void block_origin(int b, int& x0, int& y0) noexcept {
  switch (b) {
    case 0: x0 = 0; y0 = 0; break;
    case 1: x0 = 8; y0 = 0; break;
    case 2: x0 = 0; y0 = 8; break;
    case 3: x0 = 8; y0 = 8; break;
    default: x0 = 0; y0 = 0; break;  // chroma blocks span the whole 8x8
  }
}

}  // namespace

Block block_of(const MacroblockPixels& mb, int b) {
  if (b < 0 || b > 5) throw std::invalid_argument("block_of: bad index");
  Block out{};
  if (b < 4) {
    int x0 = 0, y0 = 0;
    block_origin(b, x0, y0);
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 8; ++x) {
        out[static_cast<std::size_t>(y * 8 + x)] = static_cast<std::int16_t>(
            mb.y[static_cast<std::size_t>((y0 + y) * 16 + (x0 + x))]);
      }
    }
  } else {
    const auto& plane = b == 4 ? mb.cb : mb.cr;
    for (std::size_t k = 0; k < 64; ++k) {
      out[k] = static_cast<std::int16_t>(plane[k]);
    }
  }
  return out;
}

void store_block(Frame& frame, int mb_x, int mb_y, int b,
                 const Block& samples) {
  if (b < 4) {
    int x0 = 0, y0 = 0;
    block_origin(b, x0, y0);
    const int fx = mb_x * 16 + x0;
    const int fy = mb_y * 16 + y0;
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 8; ++x) {
        frame.y.set(fx + x, fy + y,
                    static_cast<std::uint8_t>(
                        samples[static_cast<std::size_t>(y * 8 + x)]));
      }
    }
  } else {
    Plane& plane = b == 4 ? frame.cb : frame.cr;
    const int fx = mb_x * 8;
    const int fy = mb_y * 8;
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 8; ++x) {
        plane.set(fx + x, fy + y,
                  static_cast<std::uint8_t>(
                      samples[static_cast<std::size_t>(y * 8 + x)]));
      }
    }
  }
}

Block reconstruct_intra(const CoeffBlock& levels, int quantizer_scale) {
  const CoeffBlock coeffs = dequantize_intra(levels, quantizer_scale);
  Block spatial = inverse_dct(coeffs);
  for (auto& s : spatial) s = clamp255(s + 128);
  return spatial;
}

Block reconstruct_inter(const Block& prediction, const CoeffBlock& levels,
                        int quantizer_scale) {
  const CoeffBlock coeffs = dequantize_inter(levels, quantizer_scale);
  const Block residual = inverse_dct(coeffs);
  Block out{};
  for (std::size_t k = 0; k < 64; ++k) {
    out[k] = clamp255(prediction[k] + residual[k]);
  }
  return out;
}

Block reconstruct_intra_fast(const CoeffBlock& levels, int quantizer_scale) {
  const CoeffBlock coeffs = dequantize_intra(levels, quantizer_scale);
  Block spatial = inverse_dct_fast(coeffs);
  for (auto& s : spatial) s = clamp255(s + 128);
  return spatial;
}

Block reconstruct_inter_fast(const Block& prediction, const CoeffBlock& levels,
                             int quantizer_scale) {
  const CoeffBlock coeffs = dequantize_inter(levels, quantizer_scale);
  const Block residual = inverse_dct_fast(coeffs);
  Block out{};
  for (std::size_t k = 0; k < 64; ++k) {
    out[k] = clamp255(prediction[k] + residual[k]);
  }
  return out;
}

void store_macroblock(Frame& frame, int mb_x, int mb_y,
                      const MacroblockPixels& mb) {
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      frame.y.set(mb_x * 16 + x, mb_y * 16 + y,
                  mb.y[static_cast<std::size_t>(y * 16 + x)]);
    }
  }
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      frame.cb.set(mb_x * 8 + x, mb_y * 8 + y,
                   mb.cb[static_cast<std::size_t>(y * 8 + x)]);
      frame.cr.set(mb_x * 8 + x, mb_y * 8 + y,
                   mb.cr[static_cast<std::size_t>(y * 8 + x)]);
    }
  }
}

}  // namespace lsm::mpeg::detail
